(* Tests for Xc_vsumm: histograms, PSTs, RLE bitmaps, term vectors,
   end-biased term histograms and the unified value-summary layer. *)

open Xc_vsumm
module Dict = Xc_xml.Dictionary

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let checkf3 msg = Alcotest.check (Alcotest.float 1e-3) msg

(* ---- Histogram --------------------------------------------------------- *)

let test_hist_build_exact () =
  let h = Histogram.build [| 1; 1; 2; 3; 3; 3 |] in
  checkf "total" 6.0 (Histogram.n_values h);
  check Alcotest.int "lo" 1 (Histogram.lo h);
  check Alcotest.int "hi" 4 (Histogram.hi h);
  (* enough buckets: every distinct value is its own bucket *)
  checkf "freq of 1" (2.0 /. 6.0) (Histogram.range_fraction h 1 1);
  checkf "freq of 2" (1.0 /. 6.0) (Histogram.range_fraction h 2 2);
  checkf "freq of 3" (3.0 /. 6.0) (Histogram.range_fraction h 3 3)

let test_hist_range_queries () =
  let h = Histogram.build (Array.init 100 Fun.id) in
  checkf3 "half" 0.5 (Histogram.range_fraction h 0 49);
  checkf3 "all" 1.0 (Histogram.range_fraction h 0 99);
  checkf3 "open high" 1.0 (Histogram.range_fraction h 0 max_int);
  checkf3 "none below" 0.0 (Histogram.range_fraction h (-10) (-1));
  checkf3 "none above" 0.0 (Histogram.range_fraction h 100 200);
  checkf3 "empty range" 0.0 (Histogram.range_fraction h 5 4)

let test_hist_bucket_cap () =
  let h = Histogram.build ~n_buckets:4 (Array.init 1000 Fun.id) in
  check Alcotest.bool "at most 4" true (Histogram.n_buckets h <= 4);
  (* equi-depth: each bucket about a quarter of the mass *)
  List.iter
    (fun b ->
      let f = Histogram.prefix_fraction h b in
      let expected = float_of_int b /. 1000.0 in
      if Float.abs (f -. expected) > 0.05 then
        Alcotest.failf "prefix at %d: %f vs %f" b f expected)
    [ 250; 500; 750 ]

let test_hist_merge_mass () =
  let a = Histogram.build [| 1; 2; 3 |] and b = Histogram.build [| 10; 20 |] in
  let m = Histogram.merge a b in
  checkf3 "mass adds" 5.0 (Histogram.n_values m);
  checkf3 "low range" (3.0 /. 5.0) (Histogram.range_fraction m 1 3);
  checkf3 "high range" (2.0 /. 5.0) (Histogram.range_fraction m 10 20)

let test_hist_merge_overlapping () =
  let a = Histogram.build (Array.make 10 5) and b = Histogram.build (Array.make 30 5) in
  let m = Histogram.merge a b in
  checkf3 "all at 5" 1.0 (Histogram.range_fraction m 5 5);
  checkf3 "mass" 40.0 (Histogram.n_values m)

let test_hist_compress () =
  let h = Histogram.build ~n_buckets:8 (Array.init 64 Fun.id) in
  let before = Histogram.n_buckets h in
  let c = Histogram.compress_once h in
  check Alcotest.int "one fewer" (before - 1) (Histogram.n_buckets c);
  checkf3 "mass preserved" (Histogram.n_values h) (Histogram.n_values c);
  check Alcotest.int "8 bytes saved" (Histogram.size_bytes h - 8) (Histogram.size_bytes c)

let test_hist_compress_to_one () =
  let h = ref (Histogram.build ~n_buckets:8 (Array.init 64 Fun.id)) in
  while Histogram.n_buckets !h > 1 do
    h := Histogram.compress_once !h
  done;
  checkf3 "total selectivity still 1" 1.0 (Histogram.range_fraction !h 0 63);
  Alcotest.check_raises "single-bucket error"
    (Invalid_argument "Histogram.compress_error: single bucket") (fun () ->
      ignore (Histogram.compress_error !h))

let test_hist_equiwidth () =
  let h = Histogram.build_equiwidth ~n_buckets:10 (Array.init 100 Fun.id) in
  check Alcotest.bool "about 10 buckets" true (Histogram.n_buckets h <= 10);
  checkf3 "uniform half" 0.5 (Histogram.prefix_fraction h 50)

let test_hist_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Histogram.build: empty") (fun () ->
      ignore (Histogram.build [||]))

let hist_prefix_monotone =
  QCheck.Test.make ~name:"histogram prefix_fraction is monotone" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (int_range 0 500))
    (fun values ->
      let h = Histogram.build ~n_buckets:8 (Array.of_list values) in
      let probes = List.init 50 (fun i -> i * 11) in
      let rec mono last = function
        | [] -> true
        | p :: rest ->
          let f = Histogram.prefix_fraction h p in
          f >= last -. 1e-9 && f <= 1.0 +. 1e-9 && mono f rest
      in
      mono 0.0 probes)

let hist_merge_commutes =
  QCheck.Test.make ~name:"histogram merge estimate is symmetric" ~count:50
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (int_range 0 100))
              (list_of_size (Gen.int_range 1 50) (int_range 0 100)))
    (fun (xs, ys) ->
      let a = Histogram.build ~n_buckets:6 (Array.of_list xs) in
      let b = Histogram.build ~n_buckets:6 (Array.of_list ys) in
      let m1 = Histogram.merge a b and m2 = Histogram.merge b a in
      List.for_all
        (fun p ->
          Float.abs (Histogram.prefix_fraction m1 p -. Histogram.prefix_fraction m2 p)
          < 1e-9)
        (List.init 20 (fun i -> i * 6)))

(* ---- Rle_bitmap --------------------------------------------------------- *)

let test_rle_basic () =
  let b = Rle_bitmap.of_list [ 1; 2; 3; 7; 9; 10 ] in
  check Alcotest.int "cardinality" 6 (Rle_bitmap.cardinality b);
  check Alcotest.int "runs" 3 (Rle_bitmap.n_runs b);
  List.iter (fun x -> check Alcotest.bool "mem" true (Rle_bitmap.mem b x)) [ 1; 2; 3; 7; 9; 10 ];
  List.iter (fun x -> check Alcotest.bool "not mem" false (Rle_bitmap.mem b x)) [ 0; 4; 6; 8; 11 ]

let test_rle_empty () =
  check Alcotest.int "card" 0 (Rle_bitmap.cardinality Rle_bitmap.empty);
  check Alcotest.bool "mem" false (Rle_bitmap.mem Rle_bitmap.empty 5)

let test_rle_add_remove () =
  let b = Rle_bitmap.of_list [ 1; 3 ] in
  let b2 = Rle_bitmap.add b 2 in
  check Alcotest.int "merged into one run" 1 (Rle_bitmap.n_runs b2);
  check Alcotest.int "card" 3 (Rle_bitmap.cardinality b2);
  let b3 = Rle_bitmap.remove b2 2 in
  check Alcotest.int "split back" 2 (Rle_bitmap.n_runs b3);
  check Alcotest.bool "removed" false (Rle_bitmap.mem b3 2);
  (* idempotence *)
  check Alcotest.bool "add existing" true (Rle_bitmap.equal b2 (Rle_bitmap.add b2 3));
  check Alcotest.bool "remove missing" true (Rle_bitmap.equal b3 (Rle_bitmap.remove b3 2))

let test_rle_union () =
  let a = Rle_bitmap.of_list [ 1; 2; 8 ] and b = Rle_bitmap.of_list [ 2; 3; 9 ] in
  let u = Rle_bitmap.union a b in
  check (Alcotest.list Alcotest.int) "union bits" [ 1; 2; 3; 8; 9 ]
    (List.of_seq (Rle_bitmap.to_seq u))

let rle_roundtrip =
  QCheck.Test.make ~name:"rle to_seq roundtrips membership" ~count:200
    QCheck.(list (int_range 0 300))
    (fun bits ->
      let b = Rle_bitmap.of_list bits in
      let expected = List.sort_uniq Int.compare bits in
      List.of_seq (Rle_bitmap.to_seq b) = expected
      && List.for_all (fun x -> Rle_bitmap.mem b x) expected
      && Rle_bitmap.cardinality b = List.length expected)

(* ---- Pst ---------------------------------------------------------------- *)

let test_pst_exact_counts () =
  let p = Pst.build [ "abc"; "abd"; "xbc" ] in
  checkf "n" 3.0 (Pst.n_strings p);
  check (Alcotest.option (Alcotest.float 1e-9)) "ab in 2" (Some 2.0) (Pst.count p "ab");
  check (Alcotest.option (Alcotest.float 1e-9)) "bc in 2" (Some 2.0) (Pst.count p "bc");
  check (Alcotest.option (Alcotest.float 1e-9)) "abc in 1" (Some 1.0) (Pst.count p "abc");
  check (Alcotest.option (Alcotest.float 1e-9)) "b in 3" (Some 3.0) (Pst.count p "b")

let test_pst_presence_not_occurrences () =
  (* "aaa" contains "a" three times but counts once *)
  let p = Pst.build [ "aaa"; "ba" ] in
  check (Alcotest.option (Alcotest.float 1e-9)) "a presence" (Some 2.0) (Pst.count p "a")

let test_pst_selectivity_exact () =
  let p = Pst.build [ "hello"; "help"; "yelp" ] in
  checkf "el in all" 1.0 (Pst.selectivity p "el");
  checkf3 "hel in 2/3" (2.0 /. 3.0) (Pst.selectivity p "hel");
  checkf "absent symbol" 0.0 (Pst.selectivity p "z");
  checkf "empty string" 1.0 (Pst.selectivity p "")

let test_pst_depth_cap () =
  let p = Pst.build ~max_depth:3 [ "abcdef" ] in
  check (Alcotest.option (Alcotest.float 1e-9)) "abc kept" (Some 1.0) (Pst.count p "abc");
  check Alcotest.bool "abcd not retained" true (Pst.count p "abcd" = None);
  (* Markov chaining still gives a positive estimate for longer strings *)
  check Alcotest.bool "markov positive" true (Pst.selectivity p "abcd" > 0.0)

let test_pst_merge () =
  let a = Pst.build [ "ab" ] and b = Pst.build [ "ab"; "cd" ] in
  let m = Pst.merge a b in
  checkf "n" 3.0 (Pst.n_strings m);
  check (Alcotest.option (Alcotest.float 1e-9)) "ab" (Some 2.0) (Pst.count m "ab");
  check (Alcotest.option (Alcotest.float 1e-9)) "cd" (Some 1.0) (Pst.count m "cd");
  (* merged tree node count consistent with its own accounting *)
  let counted = ref 0 in
  Pst.iter_substrings (fun _ _ -> incr counted) m;
  check Alcotest.int "n_nodes" (Pst.n_nodes m) !counted

let test_pst_prune_keeps_symbols () =
  let p = Pst.build [ "abcd"; "bcde"; "cdef" ] in
  Pst.prune_to p 0;
  (* depth-1 nodes (one per symbol) are never pruned *)
  check Alcotest.int "six symbols survive" 6 (Pst.n_nodes p);
  List.iter
    (fun s -> check Alcotest.bool ("symbol " ^ s) true (Pst.count p s <> None))
    [ "a"; "b"; "c"; "d"; "e"; "f" ]

let test_pst_prune_reduces_size () =
  let p = Pst.build [ "abcdef"; "abcxyz"; "qrstuv" ] in
  let before = Pst.n_nodes p in
  (match Pst.prune_once p with
  | Some (err, saved) ->
    check Alcotest.int "9 bytes" 9 saved;
    check Alcotest.bool "err >= 0" true (err >= 0.0)
  | None -> Alcotest.fail "expected a prunable leaf");
  check Alcotest.int "one fewer node" (before - 1) (Pst.n_nodes p);
  check Alcotest.int "size bytes" (9 * (before - 1)) (Pst.size_bytes p)

let test_pst_negative_queries_zero () =
  let p = Pst.build [ "movie"; "title" ] in
  Pst.prune_to p 8;
  (* a substring with a symbol absent from the data must estimate 0,
     even after aggressive pruning (the paper's negative-query fix) *)
  checkf "absent" 0.0 (Pst.selectivity p "qqq");
  checkf "absent mix" 0.0 (Pst.selectivity p "mz")

let test_pst_copy_independent () =
  let p = Pst.build [ "abc"; "abd" ] in
  let q = Pst.copy p in
  Pst.prune_to p 3;
  check Alcotest.bool "copy untouched" true (Pst.n_nodes q > 3);
  check (Alcotest.option (Alcotest.float 1e-9)) "copy count" (Some 2.0) (Pst.count q "ab")

let pst_estimate_bounded =
  QCheck.Test.make ~name:"pst selectivity within [0,1]" ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 1 20) (string_gen_of_size (Gen.int_range 1 12) Gen.printable))
              (string_gen_of_size (Gen.int_range 1 6) Gen.printable))
    (fun (strings, query) ->
      let p = Pst.build ~max_nodes:64 strings in
      let s = Pst.selectivity p query in
      s >= 0.0 && s <= 1.0)

let pst_exact_when_unpruned =
  QCheck.Test.make ~name:"pst selectivity exact on retained substrings" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 15) (string_gen_of_size (Gen.int_range 1 8) (Gen.char_range 'a' 'd')))
    (fun strings ->
      let p = Pst.build ~max_nodes:100_000 strings in
      (* every length-2 query over the alphabet *)
      let queries =
        List.concat_map
          (fun a -> List.map (fun b -> Printf.sprintf "%c%c" a b) [ 'a'; 'b'; 'c'; 'd' ])
          [ 'a'; 'b'; 'c'; 'd' ]
      in
      List.for_all
        (fun q ->
          match Pst.count p q with
          | None ->
            (* absent from the collection: only the bound holds (the
               Markov assumption may estimate a small non-zero value) *)
            Pst.selectivity p q >= 0.0 && Pst.selectivity p q <= 1.0
          | Some c ->
            let truth = c /. float_of_int (List.length strings) in
            Float.abs (Pst.selectivity p q -. truth) < 1e-9)
        queries)

(* ---- Term_vector / Term_hist ------------------------------------------- *)

let term s = Dict.of_string s
let tid s = (term s :> int)

let docs_of_lists lists =
  List.map (fun l -> Array.of_list (List.sort_uniq Dict.compare (List.map term l))) lists

let test_centroid () =
  let docs = docs_of_lists [ [ "xml"; "tree" ]; [ "xml" ]; [ "data"; "xml" ] ] in
  let c = Term_vector.of_documents docs in
  checkf "n" 3.0 (Term_vector.n_documents c);
  checkf3 "xml" 1.0 (Term_vector.frequency c (tid "xml"));
  checkf3 "tree" (1.0 /. 3.0) (Term_vector.frequency c (tid "tree"));
  checkf "absent" 0.0 (Term_vector.frequency c (tid "nothere"))

let test_centroid_combine () =
  let a = Term_vector.of_entries ~n:2.0 [ (1, 1.0); (2, 0.5) ] in
  let b = Term_vector.of_entries ~n:6.0 [ (2, 1.0); (3, 0.5) ] in
  let c = Term_vector.combine a b in
  checkf "n" 8.0 (Term_vector.n_documents c);
  checkf3 "term1" 0.25 (Term_vector.frequency c 1);
  checkf3 "term2" ((0.25 *. 0.5) +. (0.75 *. 1.0)) (Term_vector.frequency c 2);
  checkf3 "term3" 0.375 (Term_vector.frequency c 3)

let test_term_hist_exact_top () =
  let c =
    Term_vector.of_entries ~n:10.0 [ (1, 0.9); (2, 0.8); (3, 0.1); (4, 0.05) ]
  in
  let th = Term_hist.of_centroid ~top_k:2 c in
  check Alcotest.int "top 2" 2 (Term_hist.n_top th);
  check Alcotest.int "bucket 2" 2 (Term_hist.bucket_size th);
  checkf3 "top exact" 0.9 (Term_hist.frequency th 1);
  checkf3 "top exact 2" 0.8 (Term_hist.frequency th 2);
  (* bucket terms share the average *)
  checkf3 "bucket avg" 0.075 (Term_hist.frequency th 3);
  checkf3 "bucket avg" 0.075 (Term_hist.frequency th 4);
  (* absent terms estimate 0 exactly: the end-biased design goal *)
  checkf "absent is zero" 0.0 (Term_hist.frequency th 5)

let test_term_hist_selectivity_product () =
  let docs = docs_of_lists [ [ "xml"; "synopsis" ]; [ "xml" ] ] in
  let th = Term_hist.build docs in
  checkf3 "conjunction" 0.5 (Term_hist.selectivity th [ term "xml"; term "synopsis" ]);
  checkf "with absent term" 0.0
    (Term_hist.selectivity th [ term "xml"; term "notinthedata" ])

let test_term_hist_compress () =
  let c =
    Term_vector.of_entries ~n:10.0 [ (1, 0.9); (2, 0.8); (3, 0.3); (4, 0.2) ]
  in
  let th = Term_hist.of_centroid ~top_k:4 c in
  match Term_hist.compress_once th with
  | Some (err, _saved, th') ->
    check Alcotest.int "one term demoted" 3 (Term_hist.n_top th');
    check Alcotest.int "bucket grew" 1 (Term_hist.bucket_size th');
    (* the lowest frequency (term 4) was demoted *)
    checkf3 "demoted estimate becomes avg" 0.2 (Term_hist.frequency th' 4);
    check Alcotest.bool "err nonneg" true (err >= 0.0);
    (* supports unchanged *)
    check Alcotest.int "support" (Term_hist.support_size th) (Term_hist.support_size th')
  | None -> Alcotest.fail "expected a compression step"

let test_term_hist_compress_exhausts () =
  let c = Term_vector.of_entries ~n:4.0 [ (1, 0.5); (2, 0.25) ] in
  let th = ref (Term_hist.of_centroid ~top_k:2 c) in
  let steps = ref 0 in
  let rec go () =
    match Term_hist.compress_once !th with
    | Some (_, _, th') ->
      th := th';
      incr steps;
      go ()
    | None -> ()
  in
  go ();
  check Alcotest.int "two steps" 2 !steps;
  check Alcotest.int "nothing indexed" 0 (Term_hist.n_top !th);
  (* both terms still present through the uniform bucket *)
  checkf3 "avg" 0.375 (Term_hist.frequency !th 1);
  checkf3 "avg" 0.375 (Term_hist.frequency !th 2)

let test_term_hist_fuse () =
  let a = Term_hist.of_centroid ~top_k:8 (Term_vector.of_entries ~n:2.0 [ (1, 1.0) ]) in
  let b = Term_hist.of_centroid ~top_k:8 (Term_vector.of_entries ~n:2.0 [ (2, 0.5) ]) in
  let f = Term_hist.fuse a b in
  checkf "n" 4.0 (Term_hist.n_documents f);
  checkf3 "term1 halves" 0.5 (Term_hist.frequency f 1);
  checkf3 "term2 quarters" 0.25 (Term_hist.frequency f 2)

let test_term_hist_dots () =
  let a = Term_hist.of_centroid ~top_k:8 (Term_vector.of_entries ~n:2.0 [ (1, 1.0); (2, 0.5) ]) in
  let b = Term_hist.of_centroid ~top_k:8 (Term_vector.of_entries ~n:2.0 [ (2, 1.0); (3, 0.5) ]) in
  let suu, svv, suv = Term_hist.dot_products a b in
  checkf3 "suu" 1.25 suu;
  checkf3 "svv" 1.25 svv;
  checkf3 "suv" 0.5 suv

(* ---- Value_summary ------------------------------------------------------ *)

let test_vs_of_values () =
  let open Xc_xml.Value in
  check Alcotest.bool "empty" true (Value_summary.of_values [] = Value_summary.Vnone);
  check Alcotest.string "num" "numeric"
    (Value_summary.type_name (Value_summary.of_values [ Numeric 1; Numeric 2 ]));
  check Alcotest.string "str" "string"
    (Value_summary.type_name (Value_summary.of_values [ Str "ab" ]));
  check Alcotest.string "text" "text"
    (Value_summary.type_name (Value_summary.of_values [ text_of_terms [ term "x" ] ]));
  Alcotest.check_raises "mixed" (Invalid_argument "Value_summary.of_values: mixed value types")
    (fun () -> ignore (Value_summary.of_values [ Numeric 1; Str "x" ]))

let test_vs_selectivities () =
  let open Xc_xml.Value in
  let num = Value_summary.of_values (List.init 100 (fun i -> Numeric i)) in
  checkf3 "numeric range" 0.5 (Value_summary.numeric_selectivity num ~lo:0 ~hi:49);
  let strs = Value_summary.of_values [ Str "hello"; Str "help" ] in
  checkf3 "substring" 1.0 (Value_summary.substring_selectivity strs "hel");
  let txt = Value_summary.of_values [ text_of_terms [ term "xml" ]; text_of_terms [ term "db" ] ] in
  checkf3 "term" 0.5 (Value_summary.text_selectivity txt [ term "xml" ]);
  (* Vnone answers 0.0: an undesignated path carries no evidence *)
  checkf "vnone" 0.0 (Value_summary.numeric_selectivity Value_summary.Vnone ~lo:0 ~hi:1)

let test_vs_fuse_type_mismatch () =
  let open Xc_xml.Value in
  let a = Value_summary.of_values [ Numeric 1 ] in
  let b = Value_summary.of_values [ Str "x" ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Value_summary.fuse: type mismatch")
    (fun () -> ignore (Value_summary.fuse a b))

let test_vs_pred_dots_none () =
  let suu, svv, suv = Value_summary.pred_dots Value_summary.Vnone Value_summary.Vnone in
  checkf "suu" 1.0 suu;
  checkf "svv" 1.0 svv;
  checkf "suv" 1.0 suv

let test_vs_pred_dots_identical_symmetry () =
  let open Xc_xml.Value in
  let a = Value_summary.of_values (List.init 50 (fun i -> Numeric (i mod 7))) in
  let suu, svv, suv = Value_summary.pred_dots a a in
  checkf3 "diag equal" suu svv;
  checkf3 "cross equals diag" suu suv;
  checkf3 "self_dots agrees" suu (Value_summary.self_dots a)

let test_vs_compression_cycle () =
  let open Xc_xml.Value in
  let vs = ref (Value_summary.of_values (List.init 200 (fun i -> Numeric (i mod 40)))) in
  let total_before = Value_summary.size_bytes !vs in
  let rec squeeze n =
    match Value_summary.preview_compression !vs with
    | Some (err, saved) ->
      check Alcotest.bool "err nonneg" true (err >= 0.0);
      (match Value_summary.apply_compression !vs with
      | Some vs' ->
        check Alcotest.int "saved matches"
          (Value_summary.size_bytes !vs - saved)
          (Value_summary.size_bytes vs');
        vs := vs';
        squeeze (n + 1)
      | None -> Alcotest.fail "preview promised a step")
    | None -> n
  in
  let steps = squeeze 0 in
  check Alcotest.bool "made progress" true (steps > 0);
  check Alcotest.bool "smaller" true (Value_summary.size_bytes !vs < total_before)

let vs_fuse_preserves_numeric_mixture =
  QCheck.Test.make ~name:"fused numeric selectivity is count-weighted mixture" ~count:60
    QCheck.(pair (list_of_size (Gen.int_range 1 40) (int_range 0 60))
              (list_of_size (Gen.int_range 1 40) (int_range 0 60)))
    (fun (xs, ys) ->
      let open Xc_xml.Value in
      let a = Value_summary.of_values (List.map (fun v -> Numeric v) xs) in
      let b = Value_summary.of_values (List.map (fun v -> Numeric v) ys) in
      let f = Value_summary.fuse a b in
      let na = float_of_int (List.length xs) and nb = float_of_int (List.length ys) in
      let w = na /. (na +. nb) in
      List.for_all
        (fun h ->
          let expected =
            (w *. Value_summary.numeric_selectivity a ~lo:0 ~hi:h)
            +. ((1.0 -. w) *. Value_summary.numeric_selectivity b ~lo:0 ~hi:h)
          in
          Float.abs (Value_summary.numeric_selectivity f ~lo:0 ~hi:h -. expected) < 1e-6)
        [ 10; 30; 60 ])

let () =
  Alcotest.run ~and_exit:false "xc_vsumm"
    [ ( "histogram",
        [ Alcotest.test_case "exact build" `Quick test_hist_build_exact;
          Alcotest.test_case "range queries" `Quick test_hist_range_queries;
          Alcotest.test_case "bucket cap" `Quick test_hist_bucket_cap;
          Alcotest.test_case "merge mass" `Quick test_hist_merge_mass;
          Alcotest.test_case "merge overlap" `Quick test_hist_merge_overlapping;
          Alcotest.test_case "compress" `Quick test_hist_compress;
          Alcotest.test_case "compress to one" `Quick test_hist_compress_to_one;
          Alcotest.test_case "equiwidth" `Quick test_hist_equiwidth;
          Alcotest.test_case "empty rejected" `Quick test_hist_empty_rejected;
          QCheck_alcotest.to_alcotest hist_prefix_monotone;
          QCheck_alcotest.to_alcotest hist_merge_commutes ] );
      ( "rle_bitmap",
        [ Alcotest.test_case "basic" `Quick test_rle_basic;
          Alcotest.test_case "empty" `Quick test_rle_empty;
          Alcotest.test_case "add/remove" `Quick test_rle_add_remove;
          Alcotest.test_case "union" `Quick test_rle_union;
          QCheck_alcotest.to_alcotest rle_roundtrip ] );
      ( "pst",
        [ Alcotest.test_case "exact counts" `Quick test_pst_exact_counts;
          Alcotest.test_case "presence semantics" `Quick test_pst_presence_not_occurrences;
          Alcotest.test_case "selectivity exact" `Quick test_pst_selectivity_exact;
          Alcotest.test_case "depth cap + markov" `Quick test_pst_depth_cap;
          Alcotest.test_case "merge" `Quick test_pst_merge;
          Alcotest.test_case "prune keeps symbols" `Quick test_pst_prune_keeps_symbols;
          Alcotest.test_case "prune reduces size" `Quick test_pst_prune_reduces_size;
          Alcotest.test_case "negative queries zero" `Quick test_pst_negative_queries_zero;
          Alcotest.test_case "copy independent" `Quick test_pst_copy_independent;
          QCheck_alcotest.to_alcotest pst_estimate_bounded;
          QCheck_alcotest.to_alcotest pst_exact_when_unpruned ] );
      ( "term_vector",
        [ Alcotest.test_case "centroid" `Quick test_centroid;
          Alcotest.test_case "combine" `Quick test_centroid_combine ] );
      ( "term_hist",
        [ Alcotest.test_case "exact top + bucket" `Quick test_term_hist_exact_top;
          Alcotest.test_case "selectivity product" `Quick test_term_hist_selectivity_product;
          Alcotest.test_case "compress" `Quick test_term_hist_compress;
          Alcotest.test_case "compress exhausts" `Quick test_term_hist_compress_exhausts;
          Alcotest.test_case "fuse" `Quick test_term_hist_fuse;
          Alcotest.test_case "dot products" `Quick test_term_hist_dots ] );
      ( "value_summary",
        [ Alcotest.test_case "of_values" `Quick test_vs_of_values;
          Alcotest.test_case "selectivities" `Quick test_vs_selectivities;
          Alcotest.test_case "fuse mismatch" `Quick test_vs_fuse_type_mismatch;
          Alcotest.test_case "pred_dots none" `Quick test_vs_pred_dots_none;
          Alcotest.test_case "pred_dots symmetry" `Quick test_vs_pred_dots_identical_symmetry;
          Alcotest.test_case "compression cycle" `Quick test_vs_compression_cycle;
          QCheck_alcotest.to_alcotest vs_fuse_preserves_numeric_mixture ] ) ]

(* ---- Wavelet (appended suite) -------------------------------------------- *)

let test_wavelet_exact_small () =
  (* few distinct values, plenty of coefficients: reconstruction exact *)
  let w = Wavelet.build ~n_coeffs:64 [| 1; 1; 2; 3; 3; 3; 7; 7 |] in
  checkf3 "freq of 3" (3.0 /. 8.0) (Wavelet.range_fraction w 3 3);
  checkf3 "range 1-3" (6.0 /. 8.0) (Wavelet.range_fraction w 1 3);
  checkf3 "all" 1.0 (Wavelet.range_fraction w 1 7);
  checkf3 "none" 0.0 (Wavelet.range_fraction w 8 100)

let test_wavelet_compression_bounds () =
  let values = Array.init 5000 (fun i -> i * i mod 997) in
  let w = Wavelet.build ~n_coeffs:16 values in
  check Alcotest.bool "few coeffs" true (Wavelet.n_retained w <= 16);
  check Alcotest.int "size" (8 * Wavelet.n_retained w) (Wavelet.size_bytes w);
  (* estimates stay plausible even at heavy compression *)
  let f = Wavelet.range_fraction w 0 498 in
  check Alcotest.bool "about half" true (f > 0.3 && f < 0.7)

let test_wavelet_prefix_monotone () =
  let values = Array.init 2000 (fun i -> (i * 7919) mod 1500) in
  let w = Wavelet.build ~n_coeffs:24 values in
  let last = ref 0.0 in
  for v = 0 to 1500 do
    let f = Wavelet.prefix_fraction w v in
    if f < !last -. 1e-9 then Alcotest.failf "not monotone at %d" v;
    last := f
  done

let wavelet_matches_histogram_roughly =
  QCheck.Test.make ~name:"wavelet and histogram agree on smooth data" ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let rng = Xc_util.Rng.create seed in
      let values = Array.init 1000 (fun _ -> Xc_util.Rng.int rng 256) in
      let w = Wavelet.build ~n_coeffs:48 values in
      let h = Histogram.build ~n_buckets:48 values in
      List.for_all
        (fun p ->
          Float.abs (Wavelet.prefix_fraction w p -. Histogram.prefix_fraction h p)
          < 0.12)
        [ 32; 64; 128; 192 ])

let test_maxdiff_isolates_outliers () =
  (* one huge spike amid uniform noise: maxdiff gives the spike a tight
     bucket, so its frequency estimate is (nearly) exact *)
  let values =
    Array.concat [ Array.make 1000 500; Array.init 200 (fun i -> i * 5) ]
  in
  let h = Histogram.build_maxdiff ~n_buckets:8 values in
  let f = Histogram.range_fraction h 500 500 in
  check Alcotest.bool "spike isolated" true (f > 0.75);
  checkf3 "mass" 1200.0 (Histogram.n_values h)

let test_maxdiff_small_cases () =
  let h = Histogram.build_maxdiff [| 5 |] in
  checkf3 "single" 1.0 (Histogram.range_fraction h 5 5);
  let h2 = Histogram.build_maxdiff ~n_buckets:10 [| 1; 2; 3 |] in
  checkf3 "per-value" (1.0 /. 3.0) (Histogram.range_fraction h2 2 2)

let () =
  Alcotest.run "xc_vsumm_wavelet" ~and_exit:false
    [ ( "wavelet",
        [ Alcotest.test_case "exact small" `Quick test_wavelet_exact_small;
          Alcotest.test_case "compression bounds" `Quick test_wavelet_compression_bounds;
          Alcotest.test_case "prefix monotone" `Quick test_wavelet_prefix_monotone;
          QCheck_alcotest.to_alcotest wavelet_matches_histogram_roughly ] );
      ( "maxdiff",
        [ Alcotest.test_case "isolates outliers" `Quick test_maxdiff_isolates_outliers;
          Alcotest.test_case "small cases" `Quick test_maxdiff_small_cases ] ) ]
