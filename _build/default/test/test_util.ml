(* Tests for Xc_util: the binary heap, the splitmix64 RNG, and the
   Zipfian sampler. *)

module Heap = Xc_util.Heap
module Rng = Xc_util.Rng
module Zipf = Xc_util.Zipf

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ---- Heap ------------------------------------------------------------ *)

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  check Alcotest.bool "is_empty" true (Heap.is_empty h);
  check Alcotest.int "length" 0 (Heap.length h);
  check Alcotest.bool "pop" true (Heap.pop h = None);
  check Alcotest.bool "peek" true (Heap.peek h = None);
  check Alcotest.bool "pop_max" true (Heap.pop_max h = None)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h p (int_of_float p)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = List.init 5 (fun _ -> snd (Option.get (Heap.pop h))) in
  check (Alcotest.list Alcotest.int) "ascending" [ 1; 2; 3; 4; 5 ] order

let test_heap_duplicates () =
  let h = Heap.create () in
  List.iter (fun x -> Heap.push h 1.0 x) [ 10; 20; 30 ];
  Heap.push h 0.5 0;
  check Alcotest.int "length" 4 (Heap.length h);
  check Alcotest.int "min first" 0 (snd (Option.get (Heap.pop h)));
  let rest = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  check (Alcotest.list Alcotest.int) "all present" [ 10; 20; 30 ]
    (List.sort Int.compare rest)

let test_heap_pop_max () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h p (int_of_float p)) [ 5.0; 1.0; 9.0; 3.0 ];
  check Alcotest.int "max" 9 (snd (Option.get (Heap.pop_max h)));
  check Alcotest.int "len after" 3 (Heap.length h);
  check Alcotest.int "min still first" 1 (snd (Option.get (Heap.pop h)));
  check Alcotest.int "next max" 5 (snd (Option.get (Heap.pop_max h)));
  check Alcotest.int "last" 3 (snd (Option.get (Heap.pop h)))

let test_heap_growth () =
  let h = Heap.create ~capacity:2 () in
  for i = 999 downto 0 do
    Heap.push h (float_of_int i) i
  done;
  check Alcotest.int "length" 1000 (Heap.length h);
  for i = 0 to 999 do
    check Alcotest.int "ordered pop" i (snd (Option.get (Heap.pop h)))
  done

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 1;
  Heap.push h 2.0 2;
  Heap.clear h;
  check Alcotest.int "cleared" 0 (Heap.length h);
  Heap.push h 3.0 3;
  check Alcotest.int "reusable" 3 (snd (Option.get (Heap.pop h)))

let test_heap_iter () =
  let h = Heap.create () in
  List.iter (fun x -> Heap.push h (float_of_int x) x) [ 4; 2; 7 ];
  let seen = ref [] in
  Heap.iter (fun _ x -> seen := x :: !seen) h;
  check (Alcotest.list Alcotest.int) "iter covers all" [ 2; 4; 7 ]
    (List.sort Int.compare !seen)

let heap_property =
  QCheck.Test.make ~name:"heap pops in priority order" ~count:200
    QCheck.(list (pair (float_range (-1000.0) 1000.0) small_int))
    (fun entries ->
      let h = Heap.create () in
      List.iter (fun (p, x) -> Heap.push h p x) entries;
      let popped = ref [] in
      let rec drain () =
        match Heap.pop h with
        | Some (p, _) ->
          popped := p :: !popped;
          drain ()
        | None -> ()
      in
      drain ();
      let prios = List.rev !popped in
      List.length prios = List.length entries
      && prios = List.sort Float.compare (List.map fst entries))

(* ---- Rng ------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let sa = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let sb = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  check Alcotest.bool "different seeds differ" true (sa <> sb)

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "int out of bounds: %d" v
  done;
  for _ = 1 to 10_000 do
    let v = Rng.int_range rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "int_range out of bounds: %d" v
  done;
  for _ = 1 to 1_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "float out of bounds: %f" v
  done

let test_rng_invalid () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "empty range"
    (Invalid_argument "Rng.int_range: empty range") (fun () ->
      ignore (Rng.int_range rng 3 2));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

let test_rng_uniformity () =
  (* coarse: each of 10 cells within 3x of the expected count *)
  let rng = Rng.create 99 in
  let cells = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let c = Rng.int rng 10 in
    cells.(c) <- cells.(c) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 1000 || c > 4000 then Alcotest.failf "cell %d badly skewed: %d" i c)
    cells

let test_rng_split_independent () =
  let rng = Rng.create 5 in
  let child = Rng.split rng in
  let a = List.init 10 (fun _ -> Rng.int rng 1000) in
  let b = List.init 10 (fun _ -> Rng.int child 1000) in
  check Alcotest.bool "split streams differ" true (a <> b)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 11 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_chance_extremes () =
  let rng = Rng.create 13 in
  for _ = 1 to 100 do
    check Alcotest.bool "p=1 always true" true (Rng.chance rng 1.0)
  done;
  for _ = 1 to 100 do
    check Alcotest.bool "p=0 never true" false (Rng.chance rng 0.0)
  done

let test_rng_geometric () =
  let rng = Rng.create 17 in
  check Alcotest.int "p=1 is 0" 0 (Rng.geometric rng 1.0);
  let mean =
    let n = 5000 in
    let total = ref 0 in
    for _ = 1 to n do
      total := !total + Rng.geometric rng 0.5
    done;
    float_of_int !total /. float_of_int n
  in
  (* E[failures] = (1-p)/p = 1 *)
  if mean < 0.8 || mean > 1.2 then Alcotest.failf "geometric mean off: %f" mean

(* ---- Zipf ------------------------------------------------------------ *)

let test_zipf_uniform_when_flat () =
  let z = Zipf.create ~n:4 ~skew:0.0 in
  List.iter (fun k -> checkf "uniform prob" 0.25 (Zipf.prob z k)) [ 0; 1; 2; 3 ]

let test_zipf_probs_sum_to_one () =
  let z = Zipf.create ~n:100 ~skew:1.0 in
  let total = List.fold_left (fun s k -> s +. Zipf.prob z k) 0.0 (List.init 100 Fun.id) in
  checkf "sums to 1" 1.0 total

let test_zipf_monotone () =
  let z = Zipf.create ~n:50 ~skew:1.2 in
  for k = 0 to 48 do
    if Zipf.prob z k < Zipf.prob z (k + 1) -. 1e-12 then
      Alcotest.failf "prob not decreasing at %d" k
  done

let test_zipf_out_of_range () =
  let z = Zipf.create ~n:5 ~skew:1.0 in
  checkf "below" 0.0 (Zipf.prob z (-1));
  checkf "above" 0.0 (Zipf.prob z 5)

let test_zipf_sampling_skew () =
  let z = Zipf.create ~n:1000 ~skew:1.0 in
  let rng = Rng.create 23 in
  let head = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Zipf.sample z rng < 10 then incr head
  done;
  (* with skew 1, the top-10 ranks carry ~39% of the mass for n=1000 *)
  let frac = float_of_int !head /. float_of_int n in
  if frac < 0.25 || frac > 0.55 then Alcotest.failf "head mass off: %f" frac

let test_zipf_sample_in_range =
  QCheck.Test.make ~name:"zipf samples in range" ~count:100
    QCheck.(pair (int_range 1 500) (float_range 0.0 2.0))
    (fun (n, skew) ->
      let z = Zipf.create ~n ~skew in
      let rng = Rng.create (n + int_of_float (skew *. 100.0)) in
      List.for_all
        (fun _ ->
          let s = Zipf.sample z rng in
          s >= 0 && s < n)
        (List.init 50 Fun.id))

let () =
  Alcotest.run "xc_util"
    [ ( "heap",
        [ Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "pop_max" `Quick test_heap_pop_max;
          Alcotest.test_case "growth" `Quick test_heap_growth;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "iter" `Quick test_heap_iter;
          QCheck_alcotest.to_alcotest heap_property ] );
      ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "geometric" `Quick test_rng_geometric ] );
      ( "zipf",
        [ Alcotest.test_case "flat is uniform" `Quick test_zipf_uniform_when_flat;
          Alcotest.test_case "probs sum to 1" `Quick test_zipf_probs_sum_to_one;
          Alcotest.test_case "monotone" `Quick test_zipf_monotone;
          Alcotest.test_case "out of range" `Quick test_zipf_out_of_range;
          Alcotest.test_case "sampling skew" `Quick test_zipf_sampling_skew;
          QCheck_alcotest.to_alcotest test_zipf_sample_in_range ] ) ]
