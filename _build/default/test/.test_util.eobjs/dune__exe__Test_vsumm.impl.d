test/test_vsumm.ml: Alcotest Array Float Fun Gen Histogram Int List Printf Pst QCheck QCheck_alcotest Rle_bitmap Term_hist Term_vector Value_summary Wavelet Xc_util Xc_vsumm Xc_xml
