test/test_vsumm.mli:
