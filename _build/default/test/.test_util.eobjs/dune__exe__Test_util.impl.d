test/test_util.ml: Alcotest Array Float Fun Int List Option QCheck QCheck_alcotest Xc_util
