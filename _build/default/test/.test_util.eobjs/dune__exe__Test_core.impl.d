test/test_core.ml: Alcotest Document Filename Float Fun Hashtbl Label List Node Option String Sys Value Xc_core Xc_data Xc_exp Xc_twig Xc_vsumm Xc_xml
