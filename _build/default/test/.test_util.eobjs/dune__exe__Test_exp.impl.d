test/test_exp.ml: Alcotest Buffer Error_metric Float Format List Report Runner String Xc_core Xc_exp Xc_twig Xc_xml
