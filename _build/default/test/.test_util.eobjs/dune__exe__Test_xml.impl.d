test/test_xml.ml: Alcotest Array Dictionary Document Label List Node Option Parser Printf QCheck QCheck_alcotest Stats String Tokenizer Value Writer Xc_core Xc_twig Xc_util Xc_xml
