test/test_integration.ml: Alcotest Buffer Document Filename Float Fun Label List Node Parser QCheck QCheck_alcotest String Sys Writer Xc_core Xc_data Xc_twig Xc_util Xc_xml
