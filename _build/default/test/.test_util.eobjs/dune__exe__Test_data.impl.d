test/test_data.ml: Alcotest Dictionary Document Hashtbl Label List Option Stats String Value Writer Xc_core Xc_data Xc_twig Xc_util Xc_xml
