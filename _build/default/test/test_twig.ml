(* Tests for Xc_twig: path expressions, predicates, query model, the
   textual parser, the exact evaluator and workload generation. *)

open Xc_twig
open Xc_xml

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* A small fixed document:
   db
     paper (year=2000, cites)   title="Counting Twigs"  abs={xml,tree,count}
     paper (year=2004)          title="Synopses"        abs={xml,synopsis}
     book  (year=2004)          title="Databases"
*)
let sample_doc () =
  let paper1 =
    Node.make "paper"
      ~children:
        [ Node.leaf "year" (Value.Numeric 2000);
          Node.leaf "title" (Value.Str "Counting Twigs");
          Node.leaf "abs"
            (Value.text_of_terms
               [ Dictionary.of_string "xml"; Dictionary.of_string "tree";
                 Dictionary.of_string "count" ]);
          Node.make "cites" ~children:[ Node.make "ref"; Node.make "ref" ] ]
  in
  let paper2 =
    Node.make "paper"
      ~children:
        [ Node.leaf "year" (Value.Numeric 2004);
          Node.leaf "title" (Value.Str "Synopses");
          Node.leaf "abs"
            (Value.text_of_terms
               [ Dictionary.of_string "xml"; Dictionary.of_string "synopsis" ]) ]
  in
  let book =
    Node.make "book"
      ~children:
        [ Node.leaf "year" (Value.Numeric 2004);
          Node.leaf "title" (Value.Str "Databases") ]
  in
  Document.create (Node.make "db" ~children:[ paper1; paper2; book ])

let count doc q = Twig_eval.selectivity doc (Twig_parse.parse q)

(* ---- Predicate ---------------------------------------------------------- *)

let test_predicate_range () =
  check Alcotest.bool "in" true (Predicate.matches (Range (1, 5)) (Value.Numeric 3));
  check Alcotest.bool "low edge" true (Predicate.matches (Range (3, 5)) (Value.Numeric 3));
  check Alcotest.bool "high edge" true (Predicate.matches (Range (1, 3)) (Value.Numeric 3));
  check Alcotest.bool "out" false (Predicate.matches (Range (4, 5)) (Value.Numeric 3));
  check Alcotest.bool "wrong type" false (Predicate.matches (Range (1, 5)) (Value.Str "3"))

let test_predicate_contains () =
  check Alcotest.bool "middle" true (Predicate.matches (Contains "ell") (Value.Str "hello"));
  check Alcotest.bool "prefix" true (Predicate.matches (Contains "he") (Value.Str "hello"));
  check Alcotest.bool "suffix" true (Predicate.matches (Contains "lo") (Value.Str "hello"));
  check Alcotest.bool "whole" true (Predicate.matches (Contains "hello") (Value.Str "hello"));
  check Alcotest.bool "absent" false (Predicate.matches (Contains "xyz") (Value.Str "hello"));
  check Alcotest.bool "empty needle" true (Predicate.matches (Contains "") (Value.Str "hi"));
  check Alcotest.bool "longer than hay" false (Predicate.matches (Contains "hihi") (Value.Str "hi"));
  check Alcotest.bool "wrong type" false (Predicate.matches (Contains "3") (Value.Numeric 3))

let test_predicate_ftcontains () =
  let xml = Dictionary.of_string "xml" and tree = Dictionary.of_string "tree" in
  let v = Value.text_of_terms [ xml; tree ] in
  check Alcotest.bool "one" true (Predicate.matches (Ft_contains [ xml ]) v);
  check Alcotest.bool "both" true (Predicate.matches (Ft_contains [ xml; tree ]) v);
  check Alcotest.bool "missing" false
    (Predicate.matches (Ft_contains [ Dictionary.of_string "nope" ]) v);
  check Alcotest.bool "partial" false
    (Predicate.matches (Ft_contains [ xml; Dictionary.of_string "nope" ]) v)

(* ---- Twig_query ---------------------------------------------------------- *)

let test_query_make_assigns_ids () =
  let q =
    Twig_query.make
      ( [],
        [ ( [ Path_expr.child "a" ],
            Twig_query.node
              ~edges:[ ([ Path_expr.child "b" ], Twig_query.node ()) ]
              () ) ] )
  in
  check Alcotest.int "3 nodes" 3 q.Twig_query.n_nodes;
  let ids = ref [] in
  Twig_query.iter_nodes (fun n -> ids := n.Twig_query.qid :: !ids) q;
  check (Alcotest.list Alcotest.int) "dense preorder" [ 0; 1; 2 ] (List.rev !ids)

let test_query_classify () =
  let mk preds = Twig_query.linear ~preds [ Path_expr.child "x" ] in
  let open Twig_query in
  check Alcotest.string "struct" "Struct" (class_name (classify (mk [])));
  check Alcotest.string "numeric" "Numeric"
    (class_name (classify (mk [ Predicate.Range (1, 2) ])));
  check Alcotest.string "string" "String"
    (class_name (classify (mk [ Predicate.Contains "a" ])));
  check Alcotest.string "text" "Text"
    (class_name
       (classify (mk [ Predicate.Ft_contains [ Dictionary.of_string "t" ] ])));
  check Alcotest.string "mixed" "Mixed"
    (class_name (classify (mk [ Predicate.Range (1, 2); Predicate.Contains "a" ])))

(* ---- Twig_parse ----------------------------------------------------------- *)

let test_parse_simple_paths () =
  let q = Twig_parse.parse "/db/paper/title" in
  check Alcotest.int "collapsed to one edge" 2 q.Twig_query.n_nodes;
  let q2 = Twig_parse.parse "//paper//title" in
  check Alcotest.int "desc edges" 2 q2.Twig_query.n_nodes

let test_parse_predicates () =
  let q = Twig_parse.parse "//paper[year > 2000]/title[contains(Tree)]" in
  check Alcotest.int "nodes: root, paper, year, title" 4 q.Twig_query.n_nodes;
  check Alcotest.int "preds" 2 (Twig_query.n_predicates q);
  check Alcotest.bool "mixed class" true (Twig_query.classify q = Twig_query.Cmixed)

let test_parse_ftcontains () =
  let q = Twig_parse.parse "//paper[abs ftcontains(xml, synopsis)]" in
  check Alcotest.int "preds" 1 (Twig_query.n_predicates q);
  check Alcotest.bool "text" true (Twig_query.classify q = Twig_query.Ctext)

let test_parse_range_forms () =
  List.iter
    (fun (s, expected) ->
      let q = Twig_parse.parse s in
      let found = ref None in
      Twig_query.iter_nodes
        (fun n -> match n.Twig_query.preds with [ p ] -> found := Some p | _ -> ())
        q;
      match !found with
      | Some p -> check Alcotest.bool s true (Predicate.equal p expected)
      | None -> Alcotest.failf "no predicate parsed in %s" s)
    [ ("//a[. > 5]", Predicate.Range (6, max_int));
      ("//a[. >= 5]", Predicate.Range (5, max_int));
      ("//a[. < 5]", Predicate.Range (min_int, 4));
      ("//a[. <= 5]", Predicate.Range (min_int, 5));
      ("//a[. = 5]", Predicate.Range (5, 5));
      ("//a[. in 2..8]", Predicate.Range (2, 8));
      ("//a[b in 2..8]", Predicate.Range (2, 8)) ]

let test_parse_wildcard () =
  let q = Twig_parse.parse "/db/*/title" in
  check Alcotest.int "nodes" 2 q.Twig_query.n_nodes

let test_parse_keyword_like_tags () =
  (* tags that start like keywords must not be eaten as predicates *)
  let q = Twig_parse.parse "//item[incategory]" in
  check Alcotest.int "branch, not range" 3 q.Twig_query.n_nodes;
  check Alcotest.int "no preds" 0 (Twig_query.n_predicates q)

let test_parse_errors () =
  List.iter
    (fun s ->
      match Twig_parse.parse s with
      | exception Twig_parse.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %s" s)
    [ ""; "paper"; "//paper["; "//paper[]"; "//paper[. in 2..]"; "//a/"; "//a trailing" ]

let test_parse_pp_roundtrip () =
  (* pretty-printing a parsed query re-parses to the same structure *)
  List.iter
    (fun s ->
      let q = Twig_parse.parse s in
      let printed = Format.asprintf "%a" Twig_query.pp q in
      let q2 = Twig_parse.parse (String.sub printed 1 (String.length printed - 1)) in
      check Alcotest.int ("same shape: " ^ s) q.Twig_query.n_nodes q2.Twig_query.n_nodes)
    [ "/db/paper/title"; "//paper[year > 2000]/title"; "//a[b][c]//d" ]

(* ---- Twig_eval -------------------------------------------------------------- *)

let test_eval_child_paths () =
  let doc = sample_doc () in
  checkf "papers" 2.0 (count doc "/db/paper");
  checkf "titles" 3.0 (count doc "/db/*/title");
  checkf "paper titles" 2.0 (count doc "/db/paper/title");
  checkf "missing" 0.0 (count doc "/db/journal")

let test_eval_descendant () =
  let doc = sample_doc () in
  checkf "all refs" 2.0 (count doc "//ref");
  checkf "ref under paper" 2.0 (count doc "//paper//ref");
  checkf "titles anywhere" 3.0 (count doc "//title");
  checkf "db itself not descendant" 1.0 (count doc "//db")

let test_eval_branching_tuples () =
  let doc = sample_doc () in
  (* binding tuples multiply across branches: paper1 has 2 refs x 1 title *)
  checkf "refs x titles" 2.0 (count doc "//paper[title]/cites/ref");
  checkf "paper with cites and title" 1.0 (count doc "//paper[cites][title]")

let test_eval_value_predicates () =
  let doc = sample_doc () in
  checkf "year > 2000" 1.0 (count doc "//paper[year > 2000]");
  checkf "year = 2004 anywhere" 2.0 (count doc "//*[year = 2004]");
  checkf "title contains" 1.0 (count doc "//paper[title contains(Twig)]");
  checkf "ftcontains both" 1.0 (count doc "//paper[abs ftcontains(xml, synopsis)]");
  checkf "ftcontains xml" 2.0 (count doc "//paper[abs ftcontains(xml)]");
  checkf "pred on wrong type" 0.0 (count doc "//paper[title > 1900]")

let test_eval_example_from_paper () =
  (* the paper's intro example shape:
     //paper[year>2000][abs ftcontains(synopsis, xml)]/title[contains(Tree)] *)
  let doc = sample_doc () in
  checkf "full twig" 0.0
    (count doc "//paper[year > 2000][abs ftcontains(synopsis, xml)]/title[contains(Tree)]");
  checkf "relaxed" 1.0
    (count doc "//paper[year > 2000][abs ftcontains(synopsis, xml)]/title")

let test_eval_matches_path () =
  let doc = sample_doc () in
  (* preorder: 0 db, 1 paper1, ..., 5 cites, 6 ref *)
  check Alcotest.bool "root//ref reaches refs" true
    (Twig_eval.matches_path doc [ Path_expr.desc "ref" ] 0 6);
  check Alcotest.bool "no self match" false
    (Twig_eval.matches_path doc [ Path_expr.desc "db" ] 0 0)

let eval_against_naive =
  (* the O(|Q|·n) evaluator agrees with a naive exponential evaluator on
     random small documents and linear queries *)
  QCheck.Test.make ~name:"evaluator agrees with naive semantics" ~count:80
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Xc_util.Rng.create seed in
      let tags = [| "a"; "b"; "c" |] in
      let rec gen depth =
        let n_children = if depth >= 3 then 0 else Xc_util.Rng.int rng 3 in
        Node.make (Xc_util.Rng.pick rng tags)
          ~children:(List.init n_children (fun _ -> gen (depth + 1)))
      in
      let doc = Document.create (Node.make "r" ~children:[ gen 0; gen 0 ]) in
      let tag = Xc_util.Rng.pick rng tags in
      (* naive //tag count *)
      let naive = ref 0 in
      Node.iter
        (fun n -> if String.equal (Label.to_string n.Node.label) tag then incr naive)
        doc.Document.root;
      let got = Twig_eval.selectivity doc (Twig_parse.parse ("//" ^ tag)) in
      Float.abs (got -. float_of_int !naive) < 1e-9)

(* ---- Workload ----------------------------------------------------------------- *)

let bigger_doc () = Xc_data.Imdb.generate ~seed:5 ~n_movies:120 ()

let test_workload_positive () =
  let doc = bigger_doc () in
  let spec = { Workload.default_spec with n_queries = 60 } in
  let wl = Workload.generate ~spec doc in
  check Alcotest.bool "nonempty" true (List.length wl > 0);
  List.iter
    (fun e ->
      if e.Workload.true_count <= 0.0 then
        Alcotest.failf "non-positive query: %s"
          (Format.asprintf "%a" Twig_query.pp e.Workload.query);
      (* recorded count must equal re-evaluation *)
      let again = Twig_eval.selectivity doc e.Workload.query in
      if Float.abs (again -. e.Workload.true_count) > 1e-6 then
        Alcotest.fail "count mismatch")
    wl

let test_workload_classes_covered () =
  let doc = bigger_doc () in
  let spec = { Workload.default_spec with n_queries = 80 } in
  let wl = Workload.generate ~spec doc in
  let classes = Workload.classes wl in
  List.iter
    (fun c ->
      check Alcotest.bool (Twig_query.class_name c) true (List.mem c classes))
    [ Twig_query.Cstruct; Cnumeric; Cstring; Ctext ];
  (* class labels agree with query contents *)
  List.iter
    (fun e ->
      check Alcotest.bool "label consistent" true
        (Twig_query.classify e.Workload.query = e.Workload.cls))
    wl

let test_workload_deterministic () =
  let doc = bigger_doc () in
  let spec = { Workload.default_spec with n_queries = 20 } in
  let a = Workload.generate ~spec doc and b = Workload.generate ~spec doc in
  check Alcotest.int "same size" (List.length a) (List.length b);
  List.iter2
    (fun x y ->
      check Alcotest.string "same query"
        (Format.asprintf "%a" Twig_query.pp x.Workload.query)
        (Format.asprintf "%a" Twig_query.pp y.Workload.query))
    a b

let test_workload_negative () =
  let doc = bigger_doc () in
  let negs = Workload.negative ~n:20 doc in
  check Alcotest.bool "found some" true (List.length negs > 0);
  List.iter
    (fun e -> checkf "zero selectivity" 0.0 e.Workload.true_count)
    negs

let test_sanity_bound () =
  let entry count =
    { Workload.query = Twig_parse.parse "//x";
      true_count = count;
      cls = Twig_query.Cstruct }
  in
  let wl = List.map entry [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 100. ] in
  checkf "10th percentile" 1.0 (Workload.sanity_bound wl);
  checkf "empty default" 1.0 (Workload.sanity_bound []);
  (* never below 1 *)
  let tiny = List.map entry [ 0.1; 0.2; 0.3 ] in
  checkf "floor" 1.0 (Workload.sanity_bound tiny)

let () =
  Alcotest.run ~and_exit:false "xc_twig"
    [ ( "predicate",
        [ Alcotest.test_case "range" `Quick test_predicate_range;
          Alcotest.test_case "contains" `Quick test_predicate_contains;
          Alcotest.test_case "ftcontains" `Quick test_predicate_ftcontains ] );
      ( "twig_query",
        [ Alcotest.test_case "make ids" `Quick test_query_make_assigns_ids;
          Alcotest.test_case "classify" `Quick test_query_classify ] );
      ( "twig_parse",
        [ Alcotest.test_case "simple paths" `Quick test_parse_simple_paths;
          Alcotest.test_case "predicates" `Quick test_parse_predicates;
          Alcotest.test_case "ftcontains" `Quick test_parse_ftcontains;
          Alcotest.test_case "range forms" `Quick test_parse_range_forms;
          Alcotest.test_case "wildcard" `Quick test_parse_wildcard;
          Alcotest.test_case "keyword-like tags" `Quick test_parse_keyword_like_tags;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "pp roundtrip" `Quick test_parse_pp_roundtrip ] );
      ( "twig_eval",
        [ Alcotest.test_case "child paths" `Quick test_eval_child_paths;
          Alcotest.test_case "descendant" `Quick test_eval_descendant;
          Alcotest.test_case "branch tuples" `Quick test_eval_branching_tuples;
          Alcotest.test_case "value predicates" `Quick test_eval_value_predicates;
          Alcotest.test_case "paper example" `Quick test_eval_example_from_paper;
          Alcotest.test_case "matches_path" `Quick test_eval_matches_path;
          QCheck_alcotest.to_alcotest eval_against_naive ] );
      ( "workload",
        [ Alcotest.test_case "positive" `Quick test_workload_positive;
          Alcotest.test_case "classes covered" `Quick test_workload_classes_covered;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "negative" `Quick test_workload_negative;
          Alcotest.test_case "sanity bound" `Quick test_sanity_bound ] ) ]


(* ---- Boolean-model full-text extensions (appended suite) ---------------- *)

let test_ft_any_matches () =
  let a = Dictionary.of_string "alpha" and b = Dictionary.of_string "beta" in
  let c = Dictionary.of_string "gamma" in
  let v = Value.text_of_terms [ a; b ] in
  check Alcotest.bool "first" true (Predicate.matches (Ft_any [ a; c ]) v);
  check Alcotest.bool "none" false (Predicate.matches (Ft_any [ c ]) v);
  check Alcotest.bool "wrong type" false (Predicate.matches (Ft_any [ a ]) (Value.Str "alpha"))

let test_ft_excludes_matches () =
  let a = Dictionary.of_string "alpha" and c = Dictionary.of_string "gamma" in
  let v = Value.text_of_terms [ a ] in
  check Alcotest.bool "excluded ok" true (Predicate.matches (Ft_excludes [ c ]) v);
  check Alcotest.bool "present fails" false (Predicate.matches (Ft_excludes [ a; c ]) v)

let test_ft_parse_forms () =
  let q = Twig_parse.parse "//paper[abs ftany(xml, tree)]" in
  check Alcotest.int "one pred" 1 (Twig_query.n_predicates q);
  check Alcotest.bool "text class" true (Twig_query.classify q = Twig_query.Ctext);
  let q2 = Twig_parse.parse "//paper[abs ftexcludes(xml)]" in
  check Alcotest.int "one pred" 1 (Twig_query.n_predicates q2)

let test_ft_eval () =
  let doc = sample_doc () in
  checkf "any xml|synopsis -> both papers" 2.0
    (count doc "//paper[abs ftany(xml, synopsis)]");
  checkf "any tree -> one" 1.0 (count doc "//paper[abs ftany(tree)]");
  checkf "excludes synopsis -> one paper" 1.0
    (count doc "//paper[abs ftexcludes(synopsis)]");
  checkf "excludes xml -> none" 0.0 (count doc "//paper[abs ftexcludes(xml)]")

let test_ft_pp_roundtrip () =
  List.iter
    (fun s ->
      let q = Twig_parse.parse s in
      let printed = Format.asprintf "%a" Twig_query.pp q in
      let q2 = Twig_parse.parse (String.sub printed 1 (String.length printed - 1)) in
      check Alcotest.bool ("pp roundtrip " ^ s) true
        (Format.asprintf "%a" Twig_query.pp q2 = printed))
    [ "//paper[abs ftany(xml,tree)]"; "//paper[abs ftexcludes(xml)]" ]

let () =
  Alcotest.run "xc_twig_fulltext"
    [ ( "boolean-model",
        [ Alcotest.test_case "ftany matches" `Quick test_ft_any_matches;
          Alcotest.test_case "ftexcludes matches" `Quick test_ft_excludes_matches;
          Alcotest.test_case "parse forms" `Quick test_ft_parse_forms;
          Alcotest.test_case "eval" `Quick test_ft_eval;
          Alcotest.test_case "pp roundtrip" `Quick test_ft_pp_roundtrip ] ) ]
