examples/text_search.mli:
