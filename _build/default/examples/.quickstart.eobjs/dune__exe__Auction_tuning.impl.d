examples/auction_tuning.ml: Format List String Xc_core Xc_data Xc_twig Xc_xml
