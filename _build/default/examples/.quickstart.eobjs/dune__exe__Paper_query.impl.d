examples/paper_query.ml: Array Format List Printf Seq Xc_core Xc_data Xc_exp Xc_twig Xc_xml
