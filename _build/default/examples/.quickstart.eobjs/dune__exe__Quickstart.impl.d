examples/quickstart.ml: Format List Xc_core Xc_twig Xc_xml
