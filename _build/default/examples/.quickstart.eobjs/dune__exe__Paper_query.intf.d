examples/paper_query.mli:
