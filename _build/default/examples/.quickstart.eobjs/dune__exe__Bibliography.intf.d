examples/bibliography.mli:
