examples/quickstart.mli:
