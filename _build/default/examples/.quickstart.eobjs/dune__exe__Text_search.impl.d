examples/text_search.ml: Array Format Hashtbl List Option Printf Xc_core Xc_data Xc_twig Xc_xml
