(** A mutable binary min-heap ordered by a float priority.

    Used as the marginal-loss priority queue of the construction
    algorithm and as the leaf-pruning queue inside PSTs. Entries are not
    removable; consumers use lazy invalidation (pop and discard stale
    entries). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h priority x] inserts [x]; smaller priorities pop first. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum entry. *)

val peek : 'a t -> (float * 'a) option

val pop_max : 'a t -> (float * 'a) option
(** Removes the entry with the {e largest} priority (linear scan; used
    to evict the worst candidate when a bounded pool overflows). *)

val clear : 'a t -> unit

val iter : (float -> 'a -> unit) -> 'a t -> unit
(** Iterates in arbitrary (heap) order. *)
