type t = {
  cdf : float array; (* cdf.(k) = P(rank <= k) *)
  n : int;
}

let create ~n ~skew =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let weights = Array.init n (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) skew) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun k w ->
      acc := !acc +. (w /. total);
      cdf.(k) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { cdf; n }

let sample t rng =
  let u = Rng.float rng 1.0 in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (t.n - 1)

let prob t k =
  if k < 0 || k >= t.n then 0.0
  else if k = 0 then t.cdf.(0)
  else t.cdf.(k) -. t.cdf.(k - 1)

let n t = t.n
