type 'a t = {
  mutable prio : float array;
  mutable data : 'a option array;
  mutable size : int;
}

let create ?(capacity = 64) () =
  { prio = Array.make capacity 0.0; data = Array.make capacity None; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let grow h =
  let n = Array.length h.prio in
  let prio = Array.make (2 * n) 0.0 in
  Array.blit h.prio 0 prio 0 n;
  h.prio <- prio;
  let data = Array.make (2 * n) None in
  Array.blit h.data 0 data 0 n;
  h.data <- data

let swap h i j =
  let p = h.prio.(i) in
  h.prio.(i) <- h.prio.(j);
  h.prio.(j) <- p;
  let d = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- d

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.prio.(i) < h.prio.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.prio.(l) < h.prio.(!smallest) then smallest := l;
  if r < h.size && h.prio.(r) < h.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h priority x =
  if h.size = Array.length h.prio then grow h;
  h.prio.(h.size) <- priority;
  h.data.(h.size) <- Some x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else
    match h.data.(0) with
    | Some x -> Some (h.prio.(0), x)
    | None -> assert false

let pop h =
  match peek h with
  | None -> None
  | Some _ as result ->
    h.size <- h.size - 1;
    h.prio.(0) <- h.prio.(h.size);
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- None;
    sift_down h 0;
    result

let remove_at h i =
  h.size <- h.size - 1;
  h.prio.(i) <- h.prio.(h.size);
  h.data.(i) <- h.data.(h.size);
  h.data.(h.size) <- None;
  if i < h.size then begin
    sift_down h i;
    sift_up h i
  end

let pop_max h =
  if h.size = 0 then None
  else begin
    let worst = ref 0 in
    for i = 1 to h.size - 1 do
      if h.prio.(i) > h.prio.(!worst) then worst := i
    done;
    let result =
      match h.data.(!worst) with
      | Some x -> Some (h.prio.(!worst), x)
      | None -> assert false
    in
    remove_at h !worst;
    result
  end

let clear h =
  Array.fill h.data 0 h.size None;
  h.size <- 0

let iter f h =
  for i = 0 to h.size - 1 do
    match h.data.(i) with
    | Some x -> f h.prio.(i) x
    | None -> assert false
  done
