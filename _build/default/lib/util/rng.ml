type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let create seed = { state = mix (Int64.of_int seed) }
let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* mask to OCaml's 63-bit native int to keep the value non-negative *)
  let r = Int64.to_int (next t) land max_int in
  r mod bound

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L
let chance t p = float t 1.0 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  let rec loop k = if chance t p then k else loop (k + 1) in
  loop 0
