(** Zipfian sampling over ranks [0..n-1].

    Term frequencies in natural text follow a power law; the synthetic
    corpora use this sampler so that TEXT predicates exhibit the highly
    skewed selectivities the paper's Fig. 9 discussion relies on. *)

type t

val create : n:int -> skew:float -> t
(** Distribution over [0..n-1] with P(rank k) ∝ 1/(k+1)^skew.
    [skew = 0] is uniform; typical natural-language skew is ~1. *)

val sample : t -> Rng.t -> int
(** Draws a rank (binary search over the precomputed CDF, O(log n)). *)

val prob : t -> int -> float
(** Probability mass of a rank. *)

val n : t -> int
