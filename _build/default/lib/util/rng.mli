(** Deterministic pseudo-random number generator (splitmix64).

    Every data set, workload and experiment in this repository draws
    randomness through an explicit [Rng.t], so all results are
    reproducible bit-for-bit from a seed. *)

type t

val create : int -> t
(** Seeded generator. *)

val split : t -> t
(** An independent generator derived from the current state (the parent
    advances). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** Uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val geometric : t -> float -> int
(** [geometric t p] counts failures before the first success of a
    Bernoulli([p]) sequence — small with high probability for large p. *)
