lib/util/rng.mli:
