lib/util/heap.mli:
