type t = {
  starts : int array; (* run start positions, ascending *)
  lens : int array;   (* run lengths, >= 1 *)
  card : int;
}

let empty = { starts = [||]; lens = [||]; card = 0 }

let of_sorted_list bits =
  match bits with
  | [] -> empty
  | first :: _ ->
    let starts = ref [] and lens = ref [] in
    let run_start = ref first and run_len = ref 0 and prev = ref (first - 1) in
    let card = ref 0 in
    List.iter
      (fun b ->
        if b <= !prev then invalid_arg "Rle_bitmap.of_sorted_list: not increasing";
        incr card;
        if b = !prev + 1 then incr run_len
        else begin
          if !run_len > 0 then begin
            starts := !run_start :: !starts;
            lens := !run_len :: !lens
          end;
          run_start := b;
          run_len := 1
        end;
        prev := b)
      bits;
    starts := !run_start :: !starts;
    lens := !run_len :: !lens;
    { starts = Array.of_list (List.rev !starts);
      lens = Array.of_list (List.rev !lens);
      card = !card }

let of_list bits = of_sorted_list (List.sort_uniq Int.compare bits)

let n_runs t = Array.length t.starts
let cardinality t = t.card

(* Index of the last run with start <= b, or -1. *)
let locate t b =
  let n = n_runs t in
  if n = 0 || b < t.starts.(0) then -1
  else begin
    let rec find lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if t.starts.(mid) <= b then find mid hi else find lo mid
    in
    find 0 n
  end

let mem t b =
  match locate t b with
  | -1 -> false
  | i -> b < t.starts.(i) + t.lens.(i)

let to_seq t =
  let rec runs i () =
    if i >= n_runs t then Seq.Nil
    else
      let rec bits j () =
        if j >= t.lens.(i) then runs (i + 1) ()
        else Seq.Cons (t.starts.(i) + j, bits (j + 1))
      in
      bits 0 ()
  in
  runs 0

let iter f t = Seq.iter f (to_seq t)

let union a b =
  let rec merge sa sb =
    match sa (), sb () with
    | Seq.Nil, _ -> List.of_seq sb
    | _, Seq.Nil -> List.of_seq sa
    | Seq.Cons (x, sa'), Seq.Cons (y, sb') ->
      if x < y then x :: merge sa' sb
      else if y < x then y :: merge sa sb'
      else x :: merge sa' sb'
  in
  of_sorted_list (merge (to_seq a) (to_seq b))

let add t b = if mem t b then t else union t (of_sorted_list [ b ])

let remove t b =
  if not (mem t b) then t
  else of_sorted_list (List.of_seq (Seq.filter (fun x -> x <> b) (to_seq t)))

let size_bytes t = 4 * n_runs t

let equal a b = a.starts = b.starts && a.lens = b.lens

let pp ppf t =
  Format.fprintf ppf "rle(%d bits" t.card;
  Array.iteri (fun i s -> Format.fprintf ppf "; %d+%d" s t.lens.(i)) t.starts;
  Format.fprintf ppf ")"
