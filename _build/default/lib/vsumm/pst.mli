(** Pruned Suffix Trees (PSTs) — the STRING value summaries.

    A PST is a trie over the substrings of a string collection. Each trie
    node represents one substring and records a {e presence count}: the
    number of strings in the collection that contain the substring at
    least once (this is the quantity substring selectivity needs). The
    tree is bounded in depth at construction and can be pruned leaf by
    leaf to meet a space budget; estimates for pruned substrings fall
    back on the Markovian assumption of Jagadish–Ng–Srivastava (PODS'99):
    [P(s1..sn) = P(s1..sk) * P(s2..sn) / P(s2..sk)].

    Following the paper's modification of the original PST proposal, the
    tree always keeps at least one node per symbol occurring in the
    distribution (depth-1 nodes are never pruned), which prevents large
    errors on negative substring queries. *)

type t

val build : ?max_depth:int -> ?max_nodes:int -> string list -> t
(** Builds the PST of the collection: all substrings of length at most
    [max_depth] (default 8) with presence counts, then pruned down to
    [max_nodes] (default 4096) by the minimal-pruning-error scheme. *)

val n_strings : t -> float
(** Number of strings summarized (float: merges create mixtures). *)

val n_nodes : t -> int
(** Current number of trie nodes (root excluded). *)

val count : t -> string -> float option
(** Exact presence count if the substring is retained, [None] if pruned
    or absent. The empty string maps to [n_strings]. *)

val selectivity : t -> string -> float
(** Estimated fraction of strings containing the substring, in [0,1];
    exact for retained substrings, Markov-estimated otherwise. *)

val merge : t -> t -> t
(** Fusion per Sec. 4.1: union of the tries with counts summed. *)

val prune_once : t -> (float * int) option
(** Prunes the prunable leaf with minimal pruning error. Returns
    [(err, bytes_saved)] where [err] is the squared difference between
    the retained and post-prune estimates of the leaf's substring, or
    [None] if nothing can be pruned (only depth-1 nodes remain). *)

val peek_prune : t -> float option
(** Pruning error the next {!prune_once} would incur, without pruning. *)

val prune_to : t -> int -> unit
(** Prunes until [n_nodes] is at most the argument (or no leaf is
    prunable). *)

val iter_substrings : (string -> float -> unit) -> t -> unit
(** Applies the callback to every retained substring with its count,
    in depth-first order. The atomic predicates of the Δ metric. *)

val dot_products : t -> t -> float * float * float
(** [(Σσu², Σσv², Σσuσv)] over the union of retained substrings of the
    two trees, where σx is the exact fraction in tree x and 0 when the
    substring is not retained there (see DESIGN.md for the
    approximation). Used by the Δ metric in closed form. *)

val size_bytes : t -> int
(** 9 bytes per node (symbol + count + structure). *)

val strings_total_bytes : t -> int
(** Diagnostic: sum over nodes of node depth (size of a naive listing). *)

val pp : Format.formatter -> t -> unit
(** Prints node and string counts only. *)

val copy : t -> t
(** Deep structural copy (fresh nodes, fresh pruning queue). Needed
    because pruning mutates in place while budget sweeps keep several
    snapshots of the same synopsis alive. *)

val of_substrings : ?total_len:float -> n:float -> max_depth:int ->
  (string * float) list -> t
(** Rebuilds a PST from retained (substring, presence count) pairs, as
    produced by {!iter_substrings}. Every proper prefix of a listed
    substring must also be listed (true for any PST, whose retained set
    is prefix-closed). *)

val max_depth : t -> int
(** The depth bound the tree was built with. *)

val total_len : t -> float
(** Summed length of the summarized strings (drives the adjacency-aware
    Markov fallback; see {!selectivity}). *)
