lib/vsumm/value_summary.ml: Array Format Histogram Int List Option Pst Set Term_hist Xc_xml
