lib/vsumm/histogram.mli: Format
