lib/vsumm/term_vector.mli: Format Xc_xml
