lib/vsumm/term_vector.ml: Array Format Hashtbl Int List Option Xc_xml
