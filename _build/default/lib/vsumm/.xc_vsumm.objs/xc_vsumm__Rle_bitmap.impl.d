lib/vsumm/rle_bitmap.ml: Array Format Int List Seq
