lib/vsumm/histogram.ml: Array Float Format Int List Set
