lib/vsumm/pst.ml: Buffer Char Float Format Hashtbl List Option String Xc_util
