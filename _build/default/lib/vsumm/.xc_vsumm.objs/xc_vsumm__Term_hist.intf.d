lib/vsumm/term_hist.mli: Format Seq Term_vector Xc_xml
