lib/vsumm/value_summary.mli: Format Histogram Pst Term_hist Xc_xml
