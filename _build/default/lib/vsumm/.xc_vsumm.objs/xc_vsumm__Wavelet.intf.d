lib/vsumm/wavelet.mli: Format
