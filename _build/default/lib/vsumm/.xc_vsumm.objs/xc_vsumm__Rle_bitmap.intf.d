lib/vsumm/rle_bitmap.mli: Format Seq
