lib/vsumm/pst.mli: Format
