lib/vsumm/wavelet.ml: Array Float Format Seq
