lib/vsumm/term_hist.ml: Array Float Format Hashtbl Int List Rle_bitmap Seq Term_vector Xc_xml
