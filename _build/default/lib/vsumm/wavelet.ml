type t = {
  lo : int;
  hi : int;               (* inclusive value bounds *)
  cell_width : int;       (* integer width: cells align on value bounds *)
  total : float;
  retained : (int * float) array; (* (coefficient index, value) *)
  n_cells : int;
  cum : float array;      (* reconstructed cumulative cell counts *)
}

let n_values t = t.total
let n_retained t = Array.length t.retained
let lo t = t.lo
let hi t = t.hi

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

(* in-place Haar decomposition: returns the coefficient array in the
   standard error-tree layout (index 0 = overall average, index i for
   i in [2^l, 2^(l+1)) = the details of resolution level l) *)
let decompose data =
  let n = Array.length data in
  let coeffs = Array.make n 0.0 in
  let cur = Array.copy data in
  let len = ref n in
  while !len > 1 do
    let half = !len / 2 in
    for i = 0 to half - 1 do
      let a = cur.(2 * i) and b = cur.((2 * i) + 1) in
      coeffs.(half + i) <- (a -. b) /. 2.0;
      cur.(i) <- (a +. b) /. 2.0
    done;
    len := half
  done;
  coeffs.(0) <- cur.(0);
  coeffs

(* inverse transform of a (sparse) coefficient array *)
let reconstruct coeffs =
  let n = Array.length coeffs in
  let cur = Array.make n 0.0 in
  cur.(0) <- coeffs.(0);
  let len = ref 1 in
  while !len < n do
    let half = !len in
    (* expand cur.(0..half-1) using details coeffs.(half..2*half-1) *)
    for i = half - 1 downto 0 do
      let avg = cur.(i) and detail = coeffs.(half + i) in
      cur.((2 * i) + 1) <- avg -. detail;
      cur.(2 * i) <- avg +. detail
    done;
    len := 2 * half
  done;
  cur

(* support size of the coefficient with error-tree index i in a domain
   of n cells: the overall average supports all n cells, a level-l
   detail supports n / 2^l *)
let support n i = if i = 0 then n else n / next_pow2 (i + 1) * 2

let build ?(n_coeffs = 32) values =
  if Array.length values = 0 then invalid_arg "Wavelet.build: empty";
  let lo = Array.fold_left min values.(0) values in
  let hi = Array.fold_left max values.(0) values in
  let range = hi - lo + 1 in
  let n_cells = min 1024 (next_pow2 range) in
  let cell_width = (range + n_cells - 1) / n_cells in
  let freq = Array.make n_cells 0.0 in
  Array.iter
    (fun v ->
      let cell = min (n_cells - 1) ((v - lo) / cell_width) in
      freq.(cell) <- freq.(cell) +. 1.0)
    values;
  let coeffs = decompose freq in
  (* keep the B coefficients with the largest L2-normalized magnitude *)
  let ranked =
    Array.mapi
      (fun i c -> (Float.abs c *. sqrt (float_of_int (support n_cells i)), i, c))
      coeffs
  in
  Array.sort (fun (a, _, _) (b, _, _) -> Float.compare b a) ranked;
  let b = min n_coeffs n_cells in
  let retained =
    Array.sub ranked 0 b
    |> Array.map (fun (_, i, c) -> (i, c))
    |> Array.to_seq
    |> Seq.filter (fun (_, c) -> c <> 0.0)
    |> Array.of_seq
  in
  let sparse = Array.make n_cells 0.0 in
  Array.iter (fun (i, c) -> sparse.(i) <- c) retained;
  let cells = reconstruct sparse in
  let cum = Array.make (n_cells + 1) 0.0 in
  for i = 0 to n_cells - 1 do
    (* clamp reconstruction noise: frequencies cannot be negative *)
    cum.(i + 1) <- cum.(i) +. Float.max 0.0 cells.(i)
  done;
  { lo; hi; cell_width;
    total = float_of_int (Array.length values);
    retained; n_cells; cum }

let prefix_fraction t v =
  if t.total <= 0.0 then 0.0
  else if v <= t.lo then 0.0
  else if v > t.hi then 1.0
  else begin
    let cell = min (t.n_cells - 1) ((v - t.lo) / t.cell_width) in
    let frac =
      float_of_int ((v - t.lo) - (cell * t.cell_width)) /. float_of_int t.cell_width
    in
    let mass = t.cum.(cell) +. ((t.cum.(cell + 1) -. t.cum.(cell)) *. frac) in
    let denom = t.cum.(t.n_cells) in
    if denom <= 0.0 then 0.0 else Float.max 0.0 (Float.min 1.0 (mass /. denom))
  end

let range_fraction t l h =
  if h < l then 0.0
  else begin
    let upper = if h >= t.hi then 1.0 else prefix_fraction t (h + 1) in
    Float.max 0.0 (upper -. prefix_fraction t l)
  end

let size_bytes t = 8 * n_retained t

let pp ppf t =
  Format.fprintf ppf "wavelet(n=%.0f, cells=%d, coeffs=%d)" t.total t.n_cells
    (n_retained t)
