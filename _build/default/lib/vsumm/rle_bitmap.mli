(** Run-length-encoded bitmaps over the term-identifier space.

    The "uniform bucket" of an end-biased term histogram stores a
    {e lossless} compressed encoding of the binary support vector (which
    terms have non-zero frequency); this module is that encoding. Runs
    are maximal intervals of set bits. *)

type t

val empty : t

val of_sorted_list : int list -> t
(** From a strictly increasing list of set-bit positions. *)

val of_list : int list -> t
(** Sorts and deduplicates first. *)

val mem : t -> int -> bool
val cardinality : t -> int
(** Number of set bits. *)

val n_runs : t -> int

val add : t -> int -> t
(** Set one bit (no-op if already set). *)

val remove : t -> int -> t
(** Clear one bit (no-op if clear); may split a run. *)

val union : t -> t -> t

val iter : (int -> unit) -> t -> unit
(** Set bits in increasing order. *)

val to_seq : t -> int Seq.t
(** Set bits in increasing order. *)

val size_bytes : t -> int
(** 4 bytes per run (delta-encoded start + length). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
