type t = {
  n : float;
  terms : int array;   (* sorted term ids *)
  freqs : float array; (* parallel fractional frequencies, > 0 *)
}

let n_documents t = t.n
let support_size t = Array.length t.terms

let of_entries ~n entries =
  let entries = List.filter (fun (_, f) -> f > 0.0) entries in
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) entries in
  { n;
    terms = Array.of_list (List.map fst sorted);
    freqs = Array.of_list (List.map snd sorted) }

let of_documents docs =
  let counts = Hashtbl.create 256 in
  let n = ref 0 in
  List.iter
    (fun doc ->
      incr n;
      Array.iter
        (fun term ->
          let id = (term : Xc_xml.Dictionary.term :> int) in
          let cur = Option.value ~default:0 (Hashtbl.find_opt counts id) in
          Hashtbl.replace counts id (cur + 1))
        doc)
    docs;
  let nf = float_of_int !n in
  let entries =
    Hashtbl.fold (fun id c acc -> (id, float_of_int c /. nf) :: acc) counts []
  in
  of_entries ~n:nf entries

let frequency t id =
  let rec search lo hi =
    if lo >= hi then 0.0
    else
      let mid = (lo + hi) / 2 in
      if t.terms.(mid) = id then t.freqs.(mid)
      else if t.terms.(mid) < id then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length t.terms)

let entries t = Array.init (Array.length t.terms) (fun i -> (t.terms.(i), t.freqs.(i)))

let combine a b =
  let total = a.n +. b.n in
  let wa = a.n /. total and wb = b.n /. total in
  let out = ref [] in
  let na = Array.length a.terms and nb = Array.length b.terms in
  let rec merge i j =
    if i < na && j < nb then begin
      let ta = a.terms.(i) and tb = b.terms.(j) in
      if ta < tb then begin
        out := (ta, wa *. a.freqs.(i)) :: !out;
        merge (i + 1) j
      end
      else if tb < ta then begin
        out := (tb, wb *. b.freqs.(j)) :: !out;
        merge i (j + 1)
      end
      else begin
        out := (ta, (wa *. a.freqs.(i)) +. (wb *. b.freqs.(j))) :: !out;
        merge (i + 1) (j + 1)
      end
    end
    else if i < na then begin
      out := (a.terms.(i), wa *. a.freqs.(i)) :: !out;
      merge (i + 1) j
    end
    else if j < nb then begin
      out := (b.terms.(j), wb *. b.freqs.(j)) :: !out;
      merge i (j + 1)
    end
  in
  merge 0 0;
  of_entries ~n:total !out

let pp ppf t =
  Format.fprintf ppf "centroid(n=%.0f, support=%d)" t.n (Array.length t.terms)
