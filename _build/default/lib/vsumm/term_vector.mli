(** Sparse fractional term vectors — centroids of Boolean term-vector
    collections (Sec. 3, TEXT value summaries before second-level
    compression).

    A centroid maps each term to the fraction of the underlying TEXT
    values that contain it; entries are kept sorted by term identifier. *)

type t

val of_documents : Xc_xml.Dictionary.term array list -> t
(** Centroid of a collection of Boolean vectors, each given as a sorted
    array of distinct terms (the representation of [Value.Text]). *)

val of_entries : n:float -> (int * float) list -> t
(** From explicit [(term_id, fraction)] entries (any order, distinct). *)

val n_documents : t -> float
val support_size : t -> int

val frequency : t -> int -> float
(** Fractional frequency of a term id, 0 if absent. *)

val entries : t -> (int * float) array
(** Sorted by term id; fractions are strictly positive. *)

val combine : t -> t -> t
(** Weighted mixture [(|u|·u + |v|·v) / (|u|+|v|)] — the fusion rule of
    Sec. 4.1 for TEXT centroids. *)

val pp : Format.formatter -> t -> unit
