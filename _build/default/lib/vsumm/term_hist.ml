type t = {
  n : float;
  top_terms : int array;  (* sorted by term id *)
  top_freqs : float array;
  bucket : Rle_bitmap.t;
  bucket_avg : float;
  mutable flat : (int array * float array) option;
      (* memoized support flattening (terms ascending, estimated freqs);
         summaries are immutable so the cache never invalidates *)
}

let n_documents t = t.n
let n_top t = Array.length t.top_terms
let bucket_size t = Rle_bitmap.cardinality t.bucket
let support_size t = n_top t + bucket_size t

let of_entries ~n ~top_k entries =
  (* entries: (term, freq) list with freq > 0, any order *)
  let by_freq = List.sort (fun (_, a) (_, b) -> Float.compare b a) entries in
  let rec split i acc rest =
    match rest with
    | [] -> (List.rev acc, [])
    | _ when i >= top_k -> (List.rev acc, rest)
    | e :: tl -> split (i + 1) (e :: acc) tl
  in
  let top, bucket = split 0 [] by_freq in
  let top = List.sort (fun (a, _) (b, _) -> Int.compare a b) top in
  let bucket_bits = List.map fst bucket in
  let bucket_sum = List.fold_left (fun s (_, f) -> s +. f) 0.0 bucket in
  let bucket_n = List.length bucket in
  { n;
    top_terms = Array.of_list (List.map fst top);
    top_freqs = Array.of_list (List.map snd top);
    bucket = Rle_bitmap.of_list bucket_bits;
    bucket_avg = (if bucket_n = 0 then 0.0 else bucket_sum /. float_of_int bucket_n);
    flat = None }

let of_centroid ?(top_k = 4096) centroid =
  of_entries
    ~n:(Term_vector.n_documents centroid)
    ~top_k
    (Array.to_list (Term_vector.entries centroid))

let build ?top_k docs = of_centroid ?top_k (Term_vector.of_documents docs)

let top_lookup t id =
  let rec search lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      if t.top_terms.(mid) = id then Some t.top_freqs.(mid)
      else if t.top_terms.(mid) < id then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length t.top_terms)

let frequency t id =
  match top_lookup t id with
  | Some f -> f
  | None -> if Rle_bitmap.mem t.bucket id then t.bucket_avg else 0.0

let selectivity t terms =
  List.fold_left
    (fun acc term -> acc *. frequency t (term : Xc_xml.Dictionary.term :> int))
    1.0 terms

let support_seq t =
  let top =
    Seq.init (Array.length t.top_terms) (fun i -> (t.top_terms.(i), t.top_freqs.(i)))
  in
  let bucket = Seq.map (fun id -> (id, t.bucket_avg)) (Rle_bitmap.to_seq t.bucket) in
  let rec merge sa sb () =
    match sa (), sb () with
    | Seq.Nil, rest -> rest
    | rest, Seq.Nil -> rest
    | Seq.Cons ((xa, _) as a, sa'), Seq.Cons ((xb, _) as b, sb') ->
      (* supports are disjoint by construction *)
      if xa < xb then Seq.Cons (a, merge sa' sb) else Seq.Cons (b, merge sa sb')
  in
  merge top bucket

let fuse a b =
  let total = a.n +. b.n in
  let wa = a.n /. total and wb = b.n /. total in
  (* Union of exactly-indexed term sets stays indexed; each side's
     contribution for a term uses that side's estimate. *)
  let exact = Hashtbl.create 64 in
  Array.iter (fun id -> Hashtbl.replace exact id ()) a.top_terms;
  Array.iter (fun id -> Hashtbl.replace exact id ()) b.top_terms;
  let top = ref [] and rest = ref [] in
  let add (id, _) =
    let f = (wa *. frequency a id) +. (wb *. frequency b id) in
    if f > 0.0 then
      if Hashtbl.mem exact id then top := (id, f) :: !top else rest := (id, f) :: !rest
  in
  (* iterate the union of the two supports *)
  let rec union sa sb =
    match sa (), sb () with
    | Seq.Nil, rest' -> Seq.iter add (fun () -> rest')
    | rest', Seq.Nil -> Seq.iter add (fun () -> rest')
    | Seq.Cons ((xa, _) as ea, sa'), Seq.Cons ((xb, _) as eb, sb') ->
      if xa < xb then begin
        add ea;
        union sa' sb
      end
      else if xb < xa then begin
        add eb;
        union sa sb'
      end
      else begin
        add ea;
        union sa' sb'
      end
  in
  union (support_seq a) (support_seq b);
  let bucket_bits = List.map fst !rest in
  let bucket_sum = List.fold_left (fun s (_, f) -> s +. f) 0.0 !rest in
  let bucket_n = List.length !rest in
  let top = List.sort (fun (x, _) (y, _) -> Int.compare x y) !top in
  { n = total;
    top_terms = Array.of_list (List.map fst top);
    top_freqs = Array.of_list (List.map snd top);
    bucket = Rle_bitmap.of_list bucket_bits;
    bucket_avg = (if bucket_n = 0 then 0.0 else bucket_sum /. float_of_int bucket_n);
    flat = None }

let header_bytes = 8
let size_bytes t = header_bytes + (8 * n_top t) + Rle_bitmap.size_bytes t.bucket

let compress_once t =
  let k = n_top t in
  if k = 0 then None
  else begin
    (* find the lowest-frequency indexed term *)
    let worst = ref 0 in
    for i = 1 to k - 1 do
      if t.top_freqs.(i) < t.top_freqs.(!worst) then worst := i
    done;
    let demoted_id = t.top_terms.(!worst) and demoted_f = t.top_freqs.(!worst) in
    let old_n = float_of_int (bucket_size t) in
    let old_avg = t.bucket_avg in
    let new_avg = ((old_avg *. old_n) +. demoted_f) /. (old_n +. 1.0) in
    let bucket = Rle_bitmap.add t.bucket demoted_id in
    let compressed =
      { t with
        top_terms = Array.init (k - 1) (fun i -> t.top_terms.(if i < !worst then i else i + 1));
        top_freqs = Array.init (k - 1) (fun i -> t.top_freqs.(if i < !worst then i else i + 1));
        bucket;
        bucket_avg = new_avg;
        flat = None }
    in
    (* Δ in predicate space: the demoted term moves from its exact
       frequency to the new average; every old bucket term moves from the
       old average to the new one. *)
    let d1 = demoted_f -. new_avg in
    let d2 = old_avg -. new_avg in
    let err = (d1 *. d1) +. (old_n *. d2 *. d2) in
    let saved = size_bytes t - size_bytes compressed in
    Some (err, saved, compressed)
  end

(* flattened support, memoized: the Δ metric evaluates dot products for
   hundreds of thousands of candidate merges, so this path is hot *)
let flat t =
  match t.flat with
  | Some f -> f
  | None ->
    let n = support_size t in
    let terms = Array.make n 0 and freqs = Array.make n 0.0 in
    let i = ref 0 in
    Seq.iter
      (fun (id, f) ->
        terms.(!i) <- id;
        freqs.(!i) <- f;
        incr i)
      (support_seq t);
    let f = (terms, freqs) in
    t.flat <- Some f;
    f

let dot_products a b =
  let ta, fa = flat a and tb, fb = flat b in
  let na = Array.length ta and nb = Array.length tb in
  let suu = ref 0.0 and svv = ref 0.0 and suv = ref 0.0 in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let xa = ta.(!i) and xb = tb.(!j) in
    if xa < xb then begin
      suu := !suu +. (fa.(!i) *. fa.(!i));
      incr i
    end
    else if xb < xa then begin
      svv := !svv +. (fb.(!j) *. fb.(!j));
      incr j
    end
    else begin
      suu := !suu +. (fa.(!i) *. fa.(!i));
      svv := !svv +. (fb.(!j) *. fb.(!j));
      suv := !suv +. (fa.(!i) *. fb.(!j));
      incr i;
      incr j
    end
  done;
  while !i < na do
    suu := !suu +. (fa.(!i) *. fa.(!i));
    incr i
  done;
  while !j < nb do
    svv := !svv +. (fb.(!j) *. fb.(!j));
    incr j
  done;
  (!suu, !svv, !suv)

let pp ppf t =
  Format.fprintf ppf "termhist(n=%.0f, top=%d, bucket=%d@%.4f)" t.n (n_top t)
    (bucket_size t) t.bucket_avg

let of_parts ~n ~top ~bucket ~bucket_avg =
  let top = List.sort (fun (a, _) (b, _) -> Int.compare a b) top in
  { n;
    top_terms = Array.of_list (List.map fst top);
    top_freqs = Array.of_list (List.map snd top);
    bucket = Rle_bitmap.of_list bucket;
    bucket_avg;
    flat = None }

let parts t =
  ( Array.to_list (Array.mapi (fun i id -> (id, t.top_freqs.(i))) t.top_terms),
    List.of_seq (Rle_bitmap.to_seq t.bucket),
    t.bucket_avg )
