(** Haar-wavelet synopses for numeric frequency distributions.

    The paper lists wavelet-based histograms (Matias–Vitter–Wang,
    SIGMOD'98) alongside bucket histograms as NUMERIC value
    summarization tools. This module implements the classical
    construction: the frequency vector over a dyadic domain is
    transformed into (normalized) Haar coefficients, the B largest
    coefficients are retained, and range selectivities are estimated by
    reconstructing prefix sums from the sparse coefficient set.

    It is used by the A4 ablation bench (histogram vs wavelet on range
    workloads); the synopsis pipeline itself keeps bucket histograms as
    its NUMERIC summary, like the paper's prototype. *)

type t

val build : ?n_coeffs:int -> int array -> t
(** Summarizes the multiset of values with at most [n_coeffs] retained
    coefficients (default 32). The domain is padded to a power of two.
    [values] must be non-empty. *)

val n_values : t -> float
val n_retained : t -> int

val lo : t -> int
val hi : t -> int
(** Value-domain bounds: values lie in [\[lo, hi\]]. *)

val prefix_fraction : t -> int -> float
(** Estimated fraction of values < the argument (clamped to [0,1]). *)

val range_fraction : t -> int -> int -> float
(** Estimated fraction of values in the inclusive range. *)

val size_bytes : t -> int
(** 8 bytes per retained coefficient (index + value). *)

val pp : Format.formatter -> t -> unit
