module Vs = Xc_vsumm.Value_summary

let compatible u v =
  Xc_xml.Label.equal u.Synopsis.label v.Synopsis.label
  && Xc_xml.Value.vtype_equal u.Synopsis.vtype v.Synopsis.vtype
  && (match u.Synopsis.vsumm, v.Synopsis.vsumm with
     | Vs.Vnone, Vs.Vnone -> true
     | Vs.Vnum _, Vs.Vnum _ -> true
     | Vs.Vstr _, Vs.Vstr _ -> true
     | Vs.Vtext _, Vs.Vtext _ -> true
     | (Vs.Vnone | Vs.Vnum _ | Vs.Vstr _ | Vs.Vtext _), _ -> false)

(* Child sid set of the would-be merged node, with u/v remapped to w. *)
let merged_child_keys u v =
  let keys = Hashtbl.create 8 in
  let self = ref false in
  let note node =
    Hashtbl.iter
      (fun sid _ ->
        if sid = u.Synopsis.sid || sid = v.Synopsis.sid then self := true
        else Hashtbl.replace keys sid ())
      node.Synopsis.children
  in
  note u;
  note v;
  (keys, !self)

let saved_bytes _syn u v =
  let keys, self = merged_child_keys u v in
  let merged_children = Hashtbl.length keys + if self then 1 else 0 in
  let child_edges_before =
    Hashtbl.length u.Synopsis.children + Hashtbl.length v.Synopsis.children
  in
  (* every external parent holding edges to both u and v keeps only one *)
  let shared_parents = ref 0 in
  Hashtbl.iter
    (fun sid () ->
      if sid <> u.Synopsis.sid && sid <> v.Synopsis.sid
         && Hashtbl.mem v.Synopsis.parents sid
      then incr shared_parents)
    u.Synopsis.parents;
  Size.node_bytes
  + (Size.edge_bytes * (child_edges_before - merged_children + !shared_parents))

let apply syn su sv =
  let u = Synopsis.find syn su and v = Synopsis.find syn sv in
  if su = sv then invalid_arg "Merge.apply: cannot merge a node with itself";
  if not (compatible u v) then invalid_arg "Merge.apply: incompatible nodes";
  let cu = float_of_int u.Synopsis.count and cv = float_of_int v.Synopsis.count in
  let cw = cu +. cv in
  let vsumm =
    match u.Synopsis.vsumm, v.Synopsis.vsumm with
    | Vs.Vnone, Vs.Vnone -> Vs.Vnone
    | a, b -> Vs.fuse a b
  in
  let w =
    Synopsis.add_node syn ~label:u.Synopsis.label ~vtype:u.Synopsis.vtype
      ~count:(u.Synopsis.count + v.Synopsis.count) ~vsumm
  in
  let is_uv sid = sid = su || sid = sv in
  (* combined child counts: count(w,c) = (|u|count(u,c)+|v|count(v,c))/|w|,
     with edges into u/v remapped onto w *)
  let child_counts = Hashtbl.create 8 in
  let add_children weight node =
    Hashtbl.iter
      (fun sid avg ->
        let key = if is_uv sid then w.Synopsis.sid else sid in
        let cur = Option.value ~default:0.0 (Hashtbl.find_opt child_counts key) in
        Hashtbl.replace child_counts key (cur +. (weight *. avg)))
      node.Synopsis.children
  in
  add_children cu u;
  add_children cv v;
  (* parent totals: count(p,w) = count(p,u) + count(p,v) for external p *)
  let parent_counts = Hashtbl.create 8 in
  let add_parents node =
    Hashtbl.iter
      (fun psid () ->
        if not (is_uv psid) then begin
          let p = Synopsis.find syn psid in
          let into node' =
            Option.value ~default:0.0 (Hashtbl.find_opt p.Synopsis.children node'.Synopsis.sid)
          in
          Hashtbl.replace parent_counts psid (into u +. into v)
        end)
      node.Synopsis.parents
  in
  add_parents u;
  add_parents v;
  (* detach u and v from the graph *)
  let detach node =
    Hashtbl.iter
      (fun sid _ ->
        if not (is_uv sid) then
          Hashtbl.remove (Synopsis.find syn sid).Synopsis.parents node.Synopsis.sid)
      node.Synopsis.children;
    Hashtbl.iter
      (fun sid () ->
        if not (is_uv sid) then
          Hashtbl.remove (Synopsis.find syn sid).Synopsis.children node.Synopsis.sid)
      node.Synopsis.parents;
    Synopsis.remove_node syn node.Synopsis.sid
  in
  detach u;
  detach v;
  (* wire w *)
  Hashtbl.iter
    (fun sid total -> Synopsis.set_edge syn ~parent:w.Synopsis.sid ~child:sid (total /. cw))
    child_counts;
  Hashtbl.iter
    (fun psid total -> Synopsis.set_edge syn ~parent:psid ~child:w.Synopsis.sid total)
    parent_counts;
  if syn.Synopsis.root = su || syn.Synopsis.root = sv then
    syn.Synopsis.root <- w.Synopsis.sid;
  w
