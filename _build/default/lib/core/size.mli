(** The synopsis size-accounting model.

    The construction algorithm takes its budgets in bytes; the paper
    reports budgets in kilobytes. Structural storage covers the graph
    (nodes + edges + edge counts); value storage covers the [vsumm]
    summaries (Sec. 4.3 splits the budget as Bstr / Bval). *)

val node_bytes : int
(** Per synopsis node: label reference + element count = 8. *)

val edge_bytes : int
(** Per synopsis edge: target reference + average child count = 8. *)

val kb : int -> int
(** Kilobytes to bytes. *)

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable (e.g. "12.3KB"). *)
