let node_bytes = 8
let edge_bytes = 8
let kb n = n * 1024

let pp_bytes ppf n =
  if n < 1024 then Format.fprintf ppf "%dB" n
  else Format.fprintf ppf "%.1fKB" (float_of_int n /. 1024.0)
