(** Selectivity estimation over an XCluster synopsis (Sec. 5).

    Estimation enumerates query embeddings — mappings from query
    variables to synopsis nodes satisfying the edge path expressions —
    and combines edge counts with predicate selectivities under the
    generalized {e path-value independence} assumption:
    [sel(u\[p\]/c) = |u| · σ_p(u) · count(u,c)].

    Descendant steps expand the synopsis graph breadth-first with the
    expansion depth capped at the document height, which keeps the
    computation convergent on cyclic synopses (recursion such as XMark's
    [parlist]//[listitem] creates cycles once merged). *)

val selectivity : Synopsis.t -> Xc_twig.Twig_query.t -> float
(** Estimated number of binding tuples. *)

val predicate_selectivity : Synopsis.snode -> Xc_twig.Predicate.t -> float
(** σ_p(u): the predicate's selectivity at a synopsis node, estimated
    from the node's value summary; 0 when the predicate's type is
    incompatible with the node's value type. *)

val reach : Synopsis.t -> Xc_twig.Path_expr.t -> int -> (int * float) list
(** [(v, count)] pairs: the expected number of elements of cluster [v]
    reached per element of the source cluster via the path expression.
    Exposed for tests and diagnostics. *)

type explanation = {
  query_node : int;                   (** [Twig_query.qid] *)
  bindings : (int * string * float) list;
      (** (synopsis sid, label, expected elements bound) per cluster the
          variable can embed onto, descending by count *)
}

val explain : Synopsis.t -> Xc_twig.Twig_query.t -> explanation list
(** The query's embeddings, per variable: which clusters each variable
    maps onto and how many elements are expected to bind there. This is
    the information an optimizer would inspect when it distrusts an
    estimate; the CLI exposes it as [estimate --explain]. *)
