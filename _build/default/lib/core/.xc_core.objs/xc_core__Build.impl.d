lib/core/build.ml: Delta Float Hashtbl Int List Logs Merge Option Pool Size Synopsis Xc_util Xc_vsumm
