lib/core/delta.mli: Synopsis
