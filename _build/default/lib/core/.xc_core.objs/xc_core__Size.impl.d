lib/core/size.ml: Format
