lib/core/size.mli: Format
