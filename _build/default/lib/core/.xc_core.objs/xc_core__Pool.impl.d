lib/core/pool.ml: Array Delta Float Hashtbl Int List Merge Option Synopsis Unix Xc_util Xc_vsumm Xc_xml
