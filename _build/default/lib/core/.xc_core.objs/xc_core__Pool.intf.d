lib/core/pool.mli: Hashtbl Synopsis Xc_util
