lib/core/merge.mli: Synopsis
