lib/core/synopsis.mli: Format Hashtbl Xc_vsumm Xc_xml
