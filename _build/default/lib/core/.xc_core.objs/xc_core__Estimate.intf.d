lib/core/estimate.mli: Synopsis Xc_twig
