lib/core/reference.ml: Array Buffer Document Hashtbl Label List Node Option Synopsis Value Xc_vsumm Xc_xml
