lib/core/reference.mli: Synopsis Xc_xml
