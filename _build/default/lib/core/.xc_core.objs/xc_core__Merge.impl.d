lib/core/merge.ml: Hashtbl Option Size Synopsis Xc_vsumm Xc_xml
