lib/core/synopsis.ml: Format Hashtbl Queue Size String Xc_vsumm Xc_xml
