lib/core/delta.ml: Float Hashtbl Option Synopsis Xc_vsumm
