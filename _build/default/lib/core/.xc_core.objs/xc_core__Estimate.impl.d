lib/core/estimate.ml: Float Hashtbl Int List Option Path_expr Predicate Synopsis Twig_query Xc_twig Xc_vsumm Xc_xml
