lib/core/codec.ml: Array Buffer Dictionary Format Hashtbl Int Int64 Label List Printexc String Synopsis Value Xc_vsumm Xc_xml
