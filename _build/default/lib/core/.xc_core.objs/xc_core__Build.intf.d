lib/core/build.mli: Pool Synopsis
