(** Synopsis persistence.

    A synopsis is built once (minutes for a large document) and consulted
    many times by an optimizer, so it must survive the process that built
    it. The format is a self-contained, versioned binary encoding that
    embeds the label names and dictionary terms it references; loading
    re-interns them, so identifiers are stable across processes even
    though the global intern tables differ. *)

val save : string -> Synopsis.t -> unit
(** Writes the synopsis to a file.
    @raise Sys_error on I/O failure. *)

val load : string -> Synopsis.t
(** Reads a synopsis written by {!save}.
    @raise Failure on format or version mismatch. *)

val to_string : Synopsis.t -> string
val of_string : string -> Synopsis.t

val size_on_disk : Synopsis.t -> int
(** Byte length of the encoding — a few framing bytes per node beyond
    the model's {!Synopsis.structural_bytes} + {!Synopsis.value_bytes}
    accounting, plus the embedded string tables. *)
