open Xc_twig

let relative_error ~sanity ~truth ~est = Float.abs (truth -. est) /. Float.max truth sanity
let absolute_error ~truth ~est = Float.abs (truth -. est)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

type scored = {
  entry : Workload.entry;
  est : float;
}

let score estimator entries =
  List.map (fun entry -> { entry; est = estimator entry.Workload.query }) entries

let rel sanity s =
  relative_error ~sanity ~truth:s.entry.Workload.true_count ~est:s.est

let overall_relative ~sanity scored = mean (List.map (rel sanity) scored)

let per_class_relative ~sanity scored =
  let classes = Workload.classes (List.map (fun s -> s.entry) scored) in
  List.map
    (fun cls ->
      let of_class = List.filter (fun s -> s.entry.Workload.cls = cls) scored in
      (cls, mean (List.map (rel sanity) of_class)))
    classes

let low_count_absolute ~sanity scored =
  let low = List.filter (fun s -> s.entry.Workload.true_count <= sanity) scored in
  let classes = Workload.classes (List.map (fun s -> s.entry) low) in
  List.map
    (fun cls ->
      let of_class = List.filter (fun s -> s.entry.Workload.cls = cls) low in
      ( cls,
        mean
          (List.map
             (fun s -> absolute_error ~truth:s.entry.Workload.true_count ~est:s.est)
             of_class),
        mean (List.map (fun s -> s.entry.Workload.true_count) of_class) ))
    classes
