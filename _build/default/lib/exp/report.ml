open Xc_twig

let pct x = 100.0 *. x

let hr ppf width = Format.fprintf ppf "%s@." (String.make width '-')

let table1 ppf rows =
  Format.fprintf ppf "@.Table 1. Data Set Characteristics@.";
  hr ppf 78;
  Format.fprintf ppf "%-8s %12s %12s %14s %24s@." "" "File (MB)" "# Elements"
    "Ref. Size (KB)" "# Nodes: Value/Total";
  hr ppf 78;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8s %12.1f %12d %14.0f %15d / %d@." r.Runner.ds
        r.Runner.file_mb r.Runner.n_elements r.Runner.ref_kb r.Runner.value_nodes
        r.Runner.total_nodes)
    rows;
  hr ppf 78

let table2 ppf rows =
  Format.fprintf ppf "@.Table 2. Workload Characteristics (avg. result size)@.";
  hr ppf 44;
  Format.fprintf ppf "%-8s %16s %16s@." "" "Struct" "Pred";
  hr ppf 44;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8s %16.0f %16.0f@." r.Runner.ds2 r.Runner.avg_struct
        r.Runner.avg_pred)
    rows;
  hr ppf 44

let class_column point cls =
  match List.assoc_opt cls point.Runner.class_errs with
  | Some err -> Format.asprintf "%8.1f" (pct err)
  | None -> Format.asprintf "%8s" "-"

let fig8 ppf ~name points =
  Format.fprintf ppf
    "@.Figure 8 (%s). Avg. relative error (%%) vs synopsis size (KB)@." name;
  hr ppf 70;
  Format.fprintf ppf "%10s %8s %8s %8s %8s %8s@." "Size(KB)" "Text" "String"
    "Numeric" "Struct" "Overall";
  hr ppf 70;
  List.iter
    (fun p ->
      Format.fprintf ppf "%10d %s %s %s %s %8.1f@." p.Runner.total_kb
        (class_column p Twig_query.Ctext)
        (class_column p Twig_query.Cstring)
        (class_column p Twig_query.Cnumeric)
        (class_column p Twig_query.Cstruct)
        (pct p.Runner.overall_err))
    points;
  hr ppf 70

let fig9 ppf by_dataset =
  Format.fprintf ppf
    "@.Figure 9. Avg. absolute error for low-count queries (tuples)@.";
  hr ppf 56;
  Format.fprintf ppf "%-10s" "";
  List.iter (fun (name, _) -> Format.fprintf ppf " %14s" name) by_dataset;
  Format.fprintf ppf "@.";
  hr ppf 56;
  List.iter
    (fun cls ->
      let any =
        List.exists (fun (_, rows) -> List.exists (fun (c, _, _) -> c = cls) rows)
          by_dataset
      in
      if any then begin
        Format.fprintf ppf "%-10s" (Twig_query.class_name cls);
        List.iter
          (fun (_, rows) ->
            match List.find_opt (fun (c, _, _) -> c = cls) rows with
            | Some (_, abs_err, _) -> Format.fprintf ppf " %14.2f" abs_err
            | None -> Format.fprintf ppf " %14s" "-")
          by_dataset;
        Format.fprintf ppf "@."
      end)
    [ Twig_query.Cnumeric; Cstring; Ctext; Cstruct ];
  hr ppf 56

let negative ppf rows =
  Format.fprintf ppf "@.Negative workloads: average estimate (true count = 0)@.";
  List.iter
    (fun (name, avg) -> Format.fprintf ppf "  %-8s avg estimate = %.3f tuples@." name avg)
    rows

let ablation_delta ppf ~name rows =
  Format.fprintf ppf
    "@.Ablation A1 (%s). Structural-query error (%%): full Δ vs structure-only Δ@."
    name;
  hr ppf 52;
  Format.fprintf ppf "%10s %16s %20s@." "Bstr(KB)" "full Δ" "structure-only Δ";
  hr ppf 52;
  List.iter
    (fun (kb, full, struct_only) ->
      Format.fprintf ppf "%10d %16.1f %20.1f@." kb (pct full) (pct struct_only))
    rows;
  hr ppf 52

let ablation_text ppf ~name rows =
  Format.fprintf ppf
    "@.Ablation A2 (%s). TEXT-query error (%%): end-biased vs all-uniform bucket@."
    name;
  hr ppf 56;
  Format.fprintf ppf "%10s %16s %20s@." "top_k" "end-biased" "uniform-only";
  hr ppf 56;
  List.iter
    (fun (k, endb, naive) ->
      Format.fprintf ppf "%10d %16.1f %20.1f@." k (pct endb) (pct naive))
    rows;
  hr ppf 56

let ablation_numeric ppf ~name rows =
  Format.fprintf ppf
    "@.Ablation A4 (%s). Numeric summaries at equal budget: range-query error (%%)@."
    name;
  hr ppf 40;
  List.iter (fun (tech, err) -> Format.fprintf ppf "%-14s %10.1f@." tech (pct err)) rows;
  hr ppf 40

let auto_split ppf ~name rows =
  Format.fprintf ppf
    "@.Budget-split search (%s). Overall error (%%) per Bstr/Bval split@." name;
  hr ppf 46;
  Format.fprintf ppf "%10s %10s %12s@." "Bstr(KB)" "Bval(KB)" "error";
  hr ppf 46;
  let best =
    List.fold_left (fun acc (_, _, e) -> Float.min acc e) Float.infinity rows
  in
  List.iter
    (fun (bstr, bval, err) ->
      Format.fprintf ppf "%10d %10d %11.1f%s@." bstr bval (pct err)
        (if err = best then "  <- winner" else ""))
    rows;
  hr ppf 46
