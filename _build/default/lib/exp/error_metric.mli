(** The paper's evaluation metric (Sec. 6.1).

    Accuracy is the average absolute relative error
    [|c − e| / max(c, s)] over a workload, where [s] is a {e sanity
    bound} — the 10-percentile of true counts — that stops very-low-count
    queries from dominating the average. *)

val relative_error : sanity:float -> truth:float -> est:float -> float
(** [|truth − est| / max(truth, sanity)]. *)

val absolute_error : truth:float -> est:float -> float

val mean : float list -> float
(** 0 on the empty list. *)

type scored = {
  entry : Xc_twig.Workload.entry;
  est : float;
}

val score : (Xc_twig.Twig_query.t -> float) -> Xc_twig.Workload.entry list ->
  scored list
(** Runs the estimator over a workload. *)

val overall_relative : sanity:float -> scored list -> float

val per_class_relative : sanity:float -> scored list ->
  (Xc_twig.Twig_query.query_class * float) list
(** Average relative error per query class, classes in report order. *)

val low_count_absolute : sanity:float -> scored list ->
  (Xc_twig.Twig_query.query_class * float * float) list
(** For queries with true count below the sanity bound: per class,
    (average absolute error, average true count) — Figure 9. *)
