lib/exp/runner.mli: Xc_core Xc_twig Xc_xml
