lib/exp/report.mli: Format Runner Xc_twig
