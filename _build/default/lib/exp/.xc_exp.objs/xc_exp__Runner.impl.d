lib/exp/runner.ml: Array Error_metric Float List Twig_query Workload Xc_core Xc_data Xc_twig Xc_util Xc_vsumm Xc_xml
