lib/exp/error_metric.mli: Xc_twig
