lib/exp/error_metric.ml: Float List Workload Xc_twig
