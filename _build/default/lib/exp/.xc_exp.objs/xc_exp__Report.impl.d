lib/exp/report.ml: Float Format List Runner String Twig_query Xc_twig
