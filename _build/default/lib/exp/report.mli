(** Paper-style textual rendering of experiment results. *)

val table1 : Format.formatter -> Runner.table1_row list -> unit
val table2 : Format.formatter -> Runner.table2_row list -> unit

val fig8 : Format.formatter -> name:string -> Runner.sweep_point list -> unit
(** One row per budget point: the five series of Figure 8 as columns. *)

val fig9 : Format.formatter ->
  (string * (Xc_twig.Twig_query.query_class * float * float) list) list -> unit

val negative : Format.formatter -> (string * float) list -> unit
val ablation_delta : Format.formatter -> name:string -> (int * float * float) list -> unit
val ablation_text : Format.formatter -> name:string -> (int * float * float) list -> unit

val pct : float -> float
(** Fraction to percent. *)

val ablation_numeric : Format.formatter -> name:string -> (string * float) list -> unit
val auto_split : Format.formatter -> name:string -> (int * int * float) list -> unit
