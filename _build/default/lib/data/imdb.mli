(** Synthetic IMDB-like movie database (DESIGN.md substitution for the
    paper's 7.1MB real-life IMDB subset).

    Structure (optional parts in brackets):
    {v
    imdb
      movie*
        title       STRING
        year        NUMERIC (1920-2005, skewed recent)
        rating      NUMERIC (10-100, genre-correlated)
        genre       STRING
        plot        TEXT  (topic = genre x decade)
        [keywords]  TEXT  (mostly recent movies)
        cast
          actor*    (1-9)
            name    STRING
            [role]  STRING
        director
          name      STRING
        [box_office] NUMERIC (blockbusters only)
    v}

    The deliberate path↔value correlations (genre-topical plots, decade
    vocabulary drift, year-dependent optional elements, rating-genre
    skew) are what the XCluster's structure-value clustering must
    capture; a tag-only summary mixes them and mis-estimates. *)

val generate : ?seed:int -> ?n_movies:int -> unit -> Xc_xml.Document.t
(** Default 9000 movies ≈ 230k elements — the scale of the paper's
    IMDB subset. *)

val value_typing : (string * Xc_xml.Value.vtype) list
(** Tag → value-type table matching the generator's output, for use
    with {!Xc_xml.Parser.typing_of_assoc} when round-tripping through
    XML text. *)
