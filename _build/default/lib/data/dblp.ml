open Xc_xml
module Rng = Xc_util.Rng

let value_typing =
  [ ("name", Value.Tstring); ("year", Value.Tnumeric); ("title", Value.Tstring);
    ("keywords", Value.Ttext); ("abstract", Value.Ttext);
    ("publisher", Value.Tstring); ("foreword", Value.Ttext) ]

let publishers =
  [| "ACM Press"; "IEEE Computer Society"; "Springer"; "Morgan Kaufmann";
     "Addison-Wesley"; "MIT Press"; "Cambridge University Press";
     "North-Holland"; "Prentice Hall"; "O'Reilly" |]

let research_words =
  [| "Tree"; "Query"; "Index"; "Join"; "Stream"; "Graph"; "Synopsis";
     "Histogram"; "Sampling"; "Cache"; "Storage"; "Transaction"; "Schema";
     "Optimization"; "Estimation"; "Compression"; "Clustering"; "Mining";
     "Retrieval"; "Ranking"; "Parallel"; "Distributed"; "Adaptive";
     "Approximate"; "Incremental"; "Holistic"; "Selectivity"; "Cardinality" |]

let paper_title rng =
  let n = 2 + Rng.int rng 3 in
  String.concat " " (List.init n (fun _ -> Rng.pick rng research_words))

let book_title rng =
  Printf.sprintf "%s %s Systems" (Rng.pick rng research_words)
    (Rng.pick rng research_words)

(* an author works in one research area: abstract topics, keyword terms
   and publication years correlate through it *)
let paper corpus rng ~area =
  let children = ref [] in
  let add node = children := node :: !children in
  (* database papers skew later than theory papers: per-area year ranges *)
  let base = 1975 + (area * 4 mod 20) in
  let year = base + Rng.int rng (2006 - base) in
  add (Node.leaf "year" (Value.Numeric year));
  add (Node.leaf "title" (Value.Str (paper_title rng)));
  add (Node.leaf "keywords" (Text_corpus.text_value corpus rng ~topic:area ~n:(3 + Rng.int rng 4)));
  add
    (Node.leaf "abstract"
       (Text_corpus.text_value corpus rng ~topic:(area + ((year - 1975) / 10))
          ~n:(20 + Rng.int rng 30)));
  if Rng.chance rng 0.6 then begin
    let n_refs = 1 + Rng.int rng 8 in
    add (Node.make "cites" ~children:(List.init n_refs (fun _ -> Node.make "ref")))
  end;
  Node.make ~children:(List.rev !children) "paper"

let book corpus rng ~area =
  let children = ref [] in
  let add node = children := node :: !children in
  add (Node.leaf "year" (Value.Numeric (1980 + Rng.int rng 26)));
  add (Node.leaf "title" (Value.Str (book_title rng)));
  add (Node.leaf "publisher" (Value.Str (Rng.pick rng publishers)));
  if Rng.chance rng 0.5 then
    add
      (Node.leaf "foreword"
         (Text_corpus.text_value corpus rng ~topic:(area + 8) ~n:(12 + Rng.int rng 16)));
  Node.make ~children:(List.rev !children) "book"

let author corpus rng =
  let area = Rng.int rng 8 in
  let children = ref [ Node.leaf "name" (Value.Str (Names.person_name rng)) ] in
  let n_papers = 1 + Rng.geometric rng 0.25 in
  for _ = 1 to min 12 n_papers do
    children := paper corpus rng ~area :: !children
  done;
  if Rng.chance rng 0.25 then children := book corpus rng ~area :: !children;
  Node.make ~children:(List.rev !children) "author"

let generate ?(seed = 3003) ?(n_authors = 4000) () =
  let rng = Rng.create seed in
  let corpus = Text_corpus.create ~vocab_size:2400 ~n_topics:16 (Rng.split rng) in
  Document.create
    (Node.make "dblp" ~children:(List.init n_authors (fun _ -> author corpus rng)))
