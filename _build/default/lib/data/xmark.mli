(** Synthetic XMark-like auction site (DESIGN.md substitution for the
    XMark benchmark generator).

    Reimplements the structural core of the XMark [site] schema:
    regions with items (including the {e recursive}
    [description/parlist/listitem] structure, which makes the synopsis
    graph cyclic after merges), categories, people with richly optional
    profiles, and open/closed auctions with variable bidder lists.
    NUMERIC values: prices, quantities, increases, ages; STRING:
    names, cities, dates, payment kinds; TEXT: descriptions,
    annotations, mail bodies.

    Compared to the IMDB generator this document is structurally much
    richer (more tags, deeper optionality), so its reference synopsis is
    several times larger — matching the paper's Table 1 contrast
    (16,446 XMark reference nodes vs 3,800 for IMDB). *)

val generate : ?seed:int -> ?scale:float -> unit -> Xc_xml.Document.t
(** [scale] multiplies all entity populations; the default 1.0 yields
    ≈ 210k elements, the scale of the paper's 10MB XMark document. *)

val value_typing : (string * Xc_xml.Value.vtype) list
(** Tag → value-type table for round-tripping through XML text. *)
