module Rng = Xc_util.Rng

let first_names =
  [| "James"; "Mary"; "Robert"; "Patricia"; "John"; "Jennifer"; "Michael";
     "Linda"; "David"; "Elizabeth"; "William"; "Barbara"; "Richard"; "Susan";
     "Joseph"; "Jessica"; "Thomas"; "Sarah"; "Charles"; "Karen"; "Christopher";
     "Nancy"; "Daniel"; "Lisa"; "Matthew"; "Betty"; "Anthony"; "Margaret";
     "Mark"; "Sandra"; "Donald"; "Ashley"; "Steven"; "Kimberly"; "Paul";
     "Emily"; "Andrew"; "Donna"; "Joshua"; "Michelle"; "Kenneth"; "Carol";
     "Kevin"; "Amanda"; "Brian"; "Dorothy"; "George"; "Melissa"; "Edward";
     "Deborah"; "Ronald"; "Stephanie"; "Timothy"; "Rebecca"; "Jason"; "Sharon";
     "Jeffrey"; "Laura"; "Ryan"; "Cynthia"; "Jacob"; "Kathleen"; "Gary";
     "Amy"; "Nicholas"; "Angela"; "Eric"; "Shirley"; "Jonathan"; "Anna" |]

let last_names =
  [| "Smith"; "Johnson"; "Williams"; "Brown"; "Jones"; "Garcia"; "Miller";
     "Davis"; "Rodriguez"; "Martinez"; "Hernandez"; "Lopez"; "Gonzalez";
     "Wilson"; "Anderson"; "Thomas"; "Taylor"; "Moore"; "Jackson"; "Martin";
     "Lee"; "Perez"; "Thompson"; "White"; "Harris"; "Sanchez"; "Clark";
     "Ramirez"; "Lewis"; "Robinson"; "Walker"; "Young"; "Allen"; "King";
     "Wright"; "Scott"; "Torres"; "Nguyen"; "Hill"; "Flores"; "Green";
     "Adams"; "Nelson"; "Baker"; "Hall"; "Rivera"; "Campbell"; "Mitchell";
     "Carter"; "Roberts"; "Gomez"; "Phillips"; "Evans"; "Turner"; "Diaz";
     "Parker"; "Cruz"; "Edwards"; "Collins"; "Reyes"; "Stewart"; "Morris";
     "Morales"; "Murphy"; "Cook"; "Rogers"; "Gutierrez"; "Ortiz"; "Morgan" |]

let cities =
  [| "Athens"; "Berlin"; "Cairo"; "Dakar"; "Edinburgh"; "Florence"; "Geneva";
     "Helsinki"; "Istanbul"; "Jakarta"; "Kyoto"; "Lisbon"; "Madrid"; "Nairobi";
     "Oslo"; "Prague"; "Quito"; "Rome"; "Seattle"; "Tokyo"; "Utrecht";
     "Vienna"; "Warsaw"; "Xiamen"; "Yokohama"; "Zurich"; "Amsterdam";
     "Boston"; "Chicago"; "Denver"; "Eugene"; "Fresno" |]

let countries =
  [| "Argentina"; "Brazil"; "Canada"; "Denmark"; "Egypt"; "France"; "Germany";
     "Hungary"; "India"; "Japan"; "Kenya"; "Luxembourg"; "Mexico"; "Norway";
     "Oman"; "Portugal"; "Qatar"; "Russia"; "Spain"; "Turkey"; "Ukraine";
     "Vietnam"; "Yemen"; "Zambia"; "United States"; "United Kingdom" |]

let streets =
  [| "Maple Street"; "Oak Avenue"; "Cedar Lane"; "Pine Road"; "Elm Drive";
     "Birch Boulevard"; "Walnut Way"; "Chestnut Court"; "Willow Walk";
     "Aspen Alley"; "Juniper Junction"; "Magnolia Mews"; "Poplar Place";
     "Sycamore Square"; "Hazel Heights"; "Laurel Loop" |]

let genres =
  [| "Drama"; "Comedy"; "Thriller"; "Horror"; "Romance"; "Documentary";
     "Action"; "Adventure"; "Animation"; "Crime"; "Fantasy"; "Mystery";
     "Science Fiction"; "Western"; "Musical"; "War" |]

let payment_kinds =
  [| "Creditcard"; "Money order"; "Personal Check"; "Cash" |]

let education_levels =
  [| "High School"; "College"; "Graduate School"; "Other" |]

let title_words =
  [| "Shadow"; "River"; "Night"; "Golden"; "Lost"; "Last"; "Silent"; "Broken";
     "Crimson"; "Winter"; "Summer"; "Iron"; "Glass"; "Stone"; "Fire"; "Storm";
     "Empire"; "Garden"; "Voyage"; "Return"; "Secret"; "Hidden"; "Eternal";
     "Midnight"; "Morning"; "Distant"; "Forgotten"; "Ancient"; "Burning";
     "Frozen"; "Sacred"; "Savage"; "Gentle"; "Wild"; "Quiet"; "Electric";
     "Paper"; "Velvet"; "Scarlet"; "Emerald"; "Hollow"; "Rising"; "Falling";
     "Dream"; "Mirror"; "Echo"; "Harvest"; "Kingdom"; "Station"; "Harbor" |]

let auction_types = [| "Regular"; "Featured"; "Dutch" |]

let person_name rng =
  Printf.sprintf "%s %s" (Rng.pick rng first_names) (Rng.pick rng last_names)

let movie_title rng =
  let n = 1 + Rng.int rng 4 in
  let words = List.init n (fun _ -> Rng.pick rng title_words) in
  String.concat " " words

let email rng =
  Printf.sprintf "%s.%s@%s.example"
    (String.lowercase_ascii (Rng.pick rng first_names))
    (String.lowercase_ascii (Rng.pick rng last_names))
    (String.lowercase_ascii (Rng.pick rng cities))

let phone rng =
  Printf.sprintf "+%d (%03d) %07d" (1 + Rng.int rng 99) (Rng.int rng 1000)
    (Rng.int rng 10_000_000)

let date_string rng =
  Printf.sprintf "%02d/%02d/%04d" (1 + Rng.int rng 28) (1 + Rng.int rng 12)
    (1998 + Rng.int rng 8)

let time_string rng =
  Printf.sprintf "%02d:%02d:%02d" (Rng.int rng 24) (Rng.int rng 60) (Rng.int rng 60)

let credit_card rng =
  Printf.sprintf "%04d %04d %04d %04d" (Rng.int rng 10_000) (Rng.int rng 10_000)
    (Rng.int rng 10_000) (Rng.int rng 10_000)

let url rng =
  Printf.sprintf "https://www.%s-%s.example/"
    (String.lowercase_ascii (Rng.pick rng title_words))
    (String.lowercase_ascii (Rng.pick rng cities))
