open Xc_xml
module Rng = Xc_util.Rng

let value_typing =
  [ ("title", Value.Tstring); ("year", Value.Tnumeric); ("rating", Value.Tnumeric);
    ("genre", Value.Tstring); ("plot", Value.Ttext); ("keywords", Value.Ttext);
    ("name", Value.Tstring); ("role", Value.Tstring);
    ("box_office", Value.Tnumeric) ]

(* Same-tag elements on different paths draw from *different*
   distributions: this is the structure-value correlation that separates
   an XCluster from a tag-only summary (DESIGN.md). A name under an
   actor, a director or an episode guest is generated from a different
   slice of the name pools; a year under a movie, an episode or an
   actor's profile covers a different range; plots and episode plots use
   different topic rotations. *)

let slice_pick rng pool lo hi =
  let n = Array.length pool in
  let lo = min (n - 1) lo and hi = min n hi in
  pool.(lo + Rng.int rng (max 1 (hi - lo)))

let actor_name rng =
  (* actors: first half of the first-name pool, full surname pool *)
  Printf.sprintf "%s %s"
    (slice_pick rng Names.first_names 0 35)
    (slice_pick rng Names.last_names 0 40)

let director_name rng =
  (* directors: disjoint slice of first names, tail surnames *)
  Printf.sprintf "%s %s"
    (slice_pick rng Names.first_names 35 70)
    (slice_pick rng Names.last_names 40 68)

let guest_name rng = Names.person_name rng

(* episodes have a fixed shape: under backward-stable refinement every
   structural variant multiplies into the cluster count of the whole
   movie subtree, so optionality here is kept out deliberately *)
let episode corpus rng ~topic ~series_year =
  let title =
    String.concat " "
      (List.init (1 + Rng.int rng 2) (fun _ -> slice_pick rng Names.title_words 30 50))
  in
  Node.make "episode"
    ~children:
      [ Node.leaf "title" (Value.Str title);
        (* episode years: clustered shortly after the series year *)
        Node.leaf "year" (Value.Numeric (min 2005 (series_year + Rng.int rng 4)));
        Node.leaf "plot"
          (Text_corpus.text_value corpus rng ~topic:(topic + 26) ~n:(6 + Rng.int rng 8));
        Node.make "guest"
          ~children:[ Node.leaf "name" (Value.Str (guest_name rng)) ] ]

let movie corpus rng =
  let genre_idx = Rng.int rng (Array.length Names.genres) in
  let genre = Names.genres.(genre_idx) in
  (* skew years toward the recent past *)
  let year = max 1920 (2005 - Rng.geometric rng 0.08) in
  let decade = (year - 1920) / 10 in
  (* rating correlates with genre and a bit of noise *)
  let rating = min 100 (max 10 (40 + (genre_idx * 3) + Rng.int rng 30)) in
  let topic = (genre_idx * 3) + (decade mod 3) in
  let children = ref [] in
  let add node = children := node :: !children in
  (* movie titles: head slice of the title words *)
  let title =
    String.concat " "
      (List.init (1 + Rng.int rng 3) (fun _ -> slice_pick rng Names.title_words 0 30))
  in
  add (Node.leaf "title" (Value.Str title));
  add (Node.leaf "year" (Value.Numeric year));
  add (Node.leaf "rating" (Value.Numeric rating));
  add (Node.leaf "genre" (Value.Str genre));
  add (Node.leaf "plot" (Text_corpus.text_value corpus rng ~topic ~n:(15 + Rng.int rng 25)));
  (* keyword tagging mostly exists for recent movies: a structure-value
     correlation (movies with keywords skew recent) *)
  if year >= 1980 && Rng.chance rng 0.7 then
    add (Node.leaf "keywords" (Text_corpus.text_value corpus rng ~topic ~n:(3 + Rng.int rng 5)));
  let actor () =
    (* two actor shapes only (plain vs featured): independent optional
       children would square the cast-cluster count *)
    if Rng.chance rng 0.35 then
      Node.make "actor"
        ~children:
          [ Node.leaf "name" (Value.Str (actor_name rng));
            (* roles reuse the episode slice of title words *)
            Node.leaf "role" (Value.Str (slice_pick rng Names.title_words 25 50));
            (* an actor's birth year: same tag as the movie year, very
               different distribution *)
            Node.leaf "year" (Value.Numeric (1930 + Rng.int rng 60)) ]
    else Node.make "actor" ~children:[ Node.leaf "name" (Value.Str (actor_name rng)) ]
  in
  let n_actors = 1 + Rng.int rng 9 in
  add (Node.make ~children:(List.init n_actors (fun _ -> actor ())) "cast");
  add
    (Node.make "director"
       ~children:[ Node.leaf "name" (Value.Str (director_name rng)) ]);
  if rating >= 75 && Rng.chance rng 0.5 then
    add (Node.leaf "box_office" (Value.Numeric (1_000 + Rng.int rng 400_000)));
  (* some productions are series with episode lists *)
  if Rng.chance rng 0.15 then
    add
      (Node.make "episodes"
         ~children:
           (List.init 3 (fun _ -> episode corpus rng ~topic ~series_year:year)));
  Node.make ~children:(List.rev !children) "movie"

let generate ?(seed = 1001) ?(n_movies = 8000) () =
  let rng = Rng.create seed in
  let corpus = Text_corpus.create ~vocab_size:2400 ~n_topics:78 (Rng.split rng) in
  let movies = List.init n_movies (fun _ -> movie corpus rng) in
  Document.create (Node.make ~children:movies "imdb")
