(** Synthetic free-text corpora for TEXT element values.

    Term occurrences are drawn from a Zipfian distribution over a shared
    vocabulary, with per-topic rank rotations so that different document
    regions (genres, auction categories, decades) favour different
    terms. This creates exactly the path↔term correlations that a
    structure-value clustering must preserve, and the long Zipf tail
    yields the very low TEXT-predicate selectivities behind the paper's
    Fig. 9 discussion. *)

type t

val create : ?vocab_size:int -> ?skew:float -> ?n_topics:int ->
  ?background:float -> Xc_util.Rng.t -> t
(** Builds a vocabulary of pronounceable synthetic words
    (default 2000 words, skew 1.0, 16 topics). [background] (default
    0.35) is the share of draws taken from the shared unrotated
    vocabulary rather than the topic's rotation. *)

val vocab_size : t -> int
val n_topics : t -> int

val word : t -> int -> string
(** Vocabulary entry by index. *)

val sample_terms : t -> Xc_util.Rng.t -> topic:int -> n:int ->
  Xc_xml.Dictionary.term list
(** [n] Zipfian draws from the topic's rank rotation (duplicates
    collapse, so the result may be shorter than [n]). *)

val text_value : t -> Xc_util.Rng.t -> topic:int -> n:int -> Xc_xml.Value.t
(** A [Value.Text] built from {!sample_terms}. *)
