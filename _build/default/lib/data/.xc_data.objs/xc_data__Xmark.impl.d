lib/data/xmark.ml: Array Document Float List Names Node Printf String Text_corpus Value Xc_util Xc_xml
