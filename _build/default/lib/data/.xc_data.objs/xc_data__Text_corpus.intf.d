lib/data/text_corpus.mli: Xc_util Xc_xml
