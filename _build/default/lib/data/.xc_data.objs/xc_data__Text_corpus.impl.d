lib/data/text_corpus.ml: Array Buffer Hashtbl List Xc_util Xc_xml
