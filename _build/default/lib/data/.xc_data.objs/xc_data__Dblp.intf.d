lib/data/dblp.mli: Xc_xml
