lib/data/xmark.mli: Xc_xml
