lib/data/imdb.ml: Array Document List Names Node Printf String Text_corpus Value Xc_util Xc_xml
