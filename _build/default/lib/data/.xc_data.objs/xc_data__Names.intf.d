lib/data/names.mli: Xc_util
