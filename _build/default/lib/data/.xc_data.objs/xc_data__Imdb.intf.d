lib/data/imdb.mli: Xc_xml
