lib/data/names.ml: List Printf String Xc_util
