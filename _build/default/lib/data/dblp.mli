(** Synthetic DBLP-like bibliography (the paper's running example domain:
    its introduction motivates XCLUSTERs with a query over papers, years,
    abstracts and titles).

    Structure:
    {v
    dblp
      author*
        name            STRING
        paper*
          year          NUMERIC (venue-dependent range)
          title         STRING
          keywords      TEXT
          abstract      TEXT  (topic drifts with area and decade)
          [cites]       (a list of ref elements)
        book*
          year          NUMERIC
          title         STRING
          publisher     STRING
          [foreword]    TEXT
    v}

    This mirrors the paper's Figure 1 data tree (authors with paper and
    book sub-elements carrying NUMERIC years, STRING titles, and TEXT
    keywords / abstracts / forewords) and supports the introduction's
    example query
    [//paper[year > 2000][abstract ftcontains(synopsis, xml)]/title[contains(Tree)]]. *)

val generate : ?seed:int -> ?n_authors:int -> unit -> Xc_xml.Document.t
(** Default 4000 authors ≈ 120k elements. *)

val value_typing : (string * Xc_xml.Value.vtype) list
