module Rng = Xc_util.Rng
module Zipf = Xc_util.Zipf

type t = {
  vocab : string array;
  zipf : Zipf.t;
  rotations : int array; (* rank rotation offset per topic *)
  background : float;    (* probability of drawing from the shared
                            (unrotated) vocabulary instead of the topic *)
}

let syllables =
  [| "ba"; "be"; "bi"; "bo"; "bu"; "da"; "de"; "di"; "do"; "du"; "ka"; "ke";
     "ki"; "ko"; "ku"; "la"; "le"; "li"; "lo"; "lu"; "ma"; "me"; "mi"; "mo";
     "mu"; "na"; "ne"; "ni"; "no"; "nu"; "ra"; "re"; "ri"; "ro"; "ru"; "sa";
     "se"; "si"; "so"; "su"; "ta"; "te"; "ti"; "to"; "tu"; "va"; "ve"; "vi";
     "vo"; "vu"; "za"; "ze"; "zi"; "zo"; "zu"; "gar"; "mon"; "sel"; "tor";
     "ven"; "pol"; "rix"; "dan"; "fel"; "hum" |]

let make_word rng =
  let n = 2 + Rng.int rng 3 in
  let buf = Buffer.create 8 in
  for _ = 1 to n do
    Buffer.add_string buf (Rng.pick rng syllables)
  done;
  Buffer.contents buf

let create ?(vocab_size = 2000) ?(skew = 1.0) ?(n_topics = 16)
    ?(background = 0.35) rng =
  let seen = Hashtbl.create vocab_size in
  let vocab =
    Array.init vocab_size (fun _ ->
        let rec fresh () =
          let w = make_word rng in
          if Hashtbl.mem seen w then fresh ()
          else begin
            Hashtbl.add seen w ();
            w
          end
        in
        fresh ())
  in
  let rotations =
    Array.init n_topics (fun _ -> Rng.int rng vocab_size)
  in
  { vocab; zipf = Zipf.create ~n:vocab_size ~skew; rotations; background }

let vocab_size t = Array.length t.vocab
let n_topics t = Array.length t.rotations
let word t i = t.vocab.(i)

let sample_terms t rng ~topic ~n =
  let rotation = t.rotations.(topic mod Array.length t.rotations) in
  let size = vocab_size t in
  List.init n (fun _ ->
      let rank = Zipf.sample t.zipf rng in
      (* a background share keeps topics overlapping, as natural language
         does: it softens the extreme term co-occurrence that pure
         rotations would create *)
      let offset = if Rng.chance rng t.background then 0 else rotation in
      Xc_xml.Dictionary.of_string t.vocab.((rank + offset) mod size))

let text_value t rng ~topic ~n =
  Xc_xml.Value.text_of_terms (sample_terms t rng ~topic ~n)
