(** Pools of short string values for the synthetic generators.

    These feed the STRING-typed elements (titles, person names, cities,
    ...) whose distributions the PST summaries must capture: realistic
    shared prefixes/suffixes and skewed character n-grams matter for
    substring selectivity, so the pools are real-word-like rather than
    random bytes. *)

val first_names : string array
val last_names : string array
val cities : string array
val countries : string array
val streets : string array
val genres : string array
val payment_kinds : string array
val education_levels : string array
val title_words : string array
val auction_types : string array

val person_name : Xc_util.Rng.t -> string
(** "First Last". *)

val movie_title : Xc_util.Rng.t -> string
(** 1–4 title words, capitalized. *)

val email : Xc_util.Rng.t -> string
val phone : Xc_util.Rng.t -> string
val date_string : Xc_util.Rng.t -> string
(** "DD/MM/YYYY" in 1998–2005, matching the XMark flavour. *)

val time_string : Xc_util.Rng.t -> string
val credit_card : Xc_util.Rng.t -> string
val url : Xc_util.Rng.t -> string
