type test =
  | Tag of Xc_xml.Label.t
  | Wildcard

type axis =
  | Child
  | Descendant

type step = {
  axis : axis;
  test : test;
}

type t = step list

let child tag = { axis = Child; test = Tag (Xc_xml.Label.of_string tag) }
let desc tag = { axis = Descendant; test = Tag (Xc_xml.Label.of_string tag) }
let child_any = { axis = Child; test = Wildcard }
let desc_any = { axis = Descendant; test = Wildcard }

let of_steps = function
  | [] -> invalid_arg "Path_expr.of_steps: empty expression"
  | steps -> steps

let length = List.length

let matches_test test label =
  match test with
  | Wildcard -> true
  | Tag l -> Xc_xml.Label.equal l label

let test_equal a b =
  match a, b with
  | Wildcard, Wildcard -> true
  | Tag x, Tag y -> Xc_xml.Label.equal x y
  | (Wildcard | Tag _), _ -> false

let equal a b =
  List.length a = List.length b
  && List.for_all2 (fun s1 s2 -> s1.axis = s2.axis && test_equal s1.test s2.test) a b

let pp ppf steps =
  List.iter
    (fun step ->
      Format.pp_print_string ppf (match step.axis with Child -> "/" | Descendant -> "//");
      match step.test with
      | Wildcard -> Format.pp_print_char ppf '*'
      | Tag l -> Xc_xml.Label.pp ppf l)
    steps
