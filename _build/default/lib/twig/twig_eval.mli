(** Exact twig-query evaluation over a document — the ground truth
    against which synopsis estimates are scored.

    The evaluator computes, for every query variable in postorder, a
    per-element array of binding-tuple counts for the subtree rooted at
    that variable, pulling each array back through the edge's path
    expression in one O(n) pass per step (descendant steps exploit the
    preorder numbering: every child has a larger id than its parent).
    Total cost is O(|Q| · n) — feasible at the paper's 200k-element
    scale. Counts are floats; they are exact integers until they exceed
    2^53, far beyond any workload here. *)

val selectivity : Xc_xml.Document.t -> Twig_query.t -> float
(** Number of binding tuples of the query on the document. *)

val bindings_per_node : Xc_xml.Document.t -> Twig_query.t -> float array
(** For diagnostics: the root variable's per-element binding counts
    (entry [0] is the selectivity, other entries are counts that the
    query would produce were the root variable bound elsewhere). *)

val matches_path : Xc_xml.Document.t -> Path_expr.t -> int -> int -> bool
(** [matches_path doc expr src dst] — does element [dst] lie in the
    result of evaluating [expr] from element [src]? (Test helper;
    O(n·steps).) *)
