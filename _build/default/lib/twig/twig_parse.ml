exception Parse_error of string

type ast_step = {
  s : Path_expr.step;
  mutable spreds : Predicate.t list;
  mutable branches : ast_step list list;
}

type state = {
  src : string;
  mutable pos : int;
}

let fail st msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))
let eof st = st.pos >= String.length st.src
let peek st = st.src.[st.pos]

let skip_spaces st =
  while (not (eof st)) && (peek st = ' ' || peek st = '\t' || peek st = '\n') do
    st.pos <- st.pos + 1
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let eat st s = if looking_at st s then (st.pos <- st.pos + String.length s; true) else false

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

let read_name st =
  skip_spaces st;
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

let read_int st =
  skip_spaces st;
  let start = st.pos in
  if (not (eof st)) && peek st = '-' then st.pos <- st.pos + 1;
  while (not (eof st)) && peek st >= '0' && peek st <= '9' do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected an integer";
  int_of_string (String.sub st.src start (st.pos - start))

let read_until st c =
  match String.index_from_opt st.src st.pos c with
  | None -> fail st (Printf.sprintf "expected '%c'" c)
  | Some i ->
    let s = String.sub st.src st.pos (i - st.pos) in
    st.pos <- i + 1;
    s

(* Consume a keyword only when followed by a non-name character, so that
   tags like "incategory" or "containsfoo" are not mistaken for it. *)
let eat_kw st kw =
  let n = String.length kw in
  if looking_at st kw
     && (st.pos + n >= String.length st.src || not (is_name_char st.src.[st.pos + n]))
  then begin
    st.pos <- st.pos + n;
    true
  end
  else false

let ft_terms st kw =
  skip_spaces st;
  if not (eat st "(") then fail st (Printf.sprintf "expected '(' after %s" kw);
  let body = read_until st ')' in
  let words =
    body
    |> String.split_on_char ','
    |> List.map String.trim
    |> List.filter (fun w -> String.length w > 0)
  in
  if words = [] then fail st (kw ^ " needs at least one term");
  List.map Xc_xml.Dictionary.of_string words

(* A value predicate, or None if the cursor is not at one. *)
let try_valuepred st =
  skip_spaces st;
  if eat_kw st "contains" then begin
    skip_spaces st;
    if not (eat st "(") then fail st "expected '(' after contains";
    Some (Predicate.Contains (String.trim (read_until st ')')))
  end
  else if eat_kw st "ftcontains" then
    Some (Predicate.Ft_contains (ft_terms st "ftcontains"))
  else if eat_kw st "ftany" then Some (Predicate.Ft_any (ft_terms st "ftany"))
  else if eat_kw st "ftexcludes" then
    Some (Predicate.Ft_excludes (ft_terms st "ftexcludes"))
  else if eat_kw st "in" then begin
    let l = read_int st in
    skip_spaces st;
    if not (eat st "..") then fail st "expected '..' in range";
    let h = read_int st in
    Some (Predicate.Range (l, h))
  end
  else if eat st ">=" then Some (Predicate.Range (read_int st, max_int))
  else if eat st "<=" then Some (Predicate.Range (min_int, read_int st))
  else if eat st ">" then Some (Predicate.Range (read_int st + 1, max_int))
  else if eat st "<" then Some (Predicate.Range (min_int, read_int st - 1))
  else if eat st "=" then begin
    let v = read_int st in
    Some (Predicate.Range (v, v))
  end
  else None

let parse_nametest st =
  skip_spaces st;
  if eat st "*" then Path_expr.Wildcard
  else if eat st "@" then
    (* attribute-derived elements are labelled @name (Parser `Elements) *)
    Path_expr.Tag (Xc_xml.Label.of_string ("@" ^ read_name st))
  else Path_expr.Tag (Xc_xml.Label.of_string (read_name st))

let rec parse_relpath ~allow_bare st =
  (* allow_bare: a leading NAME (no slash) is sugar for /NAME, used in
     predicate branches like [year > 2000] *)
  let steps = ref [] in
  let parse_step axis =
    let test = parse_nametest st in
    let step = { s = { Path_expr.axis; test }; spreds = []; branches = [] } in
    parse_preds st step;
    steps := step :: !steps
  in
  skip_spaces st;
  (if allow_bare && (not (eof st)) && (peek st <> '/') then parse_step Path_expr.Child
   else if eat st "//" then parse_step Path_expr.Descendant
   else if eat st "/" then parse_step Path_expr.Child
   else fail st "expected a path step");
  let rec more () =
    skip_spaces st;
    if eat st "//" then begin
      parse_step Path_expr.Descendant;
      more ()
    end
    else if looking_at st "/" && not (looking_at st "//") then begin
      ignore (eat st "/");
      parse_step Path_expr.Child;
      more ()
    end
  in
  more ();
  List.rev !steps

and parse_preds st step =
  skip_spaces st;
  if eat st "[" then begin
    skip_spaces st;
    (* self predicates may be written with an optional leading '.' *)
    if eat st "." then skip_spaces st;
    (match try_valuepred st with
    | Some p -> step.spreds <- step.spreds @ [ p ]
    | None ->
      let branch = parse_relpath ~allow_bare:true st in
      (match try_valuepred st with
      | Some p -> (
        match List.rev branch with
        | last :: _ -> last.spreds <- last.spreds @ [ p ]
        | [] -> assert false)
      | None -> ());
      step.branches <- step.branches @ [ branch ]);
    skip_spaces st;
    if not (eat st "]") then fail st "expected ']'";
    parse_preds st step
  end

let rec to_edges steps =
  match steps with
  | [] -> []
  | _ :: _ ->
    let rec take acc = function
      | [] -> assert false
      | st :: rest ->
        let acc = st.s :: acc in
        if st.spreds <> [] || st.branches <> [] || rest = [] then (List.rev acc, st, rest)
        else take acc rest
    in
    let expr, stop, rest = take [] steps in
    let branch_edges = List.concat_map to_edges stop.branches in
    let continuation = to_edges rest in
    [ (expr, Twig_query.node ~preds:stop.spreds ~edges:(branch_edges @ continuation) ()) ]

let parse src =
  let st = { src; pos = 0 } in
  skip_spaces st;
  let steps = parse_relpath ~allow_bare:false st in
  skip_spaces st;
  if not (eof st) then fail st "trailing input";
  Twig_query.make ([], to_edges steps)
