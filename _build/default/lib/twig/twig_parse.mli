(** Textual syntax for twig queries, used by the CLI and the examples.

    Grammar (whitespace-insensitive):
    {v
    query    ::= relpath
    relpath  ::= step+
    step     ::= ("/" | "//") nametest pred*
    nametest ::= NAME | "*"
    pred     ::= "[" body "]"
    body     ::= valuepred                  value predicate on the step
               | branch valuepred?         existential branch, optionally
                                            ending in a value predicate
    branch   ::= NAME-or-step relpath?     a leading NAME means /NAME
    valuepred::= ">" INT | ">=" INT | "<" INT | "<=" INT | "=" INT
               | "in" INT ".." INT
               | "contains" "(" chars ")"
               | "ftcontains" "(" word ("," word)* ")"
    v}

    Example: [//paper[year > 2000][abstract ftcontains(synopsis, xml)]
    /title[contains(Tree)]]. *)

exception Parse_error of string

val parse : string -> Twig_query.t
(** @raise Parse_error with a message and byte position. *)
