(** Random twig-query workloads, per the paper's methodology (Sec. 6.1).

    Positive workloads sample twigs from the document (sampling elements
    uniformly is exactly the "biased toward high counts" sampling of
    the paper, since high-count paths own more elements), generalize the
    sampled root-to-element path with descendant steps and wildcards,
    optionally attach an existential branch, and derive value predicates
    from actual element values — which guarantees non-zero selectivity
    by construction. Each query carries a single predicate class so that
    per-class error can be reported (Fig. 8's Numeric/String/Text/Struct
    series). *)

type entry = {
  query : Twig_query.t;
  true_count : float;  (** exact selectivity, from {!Twig_eval} *)
  cls : Twig_query.query_class;
}

type spec = {
  n_queries : int;          (** total, split evenly across classes *)
  seed : int;
  p_descendant : float;     (** chance of collapsing a path segment to [//] *)
  p_wildcard : float;       (** chance of wildcarding a non-anchor step *)
  p_branch : float;         (** chance of attaching an existential branch *)
  numeric_halfwidth : float;(** range half-width as a fraction of the domain *)
  substring_len : int * int;(** min/max substring predicate length *)
  max_terms : int;          (** max conjunctive terms per ftcontains *)
  value_paths : Xc_xml.Label.t list list option;
      (** value predicates only target elements on these label paths
          (the paper's designated summary paths); [None] = all paths *)
}

val default_spec : spec

val generate : ?spec:spec -> Xc_xml.Document.t -> entry list
(** Positive workload over the document. Classes that the document
    cannot support (e.g. no TEXT values anywhere) are skipped. *)

val negative : ?n:int -> ?seed:int -> ?value_paths:Xc_xml.Label.t list list ->
  Xc_xml.Document.t -> entry list
(** Queries with exactly zero selectivity (verified by evaluation):
    positive skeletons whose value predicate is replaced by an
    unsatisfied one or whose structure is broken. *)

val sanity_bound : entry list -> float
(** The 10-percentile of the true counts (the paper's sanity bound s). *)

val classes : entry list -> Twig_query.query_class list
(** Distinct classes present, in a fixed report order. *)
