type t =
  | Range of int * int
  | Contains of string
  | Ft_contains of Xc_xml.Dictionary.term list
  | Ft_any of Xc_xml.Dictionary.term list
  | Ft_excludes of Xc_xml.Dictionary.term list

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else if nl > hl then false
  else begin
    let rec at i = i <= hl - nl && (matches_at i || at (i + 1))
    and matches_at i =
      let rec chars j = j >= nl || (haystack.[i + j] = needle.[j] && chars (j + 1)) in
      chars 0
    in
    at 0
  end

let matches pred value =
  match pred, value with
  | Range (l, h), Xc_xml.Value.Numeric n -> l <= n && n <= h
  | Contains qs, Xc_xml.Value.Str s -> contains_substring ~needle:qs s
  | Ft_contains terms, (Xc_xml.Value.Text _ as v) ->
    List.for_all (fun t -> Xc_xml.Value.text_contains v t) terms
  | Ft_any terms, (Xc_xml.Value.Text _ as v) ->
    List.exists (fun t -> Xc_xml.Value.text_contains v t) terms
  | Ft_excludes terms, (Xc_xml.Value.Text _ as v) ->
    not (List.exists (fun t -> Xc_xml.Value.text_contains v t) terms)
  | (Range _ | Contains _ | Ft_contains _ | Ft_any _ | Ft_excludes _), _ -> false

let vtype = function
  | Range _ -> Xc_xml.Value.Tnumeric
  | Contains _ -> Xc_xml.Value.Tstring
  | Ft_contains _ | Ft_any _ | Ft_excludes _ -> Xc_xml.Value.Ttext

let equal a b =
  match a, b with
  | Range (l1, h1), Range (l2, h2) -> l1 = l2 && h1 = h2
  | Contains x, Contains y -> String.equal x y
  | Ft_contains x, Ft_contains y | Ft_any x, Ft_any y | Ft_excludes x, Ft_excludes y
    ->
    List.length x = List.length y && List.for_all2 Xc_xml.Dictionary.equal x y
  | (Range _ | Contains _ | Ft_contains _ | Ft_any _ | Ft_excludes _), _ -> false

let pp_terms ppf terms =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
    Xc_xml.Dictionary.pp ppf terms

let pp ppf = function
  | Range (l, h) -> Format.fprintf ppf "in %d..%d" l h
  | Contains qs -> Format.fprintf ppf "contains(%s)" qs
  | Ft_contains terms ->
    Format.fprintf ppf "ftcontains(%a)" pp_terms terms
  | Ft_any terms -> Format.fprintf ppf "ftany(%a)" pp_terms terms
  | Ft_excludes terms -> Format.fprintf ppf "ftexcludes(%a)" pp_terms terms
