type node = {
  qid : int;
  preds : Predicate.t list;
  edges : (Path_expr.t * node) list;
}

type t = {
  root : node;
  n_nodes : int;
}

type query_class =
  | Cstruct
  | Cnumeric
  | Cstring
  | Ctext
  | Cmixed

let node ?(preds = []) ?(edges = []) () = { qid = -1; preds; edges }

let make (preds, edges) =
  let next = ref 0 in
  let rec renumber n =
    let qid = !next in
    incr next;
    { n with qid; edges = List.map (fun (e, c) -> (e, renumber c)) n.edges }
  in
  let root = renumber { qid = -1; preds; edges } in
  { root; n_nodes = !next }

let linear ?(preds = []) expr = make ([], [ (expr, node ~preds ()) ])

let iter_nodes f t =
  let rec walk n =
    f n;
    List.iter (fun (_, c) -> walk c) n.edges
  in
  walk t.root

let n_predicates t =
  let count = ref 0 in
  iter_nodes (fun n -> count := !count + List.length n.preds) t;
  !count

let classify t =
  let has_num = ref false and has_str = ref false and has_text = ref false in
  iter_nodes
    (fun n ->
      List.iter
        (fun p ->
          match Predicate.vtype p with
          | Xc_xml.Value.Tnumeric -> has_num := true
          | Xc_xml.Value.Tstring -> has_str := true
          | Xc_xml.Value.Ttext -> has_text := true
          | Xc_xml.Value.Tnull -> ())
        n.preds)
    t;
  match !has_num, !has_str, !has_text with
  | false, false, false -> Cstruct
  | true, false, false -> Cnumeric
  | false, true, false -> Cstring
  | false, false, true -> Ctext
  | _ -> Cmixed

let class_name = function
  | Cstruct -> "Struct"
  | Cnumeric -> "Numeric"
  | Cstring -> "String"
  | Ctext -> "Text"
  | Cmixed -> "Mixed"

let pp ppf t =
  let rec pp_node ppf n =
    List.iter (fun p -> Format.fprintf ppf "[. %a]" Predicate.pp p) n.preds;
    match n.edges with
    | [] -> ()
    | [ (expr, child) ] -> Format.fprintf ppf "%a%a" Path_expr.pp expr pp_node child
    | edges ->
      List.iteri
        (fun i (expr, child) ->
          if i < List.length edges - 1 then
            Format.fprintf ppf "[%a%a]" Path_expr.pp expr pp_node child
          else Format.fprintf ppf "%a%a" Path_expr.pp expr pp_node child)
        edges
  in
  Format.fprintf ppf "@[<h>.%a@]" pp_node t.root
