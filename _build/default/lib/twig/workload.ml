open Xc_xml
module Rng = Xc_util.Rng

type entry = {
  query : Twig_query.t;
  true_count : float;
  cls : Twig_query.query_class;
}

type spec = {
  n_queries : int;
  seed : int;
  p_descendant : float;
  p_wildcard : float;
  p_branch : float;
  numeric_halfwidth : float;
  substring_len : int * int;
  max_terms : int;
  value_paths : Label.t list list option;
      (* when set, value predicates only target elements on these label
         paths — mirroring the paper's designated summary paths *)
}

let default_spec =
  { n_queries = 400;
    seed = 42;
    p_descendant = 0.5;
    p_wildcard = 0.15;
    p_branch = 0.4;
    numeric_halfwidth = 0.08;
    substring_len = (2, 4);
    max_terms = 2;
    value_paths = None }

(* ---- document index ------------------------------------------------ *)

type index = {
  parents : int array;
  by_type : (Value.vtype, int array) Hashtbl.t; (* node ids per value type *)
  non_root : int array;                         (* all node ids except the root *)
  label_span : (Label.t, int * int) Hashtbl.t;  (* numeric min/max per label *)
}

let build_index ?value_paths doc =
  let nodes = doc.Document.nodes in
  let parents = Document.parent_table doc in
  let designated =
    match value_paths with
    | None -> None
    | Some paths ->
      let set = Hashtbl.create 16 in
      List.iter (fun p -> Hashtbl.replace set p ()) paths;
      Some set
  in
  let on_designated_path i =
    match designated with
    | None -> true
    | Some set ->
      let rec up j acc = if j < 0 then acc else up parents.(j) (nodes.(j).Node.label :: acc) in
      Hashtbl.mem set (up i [])
  in
  let by_type_lists : (Value.vtype, int list ref) Hashtbl.t = Hashtbl.create 4 in
  let label_span = Hashtbl.create 16 in
  Array.iteri
    (fun i node ->
      let vt = Value.vtype node.Node.value in
      (if (not (Value.vtype_equal vt Value.Tnull)) && on_designated_path i then begin
         let l =
           match Hashtbl.find_opt by_type_lists vt with
           | Some l -> l
           | None ->
             let l = ref [] in
             Hashtbl.add by_type_lists vt l;
             l
         in
         l := i :: !l
       end);
      match node.Node.value with
      | Value.Numeric v ->
        let lo, hi =
          Option.value ~default:(v, v) (Hashtbl.find_opt label_span node.Node.label)
        in
        Hashtbl.replace label_span node.Node.label (min lo v, max hi v)
      | Value.Null | Value.Str _ | Value.Text _ -> ())
    nodes;
  let by_type = Hashtbl.create 4 in
  Hashtbl.iter (fun vt l -> Hashtbl.add by_type vt (Array.of_list !l)) by_type_lists;
  { parents;
    by_type;
    non_root = Array.init (Array.length nodes - 1) (fun i -> i + 1);
    label_span }

(* full path from the root element down to the target, inclusive: the
   query root q0 binds to the virtual document node, so the first step
   names the root element *)
let spine_of idx target =
  let rec up i acc = if i < 0 then acc else up idx.parents.(i) (i :: acc) in
  up target []

(* ---- query skeleton ------------------------------------------------- *)

type skel_step = {
  mutable step : Path_expr.step;
  mutable removed : bool;
  mutable preds : Predicate.t list;
  mutable branch : Path_expr.t option;
  elem : int; (* document node id this step corresponds to *)
}

let skeleton doc idx rng spec target =
  let nodes = doc.Document.nodes in
  let spine = spine_of idx target in
  let steps =
    List.map
      (fun id ->
        { step = { Path_expr.axis = Path_expr.Child; test = Path_expr.Tag nodes.(id).Node.label };
          removed = false;
          preds = [];
          branch = None;
          elem = id })
      spine
  in
  let arr = Array.of_list steps in
  let k = Array.length arr in
  (* collapse a random segment into a descendant step *)
  if k >= 2 && Rng.chance rng spec.p_descendant then begin
    let j = Rng.int rng k in
    let i = Rng.int rng (j + 1) in
    for x = i to j - 1 do
      arr.(x).removed <- true
    done;
    arr.(j).step <- { arr.(j).step with Path_expr.axis = Path_expr.Descendant }
  end;
  (* wildcard some interior child steps *)
  for x = 0 to k - 2 do
    let s = arr.(x) in
    if (not s.removed) && s.step.Path_expr.axis = Path_expr.Child
       && Rng.chance rng spec.p_wildcard
    then s.step <- { s.step with Path_expr.test = Path_expr.Wildcard }
  done;
  arr

(* random existential branch below the document element of a step *)
let attach_branch doc rng spec arr =
  let nodes = doc.Document.nodes in
  let k = Array.length arr in
  if k >= 2 && Rng.chance rng spec.p_branch then begin
    (* anchor in the deeper half of the spine: a branch near the root
       multiplies binding tuples by the whole collection's population,
       which swamps the workload with astronomically large results *)
    let live =
      Array.to_list arr
      |> List.filteri (fun i s -> (not s.removed) && i < k - 1 && i >= (k - 1) / 2)
    in
    match live with
    | [] -> ()
    | _ ->
      let anchor = Rng.pick_list rng live in
      let start = nodes.(anchor.elem) in
      let rec walk node depth acc =
        if Array.length node.Node.children = 0 || (depth > 0 && Rng.chance rng 0.5) then
          List.rev acc
        else begin
          let child = Rng.pick rng node.Node.children in
          walk child (depth + 1) (child.Node.label :: acc)
        end
      in
      let labels = walk start 0 [] in
      (match labels with
      | [] -> ()
      | first :: rest ->
        let expr =
          if Rng.chance rng 0.5 && rest = [] then
            [ { Path_expr.axis = Path_expr.Descendant; test = Path_expr.Tag first } ]
          else
            List.map
              (fun l -> { Path_expr.axis = Path_expr.Child; test = Path_expr.Tag l })
              (first :: rest)
        in
        anchor.branch <- Some expr)
  end

(* value predicate derived from the element's own value: satisfied by
   construction, hence positive selectivity *)
let make_predicate rng spec idx doc target =
  let node = doc.Document.nodes.(target) in
  match node.Node.value with
  | Value.Numeric v ->
    let lo, hi =
      Option.value ~default:(v, v) (Hashtbl.find_opt idx.label_span node.Node.label)
    in
    let span = max 1 (hi - lo) in
    let hw = max 1 (int_of_float (spec.numeric_halfwidth *. float_of_int span)) in
    let a = v - Rng.int rng (hw + 1) and b = v + Rng.int rng (hw + 1) in
    Some (Predicate.Range (a, b))
  | Value.Str s ->
    let len = String.length s in
    if len = 0 then None
    else begin
      let min_l, max_l = spec.substring_len in
      let l = min len (Rng.int_range rng min_l max_l) in
      let start = Rng.int rng (len - l + 1) in
      Some (Predicate.Contains (String.sub s start l))
    end
  | Value.Text terms ->
    if Array.length terms = 0 then None
    else begin
      let n_terms = min (Array.length terms) (1 + Rng.int rng spec.max_terms) in
      let picked = Array.to_list (Array.init n_terms (fun _ -> Rng.pick rng terms)) in
      Some (Predicate.Ft_contains (List.sort_uniq Dictionary.compare picked))
    end
  | Value.Null -> None

(* fold the skeleton into a twig query (variables at steps that carry
   predicates or branches, and at the last step) *)
let to_query arr =
  let steps = Array.to_list arr |> List.filter (fun s -> not s.removed) in
  let rec to_edges = function
    | [] -> []
    | steps ->
      let rec take acc = function
        | [] -> assert false
        | s :: rest ->
          let acc = s.step :: acc in
          if s.preds <> [] || s.branch <> None || rest = [] then (List.rev acc, s, rest)
          else take acc rest
      in
      let expr, stop, rest = take [] steps in
      let branch_edges =
        match stop.branch with
        | None -> []
        | Some bexpr -> [ (bexpr, Twig_query.node ()) ]
      in
      [ (expr, Twig_query.node ~preds:stop.preds ~edges:(branch_edges @ to_edges rest) ()) ]
  in
  Twig_query.make ([], to_edges steps)

let pick_target idx rng cls =
  let pool =
    match cls with
    | Twig_query.Cstruct -> Some idx.non_root
    | Twig_query.Cnumeric -> Hashtbl.find_opt idx.by_type Value.Tnumeric
    | Twig_query.Cstring -> Hashtbl.find_opt idx.by_type Value.Tstring
    | Twig_query.Ctext -> Hashtbl.find_opt idx.by_type Value.Ttext
    | Twig_query.Cmixed -> None
  in
  match pool with
  | Some arr when Array.length arr > 0 -> Some (Rng.pick rng arr)
  | Some _ | None -> None

let generate ?(spec = default_spec) doc =
  let idx = build_index ?value_paths:spec.value_paths doc in
  let rng = Rng.create spec.seed in
  let classes = [ Twig_query.Cstruct; Cnumeric; Cstring; Ctext ] in
  let per_class = max 1 (spec.n_queries / List.length classes) in
  let out = ref [] in
  List.iter
    (fun cls ->
      let made = ref 0 and attempts = ref 0 in
      while !made < per_class && !attempts < per_class * 20 do
        incr attempts;
        match pick_target idx rng cls with
        | None -> attempts := per_class * 20 (* class unsupported by this document *)
        | Some target ->
          let arr = skeleton doc idx rng spec target in
          attach_branch doc rng spec arr;
          (match cls with
          | Twig_query.Cstruct -> ()
          | _ -> (
            match make_predicate rng spec idx doc target with
            | Some p -> arr.(Array.length arr - 1).preds <- [ p ]
            | None -> ()));
          let query = to_query arr in
          let actual_cls = Twig_query.classify query in
          (* a value query whose predicate could not be built degrades to
             a structural query; only keep it under its requested class *)
          if actual_cls = cls then begin
            let true_count = Twig_eval.selectivity doc query in
            if true_count > 0.0 then begin
              out := { query; true_count; cls } :: !out;
              incr made
            end
          end
      done)
    classes;
  List.rev !out

let negative ?(n = 100) ?(seed = 4242) ?value_paths doc =
  let idx = build_index ?value_paths doc in
  let spec = { default_spec with seed; value_paths } in
  let rng = Rng.create seed in
  let out = ref [] and attempts = ref 0 in
  while List.length !out < n && !attempts < n * 50 do
    incr attempts;
    let cls =
      Rng.pick_list rng [ Twig_query.Cstruct; Cnumeric; Cstring; Ctext ]
    in
    match pick_target idx rng cls with
    | None -> ()
    | Some target ->
      let arr = skeleton doc idx rng spec target in
      let node = doc.Document.nodes.(target) in
      let sabotage =
        match cls, node.Node.value with
        | Twig_query.Cnumeric, Value.Numeric _ ->
          let _, hi =
            Option.value ~default:(0, 0) (Hashtbl.find_opt idx.label_span node.Node.label)
          in
          Some (Predicate.Range (hi + 17, hi + 29))
        | Twig_query.Cstring, Value.Str _ -> Some (Predicate.Contains "@#qzj")
        | Twig_query.Ctext, Value.Text _ ->
          Some (Predicate.Ft_contains [ Dictionary.of_string "zzabsentterm" ])
        | Twig_query.Cstruct, _ ->
          (* a structural negative: demand a child that leaf elements
             never have *)
          None
        | _, (Value.Null | Value.Numeric _ | Value.Str _ | Value.Text _) -> None
      in
      let ok =
        match sabotage with
        | Some p ->
          arr.(Array.length arr - 1).preds <- [ p ];
          true
        | None ->
          if cls = Twig_query.Cstruct && Array.length node.Node.children = 0 then begin
            arr.(Array.length arr - 1).branch <-
              Some [ { Path_expr.axis = Path_expr.Child;
                       test = Path_expr.Tag (Label.of_string "nonexistent_tag") } ];
            true
          end
          else false
      in
      if ok then begin
        let query = to_query arr in
        let true_count = Twig_eval.selectivity doc query in
        if true_count = 0.0 then
          out := { query; true_count; cls } :: !out
      end
  done;
  List.rev !out

let sanity_bound entries =
  match entries with
  | [] -> 1.0
  | _ ->
    let counts = List.map (fun e -> e.true_count) entries |> Array.of_list in
    Array.sort Float.compare counts;
    let i = int_of_float (0.1 *. float_of_int (Array.length counts - 1)) in
    Float.max 1.0 counts.(i)

let classes entries =
  List.filter
    (fun c -> List.exists (fun e -> e.cls = c) entries)
    [ Twig_query.Cstruct; Cnumeric; Cstring; Ctext; Cmixed ]
