lib/twig/twig_parse.ml: List Path_expr Predicate Printf String Twig_query Xc_xml
