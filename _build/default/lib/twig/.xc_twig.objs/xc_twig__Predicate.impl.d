lib/twig/predicate.ml: Format List String Xc_xml
