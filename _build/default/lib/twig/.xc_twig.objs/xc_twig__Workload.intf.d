lib/twig/workload.mli: Twig_query Xc_xml
