lib/twig/twig_parse.mli: Twig_query
