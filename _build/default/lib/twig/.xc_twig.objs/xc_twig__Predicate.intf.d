lib/twig/predicate.mli: Format Xc_xml
