lib/twig/twig_query.ml: Format List Path_expr Predicate Xc_xml
