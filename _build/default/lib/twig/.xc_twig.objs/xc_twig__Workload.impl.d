lib/twig/workload.ml: Array Dictionary Document Float Hashtbl Label List Node Option Path_expr Predicate String Twig_eval Twig_query Value Xc_util Xc_xml
