lib/twig/twig_eval.mli: Path_expr Twig_query Xc_xml
