lib/twig/twig_query.mli: Format Path_expr Predicate
