lib/twig/twig_eval.ml: Array Document List Node Path_expr Predicate Twig_query Xc_xml
