lib/twig/path_expr.ml: Format List Xc_xml
