lib/twig/path_expr.mli: Format Xc_xml
