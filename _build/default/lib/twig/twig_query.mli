(** Twig queries: node- and edge-labelled trees of query variables
    (Sec. 2).

    The root variable [q0] always binds to the document root. Every
    other variable is reached from its parent variable through a
    {!Path_expr} edge, and may carry {!Predicate}s on its own value.
    The query's selectivity is the number of {e binding tuples}:
    assignments of document elements to all variables satisfying every
    structural and value constraint. *)

type node = {
  qid : int;                            (** dense id, root = 0 *)
  preds : Predicate.t list;             (** value predicates on this variable *)
  edges : (Path_expr.t * node) list;    (** outgoing structural constraints *)
}

type t = {
  root : node;
  n_nodes : int;
}

type query_class =
  | Cstruct   (** no value predicates *)
  | Cnumeric
  | Cstring
  | Ctext
  | Cmixed    (** predicates of several types *)

val make : (Predicate.t list * (Path_expr.t * node) list) -> t
(** Builds a query from the root's predicates and edges, assigning
    dense [qid]s in preorder. *)

val node : ?preds:Predicate.t list -> ?edges:(Path_expr.t * node) list ->
  unit -> node
(** Builds an interior/leaf query node ([qid] is patched by {!make}). *)

val linear : ?preds:Predicate.t list -> Path_expr.t -> t
(** Single-edge query [q0 --expr--> q1] with predicates on [q1]. *)

val classify : t -> query_class
(** Class of the query by the value predicates it contains. *)

val n_predicates : t -> int
val iter_nodes : (node -> unit) -> t -> unit
val pp : Format.formatter -> t -> unit
(** XPath-ish rendering with bracketed branches and predicates. *)

val class_name : query_class -> string
