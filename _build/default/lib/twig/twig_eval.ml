open Xc_xml

(* Pull a per-element vector back through one step: result.(e) is the sum
   of [cur] over the elements reached from [e] by the step. *)
let pull_step doc step cur =
  let nodes = doc.Document.nodes in
  let n = Array.length nodes in
  let out = Array.make n 0.0 in
  (match step.Path_expr.axis with
  | Path_expr.Child ->
    for i = 0 to n - 1 do
      let acc = ref 0.0 in
      Array.iter
        (fun c ->
          if Path_expr.matches_test step.Path_expr.test c.Node.label then
            acc := !acc +. cur.(c.Node.id))
        nodes.(i).Node.children;
      out.(i) <- !acc
    done
  | Path_expr.Descendant ->
    (* children have strictly larger preorder ids, so a reverse scan sees
       every child's [out] before its parent's *)
    for i = n - 1 downto 0 do
      let acc = ref 0.0 in
      Array.iter
        (fun c ->
          let contribution =
            if Path_expr.matches_test step.Path_expr.test c.Node.label then
              cur.(c.Node.id)
            else 0.0
          in
          acc := !acc +. contribution +. out.(c.Node.id))
        nodes.(i).Node.children;
      out.(i) <- !acc
    done);
  out

let pull_expr doc expr arr = List.fold_right (fun step acc -> pull_step doc step acc) expr arr

let eval_query doc query =
  let nodes = doc.Document.nodes in
  let n = Array.length nodes in
  let rec eval qnode =
    let pulled_children =
      List.map (fun (expr, child) -> pull_expr doc expr (eval child)) qnode.Twig_query.edges
    in
    Array.init n (fun i ->
        let sat =
          List.for_all (fun p -> Predicate.matches p nodes.(i).Node.value) qnode.Twig_query.preds
        in
        if not sat then 0.0
        else List.fold_left (fun acc arr -> acc *. arr.(i)) 1.0 pulled_children)
  in
  eval query.Twig_query.root

let bindings_per_node = eval_query

(* The root variable q0 binds to the virtual *document node*, so a
   top-level [/db] step selects the root element and a top-level [//x]
   step ranges over every element including the root. *)
let docnode_pull doc expr bind =
  match expr with
  | [] -> bind.(0)
  | first :: rest ->
    let pulled = pull_expr doc rest bind in
    let root = doc.Document.root in
    (match first.Path_expr.axis with
    | Path_expr.Child ->
      if Path_expr.matches_test first.Path_expr.test root.Node.label then pulled.(0)
      else 0.0
    | Path_expr.Descendant ->
      let total = ref 0.0 in
      Array.iter
        (fun node ->
          if Path_expr.matches_test first.Path_expr.test node.Node.label then
            total := !total +. pulled.(node.Node.id))
        doc.Document.nodes;
      !total)

let selectivity doc query =
  let root = query.Twig_query.root in
  (* predicates on q0 itself never hold on the virtual document node *)
  if root.Twig_query.preds <> [] then 0.0
  else
    List.fold_left
      (fun acc (expr, child) ->
        let rec eval qnode =
          let pulled_children =
            List.map
              (fun (e, c) -> pull_expr doc e (eval c))
              qnode.Twig_query.edges
          in
          Array.init (Array.length doc.Document.nodes) (fun i ->
              let sat =
                List.for_all
                  (fun p -> Predicate.matches p doc.Document.nodes.(i).Node.value)
                  qnode.Twig_query.preds
              in
              if not sat then 0.0
              else List.fold_left (fun a arr -> a *. arr.(i)) 1.0 pulled_children)
        in
        acc *. docnode_pull doc expr (eval child))
      1.0 root.Twig_query.edges

let matches_path doc expr src dst =
  let n = Array.length doc.Document.nodes in
  let target = Array.make n 0.0 in
  target.(dst) <- 1.0;
  (pull_expr doc expr target).(src) > 0.0
