(** Value predicates attachable to twig-query nodes (Sec. 2).

    Each predicate class targets one value type: range predicates target
    NUMERIC values, substring predicates STRING values, and keyword
    predicates TEXT values. *)

type t =
  | Range of int * int
      (** [Range (l, h)] — inclusive numeric range [l, h]. *)
  | Contains of string
      (** [contains(qs)] — SQL-LIKE-style substring match. *)
  | Ft_contains of Xc_xml.Dictionary.term list
      (** [ftcontains(t1,...,tk)] — conjunctive exact term matches. *)
  | Ft_any of Xc_xml.Dictionary.term list
      (** [ftany(t1,...,tk)] — disjunctive term match (at least one
          term present). One of the additional Boolean-model predicates
          the paper's framework supports (Sec. 2). *)
  | Ft_excludes of Xc_xml.Dictionary.term list
      (** [ftexcludes(t1,...,tk)] — negation (none of the terms
          present); applies to TEXT values only. *)

val matches : t -> Xc_xml.Value.t -> bool
(** Exact Boolean semantics against a concrete element value; a
    predicate never matches a value of the wrong type. *)

val vtype : t -> Xc_xml.Value.vtype
(** The value type the predicate applies to. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
