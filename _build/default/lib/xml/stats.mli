(** Document-level statistics used by Table 1 and for diagnostics. *)

type path_stat = {
  path : Label.t list;   (** root-to-element label path *)
  vtype : Value.vtype;   (** common value type of elements on this path *)
  elements : int;        (** number of elements with this label path *)
}

type t = {
  n_elements : int;
  n_labels : int;            (** distinct tags in the document *)
  height : int;
  serialized_bytes : int;    (** size of the XML serialization *)
  paths : path_stat list;    (** one entry per distinct label path *)
}

val compute : Document.t -> t
(** Full scan of the document. If elements sharing a label path disagree
    on value type, the path is reported with the most frequent non-null
    type (generators in this repository never produce such conflicts). *)

val value_paths : t -> path_stat list
(** Paths whose elements carry non-null values. *)

val pp_path : Format.formatter -> Label.t list -> unit
(** Renders as [/a/b/c]. *)
