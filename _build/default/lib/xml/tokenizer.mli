(** Tokenization of free text into index terms.

    Implements the usual IR pipeline for the Boolean model: lowercase,
    split on non-alphanumeric characters, drop very short tokens and
    stopwords, intern the rest into the global {!Dictionary}. *)

val tokenize : string -> Dictionary.term list
(** Distinct terms of the text, unordered (duplicates removed). *)

val text_value : string -> Value.t
(** [text_value s] is [Value.text_of_terms (tokenize s)]. *)

val is_stopword : string -> bool
(** True for the small built-in English stopword list. *)
