lib/xml/value.mli: Dictionary Format
