lib/xml/document.ml: Array Hashtbl Node Option Value
