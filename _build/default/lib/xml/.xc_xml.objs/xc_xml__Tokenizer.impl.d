lib/xml/tokenizer.ml: Buffer Char Dictionary Hashtbl List String Value
