lib/xml/node.mli: Format Label Value
