lib/xml/dictionary.mli: Format
