lib/xml/dictionary.ml: Array Format Hashtbl Int
