lib/xml/stats.ml: Array Document Format Hashtbl Label List Node Value Writer
