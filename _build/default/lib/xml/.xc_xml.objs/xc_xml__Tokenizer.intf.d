lib/xml/tokenizer.mli: Dictionary Value
