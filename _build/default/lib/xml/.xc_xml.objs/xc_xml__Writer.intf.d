lib/xml/writer.mli: Buffer Document
