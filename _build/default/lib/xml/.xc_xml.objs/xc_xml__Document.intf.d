lib/xml/document.mli: Label Node Value
