lib/xml/value.ml: Array Dictionary Format Int List String
