lib/xml/stats.mli: Document Format Label Value
