lib/xml/parser.ml: Buffer Char Document Hashtbl List Node Printf String Tokenizer Value
