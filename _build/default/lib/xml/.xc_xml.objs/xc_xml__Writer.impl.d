lib/xml/writer.ml: Array Buffer Dictionary Document Label Node String Value
