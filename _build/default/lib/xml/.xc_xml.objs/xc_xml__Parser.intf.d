lib/xml/parser.mli: Document Value
