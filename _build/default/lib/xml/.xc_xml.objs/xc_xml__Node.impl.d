lib/xml/node.ml: Array Format Label Value
