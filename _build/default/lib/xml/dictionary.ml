type term = int

let table : (string, int) Hashtbl.t = Hashtbl.create 4096
let names : string array ref = ref (Array.make 4096 "")
let freqs : int array ref = ref (Array.make 4096 0)
let next = ref 0

let grow () =
  let n = Array.length !names in
  let names' = Array.make (2 * n) "" in
  Array.blit !names 0 names' 0 n;
  names := names';
  let freqs' = Array.make (2 * n) 0 in
  Array.blit !freqs 0 freqs' 0 n;
  freqs := freqs'

let of_string w =
  match Hashtbl.find_opt table w with
  | Some id -> id
  | None ->
    let id = !next in
    incr next;
    if id >= Array.length !names then grow ();
    !names.(id) <- w;
    Hashtbl.add table w id;
    id

let to_string id = !names.(id)
let equal = Int.equal
let compare = Int.compare
let count () = !next
let note_occurrence id = !freqs.(id) <- !freqs.(id) + 1
let frequency id = !freqs.(id)
let pp ppf id = Format.pp_print_string ppf (to_string id)
let unsafe_of_int i = i
