(** Interned element labels (tags).

    Labels are interned into small integer identifiers so that the rest of
    the system can compare and hash them in O(1) and store them compactly
    inside synopsis nodes. The intern table is global: interning is
    idempotent and identifiers are stable for the lifetime of the process,
    which lets documents, synopses and queries share label identities. *)

type t = private int
(** An interned label. Two labels are equal iff their names are equal. *)

val of_string : string -> t
(** [of_string name] interns [name] and returns its label. *)

val to_string : t -> string
(** [to_string l] returns the tag name of [l]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val count : unit -> int
(** Number of distinct labels interned so far. *)

val pp : Format.formatter -> t -> unit
(** Prints the tag name. *)
