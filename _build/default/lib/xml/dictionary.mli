(** Interned dictionary of index terms for TEXT element values.

    The Boolean IR model of the paper represents a TEXT value as a Boolean
    vector over an underlying dictionary of terms; this module provides the
    dictionary. Like {!Label}, the table is global and interning is
    idempotent. The dictionary additionally tracks per-term document
    frequencies (how many TEXT values contain the term), which the workload
    generator uses to bias predicate sampling toward frequent terms. *)

type term = private int
(** An interned term identifier. *)

val of_string : string -> term
(** [of_string w] interns term [w]. *)

val to_string : term -> string

val equal : term -> term -> bool
val compare : term -> term -> int

val count : unit -> int
(** Number of distinct terms interned so far. *)

val note_occurrence : term -> unit
(** Bump the document frequency of a term (one call per TEXT value that
    contains the term). *)

val frequency : term -> int
(** Document frequency recorded through {!note_occurrence}. *)

val pp : Format.formatter -> term -> unit

val unsafe_of_int : int -> term
(** Trusted injection used by generators and tests that manufacture term
    identifiers directly; [i] must come from a previous interning. *)
