let escape s =
  if String.for_all (fun c -> c <> '&' && c <> '<' && c <> '>' && c <> '"') s
  then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '&' -> Buffer.add_string buf "&amp;"
        | '<' -> Buffer.add_string buf "&lt;"
        | '>' -> Buffer.add_string buf "&gt;"
        | '"' -> Buffer.add_string buf "&quot;"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let add_value buf = function
  | Value.Null -> ()
  | Value.Numeric n -> Buffer.add_string buf (string_of_int n)
  | Value.Str s -> Buffer.add_string buf (escape s)
  | Value.Text terms ->
    Array.iteri
      (fun i t ->
        if i > 0 then Buffer.add_char buf ' ';
        Buffer.add_string buf (escape (Dictionary.to_string t)))
      terms

let rec add_node buf node =
  let tag = Label.to_string node.Node.label in
  Buffer.add_char buf '<';
  Buffer.add_string buf tag;
  if Array.length node.Node.children = 0 && node.Node.value = Value.Null then
    Buffer.add_string buf "/>"
  else begin
    Buffer.add_char buf '>';
    add_value buf node.Node.value;
    Array.iter (add_node buf) node.Node.children;
    Buffer.add_string buf "</";
    Buffer.add_string buf tag;
    Buffer.add_char buf '>'
  end

let to_buffer buf doc =
  Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  add_node buf doc.Document.root;
  Buffer.add_char buf '\n'

let to_string doc =
  let buf = Buffer.create 65536 in
  to_buffer buf doc;
  Buffer.contents buf

let to_file path doc =
  let oc = open_out_bin path in
  let buf = Buffer.create 65536 in
  to_buffer buf doc;
  Buffer.output_buffer oc buf;
  close_out oc

let serialized_size doc =
  let buf = Buffer.create 65536 in
  to_buffer buf doc;
  Buffer.length buf
