type path_stat = {
  path : Label.t list;
  vtype : Value.vtype;
  elements : int;
}

type t = {
  n_elements : int;
  n_labels : int;
  height : int;
  serialized_bytes : int;
  paths : path_stat list;
}

(* Paths are accumulated through a trie keyed by label to avoid hashing
   label lists for every element. *)
type trie = {
  mutable count : int;
  mutable type_counts : (Value.vtype * int) list;
  children : (Label.t, trie) Hashtbl.t;
}

let new_trie () = { count = 0; type_counts = []; children = Hashtbl.create 4 }

let bump_type trie vt =
  let rec bump = function
    | [] -> [ (vt, 1) ]
    | (vt', c) :: rest when Value.vtype_equal vt vt' -> (vt', c + 1) :: rest
    | entry :: rest -> entry :: bump rest
  in
  trie.type_counts <- bump trie.type_counts

let rec record trie node =
  let child =
    match Hashtbl.find_opt trie.children node.Node.label with
    | Some t -> t
    | None ->
      let t = new_trie () in
      Hashtbl.add trie.children node.Node.label t;
      t
  in
  child.count <- child.count + 1;
  bump_type child (Value.vtype node.Node.value);
  Array.iter (record child) node.Node.children

let dominant_type type_counts =
  let non_null = List.filter (fun (vt, _) -> not (Value.vtype_equal vt Value.Tnull)) type_counts in
  match List.sort (fun (_, a) (_, b) -> compare b a) non_null with
  | (vt, _) :: _ -> vt
  | [] -> Value.Tnull

let collect_paths trie =
  let out = ref [] in
  let rec walk prefix trie =
    Hashtbl.iter
      (fun label child ->
        let path = label :: prefix in
        out :=
          { path = List.rev path;
            vtype = dominant_type child.type_counts;
            elements = child.count }
          :: !out;
        walk path child)
      trie.children
  in
  walk [] trie;
  List.sort (fun a b -> compare a.path b.path) !out

let compute doc =
  let labels = Hashtbl.create 64 in
  Array.iter (fun n -> Hashtbl.replace labels n.Node.label ()) doc.Document.nodes;
  let trie = new_trie () in
  record trie doc.Document.root;
  { n_elements = Document.n_elements doc;
    n_labels = Hashtbl.length labels;
    height = doc.Document.height;
    serialized_bytes = Writer.serialized_size doc;
    paths = collect_paths trie }

let value_paths stats =
  List.filter (fun p -> not (Value.vtype_equal p.vtype Value.Tnull)) stats.paths

let pp_path ppf path =
  List.iter (fun l -> Format.fprintf ppf "/%a" Label.pp l) path
