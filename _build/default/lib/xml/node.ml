type t = {
  label : Label.t;
  value : Value.t;
  mutable children : t array;
  mutable id : int;
}

let make_l ?(value = Value.Null) ?(children = []) label =
  { label; value; children = Array.of_list children; id = -1 }

let make ?value ?children tag = make_l ?value ?children (Label.of_string tag)
let leaf tag value = make ~value tag

let add_child parent child =
  let n = Array.length parent.children in
  let grown = Array.make (n + 1) child in
  Array.blit parent.children 0 grown 0 n;
  parent.children <- grown

(* Explicit-stack traversal: synthetic documents can be deep enough (XMark
   parlist recursion) that naive recursion would be fragile at scale. *)
let iter f root =
  let stack = ref [ root ] in
  let rec loop () =
    match !stack with
    | [] -> ()
    | node :: rest ->
      stack := rest;
      f node;
      for i = Array.length node.children - 1 downto 0 do
        stack := node.children.(i) :: !stack
      done;
      loop ()
  in
  loop ()

let iter_with_depth f root =
  let stack = ref [ (0, root) ] in
  let rec loop () =
    match !stack with
    | [] -> ()
    | (depth, node) :: rest ->
      stack := rest;
      f ~depth node;
      for i = Array.length node.children - 1 downto 0 do
        stack := (depth + 1, node.children.(i)) :: !stack
      done;
      loop ()
  in
  loop ()

let fold f init root =
  let acc = ref init in
  iter (fun node -> acc := f !acc node) root;
  !acc

let size root = fold (fun n _ -> n + 1) 0 root

let height root =
  let h = ref 0 in
  iter_with_depth (fun ~depth _ -> if depth + 1 > !h then h := depth + 1) root;
  !h

let pp ppf node =
  Format.fprintf ppf "<%a id=%d kids=%d %a>" Label.pp node.label node.id
    (Array.length node.children) Value.pp node.value
