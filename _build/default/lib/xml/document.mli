(** XML documents: a rooted node tree with preorder identifiers and
    precomputed global statistics. *)

type t = {
  root : Node.t;
  nodes : Node.t array;  (** all nodes, indexed by [Node.id] (preorder) *)
  height : int;          (** longest root-to-leaf path, root alone = 1 *)
}

val create : Node.t -> t
(** Assigns preorder identifiers to every node of the tree rooted at the
    argument and snapshots the node array. The tree must not be mutated
    afterwards. *)

val n_elements : t -> int
(** Total number of element nodes. *)

val parent_table : t -> int array
(** [parent_table d] maps each node id to its parent's id (root maps to
    -1). Computed on demand in O(n). *)

val label_path : t -> Node.t -> Label.t list
(** Root-to-node list of labels, inclusive. O(depth) given a parent table
    built internally per call batch; intended for diagnostics. *)

val value_counts : t -> (Value.vtype * int) list
(** How many elements carry each value type (Null included). *)
