(** Serialization of documents back to XML text.

    Values render as character data: NUMERIC as decimal, STRING escaped
    verbatim, TEXT as its dictionary terms joined by spaces (the Boolean
    IR model does not retain word order or multiplicity). The serialized
    byte count is what Table 1 reports as "file size". *)

val to_buffer : Buffer.t -> Document.t -> unit
val to_string : Document.t -> string
val to_file : string -> Document.t -> unit

val serialized_size : Document.t -> int
(** Byte count of {!to_string} without materializing the string twice. *)

val escape : string -> string
(** XML-escapes [&], [<], [>] and double quotes. *)
