let stopwords =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun w -> Hashtbl.replace tbl w ())
    [ "a"; "an"; "and"; "are"; "as"; "at"; "be"; "by"; "for"; "from"; "has";
      "he"; "in"; "is"; "it"; "its"; "of"; "on"; "or"; "that"; "the"; "to";
      "was"; "were"; "will"; "with"; "this"; "but"; "they"; "have"; "had";
      "what"; "when"; "where"; "who"; "which"; "why"; "how" ];
  tbl

let is_stopword w = Hashtbl.mem stopwords w

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let lowercase_ascii_char c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c

let tokenize s =
  let n = String.length s in
  let buf = Buffer.create 16 in
  let seen = Hashtbl.create 16 in
  let terms = ref [] in
  let flush () =
    if Buffer.length buf >= 2 then begin
      let w = Buffer.contents buf in
      if not (is_stopword w) && not (Hashtbl.mem seen w) then begin
        Hashtbl.add seen w ();
        terms := Dictionary.of_string w :: !terms
      end
    end;
    Buffer.clear buf
  in
  for i = 0 to n - 1 do
    let c = s.[i] in
    if is_word_char c then Buffer.add_char buf (lowercase_ascii_char c) else flush ()
  done;
  flush ();
  !terms

let text_value s = Value.text_of_terms (tokenize s)
