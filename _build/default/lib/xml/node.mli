(** Element nodes of an XML document tree.

    A node carries an interned label, an optional typed value, and an
    ordered array of children. Node identifiers are assigned in preorder
    when a {!Document} is created, so that per-node tables elsewhere in
    the system can be plain arrays. *)

type t = {
  label : Label.t;
  value : Value.t;
  mutable children : t array;
  mutable id : int;  (** preorder index, assigned by {!Document.create} *)
}

val make : ?value:Value.t -> ?children:t list -> string -> t
(** [make tag ~value ~children] builds a node with label [tag]. *)

val make_l : ?value:Value.t -> ?children:t list -> Label.t -> t
(** Same with an already-interned label. *)

val leaf : string -> Value.t -> t
(** A value-bearing node without children. *)

val add_child : t -> t -> unit
(** Appends a child (O(n) per call; generators batch with [make]). *)

val iter : (t -> unit) -> t -> unit
(** Preorder traversal. *)

val iter_with_depth : (depth:int -> t -> unit) -> t -> unit
(** Preorder traversal carrying the depth (root at 0). *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Preorder fold. *)

val size : t -> int
(** Number of element nodes in the subtree. *)

val height : t -> int
(** Length of the longest root-to-leaf path (single node = 1). *)

val pp : Format.formatter -> t -> unit
(** Compact one-line rendering, for debugging. *)
