type t = int

let table : (string, int) Hashtbl.t = Hashtbl.create 256
let names : string array ref = ref (Array.make 256 "")
let next = ref 0

let of_string name =
  match Hashtbl.find_opt table name with
  | Some id -> id
  | None ->
    let id = !next in
    incr next;
    if id >= Array.length !names then begin
      let grown = Array.make (2 * Array.length !names) "" in
      Array.blit !names 0 grown 0 (Array.length !names);
      names := grown
    end;
    !names.(id) <- name;
    Hashtbl.add table name id;
    id

let to_string id = !names.(id)
let equal = Int.equal
let compare = Int.compare
let hash id = id
let count () = !next
let pp ppf id = Format.pp_print_string ppf (to_string id)
