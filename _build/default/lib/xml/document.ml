type t = {
  root : Node.t;
  nodes : Node.t array;
  height : int;
}

let create root =
  let n = Node.size root in
  let nodes = Array.make n root in
  let next = ref 0 in
  Node.iter
    (fun node ->
      node.Node.id <- !next;
      nodes.(!next) <- node;
      incr next)
    root;
  { root; nodes; height = Node.height root }

let n_elements d = Array.length d.nodes

let parent_table d =
  let parents = Array.make (Array.length d.nodes) (-1) in
  Array.iter
    (fun node -> Array.iter (fun c -> parents.(c.Node.id) <- node.Node.id) node.Node.children)
    d.nodes;
  parents

let label_path d node =
  let parents = parent_table d in
  let rec up id acc =
    if id < 0 then acc else up parents.(id) (d.nodes.(id).Node.label :: acc)
  in
  up node.Node.id []

let value_counts d =
  let counts = Hashtbl.create 4 in
  Array.iter
    (fun node ->
      let vt = Value.vtype node.Node.value in
      let cur = Option.value ~default:0 (Hashtbl.find_opt counts vt) in
      Hashtbl.replace counts vt (cur + 1))
    d.nodes;
  Hashtbl.fold (fun vt c acc -> (vt, c) :: acc) counts []
