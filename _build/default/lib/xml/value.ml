type vtype =
  | Tnull
  | Tnumeric
  | Tstring
  | Ttext

type t =
  | Null
  | Numeric of int
  | Str of string
  | Text of Dictionary.term array

let vtype = function
  | Null -> Tnull
  | Numeric _ -> Tnumeric
  | Str _ -> Tstring
  | Text _ -> Ttext

let text_of_terms terms =
  let arr = Array.of_list (List.sort_uniq Dictionary.compare terms) in
  Array.iter Dictionary.note_occurrence arr;
  Text arr

let text_contains v t =
  match v with
  | Null | Numeric _ | Str _ -> false
  | Text terms ->
    let rec search lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        let c = Dictionary.compare terms.(mid) t in
        if c = 0 then true
        else if c < 0 then search (mid + 1) hi
        else search lo mid
    in
    search 0 (Array.length terms)

let equal a b =
  match a, b with
  | Null, Null -> true
  | Numeric x, Numeric y -> Int.equal x y
  | Str x, Str y -> String.equal x y
  | Text x, Text y ->
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri (fun i t -> if not (Dictionary.equal t y.(i)) then ok := false) x;
        !ok)
  | (Null | Numeric _ | Str _ | Text _), _ -> false

let vtype_equal (a : vtype) (b : vtype) = a = b

let vtype_to_string = function
  | Tnull -> "null"
  | Tnumeric -> "numeric"
  | Tstring -> "string"
  | Ttext -> "text"

let pp_vtype ppf t = Format.pp_print_string ppf (vtype_to_string t)

let pp ppf = function
  | Null -> Format.pp_print_string ppf "<null>"
  | Numeric n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s
  | Text terms ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_seq
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Dictionary.pp)
      (Array.to_seq terms)
