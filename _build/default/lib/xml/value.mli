(** Typed element values.

    Following the paper's data model (Sec. 2), each element optionally
    carries a value of one of three types: NUMERIC (integers in a domain
    [0..M-1]), STRING (short strings queried by substring), or TEXT
    (free text modelled as a Boolean term vector over {!Dictionary}).
    Elements without values carry the special [Null] type. *)

type vtype =
  | Tnull
  | Tnumeric
  | Tstring
  | Ttext
(** The data type of a value; synopsis clusters must be type-respecting. *)

type t =
  | Null
  | Numeric of int
  | Str of string
  | Text of Dictionary.term array
      (** Sorted array of distinct term identifiers (a sparse Boolean
          vector in the set-theoretic IR model). *)

val vtype : t -> vtype
(** The type tag of a value. *)

val text_of_terms : Dictionary.term list -> t
(** Builds a [Text] value: sorts, deduplicates, and records document
    frequencies in the global {!Dictionary}. *)

val text_contains : t -> Dictionary.term -> bool
(** [text_contains v t] is true iff [v] is a [Text] whose vector has a 1
    for term [t]. Binary search; [false] on non-text values. *)

val equal : t -> t -> bool
val vtype_equal : vtype -> vtype -> bool
val vtype_to_string : vtype -> string
val pp_vtype : Format.formatter -> vtype -> unit
val pp : Format.formatter -> t -> unit
