(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. 6) plus the DESIGN.md ablations, and runs Bechamel
   micro-benchmarks of the core operations.

   Usage:  dune exec bench/main.exe [-- TARGET...]
   Targets: table1 table2 fig8a fig8b fig8c fig9 negative ablation-delta
            ablation-text ablation-numeric auto-split pipeline seal build
            serve fault daemon chaos update micro (default: all of them,
            in that order)

   Every run ends with a JSON metrics block (plan compiles, cache and
   reach-memo hit/miss counts, pool candidate evaluations, expansion
   depths, estimate latency) accumulated across the targets that ran.

   Environment:
     XC_SCALE    document scale factor (default 1.0 = paper scale)
     XC_QUERIES  workload size (default 400)
     XC_PASSES   repeated-workload passes for the pipeline/seal/serve
                 targets (default 5)
     XC_DOMAINS  worker count for the build target's parallel leg
                 (default 4) and the serve target's query sharding
                 (default 1; also the library-wide Par default).
                 Honored exactly — oversubscription warns loudly, and
                 both targets fail if the pool observably engaged a
                 different width than requested.
     XC_FAULTS   fault-injection spec for the fault target (see
                 Xc_util.Fault); when unset the target installs its own
                 all-kinds storm
     XC_UPDATES  auction events in the update target's mutation stream
                 (default 64, half opens / half closes)
     XC_CHAOS_SEED  offset added to every storm seed of the chaos
                 target, so a CI matrix replays distinct reproducible
                 storms over the same fault sites (default 0). *)

let scale =
  match Sys.getenv_opt "XC_SCALE" with
  | Some s -> (try float_of_string s with Failure _ -> 1.0)
  | None -> 1.0

let n_queries =
  match Sys.getenv_opt "XC_QUERIES" with
  | Some s -> (try int_of_string s with Failure _ -> 400)
  | None -> 400

let ppf = Format.std_formatter

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Format.fprintf ppf "[%s: %.1fs]@." name (Unix.gettimeofday () -. t0);
  r

let imdb = lazy (timed "setup imdb" (fun () -> Xc_exp.Runner.imdb ~scale ~n_queries ()))
let xmark = lazy (timed "setup xmark" (fun () -> Xc_exp.Runner.xmark ~scale ~n_queries ()))
let dblp = lazy (timed "setup dblp" (fun () -> Xc_exp.Runner.dblp ~scale ~n_queries ()))
let datasets () = [ Lazy.force imdb; Lazy.force xmark ]

let run_table1 () =
  Xc_exp.Report.table1 ppf (List.map Xc_exp.Runner.table1 (datasets ()))

let run_table2 () =
  Xc_exp.Report.table2 ppf (List.map Xc_exp.Runner.table2 (datasets ()))

let run_fig8 ds =
  let points = timed ("fig8 " ^ ds.Xc_exp.Runner.name) (fun () -> Xc_exp.Runner.fig8 ds) in
  Xc_exp.Report.fig8 ppf ~name:ds.Xc_exp.Runner.name points

let run_fig9 () =
  let rows =
    List.map
      (fun ds ->
        ( ds.Xc_exp.Runner.name,
          timed ("fig9 " ^ ds.Xc_exp.Runner.name) (fun () -> Xc_exp.Runner.fig9 ds) ))
      (datasets ())
  in
  Xc_exp.Report.fig9 ppf rows

let run_negative () =
  let rows =
    List.map
      (fun ds ->
        ( ds.Xc_exp.Runner.name,
          timed ("negative " ^ ds.Xc_exp.Runner.name) (fun () ->
              Xc_exp.Runner.negative_check ds) ))
      (datasets ())
  in
  Xc_exp.Report.negative ppf rows

let run_ablation_delta () =
  List.iter
    (fun ds ->
      let rows =
        timed ("ablation-delta " ^ ds.Xc_exp.Runner.name) (fun () ->
            Xc_exp.Runner.ablation_delta ds)
      in
      Xc_exp.Report.ablation_delta ppf ~name:ds.Xc_exp.Runner.name rows)
    (datasets ())

let run_ablation_numeric () =
  List.iter
    (fun ds ->
      let rows =
        timed ("ablation-numeric " ^ ds.Xc_exp.Runner.name) (fun () ->
            Xc_exp.Runner.ablation_numeric ds)
      in
      Xc_exp.Report.ablation_numeric ppf ~name:ds.Xc_exp.Runner.name rows)
    (datasets ())

let run_auto_split () =
  List.iter
    (fun ds ->
      let rows =
        timed ("auto-split " ^ ds.Xc_exp.Runner.name) (fun () ->
            Xc_exp.Runner.auto_split_demo ds)
      in
      Xc_exp.Report.auto_split ppf ~name:ds.Xc_exp.Runner.name rows)
    (datasets ())

let run_ablation_text () =
  let ds = Lazy.force imdb in
  let rows =
    timed ("ablation-text " ^ ds.Xc_exp.Runner.name) (fun () ->
        Xc_exp.Runner.ablation_text ds)
  in
  Xc_exp.Report.ablation_text ppf ~name:ds.Xc_exp.Runner.name rows

(* ---- compiled-pipeline speedup ----------------------------------------
   The repeated-workload estimation loop: every workload query estimated
   [passes] times against one synopsis, once through the direct
   embedding enumeration and once through the compiled pipeline (plan
   cache + reach memo). This is the serving pattern the pipeline
   optimizes; the two paths must agree bit for bit. *)

let run_pipeline () =
  let passes =
    match Sys.getenv_opt "XC_PASSES" with
    | Some s -> (try int_of_string s with Failure _ -> 5)
    | None -> 5
  in
  let ds = Lazy.force imdb in
  let syn = Xcluster.Build.compress (Xcluster.Build.budget ~bstr_kb:20 ~bval_kb:150 ()) ds.Xc_exp.Runner.reference in
  let queries = List.map (fun e -> e.Xc_twig.Workload.query) ds.Xc_exp.Runner.workload in
  Xcluster.Metrics.reset ();
  let t0 = Unix.gettimeofday () in
  let sum_uncached = ref 0.0 in
  for _ = 1 to passes do
    List.iter
      (fun q -> sum_uncached := !sum_uncached +. Xcluster.Query.estimate_uncached syn q)
      queries
  done;
  let t_uncached = Unix.gettimeofday () -. t0 in
  let cache = Xc_core.Plan.Cache.create syn in
  let t0 = Unix.gettimeofday () in
  let sum_planned = ref 0.0 in
  for _ = 1 to passes do
    List.iter
      (fun q -> sum_planned := !sum_planned +. Xc_core.Plan.Cache.estimate cache q)
      queries
  done;
  let t_planned = Unix.gettimeofday () -. t0 in
  let max_diff =
    List.fold_left
      (fun acc q ->
        Float.max acc
          (Float.abs (Xcluster.Query.estimate_uncached syn q -. Xc_core.Plan.Cache.estimate cache q)))
      0.0 queries
  in
  Format.fprintf ppf
    "@.Compiled estimation pipeline (%s: %d queries x %d passes)@." ds.Xc_exp.Runner.name
    (List.length queries) passes;
  Format.fprintf ppf "  uncached: %7.3f s  (%.1f us/estimate)@." t_uncached
    (1e6 *. t_uncached /. float_of_int (passes * List.length queries));
  Format.fprintf ppf "  planned:  %7.3f s  (%.1f us/estimate)@." t_planned
    (1e6 *. t_planned /. float_of_int (passes * List.length queries));
  Format.fprintf ppf "  speedup:  %.1fx   max |planned - uncached| = %g@."
    (t_uncached /. Float.max t_planned 1e-9)
    max_diff;
  Format.fprintf ppf "  metrics: %s@." (Xcluster.Metrics.json ())

(* ---- frozen-vs-builder estimation (the Builder/Sealed split) -----------
   The same XMark workload estimated through the hashtable-walking
   builder estimator, the CSR sealed estimator, and the compiled plan
   cache, at the paper's default 20KB/150KB budgets. The three must
   agree bit for bit; the speedup columns are what the freeze step buys
   on repeated estimation. Each run appends a JSON line to
   BENCH_seal.json so the CSR speedup is tracked across PRs. *)

let run_seal () =
  let passes =
    match Sys.getenv_opt "XC_PASSES" with
    | Some s -> (try int_of_string s with Failure _ -> 5)
    | None -> 5
  in
  let ds = Lazy.force xmark in
  let builder =
    timed "seal: xclusterbuild" (fun () ->
        Xc_core.Build.run_builder (Xc_core.Build.budget ()) ds.Xc_exp.Runner.reference)
  in
  let syn = Xc_core.Synopsis.freeze builder in
  let queries = List.map (fun e -> e.Xc_twig.Workload.query) ds.Xc_exp.Runner.workload in
  let time estimate =
    let t0 = Unix.gettimeofday () in
    let sum = ref 0.0 in
    for _ = 1 to passes do
      List.iter (fun q -> sum := !sum +. estimate q) queries
    done;
    (Unix.gettimeofday () -. t0, !sum)
  in
  let t_builder, sum_builder = time (Xc_core.Estimate.selectivity_builder builder) in
  let t_sealed, sum_sealed = time (Xc_core.Estimate.selectivity syn) in
  let cache = Xc_core.Plan.Cache.create syn in
  let t_planned, sum_planned = time (Xc_core.Plan.Cache.estimate cache) in
  let max_diff =
    List.fold_left
      (fun acc q ->
        let b = Xc_core.Estimate.selectivity_builder builder q in
        let s = Xc_core.Estimate.selectivity syn q in
        let p = Xc_core.Plan.Cache.estimate cache q in
        Float.max acc (Float.max (Float.abs (b -. s)) (Float.abs (b -. p))))
      0.0 queries
  in
  let per t = 1e6 *. t /. float_of_int (passes * List.length queries) in
  let speedup_sealed = t_builder /. Float.max t_sealed 1e-9 in
  let speedup_planned = t_builder /. Float.max t_planned 1e-9 in
  Format.fprintf ppf "@.Frozen-vs-builder estimation (%s: %d queries x %d passes)@."
    ds.Xc_exp.Runner.name (List.length queries) passes;
  Format.fprintf ppf "  builder:  %7.3f s  (%.1f us/estimate)@." t_builder (per t_builder);
  Format.fprintf ppf "  sealed:   %7.3f s  (%.1f us/estimate)  %.1fx@." t_sealed
    (per t_sealed) speedup_sealed;
  Format.fprintf ppf "  planned:  %7.3f s  (%.1f us/estimate)  %.1fx@." t_planned
    (per t_planned) speedup_planned;
  Format.fprintf ppf "  max |diff| across the three paths = %g  (sums %g %g %g)@."
    max_diff sum_builder sum_sealed sum_planned;
  let json =
    Printf.sprintf
      "{\"ts\":%.0f,\"dataset\":%S,\"queries\":%d,\"passes\":%d,\"t_builder_s\":%.4f,\"t_sealed_s\":%.4f,\"t_planned_s\":%.4f,\"speedup_sealed\":%.2f,\"speedup_planned\":%.2f,\"max_diff\":%g}"
      (Unix.gettimeofday ()) ds.Xc_exp.Runner.name (List.length queries) passes
      t_builder t_sealed t_planned speedup_sealed speedup_planned max_diff
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_seal.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "  appended to BENCH_seal.json@."

(* ---- construction speedup ---------------------------------------------
   XCLUSTERBUILD timed three ways at the paper's default budgets:
   sequential (pre-index baseline: full node-table scans for candidate
   groups, one scoring worker), incremental (Builder group index, one
   worker), and parallel (group index + XC_DOMAINS scoring workers).
   The three sealed outputs must be identical — the candidate total
   order makes the greedy sequence independent of evaluation strategy —
   so the speedup columns are pure construction-cost wins. Each run
   appends a JSON line to BENCH_build.json. *)

let sealed_mismatches a b =
  let module S = Xc_core.Synopsis.Sealed in
  if S.n_nodes a <> S.n_nodes b || S.n_edges a <> S.n_edges b then
    max (abs (S.n_nodes a - S.n_nodes b)) (abs (S.n_edges a - S.n_edges b))
  else begin
    let mism = ref 0 in
    if S.root_sid a <> S.root_sid b then incr mism;
    if S.value_bytes a <> S.value_bytes b then incr mism;
    for i = 0 to S.n_nodes a - 1 do
      if S.sid_of_index a i <> S.sid_of_index b i then incr mism;
      if (S.label a i :> int) <> (S.label b i :> int) then incr mism;
      if S.count a i <> S.count b i then incr mism
    done;
    let ia = S.child_idx a and ib = S.child_idx b in
    let wa = S.child_avg a and wb = S.child_avg b in
    for e = 0 to S.n_edges a - 1 do
      if ia.(e) <> ib.(e) then incr mism;
      if wa.(e) <> wb.(e) then incr mism
    done;
    !mism
  end

let run_build () =
  let par_domains =
    match Sys.getenv_opt "XC_DOMAINS" with
    | Some s -> (try max 1 (int_of_string s) with Failure _ -> 4)
    | None -> 4
  in
  (* An explicitly requested worker count is honored exactly — a
     silent min() against the core count once turned "domains":4 into a
     single-worker run that still reported itself as parallel. We warn
     loudly about oversubscription instead, and after the parallel leg
     we verify against what the pool *observably* did. *)
  let cores = Domain.recommended_domain_count () in
  if par_domains > cores then
    Format.fprintf ppf
      "WARNING: XC_DOMAINS=%d oversubscribes this host (%d cores); expect \
       scheduling overhead, not speedup@."
      par_domains cores;
  let reps =
    match Sys.getenv_opt "XC_BUILD_REPS" with
    | Some s -> (try max 1 (int_of_string s) with Failure _ -> 3)
    | None -> 3
  in
  let bench_ds ds =
    let reference = ds.Xc_exp.Runner.reference in
    (* paper budgets (20KB/150KB) scaled with the document so the merge
       loop runs — and the pool is exercised — at every XC_SCALE *)
    let bstr_kb = max 1 (int_of_float (Float.round (20.0 *. scale))) in
    let bval_kb = max 4 (int_of_float (Float.round (150.0 *. scale))) in
    let timer_total name =
      match
        List.assoc_opt name Xc_util.Metrics.((snapshot global).timers)
      with
      | Some t -> t.Xc_util.Metrics.t_total
      | None -> 0.0
    in
    (* min over [reps] runs — construction is deterministic, so the
       spread is scheduler noise and the minimum is the honest figure *)
    let construct pool =
      let best = ref None in
      let evals_once = ref 0 in
      let sealed_once = ref None in
      for rep = 1 to reps do
        let evals0 = Xc_util.Metrics.(counter_value global "pool.cand_evals") in
        let p1_0 = timer_total "build.phase1" and p2_0 = timer_total "build.phase2" in
        let t0 = Unix.gettimeofday () in
        let sealed =
          Xc_core.Build.run (Xc_core.Build.budget ~pool ~bstr_kb ~bval_kb ()) reference
        in
        let dt = Unix.gettimeofday () -. t0 in
        if rep = 1 then begin
          evals_once :=
            Xc_util.Metrics.(counter_value global "pool.cand_evals") - evals0;
          sealed_once := Some sealed
        end;
        let p1 = timer_total "build.phase1" -. p1_0 in
        let p2 = timer_total "build.phase2" -. p2_0 in
        match !best with
        | Some (dt', _, _) when dt' <= dt -> ()
        | _ -> best := Some (dt, p1, p2)
      done;
      let dt, p1, p2 = Option.get !best in
      (dt, !evals_once, Option.get !sealed_once, p1, p2)
    in
    let base = Xc_core.Pool.default_config in
    let t_seq, evals_seq, s_seq, p1_seq, p2_seq =
      construct { base with full_scan = true; domains = 1 }
    in
    let t_inc, evals_inc, s_inc, p1_inc, p2_inc =
      construct { base with domains = 1 }
    in
    Xc_util.Par.reset_usage ();
    let t_par, _, s_par, p1_par, p2_par =
      construct { base with domains = par_domains }
    in
    (* what the pool observably did during the parallel leg, not what
       the config asked for *)
    let domains_used = Xc_util.Par.max_used () in
    let widest_batch = Xc_util.Par.max_batch () in
    let expected_used =
      if par_domains > 1 && widest_batch >= Xc_util.Par.seq_cutoff then
        min par_domains widest_batch
      else 1
    in
    let max_diff =
      max (sealed_mismatches s_seq s_inc) (sealed_mismatches s_seq s_par)
    in
    let speedup_inc = t_seq /. Float.max t_inc 1e-9 in
    let speedup_par = t_seq /. Float.max t_par 1e-9 in
    Format.fprintf ppf "@.Synopsis construction (%s, %d reference nodes)@."
      ds.Xc_exp.Runner.name
      (Xc_core.Synopsis.Builder.n_nodes reference);
    Format.fprintf ppf
      "  sequential (full scan): %7.3f s  [p1 %.3f p2 %.3f]  (%d cand evals)@." t_seq
      p1_seq p2_seq evals_seq;
    Format.fprintf ppf
      "  incremental (group index): %7.3f s  [p1 %.3f p2 %.3f]  (%d cand evals)  %.1fx@."
      t_inc p1_inc p2_inc evals_inc speedup_inc;
    Format.fprintf ppf
      "  parallel (%d domains requested, %d observed, widest batch %d):  %7.3f s  [p1 %.3f p2 %.3f]  %.1fx@."
      par_domains domains_used widest_batch t_par p1_par p2_par speedup_par;
    Format.fprintf ppf "  max node/edge diff across the three = %d@." max_diff;
    let json =
      Printf.sprintf
        "{\"ts\":%.0f,\"dataset\":%S,\"scale\":%.3f,\"domains\":%d,\"domains_used\":%d,\"cores\":%d,\"t_seq_s\":%.4f,\"t_inc_s\":%.4f,\"t_par_s\":%.4f,\"speedup_inc\":%.2f,\"speedup_par\":%.2f,\"evals_seq\":%d,\"evals_inc\":%d,\"max_diff\":%d}"
        (Unix.gettimeofday ()) ds.Xc_exp.Runner.name scale par_domains domains_used
        cores t_seq t_inc t_par speedup_inc speedup_par evals_seq evals_inc max_diff
    in
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_build.json" in
    output_string oc json;
    output_char oc '\n';
    close_out oc;
    Format.fprintf ppf "  appended to BENCH_build.json@.";
    if max_diff <> 0 then begin
      Format.fprintf ppf "  ERROR: construction paths diverged (diff %d)@." max_diff;
      exit 1
    end;
    if domains_used <> expected_used then begin
      Format.fprintf ppf
        "  ERROR: requested %d scoring workers but the pool engaged %d (widest \
         batch %d, seq cutoff %d) — parallel leg did not run at the requested \
         width@."
        par_domains domains_used widest_batch Xc_util.Par.seq_cutoff;
      exit 1
    end
  in
  List.iter bench_ds [ Lazy.force xmark; Lazy.force imdb ]

(* ---- batched serving --------------------------------------------------
   The serving benchmark behind BENCH_serve.json: the XMark workload
   estimated [passes] times through the compiled plan cache (the PR1
   planned path) and through Plan.Batch (interned transition matrices +
   XC_DOMAINS-way sharding). Matrix/query compilation is reported
   separately as prepare time; the timed serving loop is run_prepared
   only — the steady-state serving pattern both paths amortize toward.
   Correctness gates (any failure exits non-zero): batch estimates must
   be bit-identical to the planned path, and bit-identical across
   worker counts 1/2/4. *)

let run_serve () =
  let passes =
    match Sys.getenv_opt "XC_PASSES" with
    | Some s -> (try int_of_string s with Failure _ -> 5)
    | None -> 5
  in
  let requested = Xc_util.Par.env_domains () in
  let ds = Lazy.force xmark in
  let syn =
    timed "serve: xclusterbuild" (fun () ->
        Xcluster.Build.compress
          (Xcluster.Build.budget ~bstr_kb:20 ~bval_kb:150 ())
          ds.Xc_exp.Runner.reference)
  in
  let queries = Xc_exp.Runner.workload_queries ds in
  let nq = Array.length queries in
  let cache = Xc_core.Plan.Cache.create syn in
  let planned = Array.map (Xc_core.Plan.Cache.estimate cache) queries in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to passes do
    Array.iter (fun q -> ignore (Xc_core.Plan.Cache.estimate cache q)) queries
  done;
  let t_planned = Unix.gettimeofday () -. t0 in
  let engine = Xc_core.Plan.Batch.create syn in
  let t0 = Unix.gettimeofday () in
  let prepared = Xc_core.Plan.Batch.prepare engine queries in
  let prepare_s = Unix.gettimeofday () -. t0 in
  (* warm-up: one pass down each serving path before the metrics reset,
     so first-touch work (cohort-plan build, arena allocation, page
     faults on the matrix buffers) is paid — and reported — here
     instead of surfacing as a fake p99 outlier in the steady-state
     histogram (24.6 us at passes=5 vs 3 us at passes=50, pre-fix) *)
  let t0 = Unix.gettimeofday () in
  ignore (Xc_core.Plan.Batch.run_prepared ~cohort:false engine prepared);
  ignore (Xc_core.Plan.Batch.run_prepared engine prepared);
  let warmup_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  Xcluster.Metrics.reset ();
  Xc_util.Par.reset_usage ();
  (* query-major reference loop: the per-query latency histogram and
     the qps baseline the cohort path is judged against *)
  let batch = ref [||] in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to passes do
    batch := Xc_core.Plan.Batch.run_prepared ~cohort:false engine prepared
  done;
  let t_batch = Unix.gettimeofday () -. t0 in
  let batch = !batch in
  (* matrix-major cohort loop: the default serving path *)
  let cohort_res = ref [||] in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to passes do
    cohort_res := Xc_core.Plan.Batch.run_prepared engine prepared
  done;
  let t_cohort = Unix.gettimeofday () -. t0 in
  let cohort_res = !cohort_res in
  (* the opt-in blocked kernel: a different summation order on matrices
     past the row-length gate, so its gate is a bounded relative |Δ|
     against the bit-identical path, not zero *)
  let t0 = Unix.gettimeofday () in
  let blocked = ref [||] in
  for _ = 1 to passes do
    blocked := Xc_core.Plan.Batch.run_prepared ~blocked:true ~cohort:false engine prepared
  done;
  let t_blocked = Unix.gettimeofday () -. t0 in
  let domains_used = Xc_util.Par.max_used () in
  (* Latency quantiles are read here, before the cross-domain
     determinism runs: spawned worker domains — even parked ones —
     turn every minor collection into a multi-domain stop-the-world
     rendezvous, and on a small host those GC stalls used to land in
     the histogram as a fake 20x p99 outlier. (That same effect is why
     every timed loop above runs before the first ~domains:2 call.) *)
  let p50, p95, p99 =
    match
      Xc_util.Metrics.quantiles Xc_util.Metrics.global "estimate.batch_us"
        [ 0.5; 0.95; 0.99 ]
    with
    | Some [ (_, a); (_, b); (_, c) ] -> (a, b, c)
    | _ -> (0.0, 0.0, 0.0)
  in
  let n_cohorts, _, n_distinct = Xc_core.Plan.Batch.cohort_stats prepared in
  let cohort_sharing = float_of_int n_distinct /. float_of_int (max 1 n_cohorts) in
  let max_diff_vs_planned r =
    let d = ref 0.0 in
    Array.iteri (fun i v -> d := Float.max !d (Float.abs (v -. planned.(i)))) r;
    !d
  in
  let max_diff = max_diff_vs_planned batch in
  let max_diff_cohort = max_diff_vs_planned cohort_res in
  (* bitwise determinism across worker counts, on both sweep orders:
     the sharding must never change a float *)
  let deterministic =
    List.for_all
      (fun co ->
        List.for_all
          (fun d ->
            let r =
              Xc_core.Plan.Batch.run_prepared ~domains:d ~cohort:co engine prepared
            in
            let ok = ref true in
            Array.iteri
              (fun i v ->
                if Int64.bits_of_float v <> Int64.bits_of_float batch.(i) then
                  ok := false)
              r;
            !ok)
          [ 1; 2; 4 ])
      [ false; true ]
  in
  let max_diff_blocked =
    let d = ref 0.0 in
    Array.iteri
      (fun i v ->
        d := Float.max !d (Float.abs (v -. batch.(i)) /. Float.max 1.0 (Float.abs batch.(i))))
      !blocked;
    !d
  in
  (* cold start: an eager v2 decode vs a lazy mapped v3 load of the
     same synopsis, min over repeats (the artifact is page-cached, so
     this isolates decode work, which is what the lazy path removes) *)
  let v3_path = Filename.temp_file "xc_bench_serve" ".syn" in
  let v2_path = v3_path ^ ".v2" in
  (match Xc_util.Safe_io.write_atomic v2_path (Xc_core.Codec.to_string_v2 syn) with
  | Ok () -> ()
  | Error e -> failwith (Xc_util.Safe_io.error_to_string e));
  (match Xc_core.Codec.save v3_path syn with
  | Ok () -> ()
  | Error e -> failwith (Xc_core.Codec.error_to_string e));
  let time_load path =
    let best = ref infinity in
    for _ = 1 to 20 do
      let t0 = Unix.gettimeofday () in
      (match Xc_core.Codec.load path with
      | Ok s -> ignore (Xcluster.Query.n_nodes s)
      | Error e -> failwith (Xc_core.Codec.error_to_string e));
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    1000.0 *. !best
  in
  let startup_ms_v2 = time_load v2_path in
  let startup_ms_v3 = time_load v3_path in
  let startup_speedup = startup_ms_v2 /. Float.max startup_ms_v3 1e-9 in
  (* first answer off the cold lazy map: deferred verification runs
     here, and the answer must still be bit-identical *)
  let lazy_syn =
    match Xc_core.Codec.load v3_path with
    | Ok s -> s
    | Error e -> failwith (Xc_core.Codec.error_to_string e)
  in
  let lazy_before =
    Xc_util.Metrics.counter_value Xc_util.Metrics.global "codec.lazy_verify"
  in
  let t0 = Unix.gettimeofday () in
  let first_answer = Xc_core.Estimate.selectivity lazy_syn queries.(0) in
  let first_answer_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  let lazy_sections_verified =
    Xc_util.Metrics.counter_value Xc_util.Metrics.global "codec.lazy_verify"
    - lazy_before
  in
  let first_answer_identical =
    Int64.bits_of_float first_answer = Int64.bits_of_float planned.(0)
  in
  Sys.remove v2_path;
  Sys.remove v3_path;
  let per t = 1e6 *. t /. float_of_int (passes * nq) in
  let speedup = t_planned /. Float.max t_batch 1e-9 in
  let qps = float_of_int (passes * nq) /. Float.max t_batch 1e-9 in
  let qps_cohort = float_of_int (passes * nq) /. Float.max t_cohort 1e-9 in
  let qps_blocked = float_of_int (passes * nq) /. Float.max t_blocked 1e-9 in
  let cohort_ge_base = qps_cohort >= qps in
  Format.fprintf ppf "@.Batched serving (%s: %d queries x %d passes, %d domains)@."
    ds.Xc_exp.Runner.name nq passes requested;
  Format.fprintf ppf "  planned:  %7.3f s  (%.1f us/estimate)@." t_planned
    (per t_planned);
  Format.fprintf ppf
    "  batch:    %7.3f s  (%.1f us/estimate)  %.1fx   [%d matrices, prepare %.3f s]@."
    t_batch (per t_batch) speedup
    (Xc_core.Plan.Batch.n_matrices engine)
    prepare_s;
  Format.fprintf ppf "  throughput: %.0f estimates/s   latency p50 %.1f us  p95 %.1f us  p99 %.1f us@."
    qps p50 p95 p99;
  Format.fprintf ppf
    "  cohort:   %7.3f s  (%.1f us/estimate)  %.0f estimates/s  (%.2fx base)   [%d cohorts, %.1f queries/cohort, warm-up %.1f ms]@."
    t_cohort (per t_cohort) qps_cohort
    (qps_cohort /. Float.max qps 1e-9)
    n_cohorts cohort_sharing warmup_ms;
  Format.fprintf ppf
    "  max |batch - planned| = %g   max |cohort - planned| = %g   deterministic across 1/2/4 domains: %b@."
    max_diff max_diff_cohort deterministic;
  Format.fprintf ppf
    "  blocked kernel: %7.3f s (%.0f estimates/s)   max rel |Δ| vs bit-identical path = %g@."
    t_blocked qps_blocked max_diff_blocked;
  Format.fprintf ppf
    "  cold start: v2 eager %.3f ms   v3 lazy %.3f ms   (%.0fx)@."
    startup_ms_v2 startup_ms_v3 startup_speedup;
  Format.fprintf ppf
    "  first answer off the map: %.3f ms, %d sections lazily verified, bit-identical: %b@."
    first_answer_ms lazy_sections_verified first_answer_identical;
  let json =
    Printf.sprintf
      "{\"ts\":%.0f,\"dataset\":%S,\"scale\":%.3f,\"queries\":%d,\"passes\":%d,\"domains\":%d,\"domains_used\":%d,\"t_planned_s\":%.4f,\"t_batch_s\":%.4f,\"speedup_batch\":%.2f,\"qps\":%.0f,\"qps_bigarray\":%.0f,\"qps_cohort\":%.0f,\"qps_blocked\":%.0f,\"t_cohort_s\":%.4f,\"cohorts\":%d,\"cohort_sharing\":%.2f,\"cohort_ge_base\":%b,\"warmup_ms\":%.2f,\"p50_us\":%.2f,\"p95_us\":%.2f,\"p99_us\":%.2f,\"prepare_s\":%.4f,\"n_matrices\":%d,\"max_diff\":%g,\"max_diff_cohort\":%g,\"max_diff_blocked\":%g,\"deterministic\":%b,\"startup_ms_v2\":%.4f,\"startup_ms_v3\":%.4f,\"startup_speedup\":%.1f,\"first_answer_ms\":%.4f,\"lazy_sections_verified\":%d}"
      (Unix.gettimeofday ()) ds.Xc_exp.Runner.name scale nq passes requested
      domains_used t_planned t_batch speedup qps qps qps_cohort qps_blocked
      t_cohort n_cohorts cohort_sharing cohort_ge_base warmup_ms p50 p95 p99
      prepare_s
      (Xc_core.Plan.Batch.n_matrices engine)
      max_diff max_diff_cohort max_diff_blocked deterministic startup_ms_v2
      startup_ms_v3 startup_speedup first_answer_ms lazy_sections_verified
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_serve.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "  appended to BENCH_serve.json@.";
  if max_diff <> 0.0 then begin
    Format.fprintf ppf
      "  ERROR: batch estimates diverged from the planned path (max diff %g)@."
      max_diff;
    exit 1
  end;
  if max_diff_cohort <> 0.0 then begin
    Format.fprintf ppf
      "  ERROR: cohort estimates diverged from the planned path (max diff %g)@."
      max_diff_cohort;
    exit 1
  end;
  if not deterministic then begin
    Format.fprintf ppf
      "  ERROR: batch estimates depend on the worker count@.";
    exit 1
  end;
  if max_diff_blocked > 1e-9 then begin
    Format.fprintf ppf
      "  ERROR: blocked kernel diverged beyond float-reassociation noise (max rel \
       |Δ| %g)@."
      max_diff_blocked;
    exit 1
  end;
  if not first_answer_identical then begin
    Format.fprintf ppf "  ERROR: lazily mapped synopsis answered differently@.";
    exit 1
  end;
  if startup_speedup < 10.0 then begin
    Format.fprintf ppf
      "  ERROR: v3 lazy cold start is only %.1fx faster than a v2 eager decode \
       (gate: 10x)@."
      startup_speedup;
    exit 1
  end;
  let qps_baseline = 2.3e6 in
  if qps < 2.0 *. qps_baseline then
    Format.fprintf ppf
      "  WARNING: qps %.2fM below the 2x-over-%.1fM target — best effort on this \
       host; see EXPERIMENTS.md@."
      (qps /. 1e6) (qps_baseline /. 1e6);
  if passes >= 50 && qps_cohort < 1.5 *. qps then
    Format.fprintf ppf
      "  WARNING: cohort qps %.2fM below the 1.5x-over-query-major target \
       (%.2fM) at steady state@."
      (qps_cohort /. 1e6) (1.5 *. qps /. 1e6)

(* ---- fault-injection smoke ---------------------------------------------
   The robustness gate behind BENCH_fault.json: a bounded fuzz over the
   codec (every mutated input must decode to Ok or a typed Error) plus a
   save/load storm through the Fault injection sites. Honors an
   XC_FAULTS environment configuration when one is set (the CI matrix
   sets several); otherwise installs an all-kinds storm. Any uncaught
   exception, or any corruption of the save target, exits non-zero. *)

let run_fault () =
  let module Fault = Xc_util.Fault in
  let module Codec = Xc_core.Codec in
  let fuzz_per_dataset = 500 in
  let storm_cycles = 200 in
  let syn =
    timed "fault: setup" (fun () ->
        let doc = Xc_data.Imdb.generate ~seed:91 ~n_movies:120 () in
        let reference = Xc_core.Reference.build ~min_extent:8 doc in
        Xc_core.Build.run (Xc_core.Build.params ~bstr_kb:6 ~bval_kb:40 ()) reference)
  in
  let good = Codec.to_string syn in
  let rng = Xc_util.Rng.create 91 in
  let fuzz_errors = ref 0 in
  let violations = ref 0 in
  timed "fault: fuzz" (fun () ->
      for _ = 1 to fuzz_per_dataset do
        let n = String.length good in
        let corrupt =
          match Xc_util.Rng.int rng 3 with
          | 0 -> String.sub good 0 (Xc_util.Rng.int rng (n + 1))
          | 1 ->
            let b = Bytes.of_string good in
            let i = Xc_util.Rng.int rng n in
            Bytes.set b i
              (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Xc_util.Rng.int rng 8)));
            Bytes.unsafe_to_string b
          | _ ->
            let b = Bytes.of_string good in
            let len = 1 + Xc_util.Rng.int rng (min 32 n) in
            let src = Xc_util.Rng.int rng (n - len + 1) in
            let dst = Xc_util.Rng.int rng (n - len + 1) in
            Bytes.blit_string good src b dst len;
            Bytes.unsafe_to_string b
        in
        match Codec.of_string corrupt with
        | Ok _ -> ()
        | Error _ -> incr fuzz_errors
        | exception exn ->
          incr violations;
          Format.fprintf ppf "  VIOLATION: decode raised %s@." (Printexc.to_string exn)
      done);
  (* the save/load storm: faults from XC_FAULTS when set, else all kinds *)
  let from_env = Sys.getenv_opt "XC_FAULTS" <> None in
  if not from_env then
    Fault.configure
      (Some { Fault.seed = 91; prob = 0.3; kinds = [ Fault.Truncate; Fault.Bit_flip; Fault.Short_write; Fault.Enospc; Fault.Eio ]; sites = [] });
  let cfg = Fault.current () in
  let dir = Filename.temp_file "xc_bench_fault" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "synopsis.syn" in
  (match Fault.configure None; Codec.save path syn with
  | Ok () -> ()
  | Error e ->
    Format.fprintf ppf "  ERROR: clean save failed: %s@." (Codec.error_to_string e);
    incr violations);
  Fault.configure cfg;
  let saves_ok = ref 0 and saves_err = ref 0 in
  let loads_ok = ref 0 and loads_err = ref 0 in
  let lazy_failures = ref 0 in
  let probe = Xc_twig.Twig_parse.parse "//movie/title" in
  timed "fault: save/load storm" (fun () ->
      for _ = 1 to storm_cycles do
        (match Codec.save path syn with
        | Ok () -> incr saves_ok
        | Error _ -> incr saves_err
        | exception exn ->
          incr violations;
          Format.fprintf ppf "  VIOLATION: save raised %s@." (Printexc.to_string exn));
        match Codec.load path with
        | Ok loaded -> (
          incr loads_ok;
          (* drive the deferred verification on the lazily mapped
             path: an estimate either answers or raises the typed
             Lazy_failure at the damaged section — nothing else *)
          match Xc_core.Estimate.selectivity loaded probe with
          | (_ : float) -> ()
          | exception Codec.Lazy_failure _ -> incr lazy_failures
          | exception exn ->
            incr violations;
            Format.fprintf ppf "  VIOLATION: estimate raised %s@."
              (Printexc.to_string exn))
        | Error _ -> incr loads_err
        | exception exn ->
          incr violations;
          Format.fprintf ppf "  VIOLATION: load raised %s@." (Printexc.to_string exn)
      done);
  (* with injection off, the target must still hold a pristine encoding:
     failed saves never touch it *)
  Fault.configure None;
  (match Codec.load path with
  | Ok decoded ->
    if not (String.equal (Codec.to_string decoded) good) then begin
      Format.fprintf ppf "  ERROR: surviving file decodes to a different synopsis@.";
      incr violations
    end
  | Error e ->
    Format.fprintf ppf "  ERROR: surviving file is corrupt: %s@."
      (Codec.error_to_string e);
    incr violations);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  let injected = Fault.injections () in
  Format.fprintf ppf
    "@.Fault smoke (%s)@.  fuzz: %d/%d mutations detected, %d violations@.  storm: saves %d ok / %d failed, loads %d ok / %d failed, %d deferred lazy failures, %d faults injected@."
    (if from_env then "XC_FAULTS from environment" else "built-in storm")
    !fuzz_errors fuzz_per_dataset !violations !saves_ok !saves_err !loads_ok
    !loads_err !lazy_failures injected;
  let json =
    Printf.sprintf
      "{\"ts\":%.0f,\"fuzz\":%d,\"fuzz_detected\":%d,\"storm_cycles\":%d,\"saves_ok\":%d,\"saves_err\":%d,\"loads_ok\":%d,\"loads_err\":%d,\"lazy_failures\":%d,\"injected\":%d,\"violations\":%d,\"env_faults\":%b}"
      (Unix.gettimeofday ()) fuzz_per_dataset !fuzz_errors storm_cycles !saves_ok
      !saves_err !loads_ok !loads_err !lazy_failures injected !violations from_env
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_fault.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "  appended to BENCH_fault.json@.";
  if !violations > 0 then begin
    Format.fprintf ppf "  ERROR: %d fault-contract violations@." !violations;
    exit 1
  end

(* ---- estimation daemon -------------------------------------------------
   The serving-daemon benchmark behind BENCH_daemon.json: a forked
   daemon process answering Estimate_batch frames over a Unix socket,
   driven by 1 and 4 concurrent clients (domains doing only socket
   I/O). Reports end-to-end throughput and client-observed request
   latency percentiles per client count. Correctness gates (any failure
   exits non-zero): every batch answer bit-identical to
   estimate_uncached on the artifact the daemon serves (max_diff 0);
   the daemon survives a fault storm on its socket-read site without
   exiting; shutdown is acknowledged and the process exits 0. *)

let run_daemon () =
  let module Serve = Xcluster.Serve in
  let module Fault = Xc_util.Fault in
  let passes =
    match Sys.getenv_opt "XC_PASSES" with
    | Some s -> (try int_of_string s with Failure _ -> 3)
    | None -> 3
  in
  let client_counts = [ 1; 4 ] in
  let dir = Filename.temp_file "xc_daemon" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let syn_path = Filename.concat dir "bench.syn" in
  let endpoint = Serve.Protocol.Unix_sock (Filename.concat dir "bench.sock") in
  let storm_endpoint = Serve.Protocol.Unix_sock (Filename.concat dir "storm.sock") in
  let ds = Lazy.force xmark in
  let syn =
    timed "daemon: build" (fun () ->
        Xcluster.Build.compress
          (Xcluster.Build.budget ~bstr_kb:20 ~bval_kb:150 ())
          ds.Xc_exp.Runner.reference)
  in
  (match Xcluster.Store.save syn_path syn with
  | Ok () -> ()
  | Error e ->
    Format.fprintf ppf "  ERROR: save: %s@." (Xc_core.Codec.error_to_string e);
    exit 1);
  (* the daemon parses query source text: render the workload back to
     source (Twig_query.pp minus its leading "."), and compute the
     reference estimates by the exact path the daemon takes — parse the
     source, estimate uncached on the loaded artifact *)
  let loaded =
    match Xcluster.Store.load syn_path with
    | Ok s -> s
    | Error e ->
      Format.fprintf ppf "  ERROR: load: %s@." (Xc_core.Codec.error_to_string e);
      exit 1
  in
  let sources =
    Array.map
      (fun q ->
        let s = Format.asprintf "%a" Xc_twig.Twig_query.pp q in
        if String.length s > 0 && s.[0] = '.' then
          String.sub s 1 (String.length s - 1)
        else s)
      (Xc_exp.Runner.workload_queries ds)
  in
  let nq = Array.length sources in
  let reference =
    Array.map
      (fun src -> Xcluster.Query.estimate_uncached loaded (Xcluster.Query.parse src))
      sources
  in
  (* children inherit the parent's fault state at fork time: hold it at
     None for the measured phase (even under an ambient XC_FAULTS), arm
     the storm only for the storm daemon *)
  let ambient = Fault.current () in
  Fault.configure None;
  let fork_daemon endpoint =
    (* flush before forking so the child cannot duplicate buffered
       output. Both daemons are forked here, before the client domains
       spawn: the OCaml 5 runtime refuses Unix.fork once any other
       domain has been created. *)
    Format.pp_print_flush ppf ();
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      (try
         let registry = Serve.Registry.create ~max_engines:4 () in
         Serve.Registry.add_source registry ~name:"bench" ~path:syn_path;
         let config =
           { Serve.Daemon.default_config with
             Serve.Daemon.endpoint;
             max_engines = 4;
             options = Serve.default_options }
         in
         Serve.Daemon.run ~config registry
       with _ -> Unix._exit 1);
      Unix._exit 0
    | pid -> pid
  in
  let wait_ready endpoint =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec loop () =
      match Serve.Client.connect endpoint with
      | Ok c -> Serve.Client.close c
      | Error _ when Unix.gettimeofday () < deadline ->
        ignore (Unix.select [] [] [] 0.05);
        loop ()
      | Error e ->
        Format.fprintf ppf "  ERROR: daemon not accepting: %s@."
          (Serve.Error.to_string e);
        exit 1
    in
    loop ()
  in
  let violations = ref 0 in
  let pid = fork_daemon endpoint in
  (* the storm daemon inherits Truncate+Bit_flip faults armed on its
     socket-read site AND its artifact-load site; it idles until the
     storm phase below *)
  let storm_rounds = 100 in
  Fault.configure
    (Some
       { Fault.seed = 7; prob = 0.3; kinds = [ Fault.Truncate; Fault.Bit_flip ];
         sites = [ "serve.recv"; "codec.load" ] });
  let storm_pid = fork_daemon storm_endpoint in
  Fault.configure None;
  wait_ready endpoint;
  (* measured phase: [clients] concurrent connections, each streaming
     [passes] whole-workload batch requests *)
  let measure clients =
    let worker () =
      Domain.spawn (fun () ->
          match Serve.Client.connect endpoint with
          | Error e -> Error (Serve.Error.to_string e)
          | Ok c ->
            let lats = ref [] in
            let rec go i last =
              if i = 0 then Ok last
              else begin
                let t0 = Unix.gettimeofday () in
                match Serve.Client.estimate_batch c ~synopsis:"bench" sources with
                | Ok r ->
                  lats := (1e6 *. (Unix.gettimeofday () -. t0)) :: !lats;
                  go (i - 1) r
                | Error e -> Error (Serve.Error.to_string e)
              end
            in
            let r = go passes [||] in
            Serve.Client.close c;
            match r with Ok last -> Ok (last, !lats) | Error e -> Error e)
    in
    let t0 = Unix.gettimeofday () in
    let domains = List.init clients (fun _ -> worker ()) in
    let results = List.map Domain.join domains in
    let wall = Unix.gettimeofday () -. t0 in
    let max_diff = ref 0.0 in
    let m = Xc_util.Metrics.create () in
    List.iter
      (fun r ->
        match r with
        | Error e ->
          Format.fprintf ppf "  ERROR: client failed: %s@." e;
          incr violations
        | Ok (last, lats) ->
          if Array.length last <> nq then begin
            Format.fprintf ppf "  ERROR: short batch answer (%d of %d)@."
              (Array.length last) nq;
            incr violations
          end
          else
            Array.iteri
              (fun i v ->
                if Int64.bits_of_float v <> Int64.bits_of_float reference.(i) then
                  max_diff :=
                    Float.max !max_diff (Float.abs (v -. reference.(i))))
              last;
          List.iter (fun l -> Xc_util.Metrics.observe m "daemon.request_us" l) lats)
      results;
    let p50, p95, p99 =
      match
        Xc_util.Metrics.quantiles m "daemon.request_us" [ 0.5; 0.95; 0.99 ]
      with
      | Some [ (_, a); (_, b); (_, c) ] -> (a, b, c)
      | _ -> (0.0, 0.0, 0.0)
    in
    let answered = clients * passes * nq in
    let qps = float_of_int answered /. Float.max wall 1e-9 in
    if !max_diff <> 0.0 then incr violations;
    Format.fprintf ppf
      "  %d client(s): %.0f estimates/s   request p50 %.0f us  p95 %.0f us  p99 %.0f us   max |daemon - uncached| = %g@."
      clients qps p50 p95 p99 !max_diff;
    (clients, qps, p50, p95, p99, !max_diff)
  in
  Format.fprintf ppf "@.Estimation daemon (%s: %d queries x %d passes per client)@."
    ds.Xc_exp.Runner.name nq passes;
  let measured = List.map measure client_counts in
  (* clean shutdown of the measured daemon *)
  let shutdown_clean =
    match Serve.Client.connect endpoint with
    | Error _ -> false
    | Ok c ->
      let ok = Serve.Client.shutdown c = Ok () in
      Serve.Client.close c;
      ok
  in
  let exit_clean =
    shutdown_clean
    && (match Unix.waitpid [] pid with _, Unix.WEXITED 0 -> true | _ -> false)
  in
  if not exit_clean then begin
    Format.fprintf ppf "  ERROR: daemon did not shut down cleanly@.";
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    incr violations
  end;
  (* storm phase: requests against the fault-armed daemon may fail with
     typed errors (and it drops damaged connections), but the process
     itself must survive the whole storm and still acknowledge a
     shutdown *)
  wait_ready storm_endpoint;
  let storm_ok = ref 0 and storm_err = ref 0 in
  for i = 0 to storm_rounds - 1 do
    match Serve.Client.connect storm_endpoint with
    | Error _ -> incr storm_err
    | Ok c ->
      (* every few rounds, a reload drives the storm through the
         artifact-load site too (a faulted load is skipped and counted,
         keeping the previously admitted synopsis) *)
      (if i mod 5 = 0 then
         match Serve.Client.reload c with
         | Ok _ -> incr storm_ok
         | Error _ -> incr storm_err
       else
         match
           Serve.Client.estimate c ~synopsis:"bench" ~query:sources.(i mod nq)
         with
         | Ok _ -> incr storm_ok
         | Error _ -> incr storm_err);
      Serve.Client.close c
  done;
  let survived =
    match Unix.waitpid [ Unix.WNOHANG ] storm_pid with
    | 0, _ -> true
    | _ -> false
  in
  if not survived then begin
    Format.fprintf ppf "  ERROR: daemon exited under the socket fault storm@.";
    incr violations
  end;
  (* the shutdown frame itself can be storm-damaged server-side: retry *)
  let storm_shutdown =
    if not survived then false
    else begin
      let rec retry n =
        if n = 0 then false
        else
          match Serve.Client.connect storm_endpoint with
          | Error _ -> retry (n - 1)
          | Ok c ->
            let r = Serve.Client.shutdown c in
            Serve.Client.close c;
            (match r with Ok () -> true | Error _ -> retry (n - 1))
      in
      retry 200
      && (match Unix.waitpid [] storm_pid with
         | _, Unix.WEXITED 0 -> true
         | _ -> false)
    end
  in
  if survived && not storm_shutdown then begin
    Format.fprintf ppf "  ERROR: storm daemon refused a clean shutdown@.";
    (try Unix.kill storm_pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] storm_pid);
    incr violations
  end;
  Format.fprintf ppf
    "  storm: %d requests (%d answered, %d typed errors), survived: %b, clean shutdown: %b@."
    storm_rounds !storm_ok !storm_err survived storm_shutdown;
  Fault.configure ambient;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let per_count =
    String.concat ","
      (List.map
         (fun (clients, qps, p50, p95, p99, max_diff) ->
           Printf.sprintf
             "{\"clients\":%d,\"qps\":%.0f,\"p50_us\":%.2f,\"p95_us\":%.2f,\"p99_us\":%.2f,\"max_diff\":%g}"
             clients qps p50 p95 p99 max_diff)
         measured)
  in
  let json =
    Printf.sprintf
      "{\"ts\":%.0f,\"dataset\":%S,\"scale\":%.3f,\"queries\":%d,\"passes\":%d,\"runs\":[%s],\"storm_rounds\":%d,\"storm_ok\":%d,\"storm_err\":%d,\"storm_survived\":%b,\"shutdown_clean\":%b,\"storm_shutdown_clean\":%b}"
      (Unix.gettimeofday ()) ds.Xc_exp.Runner.name scale nq passes per_count
      storm_rounds !storm_ok !storm_err survived exit_clean storm_shutdown
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_daemon.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "  appended to BENCH_daemon.json@.";
  if !violations > 0 then begin
    Format.fprintf ppf "  ERROR: %d daemon-serving violations@." !violations;
    exit 1
  end

(* ---- serving-plane chaos ------------------------------------------------
   The robustness gate behind BENCH_chaos.json: forked daemons under a
   stalled peer, a full pending queue, and seeded fault storms over the
   serving plane's injection sites (serve.accept, serve.send,
   serve.deadline, client.connect). Hard gates (any failure exits
   non-zero):
   - a stalled slow-loris peer costs one worker, not the daemon:
     concurrent-client p99 under one stalled peer stays within 2x the
     unstalled baseline (plus 1 ms of scheduling slack);
   - the stalled peer is evicted, with a typed Timeout frame, within
     the configured read deadline plus slack;
   - with the single worker stalled and the pending queue full, new
     connections are shed with typed Overloaded frames, and
     Client.with_retry recovers once the stall clears;
   - every storm daemon survives its storm, answers bit-identical batch
     estimates through it, and acknowledges a clean shutdown after it;
   - batch answers are bit-identical across worker-pool sizes (1 and 4);
   - a graceful drain completes within the configured drain deadline. *)

let run_chaos () =
  let module Serve = Xcluster.Serve in
  let module Fault = Xc_util.Fault in
  let passes =
    match Sys.getenv_opt "XC_PASSES" with
    | Some s -> (try int_of_string s with Failure _ -> 3)
    | None -> 3
  in
  (* XC_CHAOS_SEED offsets every storm's RNG stream, so a CI matrix
     replays distinct but reproducible storms over the same sites *)
  let chaos_seed =
    match Sys.getenv_opt "XC_CHAOS_SEED" with
    | Some s -> (try int_of_string s with Failure _ -> 0)
    | None -> 0
  in
  let dir = Filename.temp_file "xc_chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let syn_path = Filename.concat dir "chaos.syn" in
  let sock name = Filename.concat dir (name ^ ".sock") in
  let ep name = Serve.Protocol.Unix_sock (sock name) in
  let ds = Lazy.force imdb in
  let syn =
    timed "chaos: build" (fun () ->
        Xcluster.Build.compress
          (Xcluster.Build.budget ~bstr_kb:16 ~bval_kb:120 ())
          ds.Xc_exp.Runner.reference)
  in
  (match Xcluster.Store.save syn_path syn with
  | Ok () -> ()
  | Error e ->
    Format.fprintf ppf "  ERROR: save: %s@." (Xc_core.Codec.error_to_string e);
    exit 1);
  let loaded =
    match Xcluster.Store.load syn_path with
    | Ok s -> s
    | Error e ->
      Format.fprintf ppf "  ERROR: load: %s@." (Xc_core.Codec.error_to_string e);
      exit 1
  in
  let sources =
    let all =
      Array.map
        (fun q ->
          let s = Format.asprintf "%a" Xc_twig.Twig_query.pp q in
          if String.length s > 0 && s.[0] = '.' then
            String.sub s 1 (String.length s - 1)
          else s)
        (Xc_exp.Runner.workload_queries ds)
    in
    Array.sub all 0 (Int.min 60 (Array.length all))
  in
  let nq = Array.length sources in
  let reference =
    Array.map
      (fun src -> Xcluster.Query.estimate_uncached loaded (Xcluster.Query.parse src))
      sources
  in
  let ref_bits = Array.map Int64.bits_of_float reference in
  let bitwise r =
    Array.length r = nq
    &&
    let ok = ref true in
    Array.iteri (fun i v -> if Int64.bits_of_float v <> ref_bits.(i) then ok := false) r;
    !ok
  in
  let violations = ref 0 in
  let gate ok msg =
    if not ok then begin
      Format.fprintf ppf "  ERROR: %s@." msg;
      incr violations
    end
  in
  (* every fork happens before the first Domain.spawn: the OCaml 5
     runtime refuses Unix.fork once any other domain exists. Children
     inherit the parent's fault state at fork time, which is how each
     storm daemon gets its own armed sites. *)
  let ambient = Fault.current () in
  Fault.configure None;
  let fork_daemon endpoint tune =
    Format.pp_print_flush ppf ();
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      (try
         let registry = Serve.Registry.create ~max_engines:4 () in
         Serve.Registry.add_source registry ~name:"chaos" ~path:syn_path;
         let config =
           tune
             { Serve.Daemon.default_config with
               Serve.Daemon.endpoint;
               max_engines = 4;
               options = Serve.default_options }
         in
         Serve.Daemon.run ~config registry
       with _ -> Unix._exit 1);
      Unix._exit 0
    | pid -> pid
  in
  let recv_timeout_s = 2.0 in
  let drain_timeout_s = 5.0 in
  let main_pid =
    fork_daemon (ep "main") (fun c ->
        { c with
          Serve.Daemon.workers = 4;
          max_pending = 32;
          recv_timeout_s;
          request_budget_s = recv_timeout_s +. 0.5;
          drain_timeout_s;
          retry_after_ms = 25 })
  in
  let overload_pid =
    fork_daemon (ep "overload") (fun c ->
        { c with
          Serve.Daemon.workers = 1;
          max_pending = 1;
          recv_timeout_s = 3.0;
          request_budget_s = 3.5;
          retry_after_ms = 25 })
  in
  let storm_specs =
    [ ("serve.accept", 0.4, 71 + chaos_seed);
      ("serve.send", 0.3, 72 + chaos_seed);
      ("serve.deadline", 0.2, 73 + chaos_seed) ]
  in
  let storm_daemons =
    List.map
      (fun (site, prob, seed) ->
        Fault.configure
          (Some { Fault.seed; prob; kinds = [ Fault.Eio ]; sites = [ site ] });
        let pid =
          fork_daemon
            (ep (String.map (function '.' -> '_' | c -> c) site))
            (fun c ->
              { c with
                Serve.Daemon.workers = 3;
                max_pending = 16;
                recv_timeout_s = 0.5;
                request_budget_s = 1.0;
                retry_after_ms = 10 })
        in
        Fault.configure None;
        (site, pid))
      storm_specs
  in
  let wait_ready endpoint =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec loop () =
      match Serve.Client.connect endpoint with
      | Ok c -> Serve.Client.close c
      | Error _ when Unix.gettimeofday () < deadline ->
        ignore (Unix.select [] [] [] 0.05);
        loop ()
      | Error e ->
        Format.fprintf ppf "  ERROR: daemon not accepting: %s@."
          (Serve.Error.to_string e);
        exit 1
    in
    loop ()
  in
  let raw_connect endpoint =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match endpoint with
    | Serve.Protocol.Unix_sock p -> Unix.connect fd (Unix.ADDR_UNIX p)
    | Serve.Protocol.Tcp _ -> assert false);
    fd
  in
  let raw_close fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> () in
  (* a slow loris: half a frame header, then silence *)
  let loris endpoint =
    let fd = raw_connect endpoint in
    ignore (Unix.write_substring fd "\x01" 0 1);
    fd
  in
  (* block until the daemon evicts the peer (EOF); returns seconds from
     [t0], or None if the read timed out before any eviction *)
  let eviction_elapsed fd t0 =
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO (recv_timeout_s +. 8.0);
    let chunk = Bytes.create 256 in
    let rec drain () =
      match Unix.read fd chunk 0 256 with
      | 0 -> Some (Unix.gettimeofday () -. t0)
      | _ -> drain ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        None
      | exception Unix.Unix_error (_, _, _) ->
        Some (Unix.gettimeofday () -. t0)
    in
    drain ()
  in
  Format.fprintf ppf "@.Serving-plane chaos (%s: %d queries x %d passes per client)@."
    ds.Xc_exp.Runner.name nq passes;
  wait_ready (ep "main");
  (* measured phase: 2 concurrent clients streaming whole-workload
     batches; every answer must be bit-identical to estimate_uncached *)
  let measure endpoint =
    let worker () =
      Domain.spawn (fun () ->
          match Serve.Client.connect ~timeout_s:10.0 endpoint with
          | Error e -> Error (Serve.Error.to_string e)
          | Ok c ->
            let lats = ref [] in
            let rec go i =
              if i = 0 then Ok ()
              else begin
                let t0 = Unix.gettimeofday () in
                match Serve.Client.estimate_batch c ~synopsis:"chaos" sources with
                | Ok r ->
                  lats := (1e6 *. (Unix.gettimeofday () -. t0)) :: !lats;
                  if bitwise r then go (i - 1)
                  else Error "batch answer not bit-identical"
                | Error e -> Error (Serve.Error.to_string e)
              end
            in
            let r = go passes in
            Serve.Client.close c;
            match r with Ok () -> Ok !lats | Error e -> Error e)
    in
    let domains = List.init 2 (fun _ -> worker ()) in
    let results = List.map Domain.join domains in
    let m = Xc_util.Metrics.create () in
    let ok = ref true in
    List.iter
      (fun r ->
        match r with
        | Error e ->
          Format.fprintf ppf "  ERROR: measured client failed: %s@." e;
          ok := false
        | Ok lats ->
          List.iter (fun l -> Xc_util.Metrics.observe m "req_us" l) lats)
      results;
    let p99 =
      match Xc_util.Metrics.quantiles m "req_us" [ 0.99 ] with
      | Some [ (_, v) ] -> v
      | _ -> 0.0
    in
    (!ok, p99)
  in
  (* warm the engine cache first: the baseline must measure serving,
     not the one-time lazy engine build *)
  (match
     Serve.Client.with_retry ~attempts:10 ~timeout_s:10.0 (ep "main") (fun c ->
         Serve.Client.estimate_batch c ~synopsis:"chaos" sources)
   with
  | Ok r -> gate (bitwise r) "warmup batch not bit-identical"
  | Error e ->
    Format.fprintf ppf "  ERROR: warmup: %s@." (Serve.Error.to_string e);
    incr violations);
  let base_ok, baseline_p99 = measure (ep "main") in
  gate base_ok "baseline clients failed or answered inexactly";
  (* eviction latency, unloaded: a lone loris against 4 free workers *)
  let t0 = Unix.gettimeofday () in
  let lone = loris (ep "main") in
  let evict_s =
    match eviction_elapsed lone t0 with
    | Some s -> s
    | None ->
      gate false "stalled peer was not evicted";
      Float.nan
  in
  raw_close lone;
  let evict_bound_s = recv_timeout_s +. 1.5 in
  gate
    (Float.is_nan evict_s || evict_s <= evict_bound_s)
    (Printf.sprintf "eviction took %.2fs (deadline %.2fs + 1.5s slack)" evict_s
       recv_timeout_s);
  (* stalled-peer isolation: one loris holds a worker while 2 clients
     measure; their p99 must stay within 2x baseline + 1 ms *)
  let stalled = loris (ep "main") in
  let stall_ok, stalled_p99 = measure (ep "main") in
  ignore (eviction_elapsed stalled (Unix.gettimeofday ()));
  raw_close stalled;
  gate stall_ok "clients under a stalled peer failed or answered inexactly";
  let stall_bound = (2.0 *. baseline_p99) +. 1000.0 in
  gate
    (stalled_p99 <= stall_bound)
    (Printf.sprintf
       "stalled-peer p99 %.0f us exceeds 2x baseline %.0f us (+1 ms slack)"
       stalled_p99 baseline_p99);
  Format.fprintf ppf
    "  stalled peer: baseline p99 %.0f us, stalled p99 %.0f us (bound %.0f us), evicted in %.2fs@."
    baseline_p99 stalled_p99 stall_bound evict_s;
  (* overload: single worker stalled, pending queue full — connections
     are shed with typed Overloaded frames, and with_retry recovers *)
  wait_ready (ep "overload");
  let shed_attempts = 8 in
  (* one round of induced overload: a loris checks out the single
     worker, a filler takes the one queue slot, and every further
     connection must bounce with Overloaded. Closing the bad peers at
     the end clears the stall instantly (their reads turn into EOF). *)
  let overload_round () =
    let ol_loris = loris (ep "overload") in
    ignore (Unix.select [] [] [] 0.15);
    let ol_filler = raw_connect (ep "overload") in
    ignore (Unix.select [] [] [] 0.15);
    let sheds = ref 0 in
    for _ = 1 to shed_attempts do
      match Serve.Client.connect ~timeout_s:5.0 (ep "overload") with
      | Error _ -> ()
      | Ok c ->
        (match Serve.Client.estimate c ~synopsis:"chaos" ~query:sources.(0) with
        | Error (Serve.Error.Overloaded _) -> incr sheds
        | _ -> ());
        Serve.Client.close c
    done;
    raw_close ol_loris;
    raw_close ol_filler;
    !sheds
  in
  let sheds =
    (* scheduling can miss the shed window (the worker not yet stalled
       when the filler arrived): one more round before judging *)
    match overload_round () with 0 -> overload_round () | n -> n
  in
  gate (sheds > 0) "full queue never shed a typed Overloaded frame";
  let retry_recovered =
    match
      Serve.Client.with_retry ~attempts:20 ~base_delay_s:0.05 ~max_delay_s:0.2
        ~timeout_s:5.0 (ep "overload") (fun c ->
          Serve.Client.estimate c ~synopsis:"chaos" ~query:sources.(0))
    with
    | Ok _ -> true
    | Error e ->
      Format.fprintf ppf "  ERROR: with_retry never recovered: %s@."
        (Serve.Error.to_string e);
      false
  in
  gate retry_recovered "with_retry did not outlast the overload";
  Format.fprintf ppf
    "  overload: %d/%d connections shed (typed Overloaded), with_retry recovered: %b@."
    sheds shed_attempts retry_recovered;
  (* bit-identity across worker-pool sizes: the overload daemon runs 1
     worker, the main daemon 4 — both must answer the reference bits *)
  let bitwise_workers =
    match
      Serve.Client.with_retry ~attempts:10 ~timeout_s:10.0 (ep "overload")
        (fun c -> Serve.Client.estimate_batch c ~synopsis:"chaos" sources)
    with
    | Ok r -> bitwise r
    | Error e ->
      Format.fprintf ppf "  ERROR: 1-worker batch: %s@." (Serve.Error.to_string e);
      false
  in
  gate bitwise_workers "batch answers differ across worker-pool sizes";
  (* storm phases: each storm daemon was forked with one site armed.
     Faults delay accepts, kill sends, or force deadlines — they never
     corrupt — so every answer that does arrive must be bit-exact. *)
  let storm_ops = 40 in
  let run_storm (site, pid) =
    let endpoint = ep (String.map (function '.' -> '_' | c -> c) site) in
    wait_ready endpoint;
    let ok = ref 0 and err = ref 0 in
    for i = 1 to storm_ops do
      let r =
        Serve.Client.with_retry ~attempts:8 ~base_delay_s:0.005
          ~max_delay_s:0.05 ~seed:(i + chaos_seed) ~timeout_s:5.0 endpoint
          (fun c ->
            if i mod 4 = 0 then
              match Serve.Client.ping c with
              | Ok _ -> Ok ()
              | Error e -> Error e
            else
              match
                Serve.Client.estimate c ~synopsis:"chaos"
                  ~query:sources.(i mod nq)
              with
              | Ok _ -> Ok ()
              | Error e -> Error e)
      in
      match r with Ok () -> incr ok | Error _ -> incr err
    done;
    let storm_bitwise =
      match
        Serve.Client.with_retry ~attempts:10 ~timeout_s:10.0 endpoint (fun c ->
            Serve.Client.estimate_batch c ~synopsis:"chaos" sources)
      with
      | Ok r -> bitwise r
      | Error _ -> false
    in
    let survived =
      match Unix.waitpid [ Unix.WNOHANG ] pid with 0, _ -> true | _ -> false
    in
    let clean_shutdown =
      survived
      &&
      (* ask until the daemon is observed to exit 0: under a send storm
         the Done acknowledgment itself may be killed even though the
         shutdown was applied, so the ack frame proves nothing *)
      let deadline = Unix.gettimeofday () +. 20.0 in
      let rec go () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | p, Unix.WEXITED 0 when p = pid -> true
        | p, _ when p = pid -> false
        | _ ->
          if Unix.gettimeofday () > deadline then false
          else begin
            (match Serve.Client.connect ~timeout_s:5.0 endpoint with
            | Error _ -> ()
            | Ok c ->
              ignore (Serve.Client.shutdown c);
              Serve.Client.close c);
            ignore (Unix.select [] [] [] 0.02);
            go ()
          end
      in
      go ()
    in
    if not clean_shutdown then begin
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [ Unix.WNOHANG ] pid) with Unix.Unix_error _ -> ())
    end;
    gate survived (Printf.sprintf "daemon died under the %s storm" site);
    gate (!ok > 0) (Printf.sprintf "no operation survived the %s storm" site);
    gate storm_bitwise
      (Printf.sprintf "batch through the %s storm was not bit-identical" site);
    gate clean_shutdown
      (Printf.sprintf "no clean shutdown after the %s storm" site);
    Format.fprintf ppf
      "  storm %-14s: %d ops (%d ok, %d typed errors), survived %b, bitwise %b, clean shutdown %b@."
      site storm_ops !ok !err survived storm_bitwise clean_shutdown;
    Printf.sprintf
      "{\"site\":%S,\"ops\":%d,\"ok\":%d,\"err\":%d,\"survived\":%b,\"bitwise\":%b,\"clean_shutdown\":%b}"
      site storm_ops !ok !err survived storm_bitwise clean_shutdown
  in
  let storm_json = List.map run_storm storm_daemons in
  (* client.connect storm: armed in this process, against the main
     daemon; with_retry must push operations through it *)
  Fault.configure
    (Some
       { Fault.seed = 74 + chaos_seed; prob = 0.4; kinds = [ Fault.Eio ];
         sites = [ "client.connect" ] });
  let conn_ok = ref 0 and conn_err = ref 0 in
  for i = 1 to storm_ops do
    match
      Serve.Client.with_retry ~attempts:8 ~base_delay_s:0.005 ~max_delay_s:0.05
        ~seed:(100 + i) ~timeout_s:5.0 (ep "main") (fun c ->
          Serve.Client.estimate c ~synopsis:"chaos" ~query:sources.(i mod nq))
    with
    | Ok _ -> incr conn_ok
    | Error _ -> incr conn_err
  done;
  Fault.configure None;
  gate (!conn_ok > 0) "no operation survived the client.connect storm";
  let post_storm_ping =
    match
      Serve.Client.with_retry ~attempts:10 ~timeout_s:5.0 (ep "main")
        Serve.Client.ping
    with
    | Ok h -> h.Serve.Protocol.h_synopses = 1 && not h.Serve.Protocol.h_draining
    | Error _ -> false
  in
  gate post_storm_ping "main daemon unhealthy after the storms";
  Format.fprintf ppf
    "  storm client.connect: %d ops (%d ok, %d typed errors), post-storm ping ok %b@."
    storm_ops !conn_ok !conn_err post_storm_ping;
  (* graceful drain, timed: shutdown the main daemon and gate its wall
     time against the configured drain deadline *)
  let drain_ms =
    let t0 = Unix.gettimeofday () in
    let acked =
      match Serve.Client.connect ~timeout_s:5.0 (ep "main") with
      | Error _ -> false
      | Ok c ->
        let r = Serve.Client.shutdown c = Ok () in
        Serve.Client.close c;
        r
    in
    let exited =
      match Unix.waitpid [] main_pid with _, Unix.WEXITED 0 -> true | _ -> false
    in
    gate (acked && exited) "main daemon did not drain cleanly";
    1000.0 *. (Unix.gettimeofday () -. t0)
  in
  let drain_bound_ms = 1000.0 *. (drain_timeout_s +. 2.0) in
  gate
    (drain_ms <= drain_bound_ms)
    (Printf.sprintf "drain took %.0f ms (bound %.0f ms)" drain_ms drain_bound_ms);
  Format.fprintf ppf "  drain: %.0f ms (bound %.0f ms)@." drain_ms drain_bound_ms;
  (* the overload daemon drains untimed — its stalled peers are gone *)
  (let rec shut n =
     if n = 0 then gate false "overload daemon refused shutdown"
     else
       match Serve.Client.connect ~timeout_s:5.0 (ep "overload") with
       | Error _ -> shut (n - 1)
       | Ok c ->
         let r = Serve.Client.shutdown c in
         Serve.Client.close c;
         (match r with Ok () -> () | Error _ -> shut (n - 1))
   in
   shut 200);
  (match Unix.waitpid [] overload_pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> gate false "overload daemon exited uncleanly");
  Fault.configure ambient;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let json =
    Printf.sprintf
      "{\"ts\":%.0f,\"dataset\":%S,\"scale\":%.3f,\"queries\":%d,\"passes\":%d,\"baseline_p99_us\":%.2f,\"stalled_p99_us\":%.2f,\"evict_ms\":%.0f,\"evict_bound_ms\":%.0f,\"shed\":%d,\"shed_attempts\":%d,\"retry_recovered\":%b,\"bitwise_workers\":%b,\"storms\":[%s],\"connect_ok\":%d,\"connect_err\":%d,\"post_storm_ping\":%b,\"drain_ms\":%.0f,\"drain_bound_ms\":%.0f,\"violations\":%d}"
      (Unix.gettimeofday ()) ds.Xc_exp.Runner.name scale nq passes baseline_p99
      stalled_p99
      (if Float.is_nan evict_s then -1.0 else 1000.0 *. evict_s)
      (1000.0 *. evict_bound_s) sheds shed_attempts retry_recovered
      bitwise_workers
      (String.concat "," storm_json)
      !conn_ok !conn_err post_storm_ping drain_ms drain_bound_ms !violations
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_chaos.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "  appended to BENCH_chaos.json@.";
  if !violations > 0 then begin
    Format.fprintf ppf "  ERROR: %d chaos violations@." !violations;
    exit 1
  end

(* ---- incremental maintenance -------------------------------------------
   The update benchmark behind BENCH_update.json: an XMark auction
   open/close stream applied to a live builder (Build.update_and_seal:
   delta application + localized repair + freeze) versus a from-scratch
   rebuild (reference construction + XCLUSTERBUILD) of the mutated
   document. Gates (any failure exits non-zero): the incremental path
   must be at least 10x faster than the rebuild, and its workload error
   on the mutated document must be within 1 percentage point of the
   fresh build's. A swap phase then drives the repaired generation
   through Registry.swap/swap_from — including a corrupt-artifact
   attempt that must keep the previous good generation serving.

   Environment: XC_UPDATES sizes the stream (default 64 auction events,
   half opens / half closes). *)

let run_update () =
  let module Registry = Xcluster.Serve.Registry in
  let n_updates =
    match Sys.getenv_opt "XC_UPDATES" with
    | Some s -> (try max 2 (int_of_string s) with Failure _ -> 64)
    | None -> 64
  in
  let ds = Lazy.force xmark in
  let doc = ds.Xc_exp.Runner.doc in
  let min_extent = ds.Xc_exp.Runner.min_extent in
  (* paper budgets scaled with the document so the repair runs under
     real merge pressure at every XC_SCALE — but floored well above the
     build target's floor: the all-merged extreme is the worst-accuracy
     regime, where the update approximations (deletions keep their value
     summaries, deltas resolve per label) are amplified far past what
     any serving deployment would run *)
  let budget =
    Xcluster.Build.budget
      ~bstr_kb:(max 4 (int_of_float (Float.round (20.0 *. scale))))
      ~bval_kb:(max 30 (int_of_float (Float.round (150.0 *. scale))))
      ()
  in
  let live =
    timed "update: xclusterbuild" (fun () ->
        Xcluster.Build.compress_builder budget
          (Xc_core.Reference.build ~min_extent doc))
  in
  let updates =
    Xc_data.Xmark.update_stream ~seed:7 ~n_open:(n_updates / 2)
      ~n_close:(n_updates - (n_updates / 2))
      doc
  in
  let site_l = Xc_xml.Label.of_string "site" in
  let open_l = Xc_xml.Label.of_string "open_auctions" in
  let closed_l = Xc_xml.Label.of_string "closed_auctions" in
  let muts =
    List.concat_map
      (function
        | Xc_data.Xmark.Open subtree ->
          [ Xcluster.Build.Insert { parent = [ site_l; open_l ]; subtree } ]
        | Xc_data.Xmark.Close { opened; closed } ->
          [ Xcluster.Build.Delete { parent = [ site_l; open_l ]; subtree = opened };
            Xcluster.Build.Insert { parent = [ site_l; closed_l ]; subtree = closed } ])
      updates
  in
  let mutated = Xc_data.Xmark.apply_stream doc updates in
  (* rebuild: the path the incremental lifecycle replaces *)
  let t0 = Unix.gettimeofday () in
  let fresh = Xcluster.Build.run ~min_extent ~budget mutated in
  let t_rebuild = Unix.gettimeofday () -. t0 in
  (* incremental: apply + localized repair + freeze *)
  let t0 = Unix.gettimeofday () in
  let stats, incr_syn =
    match Xcluster.Build.update_and_seal ~budget live muts with
    | Ok r -> r
    | Error e ->
      Format.fprintf ppf "  ERROR: update rejected: %s@." e;
      exit 1
  in
  let t_update = Unix.gettimeofday () -. t0 in
  let speedup = t_rebuild /. Float.max t_update 1e-9 in
  (* estimation error on the mutated document, both paths *)
  let spec = { Xc_twig.Workload.default_spec with n_queries = min n_queries 200 } in
  let wl = timed "update: workload" (fun () -> Xc_twig.Workload.generate ~spec mutated) in
  let sanity = Xc_twig.Workload.sanity_bound wl in
  let err syn =
    Xc_exp.Error_metric.overall_relative ~sanity
      (Xc_exp.Error_metric.score (Xc_core.Estimate.selectivity syn) wl)
  in
  let err_fresh = err fresh and err_update = err incr_syn in
  let added_error = err_update -. err_fresh in
  Format.fprintf ppf "@.Incremental maintenance (%s: %d auction events -> %d mutations)@."
    ds.Xc_exp.Runner.name (List.length updates) (List.length muts);
  Format.fprintf ppf "  rebuild:     %7.3f s  (reference + XCLUSTERBUILD)@." t_rebuild;
  Format.fprintf ppf
    "  incremental: %7.3f s  (apply + localized repair + freeze)  %.1fx@." t_update
    speedup;
  Format.fprintf ppf
    "  repair: dirty %d, merges %d, created %d, removed %d, skipped branches %d@."
    stats.Xcluster.Build.dirty stats.Xcluster.Build.repair_merges
    stats.Xcluster.Build.created stats.Xcluster.Build.removed
    stats.Xcluster.Build.skipped;
  Format.fprintf ppf
    "  workload error on the mutated doc: fresh %.4f, incremental %.4f (added %.4f)@."
    err_fresh err_update added_error;
  (* swap phase: the repaired generation through the registry. An
     ambient XC_FAULTS storm may fail the save or the verify-load; the
     contract is then exactly the corrupt-artifact one — the previous
     good generation keeps serving and the counter does not move. *)
  let swap_violations = ref 0 in
  let dir = Filename.temp_file "xc_bench_update" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let reg = Registry.create () in
  let gen1 = Registry.swap reg ~name:"xmark" fresh in
  let path = Filename.concat dir "g2.syn" in
  let swap_ok, generation =
    match Xcluster.Store.save path incr_syn with
    | Error e ->
      Format.fprintf ppf "  swap: save failed (%s)@."
        (Xc_core.Codec.error_to_string e);
      (false, Registry.generation reg "xmark")
    | Ok () -> (
      match Registry.swap_from reg ~name:"xmark" ~path with
      | Ok gen -> (true, gen)
      | Error e ->
        Format.fprintf ppf "  swap: skipped (%s)@."
          (Xcluster.Serve.Error.to_string e);
        (false, Registry.generation reg "xmark"))
  in
  if swap_ok && generation <> gen1 + 1 then begin
    Format.fprintf ppf "  ERROR: swap committed but generation went %d -> %d@." gen1
      generation;
    incr swap_violations
  end;
  if (not swap_ok) && generation <> gen1 then begin
    Format.fprintf ppf "  ERROR: failed swap moved the generation %d -> %d@." gen1
      generation;
    incr swap_violations
  end;
  if Registry.find reg "xmark" = None then begin
    Format.fprintf ppf "  ERROR: name stopped serving across the swap@.";
    incr swap_violations
  end;
  (* a corrupt artifact must be rejected with the generation pinned *)
  let bad = Filename.concat dir "bad.syn" in
  let oc = open_out bad in
  output_string oc "not a synopsis";
  close_out oc;
  let gen_before = Registry.generation reg "xmark" in
  (match Registry.swap_from reg ~name:"xmark" ~path:bad with
  | Ok _ ->
    Format.fprintf ppf "  ERROR: corrupt artifact admitted@.";
    incr swap_violations
  | Error _ -> ());
  if Registry.generation reg "xmark" <> gen_before then begin
    Format.fprintf ppf "  ERROR: corrupt swap moved the generation@.";
    incr swap_violations
  end;
  Format.fprintf ppf "  swap: committed %b, generation %d, corrupt artifact rejected@."
    swap_ok generation;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let json =
    Printf.sprintf
      "{\"ts\":%.0f,\"dataset\":%S,\"scale\":%.3f,\"updates\":%d,\"mutations\":%d,\"t_rebuild_s\":%.4f,\"t_update_s\":%.4f,\"speedup\":%.2f,\"err_fresh\":%.5f,\"err_update\":%.5f,\"added_error\":%.5f,\"dirty\":%d,\"repair_merges\":%d,\"created\":%d,\"removed\":%d,\"swap_committed\":%b,\"generation\":%d}"
      (Unix.gettimeofday ()) ds.Xc_exp.Runner.name scale (List.length updates)
      (List.length muts) t_rebuild t_update speedup err_fresh err_update added_error
      stats.Xcluster.Build.dirty stats.Xcluster.Build.repair_merges
      stats.Xcluster.Build.created stats.Xcluster.Build.removed swap_ok generation
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_update.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "  appended to BENCH_update.json@.";
  if !swap_violations > 0 then begin
    Format.fprintf ppf "  ERROR: %d swap-protocol violations@." !swap_violations;
    exit 1
  end;
  if speedup < 10.0 then begin
    Format.fprintf ppf
      "  ERROR: incremental update is only %.1fx faster than a rebuild (gate: 10x)@."
      speedup;
    exit 1
  end;
  if added_error >= 0.01 then begin
    Format.fprintf ppf
      "  ERROR: incremental update added %.4f estimation error (gate: < 0.01)@."
      added_error;
    exit 1
  end

(* ---- Bechamel micro-benchmarks ---------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let doc = Xc_data.Imdb.generate ~seed:31 ~n_movies:400 () in
  let reference = Xc_core.Reference.build ~min_extent:8 doc in
  let spec = { Xc_twig.Workload.default_spec with n_queries = 20 } in
  let workload = Xc_twig.Workload.generate ~spec doc in
  let query = (List.hd workload).Xc_twig.Workload.query in
  let syn =
    Xc_core.Build.run (Xc_core.Build.params ~bstr_kb:8 ~bval_kb:60 ()) reference
  in
  let strings =
    List.init 200 (fun i -> Printf.sprintf "benchmark string %d" (i * 37 mod 100))
  in
  let terms =
    List.init 400 (fun i ->
        [| Xc_xml.Dictionary.of_string (Printf.sprintf "t%d" (i mod 80)) |])
  in
  let values = Array.init 5000 (fun i -> i * i mod 1000) in
  [ Test.make ~name:"reference-build(10k-element doc)" (Staged.stage (fun () ->
        ignore (Xc_core.Reference.build ~min_extent:8 doc)));
    Test.make ~name:"xclusterbuild(8KB+60KB)" (Staged.stage (fun () ->
        ignore
          (Xc_core.Build.run (Xc_core.Build.params ~bstr_kb:8 ~bval_kb:60 ()) reference)));
    Test.make ~name:"estimate(twig)" (Staged.stage (fun () ->
        ignore (Xc_core.Estimate.selectivity syn query)));
    Test.make ~name:"exact-eval(twig)" (Staged.stage (fun () ->
        ignore (Xc_twig.Twig_eval.selectivity doc query)));
    Test.make ~name:"pst-build(200 strings)" (Staged.stage (fun () ->
        ignore (Xc_vsumm.Pst.build ~max_nodes:512 strings)));
    Test.make ~name:"term-hist-build(400 docs)" (Staged.stage (fun () ->
        ignore (Xc_vsumm.Term_hist.build terms)));
    Test.make ~name:"histogram-build(5k values)" (Staged.stage (fun () ->
        ignore (Xc_vsumm.Histogram.build values)));
    Test.make ~name:"codec-roundtrip" (Staged.stage (fun () ->
        ignore (Xc_core.Codec.of_string (Xc_core.Codec.to_string syn)))) ]

let run_micro () =
  let open Bechamel in
  Format.fprintf ppf "@.Micro-benchmarks (OLS estimate per run)@.%s@."
    (String.make 56 '-');
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
            if est >= 1e9 then Format.fprintf ppf "%-36s %10.2f s@." name (est /. 1e9)
            else if est >= 1e6 then
              Format.fprintf ppf "%-36s %10.2f ms@." name (est /. 1e6)
            else if est >= 1e3 then
              Format.fprintf ppf "%-36s %10.2f us@." name (est /. 1e3)
            else Format.fprintf ppf "%-36s %10.0f ns@." name est
          | Some [] | None -> Format.fprintf ppf "%-36s (no estimate)@." name)
        analyzed)
    (micro_tests ());
  Format.fprintf ppf "%s@." (String.make 56 '-')

(* ---- driver ------------------------------------------------------------ *)

let targets =
  [ ("table1", run_table1);
    ("table2", run_table2);
    ("fig8a", fun () -> run_fig8 (Lazy.force imdb));
    ("fig8b", fun () -> run_fig8 (Lazy.force xmark));
    ("fig8c", fun () -> run_fig8 (Lazy.force dblp));
    ("fig9", run_fig9);
    ("negative", run_negative);
    ("ablation-delta", run_ablation_delta);
    ("ablation-text", run_ablation_text);
    ("ablation-numeric", run_ablation_numeric);
    ("auto-split", run_auto_split);
    ("pipeline", run_pipeline);
    ("seal", run_seal);
    ("build", run_build);
    ("serve", run_serve);
    ("fault", run_fault);
    ("daemon", run_daemon);
    ("chaos", run_chaos);
    ("update", run_update);
    ("micro", run_micro) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) when not (List.mem "all" args) -> args
    | _ -> List.map fst targets
  in
  Format.fprintf ppf "XCluster benchmark harness (scale=%.2f, queries=%d)@." scale
    n_queries;
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f -> f ()
      | None ->
        Format.fprintf ppf "unknown target %S; known: %s@." name
          (String.concat ", " (List.map fst targets));
        exit 1)
    requested;
  (* pipeline metrics accumulated across every target above *)
  Format.fprintf ppf "@.metrics: %s@." (Xcluster.Metrics.json ());
  Format.pp_print_flush ppf ()
