(* The paper's introduction, end to end: a DBLP-like bibliography, the
   motivating query, and the automated budget-split search (Sec. 4.3
   future work) choosing how to divide a unified space budget.

   Run with: dune exec examples/paper_query.exe *)

let () =
  let doc = Xc_data.Dblp.generate ~n_authors:1200 () in
  Format.printf "bibliography: %d elements@." (Xc_xml.Document.n_elements doc);

  let reference = Xcluster.Build.reference ~min_extent:8 ~value_min_extent:200 doc in
  Format.printf "reference: %a@." Xcluster.Build.builder_stats reference;

  (* a small sample workload drives the automated Bstr/Bval split *)
  let spec = { Xc_twig.Workload.default_spec with n_queries = 60 } in
  let sample_workload = Xc_twig.Workload.generate ~spec doc in
  let sanity = Xc_twig.Workload.sanity_bound sample_workload in
  let sample syn =
    Xc_exp.Error_metric.overall_relative ~sanity
      (Xc_exp.Error_metric.score (Xcluster.Query.estimate syn) sample_workload)
  in
  let chosen, synopsis = Xcluster.Build.auto_split ~total_kb:60 ~sample reference in
  Format.printf "auto split chose Bstr=%dKB Bval=%dKB -> %a@."
    (chosen.Xcluster.bstr / 1024)
    (chosen.Xcluster.bval / 1024)
    Xcluster.Query.pp_stats synopsis;

  (* the motivating query of the paper's introduction *)
  let q =
    "//paper[year > 2000][abstract ftcontains(selka, garmonte)]/title[contains(Tree)]"
  in
  (* pick two terms that actually occur in some abstract so the query is
     realistic; fall back to the literal if absent *)
  let sample_terms =
    Array.to_seq doc.Xc_xml.Document.nodes
    |> Seq.filter_map (fun n ->
           match n.Xc_xml.Node.value with
           | Xc_xml.Value.Text terms
             when Array.length terms >= 2
                  && Xc_xml.Label.to_string n.Xc_xml.Node.label = "abstract" ->
             Some (Xc_xml.Dictionary.to_string terms.(0), Xc_xml.Dictionary.to_string terms.(1))
           | _ -> None)
    |> (fun s -> Seq.drop 17 s)
    |> fun s -> Seq.uncons s
  in
  let q =
    match sample_terms with
    | Some ((t1, t2), _) ->
      Printf.sprintf
        "//paper[year > 2000][abstract ftcontains(%s, %s)]/title[contains(Tree)]" t1 t2
    | None -> q
  in
  Format.printf "@.query: %s@." q;
  let query = Xcluster.Query.parse q in
  Format.printf "estimate: %.2f@." (Xcluster.Query.estimate synopsis query);
  Format.printf "exact:    %.0f@." (Xc_twig.Twig_eval.selectivity doc query);

  (* Boolean-model variations beyond the paper's conjunctive example *)
  Format.printf "@.Boolean-model variations:@.";
  List.iter
    (fun q ->
      let query = Xcluster.Query.parse q in
      Format.printf "%-64s est=%8.1f exact=%6.0f@." q
        (Xcluster.Query.estimate synopsis query)
        (Xc_twig.Twig_eval.selectivity doc query))
    [ "//paper[abstract ftany(selka, garmonte, mokuzo)]";
      "//paper[year > 2000][abstract ftexcludes(selka)]";
      "//author[book/publisher contains(Press)]/name" ]
