(* Full-text example: IR-style ftcontains predicates over TEXT content
   and what the end-biased term histogram does for them.

   The end-biased summary keeps the top term frequencies exactly and a
   lossless run-length bitmap of the remaining support, so: frequent
   terms estimate well, rare-but-present terms fall back to a bucket
   average, and absent terms estimate exactly zero (the property that
   conventional bucket histograms lose).

   Run with: dune exec examples/text_search.exe *)

let () =
  let doc = Xc_data.Imdb.generate ~seed:123 ~n_movies:1500 () in
  let synopsis =
    Xcluster.Build.run ~budget:(Xcluster.Build.budget ~bstr_kb:6 ~bval_kb:48 ()) doc
  in
  Format.printf "synopsis: %a@.@." Xcluster.Query.pp_stats synopsis;

  (* Pull a frequent and a rare term out of the actual plot corpus. *)
  let freq = Hashtbl.create 1024 in
  Array.iter
    (fun node ->
      match node.Xc_xml.Node.value with
      | Xc_xml.Value.Text terms ->
        Array.iter
          (fun t ->
            let k = Xc_xml.Dictionary.to_string t in
            Hashtbl.replace freq k (1 + Option.value ~default:0 (Hashtbl.find_opt freq k)))
          terms
      | _ -> ())
    doc.Xc_xml.Document.nodes;
  let ranked =
    Hashtbl.fold (fun w c acc -> (w, c) :: acc) freq []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let frequent, _ = List.nth ranked 3 in
  let mid, _ = List.nth ranked (List.length ranked / 4) in
  let rare, _ = List.nth ranked (List.length ranked - 5) in

  Format.printf "%-54s %10s %10s@." "query" "estimate" "exact";
  let show q =
    let query = Xcluster.Query.parse q in
    Format.printf "%-54s %10.2f %10.0f@." q
      (Xcluster.Query.estimate synopsis query)
      (Xc_twig.Twig_eval.selectivity doc query)
  in
  show (Printf.sprintf "//movie[plot ftcontains(%s)]" frequent);
  show (Printf.sprintf "//movie[plot ftcontains(%s)]" mid);
  show (Printf.sprintf "//movie[plot ftcontains(%s)]" rare);
  show (Printf.sprintf "//movie[plot ftcontains(%s, %s)]" frequent mid);
  (* an absent term: interned into the dictionary but in no document *)
  show "//movie[plot ftcontains(zzneverseen)]";
  Format.printf
    "@.(absent terms estimate exactly 0 — the end-biased design goal)@."
