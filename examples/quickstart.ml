(* Quickstart: summarize a small bibliographic database and estimate the
   selectivity of the paper's introductory query.

   Run with: dune exec examples/quickstart.exe *)

let bibliography_xml =
  {|<dblp>
      <paper><year>2000</year><title>Counting Twig Matches in a Tree</title>
        <abstract>Counting twig matches efficiently using summary structures
        for selectivity estimation in xml databases</abstract></paper>
      <paper><year>2002</year><title>Holistic Twig Joins</title>
        <abstract>Optimal xml pattern matching with holistic join algorithms
        over tree structured data</abstract></paper>
      <paper><year>2004</year><title>Approximate XML Query Answers</title>
        <abstract>A synopsis model for approximate answers of complex xml
        queries using tree synopses</abstract></paper>
      <paper><year>2005</year><title>XCluster Tree Synopses</title>
        <abstract>A unified synopsis framework for xml structure and
        heterogeneous values enabling selectivity estimation</abstract></paper>
      <book><year>1999</year><title>Modern Information Retrieval</title></book>
      <book><year>2003</year><title>Database System Concepts</title></book>
    </dblp>|}

let () =
  (* 1. Parse the XML; the typing table declares which tags hold which
        value types (NUMERIC years, STRING titles, TEXT abstracts). *)
  let typing =
    Xc_xml.Parser.typing_of_assoc
      [ ("year", Xc_xml.Value.Tnumeric);
        ("title", Xc_xml.Value.Tstring);
        ("abstract", Xc_xml.Value.Ttext) ]
  in
  let doc = Xc_xml.Parser.parse_string ~typing bibliography_xml in
  Format.printf "document: %d elements, height %d@."
    (Xc_xml.Document.n_elements doc) doc.Xc_xml.Document.height;

  (* 2. Build the detailed reference synopsis, then compress it into an
        XCluster within a byte budget (structural + value). *)
  let reference = Xcluster.Build.reference doc in
  Format.printf "reference synopsis: %a@." Xcluster.Build.builder_stats reference;
  let synopsis = Xcluster.Build.compress (Xcluster.Build.budget ~bstr_kb:1 ~bval_kb:2 ()) reference in
  Format.printf "budgeted XCluster:  %a@." Xcluster.Query.pp_stats synopsis;

  (* 3. Ask the paper's introductory query: papers after 2000 whose
        abstract mentions "synopsis" and "xml", projecting titles that
        contain the substring "Tree". *)
  let query =
    Xcluster.Query.parse
      "//paper[year > 2000][abstract ftcontains(synopsis, xml)]/title[contains(Tree)]"
  in
  Format.printf "@.query: %a@." Xc_twig.Twig_query.pp query;
  let exact = Xc_twig.Twig_eval.selectivity doc query in
  let estimate = Xcluster.Query.estimate synopsis query in
  Format.printf "exact selectivity:     %.0f binding tuples@." exact;
  Format.printf "estimated selectivity: %.2f binding tuples@." estimate;

  (* 4. A few more predicate flavours. *)
  List.iter
    (fun q ->
      let query = Xcluster.Query.parse q in
      Format.printf "%-58s exact=%-4.0f est=%.2f@." q
        (Xc_twig.Twig_eval.selectivity doc query)
        (Xcluster.Query.estimate synopsis query))
    [ "//paper"; "//paper[year in 2000..2003]"; "//book/title[contains(base)]";
      "//paper[abstract ftcontains(twig)]"; "//*[year < 2000]" ];

  (* 5. Estimation ran through the compiled pipeline: the per-synopsis
        plan cache and reach memo show up in the metrics snapshot. *)
  Format.printf "@.pipeline metrics: %s@." (Xcluster.Metrics.json ())
