(* Bibliography example: a full round trip through the library —
   generate a data set, serialize to XML text, re-parse it with a typing
   table, summarize at several budgets, and watch estimate quality change.

   Run with: dune exec examples/bibliography.exe *)

let () =
  (* Generate an IMDB-flavoured document and serialize it, as a stand-in
     for "a file you got from somewhere". *)
  let original = Xc_data.Imdb.generate ~seed:77 ~n_movies:600 () in
  let xml_text = Xc_xml.Writer.to_string original in
  Format.printf "serialized %d elements to %d KB of XML@."
    (Xc_xml.Document.n_elements original)
    (String.length xml_text / 1024);

  (* Parse it back: the generator publishes its tag->type table. *)
  let typing = Xc_xml.Parser.typing_of_assoc Xc_data.Imdb.value_typing in
  let doc = Xc_xml.Parser.parse_string ~typing xml_text in
  Format.printf "reparsed: %d elements@." (Xc_xml.Document.n_elements doc);

  (* Inspect the document's paths and value types. *)
  let stats = Xc_xml.Stats.compute doc in
  Format.printf "@.value-bearing paths:@.";
  List.iter
    (fun p ->
      Format.printf "  %a  (%a, %d elements)@." Xc_xml.Stats.pp_path
        p.Xc_xml.Stats.path Xc_xml.Value.pp_vtype p.Xc_xml.Stats.vtype
        p.Xc_xml.Stats.elements)
    (Xc_xml.Stats.value_paths stats);

  (* Summarize at three budgets and compare estimates on a few twigs. *)
  let reference = Xcluster.Build.reference doc in
  let queries =
    [ "//movie[year > 1990]/title";
      "//movie[genre contains(Com)]";
      "//movie[plot ftcontains(xml)]";
      "//actor[year < 1960]/name";
      "//movie[box_office > 100000][year > 1995]";
      "//movie[cast/actor/role]/director/name" ]
  in
  Format.printf "@.%-48s %10s" "query" "exact";
  let budgets = [ (1, 8); (4, 32); (16, 128) ] in
  List.iter (fun (s, v) -> Format.printf " %6dKB" (s + v)) budgets;
  Format.printf "@.";
  let synopses =
    List.map
      (fun (bstr_kb, bval_kb) ->
        Xcluster.Build.compress (Xcluster.Build.budget ~bstr_kb ~bval_kb ()) reference)
      budgets
  in
  List.iter
    (fun q ->
      let query = Xcluster.Query.parse q in
      Format.printf "%-48s %10.0f" q (Xc_twig.Twig_eval.selectivity doc query);
      List.iter
        (fun syn -> Format.printf " %8.1f" (Xcluster.Query.estimate syn query))
        synopses;
      Format.printf "@.")
    queries;
  Format.printf
    "@.(estimates sharpen from left to right as the synopsis budget grows)@."
