(* Auction-site example: use XCluster estimates the way a query
   optimizer would — to choose between alternative twig evaluation
   orders on an XMark-like auction database.

   A twig like //open_auction[initial > N][bidder/increase > M] can be
   driven by either predicate first; the cheaper plan starts from the
   more selective one. The optimizer only has the synopsis, so plan
   choice quality depends on estimate quality.

   Run with: dune exec examples/auction_tuning.exe *)

let () =
  let doc = Xc_data.Xmark.generate ~seed:99 ~scale:0.15 () in
  Format.printf "auction site: %d elements@." (Xc_xml.Document.n_elements doc);

  let synopsis =
    Xcluster.Build.run ~min_extent:32
      ~budget:(Xcluster.Build.budget ~bstr_kb:10 ~bval_kb:80 ())
      doc
  in
  Format.printf "synopsis: %a@.@." Xcluster.Query.pp_stats synopsis;

  (* Candidate driving predicates for a twig over open auctions. *)
  let candidates =
    [ "//open_auction[initial > 150]";
      "//open_auction[bidder/increase > 50]";
      "//open_auction[annotation ftcontains(gargarmon)]";
      "//open_auction[reserve > 200]" ]
  in
  Format.printf "%-52s %10s %10s@." "driving predicate" "estimate" "exact";
  let scored =
    List.map
      (fun q ->
        let query = Xcluster.Query.parse q in
        let est = Xcluster.Query.estimate synopsis query in
        let exact = Xc_twig.Twig_eval.selectivity doc query in
        Format.printf "%-52s %10.1f %10.0f@." q est exact;
        (q, est, exact))
      candidates
  in
  let best_by f =
    List.fold_left (fun acc x -> if f x < f acc then x else acc) (List.hd scored)
      scored
  in
  let pick_est, _, _ = best_by (fun (_, e, _) -> e) in
  let pick_exact, _, _ = best_by (fun (_, _, e) -> e) in
  Format.printf "@.optimizer picks (by estimate): %s@." pick_est;
  Format.printf "oracle picks (by exact count):  %s@." pick_exact;
  Format.printf
    (if String.equal pick_est pick_exact then
       "the synopsis leads the optimizer to the oracle plan@."
     else "the synopsis mis-ranks the plans at this budget — try a larger one@.")
