module Heap = Xc_util.Heap
module B = Synopsis.Builder
module Levels = Synopsis.Levels

let src = Logs.Src.create "xcluster.build" ~doc:"XCLUSTERBUILD progress"

module Log = (val Logs.src_log src : Logs.LOG)

type budget = {
  bstr : int;
  bval : int;
  pool : Pool.config;
}

type params = budget

let default_bstr_kb = 20
let default_bval_kb = 150

let budget ?(pool = Pool.default_config) ?(bstr_kb = default_bstr_kb)
    ?(bval_kb = default_bval_kb) () =
  { bstr = Size.kb bstr_kb; bval = Size.kb bval_kb; pool }

let budget_bytes ?(pool = Pool.default_config) ~bstr ~bval () = { bstr; bval; pool }

let budget_split ?(pool = Pool.default_config) ~total_kb ~ratio () =
  if total_kb <= 0 then invalid_arg "Build.budget_split: non-positive budget";
  if ratio < 0.0 || ratio > 1.0 then invalid_arg "Build.budget_split: ratio outside [0,1]";
  (* rounding can push ratio·total above total (e.g. ratio 1.0 on a small
     odd total), which would make the value budget negative — clamp both
     sides so bstr + bval = total always holds *)
  let bstr_kb =
    min total_kb (max 0 (int_of_float (Float.round (ratio *. float_of_int total_kb))))
  in
  budget ~pool ~bstr_kb ~bval_kb:(total_kb - bstr_kb) ()

let params ?pool ~bstr_kb ~bval_kb () = budget ?pool ~bstr_kb ~bval_kb ()

(* ---- phase 1: structure-value merge ---------------------------------- *)

let phase1_merge params syn =
  let str_size = ref (B.structural_bytes syn) in
  if !str_size > params.bstr then begin
    let levels = ref (Levels.compute syn) in
    let level = ref 1 in
    let pool = ref (Pool.build params.pool syn ~levels:!levels ~level:!level) in
    let max_new_level = ref 0 in
    let exhausted = ref false in
    while !str_size > params.bstr && not !exhausted do
      (* replenish the pool when it runs low (Fig. 5, lines 8-9) *)
      if Heap.length !pool <= params.pool.hl then begin
        levels := Levels.compute syn;
        let lmax = Levels.max_level !levels in
        let next_level = max (!max_new_level + 1) (!level + 1) in
        level := min next_level (lmax + 1);
        pool := Pool.build params.pool syn ~levels:!levels ~level:!level;
        max_new_level := 0;
        (* if even the full-level pool is empty, nothing can merge *)
        while Heap.is_empty !pool && !level <= lmax do
          level := !level + 1;
          pool := Pool.build params.pool syn ~levels:!levels ~level:!level
        done;
        if Heap.is_empty !pool then exhausted := true
      end;
      if not !exhausted then begin
        match Pool.pop_valid params.pool syn !pool with
        | None -> () (* loop back to the replenish branch *)
        | Some cand ->
          let lu = Levels.get !levels ~default:0 cand.Pool.u in
          let lv = Levels.get !levels ~default:0 cand.Pool.v in
          (* pop_valid revalidated the candidate, so its [saved] is
             exact on the current graph — no recompute needed *)
          let w = Merge.apply syn cand.Pool.u cand.Pool.v in
          str_size := !str_size - cand.Pool.saved;
          let lw = min lu lv in
          Levels.set !levels (B.sid w) lw;
          if lw > !max_new_level then max_new_level := lw;
          Pool.push_neighbors params.pool syn !pool ~levels:!levels ~level:!level w
      end
    done;
    Log.debug (fun m ->
        m "phase1 done: %d nodes, %a structural" (B.n_nodes syn) Size.pp_bytes
          !str_size)
  end

(* ---- localized phase-1 repair (incremental updates) ------------------- *)

(* After Update has applied subtree deltas, only the dirty clusters and
   their group peers can host profitable merges: repair seeds the pool
   from the frontier ({!Pool.build_frontier}) and merges until the
   structural budget holds again. If the localized pool runs dry while
   the synopsis is still over budget (a large perturbation), repair
   widens once to the full bottom-up build — counted, so the bench can
   report how often locality was enough. *)
let phase1_repair params syn ~frontier =
  let str_size = ref (B.structural_bytes syn) in
  let merges = ref 0 in
  if !str_size > params.bstr then begin
    let levels = Levels.compute syn in
    let pool = Pool.build_frontier params.pool syn ~levels ~frontier in
    let exhausted = ref false in
    while !str_size > params.bstr && not !exhausted do
      match Pool.pop_valid params.pool syn pool with
      | Some cand ->
        let lu = Levels.get levels ~default:0 cand.Pool.u in
        let lv = Levels.get levels ~default:0 cand.Pool.v in
        let w = Merge.apply syn cand.Pool.u cand.Pool.v in
        str_size := !str_size - cand.Pool.saved;
        incr merges;
        Levels.set levels (B.sid w) (min lu lv);
        Pool.push_neighbors params.pool syn pool ~levels ~level:max_int w
      | None -> exhausted := true
    done;
    if !str_size > params.bstr then begin
      Xc_util.Metrics.(incr global "update.repair_widened");
      let before = B.n_nodes syn in
      phase1_merge params syn;
      merges := !merges + (before - B.n_nodes syn);
      str_size := B.structural_bytes syn
    end;
    Log.debug (fun m ->
        m "phase1 repair done: %d merges, %d nodes, %a structural" !merges
          (B.n_nodes syn) Size.pp_bytes !str_size)
  end;
  !merges

(* ---- phase 2: value-summary compression ------------------------------ *)

(* Exactly one heap entry exists per node at any time (a node's summary
   changes only when its entry is popped, after which a fresh entry is
   pushed), so entries are never stale and each can carry the
   [Value_summary.step] of its preview: the pop applies the carried
   result instead of redoing the preview's search.

   The [full_scan] config keeps the historical two-pass form —
   preview via {!Delta.compression_delta}, then a from-scratch
   {!Xc_vsumm.Value_summary.apply_compression} at pop — as the
   sequential-baseline leg of the construction benchmark. Both paths
   walk the same compression sequence and produce identical synopses. *)
let compression_push params heap syn node =
  if params.pool.Pool.full_scan then (
    match Delta.compression_delta syn node with
    | Some (delta, saved) ->
      Heap.push heap (Delta.marginal_loss delta saved) (B.sid node, None)
    | None -> ())
  else
    match Delta.compression_step syn node with
    | Some (delta, step) ->
      Heap.push heap
        (Delta.marginal_loss delta step.Xc_vsumm.Value_summary.saved)
        (B.sid node, Some step)
    | None -> ()

(* Pop/apply/re-push until the value budget holds or the heap is dry;
   both phase2_compress and the localized repair drive this loop, they
   differ only in how the heap is seeded. *)
let compression_loop params heap syn val_size =
  let exhausted = ref false in
  while !val_size > params.bval && not !exhausted do
    match Heap.pop heap with
    | None -> exhausted := true
    | Some (_, (sid, step)) ->
      Xc_util.Metrics.(incr global "build.compression_steps");
      let node = B.find syn sid in
      let before = Xc_vsumm.Value_summary.size_bytes (B.vsumm node) in
      let vsumm' =
        match step with
        | Some s -> Some (s.Xc_vsumm.Value_summary.apply ())
        | None -> Xc_vsumm.Value_summary.apply_compression (B.vsumm node)
      in
      (match vsumm' with
      | Some vsumm' ->
        B.set_vsumm syn node vsumm';
        let after = Xc_vsumm.Value_summary.size_bytes vsumm' in
        val_size := !val_size - (before - after);
        compression_push params heap syn node
      | None -> ())
  done

let phase2_compress params syn =
  let val_size = ref (B.value_bytes syn) in
  if !val_size > params.bval then begin
    let heap = Heap.create () in
    B.iter (compression_push params heap syn) syn;
    compression_loop params heap syn val_size;
    Log.debug (fun m -> m "phase2 done: %a value bytes" Size.pp_bytes !val_size)
  end

(* Localized phase-2 repair: only the dirty clusters' summaries changed
   (inserts fused fresh detail into them), so only they can have
   profitable compression steps. Seed the heap from the frontier; if
   that is not enough to meet the budget, widen to the full scan once
   (the usual case never needs to: deletes shrink summaries and inserts
   touch a handful of clusters). *)
let phase2_repair params syn ~frontier =
  let val_size = ref (B.value_bytes syn) in
  if !val_size > params.bval then begin
    let heap = Heap.create () in
    List.iter
      (fun sid ->
        if B.mem syn sid then compression_push params heap syn (B.find syn sid))
      (List.sort_uniq Int.compare frontier);
    compression_loop params heap syn val_size;
    if !val_size > params.bval then begin
      Xc_util.Metrics.(incr global "update.compress_widened");
      phase2_compress params syn
    end;
    Log.debug (fun m ->
        m "phase2 repair done: %a value bytes" Size.pp_bytes (B.value_bytes syn))
  end

let run_builder params reference =
  let syn = B.copy reference in
  Xc_util.Metrics.(time global "build.phase1") (fun () -> phase1_merge params syn);
  Xc_util.Metrics.(time global "build.phase2") (fun () -> phase2_compress params syn);
  syn

let run params reference = Synopsis.freeze (run_builder params reference)

(* ---- budget sweeps ---------------------------------------------------- *)

(* The builder-level sweep: one compressed builder snapshot per
   structural budget, sharing the greedy merge prefix. auto_split needs
   the mutable snapshots to re-compress values per candidate. *)
let sweep_builders base ~bstr_kbs reference =
  let desc = List.sort_uniq (fun a b -> Int.compare b a) bstr_kbs in
  let work = B.copy reference in
  let snapshots = Hashtbl.create 8 in
  List.iter
    (fun kb ->
      let p = { base with bstr = Size.kb kb } in
      (* budget 0 = the smallest reachable summary: merge to exhaustion *)
      phase1_merge p work;
      let snap = B.copy work in
      phase2_compress p snap;
      Hashtbl.replace snapshots kb snap)
    desc;
  List.map (fun kb -> (kb, Hashtbl.find snapshots kb)) bstr_kbs

let sweep_at base ~bstr_kbs reference =
  List.map
    (fun (kb, syn) -> (kb, Synopsis.freeze syn))
    (sweep_builders base ~bstr_kbs reference)

let sweep ?(pool = Pool.default_config) ~bval_kb ~bstr_kbs reference =
  sweep_at (budget ~pool ~bstr_kb:0 ~bval_kb ()) ~bstr_kbs reference

(* ---- automated budget split ------------------------------------------- *)

let auto_split ?(ratios = [ 0.0; 0.05; 0.1; 0.2; 0.33; 0.5 ]) ~total_kb ~sample reference =
  if total_kb <= 0 then invalid_arg "Build.auto_split: non-positive budget";
  let candidates =
    List.map
      (fun ratio -> budget_split ~total_kb ~ratio ())
      (List.sort_uniq Float.compare ratios)
  in
  (* structural budgets share the greedy merge prefix; the huge value
     budget makes the sweep's own phase 2 a no-op so each candidate can
     be value-compressed to its own Bval below *)
  let snapshots =
    sweep_builders
      (budget ~bstr_kb:0 ~bval_kb:1_000_000 ())
      ~bstr_kbs:(List.map (fun b -> b.bstr / 1024) candidates)
      reference
  in
  let scored =
    List.map
      (fun b ->
        let structural = List.assoc (b.bstr / 1024) snapshots in
        let syn = B.copy structural in
        phase2_compress b syn;
        let sealed = Synopsis.freeze syn in
        (sample sealed, b, sealed))
      candidates
  in
  match scored with
  | [] -> invalid_arg "Build.auto_split: no candidate ratios"
  | first :: rest ->
    let _, best_p, best_syn =
      List.fold_left
        (fun (berr, bp, bs) (err, p, s) -> if err < berr then (err, p, s) else (berr, bp, bs))
        first rest
    in
    (best_p, best_syn)
