module Vs = Xc_vsumm.Value_summary
module B = Synopsis.Builder

(* Structural dot products over the union of child edges of u and v,
   including the implicit self query (A=1, B=1, W=1 component).
   A_c = count(u,c), B_c = count(v,c), W_c = (|u|A_c + |v|B_c)/|w|,
   with child references to u or v remapped onto w. *)
(* Per-domain scratch for the child-edge gather below: one evaluation
   per merge candidate, also from parallel scoring workers. Flat
   parallel arrays with linear search — the merged child set is small
   (a handful of distinct labels), so a linear probe beats hashing and
   allocates nothing; accumulation iterates in insertion order, which
   depends only on the builder's edge tables, never on a hash layout. *)
type scratch = {
  mutable sids : int array;
  mutable fa : float array;
  mutable fb : float array;
  mutable len : int;
}

let dots_scratch : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { sids = Array.make 64 0; fa = Array.make 64 0.0; fb = Array.make 64 0.0;
        len = 0 })

let scratch_slot sc sid =
  let n = sc.len in
  let sids = sc.sids in
  let rec find i = if i >= n then -1 else if Array.unsafe_get sids i = sid then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then i
  else begin
    if n = Array.length sc.sids then begin
      let grow a zero =
        let a' = Array.make (2 * n) zero in
        Array.blit a 0 a' 0 n;
        a'
      in
      sc.sids <- grow sc.sids 0;
      sc.fa <- grow sc.fa 0.0;
      sc.fb <- grow sc.fb 0.0
    end;
    sc.sids.(n) <- sid;
    sc.fa.(n) <- 0.0;
    sc.fb.(n) <- 0.0;
    sc.len <- n + 1;
    n
  end

(* Also counts the merged node's distinct children — the gather already
   visits every child edge of u and v, so [saved_bytes] callers can
   reuse the count instead of re-gathering (see
   {!merge_delta_counted}). *)
let structural_dots syn u v =
  let cu = float_of_int (B.count u) and cv = float_of_int (B.count v) in
  let cw = cu +. cv in
  let is_uv sid = sid = B.sid u || sid = B.sid v in
  (* gather A and B keyed by the merged child identity *)
  let sc = Domain.DLS.get dots_scratch in
  sc.len <- 0;
  let self = ref false in
  let gather node side =
    let self_acc = ref 0.0 in
    B.succ syn node (fun sid avg ->
        if is_uv sid then begin
          self := true;
          self_acc := !self_acc +. avg
        end
        else begin
          let i = scratch_slot sc sid in
          if side = `U then sc.fa.(i) <- sc.fa.(i) +. avg
          else sc.fb.(i) <- sc.fb.(i) +. avg
        end);
    !self_acc
  in
  let self_u = gather u `U and self_v = gather v `V in
  let merged_children = sc.len + if !self then 1 else 0 in
  if self_u > 0.0 || self_v > 0.0 then begin
    (* merged self-loop child *)
    let i = scratch_slot sc (-1) in
    sc.fa.(i) <- sc.fa.(i) +. self_u;
    sc.fb.(i) <- sc.fb.(i) +. self_v
  end;
  let saa = ref 1.0 and saw = ref 1.0 and sbb = ref 1.0 and sbw = ref 1.0
  and sww = ref 1.0 in
  (* the initial 1.0 is the implicit self query with A = B = W = 1 *)
  for i = 0 to sc.len - 1 do
    let a = Array.unsafe_get sc.fa i and b = Array.unsafe_get sc.fb i in
    let w = ((cu *. a) +. (cv *. b)) /. cw in
    saa := !saa +. (a *. a);
    saw := !saw +. (a *. w);
    sbb := !sbb +. (b *. b);
    sbw := !sbw +. (b *. w);
    sww := !sww +. (w *. w)
  done;
  (!saa, !saw, !sbb, !sbw, !sww, merged_children)

let merge_delta_counted ?(structural_only = false) syn u v =
  let cu = float_of_int (B.count u) and cv = float_of_int (B.count v) in
  let cw = cu +. cv in
  let wu = cu /. cw and wv = cv /. cw in
  let saa, saw, sbb, sbw, sww, merged_children = structural_dots syn u v in
  let puu, pvv, puv =
    if structural_only then (1.0, 1.0, 1.0)
    else Vs.pred_dots (B.vsumm u) (B.vsumm v)
  in
  (* predicate-space dots against σ_w = wu·σ_u + wv·σ_v *)
  let puw = (wu *. puu) +. (wv *. puv) in
  let pvw = (wu *. puv) +. (wv *. pvv) in
  let pww = (wu *. wu *. puu) +. (2.0 *. wu *. wv *. puv) +. (wv *. wv *. pvv) in
  let du = (puu *. saa) -. (2.0 *. puw *. saw) +. (pww *. sww) in
  let dv = (pvv *. sbb) -. (2.0 *. pvw *. sbw) +. (pww *. sww) in
  (* numerical noise can push the quadratic forms slightly negative *)
  (Float.max 0.0 ((cu *. du) +. (cv *. dv)), merged_children)

let merge_delta ?structural_only syn u v =
  fst (merge_delta_counted ?structural_only syn u v)

let compression_step syn u =
  match Vs.compress_step (B.vsumm u) with
  | None -> None
  | Some step ->
    let struct_factor = ref 1.0 in
    B.succ syn u (fun _ avg -> struct_factor := !struct_factor +. (avg *. avg));
    let delta = float_of_int (B.count u) *. !struct_factor *. step.Vs.err in
    Some (delta, step)

let compression_delta syn u =
  Option.map (fun (delta, step) -> (delta, step.Vs.saved)) (compression_step syn u)

let marginal_loss delta saved = delta /. float_of_int (max 1 saved)
