module Vs = Xc_vsumm.Value_summary
module B = Synopsis.Builder

(* Structural dot products over the union of child edges of u and v,
   including the implicit self query (A=1, B=1, W=1 component).
   A_c = count(u,c), B_c = count(v,c), W_c = (|u|A_c + |v|B_c)/|w|,
   with child references to u or v remapped onto w. *)
let structural_dots syn u v =
  let cu = float_of_int (B.count u) and cv = float_of_int (B.count v) in
  let cw = cu +. cv in
  let is_uv sid = sid = B.sid u || sid = B.sid v in
  (* gather A and B keyed by the merged child identity *)
  let tbl = Hashtbl.create 8 in
  let gather node side =
    let self_acc = ref 0.0 in
    B.succ syn node (fun sid avg ->
        if is_uv sid then self_acc := !self_acc +. avg
        else begin
          let a, b = Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt tbl sid) in
          Hashtbl.replace tbl sid (if side = `U then (a +. avg, b) else (a, b +. avg))
        end);
    !self_acc
  in
  let self_u = gather u `U and self_v = gather v `V in
  if self_u > 0.0 || self_v > 0.0 then begin
    (* merged self-loop child *)
    let a, b = Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt tbl (-1)) in
    Hashtbl.replace tbl (-1) (a +. self_u, b +. self_v)
  end;
  let saa = ref 1.0 and saw = ref 1.0 and sbb = ref 1.0 and sbw = ref 1.0
  and sww = ref 1.0 in
  (* the initial 1.0 is the implicit self query with A = B = W = 1 *)
  Hashtbl.iter
    (fun _ (a, b) ->
      let w = ((cu *. a) +. (cv *. b)) /. cw in
      saa := !saa +. (a *. a);
      saw := !saw +. (a *. w);
      sbb := !sbb +. (b *. b);
      sbw := !sbw +. (b *. w);
      sww := !sww +. (w *. w))
    tbl;
  (!saa, !saw, !sbb, !sbw, !sww)

let merge_delta ?(structural_only = false) syn u v =
  let cu = float_of_int (B.count u) and cv = float_of_int (B.count v) in
  let cw = cu +. cv in
  let wu = cu /. cw and wv = cv /. cw in
  let saa, saw, sbb, sbw, sww = structural_dots syn u v in
  let puu, pvv, puv =
    if structural_only then (1.0, 1.0, 1.0)
    else Vs.pred_dots (B.vsumm u) (B.vsumm v)
  in
  (* predicate-space dots against σ_w = wu·σ_u + wv·σ_v *)
  let puw = (wu *. puu) +. (wv *. puv) in
  let pvw = (wu *. puv) +. (wv *. pvv) in
  let pww = (wu *. wu *. puu) +. (2.0 *. wu *. wv *. puv) +. (wv *. wv *. pvv) in
  let du = (puu *. saa) -. (2.0 *. puw *. saw) +. (pww *. sww) in
  let dv = (pvv *. sbb) -. (2.0 *. pvw *. sbw) +. (pww *. sww) in
  (* numerical noise can push the quadratic forms slightly negative *)
  Float.max 0.0 ((cu *. du) +. (cv *. dv))

let compression_delta syn u =
  match Vs.preview_compression (B.vsumm u) with
  | None -> None
  | Some (pred_err, saved) ->
    let struct_factor = ref 1.0 in
    B.succ syn u (fun _ avg -> struct_factor := !struct_factor +. (avg *. avg));
    let delta = float_of_int (B.count u) *. !struct_factor *. pred_err in
    Some (delta, saved)

let marginal_loss delta saved = delta /. float_of_int (max 1 saved)
