type snode = {
  sid : int;
  label : Xc_xml.Label.t;
  vtype : Xc_xml.Value.vtype;
  mutable count : int;
  mutable vsumm : Xc_vsumm.Value_summary.t;
  children : (int, float) Hashtbl.t;
  parents : (int, unit) Hashtbl.t;
}

type t = {
  nodes : (int, snode) Hashtbl.t;
  mutable root : int;
  mutable next_sid : int;
  mutable doc_height : int;
  mutable generation : int;
  uid : int;
}

let next_uid = ref 0

let fresh_uid () =
  let u = !next_uid in
  incr next_uid;
  u

let create ~doc_height =
  { nodes = Hashtbl.create 256; root = -1; next_sid = 0; doc_height;
    generation = 0; uid = fresh_uid () }

let generation t = t.generation
let uid t = t.uid
let touch t = t.generation <- t.generation + 1

let add_node t ~label ~vtype ~count ~vsumm =
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  let node =
    { sid; label; vtype; count; vsumm;
      children = Hashtbl.create 4;
      parents = Hashtbl.create 4 }
  in
  Hashtbl.replace t.nodes sid node;
  touch t;
  node

let remove_node t sid =
  Hashtbl.remove t.nodes sid;
  touch t
let find t sid = Hashtbl.find t.nodes sid
let mem t sid = Hashtbl.mem t.nodes sid
let root_node t = find t t.root

let set_edge t ~parent ~child avg =
  let p = find t parent and c = find t child in
  if avg <= 0.0 then begin
    Hashtbl.remove p.children child;
    Hashtbl.remove c.parents parent
  end
  else begin
    Hashtbl.replace p.children child avg;
    Hashtbl.replace c.parents parent ()
  end;
  touch t

let set_vsumm t node vsumm =
  node.vsumm <- vsumm;
  touch t

let set_count t node count =
  node.count <- count;
  touch t

let edge_count t ~parent ~child =
  match Hashtbl.find_opt (find t parent).children child with
  | Some avg -> avg
  | None -> 0.0

let n_nodes t = Hashtbl.length t.nodes
let iter f t = Hashtbl.iter (fun _ node -> f node) t.nodes
let fold f init t = Hashtbl.fold (fun _ node acc -> f acc node) t.nodes init
let n_edges t = fold (fun acc node -> acc + Hashtbl.length node.children) 0 t

let children_list t node =
  Hashtbl.fold (fun sid avg acc -> (find t sid, avg) :: acc) node.children []

let parents_list t node =
  Hashtbl.fold (fun sid () acc -> find t sid :: acc) node.parents []

let succ _t node f = Hashtbl.iter f node.children
let pred _t node f = Hashtbl.iter (fun sid () -> f sid) node.parents
let out_degree node = Hashtbl.length node.children
let in_degree node = Hashtbl.length node.parents

let structural_bytes t =
  fold
    (fun acc node -> acc + Size.node_bytes + (Size.edge_bytes * Hashtbl.length node.children))
    0 t

let value_bytes t =
  fold (fun acc node -> acc + Xc_vsumm.Value_summary.size_bytes node.vsumm) 0 t

let n_value_nodes t =
  fold
    (fun acc node ->
      match node.vsumm with
      | Xc_vsumm.Value_summary.Vnone -> acc
      | Xc_vsumm.Value_summary.Vnum _ | Vstr _ | Vtext _ -> acc + 1)
    0 t

let copy t =
  let fresh = Hashtbl.create (Hashtbl.length t.nodes) in
  Hashtbl.iter
    (fun sid node ->
      Hashtbl.replace fresh sid
        { node with
          vsumm = Xc_vsumm.Value_summary.copy node.vsumm;
          children = Hashtbl.copy node.children;
          parents = Hashtbl.copy node.parents })
    t.nodes;
  { nodes = fresh; root = t.root; next_sid = t.next_sid; doc_height = t.doc_height;
    generation = 0; uid = fresh_uid () }

let levels t =
  let levels = Hashtbl.create (n_nodes t) in
  let queue = Queue.create () in
  iter
    (fun node ->
      if Hashtbl.length node.children = 0 then begin
        Hashtbl.replace levels node.sid 0;
        Queue.add node.sid queue
      end)
    t;
  (* multi-source BFS on reversed edges: shortest distance to a leaf *)
  let max_finite = ref 0 in
  while not (Queue.is_empty queue) do
    let sid = Queue.pop queue in
    let level = Hashtbl.find levels sid in
    if level > !max_finite then max_finite := level;
    let node = find t sid in
    Hashtbl.iter
      (fun parent () ->
        if not (Hashtbl.mem levels parent) then begin
          Hashtbl.replace levels parent (level + 1);
          Queue.add parent queue
        end)
      node.parents
  done;
  iter
    (fun node ->
      if not (Hashtbl.mem levels node.sid) then
        Hashtbl.replace levels node.sid (!max_finite + 1))
    t;
  levels

let validate t =
  let problems = ref [] in
  let bad fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  if not (mem t t.root) then bad "root %d missing" t.root;
  iter
    (fun node ->
      if node.count <= 0 then bad "node %d has count %d" node.sid node.count;
      Hashtbl.iter
        (fun child avg ->
          if avg <= 0.0 then bad "edge %d->%d has avg %f" node.sid child avg;
          match Hashtbl.find_opt t.nodes child with
          | None -> bad "edge %d->%d dangles" node.sid child
          | Some c ->
            if not (Hashtbl.mem c.parents node.sid) then
              bad "edge %d->%d missing reverse index" node.sid child)
        node.children;
      Hashtbl.iter
        (fun parent () ->
          match Hashtbl.find_opt t.nodes parent with
          | None -> bad "parent %d of %d dangles" parent node.sid
          | Some p ->
            if not (Hashtbl.mem p.children node.sid) then
              bad "parent edge %d->%d missing forward index" parent node.sid)
        node.parents)
    t;
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " ps)

let pp_stats ppf t =
  Format.fprintf ppf "synopsis(nodes=%d, edges=%d, str=%a, val=%a)" (n_nodes t)
    (n_edges t) Size.pp_bytes (structural_bytes t) Size.pp_bytes (value_bytes t)
