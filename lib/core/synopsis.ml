let next_uid = ref 0

let fresh_uid () =
  let u = !next_uid in
  incr next_uid;
  u

module Builder = struct
  type node = {
    sid : int;
    label : Xc_xml.Label.t;
    vtype : Xc_xml.Value.vtype;
    mutable count : int;
    mutable vsumm : Xc_vsumm.Value_summary.t;
    children : (int, float) Hashtbl.t;
    parents : (int, unit) Hashtbl.t;
  }

  (* group members as a dynamic array kept sorted by (count, sid): a
     node's count never changes while it is grouped (merges create new
     nodes), so membership updates are pure insert/remove — and the
     merge pool can binary-search a node's count and expand outward to
     find its nearest peers instead of scanning the whole group *)
  type members = {
    mutable marr : node array;
    mutable mlen : int;
  }

  type t = {
    nodes : (int, node) Hashtbl.t;
    groups : (int * int * int, members) Hashtbl.t;
    (* group_key -> member set, maintained incrementally so the merge
       pool never has to rescan all nodes to find a node's peers *)
    mutable root : int;
    mutable next_sid : int;
    doc_height : int;
    uid : int;
  }

  let create ~doc_height =
    { nodes = Hashtbl.create 256; groups = Hashtbl.create 64; root = -1;
      next_sid = 0; doc_height; uid = fresh_uid () }

  let vsumm_kind = function
    | Xc_vsumm.Value_summary.Vnone -> 0
    | Xc_vsumm.Value_summary.Vnum _ -> 1
    | Xc_vsumm.Value_summary.Vstr _ -> 2
    | Xc_vsumm.Value_summary.Vtext _ -> 3

  let vtype_tag = function
    | Xc_xml.Value.Tnull -> 0
    | Xc_xml.Value.Tnumeric -> 1
    | Xc_xml.Value.Tstring -> 2
    | Xc_xml.Value.Ttext -> 3

  let group_key node =
    ((node.label :> int), vtype_tag node.vtype, vsumm_kind node.vsumm)

  let member_before a b = a.count < b.count || (a.count = b.count && a.sid < b.sid)

  (* leftmost index whose member is not before [node] — the insertion
     point, and the node's own slot when present ((count, sid) is
     unique within a group) *)
  let member_pos m node =
    let lo = ref 0 and hi = ref m.mlen in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if member_before m.marr.(mid) node then lo := mid + 1 else hi := mid
    done;
    !lo

  let group_add t node =
    let key = group_key node in
    let m =
      match Hashtbl.find_opt t.groups key with
      | Some m -> m
      | None ->
        let m = { marr = Array.make 8 node; mlen = 0 } in
        Hashtbl.add t.groups key m;
        m
    in
    if m.mlen = Array.length m.marr then begin
      let bigger = Array.make (2 * m.mlen) node in
      Array.blit m.marr 0 bigger 0 m.mlen;
      m.marr <- bigger
    end;
    let pos = member_pos m node in
    Array.blit m.marr pos m.marr (pos + 1) (m.mlen - pos);
    m.marr.(pos) <- node;
    m.mlen <- m.mlen + 1

  let group_delete t node =
    let key = group_key node in
    match Hashtbl.find_opt t.groups key with
    | None -> ()
    | Some m ->
      let pos = member_pos m node in
      if pos < m.mlen && m.marr.(pos).sid = node.sid then begin
        Array.blit m.marr (pos + 1) m.marr pos (m.mlen - pos - 1);
        m.mlen <- m.mlen - 1;
        if m.mlen = 0 then Hashtbl.remove t.groups key
        else m.marr.(m.mlen) <- m.marr.(0) (* drop the dangling reference *)
      end

  let uid t = t.uid
  let doc_height t = t.doc_height
  let root t = t.root
  let set_root t sid = t.root <- sid

  let make_node ~sid ~label ~vtype ~count ~vsumm =
    { sid; label; vtype; count; vsumm;
      children = Hashtbl.create 4;
      parents = Hashtbl.create 4 }

  let add_node t ~label ~vtype ~count ~vsumm =
    let sid = t.next_sid in
    t.next_sid <- sid + 1;
    let node = make_node ~sid ~label ~vtype ~count ~vsumm in
    Hashtbl.replace t.nodes sid node;
    group_add t node;
    node

  let add_node_at t ~sid ~label ~vtype ~count ~vsumm =
    if Hashtbl.mem t.nodes sid then
      invalid_arg (Printf.sprintf "Synopsis.Builder.add_node_at: sid %d in use" sid);
    let node = make_node ~sid ~label ~vtype ~count ~vsumm in
    Hashtbl.replace t.nodes sid node;
    if sid >= t.next_sid then t.next_sid <- sid + 1;
    group_add t node;
    node

  let remove_node t sid =
    (match Hashtbl.find_opt t.nodes sid with
    | Some node -> group_delete t node
    | None -> ());
    Hashtbl.remove t.nodes sid
  let find t sid = Hashtbl.find t.nodes sid
  let mem t sid = Hashtbl.mem t.nodes sid
  let root_node t = find t t.root
  let sid node = node.sid
  let label node = node.label
  let vtype node = node.vtype
  let count node = node.count
  let vsumm node = node.vsumm

  let set_edge t ~parent ~child avg =
    let p = find t parent and c = find t child in
    if avg <= 0.0 then begin
      Hashtbl.remove p.children child;
      Hashtbl.remove c.parents parent
    end
    else begin
      Hashtbl.replace p.children child avg;
      Hashtbl.replace c.parents parent ()
    end

  let edge_count t ~parent ~child =
    match Hashtbl.find_opt (find t parent).children child with
    | Some avg -> avg
    | None -> 0.0

  let set_vsumm t node vsumm =
    (* the summary kind is part of the group key; compression keeps the
       kind in practice, but a kind change must re-home the node *)
    if vsumm_kind node.vsumm = vsumm_kind vsumm then
      node.vsumm <- vsumm
    else begin
      group_delete t node;
      node.vsumm <- vsumm;
      group_add t node
    end

  let set_count t node count =
    (* the group index is sorted by count — re-home the node *)
    group_delete t node;
    node.count <- count;
    group_add t node
  let n_nodes t = Hashtbl.length t.nodes
  let iter f t = Hashtbl.iter (fun _ node -> f node) t.nodes
  let fold f init t = Hashtbl.fold (fun _ node acc -> f acc node) t.nodes init
  let n_edges t = fold (fun acc node -> acc + Hashtbl.length node.children) 0 t

  let children_list t node =
    Hashtbl.fold (fun sid avg acc -> (find t sid, avg) :: acc) node.children []

  let parents_list t node =
    Hashtbl.fold (fun sid () acc -> find t sid :: acc) node.parents []

  let succ _t node f = Hashtbl.iter f node.children
  let pred _t node f = Hashtbl.iter (fun sid () -> f sid) node.parents

  let child_avg node child =
    Option.value ~default:0.0 (Hashtbl.find_opt node.children child)

  let has_parent node parent = Hashtbl.mem node.parents parent
  let out_degree node = Hashtbl.length node.children
  let in_degree node = Hashtbl.length node.parents

  let group_keys t = Hashtbl.fold (fun key _ acc -> key :: acc) t.groups []

  let group_size t key =
    match Hashtbl.find_opt t.groups key with
    | Some m -> m.mlen
    | None -> 0

  let iter_group t key f =
    match Hashtbl.find_opt t.groups key with
    | Some m ->
      for i = 0 to m.mlen - 1 do
        f m.marr.(i)
      done
    | None -> ()

  let group_members t key =
    match Hashtbl.find_opt t.groups key with
    | Some m -> (m.marr, m.mlen)
    | None -> ([||], 0)

  let structural_bytes t =
    fold
      (fun acc node ->
        acc + Size.node_bytes + (Size.edge_bytes * Hashtbl.length node.children))
      0 t

  let value_bytes t =
    fold (fun acc node -> acc + Xc_vsumm.Value_summary.size_bytes node.vsumm) 0 t

  let n_value_nodes t =
    fold
      (fun acc node ->
        match node.vsumm with
        | Xc_vsumm.Value_summary.Vnone -> acc
        | Xc_vsumm.Value_summary.Vnum _ | Vstr _ | Vtext _ -> acc + 1)
      0 t

  let copy t =
    let fresh = Hashtbl.create (Hashtbl.length t.nodes) in
    Hashtbl.iter
      (fun sid node ->
        Hashtbl.replace fresh sid
          { node with
            vsumm = Xc_vsumm.Value_summary.copy node.vsumm;
            children = Hashtbl.copy node.children;
            parents = Hashtbl.copy node.parents })
      t.nodes;
    let t' =
      { nodes = fresh; groups = Hashtbl.create (Hashtbl.length t.groups);
        root = t.root; next_sid = t.next_sid; doc_height = t.doc_height;
        uid = fresh_uid () }
    in
    Hashtbl.iter (fun _ node -> group_add t' node) fresh;
    t'

  let validate t =
    let problems = ref [] in
    let bad fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
    if not (mem t t.root) then bad "root %d missing" t.root;
    iter
      (fun node ->
        if node.count <= 0 then bad "node %d has count %d" node.sid node.count;
        Hashtbl.iter
          (fun child avg ->
            if avg <= 0.0 then bad "edge %d->%d has avg %f" node.sid child avg;
            match Hashtbl.find_opt t.nodes child with
            | None -> bad "edge %d->%d dangles" node.sid child
            | Some c ->
              if not (Hashtbl.mem c.parents node.sid) then
                bad "edge %d->%d missing reverse index" node.sid child)
          node.children;
        Hashtbl.iter
          (fun parent () ->
            match Hashtbl.find_opt t.nodes parent with
            | None -> bad "parent %d of %d dangles" parent node.sid
            | Some p ->
              if not (Hashtbl.mem p.children node.sid) then
                bad "parent edge %d->%d missing forward index" parent node.sid)
          node.parents;
        (match Hashtbl.find_opt t.groups (group_key node) with
        | Some m ->
          let pos = member_pos m node in
          if not (pos < m.mlen && m.marr.(pos) == node) then
            bad "node %d missing from its group" node.sid
        | None -> bad "node %d missing from its group" node.sid))
      t;
    Hashtbl.iter
      (fun key m ->
        for i = 0 to m.mlen - 1 do
          let member = m.marr.(i) in
          (match Hashtbl.find_opt t.nodes member.sid with
          | Some node when node == member && group_key node = key -> ()
          | Some _ | None -> bad "stale group entry %d" member.sid);
          if i > 0 && not (member_before m.marr.(i - 1) member) then
            bad "group of %d unsorted at %d" member.sid i
        done)
      t.groups;
    match !problems with
    | [] -> Ok ()
    | ps -> Error (String.concat "; " ps)

  let pp_stats ppf t =
    Format.fprintf ppf "synopsis(nodes=%d, edges=%d, str=%a, val=%a)" (n_nodes t)
      (n_edges t) Size.pp_bytes (structural_bytes t) Size.pp_bytes (value_bytes t)
end

module Levels = struct
  type t = {
    tbl : (int, int) Hashtbl.t;
    mutable lmax : int;
  }

  let set t sid level =
    Hashtbl.replace t.tbl sid level;
    if level > t.lmax then t.lmax <- level

  let compute syn =
    let t = { tbl = Hashtbl.create (Builder.n_nodes syn); lmax = 0 } in
    let queue = Queue.create () in
    Builder.iter
      (fun node ->
        if Builder.out_degree node = 0 then begin
          Hashtbl.replace t.tbl (Builder.sid node) 0;
          Queue.add (Builder.sid node) queue
        end)
      syn;
    (* multi-source BFS on reversed edges: shortest distance to a leaf *)
    let max_finite = ref 0 in
    while not (Queue.is_empty queue) do
      let sid = Queue.pop queue in
      let level = Hashtbl.find t.tbl sid in
      if level > !max_finite then max_finite := level;
      let node = Builder.find syn sid in
      Builder.pred syn node (fun parent ->
          if not (Hashtbl.mem t.tbl parent) then begin
            Hashtbl.replace t.tbl parent (level + 1);
            Queue.add parent queue
          end)
    done;
    Builder.iter
      (fun node ->
        if not (Hashtbl.mem t.tbl (Builder.sid node)) then
          Hashtbl.replace t.tbl (Builder.sid node) (!max_finite + 1))
      syn;
    t.lmax <- Hashtbl.fold (fun _ l acc -> max l acc) t.tbl 0;
    t

  let level t sid = Hashtbl.find_opt t.tbl sid
  let get t ~default sid = Option.value ~default (Hashtbl.find_opt t.tbl sid)
  let iter_levels f t = Hashtbl.iter f t.tbl
  let max_level t = t.lmax
end

module Sealed = struct
  module BA1 = Bigarray.Array1

  type ba_f = (float, Bigarray.float64_elt, Bigarray.c_layout) BA1.t
  type ba_i = (int, Bigarray.int_elt, Bigarray.c_layout) BA1.t

  (* The numeric backing store is flat and unboxed: CSR offsets/targets
     and edge averages live in Bigarrays so the estimation kernels run
     over contiguous untagged words — and so a mmap-backed codec can
     hand us file-backed slices without copying. Value summaries are
     lazy cells: a codec that defers per-node decoding supplies
     [vsumm_decode], and [on_first_touch] lets it defer integrity
     verification of the numeric sections until the first structural
     access. A synopsis built by {!freeze} has everything materialized
     and both hooks absent. *)
  type t = {
    uid : int;
    doc_height : int;
    root : int;  (* index *)
    sids : int array;  (* ascending; index -> sid *)
    labels : Xc_xml.Label.t array;
    vtypes : Xc_xml.Value.vtype array;
    counts : int array;
    fcounts : ba_f;  (* float_of_int counts, for the docnode kernel *)
    vsumms : Xc_vsumm.Value_summary.t option array;
    vsumm_decode : (int -> Xc_vsumm.Value_summary.t) option;
    child_off : ba_i;  (* length n+1 *)
    child_idx : ba_i;  (* sorted ascending within each row *)
    child_avg : ba_f;
    parent_off : ba_i;
    parent_idx : ba_i;
    mutable on_first_touch : (unit -> unit) option;
  }

  let ba_i_of_array (a : int array) : ba_i =
    let b = BA1.create Bigarray.int Bigarray.c_layout (Array.length a) in
    Array.iteri (fun i v -> BA1.unsafe_set b i v) a;
    b

  let ba_f_of_array (a : float array) : ba_f =
    let b = BA1.create Bigarray.float64 Bigarray.c_layout (Array.length a) in
    Array.iteri (fun i v -> BA1.unsafe_set b i v) a;
    b

  let array_of_ba_i (b : ba_i) = Array.init (BA1.dim b) (fun i -> BA1.unsafe_get b i)
  let array_of_ba_f (b : ba_f) = Array.init (BA1.dim b) (fun i -> BA1.unsafe_get b i)

  (* Run the deferred-verification hook exactly once, before the first
     access to the numeric backing store. On failure the hook stays
     armed so every subsequent access re-raises instead of silently
     serving unverified data. *)
  let touch t =
    match t.on_first_touch with
    | None -> ()
    | Some f ->
      f ();
      t.on_first_touch <- None

  let uid t = t.uid
  let doc_height t = t.doc_height
  let n_nodes t = Array.length t.sids
  let n_edges t = BA1.dim t.child_idx
  let root t = t.root
  let root_sid t = t.sids.(t.root)
  let sid_of_index t i = t.sids.(i)

  let index_of_sid t sid =
    let lo = ref 0 and hi = ref (Array.length t.sids - 1) in
    let found = ref None in
    while !found = None && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let s = t.sids.(mid) in
      if s = sid then found := Some mid
      else if s < sid then lo := mid + 1
      else hi := mid - 1
    done;
    !found

  let label t i = t.labels.(i)
  let vtype t i = t.vtypes.(i)
  let count t i = t.counts.(i)

  let vsumm t i =
    match t.vsumms.(i) with
    | Some v -> v
    | None -> (
      match t.vsumm_decode with
      | None ->
        (* the freeze path fills every cell; only a lazy codec load
           leaves holes, and it always supplies the decoder *)
        invalid_arg "Synopsis.Sealed.vsumm: missing summary without a decoder"
      | Some decode ->
        let v = decode i in
        t.vsumms.(i) <- Some v;
        v)

  let labels t = t.labels
  let counts t = t.counts

  (* The unboxed hot-path views. Touching any of them runs the codec's
     deferred verification hook first (a cleared-pointer test once
     verification has passed). *)
  let fcounts t = touch t; t.fcounts
  let child_off_ba t = touch t; t.child_off
  let child_idx_ba t = touch t; t.child_idx
  let child_avg_ba t = touch t; t.child_avg
  let parent_off_ba t = touch t; t.parent_off
  let parent_idx_ba t = touch t; t.parent_idx

  (* materializing compatibility views (cold paths hoist these once) *)
  let child_off t = array_of_ba_i (child_off_ba t)
  let child_idx t = array_of_ba_i (child_idx_ba t)
  let child_avg t = array_of_ba_f (child_avg_ba t)
  let parent_off t = array_of_ba_i (parent_off_ba t)
  let parent_idx t = array_of_ba_i (parent_idx_ba t)

  (* binary search for [target] in [arr.(lo..hi-1)] (a sorted CSR row) *)
  let row_find (arr : ba_i) lo hi target =
    let lo = ref lo and hi = ref (hi - 1) in
    let found = ref (-1) in
    while !found < 0 && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let v = BA1.get arr mid in
      if v = target then found := mid
      else if v < target then lo := mid + 1
      else hi := mid - 1
    done;
    !found

  let edge_count t ~parent ~child =
    match index_of_sid t parent, index_of_sid t child with
    | Some p, Some c ->
      touch t;
      let e = row_find t.child_idx (BA1.get t.child_off p) (BA1.get t.child_off (p + 1)) c in
      if e < 0 then 0.0 else BA1.get t.child_avg e
    | _ -> 0.0

  let succ t sid =
    match index_of_sid t sid with
    | None -> []
    | Some i ->
      touch t;
      List.init
        (BA1.get t.child_off (i + 1) - BA1.get t.child_off i)
        (fun k ->
          let e = BA1.get t.child_off i + k in
          (t.sids.(BA1.get t.child_idx e), BA1.get t.child_avg e))

  let pred t sid =
    match index_of_sid t sid with
    | None -> []
    | Some i ->
      touch t;
      List.init
        (BA1.get t.parent_off (i + 1) - BA1.get t.parent_off i)
        (fun k -> t.sids.(BA1.get t.parent_idx (BA1.get t.parent_off i + k)))

  let out_degree t i = touch t; BA1.get t.child_off (i + 1) - BA1.get t.child_off i
  let in_degree t i = touch t; BA1.get t.parent_off (i + 1) - BA1.get t.parent_off i

  let structural_bytes t =
    (Size.node_bytes * n_nodes t) + (Size.edge_bytes * n_edges t)

  let value_bytes t =
    let acc = ref 0 in
    for i = 0 to n_nodes t - 1 do
      acc := !acc + Xc_vsumm.Value_summary.size_bytes (vsumm t i)
    done;
    !acc

  let n_value_nodes t =
    let acc = ref 0 in
    for i = 0 to n_nodes t - 1 do
      match vsumm t i with
      | Xc_vsumm.Value_summary.Vnone -> ()
      | Xc_vsumm.Value_summary.Vnum _ | Vstr _ | Vtext _ -> incr acc
    done;
    !acc

  let validate t =
    touch t;
    let problems = ref [] in
    let bad fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
    let n = n_nodes t in
    if n = 0 then bad "empty synopsis";
    if t.root < 0 || t.root >= n then bad "root index %d out of range" t.root;
    for i = 0 to n - 2 do
      if t.sids.(i) >= t.sids.(i + 1) then bad "sids not strictly ascending at %d" i
    done;
    let check_csr name (off : ba_i) (idx : ba_i) =
      if BA1.dim off <> n + 1 then bad "%s_off length %d" name (BA1.dim off)
      else begin
        if BA1.get off 0 <> 0 || BA1.get off n <> BA1.dim idx then bad "%s_off bounds" name;
        for i = 0 to n - 1 do
          if BA1.get off i > BA1.get off (i + 1) then bad "%s_off not monotone at %d" name i;
          for e = max 0 (BA1.get off i) to min (BA1.dim idx) (BA1.get off (i + 1)) - 1 do
            if BA1.get idx e < 0 || BA1.get idx e >= n then
              bad "%s target out of range at %d" name e;
            if e > BA1.get off i && BA1.get idx (e - 1) >= BA1.get idx e then
              bad "%s row %d not strictly ascending" name i
          done
        done
      end
    in
    check_csr "child" t.child_off t.child_idx;
    check_csr "parent" t.parent_off t.parent_idx;
    if
      BA1.dim t.child_off = n + 1
      && BA1.dim t.parent_off = n + 1
      && BA1.get t.child_off n = BA1.dim t.child_idx
      && BA1.get t.parent_off n = BA1.dim t.parent_idx
      && BA1.dim t.child_avg = BA1.dim t.child_idx
      && !problems = []
    then
      for i = 0 to n - 1 do
        if t.counts.(i) <= 0 then bad "node %d has count %d" t.sids.(i) t.counts.(i);
        if BA1.get t.fcounts i <> float_of_int t.counts.(i) then
          bad "node %d float count out of sync" t.sids.(i);
        for e = BA1.get t.child_off i to BA1.get t.child_off (i + 1) - 1 do
          if BA1.get t.child_avg e <= 0.0 then
            bad "edge %d->%d has avg %f" t.sids.(i)
              t.sids.(BA1.get t.child_idx e)
              (BA1.get t.child_avg e);
          let c = BA1.get t.child_idx e in
          if row_find t.parent_idx (BA1.get t.parent_off c) (BA1.get t.parent_off (c + 1)) i < 0
          then bad "edge %d->%d missing reverse index" t.sids.(i) t.sids.(c)
        done;
        for e = BA1.get t.parent_off i to BA1.get t.parent_off (i + 1) - 1 do
          let p = BA1.get t.parent_idx e in
          if row_find t.child_idx (BA1.get t.child_off p) (BA1.get t.child_off (p + 1)) i < 0
          then bad "parent edge %d->%d missing forward index" t.sids.(p) t.sids.(i)
        done
      done
    else if BA1.dim t.child_avg <> BA1.dim t.child_idx then
      bad "child_avg length %d != child_idx length %d" (BA1.dim t.child_avg)
        (BA1.dim t.child_idx);
    match !problems with
    | [] -> Ok ()
    | ps -> Error (String.concat "; " ps)

  (* Direct construction from decoded parts — the codec's zero-copy
     load path, which bypasses the Builder round trip entirely. The
     caller owns the invariants ({!validate} is available; the lazy
     load path defers CRC + bounds checks to [on_first_touch]). *)
  let of_flat ~doc_height ~root ~sids ~labels ~vtypes ~counts ~child_off
      ~child_idx ~child_avg ~parent_off ~parent_idx ~vsumms ~vsumm_decode
      ~on_first_touch =
    let n = Array.length sids in
    let fcounts = BA1.create Bigarray.float64 Bigarray.c_layout n in
    for i = 0 to n - 1 do
      BA1.unsafe_set fcounts i (float_of_int counts.(i))
    done;
    { uid = fresh_uid ();
      doc_height; root; sids; labels; vtypes; counts; fcounts;
      vsumms; vsumm_decode;
      child_off; child_idx; child_avg; parent_off; parent_idx;
      on_first_touch }

  let pp_stats ppf t =
    Format.fprintf ppf "synopsis(nodes=%d, edges=%d, str=%a, val=%a)" (n_nodes t)
      (n_edges t) Size.pp_bytes (structural_bytes t) Size.pp_bytes (value_bytes t)
end

let freeze (b : Builder.t) : Sealed.t =
  if not (Builder.mem b b.Builder.root) then
    invalid_arg "Synopsis.freeze: builder has no valid root";
  let n = Builder.n_nodes b in
  let sids = Array.make n 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun sid _ ->
      sids.(!i) <- sid;
      incr i)
    b.Builder.nodes;
  Array.sort Int.compare sids;
  let index_of = Hashtbl.create n in
  Array.iteri (fun i sid -> Hashtbl.replace index_of sid i) sids;
  let node i = Hashtbl.find b.Builder.nodes sids.(i) in
  let labels = Array.init n (fun i -> (node i).Builder.label) in
  let vtypes = Array.init n (fun i -> (node i).Builder.vtype) in
  let counts = Array.init n (fun i -> (node i).Builder.count) in
  let vsumms =
    Array.init n (fun i -> Xc_vsumm.Value_summary.copy (node i).Builder.vsumm)
  in
  let row_of tbl key_index =
    (* one adjacency row as index-sorted arrays *)
    let m = Hashtbl.length tbl in
    let idx = Array.make m 0 and w = Array.make m 0.0 in
    let j = ref 0 in
    Hashtbl.iter
      (fun sid v ->
        idx.(!j) <- Hashtbl.find index_of sid;
        w.(!j) <- key_index v;
        incr j)
      tbl;
    (* sort both arrays by idx: build permutation *)
    let perm = Array.init m (fun k -> k) in
    Array.sort (fun a b -> Int.compare idx.(a) idx.(b)) perm;
    (Array.map (fun k -> idx.(k)) perm, Array.map (fun k -> w.(k)) perm)
  in
  let child_rows = Array.init n (fun i -> row_of (node i).Builder.children Fun.id) in
  let parent_rows =
    Array.init n (fun i -> row_of (node i).Builder.parents (fun () -> 0.0))
  in
  let csr rows =
    let off = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      off.(i + 1) <- off.(i) + Array.length (fst rows.(i))
    done;
    let total = off.(n) in
    let idx = Array.make total 0 and w = Array.make total 0.0 in
    for i = 0 to n - 1 do
      let ri, rw = rows.(i) in
      Array.blit ri 0 idx off.(i) (Array.length ri);
      Array.blit rw 0 w off.(i) (Array.length rw)
    done;
    (off, idx, w)
  in
  let child_off, child_idx, child_avg = csr child_rows in
  let parent_off, parent_idx, _ = csr parent_rows in
  let fcounts =
    Sealed.ba_f_of_array (Array.map float_of_int counts)
  in
  { Sealed.uid = fresh_uid ();
    doc_height = b.Builder.doc_height;
    root = Hashtbl.find index_of b.Builder.root;
    sids; labels; vtypes; counts; fcounts;
    vsumms = Array.map Option.some vsumms;
    vsumm_decode = None;
    child_off = Sealed.ba_i_of_array child_off;
    child_idx = Sealed.ba_i_of_array child_idx;
    child_avg = Sealed.ba_f_of_array child_avg;
    parent_off = Sealed.ba_i_of_array parent_off;
    parent_idx = Sealed.ba_i_of_array parent_idx;
    on_first_touch = None }
