(** Reference-synopsis construction (Sec. 4.3).

    The reference synopsis is the detailed starting point of
    XCLUSTERBUILD: a refinement of the lossless count-stable summary in
    which every cluster (a) groups elements with the same label path
    from the root — "exactly one incoming path", capturing path-to-value
    correlations — (b) is count-stable: all elements of a cluster have
    the same number of children in every other cluster, and (c) carries
    a detailed value summary of its extent's values.

    Construction is a partition-refinement fixpoint: start from the
    (label-path × value-type) partition and split clusters by their
    per-child-cluster count signatures until stable. *)

type detail = {
  hist_buckets : int;  (** reference histogram buckets (default 64) *)
  pst_depth : int;     (** max indexed substring length (default 8) *)
  pst_nodes : int;     (** reference PST node cap (default 2048) *)
  top_terms : int;     (** reference exactly-indexed terms (default 4096) *)
}

val default_detail : detail

val build : ?detail:detail -> ?min_extent:int -> ?value_min_extent:int ->
  ?value_paths:Xc_xml.Label.t list list -> Xc_xml.Document.t -> Synopsis.Builder.t
(** Builds the reference synopsis. [value_paths] designates the label
    paths that receive value summaries (the paper hand-picks 7 for IMDB
    and 9 for XMark); default: every value-bearing path. [min_extent]
    (default 48) pools signature fragments smaller than that many
    elements into a residual cluster, keeping reference clusters heavy
    enough that their value summaries carry statistical weight; 1
    recovers the exact count-stable refinement. [value_min_extent]
    (default = [min_extent]) is the same bound for value-bearing
    elements: setting it higher makes value summaries split only along
    heavyweight structural classes, so a fixed value budget is not
    shredded across hundreds of tiny summaries. *)

val tag_only : ?detail:detail -> ?value_paths:Xc_xml.Label.t list list ->
  Xc_xml.Document.t -> Synopsis.Builder.t
(** The smallest possible structural summary: clusters elements solely
    by (tag, value type) — the paper's 0KB structural-budget point. *)
