module Heap = Xc_util.Heap
module Metrics = Xc_util.Metrics
module Par = Xc_util.Par
module B = Synopsis.Builder

type cand = {
  u : int;
  v : int;
  delta : float;
  saved : int;
}

type t = cand Heap.t

type config = {
  hm : int;
  hl : int;
  neighbor_k : int;
  pair_cap : int;
  structural_only : bool;
  domains : int;
  full_scan : bool;
}

let default_config =
  { hm = 10_000; hl = 5_000; neighbor_k = 16; pair_cap = 4_000;
    structural_only = false; domains = 0; full_scan = false }

let group_key = B.group_key

(* Scoring a candidate is a pure read over the builder (merge_delta and
   saved_bytes mutate nothing), which is what makes batch evaluation
   embarrassingly parallel below. The default path shares one child-edge
   gather between Δ and saved_bytes; [full_scan] keeps the original two
   independent gathers as the cost-faithful pre-index baseline. Both
   produce identical candidates. *)
let eval_pair config syn (u, v) =
  if config.full_scan then
    let delta = Delta.merge_delta ~structural_only:config.structural_only syn u v in
    let saved = Merge.saved_bytes syn u v in
    { u = B.sid u; v = B.sid v; delta; saved }
  else
    let delta, merged_children =
      Delta.merge_delta_counted ~structural_only:config.structural_only syn u v
    in
    let saved = Merge.saved_bytes_with syn u v ~merged_children in
    { u = B.sid u; v = B.sid v; delta; saved }

let cand_priority c = Delta.marginal_loss c.delta c.saved

(* Total order on candidates — priority, then the (u, v) sid pair — so
   the pool's contents and heap insertion sequence depend only on the
   graph, never on evaluation order or hashtable layout. This is the
   determinism anchor for the parallel scorer. *)
let cand_compare a b =
  let c = Float.compare (cand_priority a) (cand_priority b) in
  if c <> 0 then c
  else
    let c = Int.compare a.u b.u in
    if c <> 0 then c else Int.compare a.v b.v

let key_compare (a1, a2, a3) (b1, b2, b3) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c
  else
    let c = Int.compare a2 b2 in
    if c <> 0 then c else Int.compare a3 b3

(* Batch-score candidate pairs: the only metrics touchpoints run in the
   coordinating domain (Metrics is not domain-safe), the per-pair work
   fans out over Par. *)
let score_cands config syn pairs =
  let n = Array.length pairs in
  if n = 0 then [||]
  else begin
    Metrics.incr Metrics.global "pool.cand_evals" ~by:n;
    Metrics.time Metrics.global "pool.score" (fun () ->
        Par.map ~domains:config.domains (eval_pair config syn) pairs)
  end

(* All groups of >= 2 mergeable nodes with level <= threshold, as
   sid-sorted member arrays in ascending key order (deterministic
   regardless of group-index hashtable layout). [full_scan] ignores the
   incremental group index and regroups by scanning every node — the
   pre-index baseline, kept for benchmarking and differential tests. *)
let collect_groups config syn ~levels ~level =
  let eligible node =
    Synopsis.Levels.get levels ~default:max_int (B.sid node) <= level
  in
  let members_of key =
    let ms = ref [] in
    B.iter_group syn key (fun node -> if eligible node then ms := node :: !ms);
    !ms
  in
  let raw =
    if config.full_scan then begin
      let tbl = Hashtbl.create 64 in
      B.iter
        (fun node ->
          if eligible node then begin
            let key = group_key node in
            let ms =
              match Hashtbl.find_opt tbl key with
              | Some ms -> ms
              | None ->
                let ms = ref [] in
                Hashtbl.add tbl key ms;
                ms
            in
            ms := node :: !ms
          end)
        syn;
      Hashtbl.fold (fun key ms acc -> (key, !ms) :: acc) tbl []
    end
    else
      List.filter_map
        (fun key ->
          match members_of key with
          | [] | [ _ ] -> None
          | ms -> Some (key, ms))
        (B.group_keys syn)
  in
  raw
  |> List.filter_map (fun (key, ms) ->
         match ms with
         | [] | [ _ ] -> None
         | ms ->
           let arr = Array.of_list ms in
           Array.sort (fun a b -> Int.compare (B.sid a) (B.sid b)) arr;
           Some (key, arr))
  |> List.sort (fun (a, _) (b, _) -> key_compare a b)

let group_pairs config arr =
  (* [arr] arrives sid-sorted *)
  let g = Array.length arr in
  let out = ref [] in
  if g >= 2 then
    if g * (g - 1) / 2 <= config.pair_cap then
      for i = 0 to g - 2 do
        for j = i + 1 to g - 1 do
          out := (arr.(i), arr.(j)) :: !out
        done
      done
    else begin
      (* large group: count-nearest-neighbour pairing *)
      let arr = Array.copy arr in
      Array.sort
        (fun a b ->
          let c = Int.compare (B.count a) (B.count b) in
          if c <> 0 then c else Int.compare (B.sid a) (B.sid b))
        arr;
      for i = 0 to g - 2 do
        for j = i + 1 to min (g - 1) (i + config.neighbor_k) do
          out := (arr.(i), arr.(j)) :: !out
        done
      done
    end;
  !out

let build config syn ~levels ~level =
  Metrics.incr Metrics.global "pool.builds";
  Metrics.time Metrics.global (if config.full_scan then "pool.build_full" else "pool.build_inc") @@ fun () ->
  let pairs =
    Array.of_list
      (List.concat_map
         (fun (_, members) -> group_pairs config members)
         (collect_groups config syn ~levels ~level))
  in
  Metrics.incr Metrics.global "pool.evals_build" ~by:(Array.length pairs);
  let cands = score_cands config syn pairs in
  if config.full_scan then
    (* pre-index baseline: the comparator recomputes the priority
       division on every comparison, as the original code did *)
    Array.sort cand_compare cands
  else begin
    (* same order, priorities divided out once instead of per compare *)
    let keyed = Array.map (fun c -> (cand_priority c, c)) cands in
    Array.sort
      (fun (pa, a) (pb, b) ->
        let c = Float.compare pa pb in
        if c <> 0 then c
        else
          let c = Int.compare a.u b.u in
          if c <> 0 then c else Int.compare a.v b.v)
      keyed;
    Array.iteri (fun i (_, c) -> cands.(i) <- c) keyed
  end;
  let keep = min config.hm (Array.length cands) in
  let heap = Heap.create ~capacity:(max 64 keep) () in
  for i = 0 to keep - 1 do
    Heap.push heap (cand_priority cands.(i)) cands.(i)
  done;
  heap

let push_neighbors config syn heap ~levels ~level node =
  Metrics.incr Metrics.global "pool.pushes";
  let key = group_key node in
  let scanned = ref 0 in
  let dist other = abs (B.count other - B.count node) in
  let eligible other =
    B.sid other <> B.sid node
    && Synopsis.Levels.get levels ~default:max_int (B.sid other) <= level
  in
  (* the [neighbor_k] group members nearest [node] by (count distance,
     sid) — the same winners whichever collection strategy below ran *)
  let nearest = Metrics.time Metrics.global (if config.full_scan then "pool.select_full" else "pool.select_inc") @@ fun () ->
    if config.full_scan then begin
      (* pre-index baseline: scan the whole node table, sort all
         members, take the top k *)
      let members = ref [] in
      B.iter
        (fun other ->
          incr scanned;
          if group_key other = key && eligible other then members := other :: !members)
        syn;
      let arr = Array.of_list !members in
      Array.sort
        (fun a b ->
          let c = Int.compare (dist a) (dist b) in
          if c <> 0 then c else Int.compare (B.sid a) (B.sid b))
        arr;
      Array.sub arr 0 (min config.neighbor_k (Array.length arr))
    end
    else begin
      (* binary-search the node's count in the (count, sid)-sorted group
         array and expand outward, keeping an insertion-sorted top-k by
         (dist, sid). The walk stops once both frontiers are strictly
         farther than the current k-th best — no remaining member can
         enter (a tie at the k-th distance can still displace on sid, so
         equal-distance frontiers keep going). Worst case O(g) when
         eligible members are scarce; typically O(log g + k). *)
      let k = config.neighbor_k in
      let best = Array.make k node and bdist = Array.make k max_int in
      let m = ref 0 in
      let before other d i =
        d < bdist.(i) || (d = bdist.(i) && B.sid other < B.sid best.(i))
      in
      let visit other =
        incr scanned;
        if eligible other then begin
          let d = dist other in
          if !m < k || before other d (k - 1) then begin
            let stop = min !m (k - 1) in
            let i = ref stop in
            while !i > 0 && before other d (!i - 1) do
              best.(!i) <- best.(!i - 1);
              bdist.(!i) <- bdist.(!i - 1);
              decr i
            done;
            best.(!i) <- other;
            bdist.(!i) <- d;
            if !m < k then incr m
          end
        end
      in
      let arr, len = B.group_members syn key in
      let c0 = B.count node in
      (* leftmost index with count >= c0 *)
      let lo = ref 0 and hi = ref len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if B.count arr.(mid) < c0 then lo := mid + 1 else hi := mid
      done;
      let left = ref (!lo - 1) and right = ref !lo in
      let continue = ref true in
      while !continue && (!left >= 0 || !right < len) do
        let dl = if !left >= 0 then c0 - B.count arr.(!left) else max_int in
        let dr = if !right < len then B.count arr.(!right) - c0 else max_int in
        if !m = k && min dl dr > bdist.(k - 1) then continue := false
        else if dl <= dr then begin
          visit arr.(!left);
          decr left
        end
        else begin
          visit arr.(!right);
          incr right
        end
      done;
      Array.sub best 0 !m
    end
  in
  Metrics.incr Metrics.global "pool.scanned" ~by:!scanned;
  Metrics.incr Metrics.global "pool.evals_push" ~by:(Array.length nearest);
  let cands = score_cands config syn (Array.map (fun o -> (node, o)) nearest) in
  Array.sort cand_compare cands;
  Array.iter (fun c -> Heap.push heap (cand_priority c) c) cands

let build_frontier config syn ~levels ~frontier =
  Metrics.incr Metrics.global "pool.frontier_builds";
  Metrics.time Metrics.global "pool.build_frontier" @@ fun () ->
  let heap = Heap.create () in
  List.iter
    (fun sid ->
      if B.mem syn sid then
        (* level = max_int lifts the bottom-up threshold: every group
           peer of a dirty node is eligible *)
        push_neighbors config syn heap ~levels ~level:max_int (B.find syn sid))
    (List.sort_uniq Int.compare frontier);
  heap

let rec pop_valid config syn heap =
  match Heap.pop heap with
  | None -> None
  | Some (_, c) ->
    if not (B.mem syn c.u && B.mem syn c.v) then begin
      Metrics.incr Metrics.global "pool.stale_dropped";
      pop_valid config syn heap
    end
    else begin
      let u = B.find syn c.u and v = B.find syn c.v in
      (* both endpoints survive, but earlier merges may have rewired
         their neighborhoods since this entry was scored; saved_bytes is
         a cheap drift detector (any structural change around u/v moves
         it).  On drift, rescore and reinsert under the fresh priority —
         a rescored entry popped again without intervening merges
         matches and is returned, so this terminates. *)
      let saved = Merge.saved_bytes syn u v in
      if saved = c.saved then Some c
      else begin
        Metrics.incr Metrics.global "pool.rescored";
        Metrics.incr Metrics.global "pool.cand_evals";
        let c' = eval_pair config syn (u, v) in
        Heap.push heap (cand_priority c') c';
        pop_valid config syn heap
      end
    end
