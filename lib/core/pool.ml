module Heap = Xc_util.Heap
module Vs = Xc_vsumm.Value_summary
module B = Synopsis.Builder

type cand = {
  u : int;
  v : int;
  delta : float;
  saved : int;
}

type t = cand Heap.t

type config = {
  hm : int;
  hl : int;
  neighbor_k : int;
  pair_cap : int;
  structural_only : bool;
}

let default_config =
  { hm = 10_000; hl = 5_000; neighbor_k = 16; pair_cap = 4_000;
    structural_only = false }

let vsumm_kind = function
  | Vs.Vnone -> 0
  | Vs.Vnum _ -> 1
  | Vs.Vstr _ -> 2
  | Vs.Vtext _ -> 3

let vtype_tag = function
  | Xc_xml.Value.Tnull -> 0
  | Xc_xml.Value.Tnumeric -> 1
  | Xc_xml.Value.Tstring -> 2
  | Xc_xml.Value.Ttext -> 3

let group_key node =
  ((B.label node :> int), vtype_tag (B.vtype node), vsumm_kind (B.vsumm node))

let cand_evals = ref 0
let cand_time = ref 0.0

let make_cand config syn u v =
  incr cand_evals;
  let t0 = Unix.gettimeofday () in
  let delta = Delta.merge_delta ~structural_only:config.structural_only syn u v in
  cand_time := !cand_time +. (Unix.gettimeofday () -. t0);
  let saved = Merge.saved_bytes syn u v in
  { u = B.sid u; v = B.sid v; delta; saved }

let cand_priority c = Delta.marginal_loss c.delta c.saved

(* All groups of mergeable nodes with level <= threshold. *)
let groups syn ~levels ~level =
  let tbl = Hashtbl.create 64 in
  B.iter
    (fun node ->
      let node_level = Synopsis.Levels.get levels ~default:max_int (B.sid node) in
      if node_level <= level then begin
        let key = group_key node in
        let members =
          match Hashtbl.find_opt tbl key with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.add tbl key l;
            l
        in
        members := node :: !members
      end)
    syn;
  tbl

let group_pairs config syn members =
  let arr = Array.of_list members in
  let g = Array.length arr in
  let out = ref [] in
  if g >= 2 then
    if g * (g - 1) / 2 <= config.pair_cap then
      for i = 0 to g - 2 do
        for j = i + 1 to g - 1 do
          out := make_cand config syn arr.(i) arr.(j) :: !out
        done
      done
    else begin
      (* large group: count-nearest-neighbour pairing *)
      Array.sort (fun a b -> Int.compare (B.count a) (B.count b)) arr;
      for i = 0 to g - 2 do
        for j = i + 1 to min (g - 1) (i + config.neighbor_k) do
          out := make_cand config syn arr.(i) arr.(j) :: !out
        done
      done
    end;
  !out

let build config syn ~levels ~level =
  let cands =
    Hashtbl.fold
      (fun _ members acc -> List.rev_append (group_pairs config syn !members) acc)
      (groups syn ~levels ~level)
      []
  in
  let arr = Array.of_list cands in
  Array.sort (fun a b -> Float.compare (cand_priority a) (cand_priority b)) arr;
  let keep = min config.hm (Array.length arr) in
  let heap = Heap.create ~capacity:(max 64 keep) () in
  for i = 0 to keep - 1 do
    Heap.push heap (cand_priority arr.(i)) arr.(i)
  done;
  heap

let push_neighbors config syn heap ~levels ~level node =
  let key = group_key node in
  (* collect group members at the right level, excluding the node itself *)
  let members = ref [] in
  B.iter
    (fun other ->
      if B.sid other <> B.sid node && group_key other = key then begin
        let other_level =
          Synopsis.Levels.get levels ~default:max_int (B.sid other)
        in
        if other_level <= level then members := other :: !members
      end)
    syn;
  let arr = Array.of_list !members in
  let dist other = abs (B.count other - B.count node) in
  Array.sort (fun a b -> Int.compare (dist a) (dist b)) arr;
  let k = min config.neighbor_k (Array.length arr) in
  for i = 0 to k - 1 do
    let c = make_cand config syn node arr.(i) in
    Heap.push heap (cand_priority c) c
  done

let rec pop_valid syn heap =
  match Heap.pop heap with
  | None -> None
  | Some (_, c) ->
    if B.mem syn c.u && B.mem syn c.v then Some c
    else pop_valid syn heap
