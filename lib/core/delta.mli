(** The localized structure-value clustering error metric Δ(S,S′)
    (Sec. 4.1–4.2).

    Δ measures the summed squared estimation-error increase over the
    {e atomic queries} [u\[p\]/c] touched by an operation, where [p]
    ranges over the atomic predicates of the value summaries (prefix
    ranges / retained substrings / individual terms) and [c] over the
    children of the affected nodes — plus the implicit self query
    [u\[p\]], so that value error is measured even on leaf clusters.

    For a merge the double sum factorizes (DESIGN.md):
    Σ_p Σ_c (σ_u(p)·A_c − σ_w(p)·W_c)² =
      Σ_pσ_u²·Σ_cA_c² − 2Σ_pσ_uσ_w·Σ_cA_cW_c + Σ_pσ_w²·Σ_cW_c²
    with σ_w = (|u|σ_u + |v|σ_v)/|w| pointwise, so only the three value
    dot products (Σσ_u², Σσ_v², Σσ_uσ_v) and three structural dot
    products are needed — O(|children| + |atomic predicates|) per
    candidate. *)

val merge_delta : ?structural_only:bool -> Synopsis.Builder.t ->
  Synopsis.Builder.node -> Synopsis.Builder.node -> float
(** Δ of merging the two nodes. [structural_only] replaces the atomic
    predicate set by the single trivial predicate (σ ≡ 1), yielding a
    TREESKETCH-style purely structural clustering error (the A1
    ablation baseline). *)

val merge_delta_counted : ?structural_only:bool -> Synopsis.Builder.t ->
  Synopsis.Builder.node -> Synopsis.Builder.node -> float * int
(** [(Δ, merged child count)] — the number of distinct children the
    merged node would have falls out of the same child-edge gather that
    computes the structural dot products, so candidate scoring can feed
    it to {!Merge.saved_bytes_with} instead of gathering twice. *)

val compression_delta :
  Synopsis.Builder.t -> Synopsis.Builder.node -> (float * int) option
(** [(Δ, bytes saved)] of the next value-compression step on the node's
    summary: Δ = |u| · (1 + Σ_c count(u,c)²) · Σ_p (σ_p − σ′_p)². [None]
    when the summary cannot be compressed further. *)

val compression_step :
  Synopsis.Builder.t -> Synopsis.Builder.node ->
  (float * Xc_vsumm.Value_summary.step) option
(** Like {!compression_delta}, but also returns the
    {!Xc_vsumm.Value_summary.step} whose [apply] thunk finalizes the
    previewed compression without redoing its work. The step is valid
    until the node's summary next changes. *)

val marginal_loss : float -> int -> float
(** [Δ / max(1, saved_bytes)] — the ranking key of the build heaps. *)
