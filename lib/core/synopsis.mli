(** The XCluster graph-synopsis data structure (Sec. 3), split into the
    two representations its lifecycle actually has:

    - {!Builder} — the mutable hashtable graph the construction
      algorithms ({!Reference}, {!Merge}, {!Pool}, {!Build}, {!Delta})
      work on. Nodes are structure-value clusters of document elements;
      each stores its element count, per-edge average child counts (the
      structural centroid), and a value summary.
    - {!Sealed} — the frozen, read-optimized form produced by {!freeze}:
      contiguous node arrays plus sorted CSR child/parent adjacency with
      a dense sid→index remap. A sealed synopsis never mutates, so the
      estimation pipeline ({!Plan}, {!Estimate}, {!Codec}, the
      [Xcluster] facade) accepts only this form and caches keyed on its
      {!Sealed.uid} need no invalidation machinery.

    Both types are abstract: all graph access goes through the accessor
    functions below — no raw adjacency [Hashtbl] escapes this module. *)

(** The mutable construction-time graph. *)
module Builder : sig
  type t
  type node
  (** A structure-value cluster. Handles stay valid until the node is
      removed (e.g. merged away); read them through the accessors. *)

  val create : doc_height:int -> t
  (** [doc_height] caps descendant-axis expansion at estimation time
      (carried into the sealed form by {!freeze}). *)

  val uid : t -> int
  (** Process-unique id of this builder value; {!copy} allocates a
      fresh one. *)

  val doc_height : t -> int

  val root : t -> int
  (** Sid of the root cluster; [-1] until {!set_root}. *)

  val set_root : t -> int -> unit
  val root_node : t -> node

  val add_node :
    t -> label:Xc_xml.Label.t -> vtype:Xc_xml.Value.vtype -> count:int ->
    vsumm:Xc_vsumm.Value_summary.t -> node
  (** Allocates a node with a fresh [sid] and registers it. *)

  val add_node_at :
    t -> sid:int -> label:Xc_xml.Label.t -> vtype:Xc_xml.Value.vtype ->
    count:int -> vsumm:Xc_vsumm.Value_summary.t -> node
  (** Registers a node under a caller-chosen [sid] (the codec decodes
      nodes under their serialized ids); subsequent {!add_node} calls
      allocate above it. @raise Invalid_argument if the sid is taken. *)

  val remove_node : t -> int -> unit
  (** Unregisters; does not patch edges (callers do). *)

  val find : t -> int -> node
  (** @raise Not_found when the node does not exist (e.g. was merged
      away). *)

  val mem : t -> int -> bool

  val sid : node -> int
  val label : node -> Xc_xml.Label.t
  val vtype : node -> Xc_xml.Value.vtype
  val count : node -> int  (** |extent| *)

  val vsumm : node -> Xc_vsumm.Value_summary.t

  val set_edge : t -> parent:int -> child:int -> float -> unit
  (** Sets the average child count of an edge, creating it if absent and
      deleting it when the count is 0. Maintains the reverse index. *)

  val edge_count : t -> parent:int -> child:int -> float
  (** 0 if the edge is absent. *)

  val set_vsumm : t -> node -> Xc_vsumm.Value_summary.t -> unit
  val set_count : t -> node -> int -> unit
  val n_nodes : t -> int
  val n_edges : t -> int
  val iter : (node -> unit) -> t -> unit
  val fold : ('a -> node -> 'a) -> 'a -> t -> 'a
  val children_list : t -> node -> (node * float) list
  val parents_list : t -> node -> node list

  val succ : t -> node -> (int -> float -> unit) -> unit
  (** Iterate the node's outgoing edges as [f child_sid avg_count];
      unspecified order. *)

  val pred : t -> node -> (int -> unit) -> unit
  (** Iterate the node's parent sids; unspecified order. *)

  val child_avg : node -> int -> float
  (** Average count of the edge to the given child sid; 0 if absent. *)

  val has_parent : node -> int -> bool
  val out_degree : node -> int
  val in_degree : node -> int

  val group_key : node -> int * int * int
  (** The merge-compatibility class of a node: (label, value type,
      value-summary kind). Two nodes are candidates for a merge exactly
      when their keys are equal ({!Merge.compatible} restated as a
      hashable key). *)

  val group_keys : t -> (int * int * int) list
  (** Keys of every non-empty group, unspecified order. The group index
      is maintained incrementally by node add/remove and summary-kind
      changes — reading it never scans the node table. *)

  val group_size : t -> int * int * int -> int
  (** Number of nodes currently in a group; 0 for unknown keys. O(1). *)

  val iter_group : t -> int * int * int -> (node -> unit) -> unit
  (** Iterate the members of one group in ascending (count, sid) order.
      Cost is the group size, not the node count — this is what lets the
      merge pool find a new node's peers without a full scan. *)

  val group_members : t -> int * int * int -> node array * int
  (** [(arr, len)]: the group's backing array — the first [len] entries
      are the members in ascending (count, sid) order. Read-only view,
      valid until the group next changes; entries past [len] are
      garbage. Lets the merge pool binary-search a count and expand
      outward instead of scanning the whole group. *)

  val structural_bytes : t -> int
  (** {!Size.node_bytes} per node + {!Size.edge_bytes} per edge. *)

  val value_bytes : t -> int
  (** Total size of all value summaries. *)

  val n_value_nodes : t -> int
  (** Nodes carrying a non-trivial value summary (Table 1's "Value"
      node count). *)

  val copy : t -> t
  (** Deep copy: private edge tables, value summaries safe to compress
      independently. *)

  val validate : t -> (unit, string) result
  (** Structural invariants: edge tables mutually consistent, counts
      positive, root present, group index exactly mirroring the node
      table. Used by tests and assertions. *)

  val pp_stats : Format.formatter -> t -> unit
end

(** Node levels for the bottom-up pool heuristic (Sec. 4.3): the
    shortest outgoing path to a leaf descendant, computed once per pool
    replenish and updated in place as merges create nodes. Replaces the
    former raw [(int, int) Hashtbl.t] accessor. *)
module Levels : sig
  type t

  val compute : Builder.t -> t
  (** Level of every node: leaves are level 0; nodes trapped in cycles
      with no leaf-bound path get [1 + the maximum finite level]. *)

  val level : t -> int -> int option
  (** Level of a sid, if it was present at {!compute} time or {!set}
      since. *)

  val get : t -> default:int -> int -> int
  val set : t -> int -> int -> unit
  (** Record the level of a node created after {!compute} (the merge
      loop assigns new nodes [min] of their sources' levels). *)

  val iter_levels : (int -> int -> unit) -> t -> unit
  (** [f sid level] over every recorded node; unspecified order. *)

  val max_level : t -> int
  (** Largest recorded level; 0 when empty. O(1). *)
end

(** The frozen read-path representation: nodes in ascending-sid index
    order ([index i] holds the i-th smallest sid), child and parent
    adjacency in CSR form sorted by target index within each row. All
    estimation folds run in this canonical index order. *)
module Sealed : sig
  type t

  type ba_f = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
  (** The numeric backing store is flat and unboxed: the estimation hot
      loops read CSR rows straight out of [Bigarray.Array1] buffers, and
      the mmap-backed codec v3 load path can alias file-backed slices
      into the same fields zero-copy. *)

  type ba_i = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  val ba_i_of_array : int array -> ba_i
  (** Copying conversions between boxed arrays and the unboxed buffers
      (helpers for the codec and the transition-matrix builder). *)

  val ba_f_of_array : float array -> ba_f
  val array_of_ba_i : ba_i -> int array
  val array_of_ba_f : ba_f -> float array

  val uid : t -> int
  (** Process-unique id; every {!freeze} allocates a fresh one. Plan
      caches key on it — a sealed synopsis never mutates, so the key
      never goes stale. *)

  val doc_height : t -> int
  val n_nodes : t -> int
  val n_edges : t -> int

  val root : t -> int
  (** Index of the root cluster. *)

  val root_sid : t -> int

  val sid_of_index : t -> int -> int
  (** The node's original builder sid (ascending in the index). *)

  val index_of_sid : t -> int -> int option

  val label : t -> int -> Xc_xml.Label.t
  (** Accessors below are all by node index, [0 .. n_nodes - 1]. *)

  val vtype : t -> int -> Xc_xml.Value.vtype
  val count : t -> int -> int

  val vsumm : t -> int -> Xc_vsumm.Value_summary.t
  (** Value summary of a node. Under a lazy codec v3 load the summary is
      decoded (and its section CRC-verified) on first access and
      memoized; a deferred verification failure surfaces here as the
      codec's exception. Synopses from {!freeze} are fully materialized
      and never raise. *)

  val labels : t -> Xc_xml.Label.t array
  (** The physical node arrays ([labels], [counts]) stay boxed OCaml
      arrays — cold paths index them directly. Treat as read-only. *)

  val counts : t -> int array

  val fcounts : t -> ba_f
  (** [float_of_int] of {!counts}, precomputed for the document-node
      estimation kernel. Like all [_ba] views below, reading it runs any
      deferred codec verification hook first. *)

  val child_off_ba : t -> ba_i
  (** The unboxed CSR adjacency, the estimation hot-path view: node
      [i]'s children are [child_idx.(child_off.(i)) ..
      child_idx.(child_off.(i+1)-1)], sorted ascending by target index,
      with matching [child_avg] weights; parents analogous. Offsets have
      length [n_nodes + 1]. Treat as read-only — a sealed synopsis is
      frozen, and under codec v3 the buffer may alias a read-only file
      mapping. *)

  val child_idx_ba : t -> ba_i
  val child_avg_ba : t -> ba_f
  val parent_off_ba : t -> ba_i
  val parent_idx_ba : t -> ba_i

  val child_off : t -> int array
  (** Materializing compatibility views of the CSR: each call copies the
      backing buffer into a fresh array. Cold paths only — hoist the
      copy out of any loop, or use the [_ba] accessors. *)

  val child_idx : t -> int array
  val child_avg : t -> float array
  val parent_off : t -> int array
  val parent_idx : t -> int array

  val of_flat :
    doc_height:int -> root:int -> sids:int array ->
    labels:Xc_xml.Label.t array -> vtypes:Xc_xml.Value.vtype array ->
    counts:int array -> child_off:ba_i -> child_idx:ba_i ->
    child_avg:ba_f -> parent_off:ba_i -> parent_idx:ba_i ->
    vsumms:Xc_vsumm.Value_summary.t option array ->
    vsumm_decode:(int -> Xc_vsumm.Value_summary.t) option ->
    on_first_touch:(unit -> unit) option -> t
  (** Direct construction from decoded parts — the codec's load path,
      which bypasses the Builder round trip. A fresh {!uid} is
      allocated and [fcounts] derived from [counts]. [vsumm_decode]
      fills [None] cells of [vsumms] on demand; [on_first_touch] runs
      once before the first numeric-buffer access (deferred CRC
      verification — it stays armed if it raises, so every subsequent
      access re-raises). The caller owns the structural invariants;
      {!validate} checks them (forcing the touch hook, not the value
      summaries). *)

  val edge_count : t -> parent:int -> child:int -> float
  (** By sid, mirroring {!Builder.edge_count}: binary search over the
      sorted CSR row; 0 if either sid is absent or the edge is. *)

  val succ : t -> int -> (int * float) list
  (** Outgoing edges of a cluster (by sid) as [(child sid, avg count)],
      ascending by child sid. *)

  val pred : t -> int -> int list
  (** Parent sids of a cluster (by sid), ascending. *)

  val out_degree : t -> int -> int
  val in_degree : t -> int -> int
  val structural_bytes : t -> int
  val value_bytes : t -> int
  val n_value_nodes : t -> int

  val validate : t -> (unit, string) result
  (** CSR invariants: offsets monotone and bounded, rows sorted and
      duplicate-free, child/parent rows mutually consistent, counts
      positive, root in range. *)

  val pp_stats : Format.formatter -> t -> unit
end

val freeze : Builder.t -> Sealed.t
(** Snapshot the builder into the read-optimized sealed form. The
    builder is unchanged and may keep mutating — value summaries are
    deep-copied, so later in-place compression cannot reach the sealed
    value. @raise Invalid_argument if the builder has no valid root. *)
