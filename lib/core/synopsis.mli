(** The XCluster graph-synopsis data structure (Sec. 3).

    A synopsis is a directed graph whose nodes are structure-value
    clusters of document elements. Each node stores its element count,
    per-edge average child counts (the structural centroid), and a value
    summary. The graph is mutable: the construction algorithm merges
    nodes and compresses summaries in place. *)

type snode = {
  sid : int;                                (** stable unique id *)
  label : Xc_xml.Label.t;
  vtype : Xc_xml.Value.vtype;
  mutable count : int;                      (** |extent| *)
  mutable vsumm : Xc_vsumm.Value_summary.t;
  children : (int, float) Hashtbl.t;
      (** child sid → avg count.
          @deprecated Outside [lib/core], iterate with {!succ} (or
          {!children_list}) instead of touching the raw table; direct
          writes bypass the {!generation} counter and leave estimation
          caches stale. *)
  parents : (int, unit) Hashtbl.t;
      (** parent sid set.
          @deprecated Outside [lib/core], iterate with {!pred} (or
          {!parents_list}) instead of touching the raw table. *)
}

type t = {
  nodes : (int, snode) Hashtbl.t;
  mutable root : int;
  mutable next_sid : int;
  mutable doc_height : int;  (** expansion cap for descendant estimation *)
  mutable generation : int;
      (** bumped by every structural or value mutation made through this
          module ({!add_node}, {!remove_node}, {!set_edge}, {!set_vsumm},
          {!set_count}, {!touch}); estimation caches key their validity
          on it. Raw field writes must call {!touch} afterwards. *)
  uid : int;  (** process-unique identity, stable across mutation *)
}

val create : doc_height:int -> t

val generation : t -> int
(** Current mutation generation (see the field's documentation). *)

val uid : t -> int
(** Process-unique id of this synopsis value; {!copy} allocates a fresh
    one. Lets caches key on a synopsis without hashing its graph. *)

val touch : t -> unit
(** Bump {!generation} manually after mutating fields directly. *)

val add_node : t -> label:Xc_xml.Label.t -> vtype:Xc_xml.Value.vtype ->
  count:int -> vsumm:Xc_vsumm.Value_summary.t -> snode
(** Allocates a node with a fresh [sid] and registers it. *)

val remove_node : t -> int -> unit
(** Unregisters; does not patch edges (callers do). *)

val set_edge : t -> parent:int -> child:int -> float -> unit
(** Sets the average child count of an edge, creating it if absent and
    deleting it when the count is 0. Maintains the reverse index. *)

val edge_count : t -> parent:int -> child:int -> float
(** 0 if the edge is absent. *)

val set_vsumm : t -> snode -> Xc_vsumm.Value_summary.t -> unit
(** Replace a node's value summary, bumping {!generation}. *)

val set_count : t -> snode -> int -> unit
(** Replace a node's extent count, bumping {!generation}. *)

val find : t -> int -> snode
(** @raise Not_found when the node does not exist (e.g. was merged away). *)

val mem : t -> int -> bool
val root_node : t -> snode
val n_nodes : t -> int
val n_edges : t -> int
val iter : (snode -> unit) -> t -> unit
val fold : ('a -> snode -> 'a) -> 'a -> t -> 'a

val children_list : t -> snode -> (snode * float) list
val parents_list : t -> snode -> snode list

val succ : t -> snode -> (int -> float -> unit) -> unit
(** Iterate the node's outgoing edges as [f child_sid avg_count] — the
    supported read path for consumers outside [lib/core] (the facade
    re-exports it); unspecified order. *)

val pred : t -> snode -> (int -> unit) -> unit
(** Iterate the node's parent sids; unspecified order. *)

val out_degree : snode -> int
val in_degree : snode -> int

val structural_bytes : t -> int
(** {!Size.node_bytes} per node + {!Size.edge_bytes} per edge. *)

val value_bytes : t -> int
(** Total size of all value summaries. *)

val n_value_nodes : t -> int
(** Nodes carrying a non-trivial value summary (Table 1's "Value"
    node count). *)

val copy : t -> t
(** Deep copy: private edge tables, value summaries safe to compress
    independently. *)

val levels : t -> (int, int) Hashtbl.t
(** Level of every node: shortest outgoing path to a leaf descendant
    (leaves are level 0, as in Sec. 4.3's bottom-up pool heuristic).
    Nodes trapped in cycles with no leaf-bound path get
    [1 + the maximum finite level]. *)

val validate : t -> (unit, string) result
(** Structural invariants: edge tables mutually consistent, counts
    positive, root present. Used by tests and assertions. *)

val pp_stats : Format.formatter -> t -> unit
