(** Synopsis persistence.

    A synopsis is built once (minutes for a large document) and consulted
    many times by an optimizer, so it must survive the process that built
    it. The format is a self-contained, versioned binary encoding that
    embeds the label names and dictionary terms it references; loading
    re-interns them, so identifiers are stable across processes even
    though the global intern tables differ.

    Only sealed synopses are persisted — a builder is an intermediate
    construction state, not an artifact. Decoding rebuilds the graph,
    validates it, and freezes it. *)

val save : string -> Synopsis.Sealed.t -> unit
(** Writes the synopsis to a file.
    @raise Sys_error on I/O failure. *)

val load : string -> Synopsis.Sealed.t
(** Reads a synopsis written by {!save}.
    @raise Failure on format or version mismatch. *)

val to_string : Synopsis.Sealed.t -> string
val of_string : string -> Synopsis.Sealed.t

val size_on_disk : Synopsis.Sealed.t -> int
(** Byte length of the encoding — a few framing bytes per node beyond
    the model's {!Synopsis.Sealed.structural_bytes} +
    {!Synopsis.Sealed.value_bytes} accounting, plus the embedded string
    tables. *)
