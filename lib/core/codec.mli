(** Synopsis persistence.

    A synopsis is built once (minutes for a large document) and consulted
    many times by an optimizer, so it must survive the process that built
    it — and survive what disks do to long-lived artifacts. The format
    is a self-contained, versioned binary encoding that embeds the label
    names and dictionary terms it references; loading re-interns them,
    so identifiers are stable across processes even though the global
    intern tables differ.

    {b Format v3} (what {!to_string}/{!save} write) lays the synopsis
    out as a fixed 13-entry section directory followed by raw,
    8-aligned section payloads: node attributes, the child/parent CSR
    adjacency as little-endian 64-bit words, the term table, and a
    value-summary blob with a per-node offset index. Every byte from
    the directory on is CRC-32 covered ({!Xc_util.Crc32}) — the
    directory by its own checksum, each payload (alignment padding
    included) by its entry — so a single flipped bit anywhere is
    detectable. The layout is what makes {!load} near-constant-time:
    on a little-endian host the numeric sections are memory-mapped
    ([Unix.map_file]) straight into the sealed synopsis's Bigarray
    backing store, zero-copy, with CRC verification deferred to first
    touch (see {e lazy verification} below). {b v2} (framed sections,
    big-endian records) and {b v1} (unframed, no checksums) files
    remain readable: the decoder negotiates on the version field, and
    {!to_string_v2}/{!to_string_v1} keep producing the old formats for
    interop and testing.

    {b Failure contract.} Decoding via {!of_string} is total: every
    way an input can be wrong — foreign file, truncation, bit rot,
    hostile length fields — surfaces as an [Error] of the typed
    {!error}, never an exception and never an attacker-controlled
    allocation (length fields are validated against the remaining
    input before anything is allocated). The [_exn] variants exist
    for callers that have already verified their input; they raise
    [Failure] with the rendered error.

    {b Lazy verification} extends that contract along one explicit
    seam: a {e lazy} {!load} of a v3 file verifies the prologue,
    directory, and node-attribute sections before returning [Ok], but
    defers the CSR sections' CRCs (and structural bounds) to the
    synopsis's first numeric access and each value summary's decode to
    its first read. Those deferred checks raise {!Lazy_failure}
    carrying the same typed {!error} at the {e access} point — the
    serve layer catches it and degrades, exactly as it would for a
    load-time [Error]. Pass [~eager:true] (or run on a big-endian
    host) to get the fully-verified string path with no deferred
    failures. Each lazily verified section bumps [codec.lazy_verify].

    Persistence goes through {!Xc_util.Safe_io}: {!save} writes
    atomically (temp file → fsync → rename), so a crash mid-save
    leaves the previous synopsis intact; {!load} reads through the
    fault-injection sites ([codec.load] on the string path and eager
    prefix, [codec.map] before mapping, [codec.section_verify] at
    first touch), so the harness can exercise every failure path.
    Decode failures bump [codec.decode_error] (and CRC failures
    additionally [codec.crc_mismatch]) in {!Xc_util.Metrics.global}.

    Only sealed synopses are persisted — a builder is an intermediate
    construction state, not an artifact. Decoding validates the graph
    before sealing it. *)

type error =
  | Bad_magic  (** not an XCluster synopsis file *)
  | Unsupported_version of int
  | Truncated of { pos : int; need : int }
      (** the input ends where [need] more bytes were required *)
  | Bad_length of { pos : int; len : int; what : string }
      (** a count or length field is negative or larger than the
          remaining input could possibly satisfy *)
  | Checksum_mismatch of { section : string; stored : int; actual : int }
      (** a v2 section failed its CRC-32 *)
  | Corrupt of { pos : int; what : string }
      (** structurally invalid content (bad tag, duplicate node,
          inconsistent graph, …) *)
  | Io of string  (** the file could not be read or written *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

exception Lazy_failure of error
(** A deferred verification or decode failure from a lazily loaded v3
    synopsis, raised at the first access that needed the damaged
    section (see the lazy-verification contract above). Never escapes
    an {e eager} load. *)

(* ---- encoding --------------------------------------------------------- *)

val to_string : Synopsis.Sealed.t -> string
(** The v3 encoding. *)

val to_string_v2 : Synopsis.Sealed.t -> string
(** The framed big-endian v2 encoding, kept for interop with pre-v3
    stores and for differential tests. New code should write v3. *)

val to_string_v1 : Synopsis.Sealed.t -> string
(** The legacy unframed v1 encoding, kept so compatibility tests (and
    tooling that must interoperate with pre-v2 stores) can produce v1
    bytes. New code should write v3. *)

val size_on_disk : Synopsis.Sealed.t -> int
(** Byte length of the v3 encoding — directory, checksums, and
    alignment padding beyond the model's
    {!Synopsis.Sealed.structural_bytes} +
    {!Synopsis.Sealed.value_bytes} accounting, plus the embedded string
    tables. *)

(* ---- decoding --------------------------------------------------------- *)

val of_string : string -> (Synopsis.Sealed.t, error) result
(** Decode either format version. Total: never raises. *)

val of_string_exn : string -> Synopsis.Sealed.t
(** @raise Failure with the rendered error on any decode failure. *)

(* ---- files ------------------------------------------------------------ *)

val save : string -> Synopsis.Sealed.t -> (unit, error) result
(** Atomic write via {!Xc_util.Safe_io.write_atomic}; on [Error _] a
    pre-existing file at the path is untouched. *)

val save_exn : string -> Synopsis.Sealed.t -> unit
(** @raise Failure on I/O failure. *)

val load : ?eager:bool -> string -> (Synopsis.Sealed.t, error) result
(** Read and decode. [load] itself never raises. With [eager:false]
    (the default), a v3 file on a little-endian host is memory-mapped
    with per-section verification deferred to first touch — the
    near-constant-time path; deferred failures later raise
    {!Lazy_failure} at the access point. [eager:true] (and every
    v1/v2 or big-endian load) reads and fully verifies up front, so
    the returned synopsis can never raise. *)

val load_exn : string -> Synopsis.Sealed.t
(** Lazy {!load}. @raise Failure on read or decode failure. *)

(* ---- integrity -------------------------------------------------------- *)

type info = {
  i_version : int;
  i_nodes : int;
  i_bytes : int;  (** encoded size *)
  i_checksummed : bool;
      (** whether every section CRC was verified by this call: true
          for v2 and eager v3; false for v1 (no checksums — a full
          decode is the only check) and lazy v3 (directory + header
          only, the admission-time subset) *)
}

val verify_string : ?eager:bool -> string -> (info, error) result
(** Integrity check without building a synopsis: validates magic,
    version, and section framing, plus every CRC (v2, and v3 with
    [eager:true], the default), the directory/header subset a lazy
    load would check (v3 with [eager:false]), or fully decodes (v1,
    which has nothing cheaper). *)

val verify : ?eager:bool -> string -> (info, error) result
(** {!verify_string} over a file's contents. *)

type section_status = {
  sec_name : string;
  sec_bytes : int;
  sec_crc_ok : bool option;
      (** [None] when the section carries no CRC (v1) or the check was
          skipped (lazy mode) *)
}

val sections_string : ?eager:bool -> string -> (section_status list, error) result
(** Per-section CRC report, in file order. Unlike {!verify_string}
    this does not stop at the first bad checksum — it localizes the
    damage. [eager:false] checks only what a lazy v3 load would at
    admission (the header section), reporting the rest unchecked.
    Framing damage (bad magic, corrupt directory) still fails the
    whole call. *)

val sections : ?eager:bool -> string -> (section_status list, error) result
(** {!sections_string} over a file's contents. *)
