(** Synopsis persistence.

    A synopsis is built once (minutes for a large document) and consulted
    many times by an optimizer, so it must survive the process that built
    it — and survive what disks do to long-lived artifacts. The format
    is a self-contained, versioned binary encoding that embeds the label
    names and dictionary terms it references; loading re-interns them,
    so identifiers are stable across processes even though the global
    intern tables differ.

    {b Format v2} (what {!to_string}/{!save} write) frames the payload
    into length-prefixed sections — header, term table, node records —
    each carrying a CRC-32 ({!Xc_util.Crc32}), so a flipped bit or a
    truncated tail is detected before any graph is rebuilt. {b v1}
    files (unframed, no checksums) remain readable: the decoder
    negotiates on the version field.

    {b Failure contract.} Decoding is total: every way an input can be
    wrong — foreign file, truncation, bit rot, hostile length fields —
    surfaces as an [Error] of the typed {!error}, never an exception
    and never an attacker-controlled allocation (length fields are
    validated against the remaining input before anything is
    allocated). The [_exn] variants exist for callers that have
    already verified their input; they raise [Failure] with the
    rendered error.

    Persistence goes through {!Xc_util.Safe_io}: {!save} writes
    atomically (temp file → fsync → rename), so a crash mid-save
    leaves the previous synopsis intact; {!load} reads through the
    fault-injection sites, so the harness can exercise every failure
    path. Decode failures bump [codec.decode_error] (and CRC failures
    additionally [codec.crc_mismatch]) in {!Xc_util.Metrics.global}.

    Only sealed synopses are persisted — a builder is an intermediate
    construction state, not an artifact. Decoding rebuilds the graph,
    validates it, and freezes it. *)

type error =
  | Bad_magic  (** not an XCluster synopsis file *)
  | Unsupported_version of int
  | Truncated of { pos : int; need : int }
      (** the input ends where [need] more bytes were required *)
  | Bad_length of { pos : int; len : int; what : string }
      (** a count or length field is negative or larger than the
          remaining input could possibly satisfy *)
  | Checksum_mismatch of { section : string; stored : int; actual : int }
      (** a v2 section failed its CRC-32 *)
  | Corrupt of { pos : int; what : string }
      (** structurally invalid content (bad tag, duplicate node,
          inconsistent graph, …) *)
  | Io of string  (** the file could not be read or written *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(* ---- encoding --------------------------------------------------------- *)

val to_string : Synopsis.Sealed.t -> string
(** The v2 encoding. *)

val to_string_v1 : Synopsis.Sealed.t -> string
(** The legacy unframed v1 encoding, kept so compatibility tests (and
    tooling that must interoperate with pre-v2 stores) can produce v1
    bytes. New code should write v2. *)

val size_on_disk : Synopsis.Sealed.t -> int
(** Byte length of the v2 encoding — framing and checksums per section
    beyond the model's {!Synopsis.Sealed.structural_bytes} +
    {!Synopsis.Sealed.value_bytes} accounting, plus the embedded string
    tables. *)

(* ---- decoding --------------------------------------------------------- *)

val of_string : string -> (Synopsis.Sealed.t, error) result
(** Decode either format version. Total: never raises. *)

val of_string_exn : string -> Synopsis.Sealed.t
(** @raise Failure with the rendered error on any decode failure. *)

(* ---- files ------------------------------------------------------------ *)

val save : string -> Synopsis.Sealed.t -> (unit, error) result
(** Atomic write via {!Xc_util.Safe_io.write_atomic}; on [Error _] a
    pre-existing file at the path is untouched. *)

val save_exn : string -> Synopsis.Sealed.t -> unit
(** @raise Failure on I/O failure. *)

val load : string -> (Synopsis.Sealed.t, error) result
(** Read and decode. Total: never raises. *)

val load_exn : string -> Synopsis.Sealed.t
(** @raise Failure on read or decode failure. *)

(* ---- integrity -------------------------------------------------------- *)

type info = {
  i_version : int;
  i_nodes : int;
  i_bytes : int;  (** encoded size *)
  i_checksummed : bool;
      (** true for v2, whose sections were CRC-verified; v1 has no
          checksums, so verification falls back to a full decode *)
}

val verify_string : string -> (info, error) result
(** Integrity check without building a synopsis: validates magic,
    version, section framing and every CRC (v2), or fully decodes
    (v1, which has nothing cheaper). *)

val verify : string -> (info, error) result
(** {!verify_string} over a file's contents. *)
