(** Selectivity estimation over a sealed XCluster synopsis (Sec. 5).

    Estimation enumerates query embeddings — mappings from query
    variables to synopsis nodes satisfying the edge path expressions —
    and combines edge counts with predicate selectivities under the
    generalized {e path-value independence} assumption:
    [sel(u\[p\]/c) = |u| · σ_p(u) · count(u,c)].

    The hot loops run over the sealed form's CSR index arrays
    ({!Synopsis.Sealed}): a frontier is a pair of parallel arrays sorted
    by node index, one expansion step is a linear sweep over contiguous
    adjacency rows, and every float fold runs in ascending index (= sid)
    order. {!selectivity_builder} is the same algorithm over the mutable
    builder graph in the same canonical order, so the two agree bit for
    bit — the differential-testing anchor and the bench [seal] target's
    builder-side timing.

    Descendant steps expand the synopsis graph breadth-first with the
    expansion depth capped at the document height, which keeps the
    computation convergent on cyclic synopses (recursion such as XMark's
    [parlist]//[listitem] creates cycles once merged). *)

val selectivity : Synopsis.Sealed.t -> Xc_twig.Twig_query.t -> float
(** Estimated number of binding tuples. *)

val selectivity_builder : Synopsis.Builder.t -> Xc_twig.Twig_query.t -> float
(** The hashtable-graph estimator, iterating in the sealed path's
    canonical ascending-sid order: bit-identical to {!selectivity} on
    the frozen image of the same builder. Construction-time callers can
    estimate without freezing; everything else should freeze once and
    use {!selectivity}. *)

val predicate_selectivity : Synopsis.Sealed.t -> int -> Xc_twig.Predicate.t -> float
(** [predicate_selectivity syn idx p] — σ_p(u): the predicate's
    selectivity at the synopsis node with index [idx], estimated from
    the node's value summary; 0 when the predicate's type is
    incompatible with the node's value type. *)

val predicate_selectivity_typed :
  Xc_xml.Value.vtype -> Synopsis.Sealed.t -> int -> Xc_twig.Predicate.t -> float
(** {!predicate_selectivity} with the predicate's value type supplied by
    the caller — {!Plan} pre-binds it at compile time so repeated
    estimates skip the per-call type dispatch. The float result is
    identical to {!predicate_selectivity}. *)

type dist = {
  d_idx : int array;  (** node indices, ascending *)
  d_w : float array;  (** matching weights *)
}
(** A node-weight distribution over sealed node indices — what one
    path-expression expansion produces and what the estimator folds
    over. {!Plan}'s per-synopsis memo stores these verbatim, which keeps
    memoized estimates bit-identical to uncached ones (same arrays, same
    fold order). *)

val reach : Synopsis.Sealed.t -> Xc_twig.Path_expr.t -> int -> (int * float) list
(** [(v, count)] pairs keyed by sid, ascending: the expected number of
    elements of cluster [v] reached per element of the source cluster
    (also given by sid) via the path expression. Exposed for tests and
    diagnostics. @raise Not_found when the source sid is absent. *)

val reach_dist : Synopsis.Sealed.t -> Xc_twig.Path_expr.t -> int -> dist
(** {!reach} in index space: source and results are node indices. *)

val step_reach : Synopsis.Sealed.t -> Xc_twig.Path_expr.step -> dist -> dist
(** One step of {!reach_dist}: a child step composes the distribution
    with the sealed child CSR (expand, then label-filter), a descendant
    step applies the height-bounded breadth-first closure. Exposed so
    {!Transition} builds its matrix rows through the exact code —
    hence the exact float operations — the serving baseline runs. *)

val docnode_step : Synopsis.Sealed.t -> Xc_twig.Path_expr.step -> dist
(** The first step taken from the virtual document node (what
    {!root_reach_dist} starts from): a child step selects the root
    cluster, a descendant step every matching cluster weighted by
    extent. *)

val root_reach_dist : Synopsis.Sealed.t -> Xc_twig.Path_expr.t -> dist
(** Distribution for a path expression taken from the virtual document
    node (the root variable q0): a leading child step selects the root
    cluster, a leading descendant step every matching cluster, weighted
    by extent. Empty on the empty expression. *)

type explanation = {
  query_node : int;                   (** [Twig_query.qid] *)
  bindings : (int * string * float) list;
      (** (synopsis sid, label, expected elements bound) per cluster the
          variable can embed onto, descending by count *)
}

val explain : Synopsis.Sealed.t -> Xc_twig.Twig_query.t -> explanation list
(** The query's embeddings, per variable: which clusters each variable
    maps onto and how many elements are expected to bind there. This is
    the information an optimizer would inspect when it distrusts an
    estimate; the CLI exposes it as [estimate --explain]. *)
