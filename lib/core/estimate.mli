(** Selectivity estimation over an XCluster synopsis (Sec. 5).

    Estimation enumerates query embeddings — mappings from query
    variables to synopsis nodes satisfying the edge path expressions —
    and combines edge counts with predicate selectivities under the
    generalized {e path-value independence} assumption:
    [sel(u\[p\]/c) = |u| · σ_p(u) · count(u,c)].

    Descendant steps expand the synopsis graph breadth-first with the
    expansion depth capped at the document height, which keeps the
    computation convergent on cyclic synopses (recursion such as XMark's
    [parlist]//[listitem] creates cycles once merged). *)

val selectivity : Synopsis.t -> Xc_twig.Twig_query.t -> float
(** Estimated number of binding tuples. *)

val predicate_selectivity : Synopsis.snode -> Xc_twig.Predicate.t -> float
(** σ_p(u): the predicate's selectivity at a synopsis node, estimated
    from the node's value summary; 0 when the predicate's type is
    incompatible with the node's value type. *)

val predicate_selectivity_typed :
  Xc_xml.Value.vtype -> Synopsis.snode -> Xc_twig.Predicate.t -> float
(** {!predicate_selectivity} with the predicate's value type supplied by
    the caller — {!Plan} pre-binds it at compile time so repeated
    estimates skip the per-call type dispatch. The float result is
    identical to {!predicate_selectivity}. *)

val reach : Synopsis.t -> Xc_twig.Path_expr.t -> int -> (int * float) list
(** [(v, count)] pairs: the expected number of elements of cluster [v]
    reached per element of the source cluster via the path expression.
    Exposed for tests and diagnostics. *)

val reach_tbl : Synopsis.t -> Xc_twig.Path_expr.t -> int -> (int, float) Hashtbl.t
(** {!reach} as the weight table the estimator folds over. The table is
    freshly allocated and owned by the caller; {!Plan}'s per-synopsis
    memo stores these verbatim, which keeps memoized estimates
    bit-identical to uncached ones (same table, same fold order). *)

val root_reach_tbl : Synopsis.t -> Xc_twig.Path_expr.t -> (int, float) Hashtbl.t
(** Weight table for a path expression taken from the virtual document
    node (the root variable q0): a leading child step selects the root
    cluster, a leading descendant step every matching cluster, weighted
    by extent. Empty table on the empty expression. *)

type explanation = {
  query_node : int;                   (** [Twig_query.qid] *)
  bindings : (int * string * float) list;
      (** (synopsis sid, label, expected elements bound) per cluster the
          variable can embed onto, descending by count *)
}

val explain : Synopsis.t -> Xc_twig.Twig_query.t -> explanation list
(** The query's embeddings, per variable: which clusters each variable
    maps onto and how many elements are expected to bind there. This is
    the information an optimizer would inspect when it distrusts an
    estimate; the CLI exposes it as [estimate --explain]. *)
