(** The candidate-merge pool of XCLUSTERBUILD (Sec. 4.3, Fig. 6).

    The pool is a marginal-loss priority queue over candidate node
    merges, built bottom-up by level (shortest distance to a leaf):
    pairs are only considered among label/type-compatible nodes whose
    level is at most the current threshold, matching the intuition that
    parents merge well once their children have merged.

    Two efficiency heuristics bound the quadratic pair space (both
    documented in DESIGN.md): per-group pair generation falls back to
    count-nearest-neighbour pairing when a group is large, and the pool
    keeps only the [hm] best candidates. *)

type cand = {
  u : int;
  v : int;
  delta : float;
  saved : int;
}

type t = cand Xc_util.Heap.t

type config = {
  hm : int;           (** max pool size (paper: 10000) *)
  hl : int;           (** replenish threshold (paper: 5000) *)
  neighbor_k : int;   (** neighbours per node when a group is too large *)
  pair_cap : int;     (** max exhaustive pairs per group *)
  structural_only : bool;  (** TREESKETCH-style Δ (ablation) *)
}

val default_config : config

val group_key : Synopsis.Builder.node -> int * int * int
(** Nodes are mergeable only within the same group:
    (label, value type, value-summary kind). *)

val build : config -> Synopsis.Builder.t -> levels:Synopsis.Levels.t ->
  level:int -> t
(** Builds a fresh pool of candidates among nodes with level ≤ [level],
    keeping the [hm] best by marginal loss. *)

val push_neighbors : config -> Synopsis.Builder.t -> t ->
  levels:Synopsis.Levels.t -> level:int -> Synopsis.Builder.node -> unit
(** After a merge produced a new node, pushes candidates pairing it with
    up to [neighbor_k] count-nearest group members (the paper's
    "recompute losses in the neighborhood" step, in lazy form). *)

val pop_valid : Synopsis.Builder.t -> t -> cand option
(** Pops the best candidate whose two nodes still exist (stale entries
    referring to already-merged nodes are discarded). *)

(**/**)

val cand_evals : int ref
val cand_time : float ref
(** Diagnostics: number of candidate Δ evaluations and the total time
    spent in them (benchmark instrumentation). *)
