(** The candidate-merge pool of XCLUSTERBUILD (Sec. 4.3, Fig. 6).

    The pool is a marginal-loss priority queue over candidate node
    merges, built bottom-up by level (shortest distance to a leaf):
    pairs are only considered among label/type-compatible nodes whose
    level is at most the current threshold, matching the intuition that
    parents merge well once their children have merged.

    Two efficiency heuristics bound the quadratic pair space (both
    documented in DESIGN.md): per-group pair generation falls back to
    count-nearest-neighbour pairing when a group is large, and the pool
    keeps only the [hm] best candidates.

    Construction performance (DESIGN.md Sec. 8): compatible peers come
    from the Builder's incrementally maintained group index, so neither
    {!build} nor {!push_neighbors} scans the node table; candidate
    scoring (a pure read over the builder) fans out over
    [Xc_util.Par.map] workers. Candidates carry a total order —
    marginal-loss priority, then the (u, v) sid pair — independent of
    evaluation order, so the pool's behaviour is bit-identical for any
    worker count. Diagnostics ([pool.cand_evals], [pool.scanned],
    [pool.rescored], the [pool.score] timer, ...) report into
    [Xc_util.Metrics.global] from the coordinating domain only. *)

type cand = {
  u : int;
  v : int;
  delta : float;
  saved : int;
}

type t = cand Xc_util.Heap.t

type config = {
  hm : int;           (** max pool size (paper: 10000) *)
  hl : int;           (** replenish threshold (paper: 5000) *)
  neighbor_k : int;   (** neighbours per node when a group is too large *)
  pair_cap : int;     (** max exhaustive pairs per group *)
  structural_only : bool;  (** TREESKETCH-style Δ (ablation) *)
  domains : int;
      (** candidate-scoring workers; [<= 0] (the default) defers to the
          [XC_DOMAINS] environment variable via
          {!Xc_util.Par.env_domains} *)
  full_scan : bool;
      (** bypass the Builder group index and regroup by scanning every
          node — the pre-index sequential baseline, kept for the [build]
          bench target and differential tests (identical results,
          asymptotically slower) *)
}

val default_config : config

val group_key : Synopsis.Builder.node -> int * int * int
(** Nodes are mergeable only within the same group:
    (label, value type, value-summary kind). Alias of
    {!Synopsis.Builder.group_key}, the key of the Builder's incremental
    group index. *)

val build : config -> Synopsis.Builder.t -> levels:Synopsis.Levels.t ->
  level:int -> t
(** Builds a fresh pool of candidates among nodes with level ≤ [level],
    keeping the [hm] best by marginal loss. *)

val build_frontier : config -> Synopsis.Builder.t ->
  levels:Synopsis.Levels.t -> frontier:int list -> t
(** The localized form of {!build} for incremental repair
    ({!Update}): candidates pair each {e dirty} node (a sid in
    [frontier]; duplicates and since-removed sids are ignored) with its
    [neighbor_k] count-nearest group members, with no level threshold —
    repair starts from the perturbed clusters, wherever they sit in the
    bottom-up order. Touches only the frontier nodes' groups, never the
    node table, so its cost scales with the perturbation, not the
    synopsis. Deterministic: the frontier is processed in ascending sid
    order and each neighbourhood push is itself deterministic. *)

val push_neighbors : config -> Synopsis.Builder.t -> t ->
  levels:Synopsis.Levels.t -> level:int -> Synopsis.Builder.node -> unit
(** After a merge produced a new node, pushes candidates pairing it with
    up to [neighbor_k] count-nearest group members (the paper's
    "recompute losses in the neighborhood" step, in lazy form). Touches
    only the node's group — never the full node table. *)

val pop_valid : config -> Synopsis.Builder.t -> t -> cand option
(** Pops the best candidate whose two nodes still exist (stale entries
    referring to already-merged nodes are discarded) and whose score is
    current: entries whose endpoints survive but whose neighborhood
    changed since scoring (detected by a [saved_bytes] drift) are
    rescored and reinserted rather than returned. The returned
    candidate's [saved] therefore always equals
    [Merge.saved_bytes] on the current graph. *)
