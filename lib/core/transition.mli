(** Precomputed path-expression transition matrices (the serving-side
    reach store).

    A transition matrix fixes one path expression against one sealed
    synopsis and stores, in CSR form over synopsis node indices, the
    full reach relation: row [u] is the node-weight distribution
    {!Estimate.reach_dist} would compute from source [u] — every row of
    every matrix is built through {!Estimate.step_reach}, so the stored
    floats are {b bit-identical} to what the step-by-step estimator
    produces. Single child steps come straight from the sealed child
    CSR (one expand + label filter), descendant steps apply the
    height-bounded breadth-first closure, and multi-step expressions
    compose step by step, each row staying sparse throughout.

    Once built, serving reads a row — a contiguous slice of the [idx]/
    [w] arrays — instead of re-walking the synopsis frontier, which is
    what turns {!Plan.Batch}'s inner loop into plain array traversals.

    Matrices are immutable after {!build}; sharing one across domains
    is safe. *)

type t

val build : Synopsis.Sealed.t -> Xc_twig.Path_expr.t -> t
(** Materialize the reach relation of the expression over every source
    node of the synopsis. Cost is one {!Estimate.reach_dist} per node;
    callers ({!Plan.Batch}) build each distinct interned expression
    once per synopsis and reuse it for every query and pass. *)

val expr : t -> Xc_twig.Path_expr.t
val n_rows : t -> int

val nnz : t -> int
(** Stored (source, target) entries — the matrix's memory footprint in
    cells. *)

val mean_row_len : t -> float
(** [nnz / n_rows] — the matrix's average stored entries per source
    node. {!Plan.Batch} gates the opt-in 4-accumulator blocked kernel
    on this: unrolling only pays off on long rows, and short-row
    matrices (the common case on paper-scale workloads) fall back to
    the scalar kernel automatically. 0 on an empty matrix. *)

val row : t -> int -> Estimate.dist
(** Row [u] as a fresh dist (copies the slice); for tests and
    diagnostics. Serving loops read {!off}/{!idx}/{!weights} in place. *)

val off : t -> Synopsis.Sealed.ba_i
(** The physical CSR buffers, unboxed: row [u] spans
    [idx.{off.{u}} .. idx.{off.{u+1}-1}] (target node indices,
    ascending) with matching {!weights}. The batch kernels stream these
    slices directly. Treat as read-only. *)

val idx : t -> Synopsis.Sealed.ba_i
val weights : t -> Synopsis.Sealed.ba_f

val root_row : Synopsis.Sealed.t -> Xc_twig.Path_expr.t -> Estimate.dist
(** The distribution from the virtual document node
    ({!Estimate.root_reach_dist}) — the "row" used when the expression
    labels a root edge. *)
