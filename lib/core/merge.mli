(** The node-merge operation (Sec. 4.1).

    [merge(S,u,v)] replaces two label- and type-compatible clusters with
    a single cluster [w] whose extent is the union: counts add, child
    edge counts combine weighted by extent sizes, parent edge counts
    add, and value summaries fuse. Self-edges arising when [u] is a
    parent or child of [v] (or of itself) are remapped onto [w]. *)

val compatible : Synopsis.Builder.node -> Synopsis.Builder.node -> bool
(** Same label, same value type, and matching value-summary presence. *)

val saved_bytes :
  Synopsis.Builder.t -> Synopsis.Builder.node -> Synopsis.Builder.node -> int
(** Structural bytes the merge would save ([|S|_str − |S′|_str]):
    one node plus every deduplicated child and parent edge. *)

val saved_bytes_with :
  Synopsis.Builder.t -> Synopsis.Builder.node -> Synopsis.Builder.node ->
  merged_children:int -> int
(** {!saved_bytes} with the merged node's distinct-child count already
    known (from {!Delta.merge_delta_counted}'s gather), skipping the
    child-edge walk. *)

val apply : Synopsis.Builder.t -> int -> int -> Synopsis.Builder.node
(** Performs the merge and returns the new node. The two source nodes
    are removed from the synopsis; the root is re-targeted if it was one
    of them. @raise Invalid_argument if the nodes are incompatible. *)
