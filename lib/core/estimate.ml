open Xc_twig
module Vs = Xc_vsumm.Value_summary
module Metrics = Xc_util.Metrics
module B = Synopsis.Builder
module S = Synopsis.Sealed
module BA1 = Bigarray.Array1

(* ---- predicate selectivity -------------------------------------------- *)

(* shared core over (node vtype, node vsumm) so the sealed path and the
   builder baseline dispatch identically *)
let pred_sel pred_vtype node_vtype vsumm pred =
  let compatible = Xc_xml.Value.vtype_equal pred_vtype node_vtype in
  if not compatible then 0.0
  else
    match pred with
    | Predicate.Range (l, h) -> Vs.numeric_selectivity vsumm ~lo:l ~hi:h
    | Predicate.Contains qs -> Vs.substring_selectivity vsumm qs
    | Predicate.Ft_contains terms -> Vs.text_selectivity vsumm terms
    | Predicate.Ft_any terms ->
      (* Boolean model, term independence: P(any) = 1 - prod (1 - f) *)
      1.0
      -. List.fold_left (fun acc t -> acc *. (1.0 -. Vs.term_frequency vsumm t)) 1.0 terms
    | Predicate.Ft_excludes terms ->
      List.fold_left (fun acc t -> acc *. (1.0 -. Vs.term_frequency vsumm t)) 1.0 terms

let predicate_selectivity_typed vt syn i pred = pred_sel vt (S.vtype syn i) (S.vsumm syn i) pred
let predicate_selectivity syn i pred = predicate_selectivity_typed (Predicate.vtype pred) syn i pred

(* ---- the sealed CSR read path ------------------------------------------ *)

(* A node-weight distribution: parallel arrays sorted ascending by node
   index. Index order equals sid order (freeze sorts sids), so every
   fold below runs in the one canonical order both estimation paths
   share — float sums come out bit-identical. *)
type dist = {
  d_idx : int array;
  d_w : float array;
}

let empty_dist = { d_idx = [||]; d_w = [||] }

(* gather the touched accumulator cells in ascending index order *)
let gather n acc flag touched =
  let out_idx = Array.make touched 0 and out_w = Array.make touched 0.0 in
  let j = ref 0 in
  for c = 0 to n - 1 do
    if Bytes.unsafe_get flag c = '\001' then begin
      out_idx.(!j) <- c;
      out_w.(!j) <- acc.(c);
      incr j
    end
  done;
  { d_idx = out_idx; d_w = out_w }

(* one child-axis expansion of a weight distribution: scatter each
   source row (a contiguous unboxed CSR slice) into the accumulator.
   Row edges run in ascending target order and sources in ascending
   index order, so the per-cell summation order is the canonical one
   both estimation paths share — bit-identical to the builder fold. *)
let expand_children syn dist =
  let off = S.child_off_ba syn
  and idx = S.child_idx_ba syn
  and avg = S.child_avg_ba syn in
  let n = S.n_nodes syn in
  let acc = Array.make n 0.0 in
  let flag = Bytes.make n '\000' in
  let touched = ref 0 in
  for i = 0 to Array.length dist.d_idx - 1 do
    let u = Array.unsafe_get dist.d_idx i and w = Array.unsafe_get dist.d_w i in
    for e = BA1.unsafe_get off u to BA1.unsafe_get off (u + 1) - 1 do
      let c = BA1.unsafe_get idx e in
      if Bytes.unsafe_get flag c = '\000' then begin
        Bytes.unsafe_set flag c '\001';
        incr touched
      end;
      Array.unsafe_set acc c (Array.unsafe_get acc c +. (w *. BA1.unsafe_get avg e))
    done
  done;
  gather n acc flag !touched

let filter_test syn test dist =
  let labels = S.labels syn in
  let m = Array.length dist.d_idx in
  let keep = Array.make m false in
  let kept = ref 0 in
  for i = 0 to m - 1 do
    if Path_expr.matches_test test labels.(dist.d_idx.(i)) then begin
      keep.(i) <- true;
      incr kept
    end
  done;
  if !kept = m then dist
  else begin
    let out_idx = Array.make !kept 0 and out_w = Array.make !kept 0.0 in
    let j = ref 0 in
    for i = 0 to m - 1 do
      if keep.(i) then begin
        out_idx.(!j) <- dist.d_idx.(i);
        out_w.(!j) <- dist.d_w.(i);
        incr j
      end
    done;
    { d_idx = out_idx; d_w = out_w }
  end

let step_reach syn step dist =
  match step.Path_expr.axis with
  | Path_expr.Child -> filter_test syn step.Path_expr.test (expand_children syn dist)
  | Path_expr.Descendant ->
    let labels = S.labels syn in
    let n = S.n_nodes syn in
    let acc = Array.make n 0.0 in
    let flag = Bytes.make n '\000' in
    let touched = ref 0 in
    let frontier = ref dist in
    let depth = ref 0 in
    let height = S.doc_height syn in
    while Array.length !frontier.d_idx > 0 && !depth < height do
      incr depth;
      let next = expand_children syn !frontier in
      for i = 0 to Array.length next.d_idx - 1 do
        let c = next.d_idx.(i) in
        if Path_expr.matches_test step.Path_expr.test labels.(c) then begin
          if Bytes.unsafe_get flag c = '\000' then begin
            Bytes.unsafe_set flag c '\001';
            incr touched
          end;
          acc.(c) <- acc.(c) +. next.d_w.(i)
        end
      done;
      frontier := next
    done;
    Metrics.observe Metrics.global "reach.expansion_depth" (float_of_int !depth);
    gather n acc flag !touched

let reach_dist syn expr src =
  let dist = { d_idx = [| src |]; d_w = [| 1.0 |] } in
  List.fold_left (fun d step -> step_reach syn step d) dist expr

let reach syn expr src =
  match S.index_of_sid syn src with
  | None -> raise Not_found
  | Some i ->
    let d = reach_dist syn expr i in
    List.init (Array.length d.d_idx) (fun k -> (S.sid_of_index syn d.d_idx.(k), d.d_w.(k)))

(* weight distribution for the first step taken from the virtual
   document node: a child step selects the root cluster (one element),
   while a descendant step reaches every element of every matching
   cluster *)
let docnode_step syn step =
  match step.Path_expr.axis with
  | Path_expr.Child ->
    let root = S.root syn in
    if Path_expr.matches_test step.Path_expr.test (S.label syn root) then
      { d_idx = [| root |]; d_w = [| 1.0 |] }
    else empty_dist
  | Path_expr.Descendant ->
    (* single pass over the label array: matches land in a doubling
       buffer, so the scan cost is paid once instead of count + fill.
       Weights come from the precomputed unboxed float counts — the
       same bits [float_of_int counts.(i)] would produce. *)
    let labels = S.labels syn and fcounts = S.fcounts syn in
    let n = S.n_nodes syn in
    let buf_idx = ref (Array.make 16 0) and buf_w = ref (Array.make 16 0.0) in
    let m = ref 0 in
    for i = 0 to n - 1 do
      if Path_expr.matches_test step.Path_expr.test labels.(i) then begin
        if !m = Array.length !buf_idx then begin
          let cap = 2 * !m in
          let gi = Array.make cap 0 and gw = Array.make cap 0.0 in
          Array.blit !buf_idx 0 gi 0 !m;
          Array.blit !buf_w 0 gw 0 !m;
          buf_idx := gi;
          buf_w := gw
        end;
        !buf_idx.(!m) <- i;
        !buf_w.(!m) <- BA1.unsafe_get fcounts i;
        incr m
      end
    done;
    { d_idx = Array.sub !buf_idx 0 !m; d_w = Array.sub !buf_w 0 !m }

let root_reach_dist syn expr =
  match expr with
  | [] -> empty_dist
  | first :: rest ->
    let dist = docnode_step syn first in
    List.fold_left (fun d s -> step_reach syn s d) dist rest

let selectivity syn query =
  let memo : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  (* expected binding tuples of the query subtree per element of the
     synopsis node the variable is mapped to *)
  let rec est qnode idx =
    let key = (qnode.Twig_query.qid, idx) in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
      let sigma =
        List.fold_left
          (fun acc pred -> acc *. predicate_selectivity syn idx pred)
          1.0 qnode.Twig_query.preds
      in
      let result =
        if sigma <= 0.0 then 0.0
        else
          List.fold_left
            (fun acc (expr, child) ->
              if acc <= 0.0 then 0.0
              else begin
                let reached = reach_dist syn expr idx in
                let sum = ref 0.0 in
                for i = 0 to Array.length reached.d_idx - 1 do
                  sum := !sum +. (reached.d_w.(i) *. est child reached.d_idx.(i))
                done;
                acc *. !sum
              end)
            sigma qnode.Twig_query.edges
      in
      Hashtbl.replace memo key result;
      result
  in
  (* q0 binds to the virtual document node *)
  let root_q = query.Twig_query.root in
  if root_q.Twig_query.preds <> [] then 0.0
  else
    List.fold_left
      (fun acc (expr, child) ->
        if acc <= 0.0 then 0.0
        else
          match expr with
          | [] -> 0.0
          | _ :: _ ->
            let reached = root_reach_dist syn expr in
            let sum = ref 0.0 in
            for i = 0 to Array.length reached.d_idx - 1 do
              sum := !sum +. (reached.d_w.(i) *. est child reached.d_idx.(i))
            done;
            acc *. !sum)
      1.0 root_q.Twig_query.edges

(* ---- the builder baseline ---------------------------------------------
   The pre-freeze estimator: same semantics over the mutable hashtable
   graph, iterating frontiers and children in ascending-sid order — the
   canonical order the sealed CSR path uses — so the two paths perform
   identical float operations in identical order and agree bit for bit.
   Kept for differential testing and as the bench [seal] target's
   builder-side timing. *)

let b_sorted_pairs tbl =
  let pairs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.sort (fun (a, _) (b, _) -> Int.compare a b) pairs

let b_children_sorted syn sid =
  let node = B.find syn sid in
  let acc = ref [] in
  B.succ syn node (fun c avg -> acc := (c, avg) :: !acc);
  List.sort (fun (a, _) (b, _) -> Int.compare a b) !acc

let b_expand syn dist =
  let acc = Hashtbl.create 16 in
  List.iter
    (fun (usid, w) ->
      List.iter
        (fun (c, avg) ->
          let cur = Option.value ~default:0.0 (Hashtbl.find_opt acc c) in
          Hashtbl.replace acc c (cur +. (w *. avg)))
        (b_children_sorted syn usid))
    dist;
  b_sorted_pairs acc

let b_filter syn test dist =
  List.filter (fun (sid, _) -> Path_expr.matches_test test (B.label (B.find syn sid))) dist

let b_step_reach syn step dist =
  match step.Path_expr.axis with
  | Path_expr.Child -> b_filter syn step.Path_expr.test (b_expand syn dist)
  | Path_expr.Descendant ->
    let out = Hashtbl.create 16 in
    let frontier = ref dist in
    let depth = ref 0 in
    let height = B.doc_height syn in
    while !frontier <> [] && !depth < height do
      incr depth;
      let next = b_expand syn !frontier in
      List.iter
        (fun (sid, w) ->
          if Path_expr.matches_test step.Path_expr.test (B.label (B.find syn sid)) then
            Hashtbl.replace out sid
              (w +. Option.value ~default:0.0 (Hashtbl.find_opt out sid)))
        next;
      frontier := next
    done;
    Metrics.observe Metrics.global "reach.expansion_depth" (float_of_int !depth);
    b_sorted_pairs out

let b_reach syn expr src =
  List.fold_left (fun d step -> b_step_reach syn step d) [ (src, 1.0) ] expr

let b_docnode_step syn step =
  match step.Path_expr.axis with
  | Path_expr.Child ->
    let root = B.root_node syn in
    if Path_expr.matches_test step.Path_expr.test (B.label root) then
      [ (B.sid root, 1.0) ]
    else []
  | Path_expr.Descendant ->
    B.fold
      (fun acc node ->
        if Path_expr.matches_test step.Path_expr.test (B.label node) then
          (B.sid node, float_of_int (B.count node)) :: acc
        else acc)
      [] syn
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let b_root_reach syn expr =
  match expr with
  | [] -> []
  | first :: rest ->
    List.fold_left (fun d s -> b_step_reach syn s d) (b_docnode_step syn first) rest

let selectivity_builder syn query =
  let memo : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let rec est qnode sid =
    let key = (qnode.Twig_query.qid, sid) in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
      let node = B.find syn sid in
      let sigma =
        List.fold_left
          (fun acc pred -> acc *. pred_sel (Predicate.vtype pred) (B.vtype node) (B.vsumm node) pred)
          1.0 qnode.Twig_query.preds
      in
      let result =
        if sigma <= 0.0 then 0.0
        else
          List.fold_left
            (fun acc (expr, child) ->
              if acc <= 0.0 then 0.0
              else begin
                let reached = b_reach syn expr sid in
                let sum =
                  List.fold_left
                    (fun acc' (vsid, weight) -> acc' +. (weight *. est child vsid))
                    0.0 reached
                in
                acc *. sum
              end)
            sigma qnode.Twig_query.edges
      in
      Hashtbl.replace memo key result;
      result
  in
  let root_q = query.Twig_query.root in
  if root_q.Twig_query.preds <> [] then 0.0
  else
    List.fold_left
      (fun acc (expr, child) ->
        if acc <= 0.0 then 0.0
        else
          match expr with
          | [] -> 0.0
          | _ :: _ ->
            let reached = b_root_reach syn expr in
            let sum =
              List.fold_left
                (fun acc' (sid, weight) -> acc' +. (weight *. est child sid))
                0.0 reached
            in
            acc *. sum)
      1.0 root_q.Twig_query.edges

(* ---- explanations ------------------------------------------------------ *)

type explanation = {
  query_node : int;
  bindings : (int * string * float) list;
}

let explain syn query =
  (* forward pass: expected number of elements bound to each (variable,
     cluster) pair, ignoring predicates on deeper subtrees (an upper
     bound on the true binding distribution, which is what an optimizer
     inspects to pick access paths) *)
  let acc : (int, (int, float) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let note qid idx weight =
    let tbl =
      match Hashtbl.find_opt acc qid with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 8 in
        Hashtbl.add acc qid t;
        t
    in
    Hashtbl.replace tbl idx (weight +. Option.value ~default:0.0 (Hashtbl.find_opt tbl idx))
  in
  let rec walk qnode dist =
    for i = 0 to Array.length dist.d_idx - 1 do
      let idx = dist.d_idx.(i) and weight = dist.d_w.(i) in
      let sigma =
        List.fold_left
          (fun s pred -> s *. predicate_selectivity syn idx pred)
          1.0 qnode.Twig_query.preds
      in
      note qnode.Twig_query.qid idx (weight *. sigma)
    done;
    List.iter
      (fun (expr, child) ->
        let n = S.n_nodes syn in
        let racc = Array.make n 0.0 in
        let flag = Bytes.make n '\000' in
        let touched = ref 0 in
        for i = 0 to Array.length dist.d_idx - 1 do
          let from_here = reach_dist syn expr dist.d_idx.(i) in
          let weight = dist.d_w.(i) in
          for k = 0 to Array.length from_here.d_idx - 1 do
            let v = from_here.d_idx.(k) in
            if Bytes.unsafe_get flag v = '\000' then begin
              Bytes.unsafe_set flag v '\001';
              incr touched
            end;
            racc.(v) <- racc.(v) +. (weight *. from_here.d_w.(k))
          done
        done;
        walk child (gather n racc flag !touched))
      qnode.Twig_query.edges
  in
  let root_q = query.Twig_query.root in
  List.iter
    (fun (expr, child) ->
      match expr with
      | [] -> ()
      | _ :: _ -> walk child (root_reach_dist syn expr))
    root_q.Twig_query.edges;
  Hashtbl.fold
    (fun qid tbl out ->
      let bindings =
        Hashtbl.fold
          (fun idx w acc' ->
            (S.sid_of_index syn idx, Xc_xml.Label.to_string (S.label syn idx), w) :: acc')
          tbl []
        |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
      in
      { query_node = qid; bindings } :: out)
    acc []
  |> List.sort (fun a b -> Int.compare a.query_node b.query_node)
