open Xc_twig
module Vs = Xc_vsumm.Value_summary
module Metrics = Xc_util.Metrics

let predicate_selectivity_typed vtype node pred =
  let compatible = Xc_xml.Value.vtype_equal vtype node.Synopsis.vtype in
  if not compatible then 0.0
  else
    match pred with
    | Predicate.Range (l, h) -> Vs.numeric_selectivity node.Synopsis.vsumm ~lo:l ~hi:h
    | Predicate.Contains qs -> Vs.substring_selectivity node.Synopsis.vsumm qs
    | Predicate.Ft_contains terms -> Vs.text_selectivity node.Synopsis.vsumm terms
    | Predicate.Ft_any terms ->
      (* Boolean model, term independence: P(any) = 1 - prod (1 - f) *)
      1.0
      -. List.fold_left
           (fun acc t -> acc *. (1.0 -. Vs.term_frequency node.Synopsis.vsumm t))
           1.0 terms
    | Predicate.Ft_excludes terms ->
      List.fold_left
        (fun acc t -> acc *. (1.0 -. Vs.term_frequency node.Synopsis.vsumm t))
        1.0 terms

let predicate_selectivity node pred =
  predicate_selectivity_typed (Predicate.vtype pred) node pred

(* one child-axis expansion of a node-weight table *)
let expand_children syn dist =
  let next = Hashtbl.create 16 in
  Hashtbl.iter
    (fun sid weight ->
      let node = Synopsis.find syn sid in
      Hashtbl.iter
        (fun child avg ->
          let cur = Option.value ~default:0.0 (Hashtbl.find_opt next child) in
          Hashtbl.replace next child (cur +. (weight *. avg)))
        node.Synopsis.children)
    dist;
  next

let filter_test syn test dist acc =
  Hashtbl.iter
    (fun sid weight ->
      let node = Synopsis.find syn sid in
      if Path_expr.matches_test test node.Synopsis.label then begin
        let cur = Option.value ~default:0.0 (Hashtbl.find_opt acc sid) in
        Hashtbl.replace acc sid (cur +. weight)
      end)
    dist;
  acc

let step_reach syn step dist =
  match step.Path_expr.axis with
  | Path_expr.Child -> filter_test syn step.Path_expr.test (expand_children syn dist) (Hashtbl.create 16)
  | Path_expr.Descendant ->
    let out = Hashtbl.create 16 in
    let frontier = ref dist in
    let depth = ref 0 in
    while Hashtbl.length !frontier > 0 && !depth < syn.Synopsis.doc_height do
      incr depth;
      let next = expand_children syn !frontier in
      ignore (filter_test syn step.Path_expr.test next out);
      frontier := next
    done;
    Metrics.observe Metrics.global "reach.expansion_depth" (float_of_int !depth);
    out

let reach_tbl syn expr src =
  let dist = Hashtbl.create 1 in
  Hashtbl.replace dist src 1.0;
  List.fold_left (fun d step -> step_reach syn step d) dist expr

let reach syn expr src =
  Hashtbl.fold (fun sid w acc -> (sid, w) :: acc) (reach_tbl syn expr src) []

(* weight table for the first step taken from the virtual document
   node: a child step selects the root cluster (one element), while a
   descendant step reaches every element of every matching cluster *)
let docnode_step syn step =
  let dist = Hashtbl.create 16 in
  (match step.Path_expr.axis with
  | Path_expr.Child ->
    let root = Synopsis.root_node syn in
    if Path_expr.matches_test step.Path_expr.test root.Synopsis.label then
      Hashtbl.replace dist root.Synopsis.sid 1.0
  | Path_expr.Descendant ->
    Synopsis.iter
      (fun node ->
        if Path_expr.matches_test step.Path_expr.test node.Synopsis.label then
          Hashtbl.replace dist node.Synopsis.sid (float_of_int node.Synopsis.count))
      syn);
  dist

let root_reach_tbl syn expr =
  match expr with
  | [] -> Hashtbl.create 1
  | first :: rest ->
    let dist = docnode_step syn first in
    List.fold_left (fun d s -> step_reach syn s d) dist rest

let selectivity syn query =
  let memo : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  (* expected binding tuples of the query subtree per element of the
     synopsis node the variable is mapped to *)
  let rec est qnode sid =
    let key = (qnode.Twig_query.qid, sid) in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
      let node = Synopsis.find syn sid in
      let sigma =
        List.fold_left
          (fun acc pred -> acc *. predicate_selectivity node pred)
          1.0 qnode.Twig_query.preds
      in
      let result =
        if sigma <= 0.0 then 0.0
        else
          List.fold_left
            (fun acc (expr, child) ->
              if acc <= 0.0 then 0.0
              else begin
                let reached = reach_tbl syn expr sid in
                let sum =
                  Hashtbl.fold
                    (fun vsid weight acc' -> acc' +. (weight *. est child vsid))
                    reached 0.0
                in
                acc *. sum
              end)
            sigma qnode.Twig_query.edges
      in
      Hashtbl.replace memo key result;
      result
  in
  (* q0 binds to the virtual document node *)
  let root_q = query.Twig_query.root in
  if root_q.Twig_query.preds <> [] then 0.0
  else
    List.fold_left
      (fun acc (expr, child) ->
        if acc <= 0.0 then 0.0
        else
          match expr with
          | [] -> 0.0
          | _ :: _ ->
            let reached = root_reach_tbl syn expr in
            let sum =
              Hashtbl.fold
                (fun sid weight acc' -> acc' +. (weight *. est child sid))
                reached 0.0
            in
            acc *. sum)
      1.0 root_q.Twig_query.edges

type explanation = {
  query_node : int;
  bindings : (int * string * float) list;
}

let explain syn query =
  (* forward pass: expected number of elements bound to each (variable,
     cluster) pair, ignoring predicates on deeper subtrees (an upper
     bound on the true binding distribution, which is what an optimizer
     inspects to pick access paths) *)
  let acc : (int, (int, float) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let note qid sid weight =
    let tbl =
      match Hashtbl.find_opt acc qid with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 8 in
        Hashtbl.add acc qid t;
        t
    in
    Hashtbl.replace tbl sid (weight +. Option.value ~default:0.0 (Hashtbl.find_opt tbl sid))
  in
  let rec walk qnode dist =
    Hashtbl.iter
      (fun sid weight ->
        let node = Synopsis.find syn sid in
        let sigma =
          List.fold_left
            (fun s pred -> s *. predicate_selectivity node pred)
            1.0 qnode.Twig_query.preds
        in
        note qnode.Twig_query.qid sid (weight *. sigma))
      dist;
    List.iter
      (fun (expr, child) ->
        let reached = Hashtbl.create 16 in
        Hashtbl.iter
          (fun sid weight ->
            let from_here =
              List.fold_left
                (fun d step -> step_reach syn step d)
                (let d = Hashtbl.create 1 in
                 Hashtbl.replace d sid 1.0;
                 d)
                expr
            in
            Hashtbl.iter
              (fun v w ->
                Hashtbl.replace reached v
                  ((weight *. w) +. Option.value ~default:0.0 (Hashtbl.find_opt reached v)))
              from_here)
          dist;
        walk child reached)
      qnode.Twig_query.edges
  in
  let root_q = query.Twig_query.root in
  List.iter
    (fun (expr, child) ->
      match expr with
      | [] -> ()
      | _ :: _ -> walk child (root_reach_tbl syn expr))
    root_q.Twig_query.edges;
  Hashtbl.fold
    (fun qid tbl out ->
      let bindings =
        Hashtbl.fold
          (fun sid w acc' ->
            (sid, Xc_xml.Label.to_string (Synopsis.find syn sid).Synopsis.label, w)
            :: acc')
          tbl []
        |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
      in
      { query_node = qid; bindings } :: out)
    acc []
  |> List.sort (fun a b -> Int.compare a.query_node b.query_node)
