open Xc_twig
module Metrics = Xc_util.Metrics
module S = Synopsis.Sealed

let m = Metrics.global

(* ---- the shared reach memo -------------------------------------------- *)

(* Expansion results are memoized per sealed synopsis, keyed by source
   index × path expression (and by expression alone for paths rooted at
   the virtual document node). The cached value is the exact dist a
   fresh Estimate run would have built, so folding over it reproduces
   the uncached float operations in the same order. A sealed synopsis
   never mutates, so entries never go stale — there is no generation
   counter to validate against. *)
type memo = {
  mc_syn : S.t;
  mc_reach : (int * Path_expr.t, Estimate.dist) Hashtbl.t;
  mc_root : (Path_expr.t, Estimate.dist) Hashtbl.t;
}

let memo_create syn =
  { mc_syn = syn; mc_reach = Hashtbl.create 256; mc_root = Hashtbl.create 16 }

let memo_reach mc expr idx =
  let key = (idx, expr) in
  match Hashtbl.find_opt mc.mc_reach key with
  | Some d ->
    Metrics.incr m "reach.memo_hit";
    d
  | None ->
    Metrics.incr m "reach.memo_miss";
    let d = Estimate.reach_dist mc.mc_syn expr idx in
    Hashtbl.add mc.mc_reach key d;
    d

let memo_root_reach mc expr =
  match Hashtbl.find_opt mc.mc_root expr with
  | Some d ->
    Metrics.incr m "reach.memo_hit";
    d
  | None ->
    Metrics.incr m "reach.memo_miss";
    let d = Estimate.root_reach_dist mc.mc_syn expr in
    Hashtbl.add mc.mc_root expr d;
    d

(* ---- compiled queries -------------------------------------------------- *)

type cnode = {
  cn_qid : int;
  cn_preds : (Predicate.t * Xc_xml.Value.vtype) list;  (* vtype pre-bound *)
  cn_edges : (Path_expr.t * cnode) list;  (* document order, preserved so
                                             the float product order
                                             matches Estimate exactly *)
}

type t = {
  p_syn : S.t;
  p_query : Twig_query.t;
  p_memo : memo;
  p_root_edges : (Path_expr.t * cnode) list;
  p_root_zero : bool;  (* predicates on q0 can never be satisfied *)
}

let rec compile_node qnode =
  { cn_qid = qnode.Twig_query.qid;
    cn_preds = List.map (fun p -> (p, Predicate.vtype p)) qnode.Twig_query.preds;
    cn_edges =
      List.map (fun (expr, child) -> (expr, compile_node child)) qnode.Twig_query.edges }

let compile_with_memo mc query =
  Metrics.incr m "plan.compile";
  let root_q = query.Twig_query.root in
  { p_syn = mc.mc_syn;
    p_query = query;
    p_memo = mc;
    p_root_edges =
      List.map (fun (expr, child) -> (expr, compile_node child)) root_q.Twig_query.edges;
    p_root_zero = root_q.Twig_query.preds <> [] }

let compile syn query = compile_with_memo (memo_create syn) query

let synopsis p = p.p_syn
let query p = p.p_query

(* Mirrors Estimate.selectivity operation for operation; the only change
   is that reach distributions come from the memo. *)
let estimate p =
  Metrics.time m "estimate.plan" @@ fun () ->
  if p.p_root_zero then 0.0
  else begin
    let syn = p.p_syn and mc = p.p_memo in
    let memo : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
    let rec est cn idx =
      let key = (cn.cn_qid, idx) in
      match Hashtbl.find_opt memo key with
      | Some v -> v
      | None ->
        let sigma =
          List.fold_left
            (fun acc (pred, vt) -> acc *. Estimate.predicate_selectivity_typed vt syn idx pred)
            1.0 cn.cn_preds
        in
        let result =
          if sigma <= 0.0 then 0.0
          else
            List.fold_left
              (fun acc (expr, child) ->
                if acc <= 0.0 then 0.0
                else begin
                  let reached = memo_reach mc expr idx in
                  let sum = ref 0.0 in
                  for i = 0 to Array.length reached.Estimate.d_idx - 1 do
                    sum :=
                      !sum
                      +. (reached.Estimate.d_w.(i) *. est child reached.Estimate.d_idx.(i))
                  done;
                  acc *. !sum
                end)
              sigma cn.cn_edges
        in
        Hashtbl.replace memo key result;
        result
    in
    List.fold_left
      (fun acc (expr, child) ->
        if acc <= 0.0 then 0.0
        else
          match expr with
          | [] -> 0.0
          | _ :: _ ->
            let reached = memo_root_reach mc expr in
            let sum = ref 0.0 in
            for i = 0 to Array.length reached.Estimate.d_idx - 1 do
              sum :=
                !sum +. (reached.Estimate.d_w.(i) *. est child reached.Estimate.d_idx.(i))
            done;
            acc *. !sum)
      1.0 p.p_root_edges
  end

(* ---- query keys -------------------------------------------------------- *)

(* Deterministic, injective rendering of a query's structure. Label and
   term identifiers are process-stable interned ints, so they key
   directly; predicate and edge order are preserved because they decide
   the float evaluation order. *)
let query_key q =
  let buf = Buffer.create 64 in
  let add_terms ts =
    List.iter
      (fun (t : Xc_xml.Dictionary.term) ->
        Buffer.add_string buf (string_of_int (t :> int) ^ ","))
      ts
  in
  let add_pred = function
    | Predicate.Range (l, h) -> Buffer.add_string buf (Printf.sprintf "R%d:%d" l h)
    | Predicate.Contains s ->
      Buffer.add_string buf (Printf.sprintf "C%d:%s" (String.length s) s)
    | Predicate.Ft_contains ts -> Buffer.add_char buf 'F'; add_terms ts
    | Predicate.Ft_any ts -> Buffer.add_char buf 'A'; add_terms ts
    | Predicate.Ft_excludes ts -> Buffer.add_char buf 'X'; add_terms ts
  in
  let add_step step =
    (match step.Path_expr.axis with
    | Path_expr.Child -> Buffer.add_char buf '/'
    | Path_expr.Descendant -> Buffer.add_string buf "//");
    match step.Path_expr.test with
    | Path_expr.Wildcard -> Buffer.add_char buf '*'
    | Path_expr.Tag l -> Buffer.add_string buf (string_of_int (l :> int))
  in
  let rec add_node n =
    Buffer.add_char buf '[';
    List.iter add_pred n.Twig_query.preds;
    List.iter
      (fun (expr, child) ->
        Buffer.add_char buf '(';
        List.iter add_step expr;
        add_node child;
        Buffer.add_char buf ')')
      n.Twig_query.edges;
    Buffer.add_char buf ']'
  in
  add_node q.Twig_query.root;
  Buffer.contents buf

(* ---- the per-synopsis plan cache --------------------------------------- *)

module Cache = struct
  type plan = t

  type t = {
    c_memo : memo;
    c_plans : (string, plan) Hashtbl.t;
  }

  let create syn = { c_memo = memo_create syn; c_plans = Hashtbl.create 64 }
  let synopsis c = c.c_memo.mc_syn

  let find_or_compile c q =
    let key = query_key q in
    match Hashtbl.find_opt c.c_plans key with
    | Some plan ->
      Metrics.incr m "plan.cache_hit";
      plan
    | None ->
      Metrics.incr m "plan.cache_miss";
      let plan = compile_with_memo c.c_memo q in
      Hashtbl.add c.c_plans key plan;
      plan

  let estimate c q = estimate (find_or_compile c q)
  let n_plans c = Hashtbl.length c.c_plans
  let reach_entries c = Hashtbl.length c.c_memo.mc_reach + Hashtbl.length c.c_memo.mc_root

  let clear c =
    Hashtbl.reset c.c_plans;
    Hashtbl.reset c.c_memo.mc_reach;
    Hashtbl.reset c.c_memo.mc_root
end
