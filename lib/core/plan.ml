open Xc_twig
module Metrics = Xc_util.Metrics
module S = Synopsis.Sealed
module BA1 = Bigarray.Array1

let m = Metrics.global

(* ---- the shared reach memo -------------------------------------------- *)

(* Expansion results are memoized per sealed synopsis, keyed by source
   index × path expression (and by expression alone for paths rooted at
   the virtual document node). The cached value is the exact dist a
   fresh Estimate run would have built, so folding over it reproduces
   the uncached float operations in the same order. A sealed synopsis
   never mutates, so entries never go stale — there is no generation
   counter to validate against. *)
type memo = {
  mc_syn : S.t;
  mc_reach : (int * Path_expr.t, Estimate.dist) Hashtbl.t;
  mc_root : (Path_expr.t, Estimate.dist) Hashtbl.t;
}

let memo_create syn =
  { mc_syn = syn; mc_reach = Hashtbl.create 256; mc_root = Hashtbl.create 16 }

let memo_reach mc expr idx =
  let key = (idx, expr) in
  match Hashtbl.find_opt mc.mc_reach key with
  | Some d ->
    Metrics.incr m "reach.memo_hit";
    d
  | None ->
    Metrics.incr m "reach.memo_miss";
    let d = Estimate.reach_dist mc.mc_syn expr idx in
    Hashtbl.add mc.mc_reach key d;
    d

let memo_root_reach mc expr =
  match Hashtbl.find_opt mc.mc_root expr with
  | Some d ->
    Metrics.incr m "reach.memo_hit";
    d
  | None ->
    Metrics.incr m "reach.memo_miss";
    let d = Estimate.root_reach_dist mc.mc_syn expr in
    Hashtbl.add mc.mc_root expr d;
    d

(* ---- compiled queries -------------------------------------------------- *)

type cnode = {
  cn_qid : int;
  cn_preds : (Predicate.t * Xc_xml.Value.vtype) list;  (* vtype pre-bound *)
  cn_edges : (Path_expr.t * cnode) list;  (* document order, preserved so
                                             the float product order
                                             matches Estimate exactly *)
}

type t = {
  p_syn : S.t;
  p_query : Twig_query.t;
  p_memo : memo;
  p_root_edges : (Path_expr.t * cnode) list;
  p_root_zero : bool;  (* predicates on q0 can never be satisfied *)
}

let rec compile_node qnode =
  { cn_qid = qnode.Twig_query.qid;
    cn_preds = List.map (fun p -> (p, Predicate.vtype p)) qnode.Twig_query.preds;
    cn_edges =
      List.map (fun (expr, child) -> (expr, compile_node child)) qnode.Twig_query.edges }

let compile_with_memo mc query =
  Metrics.incr m "plan.compile";
  let root_q = query.Twig_query.root in
  { p_syn = mc.mc_syn;
    p_query = query;
    p_memo = mc;
    p_root_edges =
      List.map (fun (expr, child) -> (expr, compile_node child)) root_q.Twig_query.edges;
    p_root_zero = root_q.Twig_query.preds <> [] }

let compile syn query = compile_with_memo (memo_create syn) query

let synopsis p = p.p_syn
let query p = p.p_query

(* Mirrors Estimate.selectivity operation for operation; the only change
   is that reach distributions come from the memo. *)
let estimate_body p =
  if p.p_root_zero then 0.0
  else begin
    let syn = p.p_syn and mc = p.p_memo in
    let memo : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
    let rec est cn idx =
      let key = (cn.cn_qid, idx) in
      match Hashtbl.find_opt memo key with
      | Some v -> v
      | None ->
        let sigma =
          List.fold_left
            (fun acc (pred, vt) -> acc *. Estimate.predicate_selectivity_typed vt syn idx pred)
            1.0 cn.cn_preds
        in
        let result =
          if sigma <= 0.0 then 0.0
          else
            List.fold_left
              (fun acc (expr, child) ->
                if acc <= 0.0 then 0.0
                else begin
                  let reached = memo_reach mc expr idx in
                  let sum = ref 0.0 in
                  for i = 0 to Array.length reached.Estimate.d_idx - 1 do
                    sum :=
                      !sum
                      +. (reached.Estimate.d_w.(i) *. est child reached.Estimate.d_idx.(i))
                  done;
                  acc *. !sum
                end)
              sigma cn.cn_edges
        in
        Hashtbl.replace memo key result;
        result
    in
    List.fold_left
      (fun acc (expr, child) ->
        if acc <= 0.0 then 0.0
        else
          match expr with
          | [] -> 0.0
          | _ :: _ ->
            let reached = memo_root_reach mc expr in
            let sum = ref 0.0 in
            for i = 0 to Array.length reached.Estimate.d_idx - 1 do
              sum :=
                !sum +. (reached.Estimate.d_w.(i) *. est child reached.Estimate.d_idx.(i))
            done;
            acc *. !sum)
      1.0 p.p_root_edges
  end

let estimate p =
  let t0 = Unix.gettimeofday () in
  let r = estimate_body p in
  let dt = Unix.gettimeofday () -. t0 in
  Metrics.add_time m "estimate.plan" dt;
  Metrics.observe m "estimate.plan_us" (1e6 *. dt);
  r

(* ---- query keys -------------------------------------------------------- *)

(* Deterministic, injective rendering of a query's structure. Label and
   term identifiers are process-stable interned ints, so they key
   directly; predicate and edge order are preserved because they decide
   the float evaluation order. *)
let query_key q =
  let buf = Buffer.create 64 in
  let add_terms ts =
    List.iter
      (fun (t : Xc_xml.Dictionary.term) ->
        Buffer.add_string buf (string_of_int (t :> int) ^ ","))
      ts
  in
  let add_pred = function
    | Predicate.Range (l, h) -> Buffer.add_string buf (Printf.sprintf "R%d:%d" l h)
    | Predicate.Contains s ->
      Buffer.add_string buf (Printf.sprintf "C%d:%s" (String.length s) s)
    | Predicate.Ft_contains ts -> Buffer.add_char buf 'F'; add_terms ts
    | Predicate.Ft_any ts -> Buffer.add_char buf 'A'; add_terms ts
    | Predicate.Ft_excludes ts -> Buffer.add_char buf 'X'; add_terms ts
  in
  let add_step step =
    (match step.Path_expr.axis with
    | Path_expr.Child -> Buffer.add_char buf '/'
    | Path_expr.Descendant -> Buffer.add_string buf "//");
    match step.Path_expr.test with
    | Path_expr.Wildcard -> Buffer.add_char buf '*'
    | Path_expr.Tag l -> Buffer.add_string buf (string_of_int (l :> int))
  in
  let rec add_node n =
    Buffer.add_char buf '[';
    List.iter add_pred n.Twig_query.preds;
    List.iter
      (fun (expr, child) ->
        Buffer.add_char buf '(';
        List.iter add_step expr;
        add_node child;
        Buffer.add_char buf ')')
      n.Twig_query.edges;
    Buffer.add_char buf ']'
  in
  add_node q.Twig_query.root;
  Buffer.contents buf

(* ---- the per-synopsis plan cache --------------------------------------- *)

module Cache = struct
  type plan = t

  type t = {
    c_memo : memo;
    c_plans : (string, plan) Hashtbl.t;
  }

  let create syn = { c_memo = memo_create syn; c_plans = Hashtbl.create 64 }
  let synopsis c = c.c_memo.mc_syn

  let find_or_compile c q =
    let key = query_key q in
    match Hashtbl.find_opt c.c_plans key with
    | Some plan ->
      Metrics.incr m "plan.cache_hit";
      plan
    | None ->
      Metrics.incr m "plan.cache_miss";
      let plan = compile_with_memo c.c_memo q in
      Hashtbl.add c.c_plans key plan;
      plan

  let estimate c q = estimate (find_or_compile c q)

  (* The serving boundary: a synopsis that decoded but is broken in a
     way compilation or evaluation trips over must degrade, not take
     the server down. Callers (the [Xcluster] facade) fall back to the
     uncached estimator on [Error]. *)
  let estimate_result c q =
    match estimate c q with
    | v -> Ok v
    | exception exn ->
      Metrics.incr m "plan.error";
      Error (Printexc.to_string exn)

  let n_plans c = Hashtbl.length c.c_plans
  let reach_entries c = Hashtbl.length c.c_memo.mc_reach + Hashtbl.length c.c_memo.mc_root

  let clear c =
    Hashtbl.reset c.c_plans;
    Hashtbl.reset c.c_memo.mc_reach;
    Hashtbl.reset c.c_memo.mc_root
end

(* ---- batched serving ---------------------------------------------------

   The planned path above still pays, per estimate, a query-key render,
   structural Path_expr hashing in the reach memo, and a fresh
   (qid, idx) hashtable. The batch engine moves all of that to prepare
   time: path expressions are interned to dense ints and materialized
   as Transition matrices once per synopsis, per-node predicate
   selectivities (sigma) are precomputed over each query node's support
   set, and evaluation walks flat float arrays bottom-up — no hashing,
   no allocation beyond per-worker scratch.

   Bit-identity argument, piece by piece:
   - matrix rows are built by folding Estimate.step_reach (the very
     code the uncached estimator runs), so row floats are bit-identical
     to reach_dist's;
   - sigma is the same predicate fold over the same (pred, vtype) list
     in the same order;
   - the per-node edge fold and the row dot product replicate
     estimate_body's operation order exactly, including the
     [sigma <= 0.0] and [acc <= 0.0] short-circuits and the
     [[] -> 0.0] root-expression case;
   - each (query node, synopsis node) value is a pure function of the
     synopsis, so computing it eagerly over the support set (instead of
     lazily via the memo) changes nothing.
   Supports propagate top-down (a child's support is the union of the
   matrix rows over its parent's support), so every scratch cell a
   parent reads was written by its child in the same evaluation —
   scratch is never zeroed between queries, and results cannot depend
   on which worker ran which query. *)

module Batch = struct
  (* per-worker evaluation scratch: one float array of length n_nodes
     per query-node slot, grown to the widest query seen and reused
     across the worker's whole chunk *)
  type scratch = {
    sc_n : int;
    mutable sc_slots : float array array;
  }

  let scratch_create n = { sc_n = n; sc_slots = [||] }

  let scratch_ensure sc k =
    let have = Array.length sc.sc_slots in
    if have < k then
      sc.sc_slots <-
        Array.init k (fun i ->
            if i < have then sc.sc_slots.(i) else Array.make sc.sc_n 0.0)

  (* one compiled query edge: the transition matrix's CSR buffers
     pre-fetched out of the record so the eval kernel reads them
     without indirection *)
  type bedge = {
    be_off : S.ba_i;
    be_idx : S.ba_i;
    be_w : S.ba_f;
    be_child : bnode;
  }

  and bnode = {
    bn_slot : int;  (* scratch slot holding this node's values *)
    bn_support : int array;  (* synopsis nodes this node is evaluated at *)
    bn_sigma : float array;  (* predicate selectivity per support position *)
    bn_edges : bedge array;  (* document order *)
  }

  type bquery = {
    bq_zero : bool;  (* root predicates or an empty root expression *)
    bq_root : (Estimate.dist * bnode) list;
    bq_slots : int;
  }

  type prepared = bquery array

  type t = {
    bt_syn : S.t;
    bt_mats : (Path_expr.id, Transition.t) Hashtbl.t;
    bt_queries : (string, bquery) Hashtbl.t;
  }

  let create syn =
    { bt_syn = syn; bt_mats = Hashtbl.create 32; bt_queries = Hashtbl.create 64 }

  let synopsis t = t.bt_syn
  let n_matrices t = Hashtbl.length t.bt_mats
  let n_queries t = Hashtbl.length t.bt_queries

  let clear t =
    Hashtbl.reset t.bt_mats;
    Hashtbl.reset t.bt_queries

  let mat_for t expr =
    let id = Path_expr.intern expr in
    match Hashtbl.find_opt t.bt_mats id with
    | Some mt -> mt
    | None ->
      let mt =
        Metrics.time m "batch.mat_build" (fun () -> Transition.build t.bt_syn expr)
      in
      Hashtbl.add t.bt_mats id mt;
      mt

  (* child-endpoint support of an edge: the union of the matrix rows of
     every supported source, ascending *)
  let edge_support t mt support =
    let n = S.n_nodes t.bt_syn in
    let mark = Bytes.make n '\000' in
    let off = Transition.off mt and idx = Transition.idx mt in
    let count = ref 0 in
    Array.iter
      (fun u ->
        for i = BA1.unsafe_get off u to BA1.unsafe_get off (u + 1) - 1 do
          let v = BA1.unsafe_get idx i in
          if Bytes.unsafe_get mark v = '\000' then begin
            Bytes.unsafe_set mark v '\001';
            incr count
          end
        done)
      support;
    let out = Array.make !count 0 in
    let k = ref 0 in
    for v = 0 to n - 1 do
      if Bytes.unsafe_get mark v = '\001' then begin
        out.(!k) <- v;
        incr k
      end
    done;
    out

  let sigma_of t preds support =
    let syn = t.bt_syn in
    let pv = List.map (fun p -> (p, Predicate.vtype p)) preds in
    Array.map
      (fun u ->
        List.fold_left
          (fun acc (pred, vt) ->
            acc *. Estimate.predicate_selectivity_typed vt syn u pred)
          1.0 pv)
      support

  let rec compile_bnode t next_slot qnode support =
    let slot = !next_slot in
    incr next_slot;
    let edges =
      List.map
        (fun (expr, child) ->
          let mt = mat_for t expr in
          { be_off = Transition.off mt;
            be_idx = Transition.idx mt;
            be_w = Transition.weights mt;
            be_child = compile_bnode t next_slot child (edge_support t mt support) })
        qnode.Twig_query.edges
      |> Array.of_list
    in
    { bn_slot = slot;
      bn_support = support;
      bn_sigma = sigma_of t qnode.Twig_query.preds support;
      bn_edges = edges }

  let compile_query t q =
    let root_q = q.Twig_query.root in
    (* root predicates can never hold on the virtual document node, and
       an empty root expression contributes a 0.0 factor — either way
       every estimate is 0, matching Estimate.selectivity *)
    let zero =
      root_q.Twig_query.preds <> []
      || List.exists (fun (expr, _) -> expr = []) root_q.Twig_query.edges
    in
    if zero then { bq_zero = true; bq_root = []; bq_slots = 0 }
    else begin
      let next_slot = ref 0 in
      let root =
        List.map
          (fun (expr, child) ->
            let rdist = Estimate.root_reach_dist t.bt_syn expr in
            (rdist, compile_bnode t next_slot child rdist.Estimate.d_idx))
          root_q.Twig_query.edges
      in
      { bq_zero = false; bq_root = root; bq_slots = !next_slot }
    end

  let prepare t queries =
    Array.map
      (fun q ->
        let key = query_key q in
        match Hashtbl.find_opt t.bt_queries key with
        | Some bq ->
          Metrics.incr m "batch.query_hit";
          bq
        | None ->
          Metrics.incr m "batch.query_miss";
          let bq = Metrics.time m "batch.compile" (fun () -> compile_query t q) in
          Hashtbl.add t.bt_queries key bq;
          bq)
      queries

  (* evaluation runs over support blocks of this many nodes: the block's
     accumulators stay in registers/L1 while each edge's CSR slices
     stream through once per block instead of once per node *)
  let block = 64

  (* row dot product, sequential: the same multiply-add order as the
     uncached estimator's fold over a reach dist — bit-identical *)
  let dot (w : S.ba_f) (idx : S.ba_i) (cout : float array) lo hi =
    let sum = ref 0.0 in
    for i = lo to hi - 1 do
      sum := !sum +. (BA1.unsafe_get w i *. Array.unsafe_get cout (BA1.unsafe_get idx i))
    done;
    !sum

  (* row dot product, 4-way unrolled: independent accumulators break the
     add dependency chain, but the summation order changes — results can
     differ from the sequential path by float non-associativity. Opt-in
     ([blocked:true]); the bench measures and bounds the |Δ|. *)
  let dot_unrolled (w : S.ba_f) (idx : S.ba_i) (cout : float array) lo hi =
    let n = hi - lo in
    if n < 8 then dot w idx cout lo hi
    else begin
      let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
      let i = ref lo in
      while !i + 3 < hi do
        let i0 = !i in
        s0 := !s0 +. (BA1.unsafe_get w i0 *. Array.unsafe_get cout (BA1.unsafe_get idx i0));
        s1 :=
          !s1
          +. (BA1.unsafe_get w (i0 + 1)
             *. Array.unsafe_get cout (BA1.unsafe_get idx (i0 + 1)));
        s2 :=
          !s2
          +. (BA1.unsafe_get w (i0 + 2)
             *. Array.unsafe_get cout (BA1.unsafe_get idx (i0 + 2)));
        s3 :=
          !s3
          +. (BA1.unsafe_get w (i0 + 3)
             *. Array.unsafe_get cout (BA1.unsafe_get idx (i0 + 3)));
        i := i0 + 4
      done;
      let sum = ref (!s0 +. !s1 +. (!s2 +. !s3)) in
      while !i < hi do
        sum := !sum +. (BA1.unsafe_get w !i *. Array.unsafe_get cout (BA1.unsafe_get idx !i));
        incr i
      done;
      !sum
    end

  (* Per-node float operations replicate the memoized estimator exactly:
     accumulator starts at sigma (or 0 when sigma <= 0), each edge in
     document order maps a non-positive accumulator to 0 without
     touching the row and otherwise multiplies by the row dot product.
     Blocking only reorders WHICH (node, edge) pairs run when — each
     node's own op sequence is unchanged, so results stay bit-identical
     to the unblocked fold (with [blocked:false]). *)
  let eval_query ?(blocked = false) sc q =
    if q.bq_zero then 0.0
    else begin
      scratch_ensure sc q.bq_slots;
      let slots = sc.sc_slots in
      let accs = Array.make block 0.0 in
      let rec eval_node bn =
        Array.iter (fun e -> eval_node e.be_child) bn.bn_edges;
        let out = slots.(bn.bn_slot) in
        let support = bn.bn_support and sigma = bn.bn_sigma in
        let nsup = Array.length support in
        let nedges = Array.length bn.bn_edges in
        let b0 = ref 0 in
        while !b0 < nsup do
          let base = !b0 in
          let bhi = min nsup (base + block) in
          for k = base to bhi - 1 do
            let sg = Array.unsafe_get sigma k in
            Array.unsafe_set accs (k - base) (if sg <= 0.0 then 0.0 else sg)
          done;
          for e = 0 to nedges - 1 do
            let be = Array.unsafe_get bn.bn_edges e in
            let off = be.be_off and idx = be.be_idx and w = be.be_w in
            let cout = slots.(be.be_child.bn_slot) in
            for k = base to bhi - 1 do
              let a = Array.unsafe_get accs (k - base) in
              if a > 0.0 then begin
                let u = Array.unsafe_get support k in
                let lo = BA1.unsafe_get off u and hi = BA1.unsafe_get off (u + 1) in
                let s = if blocked then dot_unrolled w idx cout lo hi else dot w idx cout lo hi in
                Array.unsafe_set accs (k - base) (a *. s)
              end
              else Array.unsafe_set accs (k - base) 0.0
            done
          done;
          for k = base to bhi - 1 do
            Array.unsafe_set out (Array.unsafe_get support k) (Array.unsafe_get accs (k - base))
          done;
          b0 := bhi
        done
      in
      List.iter (fun (_, c) -> eval_node c) q.bq_root;
      List.fold_left
        (fun acc (rdist, child) ->
          if acc <= 0.0 then 0.0
          else begin
            let cout = slots.(child.bn_slot) in
            let ridx = rdist.Estimate.d_idx and rw = rdist.Estimate.d_w in
            let sum = ref 0.0 in
            for i = 0 to Array.length ridx - 1 do
              sum :=
                !sum
                +. (Array.unsafe_get rw i
                   *. Array.unsafe_get cout (Array.unsafe_get ridx i))
            done;
            acc *. !sum
          end)
        1.0 q.bq_root
    end

  let run_prepared ?(domains = 0) ?(blocked = false) t prepared =
    let nq = Array.length prepared in
    if nq = 0 then [||]
    else begin
      Metrics.incr m ~by:nq "batch.queries";
      let n = S.n_nodes t.bt_syn in
      let lat = Array.make nq 0.0 in
      let t0 = Unix.gettimeofday () in
      let out =
        Xc_util.Par.map_chunked ~domains
          ~init:(fun () -> scratch_create n)
          (fun sc i q ->
            let q0 = Unix.gettimeofday () in
            let v = eval_query ~blocked sc q in
            (* workers touch only their own slot; the coordinator folds
               these into Metrics afterwards, in input order *)
            lat.(i) <- Unix.gettimeofday () -. q0;
            v)
          prepared
      in
      Metrics.add_time m "estimate.batch" (Unix.gettimeofday () -. t0);
      Array.iter (fun dt -> Metrics.observe m "estimate.batch_us" (1e6 *. dt)) lat;
      out
    end

  let run ?domains t queries = run_prepared ?domains t (prepare t queries)

  let run_result ?domains t queries =
    match run ?domains t queries with
    | r -> Ok r
    | exception exn ->
      Metrics.incr m "batch.error";
      Error (Printexc.to_string exn)

  let estimate t q = (run ~domains:1 t [| q |]).(0)
end
