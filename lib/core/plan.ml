open Xc_twig
module Metrics = Xc_util.Metrics
module S = Synopsis.Sealed
module BA1 = Bigarray.Array1

let m = Metrics.global

(* ---- the shared reach memo -------------------------------------------- *)

(* Expansion results are memoized per sealed synopsis, keyed by source
   index × path expression (and by expression alone for paths rooted at
   the virtual document node). The cached value is the exact dist a
   fresh Estimate run would have built, so folding over it reproduces
   the uncached float operations in the same order. A sealed synopsis
   never mutates, so entries never go stale — there is no generation
   counter to validate against. *)
type memo = {
  mc_syn : S.t;
  mc_reach : (int * Path_expr.t, Estimate.dist) Hashtbl.t;
  mc_root : (Path_expr.t, Estimate.dist) Hashtbl.t;
}

let memo_create syn =
  { mc_syn = syn; mc_reach = Hashtbl.create 256; mc_root = Hashtbl.create 16 }

let memo_reach mc expr idx =
  let key = (idx, expr) in
  match Hashtbl.find_opt mc.mc_reach key with
  | Some d ->
    Metrics.incr m "reach.memo_hit";
    d
  | None ->
    Metrics.incr m "reach.memo_miss";
    let d = Estimate.reach_dist mc.mc_syn expr idx in
    Hashtbl.add mc.mc_reach key d;
    d

let memo_root_reach mc expr =
  match Hashtbl.find_opt mc.mc_root expr with
  | Some d ->
    Metrics.incr m "reach.memo_hit";
    d
  | None ->
    Metrics.incr m "reach.memo_miss";
    let d = Estimate.root_reach_dist mc.mc_syn expr in
    Hashtbl.add mc.mc_root expr d;
    d

(* ---- compiled queries -------------------------------------------------- *)

type cnode = {
  cn_qid : int;
  cn_preds : (Predicate.t * Xc_xml.Value.vtype) list;  (* vtype pre-bound *)
  cn_edges : (Path_expr.t * cnode) list;  (* document order, preserved so
                                             the float product order
                                             matches Estimate exactly *)
}

type t = {
  p_syn : S.t;
  p_query : Twig_query.t;
  p_memo : memo;
  p_root_edges : (Path_expr.t * cnode) list;
  p_root_zero : bool;  (* predicates on q0 can never be satisfied *)
}

let rec compile_node qnode =
  { cn_qid = qnode.Twig_query.qid;
    cn_preds = List.map (fun p -> (p, Predicate.vtype p)) qnode.Twig_query.preds;
    cn_edges =
      List.map (fun (expr, child) -> (expr, compile_node child)) qnode.Twig_query.edges }

let compile_with_memo mc query =
  Metrics.incr m "plan.compile";
  let root_q = query.Twig_query.root in
  { p_syn = mc.mc_syn;
    p_query = query;
    p_memo = mc;
    p_root_edges =
      List.map (fun (expr, child) -> (expr, compile_node child)) root_q.Twig_query.edges;
    p_root_zero = root_q.Twig_query.preds <> [] }

let compile syn query = compile_with_memo (memo_create syn) query

let synopsis p = p.p_syn
let query p = p.p_query

(* Mirrors Estimate.selectivity operation for operation; the only change
   is that reach distributions come from the memo. *)
let estimate_body p =
  if p.p_root_zero then 0.0
  else begin
    let syn = p.p_syn and mc = p.p_memo in
    let memo : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
    let rec est cn idx =
      let key = (cn.cn_qid, idx) in
      match Hashtbl.find_opt memo key with
      | Some v -> v
      | None ->
        let sigma =
          List.fold_left
            (fun acc (pred, vt) -> acc *. Estimate.predicate_selectivity_typed vt syn idx pred)
            1.0 cn.cn_preds
        in
        let result =
          if sigma <= 0.0 then 0.0
          else
            List.fold_left
              (fun acc (expr, child) ->
                if acc <= 0.0 then 0.0
                else begin
                  let reached = memo_reach mc expr idx in
                  let sum = ref 0.0 in
                  for i = 0 to Array.length reached.Estimate.d_idx - 1 do
                    sum :=
                      !sum
                      +. (reached.Estimate.d_w.(i) *. est child reached.Estimate.d_idx.(i))
                  done;
                  acc *. !sum
                end)
              sigma cn.cn_edges
        in
        Hashtbl.replace memo key result;
        result
    in
    List.fold_left
      (fun acc (expr, child) ->
        if acc <= 0.0 then 0.0
        else
          match expr with
          | [] -> 0.0
          | _ :: _ ->
            let reached = memo_root_reach mc expr in
            let sum = ref 0.0 in
            for i = 0 to Array.length reached.Estimate.d_idx - 1 do
              sum :=
                !sum +. (reached.Estimate.d_w.(i) *. est child reached.Estimate.d_idx.(i))
            done;
            acc *. !sum)
      1.0 p.p_root_edges
  end

let estimate p =
  let t0 = Unix.gettimeofday () in
  let r = estimate_body p in
  let dt = Unix.gettimeofday () -. t0 in
  Metrics.add_time m "estimate.plan" dt;
  Metrics.observe m "estimate.plan_us" (1e6 *. dt);
  r

(* ---- query keys -------------------------------------------------------- *)

(* Deterministic, injective rendering of a query's structure. Label and
   term identifiers are process-stable interned ints, so they key
   directly; predicate and edge order are preserved because they decide
   the float evaluation order. *)
let query_key q =
  let buf = Buffer.create 64 in
  let add_terms ts =
    List.iter
      (fun (t : Xc_xml.Dictionary.term) ->
        Buffer.add_string buf (string_of_int (t :> int) ^ ","))
      ts
  in
  let add_pred = function
    | Predicate.Range (l, h) -> Buffer.add_string buf (Printf.sprintf "R%d:%d" l h)
    | Predicate.Contains s ->
      Buffer.add_string buf (Printf.sprintf "C%d:%s" (String.length s) s)
    | Predicate.Ft_contains ts -> Buffer.add_char buf 'F'; add_terms ts
    | Predicate.Ft_any ts -> Buffer.add_char buf 'A'; add_terms ts
    | Predicate.Ft_excludes ts -> Buffer.add_char buf 'X'; add_terms ts
  in
  let add_step step =
    (match step.Path_expr.axis with
    | Path_expr.Child -> Buffer.add_char buf '/'
    | Path_expr.Descendant -> Buffer.add_string buf "//");
    match step.Path_expr.test with
    | Path_expr.Wildcard -> Buffer.add_char buf '*'
    | Path_expr.Tag l -> Buffer.add_string buf (string_of_int (l :> int))
  in
  let rec add_node n =
    Buffer.add_char buf '[';
    List.iter add_pred n.Twig_query.preds;
    List.iter
      (fun (expr, child) ->
        Buffer.add_char buf '(';
        List.iter add_step expr;
        add_node child;
        Buffer.add_char buf ')')
      n.Twig_query.edges;
    Buffer.add_char buf ']'
  in
  add_node q.Twig_query.root;
  Buffer.contents buf

(* ---- the per-synopsis plan cache --------------------------------------- *)

module Cache = struct
  type plan = t

  type t = {
    c_memo : memo;
    c_plans : (string, plan) Hashtbl.t;
  }

  let create syn = { c_memo = memo_create syn; c_plans = Hashtbl.create 64 }
  let synopsis c = c.c_memo.mc_syn

  let find_or_compile c q =
    let key = query_key q in
    match Hashtbl.find_opt c.c_plans key with
    | Some plan ->
      Metrics.incr m "plan.cache_hit";
      plan
    | None ->
      Metrics.incr m "plan.cache_miss";
      let plan = compile_with_memo c.c_memo q in
      Hashtbl.add c.c_plans key plan;
      plan

  let estimate c q = estimate (find_or_compile c q)

  (* The serving boundary: a synopsis that decoded but is broken in a
     way compilation or evaluation trips over must degrade, not take
     the server down. Callers (the [Xcluster] facade) fall back to the
     uncached estimator on [Error]. *)
  let estimate_result c q =
    match estimate c q with
    | v -> Ok v
    | exception exn ->
      Metrics.incr m "plan.error";
      Error (Printexc.to_string exn)

  let n_plans c = Hashtbl.length c.c_plans
  let reach_entries c = Hashtbl.length c.c_memo.mc_reach + Hashtbl.length c.c_memo.mc_root

  let clear c =
    Hashtbl.reset c.c_plans;
    Hashtbl.reset c.c_memo.mc_reach;
    Hashtbl.reset c.c_memo.mc_root
end

(* ---- batched serving ---------------------------------------------------

   The planned path above still pays, per estimate, a query-key render,
   structural Path_expr hashing in the reach memo, and a fresh
   (qid, idx) hashtable. The batch engine moves all of that to prepare
   time: path expressions are interned to dense ints and materialized
   as Transition matrices once per synopsis, per-node predicate
   selectivities (sigma) are precomputed over each query node's support
   set, and evaluation walks flat float arrays bottom-up — no hashing,
   no allocation beyond per-worker scratch.

   Bit-identity argument, piece by piece:
   - matrix rows are built by folding Estimate.step_reach (the very
     code the uncached estimator runs), so row floats are bit-identical
     to reach_dist's;
   - sigma is the same predicate fold over the same (pred, vtype) list
     in the same order;
   - the per-node edge fold and the row dot product replicate
     estimate_body's operation order exactly, including the
     [sigma <= 0.0] and [acc <= 0.0] short-circuits and the
     [[] -> 0.0] root-expression case;
   - each (query node, synopsis node) value is a pure function of the
     synopsis, so computing it eagerly over the support set (instead of
     lazily via the memo) changes nothing.
   Supports propagate top-down (a child's support is the union of the
   matrix rows over its parent's support), so every scratch cell a
   parent reads was written by its child in the same evaluation —
   scratch is never zeroed between queries, and results cannot depend
   on which worker ran which query. *)

module Batch = struct
  (* per-worker evaluation scratch: one float array of length n_nodes
     per query-node slot, grown to the widest query seen and reused
     across the worker's whole chunk (the query-major path) *)
  type scratch = {
    sc_n : int;
    mutable sc_slots : float array array;
  }

  let scratch_create n = { sc_n = n; sc_slots = [||] }

  let scratch_ensure sc k =
    let have = Array.length sc.sc_slots in
    if have < k then
      sc.sc_slots <-
        Array.init k (fun i ->
            if i < have then sc.sc_slots.(i) else Array.make sc.sc_n 0.0)

  (* Unrolled accumulation only pays off when a matrix's rows are long
     enough to amortize the extra loop machinery; below this mean row
     length the blocked kernel measurably *regresses* (BENCH_serve
     qps_blocked at scale 1.0 / passes 5), so such matrices fall back
     to the scalar kernel even under [blocked:true]. *)
  let blocked_min_mean_row = 8.0

  (* one compiled query edge: the transition matrix's CSR buffers
     pre-fetched out of the record so the eval kernel reads them
     without indirection *)
  type bedge = {
    be_off : S.ba_i;
    be_idx : S.ba_i;
    be_w : S.ba_f;
    be_unroll : bool;  (* rows long enough for the blocked kernel *)
    be_child : bnode;
  }

  and bnode = {
    bn_slot : int;  (* scratch slot holding this node's values *)
    bn_support : int array;  (* synopsis nodes this node is evaluated at *)
    bn_sigma : float array;  (* predicate selectivity per support position *)
    bn_edges : bedge array;  (* document order *)
  }

  (* ---- the flat cohort-eval program --------------------------------
     The matrix-major path evaluates a query from a flattened postorder
     program instead of walking the [bnode] tree: no recursion, no
     closures, no per-node [Array.iter] dispatch. One [ftask] per root
     edge; its node array is the root subtree in postorder, so children
     are always evaluated before the edge that consumes them, and the
     LAST node is the root edge's own child (the "top" node), whose
     values are consumed only by the root-edge dot product — they are
     folded into that dot in the same loop instead of being scattered
     into a plane nobody else reads. For the workload-median query
     (one root edge, leaf child) the whole evaluation collapses to a
     single fused loop over [sigma] and the root weights. *)
  type fedge = {
    f_off : S.ba_i;
    f_idx : S.ba_i;
    f_w : S.ba_f;
    f_unroll : bool;
    f_child_slot : int;
  }

  type fnode = {
    f_slot : int;
    f_support : int array;
    f_sigma : float array;
    f_edges : fedge array;  (* document order *)
  }

  type ftask = {
    ft_rw : float array;  (* root-edge dist weights, position-aligned
                             with the top node's support *)
    ft_nodes : fnode array;  (* postorder; last entry is the top node *)
  }

  type fquery = {
    fq_zero : bool;
    fq_slots : int;
    fq_tasks : ftask array;  (* document order *)
  }

  type bquery = {
    bq_zero : bool;  (* root predicates or an empty root expression *)
    bq_root : (Estimate.dist * bnode) list;
    bq_slots : int;
    bq_id : int;  (* dense per-engine id; the cohort dedup key *)
    bq_key : int;  (* cohort key: the first matrix the query touches *)
    mutable bq_flat : fquery option;  (* memoized flat program *)
  }

  (* A prepared workload carries its cohort plan (built lazily on the
     first cohort run, then reused for every pass): the batch's
     distinct queries in cohort-major order plus the input-index →
     distinct-value mapping that places results. *)
  type cohort_plan = {
    cp_queries : fquery array;  (* distinct queries, cohorts contiguous *)
    cp_src : int array;  (* input index -> position in cp_queries *)
    cp_cohorts : (int * int) array;  (* per cohort: (start, len) *)
    cp_max_cohort : int;
    cp_slots : int;  (* max fq_slots — the arena's plane demand *)
    cp_values : float array;  (* per distinct query, rewritten per run *)
  }

  type prepared = {
    pr_queries : bquery array;
    mutable pr_plan : cohort_plan option;
  }

  type t = {
    bt_syn : S.t;
    bt_mats : (Path_expr.id, Transition.t) Hashtbl.t;
    bt_queries : (string, bquery) Hashtbl.t;
    bt_next_id : int ref;
  }

  let create syn =
    { bt_syn = syn;
      bt_mats = Hashtbl.create 32;
      bt_queries = Hashtbl.create 64;
      bt_next_id = ref 0 }

  let synopsis t = t.bt_syn
  let n_matrices t = Hashtbl.length t.bt_mats
  let n_queries t = Hashtbl.length t.bt_queries

  let clear t =
    Hashtbl.reset t.bt_mats;
    Hashtbl.reset t.bt_queries

  let mat_for t expr =
    let id = Path_expr.intern expr in
    match Hashtbl.find_opt t.bt_mats id with
    | Some mt -> mt
    | None ->
      let mt =
        Metrics.time m "batch.mat_build" (fun () -> Transition.build t.bt_syn expr)
      in
      Hashtbl.add t.bt_mats id mt;
      mt

  (* child-endpoint support of an edge: the union of the matrix rows of
     every supported source, ascending *)
  let edge_support t mt support =
    let n = S.n_nodes t.bt_syn in
    let mark = Bytes.make n '\000' in
    let off = Transition.off mt and idx = Transition.idx mt in
    let count = ref 0 in
    Array.iter
      (fun u ->
        for i = BA1.unsafe_get off u to BA1.unsafe_get off (u + 1) - 1 do
          let v = BA1.unsafe_get idx i in
          if Bytes.unsafe_get mark v = '\000' then begin
            Bytes.unsafe_set mark v '\001';
            incr count
          end
        done)
      support;
    let out = Array.make !count 0 in
    let k = ref 0 in
    for v = 0 to n - 1 do
      if Bytes.unsafe_get mark v = '\001' then begin
        out.(!k) <- v;
        incr k
      end
    done;
    out

  let sigma_of t preds support =
    let syn = t.bt_syn in
    let pv = List.map (fun p -> (p, Predicate.vtype p)) preds in
    Array.map
      (fun u ->
        List.fold_left
          (fun acc (pred, vt) ->
            acc *. Estimate.predicate_selectivity_typed vt syn u pred)
          1.0 pv)
      support

  let rec compile_bnode t next_slot qnode support =
    let slot = !next_slot in
    incr next_slot;
    let edges =
      List.map
        (fun (expr, child) ->
          let mt = mat_for t expr in
          { be_off = Transition.off mt;
            be_idx = Transition.idx mt;
            be_w = Transition.weights mt;
            be_unroll = Transition.mean_row_len mt >= blocked_min_mean_row;
            be_child = compile_bnode t next_slot child (edge_support t mt support) })
        qnode.Twig_query.edges
      |> Array.of_list
    in
    { bn_slot = slot;
      bn_support = support;
      bn_sigma = sigma_of t qnode.Twig_query.preds support;
      bn_edges = edges }

  let compile_query t q =
    let id = !(t.bt_next_id) in
    incr t.bt_next_id;
    let root_q = q.Twig_query.root in
    (* root predicates can never hold on the virtual document node, and
       an empty root expression contributes a 0.0 factor — either way
       every estimate is 0, matching Estimate.selectivity *)
    let zero =
      root_q.Twig_query.preds <> []
      || List.exists (fun (expr, _) -> expr = []) root_q.Twig_query.edges
    in
    if zero then
      { bq_zero = true; bq_root = []; bq_slots = 0; bq_id = id; bq_key = -1;
        bq_flat = None }
    else begin
      (* cohort key: the first transition matrix the evaluation streams
         (first child edge of the first root child that has one), so a
         cohort's queries hit the same CSR slices back-to-back; queries
         with no internal edges group by their root expression — those
         share the root reach dist instead *)
      let key =
        match
          List.find_map
            (fun (_, child) ->
              match child.Twig_query.edges with
              | (e, _) :: _ -> Some (Path_expr.intern e)
              | [] -> None)
            root_q.Twig_query.edges
        with
        | Some k -> k
        | None -> (
          match root_q.Twig_query.edges with
          | (e, _) :: _ -> Path_expr.intern e
          | [] -> -1)
      in
      let next_slot = ref 0 in
      let root =
        List.map
          (fun (expr, child) ->
            let rdist = Estimate.root_reach_dist t.bt_syn expr in
            (rdist, compile_bnode t next_slot child rdist.Estimate.d_idx))
          root_q.Twig_query.edges
      in
      { bq_zero = false; bq_root = root; bq_slots = !next_slot; bq_id = id;
        bq_key = key; bq_flat = None }
    end

  let prepare t queries =
    let qs =
      Array.map
        (fun q ->
          let key = query_key q in
          match Hashtbl.find_opt t.bt_queries key with
          | Some bq ->
            Metrics.incr m "batch.query_hit";
            bq
          | None ->
            Metrics.incr m "batch.query_miss";
            let bq = Metrics.time m "batch.compile" (fun () -> compile_query t q) in
            Hashtbl.add t.bt_queries key bq;
            bq)
        queries
    in
    { pr_queries = qs; pr_plan = None }

  (* evaluation runs over support blocks of this many nodes: the block's
     accumulators stay in registers/L1 while each edge's CSR slices
     stream through once per block instead of once per node *)
  let block = 64

  (* row dot product, sequential: the same multiply-add order as the
     uncached estimator's fold over a reach dist — bit-identical *)
  let dot (w : S.ba_f) (idx : S.ba_i) (cout : float array) lo hi =
    let sum = ref 0.0 in
    for i = lo to hi - 1 do
      sum := !sum +. (BA1.unsafe_get w i *. Array.unsafe_get cout (BA1.unsafe_get idx i))
    done;
    !sum

  (* row dot product, 4-way unrolled: independent accumulators break the
     add dependency chain, but the summation order changes — results can
     differ from the sequential path by float non-associativity. Opt-in
     ([blocked:true]); the bench measures and bounds the |Δ|. *)
  let dot_unrolled (w : S.ba_f) (idx : S.ba_i) (cout : float array) lo hi =
    let n = hi - lo in
    if n < 8 then dot w idx cout lo hi
    else begin
      let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
      let i = ref lo in
      while !i + 3 < hi do
        let i0 = !i in
        s0 := !s0 +. (BA1.unsafe_get w i0 *. Array.unsafe_get cout (BA1.unsafe_get idx i0));
        s1 :=
          !s1
          +. (BA1.unsafe_get w (i0 + 1)
             *. Array.unsafe_get cout (BA1.unsafe_get idx (i0 + 1)));
        s2 :=
          !s2
          +. (BA1.unsafe_get w (i0 + 2)
             *. Array.unsafe_get cout (BA1.unsafe_get idx (i0 + 2)));
        s3 :=
          !s3
          +. (BA1.unsafe_get w (i0 + 3)
             *. Array.unsafe_get cout (BA1.unsafe_get idx (i0 + 3)));
        i := i0 + 4
      done;
      let sum = ref (!s0 +. !s1 +. (!s2 +. !s3)) in
      while !i < hi do
        sum := !sum +. (BA1.unsafe_get w !i *. Array.unsafe_get cout (BA1.unsafe_get idx !i));
        incr i
      done;
      !sum
    end

  (* Per-node float operations replicate the memoized estimator exactly:
     accumulator starts at sigma (or 0 when sigma <= 0), each edge in
     document order maps a non-positive accumulator to 0 without
     touching the row and otherwise multiplies by the row dot product.
     Blocking only reorders WHICH (node, edge) pairs run when — each
     node's own op sequence is unchanged, so results stay bit-identical
     to the unblocked fold (with [blocked:false]). *)
  let eval_query ?(blocked = false) sc q =
    if q.bq_zero then 0.0
    else begin
      scratch_ensure sc q.bq_slots;
      let slots = sc.sc_slots in
      let accs = Array.make block 0.0 in
      let rec eval_node bn =
        Array.iter (fun e -> eval_node e.be_child) bn.bn_edges;
        let out = slots.(bn.bn_slot) in
        let support = bn.bn_support and sigma = bn.bn_sigma in
        let nsup = Array.length support in
        let nedges = Array.length bn.bn_edges in
        let b0 = ref 0 in
        while !b0 < nsup do
          let base = !b0 in
          let bhi = min nsup (base + block) in
          for k = base to bhi - 1 do
            let sg = Array.unsafe_get sigma k in
            Array.unsafe_set accs (k - base) (if sg <= 0.0 then 0.0 else sg)
          done;
          for e = 0 to nedges - 1 do
            let be = Array.unsafe_get bn.bn_edges e in
            let off = be.be_off and idx = be.be_idx and w = be.be_w in
            let cout = slots.(be.be_child.bn_slot) in
            for k = base to bhi - 1 do
              let a = Array.unsafe_get accs (k - base) in
              if a > 0.0 then begin
                let u = Array.unsafe_get support k in
                let lo = BA1.unsafe_get off u and hi = BA1.unsafe_get off (u + 1) in
                let s =
                  if blocked && be.be_unroll then dot_unrolled w idx cout lo hi
                  else dot w idx cout lo hi
                in
                Array.unsafe_set accs (k - base) (a *. s)
              end
              else Array.unsafe_set accs (k - base) 0.0
            done
          done;
          for k = base to bhi - 1 do
            Array.unsafe_set out (Array.unsafe_get support k) (Array.unsafe_get accs (k - base))
          done;
          b0 := bhi
        done
      in
      List.iter (fun (_, c) -> eval_node c) q.bq_root;
      List.fold_left
        (fun acc (rdist, child) ->
          if acc <= 0.0 then 0.0
          else begin
            let cout = slots.(child.bn_slot) in
            let ridx = rdist.Estimate.d_idx and rw = rdist.Estimate.d_w in
            let sum = ref 0.0 in
            for i = 0 to Array.length ridx - 1 do
              sum :=
                !sum
                +. (Array.unsafe_get rw i
                   *. Array.unsafe_get cout (Array.unsafe_get ridx i))
            done;
            acc *. !sum
          end)
        1.0 q.bq_root
    end

  (* ---- matrix-major cohort evaluation ------------------------------- *)

  (* Flatten a compiled query into its postorder program, once; reused
     for every subsequent pass over the same prepared batch. *)
  let flatten bq =
    match bq.bq_flat with
    | Some f -> f
    | None ->
      let tasks =
        List.map
          (fun ((rdist : Estimate.dist), top) ->
            let nodes = ref [] in
            let rec go bn =
              Array.iter (fun e -> go e.be_child) bn.bn_edges;
              nodes :=
                { f_slot = bn.bn_slot;
                  f_support = bn.bn_support;
                  f_sigma = bn.bn_sigma;
                  f_edges =
                    Array.map
                      (fun e ->
                        { f_off = e.be_off; f_idx = e.be_idx; f_w = e.be_w;
                          f_unroll = e.be_unroll;
                          f_child_slot = e.be_child.bn_slot })
                      bn.bn_edges }
                :: !nodes
            in
            go top;
            (* compile_query evaluates the top node over rdist.d_idx
               verbatim, so ft_rw is position-aligned with the top
               node's support — the root dot needs no index lookup *)
            { ft_rw = rdist.Estimate.d_w;
              ft_nodes = Array.of_list (List.rev !nodes) })
          bq.bq_root
        |> Array.of_list
      in
      let f = { fq_zero = bq.bq_zero; fq_slots = bq.bq_slots; fq_tasks = tasks } in
      bq.bq_flat <- Some f;
      f

  (* Per-worker arena: one flat float64 plane per query-node slot, all
     in a single Bigarray (plane [s] is [buf.{s*stride .. s*stride+n-1}]).
     Grown to the high-water (n_nodes × max slots) and then reused for
     every cohort the worker ever runs — planes are NEVER zeroed between
     queries: supports propagate top-down, so every cell a parent reads
     was written by its child earlier in the same evaluation. Reuse is
     tracked by a per-batch epoch bump; [arena_resets] counts the
     (rare) reallocation events. Lives in domain-local storage so the
     persistent Par worker domains keep their arenas across batches. *)
  type arena = {
    mutable ar_buf : S.ba_f;
    mutable ar_n : int;  (* plane stride *)
    mutable ar_slots : int;
    mutable ar_epoch : int;
  }

  (* workers must not touch the (unsynchronized) Metrics registry; the
     coordinator folds this delta in after the join *)
  let arena_resets : int Atomic.t = Atomic.make 0

  let arena_key : arena Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        { ar_buf = BA1.create Bigarray.float64 Bigarray.c_layout 0;
          ar_n = 0;
          ar_slots = 0;
          ar_epoch = 0 })

  let arena_for n slots =
    let ar = Domain.DLS.get arena_key in
    if ar.ar_n < n || ar.ar_slots < slots then begin
      let n' = max n ar.ar_n and s' = max slots ar.ar_slots in
      ar.ar_buf <- BA1.create Bigarray.float64 Bigarray.c_layout (n' * s');
      ar.ar_n <- n';
      ar.ar_slots <- s';
      Atomic.incr arena_resets
    end;
    ar.ar_epoch <- ar.ar_epoch + 1;
    ar

  (* row dot against an arena plane — same ascending multiply-add order
     as [dot], so bit-identical; only the output storage differs *)
  let dot_plane (w : S.ba_f) (idx : S.ba_i) (buf : S.ba_f) base lo hi =
    let sum = ref 0.0 in
    for i = lo to hi - 1 do
      sum :=
        !sum +. (BA1.unsafe_get w i *. BA1.unsafe_get buf (base + BA1.unsafe_get idx i))
    done;
    !sum

  (* plane twin of [dot_unrolled]: same 4-accumulator order, same < 8
     scalar fallback *)
  let dot_plane_unrolled (w : S.ba_f) (idx : S.ba_i) (buf : S.ba_f) base lo hi =
    let n = hi - lo in
    if n < 8 then dot_plane w idx buf base lo hi
    else begin
      let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
      let i = ref lo in
      while !i + 3 < hi do
        let i0 = !i in
        s0 :=
          !s0
          +. (BA1.unsafe_get w i0 *. BA1.unsafe_get buf (base + BA1.unsafe_get idx i0));
        s1 :=
          !s1
          +. (BA1.unsafe_get w (i0 + 1)
             *. BA1.unsafe_get buf (base + BA1.unsafe_get idx (i0 + 1)));
        s2 :=
          !s2
          +. (BA1.unsafe_get w (i0 + 2)
             *. BA1.unsafe_get buf (base + BA1.unsafe_get idx (i0 + 2)));
        s3 :=
          !s3
          +. (BA1.unsafe_get w (i0 + 3)
             *. BA1.unsafe_get buf (base + BA1.unsafe_get idx (i0 + 3)));
        i := i0 + 4
      done;
      let sum = ref (!s0 +. !s1 +. (!s2 +. !s3)) in
      while !i < hi do
        sum :=
          !sum +. (BA1.unsafe_get w !i *. BA1.unsafe_get buf (base + BA1.unsafe_get idx !i));
        incr i
      done;
      !sum
    end

  (* Matrix-major evaluation of one flat query against the worker's
     arena. Per-(node, support position) the float op sequence is
     exactly [eval_query]'s: start at the clamped sigma, each edge in
     document order maps a non-positive value to 0.0 and otherwise
     multiplies by the row dot. Two structural changes, both op-order
     preserving:
     - the top node's values fold straight into the root dot product
       instead of being scattered first — valid because its support IS
       the root dist's index array, so the dot visits exactly the
       per-position values in the same ascending order with the same
       weights;
     - a task whose running root fold is already <= 0.0 is skipped
       entirely — the fold's own [acc <= 0.0 -> 0.0] arm never reads
       the task's sum, so not computing it changes nothing. *)
  let eval_flat ~blocked ar fq =
    if fq.fq_zero then 0.0
    else begin
      let buf = ar.ar_buf and stride = ar.ar_n in
      let ntasks = Array.length fq.fq_tasks in
      let acc = ref 1.0 in
      let ti = ref 0 in
      while !ti < ntasks && !acc > 0.0 do
        let task = Array.unsafe_get fq.fq_tasks !ti in
        let nodes = task.ft_nodes in
        let last = Array.length nodes - 1 in
        for nix = 0 to last - 1 do
          let fn = Array.unsafe_get nodes nix in
          let support = fn.f_support and sigma = fn.f_sigma in
          let edges = fn.f_edges in
          let nsup = Array.length support in
          let nedges = Array.length edges in
          let base = fn.f_slot * stride in
          for k = 0 to nsup - 1 do
            let sg = Array.unsafe_get sigma k in
            let v = ref (if sg <= 0.0 then 0.0 else sg) in
            for e = 0 to nedges - 1 do
              if !v > 0.0 then begin
                let fe = Array.unsafe_get edges e in
                let u = Array.unsafe_get support k in
                let lo = BA1.unsafe_get fe.f_off u
                and hi = BA1.unsafe_get fe.f_off (u + 1) in
                let cbase = fe.f_child_slot * stride in
                let s =
                  if blocked && fe.f_unroll then
                    dot_plane_unrolled fe.f_w fe.f_idx buf cbase lo hi
                  else dot_plane fe.f_w fe.f_idx buf cbase lo hi
                in
                v := !v *. s
              end
              else v := 0.0
            done;
            BA1.unsafe_set buf (base + Array.unsafe_get support k) !v
          done
        done;
        (* top node: fuse the node evaluation with the root-edge dot *)
        let fn = Array.unsafe_get nodes last in
        let support = fn.f_support and sigma = fn.f_sigma in
        let edges = fn.f_edges in
        let rw = task.ft_rw in
        let nsup = Array.length support in
        let nedges = Array.length edges in
        let s = ref 0.0 in
        for k = 0 to nsup - 1 do
          let sg = Array.unsafe_get sigma k in
          let v = ref (if sg <= 0.0 then 0.0 else sg) in
          for e = 0 to nedges - 1 do
            if !v > 0.0 then begin
              let fe = Array.unsafe_get edges e in
              let u = Array.unsafe_get support k in
              let lo = BA1.unsafe_get fe.f_off u
              and hi = BA1.unsafe_get fe.f_off (u + 1) in
              let cbase = fe.f_child_slot * stride in
              let d =
                if blocked && fe.f_unroll then
                  dot_plane_unrolled fe.f_w fe.f_idx buf cbase lo hi
                else dot_plane fe.f_w fe.f_idx buf cbase lo hi
              in
              v := !v *. d
            end
            else v := 0.0
          done;
          s := !s +. (Array.unsafe_get rw k *. !v)
        done;
        acc := !acc *. !s;
        incr ti
      done;
      if !acc <= 0.0 then 0.0 else !acc
    end

  (* Build the cohort plan for a prepared batch: dedup shared compiled
     queries (prepare returns the same bquery object for duplicate
     keys), group the distinct ones by cohort key with first-occurrence
     cohort numbering, and lay them out cohort-major with a stable
     counting sort — all deterministic functions of the input order,
     independent of domain count. *)
  let build_plan prepared =
    let nq = Array.length prepared.pr_queries in
    let pos_of_id = Hashtbl.create (2 * nq) in
    let rev_distinct = ref [] in
    let ndistinct = ref 0 in
    let src = Array.make nq 0 in
    Array.iteri
      (fun i bq ->
        match Hashtbl.find_opt pos_of_id bq.bq_id with
        | Some p -> src.(i) <- p
        | None ->
          let p = !ndistinct in
          Hashtbl.add pos_of_id bq.bq_id p;
          rev_distinct := bq :: !rev_distinct;
          incr ndistinct;
          src.(i) <- p)
      prepared.pr_queries;
    let distinct = Array.of_list (List.rev !rev_distinct) in
    let nd = Array.length distinct in
    if nd = 0 then
      { cp_queries = [||]; cp_src = [||]; cp_cohorts = [||]; cp_max_cohort = 0;
        cp_slots = 1; cp_values = [||] }
    else begin
      let cid_of_key = Hashtbl.create 64 in
      let ncoh = ref 0 in
      let cid =
        Array.map
          (fun bq ->
            match Hashtbl.find_opt cid_of_key bq.bq_key with
            | Some c -> c
            | None ->
              let c = !ncoh in
              Hashtbl.add cid_of_key bq.bq_key c;
              incr ncoh;
              c)
          distinct
      in
      let ncoh = !ncoh in
      let count = Array.make ncoh 0 in
      Array.iter (fun c -> count.(c) <- count.(c) + 1) cid;
      let start = Array.make ncoh 0 in
      for c = 1 to ncoh - 1 do
        start.(c) <- start.(c - 1) + count.(c - 1)
      done;
      let next = Array.copy start in
      let order = Array.make nd 0 in
      Array.iteri
        (fun p c ->
          order.(p) <- next.(c);
          next.(c) <- next.(c) + 1)
        cid;
      let flat = Array.map flatten distinct in
      let sorted = Array.make nd flat.(0) in
      Array.iteri (fun p f -> sorted.(order.(p)) <- f) flat;
      { cp_queries = sorted;
        cp_src = Array.map (fun p -> order.(p)) src;
        cp_cohorts = Array.init ncoh (fun c -> (start.(c), count.(c)));
        cp_max_cohort = Array.fold_left max 0 count;
        cp_slots = Array.fold_left (fun a f -> max a f.fq_slots) 1 flat;
        cp_values = Array.make nd 0.0 }
    end

  let plan_of prepared =
    match prepared.pr_plan with
    | Some p -> p
    | None ->
      let p = Metrics.time m "batch.cohort_plan" (fun () -> build_plan prepared) in
      prepared.pr_plan <- Some p;
      p

  let cohort_stats prepared =
    let p = plan_of prepared in
    (Array.length p.cp_cohorts, p.cp_max_cohort, Array.length p.cp_queries)

  (* One batch pass, matrix-major: workers claim whole cohorts (the
     parallel unit is a cohort, never a query), each query's value lands
     in cp_values by its cohort-major position, and the result array is
     gathered through cp_src in input order — placement is a pure
     function of the input, so XC_DOMAINS cannot change the output. *)
  let run_cohort ~domains ~blocked t plan =
    let n = S.n_nodes t.bt_syn in
    let ncoh = Array.length plan.cp_cohorts in
    let lat = Array.make ncoh 0.0 in
    let resets0 = Atomic.get arena_resets in
    let minor0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    Xc_util.Par.iter_chunked ~domains
      ~init:(fun () -> arena_for n plan.cp_slots)
      (fun ar ci (start, len) ->
        (* latency is sampled on every 8th cohort: cohorts run in
           fractions of a microsecond, so timestamping each one costs
           ~10% of the sweep — sampling keeps the histogram
           representative without charging the hot path for it *)
        let sample = ci land 7 = 0 in
        let c0 = if sample then Unix.gettimeofday () else 0.0 in
        for p = start to start + len - 1 do
          plan.cp_values.(p) <-
            eval_flat ~blocked ar (Array.unsafe_get plan.cp_queries p)
        done;
        (* workers touch only their own slot; the coordinator folds
           these into Metrics after the join *)
        if sample then lat.(ci) <- Unix.gettimeofday () -. c0)
      plan.cp_cohorts;
    Metrics.add_time m "estimate.batch" (Unix.gettimeofday () -. t0);
    Metrics.incr m ~by:ncoh "batch.cohorts";
    Metrics.record_max m "batch.cohort_max" plan.cp_max_cohort;
    Metrics.incr m ~by:(Atomic.get arena_resets - resets0) "batch.arena_resets";
    (* coordinator-side minor allocation across the whole pass: the
       cohort path's figure of merit is this staying near zero *)
    Metrics.incr m ~by:(int_of_float (Gc.minor_words () -. minor0)) "batch.minor_words";
    let ci = ref 0 in
    while !ci < ncoh do
      Metrics.observe m "estimate.cohort_us" (1e6 *. lat.(!ci));
      ci := !ci + 8
    done;
    Array.map (fun p -> Array.unsafe_get plan.cp_values p) plan.cp_src

  let run_prepared ?(domains = 0) ?(blocked = false) ?(cohort = true) t prepared =
    let nq = Array.length prepared.pr_queries in
    if nq = 0 then [||]
    else begin
      Metrics.incr m ~by:nq "batch.queries";
      if cohort then run_cohort ~domains ~blocked t (plan_of prepared)
      else begin
        (* query-major reference path: per-query latency histogram,
           per-query scratch walk — kept as the bit-exactness oracle
           and the p50/p95/p99 source *)
        let n = S.n_nodes t.bt_syn in
        let lat = Array.make nq 0.0 in
        let t0 = Unix.gettimeofday () in
        let out =
          Xc_util.Par.map_chunked ~domains
            ~init:(fun () -> scratch_create n)
            (fun sc i q ->
              let q0 = Unix.gettimeofday () in
              let v = eval_query ~blocked sc q in
              (* workers touch only their own slot; the coordinator folds
                 these into Metrics afterwards, in input order *)
              lat.(i) <- Unix.gettimeofday () -. q0;
              v)
            prepared.pr_queries
        in
        Metrics.add_time m "estimate.batch" (Unix.gettimeofday () -. t0);
        Array.iter (fun dt -> Metrics.observe m "estimate.batch_us" (1e6 *. dt)) lat;
        out
      end
    end

  let run ?domains ?cohort t queries =
    run_prepared ?domains ?cohort t (prepare t queries)

  let run_result ?domains ?cohort t queries =
    match run ?domains ?cohort t queries with
    | r -> Ok r
    | exception exn ->
      Metrics.incr m "batch.error";
      Error (Printexc.to_string exn)

  let estimate t q = (run ~domains:1 t [| q |]).(0)
end
