open Xc_xml

type detail = {
  hist_buckets : int;
  pst_depth : int;
  pst_nodes : int;
  top_terms : int;
}

let default_detail =
  { hist_buckets = 64; pst_depth = 8; pst_nodes = 1024; top_terms = 4096 }

(* ---- label-path identifiers ----------------------------------------- *)

type path_trie = {
  pid : int;
  labels : Label.t list; (* reversed root-to-here *)
  children : (Label.t, path_trie) Hashtbl.t;
}

let assign_paths doc =
  let next = ref 0 in
  let new_trie labels =
    let pid = !next in
    incr next;
    { pid; labels; children = Hashtbl.create 4 }
  in
  let root_trie = new_trie [] in
  let n = Document.n_elements doc in
  let path_of = Array.make n (-1) in
  let paths_by_id = ref [] in
  let rec walk trie node =
    let child_trie =
      match Hashtbl.find_opt trie.children node.Node.label with
      | Some t -> t
      | None ->
        let t = new_trie (node.Node.label :: trie.labels) in
        Hashtbl.add trie.children node.Node.label t;
        paths_by_id := (t.pid, List.rev t.labels) :: !paths_by_id;
        t
    in
    path_of.(node.Node.id) <- child_trie.pid;
    Array.iter (walk child_trie) node.Node.children
  in
  walk root_trie doc.Document.root;
  let path_labels = Hashtbl.create 64 in
  List.iter (fun (pid, labels) -> Hashtbl.replace path_labels pid labels) !paths_by_id;
  (path_of, path_labels)

(* ---- partition refinement to count-stability ------------------------ *)

(* Refinement with a minimum extent: a full count-stable split can
   fragment clusters into extents of a handful of elements each, which
   starves the value budget (thousands of near-empty summaries). Within
   each cluster, signature fragments smaller than [min_extent] are
   pooled into a single residual sub-cluster; large fragments split off
   exactly. The result is approximately count-stable, trading bounded
   cluster impurity for summaries with enough mass to matter — the same
   engineering latitude the paper exercises (its reference-synopsis
   details are deferred to the unpublished full version). *)
let refine ?(min_extent = 1) ?value_min_extent doc initial =
  let value_min_extent = Option.value ~default:min_extent value_min_extent in
  let nodes = doc.Document.nodes in
  let parents = Document.parent_table doc in
  let n = Array.length nodes in
  (* per-element pooling threshold: value-bearing elements use the larger
     bound so that value summaries only split along heavyweight
     structural classes and the value budget is not shredded across
     hundreds of near-empty summaries *)
  let threshold i =
    match Value.vtype nodes.(i).Node.value with
    | Value.Tnull -> min_extent
    | Value.Tnumeric | Value.Tstring | Value.Ttext -> max min_extent value_min_extent
  in
  let cluster = Array.copy initial in
  let changed = ref true in
  let rounds = ref 0 in
  let max_rounds = (2 * doc.Document.height) + 4 in
  let key_buf = Buffer.create 64 in
  while !changed && !rounds < max_rounds do
    incr rounds;
    let fresh = Hashtbl.create 1024 in
    let next = ref 0 in
    let renamed = Array.make n (-1) in
    for i = 0 to n - 1 do
      Buffer.clear key_buf;
      Buffer.add_string key_buf (string_of_int cluster.(i));
      (* backward stability: "exactly one incoming path" requires all
         elements of a cluster to have parents in a single cluster, so
         the parent's cluster joins the signature *)
      Buffer.add_char key_buf '^';
      Buffer.add_string key_buf
        (string_of_int (if parents.(i) < 0 then -1 else cluster.(parents.(i))));
      (* per-child-cluster counts, order-insensitive *)
      let counts = Hashtbl.create 8 in
      Array.iter
        (fun c ->
          let cc = cluster.(c.Node.id) in
          Hashtbl.replace counts cc (1 + Option.value ~default:0 (Hashtbl.find_opt counts cc)))
        nodes.(i).Node.children;
      let pairs = Hashtbl.fold (fun cc k acc -> (cc, k) :: acc) counts [] in
      let pairs = List.sort compare pairs in
      List.iter
        (fun (cc, k) ->
          Buffer.add_char key_buf '|';
          Buffer.add_string key_buf (string_of_int cc);
          Buffer.add_char key_buf ':';
          Buffer.add_string key_buf (string_of_int k))
        pairs;
      let key = Buffer.contents key_buf in
      let id =
        match Hashtbl.find_opt fresh key with
        | Some id -> id
        | None ->
          let id = !next in
          incr next;
          Hashtbl.add fresh key id;
          id
      in
      renamed.(i) <- id
    done;
    (* pool small fragments back into one residual fragment per parent
       cluster *)
    (if min_extent > 1 || value_min_extent > 1 then begin
       let frag_size = Array.make !next 0 in
       for i = 0 to n - 1 do
         frag_size.(renamed.(i)) <- frag_size.(renamed.(i)) + 1
       done;
       (* residual id per (old cluster): reuse the first small fragment *)
       let residual = Hashtbl.create 64 in
       for i = 0 to n - 1 do
         if frag_size.(renamed.(i)) < threshold i then begin
           let old = cluster.(i) in
           match Hashtbl.find_opt residual old with
           | Some r -> renamed.(i) <- r
           | None -> Hashtbl.add residual old renamed.(i)
         end
       done;
       (* compact ids *)
       let compact = Hashtbl.create 1024 in
       let next' = ref 0 in
       for i = 0 to n - 1 do
         match Hashtbl.find_opt compact renamed.(i) with
         | Some id -> renamed.(i) <- id
         | None ->
           Hashtbl.add compact renamed.(i) !next';
           renamed.(i) <- !next';
           incr next'
       done;
       next := !next'
     end);
    let n_old = Array.fold_left max 0 cluster + 1 in
    changed := !next <> n_old;
    Array.blit renamed 0 cluster 0 n
  done;
  cluster

(* ---- synopsis assembly ---------------------------------------------- *)

let vtype_tag = function
  | Value.Tnull -> 0
  | Value.Tnumeric -> 1
  | Value.Tstring -> 2
  | Value.Ttext -> 3

let assemble ~detail ~value_paths doc cluster path_of path_labels =
  let nodes = doc.Document.nodes in
  let n = Array.length nodes in
  let syn = Synopsis.Builder.create ~doc_height:doc.Document.height in
  let n_clusters = Array.fold_left max 0 cluster + 1 in
  (* per-cluster aggregates *)
  let counts = Array.make n_clusters 0 in
  let member = Array.make n_clusters (-1) in
  for i = 0 to n - 1 do
    let c = cluster.(i) in
    counts.(c) <- counts.(c) + 1;
    if member.(c) < 0 then member.(c) <- i
  done;
  let designated =
    match value_paths with
    | None -> None
    | Some paths ->
      let set = Hashtbl.create 16 in
      List.iter (fun p -> Hashtbl.replace set p ()) paths;
      Some set
  in
  let is_designated pid =
    match designated with
    | None -> true
    | Some set -> (
      match Hashtbl.find_opt path_labels pid with
      | Some labels -> Hashtbl.mem set labels
      | None -> false)
  in
  (* per-cluster value collections (only where designated) *)
  let values = Array.make n_clusters [] in
  for i = n - 1 downto 0 do
    let c = cluster.(i) in
    match nodes.(i).Node.value with
    | Value.Null -> ()
    | v -> if is_designated path_of.(i) then values.(c) <- v :: values.(c)
  done;
  (* allocate synopsis nodes *)
  let sid_of = Array.make n_clusters (-1) in
  for c = 0 to n_clusters - 1 do
    if counts.(c) > 0 then begin
      let repr = nodes.(member.(c)) in
      let vsumm =
        match values.(c) with
        | [] -> Xc_vsumm.Value_summary.vnone
        | vs ->
          Xc_vsumm.Value_summary.of_values ~hist_buckets:detail.hist_buckets
            ~pst_depth:detail.pst_depth ~pst_nodes:detail.pst_nodes
            ~top_terms:detail.top_terms vs
      in
      let snode =
        Synopsis.Builder.add_node syn ~label:repr.Node.label
          ~vtype:(Value.vtype repr.Node.value) ~count:counts.(c) ~vsumm
      in
      sid_of.(c) <- Synopsis.Builder.sid snode
    end
  done;
  (* edges: total children per (parent cluster, child cluster) *)
  let edge_totals = Hashtbl.create 1024 in
  for i = 0 to n - 1 do
    let pc = cluster.(i) in
    Array.iter
      (fun child ->
        let key = (pc, cluster.(child.Node.id)) in
        Hashtbl.replace edge_totals key
          (1 + Option.value ~default:0 (Hashtbl.find_opt edge_totals key)))
      nodes.(i).Node.children
  done;
  Hashtbl.iter
    (fun (pc, cc) total ->
      Synopsis.Builder.set_edge syn ~parent:sid_of.(pc) ~child:sid_of.(cc)
        (float_of_int total /. float_of_int counts.(pc)))
    edge_totals;
  Synopsis.Builder.set_root syn sid_of.(cluster.(0));
  syn

let build ?(detail = default_detail) ?(min_extent = 48) ?value_min_extent
    ?value_paths doc =
  let path_of, path_labels = assign_paths doc in
  let n = Document.n_elements doc in
  (* initial partition = (label path, value type) *)
  let fresh = Hashtbl.create 256 in
  let next = ref 0 in
  let initial =
    Array.init n (fun i ->
        let key =
          (path_of.(i), vtype_tag (Value.vtype doc.Document.nodes.(i).Node.value))
        in
        match Hashtbl.find_opt fresh key with
        | Some id -> id
        | None ->
          let id = !next in
          incr next;
          Hashtbl.add fresh key id;
          id)
  in
  let cluster = refine ~min_extent ?value_min_extent doc initial in
  assemble ~detail ~value_paths doc cluster path_of path_labels

let tag_only ?(detail = default_detail) ?value_paths doc =
  let path_of, path_labels = assign_paths doc in
  let n = Document.n_elements doc in
  let fresh = Hashtbl.create 256 in
  let next = ref 0 in
  let cluster =
    Array.init n (fun i ->
        let node = doc.Document.nodes.(i) in
        let key = (node.Node.label, vtype_tag (Value.vtype node.Node.value)) in
        match Hashtbl.find_opt fresh key with
        | Some id -> id
        | None ->
          let id = !next in
          incr next;
          Hashtbl.add fresh key id;
          id)
  in
  assemble ~detail ~value_paths doc cluster path_of path_labels
