module Vs = Xc_vsumm.Value_summary
module B = Synopsis.Builder
module S = Synopsis.Sealed
module Crc32 = Xc_util.Crc32
module Safe_io = Xc_util.Safe_io
module Metrics = Xc_util.Metrics
open Xc_xml

let magic = "XCLU"
let version = 3
let version_v2 = 2
let version_v1 = 1

(* v2 section tags, in file order *)
let tag_header = 1
let tag_terms = 2
let tag_nodes = 3

(* v3 layout: a fixed 13-entry section directory up front, then raw
   alignment-padded section payloads. Numeric sections are little-endian
   64-bit words so [Unix.map_file] can expose them as Bigarray slices
   zero-copy on little-endian hosts; byte-granular sections (labels,
   terms, value summaries) keep the v2 big-endian record idiom and are
   parsed, not mapped. Every byte of the container from offset 12 on is
   CRC-covered: the directory (including the 4 alignment pad bytes) by
   the directory CRC, each payload (including its trailing pad) by its
   entry's CRC — a single flipped bit anywhere is detectable.

     0  magic "XCLU"
     4  version (int64 BE) = 3
    12  pad (4 zero bytes)            --+
    16  n_sections (int64 BE) = 13      | directory CRC covers [12, 440)
    24  13 x 32-byte entries:           |
        tag | offset | length | crc    --+   (int64 BE each)
   440  directory CRC-32 (int64 BE)
   448  section payloads, in tag order, each 8-aligned and a
        multiple of 8 bytes long (zero-padded inside the CRC) *)

let v3_n_sections = 13
let v3_dir_pos = 12
let v3_entry_size = 32
let v3_dir_crc_pos = 24 + (v3_n_sections * v3_entry_size)
let v3_data_pos = v3_dir_crc_pos + 8

let v3_section_names =
  [| "header"; "sids"; "counts"; "labels"; "vtypes"; "child_off"; "child_idx";
     "child_avg"; "parent_off"; "parent_idx"; "terms"; "vsumm_off"; "vsumm_blob" |]

let v3_section_name tag =
  if tag >= 1 && tag <= v3_n_sections then v3_section_names.(tag - 1)
  else Printf.sprintf "section-%d" tag

(* A node record is at least sid + label length + vtype + count +
   vsumm tag + edge count = 48 bytes; an edge is 16. Guards below use
   these floors to reject counts no remaining input could satisfy. *)
let node_min_bytes = 48
let edge_min_bytes = 16

(* ---- errors ------------------------------------------------------------ *)

type error =
  | Bad_magic
  | Unsupported_version of int
  | Truncated of { pos : int; need : int }
  | Bad_length of { pos : int; len : int; what : string }
  | Checksum_mismatch of { section : string; stored : int; actual : int }
  | Corrupt of { pos : int; what : string }
  | Io of string

exception Lazy_failure of error
(* deferred-verification failure: a lazily loaded v3 section failed its
   CRC (or bounds check) on first touch, after load had already
   returned [Ok]. Serving layers catch this and degrade. *)

let pp_error ppf = function
  | Bad_magic -> Format.fprintf ppf "bad magic (not an XCluster synopsis file)"
  | Unsupported_version v ->
    Format.fprintf ppf "unsupported format version %d (this build reads 1-%d)" v version
  | Truncated { pos; need } ->
    Format.fprintf ppf "truncated input at byte %d (%d more bytes needed)" pos need
  | Bad_length { pos; len; what } ->
    Format.fprintf ppf "implausible %s %d at byte %d" what len pos
  | Checksum_mismatch { section; stored; actual } ->
    Format.fprintf ppf "%s section checksum mismatch (stored %08x, computed %08x)"
      section (stored land 0xFFFFFFFF) actual
  | Corrupt { pos; what } -> Format.fprintf ppf "%s at byte %d" what pos
  | Io msg -> Format.fprintf ppf "%s" msg

let error_to_string e = Format.asprintf "%a" pp_error e

let () =
  Printexc.register_printer (function
    | Lazy_failure e -> Some ("Codec.Lazy_failure: " ^ error_to_string e)
    | _ -> None)

exception Decode of error

let err e = raise (Decode e)

let record_error e =
  Metrics.incr Metrics.global "codec.decode_error";
  match e with
  | Checksum_mismatch _ -> Metrics.incr Metrics.global "codec.crc_mismatch"
  | _ -> ()

(* ---- primitive encoders ------------------------------------------------ *)

let put_int buf n = Buffer.add_int64_be buf (Int64.of_int n)
let put_float buf f = Buffer.add_int64_be buf (Int64.bits_of_float f)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_list buf f xs =
  put_int buf (List.length xs);
  List.iter (f buf) xs

(* ---- bounded reader ----------------------------------------------------
   Every read checks against [limit] (the end of the enclosing section,
   or of the input) and every count is validated against the remaining
   bytes before anything is allocated, so hostile length fields cannot
   drive [String.sub]/[List.init]/[Array.init] sizes. *)

type reader = {
  src : string;
  mutable pos : int;
  limit : int;
}

let remaining r = r.limit - r.pos

let get_int r =
  if r.pos + 8 > r.limit then err (Truncated { pos = r.pos; need = r.pos + 8 - r.limit });
  let v64 = String.get_int64_be r.src r.pos in
  let v = Int64.to_int v64 in
  (* the writer only emits OCaml ints, so a field outside the 63-bit
     range is damage — and [Int64.to_int] would silently drop the high
     bit, letting a flipped sign bit through framing fields that no
     checksum covers *)
  if Int64.of_int v <> v64 then
    err (Corrupt { pos = r.pos; what = "integer field out of 63-bit range" });
  r.pos <- r.pos + 8;
  v

let get_float r =
  if r.pos + 8 > r.limit then err (Truncated { pos = r.pos; need = r.pos + 8 - r.limit });
  let v = Int64.float_of_bits (String.get_int64_be r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let get_string r =
  let at = r.pos in
  let n = get_int r in
  if n < 0 || n > remaining r then err (Bad_length { pos = at; len = n; what = "string length" });
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

(* [elt_min] is the fewest bytes one element can occupy, so the count
   is bounded by the remaining input before the list is built *)
let get_list r ~elt_min ~what f =
  let at = r.pos in
  let n = get_int r in
  if n < 0 || n > remaining r / max 1 elt_min then
    err (Bad_length { pos = at; len = n; what });
  List.init n (fun _ -> f r)

(* ---- little-endian section primitives (v3 numeric payloads) ----------- *)

let put_int_le buf n = Buffer.add_int64_le buf (Int64.of_int n)

let pad8 buf =
  while Buffer.length buf land 7 <> 0 do
    Buffer.add_char buf '\000'
  done

(* same 63-bit round-trip discipline as [get_int]: stored words outside
   OCaml's int range are damage (the writer only emits ints), and
   [Int64.to_int] would silently drop the top bit *)
let get_int_le src pos =
  let v64 = String.get_int64_le src pos in
  let v = Int64.to_int v64 in
  if Int64.of_int v <> v64 then
    err (Corrupt { pos; what = "integer field out of 63-bit range" });
  v

module BA1 = Bigarray.Array1

(* decode a little-endian int64 section into a fresh Bigarray (the
   eager, endianness-independent path; the mmap path aliases the file
   bytes instead) *)
let ba_i_of_le src ~pos ~count =
  let b = BA1.create Bigarray.int Bigarray.c_layout count in
  for i = 0 to count - 1 do
    BA1.unsafe_set b i (get_int_le src (pos + (8 * i)))
  done;
  b

let ba_f_of_le src ~pos ~count =
  let b = BA1.create Bigarray.float64 Bigarray.c_layout count in
  for i = 0 to count - 1 do
    BA1.unsafe_set b i (Int64.float_of_bits (String.get_int64_le src (pos + (8 * i))))
  done;
  b

let ints_of_le src ~pos ~count = Array.init count (fun i -> get_int_le src (pos + (8 * i)))

(* ---- term table ---------------------------------------------------------
   Term identifiers are process-local, so the encoding embeds the spelling
   of every term it references and the decoder re-interns them. *)

type term_table = {
  mutable ids : int list; (* referenced ids, reverse order of discovery *)
  index : (int, int) Hashtbl.t; (* global id -> local index *)
}

let tt_create () = { ids = []; index = Hashtbl.create 256 }

let tt_local tt id =
  match Hashtbl.find_opt tt.index id with
  | Some local -> local
  | None ->
    let local = Hashtbl.length tt.index in
    Hashtbl.add tt.index id local;
    tt.ids <- id :: tt.ids;
    local

(* ---- value summaries ----------------------------------------------------- *)

let put_vsumm tt buf = function
  | Vs.Vnone -> put_int buf 0
  | Vs.Vnum h ->
    put_int buf 1;
    let bounds, counts = Xc_vsumm.Histogram.raw h in
    put_int buf (Array.length counts);
    Array.iter (put_int buf) bounds;
    Array.iter (put_float buf) counts
  | Vs.Vstr p ->
    put_int buf 2;
    put_float buf (Xc_vsumm.Pst.n_strings p);
    put_float buf (Xc_vsumm.Pst.total_len p);
    put_int buf (Xc_vsumm.Pst.max_depth p);
    let entries = ref [] in
    Xc_vsumm.Pst.iter_substrings (fun s c -> entries := (s, c) :: !entries) p;
    (* depth-first order lists prefixes before extensions once reversed *)
    put_list buf
      (fun buf (s, c) ->
        put_string buf s;
        put_float buf c)
      (List.rev !entries)
  | Vs.Vtext th ->
    put_int buf 3;
    put_float buf (Xc_vsumm.Term_hist.n_documents th);
    let top, bucket, bucket_avg = Xc_vsumm.Term_hist.parts th in
    put_list buf
      (fun buf (id, f) ->
        put_int buf (tt_local tt id);
        put_float buf f)
      top;
    put_list buf (fun buf id -> put_int buf (tt_local tt id)) bucket;
    put_float buf bucket_avg

let get_vsumm terms r =
  let at = r.pos in
  match get_int r with
  | 0 -> Vs.Vnone
  | 1 ->
    let n_at = r.pos in
    let n = get_int r in
    (* (n+1) bounds + n counts = 16n + 8 bytes; compare by division so
       a hostile count cannot overflow the bound itself *)
    if n < 0 || remaining r < 8 || n > (remaining r - 8) / 16 then
      err (Bad_length { pos = n_at; len = n; what = "histogram bucket count" });
    let bounds = Array.init (n + 1) (fun _ -> get_int r) in
    let counts = Array.init n (fun _ -> get_float r) in
    Vs.Vnum (Xc_vsumm.Histogram.of_raw ~bounds ~counts)
  | 2 ->
    let n = get_float r in
    let total_len = get_float r in
    let d_at = r.pos in
    let max_depth = get_int r in
    if max_depth < 0 || max_depth > 1_000_000 then
      err (Bad_length { pos = d_at; len = max_depth; what = "suffix-tree depth" });
    let entries =
      get_list r ~elt_min:16 ~what:"substring count" (fun r ->
          let s = get_string r in
          let c = get_float r in
          (s, c))
    in
    Vs.Vstr (Xc_vsumm.Pst.of_substrings ~total_len ~n ~max_depth entries)
  | 3 ->
    let n = get_float r in
    let remap at local =
      if local < 0 || local >= Array.length terms then
        err
          (Corrupt
             { pos = at; what = Printf.sprintf "term index %d out of range" local });
      (terms.(local) : Dictionary.term :> int)
    in
    let top =
      get_list r ~elt_min:16 ~what:"term count" (fun r ->
          let at = r.pos in
          let local = get_int r in
          let f = get_float r in
          (remap at local, f))
    in
    let bucket =
      get_list r ~elt_min:8 ~what:"term-bucket count" (fun r ->
          let at = r.pos in
          remap at (get_int r))
    in
    let bucket_avg = get_float r in
    Vs.Vtext (Xc_vsumm.Term_hist.of_parts ~n ~top ~bucket ~bucket_avg)
  | tag ->
    err (Corrupt { pos = at; what = Printf.sprintf "unknown value-summary tag %d" tag })

let vtype_tag = function
  | Value.Tnull -> 0
  | Value.Tnumeric -> 1
  | Value.Tstring -> 2
  | Value.Ttext -> 3

let get_vtype r =
  let at = r.pos in
  match get_int r with
  | 0 -> Value.Tnull
  | 1 -> Value.Tnumeric
  | 2 -> Value.Tstring
  | 3 -> Value.Ttext
  | tag ->
    err (Corrupt { pos = at; what = Printf.sprintf "unknown value-type tag %d" tag })

(* ---- encoding --------------------------------------------------------------
   The node-record payload is shared between versions: nodes in
   ascending-sid order with sid-keyed edges, which is exactly the
   sealed form's index order; decoding rebuilds a Builder and freezes
   it, so a load/save round trip re-canonicalizes nothing.

   v1 (legacy) wraps it unframed:
     magic | version | term table | doc_height root n_nodes | nodes
   v2 frames header / terms / nodes into sections, each
     tag | payload length | CRC-32 | payload
   so any damage is detected section-locally before decoding. *)

let encode_nodes tt syn =
  let body = Buffer.create 65536 in
  let n = S.n_nodes syn in
  let child_off = S.child_off syn
  and child_idx = S.child_idx syn
  and child_avg = S.child_avg syn in
  for i = 0 to n - 1 do
    put_int body (S.sid_of_index syn i);
    put_string body (Label.to_string (S.label syn i));
    put_int body (vtype_tag (S.vtype syn i));
    put_int body (S.count syn i);
    put_vsumm tt body (S.vsumm syn i);
    put_int body (child_off.(i + 1) - child_off.(i));
    for e = child_off.(i) to child_off.(i + 1) - 1 do
      put_int body (S.sid_of_index syn child_idx.(e));
      put_float body child_avg.(e)
    done
  done;
  Buffer.contents body

let encode_terms tt =
  let buf = Buffer.create 4096 in
  put_list buf put_string
    (List.rev_map (fun id -> Dictionary.to_string (Dictionary.unsafe_of_int id)) tt.ids);
  Buffer.contents buf

let add_section out ~tag payload =
  put_int out tag;
  put_int out (String.length payload);
  put_int out (Crc32.digest payload);
  Buffer.add_string out payload

let to_string_v2 syn =
  let tt = tt_create () in
  let nodes = encode_nodes tt syn in
  let terms = encode_terms tt in
  let header =
    let b = Buffer.create 24 in
    put_int b (S.doc_height syn);
    put_int b (S.root_sid syn);
    put_int b (S.n_nodes syn);
    Buffer.contents b
  in
  let out = Buffer.create (String.length nodes + String.length terms + 128) in
  Buffer.add_string out magic;
  put_int out version_v2;
  add_section out ~tag:tag_header header;
  add_section out ~tag:tag_terms terms;
  add_section out ~tag:tag_nodes nodes;
  Buffer.contents out

(* the v3 mmap-friendly section layout (see the diagram at the top) *)
let to_string_v3 syn =
  let n = S.n_nodes syn in
  let ne = S.n_edges syn in
  let tt = tt_create () in
  (* value summaries first: encoding in node index order discovers
     terms in the same order as the v2 writer, which keeps term-table
     contents identical across versions (and round trips bit-exact) *)
  let blob = Buffer.create 65536 in
  let voff = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    voff.(i) <- Buffer.length blob;
    put_vsumm tt blob (S.vsumm syn i)
  done;
  voff.(n) <- Buffer.length blob;
  pad8 blob;
  let ints count f =
    let b = Buffer.create (8 * count) in
    for i = 0 to count - 1 do
      put_int_le b (f i)
    done;
    Buffer.contents b
  in
  let header = ints 4 (function
    | 0 -> S.doc_height syn
    | 1 -> S.root_sid syn
    | 2 -> n
    | _ -> ne)
  in
  let labels =
    let b = Buffer.create (16 * n) in
    for i = 0 to n - 1 do
      put_string b (Label.to_string (S.label syn i))
    done;
    pad8 b;
    Buffer.contents b
  in
  let vtypes =
    let b = Buffer.create (n + 8) in
    for i = 0 to n - 1 do
      Buffer.add_char b (Char.chr (vtype_tag (S.vtype syn i)))
    done;
    pad8 b;
    Buffer.contents b
  in
  let child_off = S.child_off syn
  and child_idx = S.child_idx syn
  and child_avg = S.child_avg syn
  and parent_off = S.parent_off syn
  and parent_idx = S.parent_idx syn in
  let floats count f =
    let b = Buffer.create (8 * count) in
    for i = 0 to count - 1 do
      Buffer.add_int64_le b (Int64.bits_of_float (f i))
    done;
    Buffer.contents b
  in
  let terms =
    let b = Buffer.create 4096 in
    Buffer.add_string b (encode_terms tt);
    pad8 b;
    Buffer.contents b
  in
  let counts = S.counts syn in
  let payloads =
    [| header;
       ints n (S.sid_of_index syn);
       ints n (fun i -> counts.(i));
       labels;
       vtypes;
       ints (n + 1) (fun i -> child_off.(i));
       ints ne (fun i -> child_idx.(i));
       floats ne (fun i -> child_avg.(i));
       ints (n + 1) (fun i -> parent_off.(i));
       ints ne (fun i -> parent_idx.(i));
       terms;
       ints (n + 1) (fun i -> voff.(i));
       Buffer.contents blob |]
  in
  let total =
    Array.fold_left (fun acc p -> acc + String.length p) v3_data_pos payloads
  in
  let out = Buffer.create total in
  Buffer.add_string out magic;
  put_int out version;
  Buffer.add_string out "\000\000\000\000";
  put_int out v3_n_sections;
  let pos = ref v3_data_pos in
  Array.iteri
    (fun i pay ->
      put_int out (i + 1);
      put_int out !pos;
      put_int out (String.length pay);
      put_int out (Crc32.digest pay);
      pos := !pos + String.length pay)
    payloads;
  let dir = Buffer.contents out in
  put_int out (Crc32.sub dir ~pos:v3_dir_pos ~len:(v3_dir_crc_pos - v3_dir_pos));
  Array.iter (Buffer.add_string out) payloads;
  Buffer.contents out

let to_string = to_string_v3

let to_string_v1 syn =
  let tt = tt_create () in
  let nodes = encode_nodes tt syn in
  let terms = encode_terms tt in
  let out = Buffer.create (String.length nodes + String.length terms + 64) in
  Buffer.add_string out magic;
  put_int out version_v1;
  Buffer.add_string out terms;
  put_int out (S.doc_height syn);
  put_int out (S.root_sid syn);
  put_int out (S.n_nodes syn);
  Buffer.add_string out nodes;
  Buffer.contents out

let size_on_disk syn = String.length (to_string syn)

(* ---- decoding -------------------------------------------------------------- *)

let decode_terms r =
  Array.of_list
    (get_list r ~elt_min:8 ~what:"term-table size" (fun r ->
         Dictionary.of_string (get_string r)))

(* The shared node-record payload. Consumes the reader exactly to its
   limit; the caller supplies the header fields. *)
let decode_graph r ~terms ~doc_height ~root ~n_nodes =
  if doc_height < 0 || doc_height > 1_000_000 then
    err (Bad_length { pos = 0; len = doc_height; what = "document height" });
  if n_nodes < 0 || n_nodes > remaining r / node_min_bytes then
    err (Bad_length { pos = r.pos; len = n_nodes; what = "node count" });
  let syn = B.create ~doc_height in
  let edges = ref [] in
  for _ = 1 to n_nodes do
    let at = r.pos in
    let sid = get_int r in
    if sid < 0 then
      err (Corrupt { pos = at; what = Printf.sprintf "negative node id %d" sid });
    let label = Label.of_string (get_string r) in
    let vtype = get_vtype r in
    let count = get_int r in
    let vsumm = get_vsumm terms r in
    if B.mem syn sid then
      err (Corrupt { pos = at; what = Printf.sprintf "duplicate node id %d" sid });
    ignore (B.add_node_at syn ~sid ~label ~vtype ~count ~vsumm);
    let ne_at = r.pos in
    let n_edges = get_int r in
    if n_edges < 0 || n_edges > remaining r / edge_min_bytes then
      err (Bad_length { pos = ne_at; len = n_edges; what = "edge count" });
    for _ = 1 to n_edges do
      let e_at = r.pos in
      let child = get_int r in
      let avg = get_float r in
      edges := (e_at, sid, child, avg) :: !edges
    done
  done;
  if r.pos <> r.limit then err (Corrupt { pos = r.pos; what = "trailing bytes" });
  List.iter
    (fun (at, parent, child, avg) ->
      if not (B.mem syn child) then
        err (Corrupt { pos = at; what = Printf.sprintf "edge to unknown node %d" child });
      B.set_edge syn ~parent ~child avg)
    !edges;
  if not (B.mem syn root) then
    err (Corrupt { pos = 0; what = Printf.sprintf "root id %d not among nodes" root });
  B.set_root syn root;
  (match B.validate syn with
  | Ok () -> ()
  | Error e -> err (Corrupt { pos = 0; what = "decoded synopsis is inconsistent: " ^ e }));
  Synopsis.freeze syn

let decode_v1 r =
  let terms = decode_terms r in
  let doc_height = get_int r in
  let root = get_int r in
  let n_nodes = get_int r in
  decode_graph r ~terms ~doc_height ~root ~n_nodes

let section_name tag =
  if tag = tag_header then "header"
  else if tag = tag_terms then "terms"
  else "nodes"

let get_section r ~tag =
  let name = section_name tag in
  let at = r.pos in
  let t = get_int r in
  if t <> tag then
    err
      (Corrupt
         { pos = at;
           what = Printf.sprintf "expected %s section (tag %d), found tag %d" name tag t
         });
  let len_at = r.pos in
  let len = get_int r in
  let stored = get_int r in
  if len < 0 || len > remaining r then
    err (Bad_length { pos = len_at; len; what = name ^ " section length" });
  let actual = Crc32.sub r.src ~pos:r.pos ~len in
  if actual <> stored then err (Checksum_mismatch { section = name; stored; actual });
  let section = { src = r.src; pos = r.pos; limit = r.pos + len } in
  r.pos <- r.pos + len;
  section

let decode_header r =
  let header = get_section r ~tag:tag_header in
  let doc_height = get_int header in
  let root = get_int header in
  let n_nodes = get_int header in
  if header.pos <> header.limit then
    err (Corrupt { pos = header.pos; what = "trailing bytes in header section" });
  (doc_height, root, n_nodes)

let decode_v2 r =
  let doc_height, root, n_nodes = decode_header r in
  let terms_sec = get_section r ~tag:tag_terms in
  let terms = decode_terms terms_sec in
  if terms_sec.pos <> terms_sec.limit then
    err (Corrupt { pos = terms_sec.pos; what = "trailing bytes in terms section" });
  let nodes_sec = get_section r ~tag:tag_nodes in
  if r.pos <> r.limit then
    err (Corrupt { pos = r.pos; what = "trailing bytes after last section" });
  decode_graph nodes_sec ~terms ~doc_height ~root ~n_nodes

(* ---- v3 ---------------------------------------------------------------- *)

type v3_entry = {
  e_name : string;
  e_off : int;
  e_len : int;
  e_crc : int;
}

(* Parse and validate the fixed-size v3 prologue. [src] must hold at
   least the prologue bytes; [total] is the full container length.
   Offsets are required to equal the canonical packed layout, so
   sections can never overlap, shadow the directory, or leave covert
   unchecksummed gaps. *)
let parse_v3_dir src ~total =
  if String.length src < v3_data_pos then
    err (Truncated { pos = String.length src; need = v3_data_pos - String.length src });
  let r = { src; pos = 16; limit = v3_data_pos } in
  let nsec = get_int r in
  if nsec <> v3_n_sections then
    err (Corrupt { pos = 16; what = Printf.sprintf "unexpected section count %d" nsec });
  let entries =
    Array.init v3_n_sections (fun i ->
        let at = r.pos in
        let tag = get_int r in
        let off = get_int r in
        let len = get_int r in
        let crc = get_int r in
        if tag <> i + 1 then
          err
            (Corrupt
               { pos = at;
                 what = Printf.sprintf "expected section tag %d, found %d" (i + 1) tag
               });
        { e_name = v3_section_name tag; e_off = off; e_len = len; e_crc = crc })
  in
  let stored = get_int r in
  let actual = Crc32.sub src ~pos:v3_dir_pos ~len:(v3_dir_crc_pos - v3_dir_pos) in
  if actual <> stored then
    err (Checksum_mismatch { section = "directory"; stored; actual });
  let pos = ref v3_data_pos in
  Array.iter
    (fun e ->
      if e.e_len < 0 || e.e_len land 7 <> 0 then
        err (Bad_length { pos = e.e_off; len = e.e_len; what = e.e_name ^ " section length" });
      if e.e_off <> !pos then
        err
          (Corrupt
             { pos = e.e_off;
               what = Printf.sprintf "%s section offset %d, expected %d" e.e_name e.e_off !pos
             });
      pos := !pos + e.e_len)
    entries;
  if !pos <> total then
    err
      (Corrupt
         { pos = !pos; what = Printf.sprintf "container length %d, sections end at %d" total !pos });
  entries

let check_v3_crc src e =
  let actual = Crc32.sub src ~pos:e.e_off ~len:e.e_len in
  if actual <> e.e_crc then
    err (Checksum_mismatch { section = e.e_name; stored = e.e_crc; actual })

(* header section: doc_height | root_sid | n_nodes | n_edges *)
let parse_v3_header src e =
  if e.e_len <> 32 then
    err (Bad_length { pos = e.e_off; len = e.e_len; what = "header section length" });
  let doc_height = get_int_le src e.e_off in
  let root_sid = get_int_le src (e.e_off + 8) in
  let n = get_int_le src (e.e_off + 16) in
  let ne = get_int_le src (e.e_off + 24) in
  if doc_height < 0 || doc_height > 1_000_000 then
    err (Bad_length { pos = e.e_off; len = doc_height; what = "document height" });
  if n <= 0 then err (Bad_length { pos = e.e_off + 16; len = n; what = "node count" });
  if ne < 0 then err (Bad_length { pos = e.e_off + 24; len = ne; what = "edge count" });
  (doc_height, root_sid, n, ne)

(* a section holding [count] 8-byte words, exactly *)
let expect_words e count =
  if e.e_len / 8 <> count then
    err (Bad_length { pos = e.e_off; len = e.e_len; what = e.e_name ^ " section length" })

(* [n] length-prefixed strings, byte-packed then zero-padded to 8 *)
let parse_v3_strings src e n f =
  let r = { src; pos = e.e_off; limit = e.e_off + e.e_len } in
  let out = Array.init n (fun _ -> f (get_string r)) in
  if remaining r >= 8 then
    err (Corrupt { pos = r.pos; what = "trailing bytes in " ^ e.e_name ^ " section" });
  out

let parse_v3_vtypes src e n =
  if e.e_len < n || e.e_len - n >= 8 then
    err (Bad_length { pos = e.e_off; len = e.e_len; what = "vtypes section length" });
  Array.init n (fun i ->
      match Char.code (String.unsafe_get src (e.e_off + i)) with
      | 0 -> Value.Tnull
      | 1 -> Value.Tnumeric
      | 2 -> Value.Tstring
      | 3 -> Value.Ttext
      | tag ->
        err (Corrupt { pos = e.e_off + i; what = Printf.sprintf "unknown value-type tag %d" tag }))

let parse_v3_terms src e =
  let r = { src; pos = e.e_off; limit = e.e_off + e.e_len } in
  let terms = decode_terms r in
  if remaining r >= 8 then
    err (Corrupt { pos = r.pos; what = "trailing bytes in terms section" });
  terms

(* value-summary offsets: monotone, starting at 0, ending within the
   blob (the blob's trailing distance is its alignment pad, < 8) *)
let parse_v3_voff src e ~n ~blob_len =
  let voff = ints_of_le src ~pos:e.e_off ~count:(n + 1) in
  if voff.(0) <> 0 then
    err (Corrupt { pos = e.e_off; what = "value-summary offsets do not start at 0" });
  for i = 0 to n - 1 do
    if voff.(i) > voff.(i + 1) then
      err (Corrupt { pos = e.e_off + (8 * i); what = "value-summary offsets not monotone" })
  done;
  if voff.(n) > blob_len || blob_len - voff.(n) >= 8 then
    err (Bad_length { pos = e.e_off + (8 * n); len = voff.(n); what = "value-summary blob length" });
  voff

let root_index_of_sid sids root_sid =
  let lo = ref 0 and hi = ref (Array.length sids - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if sids.(mid) = root_sid then found := mid
    else if sids.(mid) < root_sid then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then
    err (Corrupt { pos = 0; what = Printf.sprintf "root id %d not among nodes" root_sid });
  !found

let get_vsumm_slice terms blob ~lo ~hi =
  let r = { src = blob; pos = lo; limit = hi } in
  let v = get_vsumm terms r in
  if r.pos <> r.limit then
    err (Corrupt { pos = r.pos; what = "trailing bytes in value summary" });
  v

let seal_v3 ~doc_height ~root ~sids ~labels ~vtypes ~counts ~child_off ~child_idx
    ~child_avg ~parent_off ~parent_idx ~vsumms ~vsumm_decode ~on_first_touch =
  let syn =
    S.of_flat ~doc_height ~root ~sids ~labels ~vtypes ~counts ~child_off ~child_idx
      ~child_avg ~parent_off ~parent_idx ~vsumms ~vsumm_decode ~on_first_touch
  in
  (match S.validate syn with
  | Ok () -> ()
  | Error e -> err (Corrupt { pos = 0; what = "decoded synopsis is inconsistent: " ^ e }));
  syn

(* the eager v3 decoder: every CRC checked, every section copied out of
   the string, every value summary materialized. The totality/fuzzing
   contract lives here; the mmap path below is the fast lane. *)
let decode_v3 src =
  let entries = parse_v3_dir src ~total:(String.length src) in
  Array.iter (fun e -> check_v3_crc src e) entries;
  let doc_height, root_sid, n, ne = parse_v3_header src entries.(0) in
  expect_words entries.(1) n;
  expect_words entries.(2) n;
  expect_words entries.(5) (n + 1);
  expect_words entries.(6) ne;
  expect_words entries.(7) ne;
  expect_words entries.(8) (n + 1);
  expect_words entries.(9) ne;
  expect_words entries.(11) (n + 1);
  let sids = ints_of_le src ~pos:entries.(1).e_off ~count:n in
  let counts = ints_of_le src ~pos:entries.(2).e_off ~count:n in
  let labels = parse_v3_strings src entries.(3) n Label.of_string in
  let vtypes = parse_v3_vtypes src entries.(4) n in
  let child_off = ba_i_of_le src ~pos:entries.(5).e_off ~count:(n + 1) in
  let child_idx = ba_i_of_le src ~pos:entries.(6).e_off ~count:ne in
  let child_avg = ba_f_of_le src ~pos:entries.(7).e_off ~count:ne in
  let parent_off = ba_i_of_le src ~pos:entries.(8).e_off ~count:(n + 1) in
  let parent_idx = ba_i_of_le src ~pos:entries.(9).e_off ~count:ne in
  let terms = parse_v3_terms src entries.(10) in
  let voff = parse_v3_voff src entries.(11) ~n ~blob_len:entries.(12).e_len in
  let blob_off = entries.(12).e_off in
  let vsumms =
    Array.init n (fun i ->
        Some
          (get_vsumm_slice terms src ~lo:(blob_off + voff.(i)) ~hi:(blob_off + voff.(i + 1))))
  in
  let root = root_index_of_sid sids root_sid in
  seal_v3 ~doc_height ~root ~sids ~labels ~vtypes ~counts ~child_off ~child_idx
    ~child_avg ~parent_off ~parent_idx ~vsumms ~vsumm_decode:None ~on_first_touch:None

let with_version src k =
  let r = { src; pos = 0; limit = String.length src } in
  if String.length src < 4 || not (String.equal (String.sub src 0 4) magic) then
    err Bad_magic;
  r.pos <- 4;
  let v = get_int r in
  if v <> version_v1 && v <> version_v2 && v <> version then err (Unsupported_version v);
  k v r

(* Corrupt input can surface as stray exceptions from components the
   decoder feeds (histogram/suffix-tree constructors, freeze);
   normalize every failure mode to the typed error — decoding is
   total. *)
let guard f =
  match f () with
  | v -> Ok v
  | exception Decode e ->
    record_error e;
    Error e
  | exception Stack_overflow ->
    let e = Corrupt { pos = 0; what = "decoder stack overflow" } in
    record_error e;
    Error e
  | exception exn ->
    let e = Corrupt { pos = 0; what = "decoder failure: " ^ Printexc.to_string exn } in
    record_error e;
    Error e

let of_string src =
  guard (fun () ->
      with_version src (fun v r ->
          if v = version_v1 then decode_v1 r
          else if v = version_v2 then decode_v2 r
          else decode_v3 src))

let of_string_exn src =
  match of_string src with
  | Ok syn -> syn
  | Error e -> failwith ("Codec: " ^ error_to_string e)

(* ---- files ------------------------------------------------------------- *)

let save path syn =
  match Safe_io.write_atomic path (to_string syn) with
  | Ok () -> Ok ()
  | Error e ->
    Metrics.incr Metrics.global "codec.save_error";
    Error (Io (path ^ ": " ^ Safe_io.error_to_string e))

let save_exn path syn =
  match save path syn with
  | Ok () -> ()
  | Error e -> failwith ("Codec: " ^ error_to_string e)

let read_file path =
  match Safe_io.read path with
  | Ok src -> Ok (Xc_util.Fault.mutate ~site:"codec.load" src)
  | Error e ->
    let e = Io (path ^ ": " ^ Safe_io.error_to_string e) in
    record_error e;
    Error e

(* ---- the v3 mmap load path --------------------------------------------

   A v3 container on a little-endian host loads in ~O(directory): the
   prologue and the small node-attribute sections (header, sids, counts,
   labels, vtypes) are read and CRC-verified eagerly, the five CSR
   sections become file-backed Bigarray slices ([Unix.map_file]) whose
   CRCs and structural bounds are verified once on the synopsis's first
   numeric access, and value summaries decode per node on first touch.
   Deferred failures surface as {!Lazy_failure} at the access point —
   [load] itself has already returned [Ok]. The mapping is released
   when the synopsis is collected (eviction from the serve engine's LRU
   drops the last reference; the GC then unmaps). *)

let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off = len then len
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> off
      | k -> go (off + k)
  in
  let got = go 0 in
  if got < len then err (Truncated { pos = got; need = len - got });
  Bytes.unsafe_to_string buf

let string_of_map cmap ~pos ~len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (BA1.unsafe_get cmap (pos + i))
  done;
  Bytes.unsafe_to_string b

let map_v3 path =
  Xc_util.Fault.raise_io ~site:"codec.map";
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) @@ fun () ->
  let total = (Unix.fstat fd).Unix.st_size in
  if total < v3_data_pos then err (Truncated { pos = total; need = v3_data_pos - total });
  let prologue = Xc_util.Fault.mutate ~site:"codec.load" (read_exact fd v3_data_pos) in
  if not (String.equal (String.sub prologue 0 4) magic) then err Bad_magic;
  let v = get_int { src = prologue; pos = 4; limit = v3_data_pos } in
  if v <> version then err (Unsupported_version v);
  let entries = parse_v3_dir prologue ~total in
  (* eager group: the prologue plus everything a registry needs to admit
     and describe the artifact — node attributes stay boxed anyway *)
  let eager_len = entries.(5).e_off - v3_data_pos in
  let eager0 = read_exact fd eager_len in
  let eager = Xc_util.Fault.mutate ~site:"codec.load" eager0 in
  (* reposition entry offsets into the eager buffer *)
  let shift e = { e with e_off = e.e_off - v3_data_pos } in
  let eager_entries = Array.map shift (Array.sub entries 0 5) in
  Array.iter (fun e -> check_v3_crc eager e) eager_entries;
  let doc_height, root_sid, n, ne = parse_v3_header eager eager_entries.(0) in
  expect_words entries.(1) n;
  expect_words entries.(2) n;
  expect_words entries.(5) (n + 1);
  expect_words entries.(6) ne;
  expect_words entries.(7) ne;
  expect_words entries.(8) (n + 1);
  expect_words entries.(9) ne;
  expect_words entries.(11) (n + 1);
  let sids = ints_of_le eager ~pos:eager_entries.(1).e_off ~count:n in
  let counts = ints_of_le eager ~pos:eager_entries.(2).e_off ~count:n in
  let labels = parse_v3_strings eager eager_entries.(3) n Label.of_string in
  let vtypes = parse_v3_vtypes eager eager_entries.(4) n in
  let root = root_index_of_sid sids root_sid in
  let cmap =
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| total |])
  in
  let map_i e =
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int e.e_off) Bigarray.int Bigarray.c_layout false
         [| e.e_len / 8 |])
  in
  let map_f e =
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int e.e_off) Bigarray.float64 Bigarray.c_layout false
         [| e.e_len / 8 |])
  in
  let child_off = map_i entries.(5) in
  let child_idx = map_i entries.(6) in
  let child_avg = map_f entries.(7) in
  let parent_off = map_i entries.(8) in
  let parent_idx = map_i entries.(9) in
  (* first-touch verification of a mapped/deferred section: extract the
     bytes, CRC them, count it *)
  let verify_lazy e =
    let s =
      Xc_util.Fault.mutate ~site:"codec.section_verify"
        (string_of_map cmap ~pos:e.e_off ~len:e.e_len)
    in
    let actual = Crc32.digest s in
    Metrics.incr Metrics.global "codec.lazy_verify";
    if actual <> e.e_crc then begin
      Metrics.incr Metrics.global "codec.crc_mismatch";
      raise (Lazy_failure (Checksum_mismatch { section = e.e_name; stored = e.e_crc; actual }))
    end;
    s
  in
  let csr_fail msg = raise (Lazy_failure (Corrupt { pos = 0; what = msg })) in
  let check_csr name (off : S.ba_i) (idx : S.ba_i) =
    if BA1.get off 0 <> 0 || BA1.get off n <> BA1.dim idx then
      csr_fail (name ^ " offsets out of bounds");
    for i = 0 to n - 1 do
      if BA1.get off i > BA1.get off (i + 1) then csr_fail (name ^ " offsets not monotone")
    done;
    for e = 0 to BA1.dim idx - 1 do
      let v = BA1.get idx e in
      if v < 0 || v >= n then csr_fail (name ^ " target out of range")
    done
  in
  let on_first_touch () =
    List.iter (fun i -> ignore (verify_lazy entries.(i))) [ 5; 6; 7; 8; 9 ];
    (* the kernels index with [unsafe_get]: structural bounds are part
       of what first-touch verification must establish *)
    check_csr "child" child_off child_idx;
    check_csr "parent" parent_off parent_idx
  in
  let vgroup =
    lazy
      (let terms_s = verify_lazy entries.(10) in
       let voff_s = verify_lazy entries.(11) in
       let blob = verify_lazy entries.(12) in
       let terms = parse_v3_terms terms_s { (entries.(10)) with e_off = 0 } in
       let voff =
         parse_v3_voff voff_s { (entries.(11)) with e_off = 0 } ~n ~blob_len:(String.length blob)
       in
       (terms, voff, blob))
  in
  let vsumm_decode i =
    let terms, voff, blob =
      try Lazy.force vgroup with Decode e -> raise (Lazy_failure e)
    in
    try get_vsumm_slice terms blob ~lo:voff.(i) ~hi:voff.(i + 1) with
    | Decode e -> raise (Lazy_failure e)
    | Lazy_failure _ as exn -> raise exn
    | exn ->
      raise
        (Lazy_failure
           (Corrupt { pos = voff.(i); what = "value-summary decode failure: " ^ Printexc.to_string exn }))
  in
  Metrics.incr Metrics.global "codec.mmap_load";
  S.of_flat ~doc_height ~root ~sids ~labels ~vtypes ~counts ~child_off ~child_idx
    ~child_avg ~parent_off ~parent_idx ~vsumms:(Array.make n None)
    ~vsumm_decode:(Some vsumm_decode) ~on_first_touch:(Some on_first_touch)

(* which version is on disk, without reading the payload *)
let sniff_version path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> None
  | fd ->
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    let buf = Bytes.create 12 in
    let rec go off =
      if off = 12 then 12
      else
        match Unix.read fd buf off (12 - off) with
        | 0 -> off
        | k -> go (off + k)
        | exception Unix.Unix_error _ -> off
    in
    if go 0 < 12 then None
    else if not (String.equal (Bytes.sub_string buf 0 4) magic) then None
    else
      let v64 = Bytes.get_int64_be buf 4 in
      let v = Int64.to_int v64 in
      if Int64.of_int v <> v64 then None else Some v

let load_v3_mapped path =
  match map_v3 path with
  | syn -> Ok syn
  | exception Decode e ->
    record_error e;
    Error e
  | exception Xc_util.Fault.Injected _ ->
    let e = Io (path ^ ": injected map fault") in
    record_error e;
    Error e
  | exception Unix.Unix_error (ec, _, _) ->
    let e = Io (path ^ ": " ^ Unix.error_message ec) in
    record_error e;
    Error e
  | exception Stack_overflow ->
    let e = Corrupt { pos = 0; what = "decoder stack overflow" } in
    record_error e;
    Error e
  | exception exn ->
    let e = Corrupt { pos = 0; what = "decoder failure: " ^ Printexc.to_string exn } in
    record_error e;
    Error e

let load ?(eager = false) path =
  if eager || Sys.big_endian then Result.bind (read_file path) of_string
  else
    match sniff_version path with
    | Some v when v = version -> load_v3_mapped path
    | Some _ | None ->
      (* v1/v2, foreign, or unreadable: the string path decodes or
         reports the precise error *)
      Result.bind (read_file path) of_string

let load_exn path =
  match load path with
  | Ok syn -> syn
  | Error e -> failwith ("Codec: " ^ error_to_string e)

(* ---- integrity ---------------------------------------------------------- *)

type info = {
  i_version : int;
  i_nodes : int;
  i_bytes : int;
  i_checksummed : bool;
}

type section_status = {
  sec_name : string;
  sec_bytes : int;
  sec_crc_ok : bool option;  (* None: carries no CRC, or skipped (lazy mode) *)
}

let verify_v3 ~eager src =
  let entries = parse_v3_dir src ~total:(String.length src) in
  (* the header section is what a lazy load verifies at admission; the
     remaining payloads only under [eager] *)
  check_v3_crc src entries.(0);
  if eager then Array.iter (fun e -> check_v3_crc src e) entries;
  let _doc_height, _root_sid, n, _ne = parse_v3_header src entries.(0) in
  { i_version = 3; i_nodes = n; i_bytes = String.length src; i_checksummed = eager }

let verify_string ?(eager = true) src =
  guard (fun () ->
      with_version src (fun v r ->
          if v = version_v1 then
            (* v1 carries no checksums: a full decode is the only check *)
            let syn = decode_v1 r in
            { i_version = 1;
              i_nodes = S.n_nodes syn;
              i_bytes = String.length src;
              i_checksummed = false
            }
          else if v = version_v2 then begin
            let _doc_height, _root, n_nodes = decode_header r in
            if n_nodes < 0 then
              err (Bad_length { pos = 0; len = n_nodes; what = "node count" });
            let terms_sec = get_section r ~tag:tag_terms in
            ignore (terms_sec : reader);
            let nodes_sec = get_section r ~tag:tag_nodes in
            ignore (nodes_sec : reader);
            if r.pos <> r.limit then
              err (Corrupt { pos = r.pos; what = "trailing bytes after last section" });
            { i_version = 2;
              i_nodes = n_nodes;
              i_bytes = String.length src;
              i_checksummed = true
            }
          end
          else verify_v3 ~eager src))

let verify ?eager path = Result.bind (read_file path) (verify_string ?eager)

(* Per-section CRC report. Unlike {!verify_string} this does not stop
   at the first mismatch — the point is to localize damage. Framing
   errors (bad magic, a corrupt directory) still fail the whole call. *)
let sections_string ?(eager = true) src =
  guard (fun () ->
      with_version src (fun v r ->
          if v = version_v1 then
            [ { sec_name = "payload";
                sec_bytes = String.length src - r.pos;
                sec_crc_ok = None
              } ]
          else if v = version_v2 then begin
            let out = ref [] in
            List.iter
              (fun tag ->
                let name = section_name tag in
                let at = r.pos in
                let t = get_int r in
                if t <> tag then
                  err
                    (Corrupt
                       { pos = at;
                         what =
                           Printf.sprintf "expected %s section (tag %d), found tag %d" name
                             tag t
                       });
                let len_at = r.pos in
                let len = get_int r in
                let stored = get_int r in
                if len < 0 || len > remaining r then
                  err (Bad_length { pos = len_at; len; what = name ^ " section length" });
                let actual = Crc32.sub r.src ~pos:r.pos ~len in
                out := { sec_name = name; sec_bytes = len; sec_crc_ok = Some (actual = stored) } :: !out;
                r.pos <- r.pos + len)
              [ tag_header; tag_terms; tag_nodes ];
            if r.pos <> r.limit then
              err (Corrupt { pos = r.pos; what = "trailing bytes after last section" });
            List.rev !out
          end
          else begin
            let entries = parse_v3_dir src ~total:(String.length src) in
            Array.to_list
              (Array.mapi
                 (fun i e ->
                   let checked = eager || i = 0 in
                   { sec_name = e.e_name;
                     sec_bytes = e.e_len;
                     sec_crc_ok =
                       (if checked then Some (Crc32.sub src ~pos:e.e_off ~len:e.e_len = e.e_crc)
                        else None)
                   })
                 entries)
          end))

let sections ?eager path = Result.bind (read_file path) (sections_string ?eager)
