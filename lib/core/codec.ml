module Vs = Xc_vsumm.Value_summary
module B = Synopsis.Builder
module S = Synopsis.Sealed
open Xc_xml

let magic = "XCLU"
let version = 1

(* ---- primitive encoders ------------------------------------------------ *)

let put_int buf n = Buffer.add_int64_be buf (Int64.of_int n)
let put_float buf f = Buffer.add_int64_be buf (Int64.bits_of_float f)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

type reader = {
  src : string;
  mutable pos : int;
}

let fail fmt = Format.kasprintf failwith fmt

let get_int r =
  if r.pos + 8 > String.length r.src then fail "Codec: truncated input at %d" r.pos;
  let v = Int64.to_int (String.get_int64_be r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let get_float r =
  if r.pos + 8 > String.length r.src then fail "Codec: truncated input at %d" r.pos;
  let v = Int64.float_of_bits (String.get_int64_be r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let get_string r =
  let n = get_int r in
  if n < 0 || r.pos + n > String.length r.src then
    fail "Codec: bad string length %d at %d" n r.pos;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let put_list buf f xs =
  put_int buf (List.length xs);
  List.iter (f buf) xs

let get_list r f =
  let n = get_int r in
  List.init n (fun _ -> f r)

(* ---- term table ---------------------------------------------------------
   Term identifiers are process-local, so the encoding embeds the spelling
   of every term it references and the decoder re-interns them. *)

type term_table = {
  mutable ids : int list; (* referenced ids, reverse order of discovery *)
  index : (int, int) Hashtbl.t; (* global id -> local index *)
}

let tt_create () = { ids = []; index = Hashtbl.create 256 }

let tt_local tt id =
  match Hashtbl.find_opt tt.index id with
  | Some local -> local
  | None ->
    let local = Hashtbl.length tt.index in
    Hashtbl.add tt.index id local;
    tt.ids <- id :: tt.ids;
    local

(* ---- value summaries ----------------------------------------------------- *)

let put_vsumm tt buf = function
  | Vs.Vnone -> put_int buf 0
  | Vs.Vnum h ->
    put_int buf 1;
    let bounds, counts = Xc_vsumm.Histogram.raw h in
    put_int buf (Array.length counts);
    Array.iter (put_int buf) bounds;
    Array.iter (put_float buf) counts
  | Vs.Vstr p ->
    put_int buf 2;
    put_float buf (Xc_vsumm.Pst.n_strings p);
    put_float buf (Xc_vsumm.Pst.total_len p);
    put_int buf (Xc_vsumm.Pst.max_depth p);
    let entries = ref [] in
    Xc_vsumm.Pst.iter_substrings (fun s c -> entries := (s, c) :: !entries) p;
    (* depth-first order lists prefixes before extensions once reversed *)
    put_list buf
      (fun buf (s, c) ->
        put_string buf s;
        put_float buf c)
      (List.rev !entries)
  | Vs.Vtext th ->
    put_int buf 3;
    put_float buf (Xc_vsumm.Term_hist.n_documents th);
    let top, bucket, bucket_avg = Xc_vsumm.Term_hist.parts th in
    put_list buf
      (fun buf (id, f) ->
        put_int buf (tt_local tt id);
        put_float buf f)
      top;
    put_list buf (fun buf id -> put_int buf (tt_local tt id)) bucket;
    put_float buf bucket_avg

let get_vsumm terms r =
  match get_int r with
  | 0 -> Vs.Vnone
  | 1 ->
    let n = get_int r in
    let bounds = Array.init (n + 1) (fun _ -> get_int r) in
    let counts = Array.init n (fun _ -> get_float r) in
    Vs.Vnum (Xc_vsumm.Histogram.of_raw ~bounds ~counts)
  | 2 ->
    let n = get_float r in
    let total_len = get_float r in
    let max_depth = get_int r in
    let entries =
      get_list r (fun r ->
          let s = get_string r in
          let c = get_float r in
          (s, c))
    in
    Vs.Vstr (Xc_vsumm.Pst.of_substrings ~total_len ~n ~max_depth entries)
  | 3 ->
    let n = get_float r in
    let remap local =
      if local < 0 || local >= Array.length terms then
        fail "Codec: term index %d out of range" local;
      (terms.(local) : Dictionary.term :> int)
    in
    let top =
      get_list r (fun r ->
          let local = get_int r in
          let f = get_float r in
          (remap local, f))
    in
    let bucket = get_list r (fun r -> remap (get_int r)) in
    let bucket_avg = get_float r in
    Vs.Vtext (Xc_vsumm.Term_hist.of_parts ~n ~top ~bucket ~bucket_avg)
  | tag -> fail "Codec: unknown value-summary tag %d" tag

let vtype_tag = function
  | Value.Tnull -> 0
  | Value.Tnumeric -> 1
  | Value.Tstring -> 2
  | Value.Ttext -> 3

let vtype_of_tag = function
  | 0 -> Value.Tnull
  | 1 -> Value.Tnumeric
  | 2 -> Value.Tstring
  | 3 -> Value.Ttext
  | tag -> fail "Codec: unknown value-type tag %d" tag

(* ---- synopsis --------------------------------------------------------------
   The wire format (v1, unchanged by the Builder/Sealed split) stores
   nodes in ascending-sid order with sid-keyed edges, which is exactly
   the sealed form's index order; decoding rebuilds a Builder and
   freezes it, so a load/save round trip re-canonicalizes nothing. *)

let to_string syn =
  let tt = tt_create () in
  (* encode the nodes first (into a side buffer) so the term table is
     complete before it is written *)
  let body = Buffer.create 65536 in
  put_int body (S.doc_height syn);
  put_int body (S.root_sid syn);
  let n = S.n_nodes syn in
  put_int body n;
  let child_off = S.child_off syn
  and child_idx = S.child_idx syn
  and child_avg = S.child_avg syn in
  for i = 0 to n - 1 do
    put_int body (S.sid_of_index syn i);
    put_string body (Label.to_string (S.label syn i));
    put_int body (vtype_tag (S.vtype syn i));
    put_int body (S.count syn i);
    put_vsumm tt body (S.vsumm syn i);
    put_int body (child_off.(i + 1) - child_off.(i));
    for e = child_off.(i) to child_off.(i + 1) - 1 do
      put_int body (S.sid_of_index syn child_idx.(e));
      put_float body child_avg.(e)
    done
  done;
  let out = Buffer.create (Buffer.length body + 4096) in
  Buffer.add_string out magic;
  put_int out version;
  put_list out put_string
    (List.rev_map (fun id -> Dictionary.to_string (Dictionary.unsafe_of_int id)) tt.ids);
  Buffer.add_buffer out body;
  Buffer.contents out

let of_string_exn src =
  let r = { src; pos = 0 } in
  if String.length src < 4 || String.sub src 0 4 <> magic then
    fail "Codec: bad magic (not an XCluster synopsis file)";
  r.pos <- 4;
  let v = get_int r in
  if v <> version then fail "Codec: unsupported version %d (expected %d)" v version;
  let terms = Array.of_list (get_list r (fun r -> Dictionary.of_string (get_string r))) in
  let doc_height = get_int r in
  let root = get_int r in
  let n_nodes = get_int r in
  let syn = B.create ~doc_height in
  (* first pass: materialize nodes under their original sids *)
  let edges = ref [] in
  for _ = 1 to n_nodes do
    let sid = get_int r in
    let label = Label.of_string (get_string r) in
    let vtype = vtype_of_tag (get_int r) in
    let count = get_int r in
    let vsumm = get_vsumm terms r in
    if B.mem syn sid then fail "Codec: duplicate node id %d" sid;
    ignore (B.add_node_at syn ~sid ~label ~vtype ~count ~vsumm);
    let n_edges = get_int r in
    for _ = 1 to n_edges do
      let child = get_int r in
      let avg = get_float r in
      edges := (sid, child, avg) :: !edges
    done
  done;
  List.iter (fun (parent, child, avg) -> B.set_edge syn ~parent ~child avg) !edges;
  B.set_root syn root;
  if r.pos <> String.length src then fail "Codec: trailing bytes";
  (match B.validate syn with
  | Ok () -> ()
  | Error e -> fail "Codec: decoded synopsis is inconsistent: %s" e);
  Synopsis.freeze syn

(* corrupt input can surface as out-of-range array sizes and the like;
   normalize every decoding failure to Failure per the interface *)
let of_string src =
  try of_string_exn src with
  | Failure _ as e -> raise e
  | exn -> fail "Codec: corrupt input (%s)" (Printexc.to_string exn)

let size_on_disk syn = String.length (to_string syn)

let save path syn =
  let oc = open_out_bin path in
  output_string oc (to_string syn);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  of_string src
