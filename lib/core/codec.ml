module Vs = Xc_vsumm.Value_summary
module B = Synopsis.Builder
module S = Synopsis.Sealed
module Crc32 = Xc_util.Crc32
module Safe_io = Xc_util.Safe_io
module Metrics = Xc_util.Metrics
open Xc_xml

let magic = "XCLU"
let version = 2
let version_v1 = 1

(* section tags, in file order *)
let tag_header = 1
let tag_terms = 2
let tag_nodes = 3

(* A node record is at least sid + label length + vtype + count +
   vsumm tag + edge count = 48 bytes; an edge is 16. Guards below use
   these floors to reject counts no remaining input could satisfy. *)
let node_min_bytes = 48
let edge_min_bytes = 16

(* ---- errors ------------------------------------------------------------ *)

type error =
  | Bad_magic
  | Unsupported_version of int
  | Truncated of { pos : int; need : int }
  | Bad_length of { pos : int; len : int; what : string }
  | Checksum_mismatch of { section : string; stored : int; actual : int }
  | Corrupt of { pos : int; what : string }
  | Io of string

let pp_error ppf = function
  | Bad_magic -> Format.fprintf ppf "bad magic (not an XCluster synopsis file)"
  | Unsupported_version v ->
    Format.fprintf ppf "unsupported format version %d (this build reads 1-%d)" v version
  | Truncated { pos; need } ->
    Format.fprintf ppf "truncated input at byte %d (%d more bytes needed)" pos need
  | Bad_length { pos; len; what } ->
    Format.fprintf ppf "implausible %s %d at byte %d" what len pos
  | Checksum_mismatch { section; stored; actual } ->
    Format.fprintf ppf "%s section checksum mismatch (stored %08x, computed %08x)"
      section (stored land 0xFFFFFFFF) actual
  | Corrupt { pos; what } -> Format.fprintf ppf "%s at byte %d" what pos
  | Io msg -> Format.fprintf ppf "%s" msg

let error_to_string e = Format.asprintf "%a" pp_error e

exception Decode of error

let err e = raise (Decode e)

let record_error e =
  Metrics.incr Metrics.global "codec.decode_error";
  match e with
  | Checksum_mismatch _ -> Metrics.incr Metrics.global "codec.crc_mismatch"
  | _ -> ()

(* ---- primitive encoders ------------------------------------------------ *)

let put_int buf n = Buffer.add_int64_be buf (Int64.of_int n)
let put_float buf f = Buffer.add_int64_be buf (Int64.bits_of_float f)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_list buf f xs =
  put_int buf (List.length xs);
  List.iter (f buf) xs

(* ---- bounded reader ----------------------------------------------------
   Every read checks against [limit] (the end of the enclosing section,
   or of the input) and every count is validated against the remaining
   bytes before anything is allocated, so hostile length fields cannot
   drive [String.sub]/[List.init]/[Array.init] sizes. *)

type reader = {
  src : string;
  mutable pos : int;
  limit : int;
}

let remaining r = r.limit - r.pos

let get_int r =
  if r.pos + 8 > r.limit then err (Truncated { pos = r.pos; need = r.pos + 8 - r.limit });
  let v64 = String.get_int64_be r.src r.pos in
  let v = Int64.to_int v64 in
  (* the writer only emits OCaml ints, so a field outside the 63-bit
     range is damage — and [Int64.to_int] would silently drop the high
     bit, letting a flipped sign bit through framing fields that no
     checksum covers *)
  if Int64.of_int v <> v64 then
    err (Corrupt { pos = r.pos; what = "integer field out of 63-bit range" });
  r.pos <- r.pos + 8;
  v

let get_float r =
  if r.pos + 8 > r.limit then err (Truncated { pos = r.pos; need = r.pos + 8 - r.limit });
  let v = Int64.float_of_bits (String.get_int64_be r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let get_string r =
  let at = r.pos in
  let n = get_int r in
  if n < 0 || n > remaining r then err (Bad_length { pos = at; len = n; what = "string length" });
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

(* [elt_min] is the fewest bytes one element can occupy, so the count
   is bounded by the remaining input before the list is built *)
let get_list r ~elt_min ~what f =
  let at = r.pos in
  let n = get_int r in
  if n < 0 || n > remaining r / max 1 elt_min then
    err (Bad_length { pos = at; len = n; what });
  List.init n (fun _ -> f r)

(* ---- term table ---------------------------------------------------------
   Term identifiers are process-local, so the encoding embeds the spelling
   of every term it references and the decoder re-interns them. *)

type term_table = {
  mutable ids : int list; (* referenced ids, reverse order of discovery *)
  index : (int, int) Hashtbl.t; (* global id -> local index *)
}

let tt_create () = { ids = []; index = Hashtbl.create 256 }

let tt_local tt id =
  match Hashtbl.find_opt tt.index id with
  | Some local -> local
  | None ->
    let local = Hashtbl.length tt.index in
    Hashtbl.add tt.index id local;
    tt.ids <- id :: tt.ids;
    local

(* ---- value summaries ----------------------------------------------------- *)

let put_vsumm tt buf = function
  | Vs.Vnone -> put_int buf 0
  | Vs.Vnum h ->
    put_int buf 1;
    let bounds, counts = Xc_vsumm.Histogram.raw h in
    put_int buf (Array.length counts);
    Array.iter (put_int buf) bounds;
    Array.iter (put_float buf) counts
  | Vs.Vstr p ->
    put_int buf 2;
    put_float buf (Xc_vsumm.Pst.n_strings p);
    put_float buf (Xc_vsumm.Pst.total_len p);
    put_int buf (Xc_vsumm.Pst.max_depth p);
    let entries = ref [] in
    Xc_vsumm.Pst.iter_substrings (fun s c -> entries := (s, c) :: !entries) p;
    (* depth-first order lists prefixes before extensions once reversed *)
    put_list buf
      (fun buf (s, c) ->
        put_string buf s;
        put_float buf c)
      (List.rev !entries)
  | Vs.Vtext th ->
    put_int buf 3;
    put_float buf (Xc_vsumm.Term_hist.n_documents th);
    let top, bucket, bucket_avg = Xc_vsumm.Term_hist.parts th in
    put_list buf
      (fun buf (id, f) ->
        put_int buf (tt_local tt id);
        put_float buf f)
      top;
    put_list buf (fun buf id -> put_int buf (tt_local tt id)) bucket;
    put_float buf bucket_avg

let get_vsumm terms r =
  let at = r.pos in
  match get_int r with
  | 0 -> Vs.Vnone
  | 1 ->
    let n_at = r.pos in
    let n = get_int r in
    (* (n+1) bounds + n counts = 16n + 8 bytes; compare by division so
       a hostile count cannot overflow the bound itself *)
    if n < 0 || remaining r < 8 || n > (remaining r - 8) / 16 then
      err (Bad_length { pos = n_at; len = n; what = "histogram bucket count" });
    let bounds = Array.init (n + 1) (fun _ -> get_int r) in
    let counts = Array.init n (fun _ -> get_float r) in
    Vs.Vnum (Xc_vsumm.Histogram.of_raw ~bounds ~counts)
  | 2 ->
    let n = get_float r in
    let total_len = get_float r in
    let d_at = r.pos in
    let max_depth = get_int r in
    if max_depth < 0 || max_depth > 1_000_000 then
      err (Bad_length { pos = d_at; len = max_depth; what = "suffix-tree depth" });
    let entries =
      get_list r ~elt_min:16 ~what:"substring count" (fun r ->
          let s = get_string r in
          let c = get_float r in
          (s, c))
    in
    Vs.Vstr (Xc_vsumm.Pst.of_substrings ~total_len ~n ~max_depth entries)
  | 3 ->
    let n = get_float r in
    let remap at local =
      if local < 0 || local >= Array.length terms then
        err
          (Corrupt
             { pos = at; what = Printf.sprintf "term index %d out of range" local });
      (terms.(local) : Dictionary.term :> int)
    in
    let top =
      get_list r ~elt_min:16 ~what:"term count" (fun r ->
          let at = r.pos in
          let local = get_int r in
          let f = get_float r in
          (remap at local, f))
    in
    let bucket =
      get_list r ~elt_min:8 ~what:"term-bucket count" (fun r ->
          let at = r.pos in
          remap at (get_int r))
    in
    let bucket_avg = get_float r in
    Vs.Vtext (Xc_vsumm.Term_hist.of_parts ~n ~top ~bucket ~bucket_avg)
  | tag ->
    err (Corrupt { pos = at; what = Printf.sprintf "unknown value-summary tag %d" tag })

let vtype_tag = function
  | Value.Tnull -> 0
  | Value.Tnumeric -> 1
  | Value.Tstring -> 2
  | Value.Ttext -> 3

let get_vtype r =
  let at = r.pos in
  match get_int r with
  | 0 -> Value.Tnull
  | 1 -> Value.Tnumeric
  | 2 -> Value.Tstring
  | 3 -> Value.Ttext
  | tag ->
    err (Corrupt { pos = at; what = Printf.sprintf "unknown value-type tag %d" tag })

(* ---- encoding --------------------------------------------------------------
   The node-record payload is shared between versions: nodes in
   ascending-sid order with sid-keyed edges, which is exactly the
   sealed form's index order; decoding rebuilds a Builder and freezes
   it, so a load/save round trip re-canonicalizes nothing.

   v1 (legacy) wraps it unframed:
     magic | version | term table | doc_height root n_nodes | nodes
   v2 frames header / terms / nodes into sections, each
     tag | payload length | CRC-32 | payload
   so any damage is detected section-locally before decoding. *)

let encode_nodes tt syn =
  let body = Buffer.create 65536 in
  let n = S.n_nodes syn in
  let child_off = S.child_off syn
  and child_idx = S.child_idx syn
  and child_avg = S.child_avg syn in
  for i = 0 to n - 1 do
    put_int body (S.sid_of_index syn i);
    put_string body (Label.to_string (S.label syn i));
    put_int body (vtype_tag (S.vtype syn i));
    put_int body (S.count syn i);
    put_vsumm tt body (S.vsumm syn i);
    put_int body (child_off.(i + 1) - child_off.(i));
    for e = child_off.(i) to child_off.(i + 1) - 1 do
      put_int body (S.sid_of_index syn child_idx.(e));
      put_float body child_avg.(e)
    done
  done;
  Buffer.contents body

let encode_terms tt =
  let buf = Buffer.create 4096 in
  put_list buf put_string
    (List.rev_map (fun id -> Dictionary.to_string (Dictionary.unsafe_of_int id)) tt.ids);
  Buffer.contents buf

let add_section out ~tag payload =
  put_int out tag;
  put_int out (String.length payload);
  put_int out (Crc32.digest payload);
  Buffer.add_string out payload

let to_string syn =
  let tt = tt_create () in
  let nodes = encode_nodes tt syn in
  let terms = encode_terms tt in
  let header =
    let b = Buffer.create 24 in
    put_int b (S.doc_height syn);
    put_int b (S.root_sid syn);
    put_int b (S.n_nodes syn);
    Buffer.contents b
  in
  let out = Buffer.create (String.length nodes + String.length terms + 128) in
  Buffer.add_string out magic;
  put_int out version;
  add_section out ~tag:tag_header header;
  add_section out ~tag:tag_terms terms;
  add_section out ~tag:tag_nodes nodes;
  Buffer.contents out

let to_string_v1 syn =
  let tt = tt_create () in
  let nodes = encode_nodes tt syn in
  let terms = encode_terms tt in
  let out = Buffer.create (String.length nodes + String.length terms + 64) in
  Buffer.add_string out magic;
  put_int out version_v1;
  Buffer.add_string out terms;
  put_int out (S.doc_height syn);
  put_int out (S.root_sid syn);
  put_int out (S.n_nodes syn);
  Buffer.add_string out nodes;
  Buffer.contents out

let size_on_disk syn = String.length (to_string syn)

(* ---- decoding -------------------------------------------------------------- *)

let decode_terms r =
  Array.of_list
    (get_list r ~elt_min:8 ~what:"term-table size" (fun r ->
         Dictionary.of_string (get_string r)))

(* The shared node-record payload. Consumes the reader exactly to its
   limit; the caller supplies the header fields. *)
let decode_graph r ~terms ~doc_height ~root ~n_nodes =
  if doc_height < 0 || doc_height > 1_000_000 then
    err (Bad_length { pos = 0; len = doc_height; what = "document height" });
  if n_nodes < 0 || n_nodes > remaining r / node_min_bytes then
    err (Bad_length { pos = r.pos; len = n_nodes; what = "node count" });
  let syn = B.create ~doc_height in
  let edges = ref [] in
  for _ = 1 to n_nodes do
    let at = r.pos in
    let sid = get_int r in
    if sid < 0 then
      err (Corrupt { pos = at; what = Printf.sprintf "negative node id %d" sid });
    let label = Label.of_string (get_string r) in
    let vtype = get_vtype r in
    let count = get_int r in
    let vsumm = get_vsumm terms r in
    if B.mem syn sid then
      err (Corrupt { pos = at; what = Printf.sprintf "duplicate node id %d" sid });
    ignore (B.add_node_at syn ~sid ~label ~vtype ~count ~vsumm);
    let ne_at = r.pos in
    let n_edges = get_int r in
    if n_edges < 0 || n_edges > remaining r / edge_min_bytes then
      err (Bad_length { pos = ne_at; len = n_edges; what = "edge count" });
    for _ = 1 to n_edges do
      let e_at = r.pos in
      let child = get_int r in
      let avg = get_float r in
      edges := (e_at, sid, child, avg) :: !edges
    done
  done;
  if r.pos <> r.limit then err (Corrupt { pos = r.pos; what = "trailing bytes" });
  List.iter
    (fun (at, parent, child, avg) ->
      if not (B.mem syn child) then
        err (Corrupt { pos = at; what = Printf.sprintf "edge to unknown node %d" child });
      B.set_edge syn ~parent ~child avg)
    !edges;
  if not (B.mem syn root) then
    err (Corrupt { pos = 0; what = Printf.sprintf "root id %d not among nodes" root });
  B.set_root syn root;
  (match B.validate syn with
  | Ok () -> ()
  | Error e -> err (Corrupt { pos = 0; what = "decoded synopsis is inconsistent: " ^ e }));
  Synopsis.freeze syn

let decode_v1 r =
  let terms = decode_terms r in
  let doc_height = get_int r in
  let root = get_int r in
  let n_nodes = get_int r in
  decode_graph r ~terms ~doc_height ~root ~n_nodes

let section_name tag =
  if tag = tag_header then "header"
  else if tag = tag_terms then "terms"
  else "nodes"

let get_section r ~tag =
  let name = section_name tag in
  let at = r.pos in
  let t = get_int r in
  if t <> tag then
    err
      (Corrupt
         { pos = at;
           what = Printf.sprintf "expected %s section (tag %d), found tag %d" name tag t
         });
  let len_at = r.pos in
  let len = get_int r in
  let stored = get_int r in
  if len < 0 || len > remaining r then
    err (Bad_length { pos = len_at; len; what = name ^ " section length" });
  let actual = Crc32.sub r.src ~pos:r.pos ~len in
  if actual <> stored then err (Checksum_mismatch { section = name; stored; actual });
  let section = { src = r.src; pos = r.pos; limit = r.pos + len } in
  r.pos <- r.pos + len;
  section

let decode_header r =
  let header = get_section r ~tag:tag_header in
  let doc_height = get_int header in
  let root = get_int header in
  let n_nodes = get_int header in
  if header.pos <> header.limit then
    err (Corrupt { pos = header.pos; what = "trailing bytes in header section" });
  (doc_height, root, n_nodes)

let decode_v2 r =
  let doc_height, root, n_nodes = decode_header r in
  let terms_sec = get_section r ~tag:tag_terms in
  let terms = decode_terms terms_sec in
  if terms_sec.pos <> terms_sec.limit then
    err (Corrupt { pos = terms_sec.pos; what = "trailing bytes in terms section" });
  let nodes_sec = get_section r ~tag:tag_nodes in
  if r.pos <> r.limit then
    err (Corrupt { pos = r.pos; what = "trailing bytes after last section" });
  decode_graph nodes_sec ~terms ~doc_height ~root ~n_nodes

let with_version src k =
  let r = { src; pos = 0; limit = String.length src } in
  if String.length src < 4 || not (String.equal (String.sub src 0 4) magic) then
    err Bad_magic;
  r.pos <- 4;
  let v = get_int r in
  if v <> version_v1 && v <> version then err (Unsupported_version v);
  k v r

(* Corrupt input can surface as stray exceptions from components the
   decoder feeds (histogram/suffix-tree constructors, freeze);
   normalize every failure mode to the typed error — decoding is
   total. *)
let guard f =
  match f () with
  | v -> Ok v
  | exception Decode e ->
    record_error e;
    Error e
  | exception Stack_overflow ->
    let e = Corrupt { pos = 0; what = "decoder stack overflow" } in
    record_error e;
    Error e
  | exception exn ->
    let e = Corrupt { pos = 0; what = "decoder failure: " ^ Printexc.to_string exn } in
    record_error e;
    Error e

let of_string src =
  guard (fun () ->
      with_version src (fun v r -> if v = version_v1 then decode_v1 r else decode_v2 r))

let of_string_exn src =
  match of_string src with
  | Ok syn -> syn
  | Error e -> failwith ("Codec: " ^ error_to_string e)

(* ---- files ------------------------------------------------------------- *)

let save path syn =
  match Safe_io.write_atomic path (to_string syn) with
  | Ok () -> Ok ()
  | Error e ->
    Metrics.incr Metrics.global "codec.save_error";
    Error (Io (path ^ ": " ^ Safe_io.error_to_string e))

let save_exn path syn =
  match save path syn with
  | Ok () -> ()
  | Error e -> failwith ("Codec: " ^ error_to_string e)

let read_file path =
  match Safe_io.read path with
  | Ok src -> Ok (Xc_util.Fault.mutate ~site:"codec.load" src)
  | Error e ->
    let e = Io (path ^ ": " ^ Safe_io.error_to_string e) in
    record_error e;
    Error e

let load path = Result.bind (read_file path) of_string

let load_exn path =
  match load path with
  | Ok syn -> syn
  | Error e -> failwith ("Codec: " ^ error_to_string e)

(* ---- integrity ---------------------------------------------------------- *)

type info = {
  i_version : int;
  i_nodes : int;
  i_bytes : int;
  i_checksummed : bool;
}

let verify_string src =
  guard (fun () ->
      with_version src (fun v r ->
          if v = version_v1 then
            (* v1 carries no checksums: a full decode is the only check *)
            let syn = decode_v1 r in
            { i_version = 1;
              i_nodes = S.n_nodes syn;
              i_bytes = String.length src;
              i_checksummed = false
            }
          else begin
            let _doc_height, _root, n_nodes = decode_header r in
            if n_nodes < 0 then
              err (Bad_length { pos = 0; len = n_nodes; what = "node count" });
            let terms_sec = get_section r ~tag:tag_terms in
            ignore (terms_sec : reader);
            let nodes_sec = get_section r ~tag:tag_nodes in
            ignore (nodes_sec : reader);
            if r.pos <> r.limit then
              err (Corrupt { pos = r.pos; what = "trailing bytes after last section" });
            { i_version = 2;
              i_nodes = n_nodes;
              i_bytes = String.length src;
              i_checksummed = true
            }
          end))

let verify path = Result.bind (read_file path) verify_string
