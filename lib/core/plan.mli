(** Compiled estimation plans (the query-time pipeline).

    {!Estimate.selectivity} re-enumerates query embeddings and re-runs
    the capped breadth-first descendant expansion from scratch on every
    call. This module compiles a {!Xc_twig.Twig_query.t} against a
    synopsis {e once} — pre-binding each predicate's value type,
    fixing the edge-join order, and routing every path-expression
    expansion through a per-synopsis memo table keyed by
    [source sid × path expression] — so repeated estimates reuse both
    the plan and the expansion work of {e every} earlier estimate
    against the same synopsis.

    Memoized reach tables are stored verbatim (the same hash tables a
    fresh run would build), and the compiled estimator performs the same
    float operations in the same order as {!Estimate.selectivity}, so
    planned estimates are {b bit-identical} to uncached ones.

    Memos are invalidated by the synopsis {!Synopsis.generation}
    counter: any mutation made through the [Synopsis] API bumps it, and
    the next estimate drops every cached expansion before answering.

    Instrumentation goes to {!Xc_util.Metrics.global}: counters
    [plan.compile], [plan.cache_hit]/[plan.cache_miss] (query → plan
    lookups), [reach.memo_hit]/[reach.memo_miss],
    [plan.invalidate]; histogram [reach.expansion_depth]; timer
    [estimate.plan]. *)

type t
(** A twig query compiled against one synopsis. *)

val compile : Synopsis.t -> Xc_twig.Twig_query.t -> t
(** Compile the query. The plan owns a private reach memo; use
    {!Cache} to share the memo across queries. *)

val estimate : t -> float
(** Estimated number of binding tuples — bit-identical to
    [Estimate.selectivity synopsis query]. Revalidates the memo against
    the synopsis generation first. *)

val synopsis : t -> Synopsis.t
val query : t -> Xc_twig.Twig_query.t

val query_key : Xc_twig.Twig_query.t -> string
(** Injective serialization of a query's structure and predicates; the
    plan-cache key. *)

(** Per-synopsis plan cache: maps queries to compiled plans and shares
    one reach memo across all of them, so distinct queries reuse each
    other's expansion work (workload queries overlap heavily in their
    path fragments). *)
module Cache : sig
  type plan = t
  type t

  val create : Synopsis.t -> t
  val synopsis : t -> Synopsis.t

  val find_or_compile : t -> Xc_twig.Twig_query.t -> plan
  (** Cached plan for the query, compiling on first sight. *)

  val estimate : t -> Xc_twig.Twig_query.t -> float
  (** [estimate c q = Plan.estimate (find_or_compile c q)]. *)

  val n_plans : t -> int
  (** Compiled plans currently cached. *)

  val reach_entries : t -> int
  (** Memoized reach tables currently live (drops to 0 after a
      synopsis mutation is observed). *)

  val generation : t -> int
  (** Synopsis generation the memo was last validated against. *)

  val clear : t -> unit
  (** Drop all plans and memo entries (e.g. to bound memory). *)
end
