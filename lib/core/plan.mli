(** Compiled estimation plans (the query-time pipeline).

    {!Estimate.selectivity} re-enumerates query embeddings and re-runs
    the capped breadth-first descendant expansion from scratch on every
    call. This module compiles a {!Xc_twig.Twig_query.t} against a
    sealed synopsis {e once} — pre-binding each predicate's value type,
    fixing the edge-join order, and routing every path-expression
    expansion through a per-synopsis memo table keyed by
    [source index × path expression] — so repeated estimates reuse both
    the plan and the expansion work of {e every} earlier estimate
    against the same synopsis.

    Memoized reach distributions are stored verbatim (the same
    {!Estimate.dist} arrays a fresh run would build), and the compiled
    estimator performs the same float operations in the same order as
    {!Estimate.selectivity}, so planned estimates are {b bit-identical}
    to uncached ones.

    A {!Synopsis.Sealed.t} never mutates, so memo entries never go
    stale — the generation-invalidation machinery the builder-based
    pipeline needed is gone.

    Instrumentation goes to {!Xc_util.Metrics.global}: counters
    [plan.compile], [plan.cache_hit]/[plan.cache_miss] (query → plan
    lookups), [reach.memo_hit]/[reach.memo_miss]; histogram
    [reach.expansion_depth]; timer [estimate.plan]. *)

type t
(** A twig query compiled against one sealed synopsis. *)

val compile : Synopsis.Sealed.t -> Xc_twig.Twig_query.t -> t
(** Compile the query. The plan owns a private reach memo; use
    {!Cache} to share the memo across queries. *)

val estimate : t -> float
(** Estimated number of binding tuples — bit-identical to
    [Estimate.selectivity synopsis query]. *)

val synopsis : t -> Synopsis.Sealed.t
val query : t -> Xc_twig.Twig_query.t

val query_key : Xc_twig.Twig_query.t -> string
(** Injective serialization of a query's structure and predicates; the
    plan-cache key. *)

(** Per-synopsis plan cache: maps queries to compiled plans and shares
    one reach memo across all of them, so distinct queries reuse each
    other's expansion work (workload queries overlap heavily in their
    path fragments). *)
module Cache : sig
  type plan = t
  type t

  val create : Synopsis.Sealed.t -> t
  val synopsis : t -> Synopsis.Sealed.t

  val find_or_compile : t -> Xc_twig.Twig_query.t -> plan
  (** Cached plan for the query, compiling on first sight. *)

  val estimate : t -> Xc_twig.Twig_query.t -> float
  (** [estimate c q = Plan.estimate (find_or_compile c q)]. *)

  val estimate_result : t -> Xc_twig.Twig_query.t -> (float, string) result
  (** {!estimate} with the serving failure contract: any exception out
      of compilation or evaluation (a synopsis that decoded but is
      broken in a way {!Synopsis.Sealed.validate} does not model, a
      query the compiler cannot place) becomes [Error] and bumps the
      [plan.error] counter, so a server can fall back to the uncached
      estimator instead of dying. *)

  val n_plans : t -> int
  (** Compiled plans currently cached. *)

  val reach_entries : t -> int
  (** Memoized reach distributions currently live. *)

  val clear : t -> unit
  (** Drop all plans and memo entries (e.g. to bound memory). *)
end

(** Batched estimation serving over precomputed transition matrices.

    Where {!Cache} still pays per estimate for a query-key render,
    structural path-expression hashing in the reach memo, and a fresh
    per-call hashtable, the batch engine moves all lookup work to
    prepare time: every distinct path expression is interned
    ({!Xc_twig.Path_expr.intern}) and materialized as a
    {!Transition} matrix once per synopsis, per-node predicate
    selectivities are precomputed over each query node's support set,
    and evaluation is a bottom-up walk over flat per-worker float
    arrays — plain CSR row dot products, no hashing or allocation on
    the serving path.

    The default serving mode is {b matrix-major}: a prepared batch is
    deduplicated (identical queries evaluate once) and its distinct
    queries are grouped into {e cohorts} by the first transition matrix
    each evaluation streams, laid out cohort-major so one matrix's CSR
    slices are walked back-to-back for the whole cohort. Evaluation
    runs from a flattened postorder program (no recursion or closures)
    against a reusable per-worker arena — one flat float64 Bigarray of
    per-slot planes, high-water sized, never zeroed between queries —
    so per-query bookkeeping (timestamps, scratch allocation, histogram
    updates) is amortized over whole cohorts. [cohort:false] selects
    the original query-major walk, kept as the per-query-latency
    reference path.

    Results on both paths are {b bit-identical} to
    {!Estimate.selectivity} (matrix rows are built by the estimator's
    own step code and the evaluation replicates its float-operation
    order exactly, short-circuits included), and {b independent of the
    worker count}: work shards across {!Xc_util.Par} domains in
    contiguous chunks (of cohorts in matrix-major mode, of queries
    otherwise) with results placed by input index, and no query's
    evaluation reads state another query wrote.

    Instrumentation (all recorded by the coordinating domain only):
    counters [batch.queries], [batch.query_hit]/[batch.query_miss],
    [batch.cohorts], [batch.cohort_max] (high-water),
    [batch.arena_resets] (arena (re)allocations), [batch.minor_words]
    (coordinator minor-heap words allocated during cohort passes);
    timers [batch.mat_build], [batch.compile], [batch.cohort_plan],
    [estimate.batch]; histograms [estimate.batch_us] (per-query
    latency, query-major path) and [estimate.cohort_us] (per-cohort
    latency, matrix-major path, sampled on every 8th cohort so the
    sub-microsecond hot loop is not charged for its own
    timestamping). *)
module Batch : sig
  type t
  (** A batch engine bound to one sealed synopsis: its matrix registry
      (keyed by interned path-expression id) plus compiled queries
      (keyed by {!query_key}). *)

  type prepared
  (** A workload compiled for serving; reusable across runs. Carries
      its lazily built cohort plan, so repeated passes over the same
      prepared batch pay the grouping cost once. *)

  val create : Synopsis.Sealed.t -> t

  val prepare : t -> Xc_twig.Twig_query.t array -> prepared
  (** Compile the workload, building each distinct path expression's
      transition matrix on first sight and caching compiled queries by
      key, so repeated and overlapping workloads amortize to lookups. *)

  val run_prepared :
    ?domains:int -> ?blocked:bool -> ?cohort:bool -> t -> prepared -> float array
  (** Evaluate; [result.(i)] answers query [i]. [domains] as in
      {!Xc_util.Par.map} ([<= 0] means [XC_DOMAINS]). [cohort]
      (default [true]) selects the matrix-major sweep; [cohort:false]
      the query-major reference walk — both bit-identical to the
      uncached estimator. [blocked] (default [false]) switches the row
      dot product to a 4-way unrolled kernel on matrices whose mean
      row length is at least {!blocked_min_mean_row} (shorter-row
      matrices keep the scalar kernel — unrolling regresses them):
      faster on long rows but a {e different summation order}, so
      results may differ from the sequential bit-identical path by
      float non-associativity — the bench measures that |Δ| and
      reports it as [max_diff_blocked]. Every default path keeps
      [blocked:false]. *)

  val blocked_min_mean_row : float
  (** Mean-row-length threshold ({!Transition.mean_row_len}) at and
      above which [blocked:true] actually uses the unrolled kernel. *)

  val cohort_stats : prepared -> int * int * int
  (** [(cohorts, max_cohort, distinct)] for the batch's cohort plan
      (building it if needed): number of cohorts, widest cohort, and
      distinct queries after dedup. [distinct /. cohorts] is the
      matrix-sharing factor the bench reports as [cohort_sharing]. *)

  val run :
    ?domains:int -> ?cohort:bool -> t -> Xc_twig.Twig_query.t array -> float array
  (** [prepare] + [run_prepared]. *)

  val run_result :
    ?domains:int -> ?cohort:bool -> t -> Xc_twig.Twig_query.t array ->
    (float array, string) result
  (** {!run} with the serving failure contract (see
      {!Cache.estimate_result}): exceptions become [Error] and bump
      [batch.error], so batched serving can degrade to the per-query
      path. *)

  val estimate : t -> Xc_twig.Twig_query.t -> float
  (** Single-query convenience; always sequential. *)

  val synopsis : t -> Synopsis.Sealed.t

  val n_matrices : t -> int
  (** Distinct transition matrices built so far. *)

  val n_queries : t -> int
  (** Compiled queries currently cached. *)

  val clear : t -> unit
  (** Drop matrices and compiled queries (to bound memory). *)
end
