module Vs = Xc_vsumm.Value_summary
module B = Synopsis.Builder

let compatible u v =
  Xc_xml.Label.equal (B.label u) (B.label v)
  && Xc_xml.Value.vtype_equal (B.vtype u) (B.vtype v)
  && (match B.vsumm u, B.vsumm v with
     | Vs.Vnone, Vs.Vnone -> true
     | Vs.Vnum _, Vs.Vnum _ -> true
     | Vs.Vstr _, Vs.Vstr _ -> true
     | Vs.Vtext _, Vs.Vtext _ -> true
     | (Vs.Vnone | Vs.Vnum _ | Vs.Vstr _ | Vs.Vtext _), _ -> false)

(* Per-domain scratch for the child-key set below: [saved_bytes] runs
   once per candidate evaluation (including inside parallel scoring
   workers), and a fresh hashtable per call is pure GC pressure. *)
let keys_scratch : (int, unit) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

(* Child sid set of the would-be merged node, with u/v remapped to w.
   The returned table is the domain-local scratch — valid until the next
   call on this domain. *)
let merged_child_keys syn u v =
  let keys = Domain.DLS.get keys_scratch in
  Hashtbl.reset keys;
  let self = ref false in
  let note node =
    B.succ syn node (fun sid _ ->
        if sid = B.sid u || sid = B.sid v then self := true
        else Hashtbl.replace keys sid ())
  in
  note u;
  note v;
  (keys, !self)

let saved_bytes_with syn u v ~merged_children =
  let child_edges_before = B.out_degree u + B.out_degree v in
  (* every external parent holding edges to both u and v keeps only one *)
  let shared_parents = ref 0 in
  B.pred syn u (fun sid ->
      if sid <> B.sid u && sid <> B.sid v && B.has_parent v sid then
        incr shared_parents);
  Size.node_bytes
  + (Size.edge_bytes * (child_edges_before - merged_children + !shared_parents))

let saved_bytes syn u v =
  let keys, self = merged_child_keys syn u v in
  saved_bytes_with syn u v ~merged_children:(Hashtbl.length keys + if self then 1 else 0)

let apply syn su sv =
  let u = B.find syn su and v = B.find syn sv in
  if su = sv then invalid_arg "Merge.apply: cannot merge a node with itself";
  if not (compatible u v) then invalid_arg "Merge.apply: incompatible nodes";
  let cu = float_of_int (B.count u) and cv = float_of_int (B.count v) in
  let cw = cu +. cv in
  let vsumm =
    match B.vsumm u, B.vsumm v with
    | Vs.Vnone, Vs.Vnone -> Vs.Vnone
    | a, b -> Vs.fuse a b
  in
  let w =
    B.add_node syn ~label:(B.label u) ~vtype:(B.vtype u)
      ~count:(B.count u + B.count v) ~vsumm
  in
  let sw = B.sid w in
  let is_uv sid = sid = su || sid = sv in
  (* combined child counts: count(w,c) = (|u|count(u,c)+|v|count(v,c))/|w|,
     with edges into u/v remapped onto w *)
  let child_counts = Hashtbl.create 8 in
  let add_children weight node =
    B.succ syn node (fun sid avg ->
        let key = if is_uv sid then sw else sid in
        let cur = Option.value ~default:0.0 (Hashtbl.find_opt child_counts key) in
        Hashtbl.replace child_counts key (cur +. (weight *. avg)))
  in
  add_children cu u;
  add_children cv v;
  (* parent totals: count(p,w) = count(p,u) + count(p,v) for external p *)
  let parent_counts = Hashtbl.create 8 in
  let add_parents node =
    B.pred syn node (fun psid ->
        if not (is_uv psid) then begin
          let p = B.find syn psid in
          let into node' = B.child_avg p (B.sid node') in
          Hashtbl.replace parent_counts psid (into u +. into v)
        end)
  in
  add_parents u;
  add_parents v;
  (* detach u and v from the graph: zero out their external edges, then
     unregister them (internal u/v edges die with the nodes) *)
  let detach node =
    let s = B.sid node in
    let outs = ref [] and ins = ref [] in
    B.succ syn node (fun sid _ -> if not (is_uv sid) then outs := sid :: !outs);
    B.pred syn node (fun sid -> if not (is_uv sid) then ins := sid :: !ins);
    List.iter (fun c -> B.set_edge syn ~parent:s ~child:c 0.0) !outs;
    List.iter (fun p -> B.set_edge syn ~parent:p ~child:s 0.0) !ins;
    B.remove_node syn s
  in
  detach u;
  detach v;
  (* wire w *)
  Hashtbl.iter
    (fun sid total -> B.set_edge syn ~parent:sw ~child:sid (total /. cw))
    child_counts;
  Hashtbl.iter
    (fun psid total -> B.set_edge syn ~parent:psid ~child:sw total)
    parent_counts;
  if B.root syn = su || B.root syn = sv then B.set_root syn sw;
  w
