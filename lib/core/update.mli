(** Incremental synopsis maintenance: apply subtree insert/delete deltas
    from a document update stream to a {!Synopsis.Builder}, then repair
    the budgets locally instead of rebuilding from scratch.

    The lifecycle this module enables (DESIGN.md Sec. 12):

    {v
      reference/build ──> Builder ──freeze──> Sealed (generation 1)
                            │ ▲
                 Update.apply │ (localized repair)
                            ▼ │
                          Builder ──freeze──> Sealed (generation 2) ──> Registry.swap
    v}

    A mutation names its insertion (or deletion) point by the
    root-inclusive label path of the {e parent} element — e.g.
    [\[site; open_auctions\]] for an XMark auction — and carries the
    inserted (or deleted) subtree as an {!Xc_xml.Node.t}. The path is
    resolved against the synopsis deterministically: starting at the
    root cluster, each step picks the child cluster with the matching
    label, preferring the largest extent (ties broken by smallest sid).
    This is the synopsis-side analogue of the path-partition maintenance
    of DescribeX-style summaries: an update touches only the clusters on
    and below its resolution path.

    Applying a batch is a three-step process:

    + {b map}: every subtree element is resolved to a cluster (novel
      labels allocate fresh clusters); the pass only {e accumulates}
      per-cluster count deltas, per-edge total-children deltas and
      added values — nothing is written, so a malformed batch is
      rejected with the builder untouched.
    + {b write}: counts and edge averages are recomputed from the
      accumulated totals (edge averages are stored as
      total/parent-count, so a parent whose count changed has {e all}
      its outgoing averages rescaled); clusters whose extent reaches
      zero are unlinked and removed. Value summaries fuse in a detailed
      summary of the inserted values when the summary kinds agree;
      deletions leave the summary untouched (a documented
      approximation — selectivity fractions stay, the count rescale
      handles magnitude).
    + {b repair}: the set of perturbed clusters — count-changed,
      created, their parents, and summary-changed — forms the {e dirty
      frontier} handed to {!Build.phase1_repair} and
      {!Build.phase2_repair}, which re-establish the construction
      budgets by seeding the merge pool and compression heap from the
      frontier only (widening to a full pass only when locality is
      insufficient, counted under [update.repair_widened] /
      [update.compress_widened]).

    Metrics: [update.apply] / [update.repair] timers,
    [update.mutations], [update.created], [update.removed],
    [update.skipped_branches], [update.vsumm_kept] counters. *)

type mutation =
  | Insert of { parent : Xc_xml.Label.t list; subtree : Xc_xml.Node.t }
      (** Insert [subtree] as a new child of the element cluster named
          by the root-inclusive label path [parent]. *)
  | Delete of { parent : Xc_xml.Label.t list; subtree : Xc_xml.Node.t }
      (** Delete one occurrence of [subtree] from under [parent].
          Deletion is clamped: subtree branches that do not resolve to
          a live cluster are skipped (and counted), never negative. *)

type stats = {
  applied : int;        (** mutations applied (= batch size on [Ok]) *)
  skipped : int;        (** delete branches that resolved nowhere *)
  dirty : int;          (** dirty-frontier size handed to repair *)
  created : int;        (** clusters allocated for novel labels *)
  removed : int;        (** clusters whose extent reached zero *)
  repair_merges : int;  (** merges applied by localized phase 1 *)
}

val apply :
  budget:Build.budget -> Synopsis.Builder.t -> mutation list ->
  (stats, string) result
(** Applies the batch to the builder in place and repairs it back under
    [budget]. [Error] before anything is written when a mutation's
    parent path does not resolve (the builder is untouched); [Error]
    after the fact if the write left the builder structurally invalid —
    a bug guard, after which the builder must be discarded. *)

val apply_and_seal :
  budget:Build.budget -> Synopsis.Builder.t -> mutation list ->
  (stats * Synopsis.Sealed.t, string) result
(** {!apply} followed by {!Synopsis.freeze}: the repaired generation,
    ready for [Registry.swap]. The builder stays live for the next
    batch. *)
