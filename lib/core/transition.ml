module S = Synopsis.Sealed

type t = {
  tm_expr : Xc_twig.Path_expr.t;
  tm_off : int array;  (* n_rows + 1 *)
  tm_idx : int array;  (* target indices, ascending within a row *)
  tm_w : float array;
}

(* Row u is reach_dist syn expr u, computed with the serving baseline's
   own step function: a child step is a sparse composition with the
   sealed child CSR (expand over the row's support, then label-filter),
   a descendant step the height-bounded closure. Building through
   Estimate.step_reach is what makes every stored float bit-identical
   to an uncached frontier walk — same operations, same order. *)
let build syn expr =
  let n = S.n_nodes syn in
  let rows =
    Array.init n (fun u ->
        List.fold_left
          (fun d step -> Estimate.step_reach syn step d)
          { Estimate.d_idx = [| u |]; Estimate.d_w = [| 1.0 |] }
          expr)
  in
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + Array.length rows.(u).Estimate.d_idx
  done;
  let nnz = off.(n) in
  let idx = Array.make nnz 0 and w = Array.make nnz 0.0 in
  for u = 0 to n - 1 do
    let r = rows.(u) in
    Array.blit r.Estimate.d_idx 0 idx off.(u) (Array.length r.Estimate.d_idx);
    Array.blit r.Estimate.d_w 0 w off.(u) (Array.length r.Estimate.d_w)
  done;
  { tm_expr = expr; tm_off = off; tm_idx = idx; tm_w = w }

let expr t = t.tm_expr
let n_rows t = Array.length t.tm_off - 1
let nnz t = t.tm_off.(Array.length t.tm_off - 1)

let row t u =
  let lo = t.tm_off.(u) and hi = t.tm_off.(u + 1) in
  { Estimate.d_idx = Array.sub t.tm_idx lo (hi - lo);
    Estimate.d_w = Array.sub t.tm_w lo (hi - lo) }

let off t = t.tm_off
let idx t = t.tm_idx
let weights t = t.tm_w

let root_row syn expr = Estimate.root_reach_dist syn expr
