module S = Synopsis.Sealed

type t = {
  tm_expr : Xc_twig.Path_expr.t;
  tm_off : S.ba_i;  (* n_rows + 1 *)
  tm_idx : S.ba_i;  (* target indices, ascending within a row *)
  tm_w : S.ba_f;
}

(* Row u is reach_dist syn expr u, computed with the serving baseline's
   own step function: a child step is a sparse composition with the
   sealed child CSR (expand over the row's support, then label-filter),
   a descendant step the height-bounded closure. Building through
   Estimate.step_reach is what makes every stored float bit-identical
   to an uncached frontier walk — same operations, same order. *)
let build syn expr =
  let n = S.n_nodes syn in
  let rows =
    Array.init n (fun u ->
        List.fold_left
          (fun d step -> Estimate.step_reach syn step d)
          { Estimate.d_idx = [| u |]; Estimate.d_w = [| 1.0 |] }
          expr)
  in
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + Array.length rows.(u).Estimate.d_idx
  done;
  let nnz = off.(n) in
  (* pack the rows into unboxed buffers: the batch dot kernel streams
     a row as one contiguous cache-friendly slice *)
  let module BA1 = Bigarray.Array1 in
  let idx = BA1.create Bigarray.int Bigarray.c_layout nnz in
  let w = BA1.create Bigarray.float64 Bigarray.c_layout nnz in
  for u = 0 to n - 1 do
    let r = rows.(u) in
    let base = off.(u) in
    for k = 0 to Array.length r.Estimate.d_idx - 1 do
      BA1.unsafe_set idx (base + k) (Array.unsafe_get r.Estimate.d_idx k);
      BA1.unsafe_set w (base + k) (Array.unsafe_get r.Estimate.d_w k)
    done
  done;
  { tm_expr = expr; tm_off = S.ba_i_of_array off; tm_idx = idx; tm_w = w }

let expr t = t.tm_expr

let n_rows t =
  let module BA1 = Bigarray.Array1 in
  BA1.dim t.tm_off - 1

let nnz t =
  let module BA1 = Bigarray.Array1 in
  BA1.get t.tm_off (BA1.dim t.tm_off - 1)

(* what the blocked-kernel gate keys on: unrolled accumulation only
   pays off when rows are long enough to amortize the extra loop
   machinery, and row length is a per-matrix property *)
let mean_row_len t =
  let n = n_rows t in
  if n = 0 then 0.0 else float_of_int (nnz t) /. float_of_int n

let row t u =
  let module BA1 = Bigarray.Array1 in
  let lo = BA1.get t.tm_off u and hi = BA1.get t.tm_off (u + 1) in
  { Estimate.d_idx = Array.init (hi - lo) (fun k -> BA1.get t.tm_idx (lo + k));
    Estimate.d_w = Array.init (hi - lo) (fun k -> BA1.get t.tm_w (lo + k)) }

let off t = t.tm_off
let idx t = t.tm_idx
let weights t = t.tm_w

let root_row syn expr = Estimate.root_reach_dist syn expr
