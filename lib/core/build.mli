(** XCLUSTERBUILD — the budgeted construction algorithm (Sec. 4.3,
    Fig. 5).

    Phase 1 (structure-value merge) greedily applies the node merge with
    the smallest marginal loss Δ(S,S′)/(|S|_str − |S′|_str) from a
    bounded bottom-up candidate pool until the structural budget is met.
    Phase 2 (value-summary compression) greedily applies the value
    compression with the smallest marginal loss until the value budget
    is met.

    Construction runs on a {!Synopsis.Builder} copy of the reference;
    every entry point that produces a finished synopsis freezes it into
    the read-optimized {!Synopsis.Sealed} form on the way out. *)

type budget = {
  bstr : int;  (** structural budget, bytes *)
  bval : int;  (** value budget, bytes *)
  pool : Pool.config;
}
(** The one budget record every construction entry point takes; build
    it with the smart constructors below. *)

type params = budget
(** @deprecated Historical alias of {!budget}. *)

val budget : ?pool:Pool.config -> ?bstr_kb:int -> ?bval_kb:int -> unit -> budget
(** Budget from kilobyte counts (defaults: 20 KB structural, 150 KB
    value — the paper's 200 KB operating point minus rounding). *)

val budget_bytes : ?pool:Pool.config -> bstr:int -> bval:int -> unit -> budget
(** Budget from exact byte counts. *)

val budget_split : ?pool:Pool.config -> total_kb:int -> ratio:float -> unit -> budget
(** Split a unified budget: [ratio] (in [0,1]) of [total_kb] goes to
    structure, the rest to values; the structural share is clamped to
    [\[0, total_kb\]] after rounding, so the two parts always sum to
    [total_kb]. Raises [Invalid_argument] on a non-positive total or an
    out-of-range ratio. *)

val params : ?pool:Pool.config -> bstr_kb:int -> bval_kb:int -> unit -> params
(** @deprecated Thin wrapper over {!budget}. *)

val phase1_merge : params -> Synopsis.Builder.t -> unit
(** Runs the structure-value merge phase in place. *)

val phase2_compress : params -> Synopsis.Builder.t -> unit
(** Runs the value-summary compression phase in place. *)

val phase1_repair : budget -> Synopsis.Builder.t -> frontier:int list -> int
(** Localized phase 1 for incremental maintenance ({!Update}): seeds the
    candidate pool from the dirty-cluster [frontier] (sids; duplicates
    and since-removed sids are ignored) via {!Pool.build_frontier} and
    merges until the structural budget holds. If the localized pool
    runs dry while the synopsis is still over budget — a perturbation
    too large for locality — the repair widens once to the full
    {!phase1_merge} (counted under the [update.repair_widened] metric).
    Returns the number of merges applied. *)

val phase2_repair : budget -> Synopsis.Builder.t -> frontier:int list -> unit
(** Localized phase 2: seeds the compression heap from the [frontier]
    only, falling back to the full {!phase2_compress} scan if the value
    budget still does not hold (counted under
    [update.compress_widened]). *)

val run_builder : params -> Synopsis.Builder.t -> Synopsis.Builder.t
(** Full XCLUSTERBUILD on a private copy of the reference synopsis,
    returned still mutable (the argument is not modified). Callers that
    want to estimate should {!Synopsis.freeze} the result or use {!run};
    the unfrozen form exists for benchmarks and incremental tooling. *)

val run : params -> Synopsis.Builder.t -> Synopsis.Sealed.t
(** [Synopsis.freeze ∘ run_builder]: the normal way to build. *)

val sweep_at :
  budget -> bstr_kbs:int list -> Synopsis.Builder.t -> (int * Synopsis.Sealed.t) list
(** Builds one synopsis per structural budget in [bstr_kbs] (the
    budget's own [bstr] is ignored; its value budget and pool config
    apply to every point), sharing the greedy merge prefix across
    points as described under {!sweep}. *)

val sweep : ?pool:Pool.config -> bval_kb:int -> bstr_kbs:int list ->
  Synopsis.Builder.t -> (int * Synopsis.Sealed.t) list
(** Thin wrapper over {!sweep_at}.
    Builds one synopsis per structural budget, sharing the greedy merge
    prefix: budgets are processed in decreasing order on a single
    synopsis, snapshotting (copy + value compression + freeze) at each.
    This is exactly equivalent to independent runs because the greedy
    merge sequence is budget-prefix-consistent. Returns (budget KB,
    synopsis) in the input order. A budget of 0 is served by merging
    down to the tag-only minimum. *)

val auto_split : ?ratios:float list -> total_kb:int ->
  sample:(Synopsis.Sealed.t -> float) -> Synopsis.Builder.t ->
  budget * Synopsis.Sealed.t
(** The automated budget-split search the paper sketches as future work
    (Sec. 4.3): given a unified total budget, build a synopsis at each
    candidate Bstr/(Bstr+Bval) ratio (default 0, 0.05, 0.1, 0.2,
    0.33, 0.5), score each with the [sample] workload-error functional (lower
    is better), and return the winning parameters and synopsis. The
    candidate builds share the greedy merge prefix, so the search costs
    little more than the deepest single build. *)
