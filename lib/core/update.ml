module B = Synopsis.Builder
module Metrics = Xc_util.Metrics
module Vs = Xc_vsumm.Value_summary
open Xc_xml

let src = Logs.Src.create "xcluster.update" ~doc:"incremental maintenance"

module Log = (val Logs.src_log src : Logs.LOG)

type mutation =
  | Insert of { parent : Label.t list; subtree : Node.t }
  | Delete of { parent : Label.t list; subtree : Node.t }

type stats = {
  applied : int;
  skipped : int;
  dirty : int;
  created : int;
  removed : int;
  repair_merges : int;
}

(* ---- deterministic path resolution ------------------------------------ *)

(* The child cluster of [host] labelled [label] with the largest extent
   (ties to the smallest sid) — the cluster a new element of that label
   most plausibly belongs to, chosen the same way on every run. *)
let child_with_label syn host label =
  let best = ref None in
  B.succ syn host (fun csid _avg ->
      match B.find syn csid with
      | exception Not_found -> ()
      | c ->
        if Label.equal (B.label c) label then begin
          match !best with
          | Some b
            when B.count b > B.count c
                 || (B.count b = B.count c && B.sid b < B.sid c) -> ()
          | _ -> best := Some c
        end);
  !best

let resolve_parent syn path =
  match path with
  | [] -> Error "Update: empty parent path"
  | first :: rest ->
    let root = B.root_node syn in
    if not (Label.equal (B.label root) first) then
      Error
        (Printf.sprintf "Update: parent path starts at %S, root is %S"
           (Label.to_string first)
           (Label.to_string (B.label root)))
    else
      let rec walk node = function
        | [] -> Ok node
        | l :: ls -> (
          match child_with_label syn node l with
          | Some c -> walk c ls
          | None ->
            Error
              (Printf.sprintf "Update: no cluster for path step %S"
                 (Label.to_string l)))
      in
      walk root rest

(* ---- pass 1: map mutations to accumulated deltas ----------------------- *)

type acc = {
  syn : B.t;
  count_deltas : (int, int) Hashtbl.t;          (* sid -> extent delta *)
  edge_deltas : (int * int, float) Hashtbl.t;   (* (p, c) -> total-children delta *)
  added_values : (int, Value.t list ref) Hashtbl.t;
  created_for : (int * Label.t, int) Hashtbl.t; (* (host sid, label) -> fresh sid *)
  mutable created : int list;
  mutable skipped : int;
}

let bump tbl key by =
  Hashtbl.replace tbl key (by + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let bumpf tbl key by =
  Hashtbl.replace tbl key (by +. Option.value ~default:0.0 (Hashtbl.find_opt tbl key))

(* Map one inserted element under the host cluster. Resolution prefers
   an existing child cluster; a novel label allocates a fresh zero-count
   cluster (remembered per (host, label) so sibling inserts share it —
   it has no edge yet, so [child_with_label] cannot see it). Mapping
   only accumulates; counts and edges are written in pass 2. *)
let rec place acc host (xml : Node.t) =
  let label = xml.Node.label in
  let c =
    match child_with_label acc.syn host label with
    | Some c -> c
    | None -> (
      match Hashtbl.find_opt acc.created_for (B.sid host, label) with
      | Some sid -> B.find acc.syn sid
      | None ->
        let c =
          B.add_node acc.syn ~label ~vtype:(Value.vtype xml.Node.value)
            ~count:0 ~vsumm:Vs.vnone
        in
        Hashtbl.replace acc.created_for (B.sid host, label) (B.sid c);
        acc.created <- B.sid c :: acc.created;
        c)
  in
  bump acc.count_deltas (B.sid c) 1;
  bumpf acc.edge_deltas (B.sid host, B.sid c) 1.0;
  (match xml.Node.value with
  | Value.Null -> ()
  | v ->
    let vs =
      match Hashtbl.find_opt acc.added_values (B.sid c) with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add acc.added_values (B.sid c) r;
        r
    in
    vs := v :: !vs);
  Array.iter (place acc c) xml.Node.children

(* Deletion never creates and never goes negative: a branch that
   resolves to no live cluster is skipped and counted. Deleted values
   are not subtracted from summaries (selectivity fractions stay; the
   count rescale in pass 2 handles magnitude). *)
let rec unplace acc host (xml : Node.t) =
  match child_with_label acc.syn host xml.Node.label with
  | None -> acc.skipped <- acc.skipped + 1
  | Some c ->
    bump acc.count_deltas (B.sid c) (-1);
    bumpf acc.edge_deltas (B.sid host, B.sid c) (-1.0);
    Array.iter (unplace acc c) xml.Node.children

(* ---- pass 2: write counts, edges, summaries ---------------------------- *)

(* Edge averages below 1e-9 are float residue of an exact cancellation
   (total/old * old - total); snap them to 0 so the edge is dropped. *)
let snap avg = if avg < 1e-9 then 0.0 else avg

let write_deltas acc =
  let syn = acc.syn in
  let changes =
    Hashtbl.fold (fun sid d l -> if d <> 0 then (sid, d) :: l else l)
      acc.count_deltas []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.filter_map (fun (sid, d) ->
           match B.find syn sid with
           | exception Not_found -> None
           | node ->
             let old_c = B.count node in
             let new_c = max 0 (old_c + d) in
             (* the root cluster never empties: an update stream cannot
                delete the document element *)
             if new_c = 0 && sid = B.root syn then None
             else Some (node, old_c, new_c))
  in
  let removals = List.filter (fun (_, _, new_c) -> new_c = 0) changes in
  let removed_set = Hashtbl.create 8 in
  List.iter (fun (n, _, _) -> Hashtbl.replace removed_set (B.sid n) ()) removals;
  (* compute every edge write from the pre-update state before touching
     anything: a count-changed parent rescales all its outgoing
     averages (stored avg = total/count), consuming any accumulated
     total delta on the way *)
  let consumed = Hashtbl.create 64 in
  let writes = ref [] in
  List.iter
    (fun (pnode, old_p, new_p) ->
      if new_p > 0 then begin
        let p = B.sid pnode in
        B.succ syn pnode (fun c avg ->
            Hashtbl.replace consumed (p, c) ();
            let dt =
              Option.value ~default:0.0 (Hashtbl.find_opt acc.edge_deltas (p, c))
            in
            let total = (avg *. float_of_int old_p) +. dt in
            writes := (p, c, snap (total /. float_of_int new_p)) :: !writes);
        (* edges that do not exist yet: created children of p *)
        Hashtbl.iter
          (fun (pp, c) dt ->
            if pp = p && not (Hashtbl.mem consumed (pp, c)) then begin
              Hashtbl.replace consumed (pp, c) ();
              writes := (pp, c, snap (dt /. float_of_int new_p)) :: !writes
            end)
          acc.edge_deltas
      end)
    changes;
  (* remaining edge deltas: the parent's count did not change, only the
     total did (e.g. the attachment edge of an insert batch) *)
  Hashtbl.iter
    (fun (p, c) dt ->
      if not (Hashtbl.mem consumed (p, c)) then
        match B.find syn p with
        | exception Not_found -> ()
        | pnode ->
          let cnt = B.count pnode in
          if cnt > 0 then
            writes :=
              (p, c, snap (B.child_avg pnode c +. (dt /. float_of_int cnt)))
              :: !writes)
    acc.edge_deltas;
  (* frontier parents are collected before edges move *)
  let frontier = Hashtbl.create 64 in
  let mark sid = if not (Hashtbl.mem removed_set sid) then Hashtbl.replace frontier sid () in
  List.iter
    (fun (node, _, _) ->
      mark (B.sid node);
      B.pred syn node mark)
    changes;
  List.iter mark acc.created;
  Hashtbl.iter (fun (p, c) _ -> mark p; mark c) acc.edge_deltas;
  (* write: survivor counts, then edges, then unlink the emptied *)
  List.iter
    (fun (node, _, new_c) -> if new_c > 0 then B.set_count syn node new_c)
    changes;
  List.iter
    (fun (p, c, avg) ->
      let avg = if Hashtbl.mem removed_set c then 0.0 else avg in
      B.set_edge syn ~parent:p ~child:c avg)
    (List.sort compare !writes);
  List.iter
    (fun (node, _, _) ->
      let sid = B.sid node in
      let outs = ref [] and ins = ref [] in
      B.succ syn node (fun c _ -> outs := c :: !outs);
      B.pred syn node (fun p -> ins := p :: !ins);
      List.iter (fun c -> B.set_edge syn ~parent:sid ~child:c 0.0) !outs;
      List.iter (fun p -> B.set_edge syn ~parent:p ~child:sid 0.0) !ins;
      B.remove_node syn sid)
    removals;
  (* fuse inserted values into the survivors' summaries *)
  let detail = Reference.default_detail in
  Hashtbl.iter
    (fun sid values ->
      if not (Hashtbl.mem removed_set sid) then
        match B.find syn sid with
        | exception Not_found -> ()
        | node ->
          let fresh =
            Vs.of_values ~hist_buckets:detail.Reference.hist_buckets
              ~pst_depth:detail.Reference.pst_depth
              ~pst_nodes:detail.Reference.pst_nodes
              ~top_terms:detail.Reference.top_terms !values
          in
          let old = B.vsumm node in
          let was_created = List.mem sid acc.created in
          let next =
            if was_created || old = Vs.Vnone then Some fresh
            else
              match (old, fresh) with
              | Vs.Vnum _, Vs.Vnum _
              | Vs.Vstr _, Vs.Vstr _
              | Vs.Vtext _, Vs.Vtext _ -> Some (Vs.fuse old fresh)
              | _ ->
                (* kind mismatch: keep the established summary rather
                   than corrupt it — counted, visible in metrics *)
                Metrics.incr Metrics.global "update.vsumm_kept";
                None
          in
          Option.iter
            (fun v ->
              B.set_vsumm syn node v;
              Hashtbl.replace frontier sid ())
            next)
    acc.added_values;
  let removed = List.length removals in
  (removed, Hashtbl.fold (fun sid () l -> sid :: l) frontier [])

(* ---- entry points ------------------------------------------------------ *)

let apply ~budget syn mutations =
  Metrics.time Metrics.global "update.apply" @@ fun () ->
  (* resolve every parent path against the untouched builder first: a
     malformed batch is rejected wholesale, nothing written *)
  let rec resolve_all = function
    | [] -> Ok []
    | m :: ms -> (
      let path = match m with Insert { parent; _ } | Delete { parent; _ } -> parent in
      match resolve_parent syn path with
      | Error _ as e -> e
      | Ok host -> Result.map (fun hosts -> host :: hosts) (resolve_all ms))
  in
  match resolve_all mutations with
  | Error _ as e -> e
  | Ok hosts ->
    Metrics.incr Metrics.global "update.mutations" ~by:(List.length mutations);
    let acc =
      { syn; count_deltas = Hashtbl.create 64; edge_deltas = Hashtbl.create 64;
        added_values = Hashtbl.create 16; created_for = Hashtbl.create 8;
        created = []; skipped = 0 }
    in
    List.iter2
      (fun m host ->
        match m with
        | Insert { subtree; _ } -> place acc host subtree
        | Delete { subtree; _ } -> unplace acc host subtree)
      mutations hosts;
    let removed, frontier = write_deltas acc in
    let created = List.length acc.created in
    Metrics.incr Metrics.global "update.created" ~by:created;
    Metrics.incr Metrics.global "update.removed" ~by:removed;
    Metrics.incr Metrics.global "update.skipped_branches" ~by:acc.skipped;
    let repair_merges =
      Metrics.time Metrics.global "update.repair" @@ fun () ->
      let merges = Build.phase1_repair budget syn ~frontier in
      Build.phase2_repair budget syn ~frontier;
      merges
    in
    Log.debug (fun m ->
        m "applied %d mutations: %d dirty, %d created, %d removed, %d repair merges"
          (List.length mutations) (List.length frontier) created removed
          repair_merges);
    (* bug guard: an update must leave a structurally valid builder *)
    (match B.validate syn with
    | Ok () ->
      Ok
        { applied = List.length mutations; skipped = acc.skipped;
          dirty = List.length frontier; created; removed; repair_merges }
    | Error e -> Error ("Update left an invalid synopsis (discard it): " ^ e))

let apply_and_seal ~budget syn mutations =
  Result.map (fun stats -> (stats, Synopsis.freeze syn)) (apply ~budget syn mutations)
