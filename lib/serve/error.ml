type protocol =
  | Truncated of { need : int }
  | Bad_tag of int
  | Bad_length of { len : int; what : string }
  | Checksum_mismatch of { stored : int; actual : int }
  | Closed

type t =
  | Codec of Xc_core.Codec.error
  | Protocol of protocol
  | Admission of string
  | Query of string
  | Unavailable of string
  | Io of string

let pp_protocol ppf = function
  | Truncated { need } ->
    Format.fprintf ppf "truncated frame (%d more bytes needed)" need
  | Bad_tag tag -> Format.fprintf ppf "unknown frame tag %d" tag
  | Bad_length { len; what } -> Format.fprintf ppf "implausible %s %d" what len
  | Checksum_mismatch { stored; actual } ->
    Format.fprintf ppf "frame checksum mismatch (stored %08x, computed %08x)"
      (stored land 0xFFFFFFFF) (actual land 0xFFFFFFFF)
  | Closed -> Format.fprintf ppf "connection closed"

let pp ppf = function
  | Codec e -> Format.fprintf ppf "codec: %a" Xc_core.Codec.pp_error e
  | Protocol p -> Format.fprintf ppf "protocol: %a" pp_protocol p
  | Admission msg -> Format.fprintf ppf "admission: %s" msg
  | Query msg -> Format.fprintf ppf "query: %s" msg
  | Unavailable msg -> Format.fprintf ppf "unavailable: %s" msg
  | Io msg -> Format.fprintf ppf "io: %s" msg

let to_string e = Format.asprintf "%a" pp e

(* Wire codes are protocol constants — renumbering breaks mixed-version
   deployments, so additions append. *)
let to_wire = function
  | Codec e -> (1, Xc_core.Codec.error_to_string e)
  | Protocol p -> (2, Format.asprintf "%a" pp_protocol p)
  | Admission msg -> (3, msg)
  | Query msg -> (4, msg)
  | Unavailable msg -> (5, msg)
  | Io msg -> (6, msg)

let of_wire code message =
  match code with
  | 1 -> Codec (Xc_core.Codec.Io message)
  | 2 -> Io ("remote protocol error: " ^ message)
  | 3 -> Admission message
  | 4 -> Query message
  | 5 -> Unavailable message
  | _ -> Io message
