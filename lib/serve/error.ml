type protocol =
  | Truncated of { need : int }
  | Bad_tag of int
  | Bad_length of { len : int; what : string }
  | Checksum_mismatch of { stored : int; actual : int }
  | Closed

type t =
  | Codec of Xc_core.Codec.error
  | Protocol of protocol
  | Admission of string
  | Query of string
  | Unavailable of string
  | Io of string
  | Timeout of { elapsed_ms : int }
  | Overloaded of { retry_after_ms : int }

let pp_protocol ppf = function
  | Truncated { need } ->
    Format.fprintf ppf "truncated frame (%d more bytes needed)" need
  | Bad_tag tag -> Format.fprintf ppf "unknown frame tag %d" tag
  | Bad_length { len; what } -> Format.fprintf ppf "implausible %s %d" what len
  | Checksum_mismatch { stored; actual } ->
    Format.fprintf ppf "frame checksum mismatch (stored %08x, computed %08x)"
      (stored land 0xFFFFFFFF) (actual land 0xFFFFFFFF)
  | Closed -> Format.fprintf ppf "connection closed"

let pp ppf = function
  | Codec e -> Format.fprintf ppf "codec: %a" Xc_core.Codec.pp_error e
  | Protocol p -> Format.fprintf ppf "protocol: %a" pp_protocol p
  | Admission msg -> Format.fprintf ppf "admission: %s" msg
  | Query msg -> Format.fprintf ppf "query: %s" msg
  | Unavailable msg -> Format.fprintf ppf "unavailable: %s" msg
  | Io msg -> Format.fprintf ppf "io: %s" msg
  | Timeout { elapsed_ms } ->
    Format.fprintf ppf "timeout: deadline exceeded after %d ms" elapsed_ms
  | Overloaded { retry_after_ms } ->
    Format.fprintf ppf "overloaded: retry after %d ms" retry_after_ms

let to_string e = Format.asprintf "%a" pp e

(* Wire codes are protocol constants — renumbering breaks mixed-version
   deployments, so additions append. The two variants that carry a
   number a peer must act on (a backoff hint, an elapsed budget) put
   that number first in the message as a bare decimal so [of_wire] can
   reconstruct the structured form, not just the category. *)
let to_wire = function
  | Codec e -> (1, Xc_core.Codec.error_to_string e)
  | Protocol p -> (2, Format.asprintf "%a" pp_protocol p)
  | Admission msg -> (3, msg)
  | Query msg -> (4, msg)
  | Unavailable msg -> (5, msg)
  | Io msg -> (6, msg)
  | Timeout { elapsed_ms } -> (7, string_of_int elapsed_ms)
  | Overloaded { retry_after_ms } -> (8, string_of_int retry_after_ms)

(* leading decimal of a wire message, for the structured codes; a
   damaged or foreign message falls back to [default] rather than
   failing the whole frame *)
let leading_int ~default message =
  let n = String.length message in
  let rec digits i = if i < n && message.[i] >= '0' && message.[i] <= '9' then digits (i + 1) else i in
  let stop = digits 0 in
  if stop = 0 then default
  else match int_of_string_opt (String.sub message 0 stop) with
    | Some v -> v
    | None -> default

let of_wire code message =
  match code with
  | 1 -> Codec (Xc_core.Codec.Io message)
  | 2 -> Io ("remote protocol error: " ^ message)
  | 3 -> Admission message
  | 4 -> Query message
  | 5 -> Unavailable message
  | 7 -> Timeout { elapsed_ms = leading_int ~default:0 message }
  | 8 -> Overloaded { retry_after_ms = leading_int ~default:100 message }
  | _ -> Io message
