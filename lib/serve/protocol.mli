(** The daemon's length-prefixed binary wire protocol.

    Every message travels as one {b frame} reusing the framed-section
    discipline of the codec's v2 container — tag, length, checksum,
    payload:

    {v
      +-----+----------------+-------------+------------------+
      | tag |    length      |   CRC-32    |     payload      |
      | u8  |  u64 BE bytes  | u32 BE      |  [length] bytes  |
      +-----+----------------+-------------+------------------+
    v}

    The CRC-32 ({!Xc_util.Crc32}) covers the payload, so a flipped bit
    or truncated read is detected before any payload field is parsed.
    Decoding is {b total}: hostile length fields are validated against
    {!max_payload} (and payload-internal lengths against the frame
    bound) before any allocation, and every way a frame can be wrong
    surfaces as an [Error] of {!Error.protocol}, never an exception.

    Integers ride as 8-byte big-endian two's complement (rejected
    outside OCaml's 63-bit [int] range, so a sign-bit flip in a frame
    field cannot alias), floats as their IEEE-754 bit pattern — the
    estimates a client reads are {b bit-identical} to what the daemon
    computed.

    Socket reads pass through the [serve.recv] / [client.recv]
    {!Xc_util.Fault} injection sites, so the fault harness can storm
    the socket boundary exactly like it storms the persistence layer. *)

(* ---- endpoints --------------------------------------------------------- *)

type endpoint =
  | Unix_sock of string  (** a filesystem socket path *)
  | Tcp of string * int  (** host, port *)

val endpoint_of_string : string -> (endpoint, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], or a bare path (taken as a Unix
    socket). *)

val endpoint_to_string : endpoint -> string

(* ---- messages ---------------------------------------------------------- *)

type request =
  | Estimate of { synopsis : string; query : string }
      (** one twig (source text) against the named synopsis *)
  | Estimate_batch of {
      synopsis : string;
      queries : string array;
      options : Options.t;
    }
  | List_synopses
  | Stats  (** the daemon's metrics snapshot as JSON *)
  | Update of { synopsis : string; path : string }
      (** swap the named synopsis to the repaired generation stored at
          [path] ({!Registry.swap_from}); answered with [Swapped] on
          success, and on a corrupt artifact with an error frame while
          the previous good generation keeps serving *)
  | Reload  (** re-scan every registered artifact *)
  | Shutdown  (** stop accepting; the daemon exits its loop cleanly *)
  | Ping
      (** readiness probe; answered with [Health], including (on an
          already-open connection) while the daemon is draining *)

type listed = {
  l_name : string;
  l_nodes : int;
  l_edges : int;
  l_bytes : int;  (** structural + value bytes *)
}

type health = {
  h_synopses : int;  (** names currently admitted in the registry *)
  h_generations : int;  (** sum of per-name generation counters *)
  h_queue : int;  (** connections parked in the pending queue *)
  h_inflight : int;  (** worker threads currently serving a connection *)
  h_uptime_s : float;
  h_draining : bool;  (** a graceful drain is in progress *)
}

type response =
  | Floats of float array
      (** estimates, positionally answering the request's queries *)
  | Synopses of listed array
  | Stats_json of string
  | Reloaded of { loaded : int; skipped : int }
  | Swapped of { generation : int }
      (** acknowledges [Update] with the name's new generation number *)
  | Done  (** acknowledges [Shutdown] *)
  | Health of health  (** acknowledges [Ping] *)
  | Error_frame of { code : int; message : string }
      (** see {!Error.to_wire} / {!Error.of_wire} *)

val max_payload : int
(** Upper bound on a frame payload; larger length fields are rejected
    as hostile before allocation. *)

(* ---- frame codec (pure) ------------------------------------------------ *)

val encode_request : request -> string
val encode_response : response -> string

val decode_request : string -> (request, Error.protocol) result
(** Decode one complete request frame. Total. *)

val decode_response : string -> (response, Error.protocol) result

(* ---- deadlines --------------------------------------------------------- *)

type deadline
(** An absolute wall-clock budget for one frame or one whole request.
    [SO_RCVTIMEO] alone cannot stop a slow-loris peer — every dribbled
    byte resets the socket timer — so the read loop also checks the
    deadline between partial reads: the socket timer bounds {e silence},
    the deadline bounds the {e total}. *)

val deadline_after : float -> deadline
(** [deadline_after budget_s] starts a budget of [budget_s] seconds
    from now. *)

val deadline_expired : ?site:string -> deadline -> bool
(** Whether the budget ran out. [site], when given, is a {!Xc_util.Fault}
    injection point ([serve.deadline]) that forces an expiry when an
    [eio]/[enospc] fault fires — the chaos harness triggers timeout
    handling without waiting out a real budget. *)

val deadline_elapsed_ms : deadline -> int
(** Milliseconds since the budget started (for {!Error.Timeout}). *)

(* ---- socket transport -------------------------------------------------- *)

val send : ?site:string -> Unix.file_descr -> string -> (unit, Error.t) result
(** Write a whole encoded frame. Never raises ([EPIPE] and friends
    become [Error (Io _)]). A write blocked past [SO_SNDTIMEO] becomes
    [Error (Timeout _)] — the peer stopped draining its socket. [site],
    when given, is a write-path fault injection point ([serve.send]). *)

val recv_request :
  ?deadline:deadline ->
  ?limit:int ->
  Unix.file_descr ->
  (request option, Error.t) result
(** Read one frame off the socket (site [serve.recv]) and decode it.
    [Ok None] is a clean end-of-stream at a frame boundary — the normal
    way a client hangs up. [deadline] bounds the whole frame (checked at
    fault site [serve.deadline]; expiry and [SO_RCVTIMEO]'s [EAGAIN]
    both surface as [Error (Timeout _)]). [limit], when below
    {!max_payload}, refuses larger frames with [Error (Admission _)]
    before the payload allocation; the stream is desynchronized after
    such a refusal, so the caller must close the connection. *)

val recv_response :
  ?deadline:deadline -> Unix.file_descr -> (response, Error.t) result
(** Read one response frame (site [client.recv]); end-of-stream here is
    [Error (Protocol Closed)] — a response was owed. [deadline] bounds
    the whole frame. *)
