module Metrics = Xc_util.Metrics
module Fault = Xc_util.Fault

type t = {
  endpoint : Protocol.endpoint;
  timeout_s : float option;
  mutable fd : Unix.file_descr option; (* None once closed *)
}

let io fmt = Printf.ksprintf (fun m -> Error (Error.Io m)) fmt

(* Name resolution is a typed failure, mirroring the daemon's
   [bind_endpoint]: a host that does not resolve must not silently
   become the loopback address — estimates answered by whatever happens
   to listen there would be wrong with no error anywhere. *)
let resolve endpoint =
  match endpoint with
  | Protocol.Unix_sock path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Protocol.Tcp (host, port) -> (
    match Unix.inet_addr_of_string host with
    | inet -> Ok (Unix.PF_INET, Unix.ADDR_INET (inet, port))
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        io "connect %s: unknown host %S" (Protocol.endpoint_to_string endpoint) host
      | h -> Ok (Unix.PF_INET, Unix.ADDR_INET (h.Unix.h_addr_list.(0), port))))

(* Connect with an optional budget: non-blocking connect, then select
   for writability under the budget, then the socket's own
   SO_RCVTIMEO/SO_SNDTIMEO take over for the request/response I/O.
   [client.connect] is the chaos harness's injection site. *)
let connect_fd endpoint timeout_s =
  match resolve endpoint with
  | Error _ as e -> e
  | Ok (domain, addr) -> (
    let ep = Protocol.endpoint_to_string endpoint in
    match Fault.raise_io ~site:"client.connect" with
    | exception Fault.Injected { kind; _ } ->
      Metrics.incr Metrics.global "client.connect_error";
      io "connect %s: injected %s" ep (Fault.kind_name kind)
    | () -> (
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      let fail e =
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        Metrics.incr Metrics.global "client.connect_error";
        io "connect %s: %s" ep (Unix.error_message e)
      in
      let finish () =
        (match timeout_s with
        | Some s -> (
          try
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
            Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
          with Unix.Unix_error (_, _, _) -> ())
        | None -> ());
        Ok fd
      in
      match timeout_s with
      | None -> (
        match Unix.connect fd addr with
        | () -> finish ()
        | exception Unix.Unix_error (e, _, _) -> fail e)
      | Some budget -> (
        Unix.set_nonblock fd;
        let connected =
          match Unix.connect fd addr with
          | () -> Ok true
          | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> Ok false
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            (* a Unix socket with a full backlog: the connect never
               started, so waiting for writability would lie. Typed
               transient failure — with_retry's backoff is the queue. *)
            Error Unix.ECONNREFUSED
          | exception Unix.Unix_error (e, _, _) -> Error e
        in
        match connected with
        | Error e -> fail e
        | Ok completed -> (
          let pending_ok =
            completed
            ||
            match Unix.select [] [ fd ] [] budget with
            | _, [ _ ], _ -> true
            | _ -> false
            | exception Unix.Unix_error (_, _, _) -> false
          in
          if not pending_ok then begin
            (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
            Metrics.incr Metrics.global "client.connect_error";
            Error (Error.Timeout { elapsed_ms = int_of_float (budget *. 1000.0) })
          end
          else
            match Unix.getsockopt_error fd with
            | Some e -> fail e
            | None ->
              Unix.clear_nonblock fd;
              finish ()))))

let connect ?timeout_s endpoint =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match connect_fd endpoint timeout_s with
  | Error _ as e -> e
  | Ok fd -> Ok { endpoint; timeout_s; fd = Some fd }

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())

(* One round trip; a server-side error frame comes back through
   Error.of_wire so the caller matches the same variant everywhere. *)
let attempt t fd req =
  let deadline () = Option.map Protocol.deadline_after t.timeout_s in
  match Protocol.send fd (Protocol.encode_request req) with
  | Error send_err -> (
    (* the daemon may have answered-and-closed before the request was
       even written — a shed connection's Overloaded frame, an evicted
       peer's Timeout frame — which turns the write into EPIPE while
       the frame sits readable in the receive buffer. Surface the
       daemon's verdict, not the write's symptom. *)
    match Protocol.recv_response ?deadline:(deadline ()) fd with
    | Ok (Protocol.Error_frame { code; message }) ->
      Error (Error.of_wire code message)
    | Ok _ | Error _ -> Error send_err)
  | Ok () -> (
    match Protocol.recv_response ?deadline:(deadline ()) fd with
    | Error _ as e -> e
    | Ok (Protocol.Error_frame { code; message }) ->
      Error (Error.of_wire code message)
    | Ok resp -> Ok resp)

(* [idempotent] requests may transparently reconnect once when the
   connection turns out dead (the daemon evicts idle peers; a drain
   closes keep-alive connections between requests). Non-idempotent
   requests — Update, Shutdown — never do: the first attempt may have
   been applied before the connection died. *)
let round_trip ?(idempotent = false) t req =
  match t.fd with
  | None -> Error (Error.Io "client is closed")
  | Some fd -> (
    match attempt t fd req with
    | Error (Error.Io _ | Error.Protocol Error.Closed) when idempotent -> (
      Metrics.incr Metrics.global "client.reconnect";
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      t.fd <- None;
      match connect_fd t.endpoint t.timeout_s with
      | Error _ as e -> e
      | Ok fd ->
        t.fd <- Some fd;
        attempt t fd req)
    | r -> r)

let unexpected () = Error (Error.Io "unexpected response kind")

let estimate t ~synopsis ~query =
  match round_trip ~idempotent:true t (Protocol.Estimate { synopsis; query }) with
  | Ok (Protocol.Floats [| v |]) -> Ok v
  | Ok _ -> unexpected ()
  | Error _ as e -> e

let estimate_batch t ?(options = Options.default) ~synopsis queries =
  match
    round_trip ~idempotent:true t
      (Protocol.Estimate_batch { synopsis; queries; options })
  with
  | Ok (Protocol.Floats r) ->
    if Array.length r = Array.length queries then Ok r else unexpected ()
  | Ok _ -> unexpected ()
  | Error _ as e -> e

let list_synopses t =
  match round_trip ~idempotent:true t Protocol.List_synopses with
  | Ok (Protocol.Synopses ls) -> Ok ls
  | Ok _ -> unexpected ()
  | Error _ as e -> e

let stats t =
  match round_trip ~idempotent:true t Protocol.Stats with
  | Ok (Protocol.Stats_json json) -> Ok json
  | Ok _ -> unexpected ()
  | Error _ as e -> e

let ping t =
  match round_trip ~idempotent:true t Protocol.Ping with
  | Ok (Protocol.Health h) -> Ok h
  | Ok _ -> unexpected ()
  | Error _ as e -> e

let update t ~synopsis ~path =
  match round_trip t (Protocol.Update { synopsis; path }) with
  | Ok (Protocol.Swapped { generation }) -> Ok generation
  | Ok _ -> unexpected ()
  | Error _ as e -> e

let reload t =
  match round_trip ~idempotent:true t Protocol.Reload with
  | Ok (Protocol.Reloaded { loaded; skipped }) ->
    Ok { Registry.loaded; skipped }
  | Ok _ -> unexpected ()
  | Error _ as e -> e

let shutdown t =
  match round_trip t Protocol.Shutdown with
  | Ok Protocol.Done -> Ok ()
  | Ok _ -> unexpected ()
  | Error _ as e -> e

(* ---- retry policy ------------------------------------------------------- *)

let transient = function
  | Error.Overloaded _ | Error.Io _ | Error.Timeout _
  | Error.Protocol Error.Closed ->
    true
  | Error.Codec _ | Error.Protocol _ | Error.Admission _ | Error.Query _
  | Error.Unavailable _ ->
    false

let with_retry ?(attempts = 5) ?(base_delay_s = 0.01) ?(max_delay_s = 0.5)
    ?(seed = 0) ?timeout_s endpoint f =
  (* deterministic jitter: two clients sharing a seed replay the same
     backoff schedule, which is what the seeded chaos runs need *)
  let rng = Random.State.make [| seed; 0x9e37 |] in
  let backoff k hint_ms =
    let exp =
      Float.min max_delay_s (base_delay_s *. Float.pow 2.0 (float_of_int k))
    in
    let jittered = exp *. (0.5 +. Random.State.float rng 0.5) in
    (* the daemon's Overloaded hint is a floor, not a cap: it knows how
       long its queue needs to move *)
    Unix.sleepf (Float.max jittered (float_of_int hint_ms /. 1000.0))
  in
  let rec go k =
    let r =
      match connect ?timeout_s endpoint with
      | Error e -> Error e
      | Ok c -> Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
    in
    match r with
    | Error e when k + 1 < attempts && transient e ->
      Metrics.incr Metrics.global "client.retry";
      let hint =
        match e with
        | Error.Overloaded { retry_after_ms } -> retry_after_ms
        | _ -> 0
      in
      backoff k hint;
      go (k + 1)
    | r -> r
  in
  go 0
