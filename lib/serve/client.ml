type t = { fd : Unix.file_descr; mutable closed : bool }

let connect endpoint =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let domain, addr =
    match endpoint with
    | Protocol.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Protocol.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } -> Unix.inet_addr_loopback
          | h -> h.Unix.h_addr_list.(0)
          | exception Not_found -> Unix.inet_addr_loopback)
      in
      (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  in
  match
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (try Unix.connect fd addr
     with e ->
       Unix.close fd;
       raise e);
    fd
  with
  | fd -> Ok { fd; closed = false }
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Error.Io
         (Printf.sprintf "connect %s: %s"
            (Protocol.endpoint_to_string endpoint)
            (Unix.error_message e)))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
  end

(* One round trip; a server-side error frame comes back through
   Error.of_wire so the caller matches the same variant everywhere. *)
let round_trip t req =
  if t.closed then Error (Error.Io "client is closed")
  else
    match Protocol.send t.fd (Protocol.encode_request req) with
    | Error _ as e -> e
    | Ok () -> (
      match Protocol.recv_response t.fd with
      | Error _ as e -> e
      | Ok (Protocol.Error_frame { code; message }) ->
        Error (Error.of_wire code message)
      | Ok resp -> Ok resp)

let unexpected () = Error (Error.Io "unexpected response kind")

let estimate t ~synopsis ~query =
  match round_trip t (Protocol.Estimate { synopsis; query }) with
  | Ok (Protocol.Floats [| v |]) -> Ok v
  | Ok _ -> unexpected ()
  | Error _ as e -> e

let estimate_batch t ?(options = Options.default) ~synopsis queries =
  match round_trip t (Protocol.Estimate_batch { synopsis; queries; options }) with
  | Ok (Protocol.Floats r) ->
    if Array.length r = Array.length queries then Ok r else unexpected ()
  | Ok _ -> unexpected ()
  | Error _ as e -> e

let list_synopses t =
  match round_trip t Protocol.List_synopses with
  | Ok (Protocol.Synopses ls) -> Ok ls
  | Ok _ -> unexpected ()
  | Error _ as e -> e

let stats t =
  match round_trip t Protocol.Stats with
  | Ok (Protocol.Stats_json json) -> Ok json
  | Ok _ -> unexpected ()
  | Error _ as e -> e

let update t ~synopsis ~path =
  match round_trip t (Protocol.Update { synopsis; path }) with
  | Ok (Protocol.Swapped { generation }) -> Ok generation
  | Ok _ -> unexpected ()
  | Error _ as e -> e

let reload t =
  match round_trip t Protocol.Reload with
  | Ok (Protocol.Reloaded { loaded; skipped }) ->
    Ok { Registry.loaded; skipped }
  | Ok _ -> unexpected ()
  | Error _ as e -> e

let shutdown t =
  match round_trip t Protocol.Shutdown with
  | Ok Protocol.Done -> Ok ()
  | Ok _ -> unexpected ()
  | Error _ as e -> e
