(** The estimation daemon: one warm process, many synopses, zero
    per-request prepare cost — hardened for concurrent, hostile, and
    overloaded traffic.

    {!run} binds an endpoint (Unix or TCP socket) and serves
    connections from a bounded pool of OS worker threads fed by a
    single accept loop. Workers overlap on blocking socket I/O (reads
    release the runtime lock), while {e evaluation} is single-flight
    behind one dispatch mutex: batch engines keep per-domain arenas in
    [Domain.DLS], so two threads of one domain evaluating concurrently
    would share arenas mid-sweep and break bit-identity. The answers a
    client reads are therefore byte-for-byte the answers a sequential
    daemon would have produced, in every interleaving; parallelism
    inside a batch still comes from {!Xc_util.Par} domain sharding.

    {b Time.} Every connection carries [SO_RCVTIMEO]/[SO_SNDTIMEO]
    silence bounds plus a per-request wall-clock budget
    ([request_budget_s], enforced between partial reads — the one thing
    a slow-loris drip defeats socket timers with). A peer that trips
    either gets a typed {!Error.Timeout} frame (best-effort) and is
    evicted; [daemon.timeouts] and [daemon.evicted] count it. The
    budget clock starts when the daemon begins waiting for the frame,
    so it also bounds how long an idle keep-alive connection may hold a
    worker: effectively [min recv_timeout_s request_budget_s].

    {b Load.} Admission control sheds work instead of queueing it
    unboundedly: accepted connections wait in a queue of at most
    [max_pending]; when it is full the daemon answers
    {!Error.Overloaded} with its [retry_after_ms] hint and closes
    ([daemon.shed]). Oversized requests are refused with
    {!Error.Admission} — frames above [options.max_frame_bytes] before
    their payload is even read, batches above [options.max_batch]
    before any query parses. Those are permanent refusals, deliberately
    distinct from [Overloaded] so {!Client.with_retry} does not spin on
    a request that can never succeed.

    {b Drain.} {!stop} (or a [Shutdown] frame) wakes the accept loop
    through a self-pipe, the listener closes (new connections are
    refused at the OS), queued-but-unserved connections are dropped,
    and in-flight requests finish under [drain_timeout_s]; past the
    deadline the remaining peers' sockets are shut down so workers fail
    fast. [daemon.drain_ms] records the wall time. A [Ping] request is
    answered with a [Health] frame (admitted synopses, total
    generations, queue depth, in-flight count, uptime, draining flag)
    at any point before its connection closes.

    {b Failure contract.} The daemon never exits on a per-request
    failure: unknown synopses, unparsable queries, strict-mode
    refusals, and internal evaluation errors are answered with typed
    error frames; a protocol violation on a connection (damaged frame,
    hostile length, CRC mismatch) is answered best-effort and the
    connection closes (framing cannot resync); accept failures are
    counted ([daemon.accept_error]) and backed off after repeated
    occurrence instead of busy-spinning on e.g. [EMFILE]. Corrupt
    artifacts at load/reload time are skipped and counted by the
    {!Registry}. Chaos reaches this plane through the
    {!Xc_util.Fault} sites [serve.accept], [serve.recv], [serve.send],
    and [serve.deadline]. The only ways out of {!run} are a [Shutdown]
    frame and {!stop}.

    Counters/timers: [daemon.conns], [daemon.requests],
    [daemon.request_error], [daemon.proto_error], [daemon.timeouts],
    [daemon.evicted], [daemon.shed], [daemon.accept_error], histogram
    [daemon.request_us], drain gauge [daemon.drain_ms]. *)

type config = {
  endpoint : Protocol.endpoint;
  max_engines : int;  (** bound of the registry's engine LRU *)
  options : Options.t;
      (** defaults for requests that do not pin their own: [domains]
          applies when a request carries [None]; [fallback] applies to
          single-estimate requests; [max_batch] / [max_frame_bytes] are
          the daemon's admission limits (a request cannot raise them) *)
  workers : int;
      (** worker-thread pool size — the number of connections served
          concurrently; at least 1 *)
  backlog : int;  (** [listen] backlog *)
  max_pending : int;
      (** accepted connections waiting for a worker beyond which new
          ones are shed with {!Error.Overloaded} *)
  recv_timeout_s : float;  (** [SO_RCVTIMEO]: max silence within a read *)
  send_timeout_s : float;  (** [SO_SNDTIMEO]: max stall within a write *)
  request_budget_s : float;
      (** wall-clock budget for receiving one complete request frame —
          the slow-loris bound *)
  drain_timeout_s : float;
      (** how long {!stop} waits for in-flight requests before shutting
          the remaining sockets *)
  retry_after_ms : int;
      (** backoff hint carried by {!Error.Overloaded} shed frames *)
}

val default_config : config
(** Unix socket ["xcluster.sock"] in the working directory, 8 engines,
    {!Options.default}; [workers] from [XC_SERVE_WORKERS] (default 4),
    [backlog] from [XC_SERVE_BACKLOG] (default 64), [max_pending] 64,
    30 s socket timeouts and request budget, 5 s drain, 100 ms retry
    hint. *)

val run :
  ?config:config ->
  ?on_ready:(Protocol.endpoint -> unit) ->
  Registry.t ->
  unit
(** Load the registry (corrupt artifacts skipped and counted), bind,
    start the worker pool, call [on_ready] once the socket accepts
    connections, and serve until a [Shutdown] frame arrives or {!stop}
    is called — then drain gracefully and join every worker before
    returning. Blocks the calling domain.
    @raise Failure if the endpoint cannot be bound (that one is fatal:
    there is no daemon without a socket). *)

val stop : unit -> unit
(** Ask a daemon running in this process to begin its graceful drain.
    Wakes an accept loop blocked in [select] through a self-pipe, so it
    is safe (and effective) from another thread, another domain, or a
    signal handler. *)
