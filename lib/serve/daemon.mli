(** The estimation daemon: one warm process, many synopses, zero
    per-request prepare cost.

    {!run} binds an endpoint (Unix or TCP socket), then serves
    connections sequentially: each connection is a stream of request
    frames ({!Protocol}) answered in order. Batch evaluation inside a
    request is {!Xc_util.Par}-sharded across domains, so a single
    daemon saturates the machine's cores on batch traffic while the
    accept loop stays single-threaded and deterministic.

    {b Failure contract.} The daemon never exits on a per-request
    failure: unknown synopses, unparsable queries, strict-mode
    refusals, and internal evaluation errors are answered with typed
    error frames; a protocol violation on a connection (damaged frame,
    hostile length, CRC mismatch) is answered best-effort and the
    connection is closed (framing cannot resync), the listener keeps
    accepting. Corrupt artifacts at load/reload time are skipped and
    counted by the {!Registry}. The only ways out of {!run} are a
    [Shutdown] frame and {!stop}.

    Counters/timers: [daemon.conns], [daemon.requests],
    [daemon.request_error], [daemon.proto_error], histogram
    [daemon.request_us]. *)

type config = {
  endpoint : Protocol.endpoint;
  max_engines : int;  (** bound of the registry's engine LRU *)
  options : Options.t;
      (** defaults for requests that do not pin their own: [domains]
          applies when a request carries [None]; [fallback] applies to
          single-estimate requests *)
}

val default_config : config
(** Unix socket ["xcluster.sock"] in the working directory, 8 engines,
    {!Options.default}. *)

val run :
  ?config:config ->
  ?on_ready:(Protocol.endpoint -> unit) ->
  Registry.t ->
  unit
(** Load the registry (corrupt artifacts skipped and counted), bind,
    call [on_ready] once the socket accepts connections, and serve
    until a [Shutdown] frame arrives. Blocks the calling domain.
    @raise Failure if the endpoint cannot be bound (that one is fatal:
    there is no daemon without a socket). *)

val stop : unit -> unit
(** Ask a daemon running in this process to exit its accept loop after
    the current connection (for tests driving the loop from another
    domain; signal-handler safe). *)
