(** The daemon's named synopsis registry.

    A registry maps tenant-facing names to sealed synopses loaded from
    disk artifacts. Admission is {b verifying}: every artifact goes
    through the crash-safe codec's total decoder, and one that fails —
    corrupt, truncated, foreign — is {b skipped and counted}
    ([serve.load_error] in {!Xc_util.Metrics.global}) instead of
    killing the process; a multi-tenant daemon keeps serving its other
    synopses. On {!load} (a reload), a name whose artifact has gone bad
    {e keeps its previously admitted synopsis} — serving continuity
    beats freshness for an artifact that no longer verifies.

    Each admitted synopsis gets a {!Xc_core.Plan.Batch} engine on
    first use, held in a bounded {!Lru}: engines carry transition
    matrices and compiled queries, so the engine table — not the
    synopsis table — is the memory-bounded resource. Eviction only
    drops cached compilation work; the next request rebuilds it.

    {b Generations.} Every admission of {e new content} for a name
    (a different sealed uid) bumps that name's generation counter.
    {!swap} is the incremental-maintenance commit: it replaces the
    named synopsis with its repaired generation in a single table
    write, so a reader resolving the name observes either the old
    complete generation or the new one, never a half-repaired mixture;
    in-flight batches hold the [Sealed.t] they resolved and finish on
    the generation they started with. Retiring a generation also drops
    its registry engine and the process-wide {!Engine} caches keyed on
    its uid — stale engines are freed, never reused, because every
    {!Xc_core.Synopsis.freeze} carries a fresh uid.

    Counters: [serve.load_ok], [serve.load_error], [serve.engine_admit],
    [serve.engine_evict], [serve.engine_hit], [serve.swap],
    [serve.swap_skipped]. *)

type t

val create : ?max_engines:int -> unit -> t
(** [max_engines] bounds the batch-engine LRU (default 8, min 1). *)

(* ---- sources ----------------------------------------------------------- *)

val add_source : t -> name:string -> path:string -> unit
(** Register an artifact under [name] (replacing any previous source of
    that name). Takes effect on the next {!load}. *)

val add_dir : t -> string -> (unit, Error.t) result
(** Register every [*.syn] file in a directory, named by basename
    without the extension. An unreadable directory is an [Error]; the
    files themselves are only probed at {!load} time. *)

val sources : t -> (string * string) list
(** [(name, path)], sorted by name. *)

(* ---- admission --------------------------------------------------------- *)

type load_report = { loaded : int; skipped : int }

val load : t -> load_report
(** (Re)load every source through {!Xc_core.Codec.load}: a verified
    artifact is admitted (replacing the previous synopsis of that name,
    and dropping its cached engine if the content changed). A failing
    artifact is {b skipped and counted} ([serve.load_error]), and the
    name {e keeps serving its previously admitted generation} — a
    reload can never downgrade a tenant from a good synopsis to
    nothing. Only the report's [skipped] field and the counter reveal
    the failure. *)

val load_one : t -> name:string -> path:string -> (unit, Error.t) result
(** Verify-then-admit just this artifact. The source registration also
    only happens on success: a corrupt [path] leaves both the previous
    admission {e and} the previous source of [name] untouched (so a
    later {!load} still reloads from the last good path), returns the
    codec error, and counts [serve.load_error]. *)

(* ---- generation swap ---------------------------------------------------- *)

val swap : t -> name:string -> Xc_core.Synopsis.Sealed.t -> int
(** Atomically replace the named synopsis with a repaired generation
    (see {e Generations} above) and return the new generation number.
    Also counts [serve.swap]. The synopsis is already in memory, so
    this never fails; first use of a name admits generation 1. *)

val swap_from : t -> name:string -> path:string -> (int, Error.t) result
(** {!swap} from a disk artifact: verify-load [path], then swap it in
    and remember [path] as the name's source. On a corrupt artifact
    the previous good generation keeps serving — nothing is replaced,
    [serve.load_error] and [serve.swap_skipped] are counted, and the
    codec error is returned. This is the daemon's [update] verb. *)

val generation : t -> string -> int
(** How many distinct generations of content this name has admitted;
    0 for a name never admitted. *)

val generations_total : t -> int
(** Sum of {!generation} over every known name — the daemon's [Health]
    frame reports it so probes can watch content churn without walking
    the name list. *)

(* ---- lookup ------------------------------------------------------------ *)

val find : t -> string -> Xc_core.Synopsis.Sealed.t option
val names : t -> string list
(** Admitted names, sorted. *)

val n_admitted : t -> int

val engine :
  t -> string -> (Xc_core.Synopsis.Sealed.t * Xc_core.Plan.Batch.t, Error.t) result
(** The named synopsis and its batch engine, admitting the engine into
    the LRU (possibly evicting another) on first use. [Error
    (Admission _)] for a name the registry does not hold. *)

val engine_names : t -> string list
(** Engines currently resident, most recently used first (the LRU
    order tests assert). *)

val max_engines : t -> int
