(** The daemon's named synopsis registry.

    A registry maps tenant-facing names to sealed synopses loaded from
    disk artifacts. Admission is {b verifying}: every artifact goes
    through the crash-safe codec's total decoder, and one that fails —
    corrupt, truncated, foreign — is {b skipped and counted}
    ([serve.load_error] in {!Xc_util.Metrics.global}) instead of
    killing the process; a multi-tenant daemon keeps serving its other
    synopses. On {!load} (a reload), a name whose artifact has gone bad
    {e keeps its previously admitted synopsis} — serving continuity
    beats freshness for an artifact that no longer verifies.

    Each admitted synopsis gets a {!Xc_core.Plan.Batch} engine on
    first use, held in a bounded {!Lru}: engines carry transition
    matrices and compiled queries, so the engine table — not the
    synopsis table — is the memory-bounded resource. Eviction only
    drops cached compilation work; the next request rebuilds it.

    Counters: [serve.load_ok], [serve.load_error], [serve.engine_admit],
    [serve.engine_evict], [serve.engine_hit]. *)

type t

val create : ?max_engines:int -> unit -> t
(** [max_engines] bounds the batch-engine LRU (default 8, min 1). *)

(* ---- sources ----------------------------------------------------------- *)

val add_source : t -> name:string -> path:string -> unit
(** Register an artifact under [name] (replacing any previous source of
    that name). Takes effect on the next {!load}. *)

val add_dir : t -> string -> (unit, Error.t) result
(** Register every [*.syn] file in a directory, named by basename
    without the extension. An unreadable directory is an [Error]; the
    files themselves are only probed at {!load} time. *)

val sources : t -> (string * string) list
(** [(name, path)], sorted by name. *)

(* ---- admission --------------------------------------------------------- *)

type load_report = { loaded : int; skipped : int }

val load : t -> load_report
(** (Re)load every source through {!Xc_core.Codec.load}: a verified
    artifact is admitted (replacing the previous synopsis of that name,
    and dropping its cached engine if the content changed); a failing
    one is skipped and counted, keeping any previously admitted
    synopsis for that name. *)

val load_one : t -> name:string -> path:string -> (unit, Error.t) result
(** {!add_source} + admit just that artifact now. *)

(* ---- lookup ------------------------------------------------------------ *)

val find : t -> string -> Xc_core.Synopsis.Sealed.t option
val names : t -> string list
(** Admitted names, sorted. *)

val n_admitted : t -> int

val engine :
  t -> string -> (Xc_core.Synopsis.Sealed.t * Xc_core.Plan.Batch.t, Error.t) result
(** The named synopsis and its batch engine, admitting the engine into
    the LRU (possibly evicting another) on first use. [Error
    (Admission _)] for a name the registry does not hold. *)

val engine_names : t -> string list
(** Engines currently resident, most recently used first (the LRU
    order tests assert). *)

val max_engines : t -> int
