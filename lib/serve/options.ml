type fallback = Degrade | Strict

type t = { domains : int option; fallback : fallback; cohort : bool }

let default = { domains = None; fallback = Degrade; cohort = true }

let make ?domains ?(fallback = Degrade) ?(cohort = true) () =
  (match domains with
  | Some d when d <= 0 ->
    invalid_arg "Xc_serve.Options.make: domains must be positive (omit it for the XC_DOMAINS default)"
  | _ -> ());
  { domains; fallback; cohort }

let pp ppf t =
  Format.fprintf ppf "{domains=%s; fallback=%s; cohort=%b}"
    (match t.domains with None -> "env" | Some d -> string_of_int d)
    (match t.fallback with Degrade -> "degrade" | Strict -> "strict")
    t.cohort
