type fallback = Degrade | Strict

type t = {
  domains : int option;
  fallback : fallback;
  cohort : bool;
  max_batch : int;
  max_frame_bytes : int;
}

let default_max_batch = 8192
let default_max_frame_bytes = 1 lsl 26

let default =
  {
    domains = None;
    fallback = Degrade;
    cohort = true;
    max_batch = default_max_batch;
    max_frame_bytes = default_max_frame_bytes;
  }

let make ?domains ?(fallback = Degrade) ?(cohort = true)
    ?(max_batch = default_max_batch)
    ?(max_frame_bytes = default_max_frame_bytes) () =
  (match domains with
  | Some d when d <= 0 ->
    invalid_arg "Xc_serve.Options.make: domains must be positive (omit it for the XC_DOMAINS default)"
  | _ -> ());
  if max_batch <= 0 then
    invalid_arg "Xc_serve.Options.make: max_batch must be positive";
  if max_frame_bytes <= 0 then
    invalid_arg "Xc_serve.Options.make: max_frame_bytes must be positive";
  { domains; fallback; cohort; max_batch; max_frame_bytes }

let pp ppf t =
  Format.fprintf ppf "{domains=%s; fallback=%s; cohort=%b; max_batch=%d; max_frame_bytes=%d}"
    (match t.domains with None -> "env" | Some d -> string_of_int d)
    (match t.fallback with Degrade -> "degrade" | Strict -> "strict")
    t.cohort t.max_batch t.max_frame_bytes
