(** Serving options.

    One record threaded from the client API through the daemon down to
    the batch evaluator, replacing the old loose [?domains:int]
    convention where [<= 0] silently meant "read the [XC_DOMAINS]
    environment variable". Here the sentinel is the type:
    [domains = None] defers to the process default
    ({!Xc_util.Par.env_domains}), [Some d] requests exactly [d]
    workers. *)

type fallback =
  | Degrade
      (** on a fast-path failure, fall back to slower but bit-identical
          estimation (cached per-query plans, then the uncached
          estimator) and bump the [serve.fallback] /
          [serve.batch_fallback] counters — the answer is always
          produced *)
  | Strict
      (** on a fast-path failure, return {!Error.Unavailable} instead
          of degrading — for callers that would rather re-route than
          absorb a latency cliff *)

type t = {
  domains : int option;
      (** batch evaluation worker count; [None] means the [XC_DOMAINS]
          environment default *)
  fallback : fallback;
  cohort : bool;
      (** matrix-major cohort evaluation for batch estimates (see
          {!Xc_core.Plan.Batch.run_prepared}); [false] selects the
          query-major reference walk. Both are bit-identical to the
          uncached estimator — this switches the sweep order, not the
          answer. *)
  max_batch : int;
      (** admission limit on queries per [Estimate_batch] request; an
          oversized batch is refused with {!Error.Admission} (a
          permanent error — retrying the same batch cannot succeed, so
          it is deliberately {e not} {!Error.Overloaded}) *)
  max_frame_bytes : int;
      (** admission limit on a single wire frame's payload, clamped to
          the protocol ceiling ({!Protocol.max_payload}); an oversized
          frame is refused with {!Error.Admission} before the payload
          is read *)
}

val default : t
(** [{ domains = None; fallback = Degrade; cohort = true;
      max_batch = 8192; max_frame_bytes = 1 lsl 26 }]. *)

val make :
  ?domains:int ->
  ?fallback:fallback ->
  ?cohort:bool ->
  ?max_batch:int ->
  ?max_frame_bytes:int ->
  unit ->
  t
(** [domains], when given, must be positive; [max_batch] and
    [max_frame_bytes] must be positive.
    @raise Invalid_argument on [domains <= 0] — the old "non-positive
    means environment" sentinel is exactly what this record retires —
    and on non-positive limits. *)

val pp : Format.formatter -> t -> unit
