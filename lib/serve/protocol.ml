module Crc32 = Xc_util.Crc32
module Fault = Xc_util.Fault

(* ---- endpoints --------------------------------------------------------- *)

type endpoint = Unix_sock of string | Tcp of string * int

let endpoint_of_string s =
  let tcp rest =
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "tcp endpoint %S needs HOST:PORT" s)
    | Some i -> (
      let host = String.sub rest 0 i in
      let port = String.sub rest (i + 1) (String.length rest - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad port in tcp endpoint %S" s))
  in
  if String.length s = 0 then Error "empty endpoint"
  else if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_sock (String.sub s 5 (String.length s - 5)))
  else if String.length s > 4 && String.sub s 0 4 = "tcp:" then
    tcp (String.sub s 4 (String.length s - 4))
  else Ok (Unix_sock s)

let endpoint_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* ---- messages ---------------------------------------------------------- *)

type request =
  | Estimate of { synopsis : string; query : string }
  | Estimate_batch of {
      synopsis : string;
      queries : string array;
      options : Options.t;
    }
  | List_synopses
  | Stats
  | Update of { synopsis : string; path : string }
  | Reload
  | Shutdown
  | Ping

type listed = { l_name : string; l_nodes : int; l_edges : int; l_bytes : int }

type health = {
  h_synopses : int;
  h_generations : int;
  h_queue : int;
  h_inflight : int;
  h_uptime_s : float;
  h_draining : bool;
}

type response =
  | Floats of float array
  | Synopses of listed array
  | Stats_json of string
  | Reloaded of { loaded : int; skipped : int }
  | Swapped of { generation : int }
  | Done
  | Health of health
  | Error_frame of { code : int; message : string }

(* frame tags; requests and responses share one byte-space so a frame
   arriving on the wrong side of the connection is a Bad_tag, not a
   misparse *)
let tag_estimate = 0x01
let tag_estimate_batch = 0x02
let tag_list = 0x03
let tag_stats = 0x04
let tag_reload = 0x05
let tag_shutdown = 0x06
let tag_update = 0x07
let tag_ping = 0x08
let tag_floats = 0x41
let tag_synopses = 0x42
let tag_stats_json = 0x43
let tag_reloaded = 0x44
let tag_done = 0x45
let tag_swapped = 0x46
let tag_health = 0x47
let tag_error = 0x7F

let max_payload = 1 lsl 26 (* 64 MiB *)
let header_bytes = 13 (* tag u8 + length u64 + crc u32 *)

(* ---- primitive writers ------------------------------------------------- *)

let put_int buf n = Buffer.add_int64_be buf (Int64.of_int n)
let put_float buf f = Buffer.add_int64_be buf (Int64.bits_of_float f)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let frame tag payload =
  let n = String.length payload in
  let buf = Buffer.create (header_bytes + n) in
  Buffer.add_char buf (Char.chr tag);
  put_int buf n;
  Buffer.add_int32_be buf (Int32.of_int (Crc32.digest payload));
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ---- bounded reader ----------------------------------------------------
   The same discipline as Codec's: every read checks the frame bound,
   every count is validated against the remaining bytes before any
   allocation, and all failures are the typed Error.protocol. *)

exception Proto of Error.protocol

type reader = { src : string; mutable pos : int; limit : int }

let remaining r = r.limit - r.pos

let get_int r =
  if r.pos + 8 > r.limit then raise (Proto (Truncated { need = r.pos + 8 - r.limit }));
  let v64 = String.get_int64_be r.src r.pos in
  let v = Int64.to_int v64 in
  (* a sign-bit flip must not alias into a small int (cf. Codec) *)
  if Int64.of_int v <> v64 then
    raise (Proto (Bad_length { len = Int64.to_int v64; what = "integer field" }));
  r.pos <- r.pos + 8;
  v

let get_float r =
  if r.pos + 8 > r.limit then raise (Proto (Truncated { need = r.pos + 8 - r.limit }));
  let v = Int64.float_of_bits (String.get_int64_be r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let get_string r =
  let n = get_int r in
  if n < 0 || n > remaining r then raise (Proto (Bad_length { len = n; what = "string length" }));
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_count r ~elt_min ~what =
  let n = get_int r in
  if n < 0 || n > remaining r / max 1 elt_min then
    raise (Proto (Bad_length { len = n; what }));
  n

(* ---- payload codecs ---------------------------------------------------- *)

let put_options buf (o : Options.t) =
  put_int buf (match o.domains with None -> -1 | Some d -> d);
  put_int buf (match o.fallback with Options.Degrade -> 0 | Options.Strict -> 1);
  put_int buf (if o.cohort then 1 else 0);
  put_int buf o.max_batch;
  put_int buf o.max_frame_bytes

let get_options r =
  let domains =
    match get_int r with
    | d when d > 0 -> Some d
    | -1 -> None
    | d -> raise (Proto (Bad_length { len = d; what = "domains field" }))
  in
  let fallback =
    match get_int r with
    | 0 -> Options.Degrade
    | 1 -> Options.Strict
    | f -> raise (Proto (Bad_length { len = f; what = "fallback field" }))
  in
  let cohort =
    match get_int r with
    | 0 -> false
    | 1 -> true
    | c -> raise (Proto (Bad_length { len = c; what = "cohort field" }))
  in
  let max_batch =
    match get_int r with
    | b when b > 0 -> b
    | b -> raise (Proto (Bad_length { len = b; what = "max_batch field" }))
  in
  let max_frame_bytes =
    match get_int r with
    | b when b > 0 -> b
    | b -> raise (Proto (Bad_length { len = b; what = "max_frame_bytes field" }))
  in
  { Options.domains; fallback; cohort; max_batch; max_frame_bytes }

let encode_request req =
  let buf = Buffer.create 128 in
  let tag =
    match req with
    | Estimate { synopsis; query } ->
      put_string buf synopsis;
      put_string buf query;
      tag_estimate
    | Estimate_batch { synopsis; queries; options } ->
      put_string buf synopsis;
      put_options buf options;
      put_int buf (Array.length queries);
      Array.iter (put_string buf) queries;
      tag_estimate_batch
    | Update { synopsis; path } ->
      put_string buf synopsis;
      put_string buf path;
      tag_update
    | List_synopses -> tag_list
    | Stats -> tag_stats
    | Reload -> tag_reload
    | Shutdown -> tag_shutdown
    | Ping -> tag_ping
  in
  frame tag (Buffer.contents buf)

let encode_response resp =
  let buf = Buffer.create 128 in
  let tag =
    match resp with
    | Floats fs ->
      put_int buf (Array.length fs);
      Array.iter (put_float buf) fs;
      tag_floats
    | Synopses ls ->
      put_int buf (Array.length ls);
      Array.iter
        (fun l ->
          put_string buf l.l_name;
          put_int buf l.l_nodes;
          put_int buf l.l_edges;
          put_int buf l.l_bytes)
        ls;
      tag_synopses
    | Stats_json json ->
      put_string buf json;
      tag_stats_json
    | Reloaded { loaded; skipped } ->
      put_int buf loaded;
      put_int buf skipped;
      tag_reloaded
    | Swapped { generation } ->
      put_int buf generation;
      tag_swapped
    | Done -> tag_done
    | Health h ->
      put_int buf h.h_synopses;
      put_int buf h.h_generations;
      put_int buf h.h_queue;
      put_int buf h.h_inflight;
      put_float buf h.h_uptime_s;
      put_int buf (if h.h_draining then 1 else 0);
      tag_health
    | Error_frame { code; message } ->
      put_int buf code;
      put_string buf message;
      tag_error
  in
  frame tag (Buffer.contents buf)

(* Split a raw frame into (tag, payload reader), checking the framing:
   length bound, truncation, CRC. *)
let open_frame s =
  let n = String.length s in
  if n < header_bytes then raise (Proto (Truncated { need = header_bytes - n }));
  let tag = Char.code s.[0] in
  let len64 = String.get_int64_be s 1 in
  let len = Int64.to_int len64 in
  if Int64.of_int len <> len64 || len < 0 || len > max_payload then
    raise (Proto (Bad_length { len; what = "frame payload length" }));
  if header_bytes + len > n then
    raise (Proto (Truncated { need = header_bytes + len - n }));
  let stored = Int32.to_int (String.get_int32_be s 9) land 0xFFFFFFFF in
  let actual = Crc32.sub s ~pos:header_bytes ~len in
  if stored <> actual then raise (Proto (Checksum_mismatch { stored; actual }));
  (tag, { src = s; pos = header_bytes; limit = header_bytes + len })

let parse_request (tag, r) =
  if tag = tag_estimate then
    let synopsis = get_string r in
    let query = get_string r in
    Estimate { synopsis; query }
  else if tag = tag_estimate_batch then begin
    let synopsis = get_string r in
    let options = get_options r in
    let n = get_count r ~elt_min:8 ~what:"query count" in
    Estimate_batch { synopsis; queries = Array.init n (fun _ -> get_string r); options }
  end
  else if tag = tag_update then begin
    let synopsis = get_string r in
    let path = get_string r in
    Update { synopsis; path }
  end
  else if tag = tag_list then List_synopses
  else if tag = tag_stats then Stats
  else if tag = tag_reload then Reload
  else if tag = tag_shutdown then Shutdown
  else if tag = tag_ping then Ping
  else raise (Proto (Bad_tag tag))

let parse_response (tag, r) =
  if tag = tag_floats then
    let n = get_count r ~elt_min:8 ~what:"float count" in
    Floats (Array.init n (fun _ -> get_float r))
  else if tag = tag_synopses then
    let n = get_count r ~elt_min:32 ~what:"synopsis count" in
    Synopses
      (Array.init n (fun _ ->
           let l_name = get_string r in
           let l_nodes = get_int r in
           let l_edges = get_int r in
           let l_bytes = get_int r in
           { l_name; l_nodes; l_edges; l_bytes }))
  else if tag = tag_stats_json then Stats_json (get_string r)
  else if tag = tag_reloaded then begin
    let loaded = get_int r in
    let skipped = get_int r in
    Reloaded { loaded; skipped }
  end
  else if tag = tag_swapped then Swapped { generation = get_int r }
  else if tag = tag_done then Done
  else if tag = tag_health then begin
    let h_synopses = get_int r in
    let h_generations = get_int r in
    let h_queue = get_int r in
    let h_inflight = get_int r in
    let h_uptime_s = get_float r in
    let h_draining =
      match get_int r with
      | 0 -> false
      | 1 -> true
      | d -> raise (Proto (Bad_length { len = d; what = "draining field" }))
    in
    Health { h_synopses; h_generations; h_queue; h_inflight; h_uptime_s; h_draining }
  end
  else if tag = tag_error then begin
    let code = get_int r in
    let message = get_string r in
    Error_frame { code; message }
  end
  else raise (Proto (Bad_tag tag))

(* Total-decoding boundary: any stray exception out of parsing is
   normalized to a typed error, exactly like Codec's guard. *)
let decode parse s =
  match parse (open_frame s) with
  | v -> Ok v
  | exception Proto e -> Error e
  | exception _ -> Error (Error.Bad_tag (-1))

let decode_request s = decode parse_request s
let decode_response s = decode parse_response s

(* ---- deadlines ---------------------------------------------------------

   A deadline is an absolute wall-clock budget for one frame (or one
   whole request). SO_RCVTIMEO alone cannot stop a slow-loris peer —
   every byte it dribbles in resets the socket timer — so the read loop
   also checks the deadline between partial reads: the per-read timer
   bounds silence, the deadline bounds the total. The [serve.deadline]
   fault site lets the chaos harness force an expiry deterministically
   without actually waiting out a budget. *)

type deadline = { started : float; expires : float }

let deadline_after budget_s =
  let now = Unix.gettimeofday () in
  { started = now; expires = now +. budget_s }

let deadline_expired ?site d =
  let forced =
    match site with
    | None -> false
    | Some site -> (
      match Fault.raise_io ~site with
      | () -> false
      | exception Fault.Injected _ -> true)
  in
  forced || Unix.gettimeofday () > d.expires

let deadline_elapsed_ms d =
  int_of_float (Float.max 0. (Unix.gettimeofday () -. d.started) *. 1000.)

let timeout_error = function
  | Some d -> Error.Timeout { elapsed_ms = deadline_elapsed_ms d }
  | None -> Error.Timeout { elapsed_ms = 0 }

(* ---- socket transport -------------------------------------------------- *)

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = try Unix.write_substring fd s pos len with Unix.Unix_error (EINTR, _, _) -> 0 in
    write_all fd s (pos + n) (len - n)
  end

(* [site], when given, is a Fault injection point for the write path
   ([serve.send]); an injected Enospc/Eio becomes a typed Io error
   exactly as a real one would. A blocked write past SO_SNDTIMEO
   surfaces as EAGAIN and becomes {!Error.Timeout} — the peer stopped
   draining its socket. *)
let send ?site fd s =
  let inject () = match site with None -> () | Some site -> Fault.raise_io ~site in
  match
    inject ();
    write_all fd s 0 (String.length s)
  with
  | () -> Ok ()
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
    Error (Error.Timeout { elapsed_ms = 0 })
  | exception Unix.Unix_error (e, _, _) ->
    Error (Error.Io (Printf.sprintf "send: %s" (Unix.error_message e)))
  | exception Fault.Injected { site; kind } ->
    Error (Error.Io (Printf.sprintf "send: injected %s at %s" (Fault.kind_name kind) site))

(* Read exactly [len] bytes; [`Eof k] reports how many arrived before
   the stream ended. [`Timeout] fires when the per-read SO_RCVTIMEO
   timer expires (EAGAIN) or the frame deadline passes between partial
   reads. *)
let read_exact ?deadline ?deadline_site fd len =
  let b = Bytes.create len in
  let expired () =
    match deadline with
    | None -> false
    | Some d -> deadline_expired ?site:deadline_site d
  in
  let rec go off =
    if off >= len then `Ok (Bytes.unsafe_to_string b)
    else if expired () then `Timeout
    else
      match Unix.read fd b off (len - off) with
      | 0 -> `Eof off
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> `Timeout
  in
  go 0

(* Read one frame: header first (validating the length field before
   the payload allocation), then the payload, which passes through the
   Fault injection site so the harness can truncate or flip bits at
   the socket boundary. A damaged payload fails the CRC or the bounded
   reader — never crashes the process.

   [limit], when below {!max_payload}, is an admission bound: a frame
   declaring a larger payload is refused with {!Error.Admission}
   {e before} the payload allocation. The refusal is permanent (the
   same frame can never succeed) and desynchronizes the stream, so
   callers close the connection after answering. *)
let read_frame ~site ?deadline ?deadline_site ?(limit = max_payload) fd =
  match read_exact ?deadline ?deadline_site fd header_bytes with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Error.Io (Printf.sprintf "recv: %s" (Unix.error_message e)))
  | `Timeout -> Error (timeout_error deadline)
  | `Eof 0 -> Ok None
  | `Eof k -> Error (Error.Protocol (Truncated { need = header_bytes - k }))
  | `Ok header -> (
    let len64 = String.get_int64_be header 1 in
    let len = Int64.to_int len64 in
    if Int64.of_int len <> len64 || len < 0 || len > max_payload then
      Error (Error.Protocol (Bad_length { len; what = "frame payload length" }))
    else if len > limit then
      Error
        (Error.Admission
           (Printf.sprintf "frame payload of %d bytes exceeds the %d-byte limit" len limit))
    else
      match read_exact ?deadline ?deadline_site fd len with
      | exception Unix.Unix_error (e, _, _) ->
        Error (Error.Io (Printf.sprintf "recv: %s" (Unix.error_message e)))
      | `Timeout -> Error (timeout_error deadline)
      | `Eof k -> Error (Error.Protocol (Truncated { need = len - k }))
      | `Ok payload -> Ok (Some (header ^ Fault.mutate ~site payload)))

let recv_request ?deadline ?limit fd =
  match read_frame ~site:"serve.recv" ?deadline ~deadline_site:"serve.deadline" ?limit fd with
  | Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some s) -> (
    match decode_request s with
    | Ok req -> Ok (Some req)
    | Error p -> Error (Error.Protocol p))

let recv_response ?deadline fd =
  match read_frame ~site:"client.recv" ?deadline fd with
  | Error _ as e -> e
  | Ok None -> Error (Error.Protocol Closed)
  | Ok (Some s) -> (
    match decode_response s with
    | Ok resp -> Ok resp
    | Error p -> Error (Error.Protocol p))
