module Codec = Xc_core.Codec
module Sealed = Xc_core.Synopsis.Sealed
module Plan = Xc_core.Plan
module Metrics = Xc_util.Metrics

type t = {
  sources : (string, string) Hashtbl.t; (* name -> path *)
  admitted : (string, Sealed.t) Hashtbl.t;
  generations : (string, int) Hashtbl.t; (* name -> admissions of distinct content *)
  engines : Plan.Batch.t Lru.t;
}

let create ?(max_engines = 8) () =
  {
    sources = Hashtbl.create 16;
    admitted = Hashtbl.create 16;
    generations = Hashtbl.create 16;
    engines = Lru.create max_engines;
  }

let add_source t ~name ~path = Hashtbl.replace t.sources name path

let add_dir t dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error (Error.Io msg)
  | files ->
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".syn" then
          add_source t ~name:(Filename.remove_extension f)
            ~path:(Filename.concat dir f))
      files;
    Ok ()

let sources t =
  Hashtbl.fold (fun name path acc -> (name, path) :: acc) t.sources []
  |> List.sort compare

type load_report = { loaded : int; skipped : int }

let generation t name =
  Option.value ~default:0 (Hashtbl.find_opt t.generations name)

let generations_total t =
  Hashtbl.fold (fun _ g acc -> acc + g) t.generations 0

(* Admission: the codec's loader is the verify step — an [Ok] here
   has passed framing, the directory checksum, and the node-attribute
   sections' CRCs; for a lazily mapped v3 artifact the CSR and
   value-summary sections verify on first touch, and a deferred
   failure (Codec.Lazy_failure) surfaces through the engine's
   result-typed serving path as Unavailable, never as a crash.
   The replace of [t.admitted] is the generation-swap commit point: a
   single Hashtbl write, so a reader resolving the name sees either
   the old complete generation or the new one, never a mixture (the
   daemon serializes requests; in-flight batches hold the Sealed.t
   they resolved and finish on it). *)
let admit t name syn =
  (match Hashtbl.find_opt t.admitted name with
  | Some old when Sealed.uid old <> Sealed.uid syn ->
    (* content changed: the cached engine and plan caches compiled
       against the retired generation must go *)
    Lru.remove t.engines name;
    Engine.drop old;
    Hashtbl.replace t.generations name (generation t name + 1)
  | Some _ -> ()
  | None -> Hashtbl.replace t.generations name (generation t name + 1));
  Hashtbl.replace t.admitted name syn;
  Metrics.incr Metrics.global "serve.load_ok"

let load_source t name path =
  match Codec.load path with
  | Ok syn ->
    admit t name syn;
    true
  | Error e ->
    Metrics.incr Metrics.global "serve.load_error";
    ignore (e : Codec.error);
    false

let load t =
  List.fold_left
    (fun acc (name, path) ->
      if load_source t name path then { acc with loaded = acc.loaded + 1 }
      else { acc with skipped = acc.skipped + 1 })
    { loaded = 0; skipped = 0 } (sources t)

(* The source registration happens only after the artifact verifies:
   a corrupt path must not clobber the last good source either — a
   later directory-wide reload would otherwise re-trip over it and the
   registry would have forgotten where the good generation came from. *)
let load_one t ~name ~path =
  match Codec.load path with
  | Ok syn ->
    add_source t ~name ~path;
    admit t name syn;
    Ok ()
  | Error e ->
    Metrics.incr Metrics.global "serve.load_error";
    Error (Error.Codec e)

(* ---- generation swap ---------------------------------------------------- *)

let swap t ~name syn =
  Metrics.incr Metrics.global "serve.swap";
  admit t name syn;
  generation t name

let swap_from t ~name ~path =
  match Codec.load path with
  | Ok syn ->
    add_source t ~name ~path;
    Ok (swap t ~name syn)
  | Error e ->
    (* skip-and-count: the previous good generation keeps serving *)
    Metrics.incr Metrics.global "serve.load_error";
    Metrics.incr Metrics.global "serve.swap_skipped";
    Error (Error.Codec e)

let find t name = Hashtbl.find_opt t.admitted name

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.admitted []
  |> List.sort compare

let n_admitted t = Hashtbl.length t.admitted

let engine t name =
  match Hashtbl.find_opt t.admitted name with
  | None ->
    Error (Error.Admission (Printf.sprintf "unknown synopsis %S" name))
  | Some syn -> (
    match Lru.find t.engines name with
    | Some eng -> Metrics.incr Metrics.global "serve.engine_hit"; Ok (syn, eng)
    | None ->
      let eng = Plan.Batch.create syn in
      Metrics.incr Metrics.global "serve.engine_admit";
      (match Lru.put t.engines name eng with
      | Some (_, _) -> Metrics.incr Metrics.global "serve.engine_evict"
      | None -> ());
      Ok (syn, eng))

let engine_names t = Lru.keys_by_recency t.engines
let max_engines t = Lru.capacity t.engines
