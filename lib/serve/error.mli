(** The one error type of the serving layer.

    Everything a daemon, a client, or the in-process serving facade can
    fail with — a corrupt synopsis artifact ({!Codec}), a damaged or
    hostile wire frame ({!Protocol}), a request for a synopsis the
    registry does not hold or will not admit ({!Admission}), an
    unparsable twig ({!Query}), a strict-mode refusal to degrade
    ({!Unavailable}), or plain socket trouble ({!Io}) — is one
    constructor of {!t}, so callers match on a single variant instead
    of threading three error types through their plumbing.

    Errors cross the wire as [(code, message)] pairs ({!to_wire} /
    {!of_wire}); the category survives the trip exactly, the structured
    detail is flattened into the message. *)

type protocol =
  | Truncated of { need : int }
      (** the peer closed or the frame ended where [need] more bytes
          were required *)
  | Bad_tag of int  (** an unknown frame or payload tag *)
  | Bad_length of { len : int; what : string }
      (** a length field is negative or beyond the frame bound *)
  | Checksum_mismatch of { stored : int; actual : int }
      (** the payload failed its CRC-32 *)
  | Closed  (** the connection closed where a response was expected *)

type t =
  | Codec of Xc_core.Codec.error
      (** a synopsis artifact failed to load or verify *)
  | Protocol of protocol  (** the wire protocol was violated *)
  | Admission of string
      (** the registry does not hold (or will not admit) the synopsis *)
  | Query of string  (** the twig query failed to parse *)
  | Unavailable of string
      (** strict fallback policy: the fast path failed and degradation
          was not permitted *)
  | Io of string  (** connect/send/recv failure *)
  | Timeout of { elapsed_ms : int }
      (** a read/write/request deadline was exceeded — the daemon
          answers this frame best-effort and evicts the connection; a
          client surfaces it when the daemon went quiet past its
          receive timeout *)
  | Overloaded of { retry_after_ms : int }
      (** admission control shed this connection or request: the
          daemon's bounded in-flight queue was full. Transient by
          construction — {!Client.with_retry} backs off at least
          [retry_after_ms] and tries again *)

val pp_protocol : Format.formatter -> protocol -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_wire : t -> int * string
(** The [(code, message)] encoding of an error frame. Codes are stable
    protocol constants: 1 codec, 2 protocol, 3 admission, 4 query,
    5 unavailable, 6 io, 7 timeout, 8 overloaded. *)

val of_wire : int -> string -> t
(** Inverse of {!to_wire} up to structured detail: the category
    survives, nested payloads come back as their rendered message (a
    {!Codec} error resurfaces as [Codec (Io message)]). A remote
    {!Protocol} complaint — the peer judging {e our} bytes — comes back
    as {!Io}, since locally the framing was fine. {!Timeout} and
    {!Overloaded} reconstruct their millisecond fields from the
    message's leading decimal, so a client's backoff still honors the
    daemon's hint after the trip. Unknown codes map to {!Io}. *)
