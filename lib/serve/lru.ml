type 'a entry = { value : 'a; mutable stamp : int }

type 'a t = {
  cap : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
}

let create cap =
  let cap = max cap 1 in
  { cap; table = Hashtbl.create (2 * cap); clock = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e ->
    e.stamp <- tick t;
    Some e.value

let oldest t =
  Hashtbl.fold
    (fun key e acc ->
      match acc with
      | Some (_, best) when best.stamp <= e.stamp -> acc
      | _ -> Some (key, e))
    t.table None

let put t key value =
  match Hashtbl.find_opt t.table key with
  | Some _ ->
    Hashtbl.replace t.table key { value; stamp = tick t };
    None
  | None ->
    let evicted =
      if Hashtbl.length t.table >= t.cap then (
        match oldest t with
        | Some (k, e) ->
          Hashtbl.remove t.table k;
          Some (k, e.value)
        | None -> None)
      else None
    in
    Hashtbl.replace t.table key { value; stamp = tick t };
    evicted

let remove t key = Hashtbl.remove t.table key
let clear t = Hashtbl.reset t.table

let keys_by_recency t =
  Hashtbl.fold (fun key e acc -> (key, e.stamp) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst
