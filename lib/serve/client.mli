(** Client for the estimation daemon.

    Result-first: every call returns [(_, Error.t) result] — connection
    trouble, protocol damage, and server-side error frames all arrive
    through the same {!Error.t} the rest of the serving layer uses.
    A client is one socket; calls on it are request/response in order
    (the daemon answers frames in order). Not domain-safe: one client
    per domain. *)

type t

val connect : Protocol.endpoint -> (t, Error.t) result
val close : t -> unit
(** Idempotent. *)

val estimate :
  t -> synopsis:string -> query:string -> (float, Error.t) result
(** [query] is twig source text, parsed daemon-side. *)

val estimate_batch :
  t ->
  ?options:Options.t ->
  synopsis:string ->
  string array ->
  (float array, Error.t) result
(** [result.(i)] answers query [i] — floats bit-identical to what the
    daemon computed (they travel as IEEE-754 bit patterns). *)

val list_synopses : t -> (Protocol.listed array, Error.t) result
val stats : t -> (string, Error.t) result
(** The daemon's metrics snapshot as a JSON object. *)

val update :
  t -> synopsis:string -> path:string -> (int, Error.t) result
(** Swap the named synopsis to the repaired generation stored at
    [path] (daemon-side {!Registry.swap_from}); [Ok generation] once
    the swap committed. A corrupt artifact is a typed error and the
    daemon keeps serving the previous good generation. *)

val reload : t -> (Registry.load_report, Error.t) result
val shutdown : t -> (unit, Error.t) result
(** Ask the daemon to exit cleanly; [Ok ()] once it acknowledged. *)
