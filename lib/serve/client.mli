(** Client for the estimation daemon.

    Result-first: every call returns [(_, Error.t) result] — connection
    trouble, protocol damage, and server-side error frames all arrive
    through the same {!Error.t} the rest of the serving layer uses.
    A client is one socket; calls on it are request/response in order
    (the daemon answers frames in order). Not domain-safe: one client
    per domain.

    {b Liveness.} [connect ~timeout_s] bounds the connection attempt
    (non-blocking connect + select) and installs the same budget as the
    socket's [SO_RCVTIMEO]/[SO_SNDTIMEO], plus a whole-response
    deadline on every receive — a daemon that goes quiet surfaces as
    {!Error.Timeout} instead of a hang. Name resolution failure is a
    typed {!Error.Io}, never a silent fallback address.

    {b Recovery.} A request whose {e write} fails because the daemon
    already answered and closed — a shed connection's
    {!Error.Overloaded} frame, an evicted peer's {!Error.Timeout} frame
    — surfaces the daemon's frame rather than the write's symptom.
    Idempotent requests (everything except {!update} and
    {!shutdown}) transparently reconnect once when the connection turns
    out dead — the daemon evicts idle peers and closes keep-alive
    connections on drain, so the first request after a pause may find a
    stale socket ([client.reconnect] counts these). {!with_retry} adds
    the cross-connection policy: capped jittered exponential backoff
    over fresh connections, honoring the daemon's
    {!Error.Overloaded} [retry_after_ms] hint as a floor. *)

type t

val connect : ?timeout_s:float -> Protocol.endpoint -> (t, Error.t) result
(** [timeout_s] bounds the connect itself and every subsequent
    read/write on the socket; omit it for fully blocking I/O. Passes
    the [client.connect] fault site. *)

val close : t -> unit
(** Idempotent. *)

val estimate :
  t -> synopsis:string -> query:string -> (float, Error.t) result
(** [query] is twig source text, parsed daemon-side. *)

val estimate_batch :
  t ->
  ?options:Options.t ->
  synopsis:string ->
  string array ->
  (float array, Error.t) result
(** [result.(i)] answers query [i] — floats bit-identical to what the
    daemon computed (they travel as IEEE-754 bit patterns). *)

val list_synopses : t -> (Protocol.listed array, Error.t) result
val stats : t -> (string, Error.t) result
(** The daemon's metrics snapshot as a JSON object. *)

val ping : t -> (Protocol.health, Error.t) result
(** Readiness probe: the daemon's health snapshot (admitted synopses,
    generation total, queue depth, in-flight count, uptime, draining
    flag). *)

val update :
  t -> synopsis:string -> path:string -> (int, Error.t) result
(** Swap the named synopsis to the repaired generation stored at
    [path] (daemon-side {!Registry.swap_from}); [Ok generation] once
    the swap committed. A corrupt artifact is a typed error and the
    daemon keeps serving the previous good generation. Never retried
    or transparently reconnected — not idempotent. *)

val reload : t -> (Registry.load_report, Error.t) result

val shutdown : t -> (unit, Error.t) result
(** Ask the daemon to begin its graceful drain; [Ok ()] once it
    acknowledged. Never transparently reconnected. *)

val with_retry :
  ?attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?seed:int ->
  ?timeout_s:float ->
  Protocol.endpoint ->
  (t -> ('a, Error.t) result) ->
  ('a, Error.t) result
(** [with_retry endpoint f] connects, runs [f], and on a {e transient}
    failure — {!Error.Overloaded}, {!Error.Io}, {!Error.Timeout}, or a
    closed connection — closes, sleeps, and tries again on a fresh
    connection, up to [attempts] (default 5) total tries. The sleep is
    capped jittered exponential backoff ([base_delay_s] 10 ms doubling
    up to [max_delay_s] 500 ms, jittered to 50–100% of the cap by a
    [seed]-deterministic stream), floored by an [Overloaded] frame's
    [retry_after_ms] hint. Permanent errors ({!Error.Admission},
    {!Error.Query}, {!Error.Unavailable}, damaged frames, corrupt
    artifacts) return immediately — retrying a request that can never
    succeed is how retry storms start. [client.retry] counts the
    retries taken. *)
