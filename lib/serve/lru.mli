(** A small bounded LRU table, string-keyed.

    The daemon's admission policy for per-synopsis batch engines: a
    registry may hold many synopses, but each admitted engine carries
    transition matrices and compiled queries, so the engine table is
    bounded and evicts the least-recently-used entry on overflow.

    Recency is tracked with a monotonic clock stamped on every
    {!find}/{!put}; eviction scans for the minimum stamp. That is O(n)
    per eviction — deliberate: capacities are tens, not millions, and
    the scan keeps the structure a single hash table with no intrusive
    list to corrupt. Exact LRU order, observable via
    {!keys_by_recency}, so tests can assert the policy. *)

type 'a t

val create : int -> 'a t
(** [create cap] with capacity [max cap 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup; a hit refreshes the entry's recency. *)

val put : 'a t -> string -> 'a -> (string * 'a) option
(** Insert or replace, refreshing recency. When inserting a fresh key
    into a full table, the least-recently-used entry is evicted and
    returned. *)

val remove : 'a t -> string -> unit
val clear : 'a t -> unit

val keys_by_recency : 'a t -> string list
(** Most recently used first. *)
