module Sealed = Xc_core.Synopsis.Sealed
module Metrics = Xc_util.Metrics

type config = {
  endpoint : Protocol.endpoint;
  max_engines : int;
  options : Options.t;
}

let default_config =
  {
    endpoint = Protocol.Unix_sock "xcluster.sock";
    max_engines = 8;
    options = Options.default;
  }

let stop_requested = Atomic.make false
let stop () = Atomic.set stop_requested true

(* ---- socket setup ------------------------------------------------------ *)

let bind_endpoint endpoint =
  match endpoint with
  | Protocol.Unix_sock path ->
    (match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
    | _ -> Fmt.failwith "daemon: %s exists and is not a socket" path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Fmt.failwith "daemon: cannot bind %s: %s" path (Unix.error_message e));
    fd
  | Protocol.Tcp (host, port) ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          Fmt.failwith "daemon: unknown host %s" host
        | h -> h.Unix.h_addr_list.(0))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (addr, port));
       Unix.listen fd 64
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Fmt.failwith "daemon: cannot bind %s:%d: %s" host port
         (Unix.error_message e));
    fd

(* ---- request dispatch --------------------------------------------------
   Every arm is total: failures become error frames, never exceptions
   out of the dispatcher. *)

let listed_of registry name =
  match Registry.find registry name with
  | None -> None
  | Some syn ->
    Some
      {
        Protocol.l_name = name;
        l_nodes = Sealed.n_nodes syn;
        l_edges = Sealed.n_edges syn;
        l_bytes = Sealed.structural_bytes syn + Sealed.value_bytes syn;
      }

let error_frame e =
  Metrics.incr Metrics.global "daemon.request_error";
  let code, message = Error.to_wire e in
  Protocol.Error_frame { code; message }

let parse_queries texts =
  let n = Array.length texts in
  let out = Array.make n None in
  let bad = ref None in
  Array.iteri
    (fun i text ->
      if !bad = None then
        match Xc_twig.Twig_parse.parse text with
        | q -> out.(i) <- Some q
        | exception Xc_twig.Twig_parse.Parse_error msg ->
          bad := Some (Printf.sprintf "query %d: %s" i msg)
        | exception _ -> bad := Some (Printf.sprintf "query %d: unparsable" i))
    texts;
  match !bad with
  | Some msg -> Error (Error.Query msg)
  | None -> Ok (Array.map Option.get out)

let dispatch config registry req =
  match req with
  | Protocol.Estimate { synopsis; query } -> (
    match Registry.find registry synopsis with
    | None -> error_frame (Error.Admission (Printf.sprintf "unknown synopsis %S" synopsis))
    | Some syn -> (
      match Xc_twig.Twig_parse.parse query with
      | exception Xc_twig.Twig_parse.Parse_error msg -> error_frame (Error.Query msg)
      | exception _ -> error_frame (Error.Query "unparsable query")
      | q -> (
        match Engine.estimate_result ~options:config.options syn q with
        | Ok v -> Protocol.Floats [| v |]
        | Error e -> error_frame e)))
  | Protocol.Estimate_batch { synopsis; queries; options } -> (
    (* the request's options win; a request that left [domains]
       unpinned inherits the daemon's default *)
    let options =
      {
        options with
        Options.domains =
          (match options.Options.domains with
          | Some _ as d -> d
          | None -> config.options.Options.domains);
      }
    in
    match Registry.engine registry synopsis with
    | Error e -> error_frame e
    | Ok (syn, eng) -> (
      match parse_queries queries with
      | Error e -> error_frame e
      | Ok qs -> (
        match Engine.estimate_batch_with ~options eng syn qs with
        | Ok r -> Protocol.Floats r
        | Error e -> error_frame e)))
  | Protocol.List_synopses ->
    Protocol.Synopses
      (Array.of_list (List.filter_map (listed_of registry) (Registry.names registry)))
  | Protocol.Stats ->
    Protocol.Stats_json (Metrics.to_json (Metrics.snapshot Metrics.global))
  | Protocol.Update { synopsis; path } -> (
    (* the generation swap: verify-load the repaired artifact, then
       commit it under the name. A corrupt artifact is an error frame —
       the previous good generation keeps serving (skip-and-count). *)
    let t0 = Unix.gettimeofday () in
    match Registry.swap_from registry ~name:synopsis ~path with
    | Ok generation ->
      Metrics.observe Metrics.global "serve.swap_us"
        (1e6 *. (Unix.gettimeofday () -. t0));
      Protocol.Swapped { generation }
    | Error e -> error_frame e)
  | Protocol.Reload ->
    let r = Registry.load registry in
    Protocol.Reloaded { loaded = r.Registry.loaded; skipped = r.Registry.skipped }
  | Protocol.Shutdown -> Protocol.Done

(* a dispatch arm that slips an exception past its own guards must not
   kill the connection loop, let alone the daemon *)
let dispatch_guarded config registry req =
  try dispatch config registry req
  with exn -> error_frame (Error.Io (Printexc.to_string exn))

(* ---- connection loop --------------------------------------------------- *)

type conn_outcome = Keep_listening | Shutdown_now

let serve_conn config registry fd =
  let rec loop () =
    match Protocol.recv_request fd with
    | Ok None -> Keep_listening (* client hung up at a frame boundary *)
    | Error (Error.Protocol _ as e) ->
      (* a damaged or hostile frame: answer (best-effort) and drop the
         connection — framing cannot resync after a bad length *)
      Metrics.incr Metrics.global "daemon.proto_error";
      ignore (Protocol.send fd (Protocol.encode_response (error_frame e)));
      Keep_listening
    | Error _ -> Keep_listening (* socket trouble; nothing to answer on *)
    | Ok (Some Protocol.Shutdown) ->
      ignore (Protocol.send fd (Protocol.encode_response Protocol.Done));
      Shutdown_now
    | Ok (Some req) -> (
      Metrics.incr Metrics.global "daemon.requests";
      let t0 = Unix.gettimeofday () in
      let resp = dispatch_guarded config registry req in
      Metrics.observe Metrics.global "daemon.request_us"
        (1e6 *. (Unix.gettimeofday () -. t0));
      match Protocol.send fd (Protocol.encode_response resp) with
      | Ok () -> loop ()
      | Error _ -> Keep_listening)
  in
  loop ()

let run ?(config = default_config) ?(on_ready = fun _ -> ()) registry =
  (* a client hanging up mid-response must be an EPIPE result, not a
     fatal signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  ignore (Registry.load registry);
  let listener = bind_endpoint config.endpoint in
  Atomic.set stop_requested false;
  on_ready config.endpoint;
  let rec accept_loop () =
    if Atomic.get stop_requested then ()
    else
      match Unix.accept listener with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error (_, _, _) -> accept_loop ()
      | fd, _ -> (
        Metrics.incr Metrics.global "daemon.conns";
        let outcome =
          try serve_conn config registry fd
          with exn ->
            (* nothing inside a connection is allowed to be fatal *)
            Metrics.incr Metrics.global "daemon.request_error";
            ignore
              (Protocol.send fd
                 (Protocol.encode_response
                    (error_frame (Error.Io (Printexc.to_string exn)))));
            Keep_listening
        in
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        match outcome with Keep_listening -> accept_loop () | Shutdown_now -> ())
  in
  accept_loop ();
  (try Unix.close listener with Unix.Unix_error (_, _, _) -> ());
  match config.endpoint with
  | Protocol.Unix_sock path -> (
    try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | Protocol.Tcp _ -> ()
