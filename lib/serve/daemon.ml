module Sealed = Xc_core.Synopsis.Sealed
module Metrics = Xc_util.Metrics
module Fault = Xc_util.Fault

type config = {
  endpoint : Protocol.endpoint;
  max_engines : int;
  options : Options.t;
  workers : int;
  backlog : int;
  max_pending : int;
  recv_timeout_s : float;
  send_timeout_s : float;
  request_budget_s : float;
  drain_timeout_s : float;
  retry_after_ms : int;
}

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v when v > 0 -> v
    | _ -> default)
  | None -> default

let default_config =
  {
    endpoint = Protocol.Unix_sock "xcluster.sock";
    max_engines = 8;
    options = Options.default;
    workers = env_int "XC_SERVE_WORKERS" 4;
    backlog = env_int "XC_SERVE_BACKLOG" 64;
    max_pending = 64;
    recv_timeout_s = 30.0;
    send_timeout_s = 30.0;
    request_budget_s = 30.0;
    drain_timeout_s = 5.0;
    retry_after_ms = 100;
  }

(* ---- stop / self-pipe --------------------------------------------------
   [stop] must interrupt an accept loop blocked in [select] from
   another thread, another domain, or a signal handler. The flag alone
   cannot do that, so each running daemon registers the write end of a
   self-pipe; [stop] sets the flag and writes one byte, which makes the
   pipe's read end selectable and wakes the loop. The write end is
   non-blocking — if the pipe is already full the loop is already
   awake — and both operations are async-signal-safe. *)

let stop_requested = Atomic.make false
let stop_pipes : Unix.file_descr list Atomic.t = Atomic.make []

let rec add_stop_pipe fd =
  let old = Atomic.get stop_pipes in
  if not (Atomic.compare_and_set stop_pipes old (fd :: old)) then add_stop_pipe fd

let rec remove_stop_pipe fd =
  let old = Atomic.get stop_pipes in
  let now = List.filter (fun f -> f <> fd) old in
  if not (Atomic.compare_and_set stop_pipes old now) then remove_stop_pipe fd

let stop () =
  Atomic.set stop_requested true;
  List.iter
    (fun fd -> try ignore (Unix.write_substring fd "!" 0 1) with Unix.Unix_error (_, _, _) -> ())
    (Atomic.get stop_pipes)

(* ---- shared serving state ---------------------------------------------- *)

type state = {
  q_lock : Mutex.t;
  q_cond : Condition.t;  (* signaled on push and on drain *)
  queue : Unix.file_descr Queue.t;  (* accepted, not yet picked up *)
  mutable inflight : int;  (* workers currently serving a connection *)
  active : (int, Unix.file_descr) Hashtbl.t;  (* worker id -> its fd *)
  mutable stop_workers : bool;  (* drain: idle workers exit *)
  dispatch_lock : Mutex.t;
      (* serializes request evaluation. Batch engines keep per-domain
         arenas in [Domain.DLS]; two worker threads of one domain
         running them concurrently would share arenas mid-sweep and
         break bit-identity. Workers therefore overlap on I/O — reads,
         writes, timeouts, eviction — and take this lock only around
         dispatch. The registry and engine caches inherit its
         protection for free. *)
  started : float;
  draining : bool Atomic.t;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ---- socket setup ------------------------------------------------------ *)

let bind_endpoint ~backlog endpoint =
  match endpoint with
  | Protocol.Unix_sock path ->
    (match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
    | _ -> Fmt.failwith "daemon: %s exists and is not a socket" path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd backlog
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Fmt.failwith "daemon: cannot bind %s: %s" path (Unix.error_message e));
    fd
  | Protocol.Tcp (host, port) ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          Fmt.failwith "daemon: unknown host %s" host
        | h -> h.Unix.h_addr_list.(0))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (addr, port));
       Unix.listen fd backlog
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Fmt.failwith "daemon: cannot bind %s:%d: %s" host port
         (Unix.error_message e));
    fd

let close_quiet fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let set_conn_timeouts config fd =
  (* per-read / per-write silence bounds; the request budget bounds the
     total. Both raise EAGAIN out of blocked syscalls, which the
     transport maps to Error.Timeout. *)
  try
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO config.recv_timeout_s;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO config.send_timeout_s
  with Unix.Unix_error (_, _, _) -> ()

(* ---- request dispatch --------------------------------------------------
   Every arm is total: failures become error frames, never exceptions
   out of the dispatcher. *)

let listed_of registry name =
  match Registry.find registry name with
  | None -> None
  | Some syn ->
    Some
      {
        Protocol.l_name = name;
        l_nodes = Sealed.n_nodes syn;
        l_edges = Sealed.n_edges syn;
        l_bytes = Sealed.structural_bytes syn + Sealed.value_bytes syn;
      }

let error_frame e =
  Metrics.incr Metrics.global "daemon.request_error";
  let code, message = Error.to_wire e in
  Protocol.Error_frame { code; message }

let parse_queries texts =
  let n = Array.length texts in
  let out = Array.make n None in
  let bad = ref None in
  Array.iteri
    (fun i text ->
      if !bad = None then
        match Xc_twig.Twig_parse.parse text with
        | q -> out.(i) <- Some q
        | exception Xc_twig.Twig_parse.Parse_error msg ->
          bad := Some (Printf.sprintf "query %d: %s" i msg)
        | exception _ -> bad := Some (Printf.sprintf "query %d: unparsable" i))
    texts;
  match !bad with
  | Some msg -> Error (Error.Query msg)
  | None -> Ok (Array.map Option.get out)

let health st registry =
  let h_queue, h_inflight =
    locked st.q_lock (fun () -> (Queue.length st.queue, st.inflight))
  in
  Protocol.Health
    {
      Protocol.h_synopses = Registry.n_admitted registry;
      h_generations = Registry.generations_total registry;
      h_queue;
      h_inflight;
      h_uptime_s = Unix.gettimeofday () -. st.started;
      h_draining = Atomic.get st.draining;
    }

let dispatch st config registry req =
  match req with
  | Protocol.Estimate { synopsis; query } -> (
    match Registry.find registry synopsis with
    | None -> error_frame (Error.Admission (Printf.sprintf "unknown synopsis %S" synopsis))
    | Some syn -> (
      match Xc_twig.Twig_parse.parse query with
      | exception Xc_twig.Twig_parse.Parse_error msg -> error_frame (Error.Query msg)
      | exception _ -> error_frame (Error.Query "unparsable query")
      | q -> (
        match Engine.estimate_result ~options:config.options syn q with
        | Ok v -> Protocol.Floats [| v |]
        | Error e -> error_frame e)))
  | Protocol.Estimate_batch { synopsis; queries; options } -> (
    (* the request's options win; a request that left [domains]
       unpinned inherits the daemon's default. The batch-size limit is
       the daemon's, not the request's — a client cannot talk its way
       past admission control. *)
    if Array.length queries > config.options.Options.max_batch then
      error_frame
        (Error.Admission
           (Printf.sprintf "batch of %d queries exceeds the %d-query limit"
              (Array.length queries) config.options.Options.max_batch))
    else
      let options =
        {
          options with
          Options.domains =
            (match options.Options.domains with
            | Some _ as d -> d
            | None -> config.options.Options.domains);
        }
      in
      match Registry.engine registry synopsis with
      | Error e -> error_frame e
      | Ok (syn, eng) -> (
        match parse_queries queries with
        | Error e -> error_frame e
        | Ok qs -> (
          match Engine.estimate_batch_with ~options eng syn qs with
          | Ok r -> Protocol.Floats r
          | Error e -> error_frame e)))
  | Protocol.List_synopses ->
    Protocol.Synopses
      (Array.of_list (List.filter_map (listed_of registry) (Registry.names registry)))
  | Protocol.Stats ->
    Protocol.Stats_json (Metrics.to_json (Metrics.snapshot Metrics.global))
  | Protocol.Update { synopsis; path } -> (
    (* the generation swap: verify-load the repaired artifact, then
       commit it under the name. A corrupt artifact is an error frame —
       the previous good generation keeps serving (skip-and-count). *)
    let t0 = Unix.gettimeofday () in
    match Registry.swap_from registry ~name:synopsis ~path with
    | Ok generation ->
      Metrics.observe Metrics.global "serve.swap_us"
        (1e6 *. (Unix.gettimeofday () -. t0));
      Protocol.Swapped { generation }
    | Error e -> error_frame e)
  | Protocol.Reload ->
    let r = Registry.load registry in
    Protocol.Reloaded { loaded = r.Registry.loaded; skipped = r.Registry.skipped }
  | Protocol.Ping -> health st registry
  | Protocol.Shutdown -> Protocol.Done

(* a dispatch arm that slips an exception past its own guards must not
   kill the connection loop, let alone the daemon *)
let dispatch_guarded st config registry req =
  try dispatch st config registry req
  with exn -> error_frame (Error.Io (Printexc.to_string exn))

(* ---- connection loop --------------------------------------------------- *)

type conn_outcome = Hung_up | Evicted | Shutdown_now

let send_response fd resp =
  Protocol.send ~site:"serve.send" fd (Protocol.encode_response resp)

(* Answer one connection's request stream until it hangs up, trips a
   deadline, breaks framing, or asks for shutdown. Runs on a worker
   thread; only the dispatch itself takes the global lock, so a peer
   stalled mid-frame costs one worker, not the daemon. *)
let serve_conn st config registry fd =
  let evict e =
    Metrics.incr Metrics.global "daemon.evicted";
    ignore (send_response fd (error_frame e));
    Evicted
  in
  let rec loop () =
    let deadline = Protocol.deadline_after config.request_budget_s in
    match
      Protocol.recv_request ~deadline
        ~limit:config.options.Options.max_frame_bytes fd
    with
    | Ok None -> Hung_up (* client hung up at a frame boundary *)
    | Error (Error.Timeout _ as e) ->
      (* slow-loris or dead peer: a read stalled past SO_RCVTIMEO or
         the frame dribbled past the request budget *)
      Metrics.incr Metrics.global "daemon.timeouts";
      evict e
    | Error (Error.Admission _ as e) ->
      (* an over-limit frame was refused before its payload was read;
         the stream cannot resync, so answer and drop *)
      evict e
    | Error (Error.Protocol _ as e) ->
      (* a damaged or hostile frame: answer (best-effort) and drop the
         connection — framing cannot resync after a bad length *)
      Metrics.incr Metrics.global "daemon.proto_error";
      ignore (send_response fd (error_frame e));
      Evicted
    | Error _ -> Hung_up (* socket trouble; nothing to answer on *)
    | Ok (Some Protocol.Shutdown) ->
      ignore (send_response fd Protocol.Done);
      Shutdown_now
    | Ok (Some req) -> (
      Metrics.incr Metrics.global "daemon.requests";
      let t0 = Unix.gettimeofday () in
      let resp = locked st.dispatch_lock (fun () -> dispatch_guarded st config registry req) in
      Metrics.observe Metrics.global "daemon.request_us"
        (1e6 *. (Unix.gettimeofday () -. t0));
      match send_response fd resp with
      | Ok () ->
        if Atomic.get st.draining then Hung_up (* finish in-flight, then close *)
        else loop ()
      | Error (Error.Timeout _) ->
        (* the peer stopped draining its socket: writing would block
           forever, so the response is abandoned and the peer evicted *)
        Metrics.incr Metrics.global "daemon.timeouts";
        Metrics.incr Metrics.global "daemon.evicted";
        Evicted
      | Error _ -> Hung_up)
  in
  loop ()

(* ---- worker pool -------------------------------------------------------- *)

let worker st config registry wid =
  let rec next () =
    let job =
      locked st.q_lock (fun () ->
          let rec await () =
            if st.stop_workers then None
            else
              match Queue.take_opt st.queue with
              | Some fd ->
                st.inflight <- st.inflight + 1;
                Hashtbl.replace st.active wid fd;
                Some fd
              | None ->
                Condition.wait st.q_cond st.q_lock;
                await ()
          in
          await ())
    in
    match job with
    | None -> () (* drain: idle worker exits *)
    | Some fd ->
      let outcome =
        try serve_conn st config registry fd
        with exn ->
          (* nothing inside a connection is allowed to be fatal *)
          Metrics.incr Metrics.global "daemon.request_error";
          ignore (send_response fd (error_frame (Error.Io (Printexc.to_string exn))));
          Hung_up
      in
      close_quiet fd;
      locked st.q_lock (fun () ->
          st.inflight <- st.inflight - 1;
          Hashtbl.remove st.active wid);
      (match outcome with
      | Shutdown_now -> stop ()
      | Hung_up | Evicted -> ());
      next ()
  in
  next ()

(* ---- accept loop / admission ------------------------------------------- *)

(* Queue-full shedding: the peer gets a typed Overloaded frame with the
   daemon's backoff hint and the connection closes. The frame is a few
   dozen bytes — it fits the socket's send buffer, so this cannot wedge
   the accept loop even against a peer that never reads. *)
let shed config fd =
  Metrics.incr Metrics.global "daemon.shed";
  let e = Error.Overloaded { retry_after_ms = config.retry_after_ms } in
  let code, message = Error.to_wire e in
  ignore
    (Protocol.send ~site:"serve.send" fd
       (Protocol.encode_response (Protocol.Error_frame { code; message })));
  close_quiet fd

let admit st config fd =
  Metrics.incr Metrics.global "daemon.conns";
  set_conn_timeouts config fd;
  let admitted =
    locked st.q_lock (fun () ->
        if Queue.length st.queue >= config.max_pending then false
        else begin
          Queue.push fd st.queue;
          Condition.signal st.q_cond;
          true
        end)
  in
  if not admitted then shed config fd

let accept_loop st config listener pipe_rd =
  let backoff consec =
    (* a persistent accept failure (EMFILE, ENFILE, injected storm)
       must not busy-spin the loop; after a few consecutive failures
       sleep briefly, growing to half a second *)
    if consec >= 3 then
      Unix.sleepf (Float.min 0.5 (0.01 *. Float.pow 2.0 (float_of_int (Int.min consec 9))))
  in
  let rec go consec =
    if Atomic.get stop_requested then ()
    else
      match Unix.select [ listener; pipe_rd ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go consec
      | exception Unix.Unix_error (_, _, _) ->
        Metrics.incr Metrics.global "daemon.accept_error";
        backoff (consec + 1);
        go (consec + 1)
      | ready, _, _ ->
        if Atomic.get stop_requested || List.mem pipe_rd ready then ()
        else (
          match
            Fault.raise_io ~site:"serve.accept";
            Unix.accept listener
          with
          | exception Fault.Injected _ ->
            (* the chaos harness refusing this accept: count it like a
               real transient accept failure *)
            Metrics.incr Metrics.global "daemon.accept_error";
            backoff (consec + 1);
            go (consec + 1)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go consec
          | exception Unix.Unix_error (_, _, _) ->
            Metrics.incr Metrics.global "daemon.accept_error";
            backoff (consec + 1);
            go (consec + 1)
          | fd, _ ->
            admit st config fd;
            go 0)
  in
  go 0

(* ---- run / drain -------------------------------------------------------- *)

let run ?(config = default_config) ?(on_ready = fun _ -> ()) registry =
  (* a client hanging up mid-response must be an EPIPE result, not a
     fatal signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  ignore (Registry.load registry);
  let config = { config with workers = Int.max 1 config.workers } in
  let listener = bind_endpoint ~backlog:(Int.max 1 config.backlog) config.endpoint in
  let pipe_rd, pipe_wr = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock pipe_wr;
  Atomic.set stop_requested false;
  add_stop_pipe pipe_wr;
  let st =
    {
      q_lock = Mutex.create ();
      q_cond = Condition.create ();
      queue = Queue.create ();
      inflight = 0;
      active = Hashtbl.create 16;
      stop_workers = false;
      dispatch_lock = Mutex.create ();
      started = Unix.gettimeofday ();
      draining = Atomic.make false;
    }
  in
  let threads =
    List.init config.workers (fun wid ->
        Thread.create (fun () -> worker st config registry wid) ())
  in
  on_ready config.endpoint;
  accept_loop st config listener pipe_rd;
  (* ---- graceful drain: refuse, finish, then force ---- *)
  let t_drain = Unix.gettimeofday () in
  Atomic.set st.draining true;
  close_quiet listener;
  (match config.endpoint with
  | Protocol.Unix_sock path -> (
    try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | Protocol.Tcp _ -> ());
  (* connections accepted but never picked up have no request in
     flight — close them outright rather than holding the drain open *)
  locked st.q_lock (fun () ->
      st.stop_workers <- true;
      Queue.iter close_quiet st.queue;
      Queue.clear st.queue;
      Condition.broadcast st.q_cond);
  let drain_deadline = t_drain +. Float.max 0.0 config.drain_timeout_s in
  let rec await_idle () =
    let busy = locked st.q_lock (fun () -> st.inflight) in
    if busy > 0 && Unix.gettimeofday () < drain_deadline then begin
      Unix.sleepf 0.002;
      await_idle ()
    end
  in
  await_idle ();
  (* past the deadline: shut the remaining peers' sockets so their
     workers fail fast out of any blocked read or write *)
  locked st.q_lock (fun () ->
      Hashtbl.iter
        (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error (_, _, _) -> ())
        st.active);
  List.iter Thread.join threads;
  Metrics.observe Metrics.global "daemon.drain_ms"
    (1000.0 *. (Unix.gettimeofday () -. t_drain));
  remove_stop_pipe pipe_wr;
  close_quiet pipe_rd;
  close_quiet pipe_wr
