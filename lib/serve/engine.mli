(** In-process serving: cached per-synopsis estimation engines with the
    graceful-degradation contract.

    This is the logic behind the {!Xcluster} facade's estimation entry
    points (moved here so the daemon and the library share one
    implementation): per-synopsis {!Xc_core.Plan.Cache} and
    {!Xc_core.Plan.Batch} instances keyed by the synopsis's
    process-unique uid in bounded tables, and serving paths that
    {b degrade instead of raising} — a fast-path failure falls back to
    slower but bit-identical estimation and bumps a counter
    ([serve.fallback] / [serve.batch_fallback]), unless the
    {!Options.Strict} policy asks for a typed error instead.

    The tables are bounded ({!max_cached} synopses) because synopses
    are long-lived in any serving scenario, but a workload churning
    through thousands of short-lived synopses (budget sweeps) must not
    accumulate dead caches. *)

type synopsis = Xc_core.Synopsis.Sealed.t
type query = Xc_twig.Twig_query.t

val max_cached : int
(** Bound on each per-uid table; on overflow the table resets. *)

val cache_for : synopsis -> Xc_core.Plan.Cache.t
(** The synopsis's plan cache, created on first use. *)

val batch_for : synopsis -> Xc_core.Plan.Batch.t
(** The synopsis's batch engine, created on first use. *)

val drop : synopsis -> unit
(** Evict the synopsis's cached plan cache and batch engine, if any.
    Caches key on the sealed uid so a stale generation can never be
    {e reused} for a new one — [drop] additionally frees the memory
    promptly when a generation is retired ({!Registry.swap}). *)

val estimate_uncached : synopsis -> query -> float
(** {!Xc_core.Estimate.selectivity} — the baseline every cached path is
    validated against, and the last rung of the degradation ladder. *)

val estimate : synopsis -> query -> float
(** Through the compiled plan cache; on any failure, degrades to
    {!estimate_uncached} (bit-identical, slower) and bumps
    [serve.fallback]. Never raises on a per-synopsis failure. *)

val estimate_result :
  ?options:Options.t -> synopsis -> query -> (float, Error.t) result
(** {!estimate} under a policy: [Degrade] always returns [Ok];
    [Strict] returns [Error (Unavailable _)] when the compiled path
    failed. *)

val estimate_batch :
  ?options:Options.t -> synopsis -> query array -> (float array, Error.t) result
(** Batched serving through the cached batch engine,
    [options.domains]-way sharded ([None] defers to [XC_DOMAINS]).
    [result.(i)] answers query [i], bit-identical to {!estimate} and
    {!estimate_uncached}. Under [Degrade] a batch-engine failure falls
    back to per-query estimation (bumping [serve.batch_fallback]) and
    the call still returns [Ok]; under [Strict] it returns
    [Error (Unavailable _)]. *)

val estimate_batch_with :
  ?options:Options.t ->
  Xc_core.Plan.Batch.t ->
  synopsis ->
  query array ->
  (float array, Error.t) result
(** {!estimate_batch} through a caller-supplied engine (the daemon's
    registry holds engines under its own LRU admission policy). *)

val estimate_batch_exn :
  ?options:Options.t -> synopsis -> query array -> float array
(** {!estimate_batch}, raising [Failure] on a strict-mode error. Under
    the default [Degrade] policy it never raises. *)
