module Plan = Xc_core.Plan
module Sealed = Xc_core.Synopsis.Sealed
module Metrics = Xc_util.Metrics

type synopsis = Sealed.t
type query = Xc_twig.Twig_query.t

let max_cached = 64

(* One plan cache / batch engine per synopsis, keyed by its
   process-unique uid (a sealed synopsis never mutates, so a cache
   stays valid for the synopsis's whole lifetime). *)
let caches : (int, Plan.Cache.t) Hashtbl.t = Hashtbl.create 16
let batch_engines : (int, Plan.Batch.t) Hashtbl.t = Hashtbl.create 16

let table_find tbl create syn =
  let uid = Sealed.uid syn in
  match Hashtbl.find_opt tbl uid with
  | Some v -> v
  | None ->
    if Hashtbl.length tbl >= max_cached then Hashtbl.reset tbl;
    let v = create syn in
    Hashtbl.add tbl uid v;
    v

let cache_for syn = table_find caches Plan.Cache.create syn
let batch_for syn = table_find batch_engines Plan.Batch.create syn

let drop syn =
  let uid = Sealed.uid syn in
  Hashtbl.remove caches uid;
  Hashtbl.remove batch_engines uid

let estimate_uncached = Xc_core.Estimate.selectivity

(* Serving never raises on a per-synopsis failure: if the compiled
   pipeline trips over a synopsis (decoded from a damaged store in a
   way validation does not model), the estimate falls back to the
   direct uncached path and the event is counted — the degraded answer
   is bit-identical, only slower. *)
let estimate syn q =
  match
    let c = cache_for syn in
    Plan.Cache.estimate_result c q
  with
  | Ok v -> v
  | Error _ | (exception _) ->
    Metrics.incr Metrics.global "serve.fallback";
    estimate_uncached syn q

(* A degraded answer still has to touch the synopsis: if the fallback
   itself trips — a lazily loaded synopsis whose deferred section
   verification fails (Codec.Lazy_failure) at this very access — there
   is no answer to give, so serving reports Unavailable instead of
   letting the exception escape the result-typed API. *)
let degrade_result syn q =
  Metrics.incr Metrics.global "serve.fallback";
  match estimate_uncached syn q with
  | v -> Ok v
  | exception exn -> Error (Error.Unavailable (Printexc.to_string exn))

let estimate_result ?(options = Options.default) syn q =
  match
    let c = cache_for syn in
    Plan.Cache.estimate_result c q
  with
  | Ok v -> Ok v
  | Error msg | (exception Failure msg) -> (
    match options.Options.fallback with
    | Options.Degrade -> degrade_result syn q
    | Options.Strict -> Error (Error.Unavailable msg))
  | exception exn -> (
    match options.Options.fallback with
    | Options.Degrade -> degrade_result syn q
    | Options.Strict -> Error (Error.Unavailable (Printexc.to_string exn)))

(* Same containment for the batched fallback: [estimate]'s own
   fallback re-raises on a synopsis that cannot be read at all. *)
let degrade_batch syn queries =
  Metrics.incr Metrics.global "serve.batch_fallback";
  match Array.map (fun q -> estimate syn q) queries with
  | r -> Ok r
  | exception exn -> Error (Error.Unavailable (Printexc.to_string exn))

let estimate_batch_with ?(options = Options.default) engine syn queries =
  match
    let cohort = options.Options.cohort in
    match options.Options.domains with
    | Some d -> Plan.Batch.run_result ~domains:d ~cohort engine queries
    | None -> Plan.Batch.run_result ~cohort engine queries
  with
  | Ok r -> Ok r
  | Error msg | (exception Failure msg) -> (
    match options.Options.fallback with
    | Options.Degrade -> degrade_batch syn queries
    | Options.Strict -> Error (Error.Unavailable msg))
  | exception exn -> (
    match options.Options.fallback with
    | Options.Degrade -> degrade_batch syn queries
    | Options.Strict -> Error (Error.Unavailable (Printexc.to_string exn)))

let estimate_batch ?options syn queries =
  match
    let e = batch_for syn in
    estimate_batch_with ?options e syn queries
  with
  | r -> r
  | exception exn ->
    (* engine construction itself failed; estimate_batch_with never
       raises *)
    let options = Option.value options ~default:Options.default in
    (match options.Options.fallback with
    | Options.Degrade -> degrade_batch syn queries
    | Options.Strict -> Error (Error.Unavailable (Printexc.to_string exn)))

let estimate_batch_exn ?options syn queries =
  match estimate_batch ?options syn queries with
  | Ok r -> r
  | Error e -> failwith (Error.to_string e)
