type typing = tag:string -> string -> Value.t

exception Malformed of string

type state = {
  src : string;
  mutable pos : int;
  typing : typing;
  attributes : [ `Discard | `Elements ];
}

(* Line and column of a byte offset, for error messages an editor can
   jump to. Computed only on the failure path, so parsing stays a
   single forward scan. *)
let line_col src pos =
  let stop = min pos (String.length src) in
  let line = ref 1 in
  let bol = ref 0 in
  for i = 0 to stop - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, stop - !bol + 1)

let fail st msg =
  let line, col = line_col st.src st.pos in
  raise
    (Malformed (Printf.sprintf "%s at byte %d (line %d, column %d)" msg st.pos line col))
let eof st = st.pos >= String.length st.src
let peek st = st.src.[st.pos]
let advance st = st.pos <- st.pos + 1

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name st =
  if eof st || not (is_name_start (peek st)) then fail st "expected name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let expect st c =
  if eof st || peek st <> c then fail st (Printf.sprintf "expected '%c'" c);
  advance st

let expect_string st s =
  String.iter (fun c -> expect st c) s

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

(* Decode one entity/character reference; [st.pos] is just past '&'. *)
let read_reference st buf =
  let semi =
    match String.index_from_opt st.src st.pos ';' with
    | Some i when i - st.pos <= 12 -> i
    | Some _ | None -> fail st "unterminated entity reference"
  in
  let body = String.sub st.src st.pos (semi - st.pos) in
  st.pos <- semi + 1;
  match body with
  | "amp" -> Buffer.add_char buf '&'
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "quot" -> Buffer.add_char buf '"'
  | "apos" -> Buffer.add_char buf '\''
  | _ ->
    if String.length body > 1 && body.[0] = '#' then begin
      let code =
        try
          if body.[1] = 'x' || body.[1] = 'X' then
            int_of_string ("0x" ^ String.sub body 2 (String.length body - 2))
          else int_of_string (String.sub body 1 (String.length body - 1))
        with Failure _ -> fail st "bad character reference"
      in
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else Buffer.add_char buf '?' (* non-ASCII: placeholder, we are byte-oriented *)
    end
    else fail st ("unknown entity &" ^ body ^ ";")

let skip_until st terminator what =
  let rec loop () =
    if eof st then fail st ("unterminated " ^ what)
    else if looking_at st terminator then
      st.pos <- st.pos + String.length terminator
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

(* Read the attribute list up to (but not including) '>' or '/>'.
   Attribute values decode the same references as character data. *)
let read_attributes st =
  let attrs = ref [] in
  let rec loop () =
    skip_spaces st;
    if eof st then fail st "unterminated start tag"
    else
      match peek st with
      | '>' | '/' -> ()
      | _ ->
        let name = read_name st in
        skip_spaces st;
        expect st '=';
        skip_spaces st;
        let quote = peek st in
        if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute";
        advance st;
        let buf = Buffer.create 16 in
        let rec value () =
          if eof st then fail st "unterminated attribute value"
          else if peek st = quote then advance st
          else if peek st = '&' then begin
            advance st;
            read_reference st buf;
            value ()
          end
          else begin
            Buffer.add_char buf (peek st);
            advance st;
            value ()
          end
        in
        value ();
        if st.attributes = `Elements then attrs := (name, Buffer.contents buf) :: !attrs;
        loop ()
  in
  loop ();
  List.rev !attrs

let rec parse_misc st =
  skip_spaces st;
  if looking_at st "<!--" then begin
    st.pos <- st.pos + 4;
    skip_until st "-->" "comment";
    parse_misc st
  end
  else if looking_at st "<?" then begin
    st.pos <- st.pos + 2;
    skip_until st "?>" "processing instruction";
    parse_misc st
  end
  else if looking_at st "<!DOCTYPE" then begin
    (* naive: skip to the first '>' not inside an internal subset *)
    let rec scan depth =
      if eof st then fail st "unterminated DOCTYPE"
      else
        match peek st with
        | '[' -> advance st; scan (depth + 1)
        | ']' -> advance st; scan (depth - 1)
        | '>' when depth = 0 -> advance st
        | _ -> advance st; scan depth
    in
    st.pos <- st.pos + 9;
    scan 0;
    parse_misc st
  end

(* Parse element content; returns (children, text). *)
let rec parse_content st =
  let children = ref [] in
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated element content"
    else if looking_at st "</" then ()
    else if looking_at st "<!--" then begin
      st.pos <- st.pos + 4;
      skip_until st "-->" "comment";
      loop ()
    end
    else if looking_at st "<![CDATA[" then begin
      st.pos <- st.pos + 9;
      let close =
        let rec find i =
          if i + 3 > String.length st.src then fail st "unterminated CDATA"
          else if String.sub st.src i 3 = "]]>" then i
          else find (i + 1)
        in
        find st.pos
      in
      Buffer.add_string buf (String.sub st.src st.pos (close - st.pos));
      st.pos <- close + 3;
      loop ()
    end
    else if looking_at st "<?" then begin
      st.pos <- st.pos + 2;
      skip_until st "?>" "processing instruction";
      loop ()
    end
    else if peek st = '<' then begin
      children := parse_element st :: !children;
      loop ()
    end
    else if peek st = '&' then begin
      advance st;
      read_reference st buf;
      loop ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  (List.rev !children, Buffer.contents buf)

and parse_element st =
  expect st '<';
  let tag = read_name st in
  let attrs = read_attributes st in
  let attr_children =
    List.map
      (fun (name, raw) ->
        let tag = "@" ^ name in
        Node.make ~value:(st.typing ~tag raw) tag)
      attrs
  in
  if looking_at st "/>" then begin
    st.pos <- st.pos + 2;
    Node.make ~children:attr_children tag
  end
  else begin
    expect st '>';
    let children, text = parse_content st in
    expect_string st "</";
    let close = read_name st in
    if not (String.equal close tag) then
      fail st (Printf.sprintf "mismatched tag: <%s> closed by </%s>" tag close);
    skip_spaces st;
    expect st '>';
    match attr_children @ children with
    | [] ->
      let value = st.typing ~tag text in
      Node.make ~value tag
    | (_ :: _) as all ->
      if children = [] && String.length (String.trim text) > 0 then
        (* an element with attributes and text keeps its text as a value *)
        Node.make ~value:(st.typing ~tag text) ~children:all tag
      else Node.make ~children:all tag
  end

let all_digits s =
  String.length s > 0
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s

let trim_text s = String.trim s

let word_count s =
  let words = ref 0 in
  let in_word = ref false in
  String.iter
    (fun c ->
      if is_space c then in_word := false
      else if not !in_word then begin
        in_word := true;
        incr words
      end)
    s;
  !words

let default_typing ~tag:_ raw =
  let text = trim_text raw in
  if String.length text = 0 then Value.Null
  else if all_digits text then
    match int_of_string_opt text with
    | Some n -> Value.Numeric n
    | None -> Value.Str text
  else if String.length text > 64 || word_count text > 8 then
    Tokenizer.text_value text
  else Value.Str text

let typing_of_assoc table =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (tag, vt) -> Hashtbl.replace tbl tag vt) table;
  fun ~tag raw ->
    let text = trim_text raw in
    match Hashtbl.find_opt tbl tag with
    | None | Some Value.Tnull -> Value.Null
    | Some Value.Tnumeric -> (
      match int_of_string_opt text with
      | Some n -> Value.Numeric n
      | None -> if String.length text = 0 then Value.Null else Value.Str text)
    | Some Value.Tstring -> if String.length text = 0 then Value.Null else Value.Str text
    | Some Value.Ttext ->
      if String.length text = 0 then Value.Null else Tokenizer.text_value text

let parse_string ?(attributes = `Discard) ?(typing = default_typing) src =
  let st = { src; pos = 0; typing; attributes } in
  parse_misc st;
  if eof st || peek st <> '<' then fail st "expected root element";
  let root = parse_element st in
  parse_misc st;
  skip_spaces st;
  if not (eof st) then fail st "trailing content after root element";
  Document.create root

let parse_file ?attributes ?typing path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_string ?attributes ?typing src
