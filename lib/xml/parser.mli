(** A small, dependency-free parser for the data-centric XML subset used
    by this system.

    Supported: elements, attributes, character data, CDATA sections,
    comments, processing instructions, XML declarations, and the five
    predefined entities plus decimal/hex character references.

    Attributes are discarded by default, matching the paper's
    element-only data model. Passing [~attributes:`Elements] instead
    maps each attribute to a child element labelled [@name] whose value
    goes through the same [typing] callback — the standard trick for
    attribute-heavy real-world XML (XMark's original output, for
    instance) so that attributes participate in summarization and
    querying like any other element.

    Character data directly under an element that has no element children
    becomes the element's value; the [typing] callback decides how the raw
    text is converted into a typed {!Value.t}. Mixed content (text amid
    child elements) is ignored, as in the paper's tree model. *)

type typing = tag:string -> string -> Value.t
(** [typing ~tag raw] converts the raw character data of an element
    labelled [tag] into a typed value. *)

exception Malformed of string
(** Raised on syntax errors with a human-readable message carrying the
    byte offset and the line/column it falls on (e.g.
    ["mismatched tag: <a> closed by </b> at byte 512 (line 14, column 3)"]). *)

val default_typing : typing
(** Heuristic typing: integer-looking text becomes [Numeric]; text longer
    than 64 bytes or containing more than 8 words becomes [Text]; other
    non-empty text becomes [Str]; whitespace-only text becomes [Null]. *)

val typing_of_assoc : (string * Value.vtype) list -> typing
(** Typing driven by a tag->type table; tags not listed get [Null]
    (their character data is dropped). Numeric parsing failures fall back
    to [Str]. *)

val parse_string : ?attributes:[ `Discard | `Elements ] -> ?typing:typing ->
  string -> Document.t
(** Parses a complete XML document from a string.
    @raise Malformed on syntax errors. *)

val parse_file : ?attributes:[ `Discard | `Elements ] -> ?typing:typing ->
  string -> Document.t
(** Reads the file and parses it. *)
