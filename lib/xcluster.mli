(** The stable XCluster API.

    This facade is the supported surface for applications, organized by
    lifecycle stage:

    - {!Build} — parse or generate a document, construct and compress a
      budgeted synopsis;
    - {!Query} — parse twigs and estimate selectivities through the
      compiled pipeline;
    - {!Store} — crash-safe persistence with typed, result-first
      errors;
    - {!Serve} — the serving layer: batched estimation under explicit
      {!Serve.options}, and the multi-synopsis daemon
      (registry/daemon/client);
    - {!Metrics} — the global instrumentation registry.

    Everything underneath ([Xc_core], [Xc_twig], [Xc_serve], …) remains
    reachable for experiments and internal tooling.

    {b Results first.} Operations that can fail for reasons outside the
    program's control — I/O, decoding, serving — return
    [(_, error) result] with a typed error; the raising forms are the
    [_exn]-suffixed variants for callers that have already verified
    their input.

    A synopsis has two lives. During construction it is a mutable
    {!builder} ({!Xc_core.Synopsis.Builder.t}): {!Build.reference}
    produces one, and the build algorithms merge and compress it in
    place. Every finished synopsis is a frozen {!synopsis}
    ({!Xc_core.Synopsis.Sealed.t}): {!Build.compress}/{!Build.run}
    freeze on the way out, {!Build.seal} freezes a builder directly,
    and estimation, explanation, and persistence accept only the sealed
    form. Sealed synopses never mutate, so the per-synopsis plan caches
    need no invalidation machinery.

    {b Incremental maintenance.} A live builder can absorb document
    mutations without a rebuild: {!Build.update} applies a batch of
    subtree insert/delete deltas and repairs the budgets locally
    ({!Xc_core.Update}); {!Build.update_and_seal} freezes the repaired
    generation, which a serving registry swaps in atomically
    ({!Serve.Registry.swap}). Each freeze carries a fresh uid, so every
    engine cache naturally drops the stale generation. *)

type document = Xc_xml.Document.t
type query = Xc_twig.Twig_query.t

type builder = Xc_core.Synopsis.Builder.t
(** A synopsis under construction — mutable, not estimable. *)

type synopsis = Xc_core.Synopsis.Sealed.t
(** A finished synopsis — frozen, estimable, persistable. *)

type budget = Xc_core.Build.budget = {
  bstr : int;  (** structural budget, bytes *)
  bval : int;  (** value budget, bytes *)
  pool : Xc_core.Pool.config;
}

(** Synopsis construction: document → reference synopsis → budgeted
    compression → sealed synopsis. *)
module Build : sig
  val budget :
    ?pool:Xc_core.Pool.config -> ?bstr_kb:int -> ?bval_kb:int -> unit -> budget
  (** See {!Xc_core.Build.budget} (defaults 20 KB / 150 KB). *)

  val reference :
    ?detail:Xc_core.Reference.detail ->
    ?min_extent:int ->
    ?value_min_extent:int ->
    ?value_paths:Xc_xml.Label.t list list ->
    document ->
    builder
  (** The detailed reference synopsis construction
      ({!Xc_core.Reference.build}). *)

  val seal : builder -> synopsis
  (** Freeze a builder into the read-optimized sealed form
      ({!Xc_core.Synopsis.freeze}). The builder is unchanged and may
      keep mutating; the sealed value never will. *)

  val compress : budget -> builder -> synopsis
  (** XCLUSTERBUILD: compress a reference synopsis to the budget (on a
      private copy; the argument is unchanged) and seal the result. *)

  val compress_builder : budget -> builder -> builder
  (** {!compress} without the freeze ({!Xc_core.Build.run_builder}):
      the budgeted synopsis still in mutable form, the starting point
      of an incremental-update loop ({!update} keeps repairing it in
      place; {!seal} cuts each served generation). *)

  val run :
    ?budget:budget ->
    ?min_extent:int ->
    ?value_min_extent:int ->
    ?value_paths:Xc_xml.Label.t list list ->
    document ->
    synopsis
  (** [reference] followed by [compress] — document to budgeted
      synopsis in one call. *)

  type mutation = Xc_core.Update.mutation =
    | Insert of { parent : Xc_xml.Label.t list; subtree : Xc_xml.Node.t }
    | Delete of { parent : Xc_xml.Label.t list; subtree : Xc_xml.Node.t }
        (** A subtree insert/delete under the element named by the
            root-inclusive label path [parent] — see
            {!Xc_core.Update.mutation}. *)

  type update_stats = Xc_core.Update.stats = {
    applied : int;
    skipped : int;
    dirty : int;
    created : int;
    removed : int;
    repair_merges : int;
  }

  val update :
    ?budget:budget -> builder -> mutation list -> (update_stats, string) result
  (** Apply a mutation batch to a live builder in place and repair it
      back under the budget with localized phase-1/phase-2 passes
      ({!Xc_core.Update.apply}). [Error] on a batch whose parent path
      does not resolve — the builder is then untouched. *)

  val update_and_seal :
    ?budget:budget -> builder -> mutation list ->
    (update_stats * synopsis, string) result
  (** {!update} followed by {!seal}: the repaired generation ready for
      {!Serve.Registry.swap}; the builder stays live for the next
      batch. *)

  val auto_split :
    ?ratios:float list ->
    total_kb:int ->
    sample:(synopsis -> float) ->
    builder ->
    budget * synopsis
  (** Automated structural/value budget-split search
      ({!Xc_core.Build.auto_split}). *)

  val builder_stats : Format.formatter -> builder -> unit
  (** Size/shape summary of an unsealed builder (the CLI prints this
      for the reference synopsis before compressing). *)

  val validate_builder : builder -> (unit, string) result
  (** Structural invariants of a builder
      ({!Xc_core.Synopsis.Builder.validate}). *)
end

(** Query parsing, selectivity estimation, and synopsis inspection. *)
module Query : sig
  val parse : string -> query
  (** Parse a twig query, e.g.
      ["//movie[year > 1990]/title[contains(War)]"].
      @raise Xc_twig.Twig_parse.Parse_error on syntax errors. *)

  val estimate : synopsis -> query -> float
  (** Estimated number of binding tuples, through the compiled
      pipeline. The plan cache is keyed on the synopsis's
      {!Xc_core.Synopsis.Sealed.uid} and created on first use; sealed
      synopses never mutate, so cached plans and memos stay valid
      forever.

      Serving degrades instead of raising: if plan compilation or
      evaluation fails for this synopsis, the call falls back to the
      bit-identical uncached estimator and bumps the [serve.fallback]
      counter in {!Xc_util.Metrics.global}. *)

  val plan : synopsis -> query -> Xc_core.Plan.t
  (** The cached compiled plan (compiling on first sight) for callers
      that estimate the same query many times and want to skip even
      the cache lookup. *)

  val estimate_with_plan : Xc_core.Plan.t -> float
  (** Estimate from a compiled plan ({!Xc_core.Plan.estimate}). *)

  val estimate_uncached : synopsis -> query -> float
  (** The direct embedding enumeration
      ({!Xc_core.Estimate.selectivity}), bypassing plans and memos —
      the baseline the pipeline is validated against. *)

  val explain : synopsis -> query -> Xc_core.Estimate.explanation list
  (** Per query variable, the clusters it binds to
      ({!Xc_core.Estimate.explain}). *)

  (* ---- synopsis inspection ------------------------------------------- *)

  val validate : synopsis -> (unit, string) result
  val pp_stats : Format.formatter -> synopsis -> unit
  val n_nodes : synopsis -> int
  val n_edges : synopsis -> int

  val size_bytes : synopsis -> int
  (** Structural + value bytes. *)

  val succ : synopsis -> int -> (int * float) list
  (** Outgoing edges of a cluster as [(child sid, avg count)],
      ascending by child sid. *)

  val pred : synopsis -> int -> int list
  (** Parent sids of a cluster, ascending. *)
end

(** Crash-safe persistence, result-first. *)
module Store : sig
  type error = Xc_core.Codec.error

  val save : string -> synopsis -> (unit, error) result
  (** Atomic write (temp file → fsync → rename) of the checksummed,
      mmap-friendly v3 format via {!Xc_core.Codec.save}; on [Error _]
      a pre-existing file at the path is untouched. *)

  val load : ?eager:bool -> string -> (synopsis, error) result
  (** Read and decode; [load] itself never raises. With [eager:false]
      (the default) a v3 file on a little-endian host memory-maps in
      near-constant time, deferring per-section CRC verification and
      value-summary decoding to first touch; a deferred failure raises
      {!Xc_core.Codec.Lazy_failure} at the access point (the serve
      layer catches it and degrades). [eager:true] fully verifies up
      front. Failures additionally bump [serve.load_error] — a server
      that keeps a directory of synopses uses this to skip (and count)
      corrupt artifacts instead of dying on the first one. *)

  val save_exn : string -> synopsis -> unit
  (** @raise Failure on I/O failure (the previous file, if any, is
      intact). *)

  val load_exn : string -> synopsis
  (** Lazy {!load}. @raise Failure on read or decode failure. *)

  val verify : ?eager:bool -> string -> (Xc_core.Codec.info, error) result
  (** Integrity check (framing + per-section CRC-32 for v2/v3, full
      decode for v1) without building the synopsis —
      {!Xc_core.Codec.verify}. [eager:false] checks only the subset a
      lazy v3 load verifies at admission. *)

  val sections : ?eager:bool -> string -> (Xc_core.Codec.section_status list, error) result
  (** Per-section CRC report ({!Xc_core.Codec.sections}): localizes
      damage instead of stopping at the first bad checksum. *)
end

(** The serving layer: batched estimation under explicit options, and
    the multi-synopsis daemon. *)
module Serve : sig
  module Error = Xc_serve.Error
  (** The serving layer's single error variant: codec, protocol,
      admission, query, availability, and I/O failures in one type. *)

  type error = Error.t

  type fallback = Xc_serve.Options.fallback =
    | Degrade  (** fall back to slower, bit-identical estimation *)
    | Strict  (** surface {!Error.Unavailable} instead of degrading *)

  type options = Xc_serve.Options.t = {
    domains : int option;
        (** batch worker count; [None] means the [XC_DOMAINS]
            environment default — the old [<= 0] sentinel is retired *)
    fallback : fallback;
    cohort : bool;
        (** matrix-major cohort evaluation (the default); [false]
            selects the query-major reference walk — same answers
            bit for bit, different sweep order *)
    max_batch : int;
        (** daemon admission limit on queries per batch request;
            oversized batches are refused with a typed admission
            error *)
    max_frame_bytes : int;
        (** daemon admission limit on one wire frame's payload *)
  }

  val options :
    ?domains:int ->
    ?fallback:fallback ->
    ?cohort:bool ->
    ?max_batch:int ->
    ?max_frame_bytes:int ->
    unit ->
    options
  (** Smart constructor ({!Xc_serve.Options.make}); [domains], when
      given, must be positive, as must the admission limits. *)

  val default_options : options
  (** [{ domains = None; fallback = Degrade; cohort = true;
        max_batch = 8192; max_frame_bytes = 64 MiB }]. *)

  val estimate_batch :
    ?options:options -> synopsis -> query array -> (float array, error) result
  (** Batched serving through {!Xc_core.Plan.Batch}: answers
      [result.(i)] for query [i], bit-identical to {!Query.estimate} /
      {!Query.estimate_uncached} and independent of the worker count.
      The per-synopsis engine — interned path-expression transition
      matrices plus compiled queries — is cached by synopsis uid like
      the plan caches, so repeated workloads amortize to array walks.

      Under {!Degrade} (the default) an engine failure falls back to
      per-query estimation (which itself can fall back to the uncached
      path), bumps [serve.batch_fallback], and the call still returns
      [Ok]; under {!Strict} it returns [Error (Unavailable _)]. *)

  val estimate_batch_exn :
    ?options:options -> synopsis -> query array -> float array
  (** {!estimate_batch}, raising [Failure] on a strict-mode error;
      never raises under {!Degrade}. *)

  val batch_engine : synopsis -> Xc_core.Plan.Batch.t
  (** The cached batch engine behind {!estimate_batch} (created on
      first use), for callers that want
      {!Xc_core.Plan.Batch.prepare}/[run_prepared] control or its size
      accessors. *)

  module Options = Xc_serve.Options
  module Protocol = Xc_serve.Protocol
  (** Frame layout and message types of the daemon's wire protocol. *)

  module Registry = Xc_serve.Registry
  (** Named synopsis registry with verifying admission and a bounded
      engine LRU. *)

  module Daemon = Xc_serve.Daemon
  (** The [xcluster serve] daemon loop. *)

  module Client = Xc_serve.Client
  (** Result-first client for the daemon. *)
end

(** The global metrics registry the pipeline instruments (plan
    compiles, cache hits/misses, expansion depths, estimate and daemon
    latency). *)
module Metrics : sig
  val snapshot : unit -> Xc_util.Metrics.snapshot
  val json : unit -> string
  (** {!snapshot} rendered as a single-line JSON object. *)

  val reset : unit -> unit
end
