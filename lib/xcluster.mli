(** The stable XCluster API.

    This facade is the supported surface for applications: parse or
    generate a document, {!build} a budgeted synopsis, {!estimate} twig
    selectivities through the compiled pipeline, and read
    {!metrics_snapshot}. Everything underneath ([Xc_core], [Xc_twig],
    …) remains reachable for experiments and internal tooling.

    A synopsis has two lives. During construction it is a mutable
    {!builder} ({!Xc_core.Synopsis.Builder.t}): {!reference} produces
    one, and the build algorithms merge and compress it in place. Every
    finished synopsis is a frozen {!synopsis}
    ({!Xc_core.Synopsis.Sealed.t}): {!compress}/{!build} freeze on the
    way out, {!seal} freezes a builder directly, and estimation,
    explanation, and persistence accept only the sealed form. Sealed
    synopses never mutate, so the per-synopsis plan caches need no
    invalidation machinery.

    Estimation here always goes through {!Xc_core.Plan}: every synopsis
    gets a plan cache on first use, so repeated estimates — the serving
    pattern — reuse compiled plans and memoized path expansions while
    returning floats bit-identical to the uncached estimator. *)

type document = Xc_xml.Document.t
type query = Xc_twig.Twig_query.t

type builder = Xc_core.Synopsis.Builder.t
(** A synopsis under construction — mutable, not estimable. *)

type synopsis = Xc_core.Synopsis.Sealed.t
(** A finished synopsis — frozen, estimable, persistable. *)

type budget = Xc_core.Build.budget = {
  bstr : int;  (** structural budget, bytes *)
  bval : int;  (** value budget, bytes *)
  pool : Xc_core.Pool.config;
}

(* ---- construction ----------------------------------------------------- *)

val budget : ?pool:Xc_core.Pool.config -> ?bstr_kb:int -> ?bval_kb:int -> unit -> budget
(** See {!Xc_core.Build.budget} (defaults 20 KB / 150 KB). *)

val reference :
  ?detail:Xc_core.Reference.detail -> ?min_extent:int -> ?value_min_extent:int ->
  ?value_paths:Xc_xml.Label.t list list -> document -> builder
(** The detailed reference synopsis construction
    ({!Xc_core.Reference.build}). *)

val seal : builder -> synopsis
(** Freeze a builder into the read-optimized sealed form
    ({!Xc_core.Synopsis.freeze}). The builder is unchanged and may keep
    mutating; the sealed value never will. *)

val compress : budget -> builder -> synopsis
(** XCLUSTERBUILD: compress a reference synopsis to the budget (on a
    private copy; the argument is unchanged) and seal the result. *)

val build : ?budget:budget -> ?min_extent:int -> ?value_min_extent:int ->
  ?value_paths:Xc_xml.Label.t list list -> document -> synopsis
(** [reference] followed by [compress] — document to budgeted synopsis
    in one call. *)

val auto_split : ?ratios:float list -> total_kb:int ->
  sample:(synopsis -> float) -> builder -> budget * synopsis
(** Automated structural/value budget-split search
    ({!Xc_core.Build.auto_split}). *)

(* ---- estimation ------------------------------------------------------- *)

val parse_query : string -> query
(** Parse a twig query, e.g.
    ["//movie[year > 1990]/title[contains(War)]"]. *)

val estimate : synopsis -> query -> float
(** Estimated number of binding tuples, through the compiled pipeline.
    The plan cache is keyed on the synopsis's
    {!Xc_core.Synopsis.Sealed.uid} and created on first use; sealed
    synopses never mutate, so cached plans and memos stay valid
    forever.

    Serving degrades instead of raising: if plan compilation or
    evaluation fails for this synopsis, the call falls back to the
    bit-identical uncached estimator and bumps the [serve.fallback]
    counter in {!Xc_util.Metrics.global}. *)

val plan : synopsis -> query -> Xc_core.Plan.t
(** The cached compiled plan (compiling on first sight) for callers
    that estimate the same query many times and want to skip even the
    cache lookup. *)

val estimate_with_plan : Xc_core.Plan.t -> float
(** Estimate from a compiled plan ({!Xc_core.Plan.estimate}). *)

val estimate_batch : ?domains:int -> synopsis -> query array -> float array
(** Batched serving through {!Xc_core.Plan.Batch}: answers
    [result.(i)] for query [i], bit-identical to {!estimate} /
    {!estimate_uncached} and independent of the worker count
    ([domains <= 0] or omitted means the [XC_DOMAINS] environment
    variable). The per-synopsis engine — interned path-expression
    transition matrices plus compiled queries — is cached by synopsis
    uid like the plan caches, so repeated workloads amortize to array
    walks.

    Degrades like {!estimate}: a batch-engine failure falls back to
    per-query estimation (which itself can fall back to the uncached
    path) and bumps [serve.batch_fallback]. *)

val batch_engine : synopsis -> Xc_core.Plan.Batch.t
(** The cached batch engine behind {!estimate_batch} (created on first
    use), for callers that want {!Xc_core.Plan.Batch.prepare}/
    [run_prepared] control or its size accessors. *)

val estimate_uncached : synopsis -> query -> float
(** The direct embedding enumeration ({!Xc_core.Estimate.selectivity}),
    bypassing plans and memos — the baseline the pipeline is validated
    against. *)

val explain : synopsis -> query -> Xc_core.Estimate.explanation list
(** Per query variable, the clusters it binds to
    ({!Xc_core.Estimate.explain}). *)

(* ---- synopsis inspection --------------------------------------------- *)

val validate : synopsis -> (unit, string) result
val pp_stats : Format.formatter -> synopsis -> unit
val n_nodes : synopsis -> int
val n_edges : synopsis -> int
val size_bytes : synopsis -> int
(** Structural + value bytes. *)

val succ : synopsis -> int -> (int * float) list
(** Outgoing edges of a cluster as [(child sid, avg count)], ascending
    by child sid. *)

val pred : synopsis -> int -> int list
(** Parent sids of a cluster, ascending. *)

val builder_stats : Format.formatter -> builder -> unit
(** Size/shape summary of an unsealed builder (the CLI prints this for
    the reference synopsis before compressing). *)

val validate_builder : builder -> (unit, string) result
(** Structural invariants of a builder
    ({!Xc_core.Synopsis.Builder.validate}). *)

(* ---- persistence ------------------------------------------------------ *)

val save : string -> synopsis -> unit
(** Atomic write (temp file → fsync → rename) of the checksummed v2
    format via {!Xc_core.Codec.save_exn}.
    @raise Failure on I/O failure (the previous file, if any, is
    intact). *)

val load : string -> synopsis
(** @raise Failure on read or decode failure. *)

val save_result : string -> synopsis -> (unit, Xc_core.Codec.error) result
(** {!save} with the typed error instead of an exception. *)

val load_result : string -> (synopsis, Xc_core.Codec.error) result
(** {!load} with the typed error instead of an exception; failures
    additionally bump [serve.load_error]. A server that keeps a
    directory of synopses uses this to skip (and count) corrupt
    artifacts instead of dying on the first one. *)

val verify_file : string -> (Xc_core.Codec.info, Xc_core.Codec.error) result
(** Integrity check (framing + per-section CRC-32 for v2, full decode
    for v1) without building the synopsis —
    {!Xc_core.Codec.verify}. *)

(* ---- metrics ---------------------------------------------------------- *)

val metrics_snapshot : unit -> Xc_util.Metrics.snapshot
(** Snapshot of the global registry the pipeline instruments (plan
    compiles, cache hits/misses, expansion depths, estimate latency). *)

val metrics_json : unit -> string
(** [metrics_snapshot] rendered as a single-line JSON object. *)

val metrics_reset : unit -> unit
