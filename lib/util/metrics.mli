(** Lightweight process-local metrics: counters, wall-clock timers and
    value histograms behind a [snapshot]/[reset] API.

    The estimation pipeline (plan compilation, reach-memo hits/misses,
    descendant-expansion depth, estimate latency) reports into the
    {!global} registry; the bench harness and the [xcluster estimate
    --stats] CLI flag render a snapshot as JSON. Registries are cheap
    hash tables — a counter bump is one lookup and one integer add — so
    instrumentation can stay on in hot paths. Thread-safe: every
    operation takes the registry's internal mutex, so worker threads
    and domains may report into one registry concurrently (the serving
    daemon does). The critical sections are a table lookup and a few
    scalar updates — contention, not the lock itself, is the only cost
    that can show up in a profile. *)

type t
(** A metrics registry. *)

val global : t
(** The registry the library instruments by default. *)

val create : unit -> t

(* ---- recording ------------------------------------------------------- *)

val incr : ?by:int -> t -> string -> unit
(** Bump a counter, creating it at 0 on first use. *)

val record_max : t -> string -> int -> unit
(** High-water counter: keep the largest value recorded since the last
    reset (e.g. [batch.cohort_max], the widest query cohort any batch
    collapsed to). Renders like any other counter. *)

val observe : t -> string -> float -> unit
(** Record a sample into a histogram (count/sum/min/max plus
    eighth-octave magnitude buckets — 8 sub-buckets per power of two),
    creating it on first use. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk and record its wall-clock duration, in seconds, under
    the name as a timer (count/total/max). Exceptions propagate without
    recording. *)

val add_time : t -> string -> float -> unit
(** Record an externally measured duration (seconds) under a timer. *)

(* ---- reading --------------------------------------------------------- *)

type timer_stat = {
  t_count : int;
  t_total : float;  (** seconds *)
  t_max : float;    (** seconds *)
}

type hist_stat = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
      (** (upper bound, samples ≤ bound) per non-empty eighth-octave
          magnitude bucket (edges a factor [2^(1/8)] apart), ascending *)
}

type snapshot = {
  counters : (string * int) list;        (** sorted by name *)
  timers : (string * timer_stat) list;   (** sorted by name *)
  histograms : (string * hist_stat) list;(** sorted by name *)
}

val snapshot : t -> snapshot
val reset : t -> unit

val counter_value : t -> string -> int
(** Current value of a counter; 0 when it was never bumped. *)

val quantile_of_stat : hist_stat -> float -> float
(** Quantile [q ∈ \[0, 1\]] of a histogram, interpolated linearly
    inside its eighth-octave magnitude bucket and clamped to the
    observed [min, max]; [nan] on an empty histogram. Exact at bucket
    boundaries, within a ~9% band elsewhere — fine enough that
    adjacent latency percentiles (p95 vs p99) resolve to distinct
    values instead of collapsing into one power-of-two class. *)

val quantiles_of_stat : hist_stat -> float list -> (float * float) list
(** [(q, value)] per requested quantile. *)

val quantiles : t -> string -> float list -> (float * float) list option
(** Quantiles of a live histogram by name; [None] when it does not
    exist. [quantiles m "estimate.batch_us" \[0.5; 0.95; 0.99\]] is the
    p50/p95/p99 read the CLI and bench surface. *)

val to_json : snapshot -> string
(** Single-line JSON object:
    [{"counters":{...},"timers":{...},"histograms":{...}}]. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable multi-line rendering. *)
