(** Deterministic, seeded fault injection for the persistence layer.

    Production code calls the injection points below at the places
    where real storage fails — reads ({!mutate}), writes
    ({!raise_io}, {!short_write}). With no configuration the points
    are no-ops (one pointer test, no allocation), so they can sit on
    I/O paths permanently. When a configuration is active, each point
    fires with the configured probability, drawing from a private
    seeded {!Rng} stream, so a failing run replays exactly from its
    [XC_FAULTS] string.

    Configuration comes from the [XC_FAULTS] environment variable on
    first use, or programmatically via {!configure} (which overrides
    the environment — tests toggle faults on and off around specific
    operations). The syntax is comma-separated [key=value] pairs:

    {v XC_FAULTS="seed=42,p=0.2,kinds=truncate+bitflip+short+enospc+eio" v}

    - [seed] (default 1): RNG seed.
    - [p] (default 0.1): per-injection-point firing probability.
    - [kinds] (default [all]): [+]-separated subset of [truncate],
      [bitflip], [short], [enospc], [eio], or [all].
    - [sites] (default all sites): [+]-separated injection-site names
      (e.g. [safe_io.rename]) to restrict where faults fire.

    Every fired fault bumps the [fault.injected] counter in
    {!Metrics.global}. *)

type kind =
  | Truncate  (** a read returns fewer bytes than were written *)
  | Bit_flip  (** a read returns the payload with one bit flipped *)
  | Short_write  (** a write is accepted only partially *)
  | Enospc  (** the device is full *)
  | Eio  (** a generic I/O error *)

val kind_name : kind -> string

type config = {
  seed : int;
  prob : float;
  kinds : kind list;
  sites : string list;  (** empty means every site *)
}

exception Injected of { site : string; kind : kind }
(** Raised by {!raise_io} (and by callers that turn a {!short_write}
    grant into a failure). [Safe_io] catches it at its API boundary and
    returns a typed error — the exception never escapes the
    persistence layer. *)

val config_of_string : string -> (config, string) result
(** Parse an [XC_FAULTS]-syntax specification. *)

val configure : config option -> unit
(** Install (or with [None] remove) a configuration, overriding the
    environment. Resets the injection RNG to the configuration's
    seed. *)

val current : unit -> config option
(** The active configuration, forcing environment initialization.
    Save/restore around a critical region with {!configure}. *)

val enabled : unit -> bool

val injections : unit -> int
(** Faults fired since the process started (all configurations). *)

(* ---- injection points ------------------------------------------------- *)

val mutate : site:string -> string -> string
(** A read-path injection point: returns the payload unchanged, or —
    when a [Truncate]/[Bit_flip] fault fires — a deterministically
    damaged copy. *)

val raise_io : site:string -> unit
(** A write-path injection point: returns unit, or raises {!Injected}
    with [Enospc] or [Eio] when such a fault fires. *)

val short_write : site:string -> int -> int
(** [short_write ~site len] is the byte count the simulated device
    accepts for a [len]-byte write: [len] normally, fewer (possibly 0)
    when a [Short_write] fault fires. *)
