(** Minimal fork/join parallelism over stdlib domains (OCaml 5), for
    embarrassingly parallel batch work such as merge-candidate scoring.

    No dependencies beyond the standard library: a call splits its input
    into one contiguous chunk per worker and hands [d - 1] chunks to a
    persistent pool of domains (the caller computes the first chunk),
    then waits for all of them before returning — no job outlives the
    call. Workers are spawned lazily on first use and parked on a
    condition variable between calls, so a construction run pays the
    domain-spawn cost once, not per scoring batch.

    Calls must not overlap (one coordinating domain at a time); the
    library only calls it from the build loop, which satisfies this.

    Determinism contract: [map f arr] returns exactly
    [Array.map f arr] — results are placed by input index, never by
    completion order — so parallel callers observe bit-identical output
    for pure [f] regardless of the worker count. *)

val env_domains : unit -> int
(** The worker count requested via the [XC_DOMAINS] environment
    variable, clamped to [\[1, 64\]]; 1 (sequential) when unset or
    unparsable. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f arr] is [Array.map f arr], computed by [domains]
    workers in contiguous chunks. [domains <= 0] (the default) means
    "use {!env_domains}". Runs sequentially when only one worker is
    requested or the array is small. [f] must not mutate shared state;
    a worker exception is re-raised in the caller after all workers
    finished their chunks. *)

val map_chunked :
  ?domains:int -> init:(unit -> 'c) -> ('c -> int -> 'a -> 'b) -> 'a array -> 'b array
(** [map_chunked ~init f arr] is [Array.mapi (f ctx) arr] with one
    private [ctx = init ()] per worker, created inside the worker's
    domain before it walks its contiguous chunk. Built for stateful
    scratch (the batched estimator's evaluation arrays): [f] may
    mutate its own [ctx] freely but must leave no result depending on
    what earlier elements did to it. Same chunking, exception, and
    determinism contract as {!map}. *)

val iter_chunked :
  ?domains:int -> init:(unit -> 'c) -> ('c -> int -> 'a -> unit) -> 'a array -> unit
(** [iter_chunked ~init f arr] is [Array.iteri (f ctx) arr] with one
    private [ctx = init ()] per worker — {!map_chunked} without the
    result arrays. [f] communicates by writing caller-provided slots
    keyed by the input index it receives; since every index is visited
    exactly once, such writes are disjoint across workers. The batched
    estimator's cohort sweep places results straight into a shared
    value plane this way, so the serving path allocates no per-chunk
    arrays and performs no concatenation. Same chunking, exception,
    and determinism contract as {!map}. *)

(* ---- usage observation ------------------------------------------------ *)

val seq_cutoff : int
(** Arrays smaller than this run sequentially regardless of the
    requested worker count (dispatch overhead would dominate). *)

val reset_usage : unit -> unit
(** Reset the usage high-water marks below. *)

val max_used : unit -> int
(** Widest fan-out (workers actually engaged, caller included) any
    [map]/[map_chunked] call executed since {!reset_usage}; 0 when no
    call ran. The bench harness checks this against the requested
    worker count and fails loudly on silent degradation — unlike a
    configured value, this is observed from the pool itself. *)

val max_batch : unit -> int
(** Largest input array any call processed since {!reset_usage} —
    distinguishes "batches were below {!seq_cutoff}" (sequential by
    policy) from "a large batch ran under-parallelized" (a bug). *)
