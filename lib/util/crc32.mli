(** CRC-32 (the IEEE 802.3 / zlib polynomial, reflected).

    The synopsis codec frames its on-disk sections with a CRC so that a
    flipped bit or truncated write is detected before any decoding
    work. Checksums are returned as non-negative OCaml [int]s holding
    the unsigned 32-bit value, which keeps them trivially comparable
    and serializable through the codec's 8-byte integer fields. *)

val digest : string -> int
(** CRC-32 of the whole string. *)

val sub : string -> pos:int -> len:int -> int
(** CRC-32 of [len] bytes starting at [pos].
    @raise Invalid_argument if the range is out of bounds. *)

val update : int -> string -> pos:int -> len:int -> int
(** Extend a running checksum: [update (digest a) b ~pos:0
    ~len:(String.length b) = digest (a ^ b)]. *)
