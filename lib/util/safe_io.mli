(** Crash-safe file persistence.

    [write_atomic] never leaves a half-written file where a good one
    was: the payload goes to a temporary file in the target's
    directory, is fsynced, and only then renamed over the target (a
    POSIX-atomic replace). A crash or injected fault at any point
    leaves either the old file or the new one — never a torn mix — and
    the temporary is removed on every failure this process survives.

    Both entry points are {!Fault} injection sites (see the site names
    below), so the fault harness can simulate truncated reads, flipped
    bits, short writes, a full disk, and generic I/O errors without a
    real faulty device. With [XC_FAULTS] unset they cost one pointer
    test over plain [Unix] I/O.

    Injection sites: [safe_io.open], [safe_io.write], [safe_io.fsync],
    [safe_io.rename] (via {!Fault.raise_io} / {!Fault.short_write})
    and [safe_io.read] (via {!Fault.mutate}). *)

type error =
  | No_space of string  (** the device is full; payload names the failing step *)
  | Io of string  (** any other I/O failure, with a human-readable message *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val read : string -> (string, error) result
(** The file's entire contents. Never raises. *)

val write_atomic : string -> string -> (unit, error) result
(** [write_atomic path data] replaces [path] with [data] atomically
    (temp file → fsync → rename → best-effort directory fsync). On
    [Error _] the previous contents of [path], if any, are intact.
    Never raises. *)
