let max_domains = 64

let env_domains () =
  match Sys.getenv_opt "XC_DOMAINS" with
  | None -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some d -> max 1 (min max_domains d)
    | None -> 1)

(* Below this many elements the dispatch overhead dwarfs the work; the
   sequential path is also what keeps tiny calls (e.g. the <= neighbor_k
   pairs of a push_neighbors) away from the worker pool. *)
let seq_cutoff = 64

let resolve domains =
  if domains <= 0 then env_domains () else max 1 (min max_domains domains)

(* ---- the persistent worker pool --------------------------------------
   Spawning a domain costs milliseconds (fresh minor heap, GC
   handshake), far too much to pay per scoring batch, so workers are
   spawned once on first use and then parked on a condition variable
   between jobs. Workers hold no job state across jobs and are never
   joined: they block in [Condition.wait] forever once the process stops
   submitting, which is safe to leave behind at exit. *)

type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;  (* set by the caller, taken by the worker *)
  mutable busy : bool;  (* true from submit until the job finished *)
  mutable failed : exn option;  (* the job's exception, re-raised by [await] *)
}

let worker_loop w =
  let rec loop () =
    Mutex.lock w.mutex;
    while w.job = None do
      Condition.wait w.cond w.mutex
    done;
    let job = Option.get w.job in
    w.job <- None;
    Mutex.unlock w.mutex;
    (try job () with e -> w.failed <- Some e);
    Mutex.lock w.mutex;
    w.busy <- false;
    Condition.broadcast w.cond;
    Mutex.unlock w.mutex;
    loop ()
  in
  loop ()

(* grown on demand under [pool_mutex], only ever from the coordinating
   domain (callers of [map] must not overlap, which holds for the
   library: batch scoring runs in the build loop's domain) *)
let pool : worker list ref = ref []
let pool_mutex = Mutex.create ()

let acquire n =
  Mutex.lock pool_mutex;
  let have = List.length !pool in
  if have < n then begin
    let fresh =
      List.init (n - have) (fun _ ->
          let w =
            { mutex = Mutex.create ();
              cond = Condition.create ();
              job = None;
              busy = false;
              failed = None }
          in
          ignore (Domain.spawn (fun () -> worker_loop w));
          w)
    in
    pool := fresh @ !pool
  end;
  let ws = Array.of_list !pool in
  Mutex.unlock pool_mutex;
  Array.sub ws 0 n

let submit w job =
  Mutex.lock w.mutex;
  w.busy <- true;
  w.failed <- None;
  w.job <- Some job;
  Condition.broadcast w.cond;
  Mutex.unlock w.mutex

let await w =
  Mutex.lock w.mutex;
  while w.busy do
    Condition.wait w.cond w.mutex
  done;
  Mutex.unlock w.mutex;
  match w.failed with
  | Some e ->
    w.failed <- None;
    raise e
  | None -> ()

let map ?(domains = 0) f arr =
  let n = Array.length arr in
  let d = min (resolve domains) n in
  if d <= 1 || n < seq_cutoff then Array.map f arr
  else begin
    (* contiguous chunks: worker i owns [bound i, bound (i+1)); results
       land at the input index, so the output order is independent of
       which domain computed what *)
    let bound i = i * n / d in
    let parts = Array.make d [||] in
    let chunk i () =
      let lo = bound i and hi = bound (i + 1) in
      parts.(i) <- Array.init (hi - lo) (fun k -> f arr.(lo + k))
    in
    let workers = acquire (d - 1) in
    Array.iteri (fun i w -> submit w (chunk (i + 1))) workers;
    chunk 0 ();
    (* wait for every worker before raising so no job outlives the call *)
    let first_exn = ref None in
    Array.iter
      (fun w ->
        try await w with e -> if !first_exn = None then first_exn := Some e)
      workers;
    (match !first_exn with
    | Some e -> raise e
    | None -> ());
    Array.concat (Array.to_list parts)
  end
