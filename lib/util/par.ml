let max_domains = 64

let env_domains () =
  match Sys.getenv_opt "XC_DOMAINS" with
  | None -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some d -> max 1 (min max_domains d)
    | None -> 1)

(* Below this many elements the dispatch overhead dwarfs the work; the
   sequential path is also what keeps tiny calls (e.g. the <= neighbor_k
   pairs of a push_neighbors) away from the worker pool. *)
let seq_cutoff = 64

let resolve domains =
  if domains <= 0 then env_domains () else max 1 (min max_domains domains)

(* ---- usage observation ------------------------------------------------
   High-water marks of what the pool actually did, updated from the
   coordinating domain only. Benchmarks reset these, run a parallel
   leg, and then compare the observed worker count against the
   requested one — the honest version of a "domains_used" figure, and
   the loud-failure hook when a requested width silently degrades. *)

let usage_used = ref 0   (* widest fan-out actually executed *)
let usage_batch = ref 0  (* largest input array seen *)

let reset_usage () =
  usage_used := 0;
  usage_batch := 0

let max_used () = !usage_used
let max_batch () = !usage_batch

let note_usage n d =
  if n > !usage_batch then usage_batch := n;
  if d > !usage_used then usage_used := d

(* ---- the persistent worker pool --------------------------------------
   Spawning a domain costs milliseconds (fresh minor heap, GC
   handshake), far too much to pay per scoring batch, so workers are
   spawned once on first use and then parked on a condition variable
   between jobs. Workers hold no job state across jobs and are never
   joined: they block in [Condition.wait] forever once the process stops
   submitting, which is safe to leave behind at exit. *)

type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;  (* set by the caller, taken by the worker *)
  mutable busy : bool;  (* true from submit until the job finished *)
  mutable failed : exn option;  (* the job's exception, re-raised by [await] *)
}

let worker_loop w =
  let rec loop () =
    Mutex.lock w.mutex;
    while w.job = None do
      Condition.wait w.cond w.mutex
    done;
    let job = Option.get w.job in
    w.job <- None;
    Mutex.unlock w.mutex;
    (try job () with e -> w.failed <- Some e);
    Mutex.lock w.mutex;
    w.busy <- false;
    Condition.broadcast w.cond;
    Mutex.unlock w.mutex;
    loop ()
  in
  loop ()

(* grown on demand under [pool_mutex], only ever from the coordinating
   domain (callers of [map] must not overlap, which holds for the
   library: batch scoring runs in the build loop's domain) *)
let pool : worker list ref = ref []
let pool_mutex = Mutex.create ()

let acquire n =
  Mutex.lock pool_mutex;
  let have = List.length !pool in
  if have < n then begin
    let fresh =
      List.init (n - have) (fun _ ->
          let w =
            { mutex = Mutex.create ();
              cond = Condition.create ();
              job = None;
              busy = false;
              failed = None }
          in
          ignore (Domain.spawn (fun () -> worker_loop w));
          w)
    in
    pool := fresh @ !pool
  end;
  let ws = Array.of_list !pool in
  Mutex.unlock pool_mutex;
  Array.sub ws 0 n

let submit w job =
  Mutex.lock w.mutex;
  w.busy <- true;
  w.failed <- None;
  w.job <- Some job;
  Condition.broadcast w.cond;
  Mutex.unlock w.mutex

let await w =
  Mutex.lock w.mutex;
  while w.busy do
    Condition.wait w.cond w.mutex
  done;
  Mutex.unlock w.mutex;
  match w.failed with
  | Some e ->
    w.failed <- None;
    raise e
  | None -> ()

let map ?(domains = 0) f arr =
  let n = Array.length arr in
  let d = min (resolve domains) n in
  if d <= 1 || n < seq_cutoff then begin
    if n > 0 then note_usage n 1;
    Array.map f arr
  end
  else begin
    note_usage n d;
    (* contiguous chunks: worker i owns [bound i, bound (i+1)); results
       land at the input index, so the output order is independent of
       which domain computed what *)
    let bound i = i * n / d in
    let parts = Array.make d [||] in
    let chunk i () =
      let lo = bound i and hi = bound (i + 1) in
      parts.(i) <- Array.init (hi - lo) (fun k -> f arr.(lo + k))
    in
    let workers = acquire (d - 1) in
    Array.iteri (fun i w -> submit w (chunk (i + 1))) workers;
    chunk 0 ();
    (* wait for every worker before raising so no job outlives the call *)
    let first_exn = ref None in
    Array.iter
      (fun w ->
        try await w with e -> if !first_exn = None then first_exn := Some e)
      workers;
    (match !first_exn with
    | Some e -> raise e
    | None -> ());
    Array.concat (Array.to_list parts)
  end

(* Like [map], but each worker materializes one private context (the
   batched estimator's scratch arrays) before walking its contiguous
   chunk, and [f] also receives the element's input index so workers
   can write into caller-provided per-element slots (latency arrays)
   without sharing. Results land at the input index, so output order —
   and, for pure [f], output contents — are independent of the worker
   count. *)
(* Like [map_chunked], but [f] returns nothing: workers write their
   results into caller-provided slots (disjoint by construction — each
   input index is visited exactly once) instead of the pool
   materializing per-chunk arrays and concatenating them. The batched
   estimator's cohort sweep uses this to place per-cohort results
   straight into one shared value plane with zero result-array
   allocation on the serving path. Same chunking, exception, and
   determinism contract as [map]. *)
let iter_chunked ?(domains = 0) ~init f arr =
  let n = Array.length arr in
  if n = 0 then ()
  else begin
    let d = min (resolve domains) n in
    if d <= 1 || n < seq_cutoff then begin
      note_usage n 1;
      let ctx = init () in
      Array.iteri (fun i x -> f ctx i x) arr
    end
    else begin
      note_usage n d;
      let bound i = i * n / d in
      let chunk i () =
        let lo = bound i and hi = bound (i + 1) in
        let ctx = init () in
        for k = lo to hi - 1 do
          f ctx k arr.(k)
        done
      in
      let workers = acquire (d - 1) in
      Array.iteri (fun i w -> submit w (chunk (i + 1))) workers;
      chunk 0 ();
      let first_exn = ref None in
      Array.iter
        (fun w ->
          try await w with e -> if !first_exn = None then first_exn := Some e)
        workers;
      match !first_exn with
      | Some e -> raise e
      | None -> ()
    end
  end

let map_chunked ?(domains = 0) ~init f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let d = min (resolve domains) n in
    if d <= 1 || n < seq_cutoff then begin
      note_usage n 1;
      let ctx = init () in
      Array.mapi (fun i x -> f ctx i x) arr
    end
    else begin
      note_usage n d;
      let bound i = i * n / d in
      let parts = Array.make d [||] in
      let chunk i () =
        let lo = bound i and hi = bound (i + 1) in
        let ctx = init () in
        parts.(i) <- Array.init (hi - lo) (fun k -> f ctx (lo + k) arr.(lo + k))
      in
      let workers = acquire (d - 1) in
      Array.iteri (fun i w -> submit w (chunk (i + 1))) workers;
      chunk 0 ();
      let first_exn = ref None in
      Array.iter
        (fun w ->
          try await w with e -> if !first_exn = None then first_exn := Some e)
        workers;
      (match !first_exn with
      | Some e -> raise e
      | None -> ());
      Array.concat (Array.to_list parts)
    end
  end
