type timer = {
  mutable tm_count : int;
  mutable tm_total : float;
  mutable tm_max : float;
}

type hist = {
  mutable hs_count : int;
  mutable hs_sum : float;
  mutable hs_min : float;
  mutable hs_max : float;
  hs_buckets : int array;  (* index i counts samples with 2^((i-1)/8) < v <= 2^(i/8) *)
}

type t = {
  m_lock : Mutex.t;
      (* guards the three tables and every record they hold: serving
         worker threads and domains bump counters concurrently, and an
         unguarded Hashtbl resize under contention corrupts the table *)
  m_counters : (string, int ref) Hashtbl.t;
  m_timers : (string, timer) Hashtbl.t;
  m_hists : (string, hist) Hashtbl.t;
}

let create () =
  { m_lock = Mutex.create ();
    m_counters = Hashtbl.create 16;
    m_timers = Hashtbl.create 16;
    m_hists = Hashtbl.create 16 }

let global = create ()

let locked t f =
  Mutex.lock t.m_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m_lock) f

let incr ?(by = 1) t name =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.m_counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.m_counters name (ref by)

(* high-water counter: keeps the largest value recorded since the last
   reset (e.g. the widest query cohort a batch ever collapsed to) *)
let record_max t name v =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.m_counters name with
  | Some r -> if v > !r then r := v
  | None -> Hashtbl.add t.m_counters name (ref v)

(* 8 sub-buckets per power-of-two octave: 512 buckets span (0, 2^64)
   with bucket edges a factor 2^(1/8) (~9%) apart. Whole-octave
   buckets made adjacent percentiles indistinguishable — any two
   quantiles landing in the same magnitude class (p95 and p99 of a
   latency distribution routinely do) interpolated inside the same
   factor-2 band and came out nearly equal regardless of the data. *)
let n_buckets = 512
let sub_per_octave = 8.0

let bucket_of v =
  if v <= 1.0 then 0
  else
    let b = int_of_float (Float.ceil (sub_per_octave *. Float.log2 v)) in
    min (n_buckets - 1) (max 1 b)

let bucket_le i = Float.pow 2.0 (float_of_int i /. sub_per_octave)

let observe t name v =
  locked t @@ fun () ->
  let h =
    match Hashtbl.find_opt t.m_hists name with
    | Some h -> h
    | None ->
      let h =
        { hs_count = 0; hs_sum = 0.0; hs_min = infinity; hs_max = neg_infinity;
          hs_buckets = Array.make n_buckets 0 }
      in
      Hashtbl.add t.m_hists name h;
      h
  in
  h.hs_count <- h.hs_count + 1;
  h.hs_sum <- h.hs_sum +. v;
  if v < h.hs_min then h.hs_min <- v;
  if v > h.hs_max then h.hs_max <- v;
  let b = bucket_of v in
  h.hs_buckets.(b) <- h.hs_buckets.(b) + 1

let add_time t name dt =
  locked t @@ fun () ->
  let tm =
    match Hashtbl.find_opt t.m_timers name with
    | Some tm -> tm
    | None ->
      let tm = { tm_count = 0; tm_total = 0.0; tm_max = 0.0 } in
      Hashtbl.add t.m_timers name tm;
      tm
  in
  tm.tm_count <- tm.tm_count + 1;
  tm.tm_total <- tm.tm_total +. dt;
  if dt > tm.tm_max then tm.tm_max <- dt

let time t name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  add_time t name (Unix.gettimeofday () -. t0);
  r

(* ---- snapshots -------------------------------------------------------- *)

type timer_stat = {
  t_count : int;
  t_total : float;
  t_max : float;
}

type hist_stat = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
}

type snapshot = {
  counters : (string * int) list;
  timers : (string * timer_stat) list;
  histograms : (string * hist_stat) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun name v acc -> (name, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot t =
  locked t @@ fun () ->
  { counters = sorted_bindings t.m_counters (fun r -> !r);
    timers =
      sorted_bindings t.m_timers (fun tm ->
          { t_count = tm.tm_count; t_total = tm.tm_total; t_max = tm.tm_max });
    histograms =
      sorted_bindings t.m_hists (fun h ->
          let buckets = ref [] in
          for i = n_buckets - 1 downto 0 do
            if h.hs_buckets.(i) > 0 then
              buckets := (bucket_le i, h.hs_buckets.(i)) :: !buckets
          done;
          { h_count = h.hs_count; h_sum = h.hs_sum; h_min = h.hs_min;
            h_max = h.hs_max; h_buckets = !buckets }) }

let reset t =
  locked t @@ fun () ->
  Hashtbl.reset t.m_counters;
  Hashtbl.reset t.m_timers;
  Hashtbl.reset t.m_hists

let counter_value t name =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.m_counters name with Some r -> !r | None -> 0

(* ---- quantiles --------------------------------------------------------
   Histogram buckets are eighth-octave magnitude classes, so a
   quantile is located by a cumulative walk and interpolated linearly
   inside its bucket [(le/2^(1/8), le]] (bucket 0 covers (0, 1]). The
   answer is exact at bucket boundaries and within a ~9% band
   otherwise — tight enough that p95 and p99 of a real latency
   distribution land in distinct buckets. Clamped to the observed
   [min, max] so tiny samples do not report values no observation
   ever had. *)

let quantile_of_stat h q =
  if h.h_count = 0 then Float.nan
  else begin
    let target = q *. float_of_int h.h_count in
    let rec walk cum = function
      | [] -> h.h_max
      | (le, n) :: rest ->
        let cum' = cum +. float_of_int n in
        if cum' >= target && n > 0 then begin
          let lo = if le <= 1.0 then 0.0 else le /. Float.pow 2.0 0.125 in
          let frac = (target -. cum) /. float_of_int n in
          lo +. (frac *. (le -. lo))
        end
        else walk cum' rest
    in
    let v = walk 0.0 h.h_buckets in
    Float.min h.h_max (Float.max h.h_min v)
  end

let quantiles_of_stat h qs = List.map (fun q -> (q, quantile_of_stat h q)) qs

let quantiles t name qs =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.m_hists name with
  | None -> None
  | Some h ->
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.hs_buckets.(i) > 0 then
        buckets := (bucket_le i, h.hs_buckets.(i)) :: !buckets
    done;
    let stat =
      { h_count = h.hs_count; h_sum = h.hs_sum; h_min = h.hs_min;
        h_max = h.hs_max; h_buckets = !buckets }
    in
    Some (quantiles_of_stat stat qs)

(* ---- rendering -------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let obj fields = "{" ^ String.concat "," fields ^ "}"
let field name v = Printf.sprintf "\"%s\":%s" (json_escape name) v

let to_json s =
  let counters = List.map (fun (n, v) -> field n (string_of_int v)) s.counters in
  let timers =
    List.map
      (fun (n, tm) ->
        field n
          (obj
             [ field "count" (string_of_int tm.t_count);
               field "total_ms" (json_float (1000.0 *. tm.t_total));
               field "mean_us"
                 (json_float
                    (if tm.t_count = 0 then 0.0
                     else 1e6 *. tm.t_total /. float_of_int tm.t_count));
               field "max_ms" (json_float (1000.0 *. tm.t_max)) ]))
      s.timers
  in
  let hists =
    List.map
      (fun (n, h) ->
        let quant q =
          let v = quantile_of_stat h q in
          json_float (if Float.is_nan v then 0.0 else v)
        in
        field n
          (obj
             [ field "count" (string_of_int h.h_count);
               field "min" (json_float h.h_min);
               field "mean"
                 (json_float
                    (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count));
               field "max" (json_float h.h_max);
               field "p50" (quant 0.5);
               field "p95" (quant 0.95);
               field "p99" (quant 0.99);
               field "buckets"
                 ("["
                 ^ String.concat ","
                     (List.map
                        (fun (le, c) ->
                          obj [ field "le" (json_float le); field "n" (string_of_int c) ])
                        h.h_buckets)
                 ^ "]") ]))
      s.histograms
  in
  obj [ field "counters" (obj counters); field "timers" (obj timers);
        field "histograms" (obj hists) ]

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (n, v) -> Format.fprintf ppf "%-32s %12d@," n v) s.counters;
  List.iter
    (fun (n, tm) ->
      Format.fprintf ppf "%-32s %8d calls  %10.2f ms total  %8.1f us/call@," n
        tm.t_count (1000.0 *. tm.t_total)
        (if tm.t_count = 0 then 0.0 else 1e6 *. tm.t_total /. float_of_int tm.t_count))
    s.timers;
  List.iter
    (fun (n, h) ->
      Format.fprintf ppf "%-32s %8d obs    min %.3g  mean %.3g  max %.3g@," n h.h_count
        h.h_min
        (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count)
        h.h_max)
    s.histograms;
  Format.fprintf ppf "@]"
