type kind = Truncate | Bit_flip | Short_write | Enospc | Eio

let kind_name = function
  | Truncate -> "truncate"
  | Bit_flip -> "bitflip"
  | Short_write -> "short"
  | Enospc -> "enospc"
  | Eio -> "eio"

let all_kinds = [ Truncate; Bit_flip; Short_write; Enospc; Eio ]

type config = {
  seed : int;
  prob : float;
  kinds : kind list;
  sites : string list;
}

exception Injected of { site : string; kind : kind }

(* ---- configuration ----------------------------------------------------- *)

let kind_of_string = function
  | "truncate" -> Some Truncate
  | "bitflip" -> Some Bit_flip
  | "short" -> Some Short_write
  | "enospc" -> Some Enospc
  | "eio" -> Some Eio
  | _ -> None

let config_of_string spec =
  let default = { seed = 1; prob = 0.1; kinds = all_kinds; sites = [] } in
  let parse_kinds s =
    if String.equal s "all" then Ok all_kinds
    else
      let names = String.split_on_char '+' s in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | name :: rest -> (
          match kind_of_string name with
          | Some k -> go (k :: acc) rest
          | None -> Error (Printf.sprintf "unknown fault kind %S" name))
      in
      go [] names
  in
  let parse_field cfg field =
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "expected key=value, got %S" field)
    | Some i -> (
      let key = String.sub field 0 i in
      let v = String.sub field (i + 1) (String.length field - i - 1) in
      match key with
      | "seed" -> (
        match int_of_string_opt v with
        | Some seed -> Ok { cfg with seed }
        | None -> Error (Printf.sprintf "bad seed %S" v))
      | "p" | "prob" -> (
        match float_of_string_opt v with
        | Some p when p >= 0.0 && p <= 1.0 -> Ok { cfg with prob = p }
        | _ -> Error (Printf.sprintf "bad probability %S" v))
      | "kinds" -> (
        match parse_kinds v with
        | Ok kinds -> Ok { cfg with kinds }
        | Error _ as e -> e)
      | "sites" -> Ok { cfg with sites = String.split_on_char '+' v }
      | _ -> Error (Printf.sprintf "unknown XC_FAULTS key %S" key))
  in
  let fields =
    List.filter (fun s -> String.length s > 0) (String.split_on_char ',' spec)
  in
  List.fold_left
    (fun acc field -> Result.bind acc (fun cfg -> parse_field cfg field))
    (Ok default) fields

(* ---- state ------------------------------------------------------------- *)

let state : (config * Rng.t) option ref = ref None
let initialized = ref false
let injected = ref 0

let ensure () =
  if not !initialized then begin
    initialized := true;
    match Sys.getenv_opt "XC_FAULTS" with
    | None | Some "" -> ()
    | Some spec -> (
      match config_of_string spec with
      | Ok cfg -> state := Some (cfg, Rng.create cfg.seed)
      | Error msg ->
        Printf.eprintf "xcluster: ignoring malformed XC_FAULTS (%s)\n%!" msg)
  end

let configure cfg =
  initialized := true;
  state := Option.map (fun c -> (c, Rng.create c.seed)) cfg

let current () =
  ensure ();
  Option.map fst !state

let enabled () =
  ensure ();
  Option.is_some !state

let injections () = !injected

(* ---- injection points --------------------------------------------------- *)

let fires (cfg, rng) ~site kind =
  List.mem kind cfg.kinds
  && (cfg.sites = [] || List.mem site cfg.sites)
  && Rng.chance rng cfg.prob

let record ~site kind =
  incr injected;
  ignore site;
  ignore kind;
  Metrics.incr Metrics.global "fault.injected"

let mutate ~site payload =
  ensure ();
  match !state with
  | None -> payload
  | Some active ->
    if fires active ~site Truncate then begin
      record ~site Truncate;
      let rng = snd active in
      String.sub payload 0 (Rng.int rng (String.length payload + 1))
    end
    else if fires active ~site Bit_flip && String.length payload > 0 then begin
      record ~site Bit_flip;
      let rng = snd active in
      let b = Bytes.of_string payload in
      let i = Rng.int rng (Bytes.length b) in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)));
      Bytes.unsafe_to_string b
    end
    else payload

let raise_io ~site =
  ensure ();
  match !state with
  | None -> ()
  | Some active ->
    if fires active ~site Enospc then begin
      record ~site Enospc;
      raise (Injected { site; kind = Enospc })
    end
    else if fires active ~site Eio then begin
      record ~site Eio;
      raise (Injected { site; kind = Eio })
    end

let short_write ~site len =
  ensure ();
  match !state with
  | None -> len
  | Some active ->
    if len > 0 && fires active ~site Short_write then begin
      record ~site Short_write;
      Rng.int (snd active) len
    end
    else len
