type error =
  | No_space of string
  | Io of string

let pp_error ppf = function
  | No_space step -> Format.fprintf ppf "no space left on device (%s)" step
  | Io msg -> Format.fprintf ppf "%s" msg

let error_to_string e = Format.asprintf "%a" pp_error e

let read path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Ok (Fault.mutate ~site:"safe_io.read" s)
  | exception Sys_error msg -> Error (Io msg)
  | exception End_of_file -> Error (Io (path ^ ": unexpected end of file"))

(* Durability of the rename itself: fsync the containing directory.
   Best-effort — some filesystems refuse fsync on a directory fd, and
   the atomicity guarantee does not depend on it. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let write_atomic path data =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.tmp.%d" (Filename.basename path) (Unix.getpid ()))
  in
  let result =
    try
      Fault.raise_io ~site:"safe_io.open";
      let fd =
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
      in
      let closed = ref false in
      let close_noerr () =
        if not !closed then begin
          closed := true;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
      in
      (try
         let bytes = Bytes.unsafe_of_string data in
         let len = Bytes.length bytes in
         let pos = ref 0 in
         while !pos < len do
           Fault.raise_io ~site:"safe_io.write";
           let want = len - !pos in
           let grant = Fault.short_write ~site:"safe_io.write" want in
           if grant > 0 then pos := !pos + Unix.write fd bytes !pos grant;
           (* a simulated device that accepted only part of the write
              is out of space; a real [Unix.write] retries via the loop *)
           if grant < want then
             raise (Fault.Injected { site = "safe_io.write"; kind = Fault.Enospc })
         done;
         Fault.raise_io ~site:"safe_io.fsync";
         Unix.fsync fd;
         close_noerr ();
         Fault.raise_io ~site:"safe_io.rename";
         Unix.rename tmp path;
         fsync_dir dir;
         Ok ()
       with e ->
         close_noerr ();
         raise e)
    with
    | Fault.Injected { site; kind = Fault.Enospc } -> Error (No_space site)
    | Fault.Injected { site; kind } ->
      Error (Io (Printf.sprintf "injected %s fault at %s" (Fault.kind_name kind) site))
    | Unix.Unix_error (Unix.ENOSPC, fn, _) -> Error (No_space fn)
    | Unix.Unix_error (e, fn, arg) ->
      Error (Io (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e)))
    | Sys_error msg -> Error (Io msg)
  in
  (match result with
  | Ok () -> ()
  | Error _ -> ( try Sys.remove tmp with Sys_error _ -> ()));
  result
