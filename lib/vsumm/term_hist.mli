(** End-biased term histograms — the paper's novel second-level summary
    for TEXT centroids (Sec. 3).

    The histogram retains (1) the top-few term frequencies of the
    centroid exactly, and (2) a {e uniform bucket}: a lossless RLE
    encoding of the binary support of the remaining non-zero terms plus
    their average frequency. Lookup first tries the exact terms, then
    the bucket (average frequency if the bit is set, 0 otherwise) — so,
    unlike conventional range-bucket histograms, non-existent terms
    estimate to exactly 0. *)

type t

val of_centroid : ?top_k:int -> Term_vector.t -> t
(** Summarize a centroid, indexing the [top_k] (default 4096) highest
    frequencies exactly and pushing the rest to the uniform bucket. *)

val build : ?top_k:int -> Xc_xml.Dictionary.term array list -> t
(** [of_centroid (Term_vector.of_documents docs)]. *)

val n_documents : t -> float
val n_top : t -> int
(** Number of exactly-indexed terms. *)

val bucket_size : t -> int
(** Number of terms inside the uniform bucket. *)

val support_size : t -> int
(** [n_top + bucket_size]. *)

val frequency : t -> int -> float
(** Estimated fractional frequency of a term id. *)

val selectivity : t -> Xc_xml.Dictionary.term list -> float
(** Conjunctive [ftcontains] selectivity: product of per-term estimated
    frequencies (term-independence within the cluster). *)

val fuse : t -> t -> t
(** Weighted mixture of the two summaries (Sec. 4.1): the union of
    exactly-indexed terms stays exactly indexed (using each side's
    estimates), everything else goes to the combined uniform bucket. *)

val compress_once : t -> (float * int * t) option
(** One [tv_cmprs] step: demote the lowest-frequency indexed term into
    the uniform bucket and update the average. Returns
    [(Σ_p (σ_p − σ′_p)², bytes_saved, compressed)], or [None] when no
    indexed term remains. [bytes_saved] can in principle be ≤ 0 if the
    demoted bit fragments the RLE encoding.

    Since a demotion never changes the frequency of a surviving indexed
    term, the demotion order of a summary is fixed up front; the
    returned summary is a lazily-materialized cursor over that order, so
    a chain of [compress_once] steps — the inner loop of XCLUSTERBUILD
    phase 2 — costs O(log k) per step instead of O(k) array rebuilds.
    Accessors force materialization transparently (memoized). *)

val compress_once_eager : t -> (float * int * t) option
(** The pre-cursor implementation of {!compress_once}, retained as the
    cost-faithful baseline for the construction benchmark: every step
    rescans the indexed terms for the minimum and eagerly rebuilds both
    arrays, O(k) per step. Bit-identical results to {!compress_once}. *)

val support_seq : t -> (int * float) Seq.t
(** All (term, estimated frequency) pairs, ascending by term id — the
    atomic predicates of the Δ metric. *)

val dot_products : t -> t -> float * float * float
(** [(Σσu², Σσv², Σσuσv)] over the union of the two supports. *)

val size_bytes : t -> int
(** 8 per indexed term, 4 per RLE run, plus an 8-byte header. *)

val pp : Format.formatter -> t -> unit

val of_parts : n:float -> top:(int * float) list -> bucket:int list ->
  bucket_avg:float -> t
(** Rebuilds a summary from serialized parts: exactly-indexed
    (term, frequency) pairs, the uniform bucket's term ids, and its
    average frequency. Order-insensitive; the two term sets must be
    disjoint. *)

val parts : t -> (int * float) list * int list * float
(** [(top, bucket, bucket_avg)], for serialization. *)
