type t =
  | Vnone
  | Vnum of Histogram.t
  | Vstr of Pst.t
  | Vtext of Term_hist.t

let vnone = Vnone

let of_values ?(hist_buckets = 64) ?(pst_depth = 8) ?(pst_nodes = 2048)
    ?(top_terms = 4096) values =
  let nums = ref [] and strs = ref [] and texts = ref [] in
  List.iter
    (fun v ->
      match v with
      | Xc_xml.Value.Null -> ()
      | Xc_xml.Value.Numeric n -> nums := n :: !nums
      | Xc_xml.Value.Str s -> strs := s :: !strs
      | Xc_xml.Value.Text terms -> texts := terms :: !texts)
    values;
  match !nums, !strs, !texts with
  | [], [], [] -> Vnone
  | nums, [], [] -> Vnum (Histogram.build ~n_buckets:hist_buckets (Array.of_list nums))
  | [], strs, [] -> Vstr (Pst.build ~max_depth:pst_depth ~max_nodes:pst_nodes strs)
  | [], [], texts -> Vtext (Term_hist.build ~top_k:top_terms texts)
  | _ -> invalid_arg "Value_summary.of_values: mixed value types"

let size_bytes = function
  | Vnone -> 0
  | Vnum h -> Histogram.size_bytes h
  | Vstr p -> Pst.size_bytes p
  | Vtext th -> Term_hist.size_bytes th

let fuse a b =
  match a, b with
  | Vnone, Vnone -> Vnone
  | Vnum x, Vnum y -> Vnum (Histogram.merge x y)
  | Vstr x, Vstr y -> Vstr (Pst.merge x y)
  | Vtext x, Vtext y -> Vtext (Term_hist.fuse x y)
  | (Vnone | Vnum _ | Vstr _ | Vtext _), _ ->
    invalid_arg "Value_summary.fuse: type mismatch"

let numeric_dots x y =
  let suu = ref 0.0 and svv = ref 0.0 and suv = ref 0.0 in
  let visit h =
    let a = Histogram.prefix_fraction x h and b = Histogram.prefix_fraction y h in
    suu := !suu +. (a *. a);
    svv := !svv +. (b *. b);
    suv := !suv +. (a *. b)
  in
  (* both boundary lists arrive ascending; walk their union in order
     (the same visit sequence as materializing the union set) *)
  let rec merge xs ys =
    match xs, ys with
    | [], [] -> ()
    | h :: tl, [] | [], h :: tl ->
      visit h;
      merge tl []
    | hx :: tx, hy :: ty ->
      if hx < hy then begin
        visit hx;
        merge tx ys
      end
      else if hy < hx then begin
        visit hy;
        merge xs ty
      end
      else begin
        visit hx;
        merge tx ty
      end
  in
  merge (Histogram.boundaries x) (Histogram.boundaries y);
  (!suu, !svv, !suv)

let pred_dots a b =
  match a, b with
  | Vnone, Vnone -> (1.0, 1.0, 1.0)
  | Vnum x, Vnum y -> numeric_dots x y
  | Vstr x, Vstr y ->
    let suu, svv, suv = Pst.dot_products x y in
    (suu, svv, suv)
  | Vtext x, Vtext y ->
    let suu, svv, suv = Term_hist.dot_products x y in
    (suu, svv, suv)
  | (Vnone | Vnum _ | Vstr _ | Vtext _), _ ->
    invalid_arg "Value_summary.pred_dots: type mismatch"

let self_dots s =
  let suu, _, _ = pred_dots s s in
  suu

type step = {
  err : float;
  saved : int;
  apply : unit -> t;
}

(* The preview already locates (and for the immutable summaries,
   builds) the compressed result; the [apply] closure carries it so
   applying a previewed step costs nothing beyond the preview. [Vstr]
   prunes in place and so must defer the mutation to [apply] — its
   closure re-pops the already-validated heap top, which is O(1). *)
let compress_step = function
  | Vnone -> None
  | Vnum h ->
    if Histogram.n_buckets h < 2 then None
    else
      let err, i = Histogram.compress_error h in
      Some { err; saved = 8; apply = (fun () -> Vnum (Histogram.merge_at h i)) }
  | Vstr p ->
    Option.map
      (fun err ->
        { err;
          saved = 9;
          apply =
            (fun () ->
              ignore (Pst.prune_once p);
              Vstr p) })
      (Pst.peek_prune p)
  | Vtext th ->
    Option.map
      (fun (err, saved, th') -> { err; saved; apply = (fun () -> Vtext th') })
      (Term_hist.compress_once th)

(* [preview_compression]/[apply_compression] are the pre-step-carrying
   two-pass protocol: preview the step, discard the work, redo it at
   apply time. They survive as the cost-faithful baseline for the
   construction benchmark (and as a convenient standalone API), hence
   the eager term-histogram variant — same values, pre-cursor cost. *)
let preview_compression = function
  | Vnone -> None
  | Vnum h ->
    if Histogram.n_buckets h < 2 then None
    else Some (fst (Histogram.compress_error h), 8)
  | Vstr p -> Option.map (fun err -> (err, 9)) (Pst.peek_prune p)
  | Vtext th ->
    Option.map (fun (err, saved, _) -> (err, saved)) (Term_hist.compress_once_eager th)

let apply_compression = function
  | Vnone -> None
  | Vnum h -> if Histogram.n_buckets h < 2 then None else Some (Vnum (Histogram.compress_once h))
  | Vstr p -> Option.map (fun _ -> Vstr p) (Pst.prune_once p)
  | Vtext th -> Option.map (fun (_, _, th') -> Vtext th') (Term_hist.compress_once_eager th)

(* A typed cluster without a summary is an undesignated path: the
   synopsis carries no evidence that its values ever satisfy predicates,
   so σ estimates to 0 — this keeps generalized steps (//tag) from
   pulling in the full extent of unsummarized same-tag clusters. *)

let numeric_selectivity s ~lo ~hi =
  match s with
  | Vnone -> 0.0
  | Vnum h -> Histogram.range_fraction h lo hi
  | Vstr _ | Vtext _ -> invalid_arg "Value_summary.numeric_selectivity"

let substring_selectivity s qs =
  match s with
  | Vnone -> 0.0
  | Vstr p -> Pst.selectivity p qs
  | Vnum _ | Vtext _ -> invalid_arg "Value_summary.substring_selectivity"

let text_selectivity s terms =
  match s with
  | Vnone -> 0.0
  | Vtext th -> Term_hist.selectivity th terms
  | Vnum _ | Vstr _ -> invalid_arg "Value_summary.text_selectivity"

let type_name = function
  | Vnone -> "none"
  | Vnum _ -> "numeric"
  | Vstr _ -> "string"
  | Vtext _ -> "text"

let pp ppf = function
  | Vnone -> Format.pp_print_string ppf "vnone"
  | Vnum h -> Histogram.pp ppf h
  | Vstr p -> Pst.pp ppf p
  | Vtext th -> Term_hist.pp ppf th

let copy = function
  | Vnone -> Vnone
  | Vnum h -> Vnum h (* immutable *)
  | Vstr p -> Vstr (Pst.copy p)
  | Vtext th -> Vtext th (* immutable *)

let term_frequency s term =
  match s with
  | Vnone -> 0.0
  | Vtext th -> Term_hist.frequency th (term : Xc_xml.Dictionary.term :> int)
  | Vnum _ | Vstr _ -> invalid_arg "Value_summary.term_frequency"
