type t = {
  bounds : int array;   (* n+1 ascending boundaries; bucket i = [bounds.(i), bounds.(i+1)) *)
  counts : float array; (* n bucket masses *)
  cum : float array;    (* n+1 prefix sums of counts *)
  total : float;
}

let n_buckets t = Array.length t.counts
let n_values t = t.total
let lo t = t.bounds.(0)
let hi t = t.bounds.(Array.length t.bounds - 1)

let make_cum counts =
  let n = Array.length counts in
  let cum = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    cum.(i + 1) <- cum.(i) +. counts.(i)
  done;
  cum

let of_arrays bounds counts =
  let cum = make_cum counts in
  { bounds; counts; cum; total = cum.(Array.length counts) }

(* Equi-depth over the sorted distinct values with their multiplicities. *)
let build ?(n_buckets = 64) values =
  if Array.length values = 0 then invalid_arg "Histogram.build: empty";
  let sorted = Array.copy values in
  Array.sort Int.compare sorted;
  (* run-length encode *)
  let distinct = ref [] in
  let cur = ref sorted.(0) and mult = ref 0 in
  Array.iter
    (fun v ->
      if v = !cur then incr mult
      else begin
        distinct := (!cur, !mult) :: !distinct;
        cur := v;
        mult := 1
      end)
    sorted;
  distinct := (!cur, !mult) :: !distinct;
  let runs = Array.of_list (List.rev !distinct) in
  let n_distinct = Array.length runs in
  let k = max 1 (min n_buckets n_distinct) in
  let total = float_of_int (Array.length values) in
  let target = total /. float_of_int k in
  let bounds = ref [ fst runs.(0) ] in
  let counts = ref [] in
  let acc = ref 0.0 in
  let closed = ref 0 in
  Array.iteri
    (fun i (v, m) ->
      acc := !acc +. float_of_int m;
      let is_last = i = n_distinct - 1 in
      (* close the bucket when the depth target is reached, and also when
         the remaining distinct values would otherwise be forced to share
         buckets that are still available *)
      let remaining_runs = n_distinct - i - 1 in
      let remaining_buckets = k - !closed - 1 in
      if
        is_last
        || (!closed < k - 1 && (!acc >= target || remaining_runs <= remaining_buckets))
      then begin
        (* close at (last value)+1, not at the next distinct value: the
           gap belongs to the following bucket, so a heavy singleton run
           keeps a tight range and point queries on it stay exact *)
        ignore is_last;
        let upper = v + 1 in
        bounds := upper :: !bounds;
        counts := !acc :: !counts;
        acc := 0.0;
        incr closed
      end)
    runs;
  of_arrays (Array.of_list (List.rev !bounds)) (Array.of_list (List.rev !counts))

let build_equiwidth ?(n_buckets = 64) values =
  if Array.length values = 0 then invalid_arg "Histogram.build_equiwidth: empty";
  let vlo = Array.fold_left min values.(0) values in
  let vhi = Array.fold_left max values.(0) values + 1 in
  let k = max 1 (min n_buckets (vhi - vlo)) in
  let width = float_of_int (vhi - vlo) /. float_of_int k in
  let bounds = Array.init (k + 1) (fun i ->
    if i = k then vhi else vlo + int_of_float (Float.round (float_of_int i *. width)))
  in
  (* Deduplicate any collapsed boundaries caused by rounding. *)
  let bounds =
    Array.of_list
      (List.sort_uniq Int.compare (Array.to_list bounds))
  in
  let k = Array.length bounds - 1 in
  let counts = Array.make k 0.0 in
  Array.iter
    (fun v ->
      let rec find lo hi =
        if hi - lo <= 1 then lo
        else
          let mid = (lo + hi) / 2 in
          if v < bounds.(mid) then find lo mid else find mid hi
      in
      let b = find 0 k in
      counts.(b) <- counts.(b) +. 1.0)
    values;
  of_arrays bounds counts

let boundaries t = Array.to_list t.bounds

(* Index of the bucket whose range contains h, or -1 / n for out of range. *)
let locate t h =
  let n = n_buckets t in
  if h < t.bounds.(0) then -1
  else if h >= t.bounds.(n) then n
  else begin
    let rec find lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if h < t.bounds.(mid) then find lo mid else find mid hi
    in
    find 0 n
  end

let prefix_fraction t h =
  let n = n_buckets t in
  if t.total <= 0.0 then 0.0
  else
    match locate t h with
    | -1 -> 0.0
    | i when i >= n -> 1.0
    | i ->
      let blo = float_of_int t.bounds.(i) and bhi = float_of_int t.bounds.(i + 1) in
      let inside = t.counts.(i) *. ((float_of_int h -. blo) /. (bhi -. blo)) in
      (t.cum.(i) +. inside) /. t.total

let range_fraction t l h =
  if h < l then 0.0
  else begin
    (* guard h+1 against overflow for open-ended ranges like [n, max_int] *)
    let upper = if h >= hi t then 1.0 else prefix_fraction t (h + 1) in
    Float.max 0.0 (upper -. prefix_fraction t l)
  end

let merge a b =
  let module IS = Set.Make (Int) in
  let add_bounds set t = Array.fold_left (fun s x -> IS.add x s) set t.bounds in
  let union = IS.elements (add_bounds (add_bounds IS.empty a) b) in
  let bounds = Array.of_list union in
  let k = Array.length bounds - 1 in
  let mass t l h =
    t.total *. Float.max 0.0 (prefix_fraction t h -. prefix_fraction t l)
  in
  let counts =
    Array.init k (fun i ->
        mass a bounds.(i) bounds.(i + 1) +. mass b bounds.(i) bounds.(i + 1))
  in
  of_arrays bounds counts

let pair_error t i =
  (* Collapsing buckets i and i+1 only perturbs the atomic prefix
     predicate ending at the removed boundary. *)
  let b = float_of_int t.bounds.(i + 1) in
  let blo = float_of_int t.bounds.(i) and bhi = float_of_int t.bounds.(i + 2) in
  let before = (t.cum.(i) +. t.counts.(i)) /. t.total in
  let merged = t.counts.(i) +. t.counts.(i + 1) in
  let after = (t.cum.(i) +. (merged *. ((b -. blo) /. (bhi -. blo)))) /. t.total in
  let d = before -. after in
  d *. d

let compress_error t =
  let n = n_buckets t in
  if n < 2 then invalid_arg "Histogram.compress_error: single bucket";
  let best = ref (pair_error t 0, 0) in
  for i = 1 to n - 2 do
    let e = pair_error t i in
    if e < fst !best then best := (e, i)
  done;
  !best

let merge_at t i =
  let n = n_buckets t in
  if i < 0 || i >= n - 1 then invalid_arg "Histogram.merge_at: index out of range";
  let bounds = Array.init n (fun j -> if j <= i then t.bounds.(j) else t.bounds.(j + 1)) in
  let counts =
    Array.init (n - 1) (fun j ->
        if j < i then t.counts.(j)
        else if j = i then t.counts.(i) +. t.counts.(i + 1)
        else t.counts.(j + 1))
  in
  of_arrays bounds counts

let compress_once t = merge_at t (snd (compress_error t))

let size_bytes t = 8 * n_buckets t

let equal a b =
  a.bounds = b.bounds
  && Array.length a.counts = Array.length b.counts
  && Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) a.counts b.counts

let pp ppf t =
  Format.fprintf ppf "@[<h>hist(n=%.0f" t.total;
  Array.iteri
    (fun i c -> Format.fprintf ppf "; [%d,%d):%.1f" t.bounds.(i) t.bounds.(i + 1) c)
    t.counts;
  Format.fprintf ppf ")@]"

let of_raw ~bounds ~counts =
  if Array.length bounds <> Array.length counts + 1 then
    invalid_arg "Histogram.of_raw: bounds/counts length mismatch";
  Array.iteri
    (fun i b -> if i > 0 && b <= bounds.(i - 1) then invalid_arg "Histogram.of_raw: bounds not ascending")
    bounds;
  Array.iter (fun c -> if c < 0.0 then invalid_arg "Histogram.of_raw: negative count") counts;
  of_arrays (Array.copy bounds) (Array.copy counts)

let raw t = (Array.copy t.bounds, Array.copy t.counts)

let build_maxdiff ?(n_buckets = 64) values =
  if Array.length values = 0 then invalid_arg "Histogram.build_maxdiff: empty";
  let sorted = Array.copy values in
  Array.sort Int.compare sorted;
  (* run-length encode into (value, frequency) pairs *)
  let runs = ref [] in
  let cur = ref sorted.(0) and mult = ref 0 in
  Array.iter
    (fun v ->
      if v = !cur then incr mult
      else begin
        runs := (!cur, !mult) :: !runs;
        cur := v;
        mult := 1
      end)
    sorted;
  runs := (!cur, !mult) :: !runs;
  let runs = Array.of_list (List.rev !runs) in
  let n_distinct = Array.length runs in
  let k = max 1 (min n_buckets n_distinct) in
  if k >= n_distinct then
    (* every distinct value gets its own bucket *)
    of_arrays
      (Array.init (n_distinct + 1) (fun i ->
           if i = n_distinct then fst runs.(n_distinct - 1) + 1 else fst runs.(i)))
      (Array.map (fun (_, m) -> float_of_int m) runs)
  else begin
    (* area of a run = frequency x spread to the next distinct value; cut
       at the k-1 largest adjacent area differences *)
    let area i =
      let v, m = runs.(i) in
      let spread = if i = n_distinct - 1 then 1 else fst runs.(i + 1) - v in
      float_of_int m *. float_of_int spread
    in
    let diffs =
      Array.init (n_distinct - 1) (fun i -> (Float.abs (area (i + 1) -. area i), i))
    in
    Array.sort (fun (a, _) (b, _) -> Float.compare b a) diffs;
    let cuts =
      Array.sub diffs 0 (k - 1) |> Array.map snd |> Array.to_list
      |> List.sort Int.compare
    in
    (* bucket j spans runs (cut_{j-1}, cut_j]; each bucket closes right
       after its last observed value, and the gap to the next distinct
       value becomes an explicit zero-count bucket — so heavy singleton
       runs keep exact point estimates (the point of MaxDiff) *)
    let bounds = ref [ fst runs.(0) ] and counts = ref [] in
    let acc = ref 0.0 in
    let cuts = ref cuts in
    for i = 0 to n_distinct - 1 do
      acc := !acc +. float_of_int (snd runs.(i));
      let cut_here =
        match !cuts with
        | c :: rest when c = i ->
          cuts := rest;
          true
        | _ -> i = n_distinct - 1
      in
      if cut_here then begin
        let upper = fst runs.(i) + 1 in
        bounds := upper :: !bounds;
        counts := !acc :: !counts;
        acc := 0.0;
        if i < n_distinct - 1 && fst runs.(i + 1) > upper then begin
          bounds := fst runs.(i + 1) :: !bounds;
          counts := 0.0 :: !counts
        end
      end
    done;
    of_arrays (Array.of_list (List.rev !bounds)) (Array.of_list (List.rev !counts))
  end
