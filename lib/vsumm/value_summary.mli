(** The unified value-summary layer: one [vsumm] per XCluster node.

    Dispatches to {!Histogram} (NUMERIC), {!Pst} (STRING) or
    {!Term_hist} (TEXT), and exposes exactly the operations the
    construction algorithm needs: size accounting, fusion during node
    merges, the closed-form dot products of the Δ metric, and the three
    value-compression operators of Sec. 4.2 ([hist_cmprs], [st_cmprs],
    [tv_cmprs]). *)

type t =
  | Vnone                 (** no summary (Null type, or undesignated path) *)
  | Vnum of Histogram.t
  | Vstr of Pst.t
  | Vtext of Term_hist.t

val vnone : t

val of_values : ?hist_buckets:int -> ?pst_depth:int -> ?pst_nodes:int ->
  ?top_terms:int -> Xc_xml.Value.t list -> t
(** Builds a detailed (reference-grade) summary from a homogeneous value
    collection; [Vnone] on an empty or all-null collection. The optional
    caps bound the reference detail (DESIGN.md). *)

val size_bytes : t -> int

val fuse : t -> t -> t
(** Merge-time fusion (Sec. 4.1). Both arguments must have the same
    constructor; fusing [Vnone] with [Vnone] is [Vnone].
    @raise Invalid_argument on a constructor mismatch. *)

val pred_dots : t -> t -> float * float * float
(** [(Σ_p σ_u(p)², Σ_p σ_v(p)², Σ_p σ_u(p)σ_v(p))] over the union of the
    atomic predicates of both summaries (Sec. 4.1). For [Vnone] the
    predicate set is the single trivial predicate with σ = 1. *)

val self_dots : t -> float
(** [Σ_p σ(p)²] over the summary's own atomic predicates (1.0 for
    [Vnone]); the [pred_dots] diagonal, used for single-node Δ terms. *)

type step = {
  err : float;  (** Σ_p (σ_p − σ′_p)² of the step *)
  saved : int;  (** bytes saved by the step *)
  apply : unit -> t;
      (** the compressed summary; carries the preview's product, so
          applying costs nothing beyond the preview itself. Valid only
          while the summary is unchanged since {!compress_step} (for
          [Vstr] it prunes the shared tree in place). *)
}

val compress_step : t -> step option
(** Previews the next compression step on this summary and returns it
    together with an [apply] thunk that finalizes it without redoing
    the preview's work. [None] when the summary cannot be compressed
    further. *)

val preview_compression : t -> (float * int) option
(** [(Σ_p (σ_p − σ′_p)², bytes saved)] for the next compression step on
    this summary, or [None] when it cannot be compressed further.
    Same values as {!compress_step} without the carried result, at the
    pre-step-carrying cost (the preview's work is discarded). *)

val apply_compression : t -> t option
(** Applies the step previewed by {!preview_compression}, redoing the
    preview's search. Returns the compressed summary ([Vstr] is pruned
    in place and returned). Together with {!preview_compression} this is
    the two-pass protocol the construction benchmark uses as its
    cost-faithful baseline; both produce summaries bit-identical to
    {!compress_step}-then-[apply]. *)

val numeric_selectivity : t -> lo:int -> hi:int -> float
(** σ of a range predicate [\[lo, hi\]] (inclusive). [Vnone] → 0.0:
    a typed cluster without a summary is an undesignated path, and
    treating it as all-pass would make generalized steps ([//tag]) pull
    in whole unsummarized extents.
    @raise Invalid_argument on other constructors. *)

val substring_selectivity : t -> string -> float
(** σ of [contains(qs)]. [Vnone] → 0.0. *)

val text_selectivity : t -> Xc_xml.Dictionary.term list -> float
(** σ of [ftcontains(t1,...,tk)]. [Vnone] → 0.0. *)

val type_name : t -> string
val pp : Format.formatter -> t -> unit

val copy : t -> t
(** Deep copy safe to compress independently of the original. *)

val term_frequency : t -> Xc_xml.Dictionary.term -> float
(** Estimated fractional frequency of a single term ([Vtext] only;
    [Vnone] → 0.0). Used to compose Boolean-model predicates beyond
    conjunction (disjunction, negation). *)
