module IntSet = Set.Make (Int)

type mat = {
  n : float;
  top_terms : int array;  (* sorted by term id *)
  top_freqs : float array;
  bucket : Rle_bitmap.t;
  bucket_avg : float;
  mutable flat : (int array * float array) option;
      (* memoized support flattening (terms ascending, estimated freqs);
         summaries are immutable so the cache never invalidates *)
}

(* A chain of demotions pending over a materialized ancestor. Because a
   demotion never changes the frequency of a surviving indexed term, the
   whole demotion order of [base] is fixed up front ([order]); advancing
   the cursor is O(log pos) instead of the O(top) array rebuild of a
   materialized step — the repeated-compression path of XCLUSTERBUILD
   phase 2 walks a summary from thousands of indexed terms down to a
   handful, which would otherwise cost O(top²) per node. *)
type cursor = {
  base : mat;
  order : int array;  (* base top indices in demotion order, shared by the chain *)
  pos : int;  (* order.(0 .. pos-1) are demoted *)
  runs : int;  (* RLE run count of base.bucket ∪ demoted ids *)
  bn : float;  (* bucket cardinality, as the same float chain a
                  materialized step would compute *)
  bavg : float;  (* bucket average, same float chain *)
  demoted : IntSet.t;
  mutable forced : mat option;  (* memoized materialization *)
}

type t =
  | Mat of mat
  | Cur of cursor

(* demotion order: ascending frequency, ties by array index — exactly
   the pick order of a repeated first-minimum scan *)
let order_of m =
  let k = Array.length m.top_terms in
  let idx = Array.init k Fun.id in
  Array.sort
    (fun i j ->
      let c = Float.compare m.top_freqs.(i) m.top_freqs.(j) in
      if c <> 0 then c else Int.compare i j)
    idx;
  idx

let force = function
  | Mat m -> m
  | Cur c ->
    (match c.forced with
    | Some m -> m
    | None ->
      let k = Array.length c.base.top_terms in
      let live = Array.make k true in
      for i = 0 to c.pos - 1 do
        live.(c.order.(i)) <- false
      done;
      let k' = k - c.pos in
      let terms = Array.make k' 0 and freqs = Array.make k' 0.0 in
      let j = ref 0 in
      for i = 0 to k - 1 do
        if live.(i) then begin
          terms.(!j) <- c.base.top_terms.(i);
          freqs.(!j) <- c.base.top_freqs.(i);
          incr j
        end
      done;
      let bits =
        List.merge Int.compare
          (List.of_seq (Rle_bitmap.to_seq c.base.bucket))
          (IntSet.elements c.demoted)
      in
      let m =
        { n = c.base.n;
          top_terms = terms;
          top_freqs = freqs;
          bucket = Rle_bitmap.of_sorted_list bits;
          bucket_avg = c.bavg;
          flat = None }
      in
      c.forced <- Some m;
      m)

let n_documents = function
  | Mat m -> m.n
  | Cur c -> c.base.n

let n_top = function
  | Mat m -> Array.length m.top_terms
  | Cur c -> Array.length c.base.top_terms - c.pos

(* top and bucket term sets are disjoint, and every demotion moves
   exactly one indexed term into the bucket *)
let bucket_size = function
  | Mat m -> Rle_bitmap.cardinality m.bucket
  | Cur c -> Rle_bitmap.cardinality c.base.bucket + c.pos

let support_size t = n_top t + bucket_size t

let of_entries ~n ~top_k entries =
  (* entries: (term, freq) list with freq > 0, any order *)
  let by_freq = List.sort (fun (_, a) (_, b) -> Float.compare b a) entries in
  let rec split i acc rest =
    match rest with
    | [] -> (List.rev acc, [])
    | _ when i >= top_k -> (List.rev acc, rest)
    | e :: tl -> split (i + 1) (e :: acc) tl
  in
  let top, bucket = split 0 [] by_freq in
  let top = List.sort (fun (a, _) (b, _) -> Int.compare a b) top in
  let bucket = List.sort (fun (a, _) (b, _) -> Int.compare a b) bucket in
  let bucket_bits = List.map fst bucket in
  let bucket_sum = List.fold_left (fun s (_, f) -> s +. f) 0.0 bucket in
  let bucket_n = List.length bucket in
  Mat
    { n;
      top_terms = Array.of_list (List.map fst top);
      top_freqs = Array.of_list (List.map snd top);
      bucket = Rle_bitmap.of_list bucket_bits;
      bucket_avg = (if bucket_n = 0 then 0.0 else bucket_sum /. float_of_int bucket_n);
      flat = None }

let of_centroid ?(top_k = 4096) centroid =
  of_entries
    ~n:(Term_vector.n_documents centroid)
    ~top_k
    (Array.to_list (Term_vector.entries centroid))

let build ?top_k docs = of_centroid ?top_k (Term_vector.of_documents docs)

let top_lookup m id =
  let rec search lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      if m.top_terms.(mid) = id then Some m.top_freqs.(mid)
      else if m.top_terms.(mid) < id then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length m.top_terms)

let frequency t id =
  let m = force t in
  match top_lookup m id with
  | Some f -> f
  | None -> if Rle_bitmap.mem m.bucket id then m.bucket_avg else 0.0

let selectivity t terms =
  List.fold_left
    (fun acc term -> acc *. frequency t (term : Xc_xml.Dictionary.term :> int))
    1.0 terms

let support_seq t =
  let m = force t in
  let top =
    Seq.init (Array.length m.top_terms) (fun i -> (m.top_terms.(i), m.top_freqs.(i)))
  in
  let bucket = Seq.map (fun id -> (id, m.bucket_avg)) (Rle_bitmap.to_seq m.bucket) in
  let rec merge sa sb () =
    match sa (), sb () with
    | Seq.Nil, rest -> rest
    | rest, Seq.Nil -> rest
    | Seq.Cons ((xa, _) as a, sa'), Seq.Cons ((xb, _) as b, sb') ->
      (* supports are disjoint by construction *)
      if xa < xb then Seq.Cons (a, merge sa' sb) else Seq.Cons (b, merge sa sb')
  in
  merge top bucket

let fuse a b =
  let am = force a and bm = force b in
  let total = am.n +. bm.n in
  let wa = am.n /. total and wb = bm.n /. total in
  (* Union of exactly-indexed term sets stays indexed; each side's
     contribution for a term uses that side's estimate. *)
  let exact = Hashtbl.create 64 in
  Array.iter (fun id -> Hashtbl.replace exact id ()) am.top_terms;
  Array.iter (fun id -> Hashtbl.replace exact id ()) bm.top_terms;
  let top = ref [] and rest = ref [] in
  let add (id, _) =
    let f = (wa *. frequency a id) +. (wb *. frequency b id) in
    if f > 0.0 then
      if Hashtbl.mem exact id then top := (id, f) :: !top else rest := (id, f) :: !rest
  in
  (* iterate the union of the two supports *)
  let rec union sa sb =
    match sa (), sb () with
    | Seq.Nil, rest' -> Seq.iter add (fun () -> rest')
    | rest', Seq.Nil -> Seq.iter add (fun () -> rest')
    | Seq.Cons ((xa, _) as ea, sa'), Seq.Cons ((xb, _) as eb, sb') ->
      if xa < xb then begin
        add ea;
        union sa' sb
      end
      else if xb < xa then begin
        add eb;
        union sa sb'
      end
      else begin
        add ea;
        union sa' sb'
      end
  in
  union (support_seq a) (support_seq b);
  let bucket_bits = List.map fst !rest in
  let bucket_sum = List.fold_left (fun s (_, f) -> s +. f) 0.0 !rest in
  let bucket_n = List.length !rest in
  let top = List.sort (fun (x, _) (y, _) -> Int.compare x y) !top in
  Mat
    { n = total;
      top_terms = Array.of_list (List.map fst top);
      top_freqs = Array.of_list (List.map snd top);
      bucket = Rle_bitmap.of_list bucket_bits;
      bucket_avg = (if bucket_n = 0 then 0.0 else bucket_sum /. float_of_int bucket_n);
      flat = None }

let header_bytes = 8

let size_bytes = function
  | Mat m -> header_bytes + (8 * Array.length m.top_terms) + Rle_bitmap.size_bytes m.bucket
  | Cur c -> header_bytes + (8 * n_top (Cur c)) + (4 * c.runs)

let cursor_of = function
  | Cur c -> c
  | Mat m ->
    { base = m;
      order = order_of m;
      pos = 0;
      runs = Rle_bitmap.n_runs m.bucket;
      bn = float_of_int (Rle_bitmap.cardinality m.bucket);
      bavg = m.bucket_avg;
      demoted = IntSet.empty;
      forced = None }

let compress_once t =
  let c = cursor_of t in
  let k_total = Array.length c.base.top_terms in
  if c.pos >= k_total then None
  else begin
    (* the next demotion in the precomputed order: the lowest-frequency
       surviving indexed term *)
    let i = c.order.(c.pos) in
    let demoted_id = c.base.top_terms.(i) and demoted_f = c.base.top_freqs.(i) in
    let old_n = c.bn in
    let old_avg = c.bavg in
    let new_avg = ((old_avg *. old_n) +. demoted_f) /. (old_n +. 1.0) in
    (* run count of the bucket after inserting [demoted_id]: joins,
       extends or starts a run depending on which neighbors are set *)
    let mem b = Rle_bitmap.mem c.base.bucket b || IntSet.mem b c.demoted in
    let runs' =
      c.runs + 1
      - (if mem (demoted_id - 1) then 1 else 0)
      - (if mem (demoted_id + 1) then 1 else 0)
    in
    (* Δ in predicate space: the demoted term moves from its exact
       frequency to the new average; every old bucket term moves from the
       old average to the new one. *)
    let d1 = demoted_f -. new_avg in
    let d2 = old_avg -. new_avg in
    let err = (d1 *. d1) +. (old_n *. d2 *. d2) in
    (* one indexed slot (8 bytes) freed, run-count delta on the bucket *)
    let saved = 8 + (4 * (c.runs - runs')) in
    let c' =
      { c with
        pos = c.pos + 1;
        runs = runs';
        bn = old_n +. 1.0;
        bavg = new_avg;
        demoted = IntSet.add demoted_id c.demoted;
        forced = None }
    in
    Some (err, saved, Cur c')
  end

(* The pre-cursor implementation, kept verbatim as the cost-faithful
   baseline for the construction benchmark: every step rescans the
   indexed terms for the minimum and eagerly rebuilds both arrays.
   Values are bit-identical to [compress_once] — the first-minimum scan
   picks the same index as [order], and the average/err/saved chains are
   the same float arithmetic. *)
let compress_once_eager t =
  let m = force t in
  let k = Array.length m.top_terms in
  if k = 0 then None
  else begin
    (* find the lowest-frequency indexed term *)
    let worst = ref 0 in
    for i = 1 to k - 1 do
      if m.top_freqs.(i) < m.top_freqs.(!worst) then worst := i
    done;
    let demoted_id = m.top_terms.(!worst) and demoted_f = m.top_freqs.(!worst) in
    let old_n = float_of_int (Rle_bitmap.cardinality m.bucket) in
    let old_avg = m.bucket_avg in
    let new_avg = ((old_avg *. old_n) +. demoted_f) /. (old_n +. 1.0) in
    let bucket = Rle_bitmap.add m.bucket demoted_id in
    let compressed =
      { n = m.n;
        top_terms =
          Array.init (k - 1) (fun i -> m.top_terms.(if i < !worst then i else i + 1));
        top_freqs =
          Array.init (k - 1) (fun i -> m.top_freqs.(if i < !worst then i else i + 1));
        bucket;
        bucket_avg = new_avg;
        flat = None }
    in
    let d1 = demoted_f -. new_avg in
    let d2 = old_avg -. new_avg in
    let err = (d1 *. d1) +. (old_n *. d2 *. d2) in
    let saved = size_bytes (Mat m) - size_bytes (Mat compressed) in
    Some (err, saved, Mat compressed)
  end

(* flattened support, memoized: the Δ metric evaluates dot products for
   hundreds of thousands of candidate merges, so this path is hot *)
let flat t =
  let m = force t in
  match m.flat with
  | Some f -> f
  | None ->
    let n = support_size t in
    let terms = Array.make n 0 and freqs = Array.make n 0.0 in
    let i = ref 0 in
    Seq.iter
      (fun (id, f) ->
        terms.(!i) <- id;
        freqs.(!i) <- f;
        incr i)
      (support_seq t);
    let f = (terms, freqs) in
    m.flat <- Some f;
    f

let dot_products a b =
  (* hot path: one call per candidate merge of TEXT clusters; unsafe
     accesses are in-bounds by the loop guards *)
  let ta, fa = flat a and tb, fb = flat b in
  let na = Array.length ta and nb = Array.length tb in
  let suu = ref 0.0 and svv = ref 0.0 and suv = ref 0.0 in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let xa = Array.unsafe_get ta !i and xb = Array.unsafe_get tb !j in
    if xa < xb then begin
      let v = Array.unsafe_get fa !i in
      suu := !suu +. (v *. v);
      incr i
    end
    else if xb < xa then begin
      let v = Array.unsafe_get fb !j in
      svv := !svv +. (v *. v);
      incr j
    end
    else begin
      let va = Array.unsafe_get fa !i and vb = Array.unsafe_get fb !j in
      suu := !suu +. (va *. va);
      svv := !svv +. (vb *. vb);
      suv := !suv +. (va *. vb);
      incr i;
      incr j
    end
  done;
  while !i < na do
    let v = Array.unsafe_get fa !i in
    suu := !suu +. (v *. v);
    incr i
  done;
  while !j < nb do
    let v = Array.unsafe_get fb !j in
    svv := !svv +. (v *. v);
    incr j
  done;
  (!suu, !svv, !suv)

let pp ppf t =
  let m = force t in
  Format.fprintf ppf "termhist(n=%.0f, top=%d, bucket=%d@%.4f)" m.n (n_top t)
    (bucket_size t) m.bucket_avg

let of_parts ~n ~top ~bucket ~bucket_avg =
  let top = List.sort (fun (a, _) (b, _) -> Int.compare a b) top in
  Mat
    { n;
      top_terms = Array.of_list (List.map fst top);
      top_freqs = Array.of_list (List.map snd top);
      bucket = Rle_bitmap.of_list bucket;
      bucket_avg;
      flat = None }

let parts t =
  let m = force t in
  ( Array.to_list (Array.mapi (fun i id -> (id, m.top_freqs.(i))) m.top_terms),
    List.of_seq (Rle_bitmap.to_seq m.bucket),
    m.bucket_avg )
