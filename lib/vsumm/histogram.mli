(** Bucket histograms over an integer value domain — the NUMERIC value
    summaries of XCluster nodes.

    A histogram covers a contiguous integer range [\[lo, hi)] with
    contiguous buckets; each bucket records the number of values falling
    in its range (a float, because node merges produce weighted
    mixtures). Range selectivities are estimated with the standard
    continuous-uniformity assumption inside buckets.

    All selectivity results are *fractions* in [0, 1] of the summarized
    value population. *)

type t

val build : ?n_buckets:int -> int array -> t
(** [build values] constructs an equi-depth histogram with at most
    [n_buckets] buckets (default 64, clamped to the number of distinct
    values). [values] may be in any order; it must be non-empty. *)

val build_equiwidth : ?n_buckets:int -> int array -> t
(** Equi-width variant, used by ablations. *)

val n_values : t -> float
(** Total mass (number of summarized values). *)

val n_buckets : t -> int
val lo : t -> int
val hi : t -> int
(** Domain bounds: values lie in [\[lo, hi)]. *)

val boundaries : t -> int list
(** All bucket boundaries, ascending, including [lo] and [hi]. These are
    the atomic range predicates [\[lo, h)] of the Δ metric. *)

val prefix_fraction : t -> int -> float
(** [prefix_fraction t h] estimates the fraction of values < [h]. *)

val range_fraction : t -> int -> int -> float
(** [range_fraction t l h] estimates the fraction of values in the
    inclusive range [\[l, h\]]. *)

val merge : t -> t -> t
(** Bucket-aligned fusion: both histograms are split on the union of
    their boundaries, then counts are summed (Sec. 4.1). *)

val compress_error : t -> float * int
(** [(err, idx)] for the cheapest adjacent-bucket merge: [err] is
    Σ_p (σ_p − σ′_p)² over the atomic prefix predicates affected by
    collapsing buckets [idx] and [idx+1]. Raises [Invalid_argument] on a
    single-bucket histogram. *)

val merge_at : t -> int -> t
(** Collapses buckets [i] and [i+1] into one, as previewed by
    {!compress_error}. @raise Invalid_argument when [i] is not a valid
    adjacent pair index. *)

val compress_once : t -> t
(** Collapse the adjacent bucket pair with minimal {!compress_error};
    [merge_at t (snd (compress_error t))]. *)

val size_bytes : t -> int
(** 8 bytes per bucket (boundary + count). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val of_raw : bounds:int array -> counts:float array -> t
(** Rebuilds a histogram from its serialized parts. [bounds] must be
    strictly ascending with one more entry than [counts]; counts must be
    non-negative. @raise Invalid_argument otherwise. *)

val raw : t -> int array * float array
(** The (bounds, counts) arrays, for serialization. *)

val build_maxdiff : ?n_buckets:int -> int array -> t
(** MaxDiff(V,A) construction (Poosala et al., SIGMOD'96, the paper's
    histogram reference): bucket boundaries are placed at the largest
    area differences between adjacent distinct values, which isolates
    outlier frequencies better than equi-depth on skewed data. *)
