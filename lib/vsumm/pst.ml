module Heap = Xc_util.Heap

type node = {
  mutable count : float;
  mutable children : (char * node) list;
  mutable last_seen : int; (* build-time per-string dedupe *)
}

type entry = {
  parent : node;
  sym : char;
  child : node;
  path : string; (* full substring the leaf represents *)
}

type t = {
  root : node;
  mutable n : float;
  mutable n_nodes : int;
  mutable total_len : float; (* summed string lengths: adjacency model *)
  max_depth : int;
  heap : entry Heap.t;
  mutable heap_ready : bool;
}

let new_node () = { count = 0.0; children = []; last_seen = -1 }

let find_child node c =
  let rec find = function
    | [] -> None
    | (c', child) :: rest -> if Char.equal c c' then Some child else find rest
  in
  find node.children

let n_strings t = t.n
let n_nodes t = t.n_nodes

let empty ?(max_depth = 8) () =
  { root = new_node ();
    n = 0.0;
    n_nodes = 0;
    total_len = 0.0;
    max_depth;
    heap = Heap.create ();
    heap_ready = false }

(* average string length, used by the adjacency-aware Markov fallback *)
let avg_len t = if t.n > 0.0 then Float.max 2.0 (t.total_len /. t.n) else 8.0

(* Insert every substring of [s] (up to [max_depth]) with presence
   semantics: each distinct substring bumps its count once per string,
   which is what the [sid] dedupe marker implements. *)
let insert_string t sid s =
  if t.heap_ready then begin
    Heap.clear t.heap;
    t.heap_ready <- false
  end;
  t.n <- t.n +. 1.0;
  t.total_len <- t.total_len +. float_of_int (String.length s);
  let len = String.length s in
  let insert_from start =
    let stop = min len (start + t.max_depth) in
    let rec walk node i =
      if i < stop then begin
        let c = s.[i] in
        let child =
          match find_child node c with
          | Some child -> child
          | None ->
            let child = new_node () in
            node.children <- (c, child) :: node.children;
            t.n_nodes <- t.n_nodes + 1;
            child
        in
        if child.last_seen <> sid then begin
          child.last_seen <- sid;
          child.count <- child.count +. 1.0
        end;
        walk child (i + 1)
      end
    in
    walk t.root start
  in
  for start = 0 to len - 1 do
    insert_from start
  done

(* Longest prefix of s.[from..] matched in the trie: returns (matched
   length, count at the deepest matched node). *)
let walk_prefix t s =
  let len = String.length s in
  let rec walk node i =
    if i >= len then (i, node.count)
    else
      match find_child node s.[i] with
      | Some child -> walk child (i + 1)
      | None -> (i, node.count)
  in
  let k, count = walk t.root 0 in
  (k, if k = 0 then t.n else count)

let count t s =
  if String.length s = 0 then Some t.n
  else begin
    let k, c = walk_prefix t s in
    if k = String.length s then Some c else None
  end

let rec estimate t s =
  let len = String.length s in
  if len = 0 then 1.0
  else if t.n <= 0.0 then 0.0
  else begin
    let k, c = walk_prefix t s in
    if k = len then c /. t.n
    else if k = 0 then 0.0
    else begin
      (* Markov: P(s) = P(s[0..k)) * P(s[1..]) / P(s[1..k)).
         When only a single character of the prefix is retained (k = 1)
         the overlap term degenerates to P(empty) = 1 and the product
         would treat mere *presence* of adjacent characters as
         *adjacency* — a large systematic overestimate (e.g. a space is
         present in almost every multi-word string). In that case the
         continuation is discounted by the expected number of positions,
         1/avg_len: the chance that the specific position after an
         occurrence actually holds the next character. *)
      let p_prefix = c /. t.n in
      let num = estimate t (String.sub s 1 (len - 1)) in
      if k = 1 then Float.min p_prefix (p_prefix *. num /. avg_len t)
      else begin
        let den = estimate t (String.sub s 1 (k - 1)) in
        if den <= 1e-12 then 0.0 else Float.min p_prefix (p_prefix *. num /. den)
      end
    end
  end

let selectivity t s = Float.max 0.0 (Float.min 1.0 (estimate t s))

let merge a b =
  let n_nodes = ref 0 in
  let rec union na nb =
    (* na, nb : node option; at least one is Some *)
    let count =
      (match na with Some x -> x.count | None -> 0.0)
      +. (match nb with Some x -> x.count | None -> 0.0)
    in
    let keys = Hashtbl.create 8 in
    let note side n =
      Option.iter
        (fun n ->
          List.iter
            (fun (c, child) ->
              let l, r = try Hashtbl.find keys c with Not_found -> (None, None) in
              let entry = if side = `L then (Some child, r) else (l, Some child) in
              Hashtbl.replace keys c entry)
            n.children)
        n
    in
    note `L na;
    note `R nb;
    let children =
      Hashtbl.fold
        (fun c (l, r) acc ->
          incr n_nodes;
          (c, union l r) :: acc)
        keys []
    in
    { count; children; last_seen = -1 }
  in
  let root = union (Some a.root) (Some b.root) in
  let root = { root with count = 0.0 } in
  { root;
    n = a.n +. b.n;
    n_nodes = !n_nodes;
    total_len = a.total_len +. b.total_len;
    max_depth = max a.max_depth b.max_depth;
    heap = Heap.create ();
    heap_ready = false }

let prune_error t path =
  (* Error of answering [path] after its leaf is removed: the walk then
     matches only the parent prefix and chains through Markov. *)
  let len = String.length path in
  let exact = estimate t path in
  let parent_frac =
    if len = 1 then 1.0
    else begin
      let k, c = walk_prefix t (String.sub path 0 (len - 1)) in
      if k = len - 1 then c /. t.n else 0.0
    end
  in
  let after =
    if len = 1 then 0.0
    else begin
      let num = estimate t (String.sub path 1 (len - 1)) in
      let den = estimate t (String.sub path 1 (len - 2)) in
      if den <= 1e-12 then 0.0 else Float.min parent_frac (parent_frac *. num /. den)
    end
  in
  let d = exact -. after in
  d *. d

let push_leaf t parent sym child path =
  Heap.push t.heap (prune_error t path) { parent; sym; child; path }

let ensure_heap t =
  if not t.heap_ready then begin
    t.heap_ready <- true;
    let buf = Buffer.create 16 in
    let rec scan depth node =
      List.iter
        (fun (c, child) ->
          Buffer.add_char buf c;
          (match child.children with
          | [] when depth + 1 >= 2 -> push_leaf t node c child (Buffer.contents buf)
          | [] -> ()
          | _ :: _ -> scan (depth + 1) child);
          Buffer.truncate buf (Buffer.length buf - 1))
        node.children
    in
    scan 0 t.root
  end

let entry_valid e =
  e.child.children = []
  &&
  match find_child e.parent e.sym with
  | Some c -> c == e.child
  | None -> false

let rec next_valid t =
  match Heap.pop t.heap with
  | None -> None
  | Some (err, e) -> if entry_valid e then Some (err, e) else next_valid t

let node_bytes = 9

let prune_once t =
  ensure_heap t;
  match next_valid t with
  | None -> None
  | Some (err, e) ->
    e.parent.children <- List.filter (fun (_, c) -> not (c == e.child)) e.parent.children;
    t.n_nodes <- t.n_nodes - 1;
    (* the parent may have just become a prunable leaf *)
    (if e.parent.children = [] && String.length e.path >= 3 then
       let ppath = String.sub e.path 0 (String.length e.path - 1) in
       let gpath = String.sub e.path 0 (String.length e.path - 2) in
       let k, _ = walk_prefix t gpath in
       if k = String.length gpath then begin
         (* find the grandparent node to register the entry *)
         let rec descend node i =
           if i = String.length gpath then Some node
           else
             match find_child node gpath.[i] with
             | Some child -> descend child (i + 1)
             | None -> None
         in
         match descend t.root 0 with
         | Some gp -> (
           match find_child gp ppath.[String.length ppath - 1] with
           | Some parent_node when parent_node == e.parent ->
             push_leaf t gp ppath.[String.length ppath - 1] e.parent ppath
           | Some _ | None -> ())
         | None -> ()
       end);
    Some (err, node_bytes)

let peek_prune t =
  ensure_heap t;
  let rec peek () =
    match Heap.peek t.heap with
    | None -> None
    | Some (err, e) ->
      if entry_valid e then Some err
      else begin
        ignore (Heap.pop t.heap);
        peek ()
      end
  in
  peek ()

let prune_to t target =
  let rec loop () =
    if t.n_nodes > target then
      match prune_once t with
      | Some _ -> loop ()
      | None -> ()
  in
  loop ()

let iter_substrings f t =
  let buf = Buffer.create 16 in
  let rec scan node =
    List.iter
      (fun (c, child) ->
        Buffer.add_char buf c;
        f (Buffer.contents buf) child.count;
        scan child;
        Buffer.truncate buf (Buffer.length buf - 1))
      node.children
  in
  scan t.root

let dot_products a b =
  (* Hot path: evaluated for every candidate merge of STRING clusters.
     Direct list-based joint traversal; per-node child lists are short,
     so linear find beats building hash tables. *)
  let suu = ref 0.0 and svv = ref 0.0 and suv = ref 0.0 in
  let na = if a.n > 0.0 then a.n else 1.0 in
  let nb = if b.n > 0.0 then b.n else 1.0 in
  let rec only_a node =
    let ca = node.count /. na in
    suu := !suu +. (ca *. ca);
    List.iter (fun (_, child) -> only_a child) node.children
  in
  let rec only_b node =
    let cb = node.count /. nb in
    svv := !svv +. (cb *. cb);
    List.iter (fun (_, child) -> only_b child) node.children
  in
  let rec pair an bn =
    (* children present in both sides recurse paired; the rest single *)
    List.iter
      (fun (c, achild) ->
        let ca = achild.count /. na in
        suu := !suu +. (ca *. ca);
        match find_child bn c with
        | Some bchild ->
          let cb = bchild.count /. nb in
          svv := !svv +. (cb *. cb);
          suv := !suv +. (ca *. cb);
          pair achild bchild
        | None -> List.iter (fun (_, child) -> only_a child) achild.children)
      an.children;
    List.iter
      (fun (c, bchild) ->
        match find_child an c with
        | Some _ -> ()
        | None -> only_b bchild)
      bn.children
  in
  pair a.root b.root;
  (!suu, !svv, !suv)

let size_bytes t = node_bytes * t.n_nodes

let strings_total_bytes t =
  let total = ref 0 in
  let rec scan depth node =
    List.iter
      (fun (_, child) ->
        total := !total + depth + 1;
        scan (depth + 1) child)
      node.children
  in
  scan 0 t.root;
  !total

let pp ppf t = Format.fprintf ppf "pst(n=%.0f, nodes=%d)" t.n t.n_nodes

let build ?max_depth ?(max_nodes = 4096) strings =
  let t = empty ?max_depth () in
  (* cap memory while building: prune down whenever the trie overshoots
     the target by 3x (mid-build pruning errors are approximations, but
     keep peak memory bounded across thousands of per-cluster PSTs) *)
  List.iteri
    (fun sid s ->
      insert_string t sid s;
      if t.n_nodes > 3 * max_nodes then prune_to t max_nodes)
    strings;
  prune_to t max_nodes;
  t

let copy t =
  let rec copy_node node =
    { count = node.count;
      children = List.map (fun (c, child) -> (c, copy_node child)) node.children;
      last_seen = -1 }
  in
  { root = copy_node t.root;
    n = t.n;
    n_nodes = t.n_nodes;
    total_len = t.total_len;
    max_depth = t.max_depth;
    heap = Heap.create ();
    heap_ready = false }

let of_substrings ?total_len ~n ~max_depth entries =
  let t = empty ~max_depth () in
  t.total_len <- (match total_len with Some l -> l | None -> 8.0 *. n);
  List.iter
    (fun (s, count) ->
      let len = String.length s in
      if len = 0 then invalid_arg "Pst.of_substrings: empty substring";
      let rec walk node i =
        if i = len - 1 then begin
          let child =
            match find_child node s.[i] with
            | Some child -> child
            | None ->
              let child = new_node () in
              node.children <- (s.[i], child) :: node.children;
              t.n_nodes <- t.n_nodes + 1;
              child
          in
          child.count <- count
        end
        else
          match find_child node s.[i] with
          | Some child -> walk child (i + 1)
          | None ->
            (* prefix missing: create it with a zero count; a later entry
               for the prefix will overwrite it *)
            let child = new_node () in
            node.children <- (s.[i], child) :: node.children;
            t.n_nodes <- t.n_nodes + 1;
            walk child (i + 1)
      in
      walk t.root 0)
    entries;
  (* children were prepended, so each sibling list is in reverse
     insertion order; restore it so [iter_substrings] replays the input
     order and an encode/decode round trip is byte-identical *)
  let rec restore node =
    node.children <- List.rev node.children;
    List.iter (fun (_, child) -> restore child) node.children
  in
  restore t.root;
  t.n <- n;
  t

let total_len t = t.total_len

let max_depth t = t.max_depth
