open Xc_twig
module Synopsis = Xc_core.Synopsis

type dataset = {
  name : string;
  doc : Xc_xml.Document.t;
  reference : Synopsis.Builder.t;
  workload : Workload.entry list;
  sanity : float;
  value_paths : Xc_xml.Label.t list list;
  min_extent : int;
  value_min_extent : int;
}

(* All experiment scoring goes through the compiled pipeline: one plan
   cache per synopsis, created at partial application, so the thousands
   of workload estimates behind each figure share compiled plans and
   memoized reach expansions. Estimates are bit-identical to
   Estimate.selectivity (see Plan). *)
let estimator syn =
  let cache = Xc_core.Plan.Cache.create syn in
  fun query -> Xc_core.Plan.Cache.estimate cache query

let estimator_uncached syn query = Xc_core.Estimate.selectivity syn query

(* The positive workload as a query array, in workload order — the
   shape Plan.Batch serves (and the serve bench shards). *)
let workload_queries ds =
  Array.of_list (List.map (fun e -> e.Workload.query) ds.workload)

type dataset_cfg = {
  cfg_value_paths : Xc_xml.Label.t list list;
  cfg_min_extent : int;
  cfg_value_min_extent : int;
}

let path tags = List.map Xc_xml.Label.of_string tags

(* The paper designates summary paths ("at least one path for each
   different type of values, for a total of 7 paths for IMDB and 9 for
   XMark"); these are our equivalents. *)
let imdb_cfg =
  { cfg_min_extent = 4;
    cfg_value_min_extent = 400;
    cfg_value_paths =
      [ path [ "imdb"; "movie"; "title" ];
        path [ "imdb"; "movie"; "year" ];
        path [ "imdb"; "movie"; "genre" ];
        path [ "imdb"; "movie"; "plot" ];
        path [ "imdb"; "movie"; "cast"; "actor"; "name" ];
        path [ "imdb"; "movie"; "cast"; "actor"; "year" ];
        path [ "imdb"; "movie"; "director"; "name" ] ] }

let xmark_cfg =
  let regions = [ "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" ] in
  { cfg_min_extent = 6;
    cfg_value_min_extent = 300;
    cfg_value_paths =
      List.map (fun r -> path [ "site"; "regions"; r; "item"; "location" ]) regions
      @ List.map (fun r -> path [ "site"; "regions"; r; "item"; "quantity" ]) regions
      @ List.map
          (fun r -> path [ "site"; "regions"; r; "item"; "description"; "text" ])
          regions
      @ [ path [ "site"; "people"; "person"; "name" ];
          path [ "site"; "people"; "person"; "profile"; "age" ];
          path [ "site"; "open_auctions"; "open_auction"; "initial" ];
          path [ "site"; "open_auctions"; "open_auction"; "annotation" ];
          path [ "site"; "closed_auctions"; "closed_auction"; "price" ];
          path [ "site"; "closed_auctions"; "closed_auction"; "annotation" ] ] }

let make_dataset name cfg doc n_queries =
  let reference =
    Xc_core.Reference.build ~min_extent:cfg.cfg_min_extent
      ~value_min_extent:cfg.cfg_value_min_extent ~value_paths:cfg.cfg_value_paths doc
  in
  let spec =
    { Workload.default_spec with n_queries; value_paths = Some cfg.cfg_value_paths }
  in
  let workload = Workload.generate ~spec doc in
  { name; doc; reference; workload;
    sanity = Workload.sanity_bound workload;
    value_paths = cfg.cfg_value_paths;
    min_extent = cfg.cfg_min_extent;
    value_min_extent = cfg.cfg_value_min_extent }

let imdb ?(scale = 1.0) ?(n_queries = 400) () =
  let n_movies = max 20 (int_of_float (scale *. 8000.0)) in
  make_dataset "IMDB" imdb_cfg (Xc_data.Imdb.generate ~n_movies ()) n_queries

let xmark ?(scale = 1.0) ?(n_queries = 400) () =
  make_dataset "XMark" xmark_cfg (Xc_data.Xmark.generate ~scale ()) n_queries

let dblp_cfg =
  { cfg_min_extent = 6;
    cfg_value_min_extent = 250;
    cfg_value_paths =
      [ path [ "dblp"; "author"; "name" ];
        path [ "dblp"; "author"; "paper"; "year" ];
        path [ "dblp"; "author"; "paper"; "title" ];
        path [ "dblp"; "author"; "paper"; "abstract" ];
        path [ "dblp"; "author"; "paper"; "keywords" ];
        path [ "dblp"; "author"; "book"; "year" ];
        path [ "dblp"; "author"; "book"; "publisher" ] ] }

let dblp ?(scale = 1.0) ?(n_queries = 400) () =
  let n_authors = max 20 (int_of_float (scale *. 4000.0)) in
  make_dataset "DBLP" dblp_cfg (Xc_data.Dblp.generate ~n_authors ()) n_queries

(* ---- Table 1 / Table 2 ---------------------------------------------- *)

type table1_row = {
  ds : string;
  file_mb : float;
  n_elements : int;
  ref_kb : float;
  value_nodes : int;
  total_nodes : int;
}

let table1 ds =
  let bytes = Xc_xml.Writer.serialized_size ds.doc in
  let ref_bytes =
    Synopsis.Builder.structural_bytes ds.reference
    + Synopsis.Builder.value_bytes ds.reference
  in
  { ds = ds.name;
    file_mb = float_of_int bytes /. (1024.0 *. 1024.0);
    n_elements = Xc_xml.Document.n_elements ds.doc;
    ref_kb = float_of_int ref_bytes /. 1024.0;
    value_nodes = Synopsis.Builder.n_value_nodes ds.reference;
    total_nodes = Synopsis.Builder.n_nodes ds.reference }

type table2_row = {
  ds2 : string;
  avg_struct : float;
  avg_pred : float;
}

let table2 ds =
  let struct_counts, pred_counts =
    List.partition_map
      (fun e ->
        if e.Workload.cls = Twig_query.Cstruct then Left e.Workload.true_count
        else Right e.Workload.true_count)
      ds.workload
  in
  { ds2 = ds.name;
    avg_struct = Error_metric.mean struct_counts;
    avg_pred = Error_metric.mean pred_counts }

(* ---- Figure 8: error vs structural budget ---------------------------- *)

type sweep_point = {
  bstr_kb : int;
  total_kb : int;
  overall_err : float;
  class_errs : (Twig_query.query_class * float) list;
}

let default_budgets = [ 0; 5; 10; 15; 20; 25; 30; 35; 40; 45; 50 ]

let measure ds bstr_kb bval_kb syn =
  let scored = Error_metric.score (estimator syn) ds.workload in
  { bstr_kb;
    total_kb = bstr_kb + bval_kb;
    overall_err = Error_metric.overall_relative ~sanity:ds.sanity scored;
    class_errs = Error_metric.per_class_relative ~sanity:ds.sanity scored }

let fig8 ?(budgets_kb = default_budgets) ?(bval_kb = 150) ds =
  let snapshots = Xc_core.Build.sweep ~bval_kb ~bstr_kbs:budgets_kb ds.reference in
  List.map (fun (kb, syn) -> measure ds kb bval_kb syn) snapshots

(* ---- Figure 9: low-count absolute error ------------------------------ *)

let build_at ds ~bstr_kb ~bval_kb =
  Xc_core.Build.run (Xc_core.Build.params ~bstr_kb ~bval_kb ()) ds.reference

let fig9 ?(bstr_kb = 50) ?(bval_kb = 150) ds =
  let syn = build_at ds ~bstr_kb ~bval_kb in
  let scored = Error_metric.score (estimator syn) ds.workload in
  Error_metric.low_count_absolute ~sanity:ds.sanity scored

(* ---- negative workloads ---------------------------------------------- *)

let negative_check ?(bstr_kb = 20) ?(bval_kb = 150) ?(n = 100) ds =
  let syn = build_at ds ~bstr_kb ~bval_kb in
  let negatives = Workload.negative ~n ~value_paths:ds.value_paths ds.doc in
  let est = estimator syn in
  Error_metric.mean (List.map (fun e -> est e.Workload.query) negatives)

(* ---- ablations -------------------------------------------------------- *)

let structural_error ds syn =
  let scored =
    Error_metric.score (estimator syn)
      (List.filter (fun e -> e.Workload.cls = Twig_query.Cstruct) ds.workload)
  in
  Error_metric.overall_relative ~sanity:ds.sanity scored

let ablation_delta ?(budgets_kb = [ 5; 10; 20; 40 ]) ?(bval_kb = 150) ds =
  let with_pool structural_only =
    let pool = { Xc_core.Pool.default_config with structural_only } in
    Xc_core.Build.sweep ~pool ~bval_kb ~bstr_kbs:budgets_kb ds.reference
  in
  let full = with_pool false and struct_only = with_pool true in
  List.map2
    (fun (kb, syn_full) (_, syn_struct) ->
      (kb, structural_error ds syn_full, structural_error ds syn_struct))
    full struct_only

let text_error ds syn =
  let scored =
    Error_metric.score (estimator syn)
      (List.filter (fun e -> e.Workload.cls = Twig_query.Ctext) ds.workload)
  in
  Error_metric.overall_relative ~sanity:ds.sanity scored

let ablation_text ?(top_ks = [ 64; 256; 1024; 4096 ]) ds =
  let run top_terms =
    let detail = { Xc_core.Reference.default_detail with top_terms } in
    let reference =
      Xc_core.Reference.build ~detail ~min_extent:ds.min_extent
        ~value_min_extent:ds.value_min_extent ~value_paths:ds.value_paths ds.doc
    in
    let syn =
      Xc_core.Build.run (Xc_core.Build.params ~bstr_kb:20 ~bval_kb:150 ()) reference
    in
    text_error ds syn
  in
  let naive = run 0 in
  List.map (fun k -> (k, run k, naive)) top_ks

let ablation_numeric ?(budget_bytes = 256) ?(n_queries = 300) ds =
  (* collect every numeric value on designated paths *)
  let values = ref [] in
  Array.iter
    (fun node ->
      match node.Xc_xml.Node.value with
      | Xc_xml.Value.Numeric v -> values := v :: !values
      | _ -> ())
    ds.doc.Xc_xml.Document.nodes;
  let values = Array.of_list !values in
  if Array.length values = 0 then []
  else begin
    let vlo = Array.fold_left min values.(0) values in
    let vhi = Array.fold_left max values.(0) values in
    let rng = Xc_util.Rng.create 77 in
    let queries =
      List.init n_queries (fun _ ->
          let a = Xc_util.Rng.int_range rng vlo vhi in
          let b = Xc_util.Rng.int_range rng vlo vhi in
          (min a b, max a b))
    in
    let truth (l, h) =
      let c = Array.fold_left (fun acc v -> if l <= v && v <= h then acc + 1 else acc) 0 values in
      float_of_int c /. float_of_int (Array.length values)
    in
    let score estimate =
      Error_metric.mean
        (List.map
           (fun q ->
             let t = truth q in
             Float.abs (t -. estimate q) /. Float.max t 0.01)
           queries)
    in
    let n_buckets = budget_bytes / 8 in
    let hist_eqd = Xc_vsumm.Histogram.build ~n_buckets values in
    let hist_eqw = Xc_vsumm.Histogram.build_equiwidth ~n_buckets values in
    let hist_md = Xc_vsumm.Histogram.build_maxdiff ~n_buckets values in
    let wave = Xc_vsumm.Wavelet.build ~n_coeffs:n_buckets values in
    [ ("equi-depth", score (fun (l, h) -> Xc_vsumm.Histogram.range_fraction hist_eqd l h));
      ("equi-width", score (fun (l, h) -> Xc_vsumm.Histogram.range_fraction hist_eqw l h));
      ("maxdiff", score (fun (l, h) -> Xc_vsumm.Histogram.range_fraction hist_md l h));
      ("wavelet", score (fun (l, h) -> Xc_vsumm.Wavelet.range_fraction wave l h)) ]
  end

let auto_split_demo ?(total_kb = 200) ds =
  let sample syn =
    Error_metric.overall_relative ~sanity:ds.sanity
      (Error_metric.score (estimator syn) ds.workload)
  in
  let ratios = [ 0.0; 0.05; 0.1; 0.2; 0.33; 0.5 ] in
  let rows =
    List.map
      (fun ratio ->
        let bstr_kb = int_of_float (Float.round (ratio *. float_of_int total_kb)) in
        let bval_kb = total_kb - bstr_kb in
        let syn =
          Xc_core.Build.run (Xc_core.Build.params ~bstr_kb ~bval_kb ()) ds.reference
        in
        (bstr_kb, bval_kb, sample syn))
      ratios
  in
  rows
