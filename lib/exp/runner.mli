(** Experiment driver reproducing the paper's evaluation (Sec. 6).

    A {!dataset} bundles a generated document, its reference synopsis,
    and a positive workload; the experiment functions then regenerate
    each table/figure of the paper:

    - {!table1}: data set characteristics,
    - {!table2}: workload characteristics,
    - {!fig8}: average relative error vs structural budget
      (series Overall / Numeric / String / Text / Struct),
    - {!fig9}: average absolute error of low-count queries,
    - {!negative_check}: the paper's negative-workload remark,
    - {!ablation_delta} / {!ablation_text}: DESIGN.md A1 and A2.

    [scale] shrinks the default document populations for quick runs
    (1.0 reproduces the paper's ≈200k-element scale). *)

type dataset = {
  name : string;
  doc : Xc_xml.Document.t;
  reference : Xc_core.Synopsis.Builder.t;
      (** still mutable: sweeps and ablations re-compress it under
          different budgets ({!Xc_core.Build} copies before mutating) *)
  workload : Xc_twig.Workload.entry list;
  sanity : float;
  value_paths : Xc_xml.Label.t list list;
      (** the designated summary paths (7 for IMDB, 9 groups for XMark) *)
  min_extent : int;
  value_min_extent : int;
}

val imdb : ?scale:float -> ?n_queries:int -> unit -> dataset
val xmark : ?scale:float -> ?n_queries:int -> unit -> dataset

val dblp : ?scale:float -> ?n_queries:int -> unit -> dataset
(** A third data set beyond the paper's two: the bibliographic domain of
    the paper's running example (Figure 1 / the intro query). Used by
    the extra [fig8c] bench target. *)

type table1_row = {
  ds : string;
  file_mb : float;
  n_elements : int;
  ref_kb : float;
  value_nodes : int;
  total_nodes : int;
}

val table1 : dataset -> table1_row

type table2_row = {
  ds2 : string;
  avg_struct : float;  (** avg true result size, structural queries *)
  avg_pred : float;    (** avg true result size, predicate queries *)
}

val table2 : dataset -> table2_row

type sweep_point = {
  bstr_kb : int;
  total_kb : int;      (** bstr + bval, the paper's x axis *)
  overall_err : float;
  class_errs : (Xc_twig.Twig_query.query_class * float) list;
}

val fig8 : ?budgets_kb:int list -> ?bval_kb:int -> dataset -> sweep_point list
(** Default budgets 0,5,...,50 KB structural with 150KB value budget
    (the paper's sweep). Synopses share the greedy merge prefix. *)

val fig9 : ?bstr_kb:int -> ?bval_kb:int -> dataset ->
  (Xc_twig.Twig_query.query_class * float * float) list
(** Low-count absolute errors at the paper's 200KB point
    (per class: avg absolute error, avg true count). *)

val negative_check : ?bstr_kb:int -> ?bval_kb:int -> ?n:int -> dataset -> float
(** Average estimate over a zero-selectivity workload (the paper reports
    "close to zero for all budgets"). *)

val ablation_delta : ?budgets_kb:int list -> ?bval_kb:int -> dataset ->
  (int * float * float) list
(** Per structural budget: structural-query error with the full
    structure-value Δ vs with the structure-only (TREESKETCH-style) Δ. *)

val ablation_text : ?top_ks:int list -> dataset ->
  (int * float * float) list
(** Per reference [top_k]: TEXT-query error with end-biased term
    histograms vs a naive all-in-one-bucket summary (top_k = 0),
    at a fixed budget. Returns (top_k, end-biased error, naive error
    baseline repeated). *)

val estimator : Xc_core.Synopsis.Sealed.t -> Xc_twig.Twig_query.t -> float
(** The compiled estimation pipeline: partial application
    [estimator syn] allocates a {!Xc_core.Plan.Cache} for the synopsis,
    and the returned closure estimates through it, sharing plans and
    memoized reach expansions across queries. Floats are identical to
    {!Xc_core.Estimate.selectivity}. *)

val estimator_uncached : Xc_core.Synopsis.Sealed.t -> Xc_twig.Twig_query.t -> float
(** The direct {!Xc_core.Estimate.selectivity} path, kept as the
    baseline the pipeline is validated and benchmarked against. *)

val workload_queries : dataset -> Xc_twig.Twig_query.t array
(** The positive workload as a query array (workload order) — the shape
    {!Xc_core.Plan.Batch} serves. *)

val ablation_numeric : ?budget_bytes:int -> ?n_queries:int -> dataset ->
  (string * float) list
(** DESIGN.md A4: equi-depth vs MaxDiff vs equi-width histograms vs Haar
    wavelets, each given the same byte budget (default 256B), scored by
    average relative error on random range queries over the dataset's
    numeric values. Standalone summary comparison (the synopsis pipeline
    itself uses equi-depth, like the paper's prototype). *)

val auto_split_demo : ?total_kb:int -> dataset -> (int * int * float) list
(** The Sec. 4.3 future-work experiment: for each candidate Bstr/Bval
    split of a unified budget (default 200KB total), the workload error —
    with the winner found by {!Xc_core.Build.auto_split} listed by its
    actual budgets. Rows are (bstr_kb, bval_kb, overall error). *)
