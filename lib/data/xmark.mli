(** Synthetic XMark-like auction site (DESIGN.md substitution for the
    XMark benchmark generator).

    Reimplements the structural core of the XMark [site] schema:
    regions with items (including the {e recursive}
    [description/parlist/listitem] structure, which makes the synopsis
    graph cyclic after merges), categories, people with richly optional
    profiles, and open/closed auctions with variable bidder lists.
    NUMERIC values: prices, quantities, increases, ages; STRING:
    names, cities, dates, payment kinds; TEXT: descriptions,
    annotations, mail bodies.

    Compared to the IMDB generator this document is structurally much
    richer (more tags, deeper optionality), so its reference synopsis is
    several times larger — matching the paper's Table 1 contrast
    (16,446 XMark reference nodes vs 3,800 for IMDB). *)

val generate : ?seed:int -> ?scale:float -> unit -> Xc_xml.Document.t
(** [scale] multiplies all entity populations; the default 1.0 yields
    ≈ 210k elements, the scale of the paper's 10MB XMark document. *)

val value_typing : (string * Xc_xml.Value.vtype) list
(** Tag → value-type table for round-tripping through XML text. *)

(** {2 Auction update stream}

    The canonical mutation workload for incremental synopsis
    maintenance ([Xc_core.Update]): auctions open (a fresh
    [open_auction] subtree appears under [site/open_auctions]) and
    close (a live [open_auction] disappears and a [closed_auction]
    appears under [site/closed_auctions]). *)

type update =
  | Open of Xc_xml.Node.t  (** a fresh auction to insert *)
  | Close of { opened : Xc_xml.Node.t; closed : Xc_xml.Node.t }
      (** [opened] is a {e physical} child of the document's
          [site/open_auctions] to delete; [closed] is the fresh
          [closed_auction] subtree replacing it *)

val update_stream :
  ?seed:int -> n_open:int -> n_close:int -> Xc_xml.Document.t -> update list
(** Deterministic stream of [n_open] opens followed by [n_close]
    closes against the given XMark document: opens are fresh subtrees
    from the same generator distributions; closes pick distinct live
    auctions. [n_close] is clamped to the number of live auctions.
    @raise Invalid_argument if the document is not an XMark site. *)

val apply_stream : Xc_xml.Document.t -> update list -> Xc_xml.Document.t
(** The ground truth the synopsis-side [Xc_core.Update] is measured
    against: the mutated document itself, built from a deep copy (the
    input document and the stream stay untouched). *)
