open Xc_xml
module Rng = Xc_util.Rng

let value_typing =
  [ ("location", Value.Tstring); ("quantity", Value.Tnumeric);
    ("name", Value.Tstring); ("payment", Value.Tstring);
    ("shipping", Value.Tstring); ("text", Value.Ttext);
    ("emailaddress", Value.Tstring); ("phone", Value.Tstring);
    ("street", Value.Tstring); ("city", Value.Tstring);
    ("country", Value.Tstring); ("zipcode", Value.Tnumeric);
    ("homepage", Value.Tstring); ("creditcard", Value.Tstring);
    ("education", Value.Tstring); ("gender", Value.Tstring);
    ("business", Value.Tstring); ("age", Value.Tnumeric);
    ("initial", Value.Tnumeric); ("reserve", Value.Tnumeric);
    ("current", Value.Tnumeric); ("increase", Value.Tnumeric);
    ("privacy", Value.Tstring); ("type", Value.Tstring);
    ("price", Value.Tnumeric); ("date", Value.Tstring);
    ("time", Value.Tstring); ("from", Value.Tstring); ("to", Value.Tstring);
    ("annotation", Value.Ttext); ("start", Value.Tstring);
    ("end", Value.Tstring) ]

let regions = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

(* Same-tag, different-path value distributions (DESIGN.md): locations
   are biased to a per-region slice of the country pool, dates under
   bidders / mails / closed auctions cover different year ranges, names
   under items / categories / persons come from different pools, and
   quantities differ between items and auctions. *)

let region_location rng ~region_idx =
  let n = Array.length Names.countries in
  let slice = n / 3 in
  let base = region_idx * 4 mod (n - slice) in
  Names.countries.(base + Rng.int rng slice)

let date_in rng lo hi =
  Printf.sprintf "%02d/%02d/%04d" (1 + Rng.int rng 28) (1 + Rng.int rng 12)
    (lo + Rng.int rng (hi - lo + 1))

let slice_pick rng pool lo hi =
  let n = Array.length pool in
  let lo = min (n - 1) lo and hi = min n hi in
  pool.(lo + Rng.int rng (max 1 (hi - lo)))

let item_name rng =
  String.concat " "
    (List.init (1 + Rng.int rng 3) (fun _ -> slice_pick rng Names.title_words 0 25))

let category_name rng =
  String.concat " "
    (List.init (1 + Rng.int rng 2) (fun _ -> slice_pick rng Names.title_words 25 50))

(* recursive parlist/listitem description: XMark's signature structure *)
let rec description corpus rng ~topic depth =
  if depth >= 2 || Rng.chance rng 0.7 then
    Node.make "description"
      ~children:
        [ Node.leaf "text" (Text_corpus.text_value corpus rng ~topic ~n:(10 + Rng.int rng 20)) ]
  else
    Node.make "description" ~children:[ parlist corpus rng ~topic (depth + 1) ]

and parlist corpus rng ~topic depth =
  let n = 1 + Rng.int rng 3 in
  Node.make "parlist"
    ~children:(List.init n (fun _ -> listitem corpus rng ~topic depth))

and listitem corpus rng ~topic depth =
  if depth >= 2 || Rng.chance rng 0.7 then
    Node.make "listitem"
      ~children:
        [ Node.leaf "text" (Text_corpus.text_value corpus rng ~topic ~n:(6 + Rng.int rng 10)) ]
  else Node.make "listitem" ~children:[ parlist corpus rng ~topic (depth + 1) ]

let mail corpus rng ~topic =
  Node.make "mail"
    ~children:
      [ Node.leaf "from" (Value.Str (Names.person_name rng));
        Node.leaf "to" (Value.Str (Names.person_name rng));
        Node.leaf "date" (Value.Str (date_in rng 1998 2001));
        Node.leaf "text" (Text_corpus.text_value corpus rng ~topic ~n:(8 + Rng.int rng 16)) ]

let item corpus rng ~region_idx =
  let topic = region_idx in
  let children = ref [] in
  let add node = children := node :: !children in
  add (Node.leaf "location" (Value.Str (region_location rng ~region_idx)));
  add (Node.leaf "quantity" (Value.Numeric (1 + Rng.int rng 10)));
  add (Node.leaf "name" (Value.Str (item_name rng)));
  add (Node.leaf "payment" (Value.Str (Rng.pick rng Names.payment_kinds)));
  add (description corpus rng ~topic 0);
  add (Node.leaf "shipping" (Value.Str "Will ship internationally"));
  let n_cat = 1 + Rng.int rng 3 in
  for _ = 1 to n_cat do
    add (Node.make "incategory")
  done;
  if Rng.chance rng 0.25 then begin
    let n_mail = 1 + Rng.int rng 3 in
    add
      (Node.make "mailbox"
         ~children:(List.init n_mail (fun _ -> mail corpus rng ~topic)))
  end;
  Node.make ~children:(List.rev !children) "item"

let person corpus rng =
  let children = ref [] in
  let add node = children := node :: !children in
  add (Node.leaf "name" (Value.Str (Names.person_name rng)));
  add (Node.leaf "emailaddress" (Value.Str (Names.email rng)));
  if Rng.chance rng 0.5 then add (Node.leaf "phone" (Value.Str (Names.phone rng)));
  if Rng.chance rng 0.6 then
    add
      (Node.make "address"
         ~children:
           [ Node.leaf "street" (Value.Str (Rng.pick rng Names.streets));
             Node.leaf "city" (Value.Str (Rng.pick rng Names.cities));
             Node.leaf "country" (Value.Str (Rng.pick rng Names.countries));
             Node.leaf "zipcode" (Value.Numeric (10_000 + Rng.int rng 89_999)) ]);
  if Rng.chance rng 0.3 then add (Node.leaf "homepage" (Value.Str (Names.url rng)));
  if Rng.chance rng 0.4 then
    add (Node.leaf "creditcard" (Value.Str (Names.credit_card rng)));
  if Rng.chance rng 0.7 then begin
    let profile = ref [] in
    let padd node = profile := node :: !profile in
    let n_interests = Rng.int rng 4 in
    for _ = 1 to n_interests do
      padd (Node.make "interest")
    done;
    if Rng.chance rng 0.6 then
      padd (Node.leaf "education" (Value.Str (Rng.pick rng Names.education_levels)));
    if Rng.chance rng 0.8 then
      padd (Node.leaf "gender" (Value.Str (if Rng.bool rng then "male" else "female")));
    padd (Node.leaf "business" (Value.Str (if Rng.bool rng then "Yes" else "No")));
    (* age: bimodal and correlated with having a homepage *)
    if Rng.chance rng 0.7 then begin
      let age = if Rng.chance rng 0.6 then 18 + Rng.int rng 22 else 45 + Rng.int rng 40 in
      padd (Node.leaf "age" (Value.Numeric age))
    end;
    add (Node.make ~children:(List.rev !profile) "profile")
  end;
  if Rng.chance rng 0.4 then begin
    let n_watch = 1 + Rng.int rng 3 in
    add
      (Node.make "watches"
         ~children:(List.init n_watch (fun _ -> Node.make "watch")))
  end;
  ignore corpus;
  Node.make ~children:(List.rev !children) "person"

let bidder rng =
  Node.make "bidder"
    ~children:
      [ Node.leaf "date" (Value.Str (date_in rng 2003 2005));
        Node.leaf "time" (Value.Str (Names.time_string rng));
        Node.make "personref";
        Node.leaf "increase" (Value.Numeric (3 * (1 + Rng.int rng 20))) ]

let open_auction corpus rng =
  let topic = 6 + Rng.int rng 4 in
  let initial = 5 + Rng.int rng 200 in
  let n_bidders = Rng.int rng 8 in
  let current = initial + (n_bidders * (5 + Rng.int rng 20)) in
  let children = ref [] in
  let add node = children := node :: !children in
  add (Node.leaf "initial" (Value.Numeric initial));
  if Rng.chance rng 0.5 then
    add (Node.leaf "reserve" (Value.Numeric (initial + 10 + Rng.int rng 100)));
  for _ = 1 to n_bidders do
    add (bidder rng)
  done;
  add (Node.leaf "current" (Value.Numeric current));
  if Rng.chance rng 0.3 then add (Node.leaf "privacy" (Value.Str "Yes"));
  add (Node.make "itemref");
  add (Node.make "seller");
  add
    (Node.leaf "annotation" (Text_corpus.text_value corpus rng ~topic ~n:(8 + Rng.int rng 12)));
  add (Node.leaf "quantity" (Value.Numeric (1 + Rng.int rng 3)));
  add (Node.leaf "type" (Value.Str (Rng.pick rng Names.auction_types)));
  add
    (Node.make "interval"
       ~children:
         [ Node.leaf "start" (Value.Str (date_in rng 2004 2005));
           Node.leaf "end" (Value.Str (date_in rng 2005 2006)) ]);
  Node.make ~children:(List.rev !children) "open_auction"

let closed_auction corpus rng =
  let topic = 10 + Rng.int rng 4 in
  Node.make "closed_auction"
    ~children:
      [ Node.make "seller";
        Node.make "buyer";
        Node.make "itemref";
        Node.leaf "price" (Value.Numeric (10 + Rng.int rng 500));
        Node.leaf "date" (Value.Str (date_in rng 2000 2003));
        Node.leaf "quantity" (Value.Numeric (1 + Rng.int rng 2));
        Node.leaf "type" (Value.Str (Rng.pick rng Names.auction_types));
        Node.leaf "annotation"
          (Text_corpus.text_value corpus rng ~topic ~n:(6 + Rng.int rng 10)) ]

let category corpus rng =
  let topic = 14 + Rng.int rng 2 in
  Node.make "category"
    ~children:
      [ Node.leaf "name" (Value.Str (category_name rng));
        description corpus rng ~topic 0 ]

(* ---- update stream ---------------------------------------------------- *)

type update =
  | Open of Node.t
  | Close of { opened : Node.t; closed : Node.t }

let site_container doc name =
  let root = doc.Document.root in
  if Label.to_string root.Node.label <> "site" then
    invalid_arg "Xmark.update_stream: document root is not <site>";
  match
    Array.find_opt
      (fun c -> Label.to_string c.Node.label = name)
      root.Node.children
  with
  | Some c -> c
  | None -> invalid_arg ("Xmark.update_stream: site has no <" ^ name ^ ">")

let update_stream ?(seed = 2002) ~n_open ~n_close doc =
  let rng = Rng.create (seed lxor 0x0a5eed) in
  let corpus = Text_corpus.create ~vocab_size:2400 ~n_topics:16 (Rng.split rng) in
  let opens = List.init n_open (fun _ -> Open (open_auction corpus rng)) in
  (* closes pick distinct live open auctions (the auction churn XMark's
     workload narrative describes): partial Fisher-Yates over the
     container's physical children *)
  let live = Array.copy (site_container doc "open_auctions").Node.children in
  let n_close = min n_close (Array.length live) in
  let closes =
    List.init n_close (fun i ->
        let j = i + Rng.int rng (Array.length live - i) in
        let picked = live.(j) in
        live.(j) <- live.(i);
        live.(i) <- picked;
        Close { opened = picked; closed = closed_auction corpus rng })
  in
  opens @ closes

let rec copy_node (n : Node.t) =
  { n with Node.children = Array.map copy_node n.Node.children; id = -1 }

let apply_stream doc updates =
  let opens = List.filter_map (function Open n -> Some n | _ -> None) updates in
  let closes =
    List.filter_map (function Close { opened; closed } -> Some (opened, closed) | _ -> None)
      updates
  in
  let removed = List.map fst closes in
  let root = doc.Document.root in
  let rewrite container =
    match Label.to_string container.Node.label with
    | "open_auctions" ->
      let kept =
        List.filter
          (fun n -> not (List.memq n removed))
          (Array.to_list container.Node.children)
      in
      Node.make_l container.Node.label ~children:(kept @ opens)
    | "closed_auctions" ->
      Node.make_l container.Node.label
        ~children:(Array.to_list container.Node.children @ List.map snd closes)
    | _ -> container
  in
  ignore (site_container doc "open_auctions");
  let site =
    Node.make_l root.Node.label
      ~children:(List.map rewrite (Array.to_list root.Node.children))
  in
  (* Document.create assigns preorder ids in place, so the mutated
     document is built from a deep copy — the input document and the
     stream's subtrees stay untouched and reusable *)
  Document.create (copy_node site)

let generate ?(seed = 2002) ?(scale = 1.0) () =
  let rng = Rng.create seed in
  let corpus = Text_corpus.create ~vocab_size:2400 ~n_topics:16 (Rng.split rng) in
  let scaled base = max 1 (int_of_float (Float.round (scale *. float_of_int base))) in
  let region region_idx name =
    let n_items = scaled 600 in
    Node.make name ~children:(List.init n_items (fun _ -> item corpus rng ~region_idx))
  in
  let site =
    Node.make "site"
      ~children:
        [ Node.make "regions"
            ~children:(Array.to_list (Array.mapi region regions));
          Node.make "categories"
            ~children:(List.init (scaled 180) (fun _ -> category corpus rng));
          Node.make "people"
            ~children:(List.init (scaled 4400) (fun _ -> person corpus rng));
          Node.make "open_auctions"
            ~children:(List.init (scaled 2100) (fun _ -> open_auction corpus rng));
          Node.make "closed_auctions"
            ~children:(List.init (scaled 1800) (fun _ -> closed_auction corpus rng)) ]
  in
  Document.create site
