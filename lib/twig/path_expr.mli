(** XPath-style linear path expressions labelling twig-query edges.

    The paper's query model supports the child and descendant axes and
    wildcards (Sec. 2); a path expression is a non-empty sequence of
    steps, e.g. [//paper/title] or [/regions//item/*]. *)

type test =
  | Tag of Xc_xml.Label.t
  | Wildcard

type axis =
  | Child       (** [/]  — one containment edge *)
  | Descendant  (** [//] — one or more containment edges *)

type step = {
  axis : axis;
  test : test;
}

type t = step list
(** Non-empty list; evaluated left to right from the context element. *)

val child : string -> step
val desc : string -> step
val child_any : step
val desc_any : step

val of_steps : step list -> t
(** @raise Invalid_argument on the empty list. *)

val length : t -> int
val matches_test : test -> Xc_xml.Label.t -> bool
val equal : t -> t -> bool

type id = int
(** A hash-consed expression identity: dense, process-stable, equal ids
    iff equal expressions. Serving-side tables (the batched estimation
    engine's transition-matrix registry) key on it, so hot paths hash
    ints instead of step lists. *)

val intern : t -> id
(** Idempotent: the same expression always gets the same id. The intern
    table is global and mutex-guarded (safe to call from any domain;
    intended for compile phases, not per-estimate loops). *)

val of_id : id -> t
(** The expression behind an id. @raise Invalid_argument on an id no
    {!intern} call returned. *)

val interned_count : unit -> int
(** Distinct expressions interned so far. *)

val pp : Format.formatter -> t -> unit
(** Renders in XPath syntax, e.g. [//paper/title]. *)
