type test =
  | Tag of Xc_xml.Label.t
  | Wildcard

type axis =
  | Child
  | Descendant

type step = {
  axis : axis;
  test : test;
}

type t = step list

let child tag = { axis = Child; test = Tag (Xc_xml.Label.of_string tag) }
let desc tag = { axis = Descendant; test = Tag (Xc_xml.Label.of_string tag) }
let child_any = { axis = Child; test = Wildcard }
let desc_any = { axis = Descendant; test = Wildcard }

let of_steps = function
  | [] -> invalid_arg "Path_expr.of_steps: empty expression"
  | steps -> steps

let length = List.length

let matches_test test label =
  match test with
  | Wildcard -> true
  | Tag l -> Xc_xml.Label.equal l label

let test_equal a b =
  match a, b with
  | Wildcard, Wildcard -> true
  | Tag x, Tag y -> Xc_xml.Label.equal x y
  | (Wildcard | Tag _), _ -> false

let equal a b =
  List.length a = List.length b
  && List.for_all2 (fun s1 s2 -> s1.axis = s2.axis && test_equal s1.test s2.test) a b

(* ---- interning --------------------------------------------------------
   Hash-consing of whole expressions into dense int ids. Serving-side
   tables (Plan.Batch's matrix registry) key on the id, so the per-
   estimate hot path never hashes a step list structurally — the one
   structural hash happens here, once per distinct expression. The
   table is global and append-only like Label's: ids are stable for the
   lifetime of the process. Guarded by a mutex so compile phases running
   in different domains cannot tear the table; lookups from the
   estimation hot loops never come here. *)

type id = int

let intern_mutex = Mutex.create ()
let intern_ids : (t, int) Hashtbl.t = Hashtbl.create 64
let intern_exprs : t array ref = ref (Array.make 64 [])
let intern_count = ref 0

let intern expr =
  Mutex.lock intern_mutex;
  let id =
    match Hashtbl.find_opt intern_ids expr with
    | Some id -> id
    | None ->
      let id = !intern_count in
      let cap = Array.length !intern_exprs in
      if id = cap then begin
        let grown = Array.make (2 * cap) [] in
        Array.blit !intern_exprs 0 grown 0 cap;
        intern_exprs := grown
      end;
      !intern_exprs.(id) <- expr;
      Hashtbl.add intern_ids expr id;
      incr intern_count;
      id
  in
  Mutex.unlock intern_mutex;
  id

let of_id id =
  Mutex.lock intern_mutex;
  let r =
    if id >= 0 && id < !intern_count then Some !intern_exprs.(id) else None
  in
  Mutex.unlock intern_mutex;
  match r with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Path_expr.of_id: unknown id %d" id)

let interned_count () =
  Mutex.lock intern_mutex;
  let n = !intern_count in
  Mutex.unlock intern_mutex;
  n

let pp ppf steps =
  List.iter
    (fun step ->
      Format.pp_print_string ppf (match step.axis with Child -> "/" | Descendant -> "//");
      match step.test with
      | Wildcard -> Format.pp_print_char ppf '*'
      | Tag l -> Xc_xml.Label.pp ppf l)
    steps
