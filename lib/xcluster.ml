module Synopsis = Xc_core.Synopsis
module Plan = Xc_core.Plan
module Metrics = Xc_util.Metrics

type document = Xc_xml.Document.t
type query = Xc_twig.Twig_query.t
type synopsis = Synopsis.t

type budget = Xc_core.Build.budget = {
  bstr : int;
  bval : int;
  pool : Xc_core.Pool.config;
}

(* ---- construction ----------------------------------------------------- *)

let budget = Xc_core.Build.budget
let reference = Xc_core.Reference.build
let compress b reference = Xc_core.Build.run b reference

let build ?budget:b ?min_extent ?value_min_extent ?value_paths doc =
  let b = match b with Some b -> b | None -> budget () in
  compress b (reference ?min_extent ?value_min_extent ?value_paths doc)

let auto_split = Xc_core.Build.auto_split

(* ---- estimation ------------------------------------------------------- *)

let parse_query = Xc_twig.Twig_parse.parse

(* One plan cache per synopsis, keyed by its process-unique uid. The
   table is bounded: synopses are long-lived in any serving scenario,
   but a workload that churns through thousands of short-lived synopses
   (e.g. budget sweeps) must not accumulate dead caches. *)
let max_caches = 64
let caches : (int, Plan.Cache.t) Hashtbl.t = Hashtbl.create 16

let cache_for syn =
  let uid = Synopsis.uid syn in
  match Hashtbl.find_opt caches uid with
  | Some c -> c
  | None ->
    if Hashtbl.length caches >= max_caches then Hashtbl.reset caches;
    let c = Plan.Cache.create syn in
    Hashtbl.add caches uid c;
    c

let estimate syn q = Plan.Cache.estimate (cache_for syn) q
let plan syn q = Plan.Cache.find_or_compile (cache_for syn) q
let estimate_with_plan = Plan.estimate
let estimate_uncached = Xc_core.Estimate.selectivity
let explain = Xc_core.Estimate.explain

(* ---- synopsis inspection --------------------------------------------- *)

let validate = Synopsis.validate
let pp_stats = Synopsis.pp_stats
let n_nodes = Synopsis.n_nodes
let n_edges = Synopsis.n_edges
let size_bytes syn = Synopsis.structural_bytes syn + Synopsis.value_bytes syn

let succ syn sid =
  let node = Synopsis.find syn sid in
  let acc = ref [] in
  Synopsis.succ syn node (fun child avg -> acc := (child, avg) :: !acc);
  List.sort (fun (a, _) (b, _) -> Int.compare a b) !acc

let pred syn sid =
  let node = Synopsis.find syn sid in
  let acc = ref [] in
  Synopsis.pred syn node (fun parent -> acc := parent :: !acc);
  List.sort Int.compare !acc

(* ---- persistence ------------------------------------------------------ *)

let save = Xc_core.Codec.save
let load = Xc_core.Codec.load

(* ---- metrics ---------------------------------------------------------- *)

let metrics_snapshot () = Metrics.snapshot Metrics.global
let metrics_json () = Metrics.to_json (metrics_snapshot ())
let metrics_reset () = Metrics.reset Metrics.global
