module Synopsis = Xc_core.Synopsis
module Plan = Xc_core.Plan
module Mx = Xc_util.Metrics
module Sealed = Synopsis.Sealed

type document = Xc_xml.Document.t
type query = Xc_twig.Twig_query.t
type builder = Synopsis.Builder.t
type synopsis = Sealed.t

type budget = Xc_core.Build.budget = {
  bstr : int;
  bval : int;
  pool : Xc_core.Pool.config;
}

module Build = struct
  let budget = Xc_core.Build.budget
  let reference = Xc_core.Reference.build
  let seal = Synopsis.freeze
  let compress b reference = Xc_core.Build.run b reference
  let compress_builder = Xc_core.Build.run_builder

  let run ?budget:b ?min_extent ?value_min_extent ?value_paths doc =
    let b = match b with Some b -> b | None -> budget () in
    compress b (reference ?min_extent ?value_min_extent ?value_paths doc)

  type mutation = Xc_core.Update.mutation =
    | Insert of { parent : Xc_xml.Label.t list; subtree : Xc_xml.Node.t }
    | Delete of { parent : Xc_xml.Label.t list; subtree : Xc_xml.Node.t }

  type update_stats = Xc_core.Update.stats = {
    applied : int;
    skipped : int;
    dirty : int;
    created : int;
    removed : int;
    repair_merges : int;
  }

  let update ?budget:b syn mutations =
    let b = match b with Some b -> b | None -> budget () in
    Xc_core.Update.apply ~budget:b syn mutations

  let update_and_seal ?budget:b syn mutations =
    let b = match b with Some b -> b | None -> budget () in
    Xc_core.Update.apply_and_seal ~budget:b syn mutations

  let auto_split = Xc_core.Build.auto_split
  let builder_stats ppf b = Synopsis.Builder.pp_stats ppf b
  let validate_builder = Synopsis.Builder.validate
end

module Query = struct
  let parse = Xc_twig.Twig_parse.parse
  let estimate = Xc_serve.Engine.estimate
  let plan syn q = Plan.Cache.find_or_compile (Xc_serve.Engine.cache_for syn) q
  let estimate_with_plan = Plan.estimate
  let estimate_uncached = Xc_serve.Engine.estimate_uncached
  let explain = Xc_core.Estimate.explain

  let validate = Sealed.validate
  let pp_stats = Sealed.pp_stats
  let n_nodes = Sealed.n_nodes
  let n_edges = Sealed.n_edges
  let size_bytes syn = Sealed.structural_bytes syn + Sealed.value_bytes syn
  let succ = Sealed.succ
  let pred = Sealed.pred
end

module Store = struct
  type error = Xc_core.Codec.error

  let save = Xc_core.Codec.save

  let load ?eager path =
    match Xc_core.Codec.load ?eager path with
    | Ok _ as ok -> ok
    | Error _ as e ->
      Mx.incr Mx.global "serve.load_error";
      e

  let save_exn = Xc_core.Codec.save_exn
  let load_exn = Xc_core.Codec.load_exn
  let verify = Xc_core.Codec.verify
  let sections = Xc_core.Codec.sections
end

module Serve = struct
  module Error = Xc_serve.Error

  type error = Error.t

  type fallback = Xc_serve.Options.fallback = Degrade | Strict

  type options = Xc_serve.Options.t = {
    domains : int option;
    fallback : fallback;
    cohort : bool;
    max_batch : int;
    max_frame_bytes : int;
  }

  let options = Xc_serve.Options.make
  let default_options = Xc_serve.Options.default
  let estimate_batch = Xc_serve.Engine.estimate_batch
  let estimate_batch_exn = Xc_serve.Engine.estimate_batch_exn
  let batch_engine = Xc_serve.Engine.batch_for

  module Options = Xc_serve.Options
  module Protocol = Xc_serve.Protocol
  module Registry = Xc_serve.Registry
  module Daemon = Xc_serve.Daemon
  module Client = Xc_serve.Client
end

module Metrics = struct
  let snapshot () = Mx.snapshot Mx.global
  let json () = Mx.to_json (snapshot ())
  let reset () = Mx.reset Mx.global
end
