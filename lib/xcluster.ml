module Synopsis = Xc_core.Synopsis
module Plan = Xc_core.Plan
module Metrics = Xc_util.Metrics
module Sealed = Synopsis.Sealed

type document = Xc_xml.Document.t
type query = Xc_twig.Twig_query.t
type builder = Synopsis.Builder.t
type synopsis = Sealed.t

type budget = Xc_core.Build.budget = {
  bstr : int;
  bval : int;
  pool : Xc_core.Pool.config;
}

(* ---- construction ----------------------------------------------------- *)

let budget = Xc_core.Build.budget
let reference = Xc_core.Reference.build
let seal = Synopsis.freeze
let compress b reference = Xc_core.Build.run b reference

let build ?budget:b ?min_extent ?value_min_extent ?value_paths doc =
  let b = match b with Some b -> b | None -> budget () in
  compress b (reference ?min_extent ?value_min_extent ?value_paths doc)

let auto_split = Xc_core.Build.auto_split

(* ---- estimation ------------------------------------------------------- *)

let parse_query = Xc_twig.Twig_parse.parse

(* One plan cache per synopsis, keyed by its process-unique uid (a
   sealed synopsis never mutates, so a cache stays valid for the
   synopsis's whole lifetime). The table is bounded: synopses are
   long-lived in any serving scenario, but a workload that churns
   through thousands of short-lived synopses (e.g. budget sweeps) must
   not accumulate dead caches. *)
let max_caches = 64
let caches : (int, Plan.Cache.t) Hashtbl.t = Hashtbl.create 16

let cache_for syn =
  let uid = Sealed.uid syn in
  match Hashtbl.find_opt caches uid with
  | Some c -> c
  | None ->
    if Hashtbl.length caches >= max_caches then Hashtbl.reset caches;
    let c = Plan.Cache.create syn in
    Hashtbl.add caches uid c;
    c

let estimate_uncached = Xc_core.Estimate.selectivity

(* Serving never raises on a per-synopsis failure: if the compiled
   pipeline trips over a synopsis (decoded from a damaged store in a
   way validation does not model), the estimate falls back to the
   direct uncached path and the event is counted — the degraded answer
   is bit-identical, only slower. *)
let estimate syn q =
  match
    let c = cache_for syn in
    Plan.Cache.estimate_result c q
  with
  | Ok v -> v
  | Error _ | (exception _) ->
    Metrics.incr Metrics.global "serve.fallback";
    estimate_uncached syn q

let plan syn q = Plan.Cache.find_or_compile (cache_for syn) q

(* Batch engines follow the same bounded per-uid table discipline as
   plan caches; matrices are per-synopsis and never go stale. *)
let batch_engines : (int, Plan.Batch.t) Hashtbl.t = Hashtbl.create 16

let batch_for syn =
  let uid = Sealed.uid syn in
  match Hashtbl.find_opt batch_engines uid with
  | Some e -> e
  | None ->
    if Hashtbl.length batch_engines >= max_caches then Hashtbl.reset batch_engines;
    let e = Plan.Batch.create syn in
    Hashtbl.add batch_engines uid e;
    e

let estimate_batch ?domains syn queries =
  match
    let e = batch_for syn in
    Plan.Batch.run_result ?domains e queries
  with
  | Ok r -> r
  | Error _ | (exception _) ->
    Metrics.incr Metrics.global "serve.batch_fallback";
    Array.map (fun q -> estimate syn q) queries

let batch_engine = batch_for
let estimate_with_plan = Plan.estimate
let explain = Xc_core.Estimate.explain

(* ---- synopsis inspection --------------------------------------------- *)

let validate = Sealed.validate
let pp_stats = Sealed.pp_stats
let n_nodes = Sealed.n_nodes
let n_edges = Sealed.n_edges
let size_bytes syn = Sealed.structural_bytes syn + Sealed.value_bytes syn
let succ = Sealed.succ
let pred = Sealed.pred

let builder_stats ppf b = Synopsis.Builder.pp_stats ppf b
let validate_builder = Synopsis.Builder.validate

(* ---- persistence ------------------------------------------------------ *)

let save = Xc_core.Codec.save_exn
let load = Xc_core.Codec.load_exn
let save_result = Xc_core.Codec.save

let load_result path =
  match Xc_core.Codec.load path with
  | Ok _ as ok -> ok
  | Error _ as e ->
    Metrics.incr Metrics.global "serve.load_error";
    e

let verify_file = Xc_core.Codec.verify

(* ---- metrics ---------------------------------------------------------- *)

let metrics_snapshot () = Metrics.snapshot Metrics.global
let metrics_json () = Metrics.to_json (metrics_snapshot ())
let metrics_reset () = Metrics.reset Metrics.global
