(* Tests for the matrix-major cohort path: it must be bit-identical to
   both the uncached estimator and the query-major reference walk on
   every dataset, independent of the worker count, safe to run against
   alternating synopses on the same reused worker arenas, and correct
   in the degenerate case where every query lands in its own cohort. *)

module Synopsis = Xc_core.Synopsis
module S = Synopsis.Sealed
module Estimate = Xc_core.Estimate
module Plan = Xc_core.Plan
module Build = Xc_core.Build
module Runner = Xc_exp.Runner
module Metrics = Xc_util.Metrics

let check = Alcotest.check
let check0 msg = Alcotest.check (Alcotest.float 0.0) msg
let bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

let small_synopsis ds =
  Build.run (Build.budget ~bstr_kb:10 ~bval_kb:60 ()) ds.Runner.reference

(* ---- cohort = query-major = uncached, on every dataset ----------------- *)

let cohort_equivalence_on ds =
  let syn = small_synopsis ds in
  let engine = Plan.Batch.create syn in
  let queries = Runner.workload_queries ds in
  let prepared = Plan.Batch.prepare engine queries in
  let cohort = Plan.Batch.run_prepared ~domains:1 engine prepared in
  let reference = Plan.Batch.run_prepared ~domains:1 ~cohort:false engine prepared in
  Array.iteri
    (fun i q ->
      let uncached = Estimate.selectivity syn q in
      check0 "cohort = uncached" uncached cohort.(i);
      check Alcotest.bool "cohort = query-major, bitwise" true
        (bits_equal cohort.(i) reference.(i)))
    queries;
  let cohorts, max_cohort, distinct = Plan.Batch.cohort_stats prepared in
  check Alcotest.bool "has cohorts" true (cohorts >= 1);
  check Alcotest.bool "widest cohort sane" true
    (max_cohort >= 1 && max_cohort <= distinct);
  check Alcotest.bool "distinct bounded by input" true
    (distinct <= Array.length queries);
  check Alcotest.bool "cohorts bounded by distinct" true (cohorts <= distinct)

let test_cohort_imdb () = cohort_equivalence_on (Runner.imdb ~scale:0.02 ~n_queries:45 ())
let test_cohort_xmark () = cohort_equivalence_on (Runner.xmark ~scale:0.02 ~n_queries:45 ())
let test_cohort_dblp () = cohort_equivalence_on (Runner.dblp ~scale:0.02 ~n_queries:45 ())

(* ---- worker-count independence ----------------------------------------- *)

let test_cohort_domains_bitwise () =
  let n = 2 * Xc_util.Par.seq_cutoff in
  let ds = Runner.xmark ~scale:0.02 ~n_queries:n () in
  let syn = small_synopsis ds in
  let engine = Plan.Batch.create syn in
  let prepared = Plan.Batch.prepare engine (Runner.workload_queries ds) in
  let base = Plan.Batch.run_prepared ~domains:1 engine prepared in
  List.iter
    (fun d ->
      let r = Plan.Batch.run_prepared ~domains:d engine prepared in
      check Alcotest.int "same length" (Array.length base) (Array.length r);
      Array.iteri
        (fun i v ->
          check Alcotest.bool
            (Printf.sprintf "cohort bitwise identical at %d domains (query %d)" d i)
            true (bits_equal v base.(i)))
        r)
    [ 2; 4 ]

(* ---- arena reuse across generation swaps -------------------------------- *)

(* The per-worker arenas live in domain-local storage and are never
   zeroed, so serving alternating synopses (a generation swap: new
   synopsis, different node count and slot demand, same workers) must
   not let values written for one synopsis leak into estimates against
   the other. *)
let test_arena_generation_swap () =
  let ds = Runner.imdb ~scale:0.02 ~n_queries:40 () in
  let queries = Runner.workload_queries ds in
  let syn_a = Build.run (Build.budget ~bstr_kb:10 ~bval_kb:60 ()) ds.Runner.reference in
  let syn_b = Build.run (Build.budget ~bstr_kb:4 ~bval_kb:24 ()) ds.Runner.reference in
  let engine_a = Plan.Batch.create syn_a in
  let engine_b = Plan.Batch.create syn_b in
  let prep_a = Plan.Batch.prepare engine_a queries in
  let prep_b = Plan.Batch.prepare engine_b queries in
  let expect_a = Array.map (Estimate.selectivity syn_a) queries in
  let expect_b = Array.map (Estimate.selectivity syn_b) queries in
  (* A, then B, then A again — the second A pass runs on arenas the B
     pass just wrote *)
  List.iter
    (fun (engine, prep, expect, tag) ->
      let got = Plan.Batch.run_prepared ~domains:1 engine prep in
      Array.iteri
        (fun i v -> check0 (Printf.sprintf "pass %s query %d" tag i) expect.(i) v)
        got)
    [ (engine_a, prep_a, expect_a, "A1"); (engine_b, prep_b, expect_b, "B");
      (engine_a, prep_a, expect_a, "A2") ]

(* ---- degenerate cohorts: every query on its own matrix ------------------ *)

let test_singleton_cohorts () =
  let ds = Runner.imdb ~scale:0.02 ~n_queries:40 () in
  let syn = small_synopsis ds in
  let engine = Plan.Batch.create syn in
  (* single-edge queries over distinct root expressions: each groups by
     its own interned expression, so every cohort has size 1 *)
  let queries =
    Array.map Xc_twig.Twig_parse.parse
      [| "//movie"; "//movie/title"; "//movie/year"; "//actor"; "//actor/name";
         "//movie//actor"; "//director"; "//title" |]
  in
  let prepared = Plan.Batch.prepare engine queries in
  let cohorts, max_cohort, distinct = Plan.Batch.cohort_stats prepared in
  check Alcotest.int "one cohort per query" (Array.length queries) cohorts;
  check Alcotest.int "all cohorts singleton" 1 max_cohort;
  check Alcotest.int "no duplicates" (Array.length queries) distinct;
  let got = Plan.Batch.run_prepared ~domains:1 engine prepared in
  Array.iteri
    (fun i q ->
      check0 "singleton cohort = uncached" (Estimate.selectivity syn q) got.(i);
      (* the single-query entry point rides the same path *)
      check0 "Batch.estimate agrees" got.(i) (Plan.Batch.estimate engine q))
    queries

(* ---- dedup: repeated queries evaluate once ------------------------------ *)

let test_dedup () =
  let ds = Runner.imdb ~scale:0.02 ~n_queries:20 () in
  let syn = small_synopsis ds in
  let engine = Plan.Batch.create syn in
  let base = Runner.workload_queries ds in
  let queries = Array.append base base in
  let prepared = Plan.Batch.prepare engine queries in
  let _, _, distinct = Plan.Batch.cohort_stats prepared in
  check Alcotest.bool "duplicates collapse" true (distinct <= Array.length base);
  let got = Plan.Batch.run_prepared ~domains:1 engine prepared in
  Array.iteri
    (fun i q -> check0 "deduped batch = uncached" (Estimate.selectivity syn q) got.(i))
    queries

(* ---- blocked kernel under the row-length gate --------------------------- *)

let test_blocked_gated () =
  let ds = Runner.xmark ~scale:0.02 ~n_queries:45 () in
  let syn = small_synopsis ds in
  let engine = Plan.Batch.create syn in
  let prepared = Plan.Batch.prepare engine (Runner.workload_queries ds) in
  let base = Plan.Batch.run_prepared ~domains:1 engine prepared in
  List.iter
    (fun cohort ->
      let blocked = Plan.Batch.run_prepared ~domains:1 ~blocked:true ~cohort engine prepared in
      Array.iteri
        (fun i v ->
          let tol = 1e-9 *. Float.max 1.0 (Float.abs base.(i)) in
          check Alcotest.bool "blocked within float-reassociation tolerance" true
            (Float.abs (v -. base.(i)) <= tol))
        blocked)
    [ true; false ];
  check Alcotest.bool "gate threshold positive" true
    (Plan.Batch.blocked_min_mean_row > 0.0)

(* ---- instrumentation ---------------------------------------------------- *)

let test_cohort_counters () =
  let ds = Runner.imdb ~scale:0.02 ~n_queries:30 () in
  let syn = small_synopsis ds in
  let engine = Plan.Batch.create syn in
  let prepared = Plan.Batch.prepare engine (Runner.workload_queries ds) in
  Metrics.reset Metrics.global;
  ignore (Plan.Batch.run_prepared ~domains:1 engine prepared);
  let cohorts, max_cohort, _ = Plan.Batch.cohort_stats prepared in
  check Alcotest.int "batch.cohorts counts the pass" cohorts
    (Metrics.counter_value Metrics.global "batch.cohorts");
  check Alcotest.int "batch.cohort_max is the high-water" max_cohort
    (Metrics.counter_value Metrics.global "batch.cohort_max");
  check Alcotest.bool "arena resets tracked" true
    (Metrics.counter_value Metrics.global "batch.arena_resets" >= 0);
  (* a second pass over the same plan must not grow the arena again *)
  let resets1 = Metrics.counter_value Metrics.global "batch.arena_resets" in
  ignore (Plan.Batch.run_prepared ~domains:1 engine prepared);
  check Alcotest.int "arena reused, not regrown" resets1
    (Metrics.counter_value Metrics.global "batch.arena_resets");
  match Metrics.quantiles Metrics.global "estimate.cohort_us" [ 0.5 ] with
  | Some _ -> ()
  | None -> Alcotest.fail "expected estimate.cohort_us histogram"

let () =
  Alcotest.run "cohort"
    [ ( "equivalence",
        [ Alcotest.test_case "imdb" `Slow test_cohort_imdb;
          Alcotest.test_case "xmark" `Slow test_cohort_xmark;
          Alcotest.test_case "dblp" `Slow test_cohort_dblp ] );
      ( "determinism",
        [ Alcotest.test_case "bitwise across domains" `Slow test_cohort_domains_bitwise ] );
      ( "arena",
        [ Alcotest.test_case "generation swap" `Slow test_arena_generation_swap ] );
      ( "degenerate",
        [ Alcotest.test_case "singleton cohorts" `Quick test_singleton_cohorts;
          Alcotest.test_case "dedup" `Quick test_dedup ] );
      ( "blocked",
        [ Alcotest.test_case "row-length gate" `Slow test_blocked_gated ] );
      ( "metrics",
        [ Alcotest.test_case "counters" `Quick test_cohort_counters ] ) ]
