(* Tests for Xc_data: generators (determinism, schema shape, value
   typing, path-dependent distributions) and corpora. *)

open Xc_xml

let check = Alcotest.check

(* ---- Text_corpus --------------------------------------------------------- *)

let test_corpus_vocab_distinct () =
  let rng = Xc_util.Rng.create 1 in
  let corpus = Xc_data.Text_corpus.create ~vocab_size:500 rng in
  check Alcotest.int "size" 500 (Xc_data.Text_corpus.vocab_size corpus);
  let seen = Hashtbl.create 500 in
  for i = 0 to 499 do
    let w = Xc_data.Text_corpus.word corpus i in
    if Hashtbl.mem seen w then Alcotest.failf "duplicate word %s" w;
    Hashtbl.add seen w ()
  done

let test_corpus_topics_differ () =
  let rng = Xc_util.Rng.create 2 in
  let corpus = Xc_data.Text_corpus.create ~vocab_size:1000 ~n_topics:4 rng in
  let sample topic =
    let r = Xc_util.Rng.create 7 in
    List.concat
      (List.init 50 (fun _ -> Xc_data.Text_corpus.sample_terms corpus r ~topic ~n:10))
    |> List.sort_uniq Dictionary.compare
  in
  let a = sample 0 and b = sample 1 in
  let overlap = List.length (List.filter (fun t -> List.mem t b) a) in
  (* topic rotations make the frequent-term sets mostly disjoint *)
  check Alcotest.bool "topics mostly disjoint" true
    (float_of_int overlap < 0.5 *. float_of_int (List.length a))

let test_corpus_zipf_skew () =
  let rng = Xc_util.Rng.create 3 in
  let corpus = Xc_data.Text_corpus.create ~vocab_size:1000 rng in
  let r = Xc_util.Rng.create 9 in
  let counts = Hashtbl.create 256 in
  for _ = 1 to 2000 do
    List.iter
      (fun t ->
        let id = (t : Dictionary.term :> int) in
        Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
      (Xc_data.Text_corpus.sample_terms corpus r ~topic:0 ~n:5)
  done;
  let freqs = Hashtbl.fold (fun _ c acc -> c :: acc) counts [] in
  let max_f = List.fold_left max 0 freqs in
  let distinct = List.length freqs in
  (* a Zipfian head: the most common term appears far more often than the
     average term *)
  check Alcotest.bool "skewed" true
    (float_of_int max_f > 10.0 *. (10_000.0 /. float_of_int distinct))

(* ---- generators ------------------------------------------------------------ *)

let test_imdb_deterministic () =
  let a = Xc_data.Imdb.generate ~seed:5 ~n_movies:50 () in
  let b = Xc_data.Imdb.generate ~seed:5 ~n_movies:50 () in
  check Alcotest.string "identical serialization" (Writer.to_string a) (Writer.to_string b);
  let c = Xc_data.Imdb.generate ~seed:6 ~n_movies:50 () in
  check Alcotest.bool "different seed differs" true
    (not (String.equal (Writer.to_string a) (Writer.to_string c)))

let test_imdb_schema () =
  let doc = Xc_data.Imdb.generate ~seed:7 ~n_movies:100 () in
  let stats = Stats.compute doc in
  let paths =
    List.map
      (fun p -> String.concat "/" (List.map Label.to_string p.Stats.path))
      stats.Stats.paths
  in
  List.iter
    (fun expected ->
      check Alcotest.bool ("path " ^ expected) true (List.mem expected paths))
    [ "imdb"; "imdb/movie"; "imdb/movie/title"; "imdb/movie/year";
      "imdb/movie/cast/actor/name"; "imdb/movie/director/name";
      "imdb/movie/plot" ];
  (* value typing matches the declared table *)
  List.iter
    (fun p ->
      let tag = Label.to_string (List.nth p.Stats.path (List.length p.Stats.path - 1)) in
      match List.assoc_opt tag Xc_data.Imdb.value_typing with
      | Some expected when not (Value.vtype_equal p.Stats.vtype Value.Tnull) ->
        check Alcotest.string ("typing of " ^ tag) (Value.vtype_to_string expected)
          (Value.vtype_to_string p.Stats.vtype)
      | _ -> ())
    (Stats.value_paths stats)

let test_imdb_path_dependent_values () =
  (* the same tag must have different distributions on different paths:
     actor years (birth) vs movie years (release) *)
  let doc = Xc_data.Imdb.generate ~seed:8 ~n_movies:400 () in
  let count q = Xc_twig.Twig_eval.selectivity doc (Xc_twig.Twig_parse.parse q) in
  let movie_years = count "//movie/year" and actor_years = count "//actor/year" in
  check Alcotest.bool "both present" true (movie_years > 0.0 && actor_years > 0.0);
  (* movie years skew toward 2005; actor birth years end by 1990 *)
  let recent_movie = count "//movie/year[. > 1995]" /. movie_years in
  let recent_actor = count "//actor/year[. > 1995]" /. actor_years in
  check Alcotest.bool "movie years recent" true (recent_movie > 0.3);
  check Alcotest.bool "actor years old" true (recent_actor < 0.05)

let test_imdb_keywords_recent_only () =
  let doc = Xc_data.Imdb.generate ~seed:9 ~n_movies:400 () in
  let count q = Xc_twig.Twig_eval.selectivity doc (Xc_twig.Twig_parse.parse q) in
  check Alcotest.bool "no keywords before 1980" true
    (count "//movie[year < 1980][keywords]" = 0.0);
  check Alcotest.bool "keywords exist" true (count "//movie/keywords" > 0.0)

let test_xmark_deterministic () =
  let a = Xc_data.Xmark.generate ~seed:5 ~scale:0.02 () in
  let b = Xc_data.Xmark.generate ~seed:5 ~scale:0.02 () in
  check Alcotest.string "identical" (Writer.to_string a) (Writer.to_string b)

let test_xmark_schema () =
  let doc = Xc_data.Xmark.generate ~seed:6 ~scale:0.05 () in
  let count q = Xc_twig.Twig_eval.selectivity doc (Xc_twig.Twig_parse.parse q) in
  List.iter
    (fun q -> check Alcotest.bool ("nonempty " ^ q) true (count q > 0.0))
    [ "/site/regions/africa/item"; "/site/people/person/name";
      "/site/open_auctions/open_auction/bidder/increase";
      "/site/closed_auctions/closed_auction/price";
      "//item/description"; "//parlist/listitem"; "/site/categories/category" ]

let test_xmark_recursion () =
  (* the parlist/listitem recursion must actually nest *)
  let doc = Xc_data.Xmark.generate ~seed:7 ~scale:0.2 () in
  let count q = Xc_twig.Twig_eval.selectivity doc (Xc_twig.Twig_parse.parse q) in
  check Alcotest.bool "nested parlist" true (count "//parlist//parlist" > 0.0)

let test_xmark_quantity_distributions_differ () =
  let doc = Xc_data.Xmark.generate ~seed:8 ~scale:0.2 () in
  let count q = Xc_twig.Twig_eval.selectivity doc (Xc_twig.Twig_parse.parse q) in
  (* item quantities go to 10; closed-auction quantities stop at 2 *)
  check Alcotest.bool "item high quantities" true (count "//item/quantity[. > 5]" > 0.0);
  check Alcotest.bool "closed capped" true
    (count "//closed_auction/quantity[. > 2]" = 0.0)

let test_xmark_scale_controls_size () =
  let small = Xc_data.Xmark.generate ~seed:9 ~scale:0.02 () in
  let big = Xc_data.Xmark.generate ~seed:9 ~scale:0.1 () in
  check Alcotest.bool "scales" true
    (Document.n_elements big > 3 * Document.n_elements small)

let test_names_pools () =
  let rng = Xc_util.Rng.create 11 in
  for _ = 1 to 50 do
    let n = Xc_data.Names.person_name rng in
    check Alcotest.bool "two words" true (String.contains n ' ');
    let e = Xc_data.Names.email rng in
    check Alcotest.bool "email shape" true (String.contains e '@')
  done

let () =
  Alcotest.run ~and_exit:false "xc_data"
    [ ( "text_corpus",
        [ Alcotest.test_case "vocab distinct" `Quick test_corpus_vocab_distinct;
          Alcotest.test_case "topics differ" `Quick test_corpus_topics_differ;
          Alcotest.test_case "zipf skew" `Quick test_corpus_zipf_skew ] );
      ( "imdb",
        [ Alcotest.test_case "deterministic" `Quick test_imdb_deterministic;
          Alcotest.test_case "schema" `Quick test_imdb_schema;
          Alcotest.test_case "path-dependent values" `Quick test_imdb_path_dependent_values;
          Alcotest.test_case "keywords recent" `Quick test_imdb_keywords_recent_only ] );
      ( "xmark",
        [ Alcotest.test_case "deterministic" `Quick test_xmark_deterministic;
          Alcotest.test_case "schema" `Quick test_xmark_schema;
          Alcotest.test_case "recursion" `Quick test_xmark_recursion;
          Alcotest.test_case "quantity dists" `Quick test_xmark_quantity_distributions_differ;
          Alcotest.test_case "scale" `Quick test_xmark_scale_controls_size ] );
      ( "names",
        [ Alcotest.test_case "pools" `Quick test_names_pools ] ) ]


(* ---- DBLP generator (appended suite) ------------------------------------- *)

let test_dblp_schema () =
  let doc = Xc_data.Dblp.generate ~seed:4 ~n_authors:150 () in
  let count q = Xc_twig.Twig_eval.selectivity doc (Xc_twig.Twig_parse.parse q) in
  List.iter
    (fun q -> check Alcotest.bool ("nonempty " ^ q) true (count q > 0.0))
    [ "/dblp/author/name"; "//paper/year"; "//paper/abstract"; "//paper/cites/ref";
      "//book/publisher"; "//paper/title" ];
  (* the intro query parses and evaluates *)
  let q =
    Xc_twig.Twig_parse.parse
      "//paper[year > 2000][abstract ftcontains(x)]/title[contains(Tree)]"
  in
  check Alcotest.bool "intro query evaluates" true
    (Xc_twig.Twig_eval.selectivity doc q >= 0.0)

let test_dblp_deterministic () =
  let a = Xc_data.Dblp.generate ~seed:9 ~n_authors:40 () in
  let b = Xc_data.Dblp.generate ~seed:9 ~n_authors:40 () in
  check Alcotest.string "identical" (Writer.to_string a) (Writer.to_string b)

let test_dblp_end_to_end () =
  let doc = Xc_data.Dblp.generate ~seed:10 ~n_authors:120 () in
  let reference = Xc_core.Reference.build ~min_extent:4 doc in
  check Alcotest.bool "valid" true
    (Xc_core.Synopsis.Builder.validate reference = Ok ());
  let sealed = Xc_core.Synopsis.freeze reference in
  let exact q = Xc_twig.Twig_eval.selectivity doc (Xc_twig.Twig_parse.parse q) in
  let est q = Xc_core.Estimate.selectivity sealed (Xc_twig.Twig_parse.parse q) in
  (* structural exactness holds on the reference like everywhere else *)
  Alcotest.check (Alcotest.float 1e-6) "papers" (exact "//paper") (est "//paper");
  Alcotest.check (Alcotest.float 1e-6) "refs" (exact "//cites/ref") (est "//cites/ref")

let () =
  Alcotest.run "xc_data_dblp"
    [ ( "dblp",
        [ Alcotest.test_case "schema" `Quick test_dblp_schema;
          Alcotest.test_case "deterministic" `Quick test_dblp_deterministic;
          Alcotest.test_case "end to end" `Quick test_dblp_end_to_end ] ) ]
