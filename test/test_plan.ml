(* Tests for the compiled estimation pipeline: Plan/Plan.Cache
   bit-identity with both estimator baselines on all three datasets'
   workloads, freeze-snapshot semantics of the sealed synopsis, and the
   Metrics registry. *)

open Xc_xml
module Synopsis = Xc_core.Synopsis
module B = Synopsis.Builder
module S = Synopsis.Sealed
module Estimate = Xc_core.Estimate
module Plan = Xc_core.Plan
module Build = Xc_core.Build
module Runner = Xc_exp.Runner
module Metrics = Xc_util.Metrics
module Vs = Xc_vsumm.Value_summary

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* exact equality: the refactor's contract is bit-identical floats *)
let check0 msg = Alcotest.check (Alcotest.float 0.0) msg

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---- builder / sealed / planned equivalence ---------------------------- *)

(* The property the whole pipeline rests on: for every workload query,
   the hashtable-walking builder estimator, the CSR sealed estimator,
   and the plan-cached estimator produce bit-identical floats. Each
   estimate runs twice so the second pass exercises the warm plan cache
   and reach memo. *)
let equivalence_on ds =
  let builder =
    Build.run_builder (Build.budget ~bstr_kb:10 ~bval_kb:60 ()) ds.Runner.reference
  in
  let syn = Synopsis.freeze builder in
  let cache = Plan.Cache.create syn in
  List.iter
    (fun e ->
      let q = e.Xc_twig.Workload.query in
      let baseline = Estimate.selectivity_builder builder q in
      let uncached = Estimate.selectivity syn q in
      let cold = Plan.Cache.estimate cache q in
      let warm = Plan.Cache.estimate cache q in
      check0 "sealed = builder" baseline uncached;
      check0 "cold = uncached" uncached cold;
      check0 "warm = uncached" uncached warm)
    ds.Runner.workload;
  check Alcotest.bool "plans cached" true (Plan.Cache.n_plans cache > 0);
  check Alcotest.bool "reach memoized" true (Plan.Cache.reach_entries cache > 0)

let test_equivalence_imdb () = equivalence_on (Runner.imdb ~scale:0.02 ~n_queries:45 ())
let test_equivalence_xmark () = equivalence_on (Runner.xmark ~scale:0.02 ~n_queries:45 ())
let test_equivalence_dblp () = equivalence_on (Runner.dblp ~scale:0.02 ~n_queries:45 ())

(* the facade path is the same pipeline *)
let test_facade_estimate () =
  let ds = Runner.imdb ~scale:0.01 ~n_queries:20 () in
  let syn = Xcluster.Build.run ~budget:(Xcluster.Build.budget ~bstr_kb:8 ~bval_kb:40 ()) ds.Runner.doc in
  List.iter
    (fun e ->
      let q = e.Xc_twig.Workload.query in
      check0 "facade = uncached" (Xcluster.Query.estimate_uncached syn q) (Xcluster.Query.estimate syn q))
    ds.Runner.workload

(* ---- freeze snapshot semantics ----------------------------------------- *)

let tiny_builder () =
  let syn = B.create ~doc_height:3 in
  let r = B.add_node syn ~label:(Label.of_string "r") ~vtype:Value.Tnull ~count:1 ~vsumm:Vs.vnone in
  let a = B.add_node syn ~label:(Label.of_string "a") ~vtype:Value.Tnull ~count:4 ~vsumm:Vs.vnone in
  let b = B.add_node syn ~label:(Label.of_string "b") ~vtype:Value.Tnull ~count:8 ~vsumm:Vs.vnone in
  B.set_root syn (B.sid r);
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid a) 4.0;
  B.set_edge syn ~parent:(B.sid a) ~child:(B.sid b) 2.0;
  (syn, r, a, b)

let test_freeze_snapshots () =
  (* a sealed synopsis is a snapshot: builder mutations after freeze are
     invisible to it, its caches, and its plans — re-freezing is how you
     publish an update, and it carries a fresh uid for cache keying *)
  let syn, _r, a, b = tiny_builder () in
  let sealed = Synopsis.freeze syn in
  let q = Xc_twig.Twig_parse.parse "//a/b" in
  let cache = Plan.Cache.create sealed in
  checkf "tiny twig" 8.0 (Plan.Cache.estimate cache q);
  check Alcotest.bool "memo populated" true (Plan.Cache.reach_entries cache > 0);
  (* double the a->b fanout in the builder *)
  B.set_edge syn ~parent:(B.sid a) ~child:(B.sid b) 4.0;
  checkf "sealed unaffected (cached)" 8.0 (Plan.Cache.estimate cache q);
  checkf "sealed unaffected (uncached)" 8.0 (Estimate.selectivity sealed q);
  let sealed2 = Synopsis.freeze syn in
  check Alcotest.bool "fresh uid per freeze" true (S.uid sealed2 <> S.uid sealed);
  checkf "new snapshot sees doubled fanout" 16.0 (Estimate.selectivity sealed2 q);
  checkf "old snapshot still answers" 8.0 (Plan.Cache.estimate cache q)

let test_plan_reuse () =
  (* a compiled plan is a pure function of (sealed, query): repeated
     estimation answers identically with no recompilation *)
  let syn, _, _, _ = tiny_builder () in
  let sealed = Synopsis.freeze syn in
  let plan = Plan.compile sealed (Xc_twig.Twig_parse.parse "//b") in
  checkf "first" 8.0 (Plan.estimate plan);
  checkf "second" 8.0 (Plan.estimate plan)

let test_vsumm_deep_copied_on_freeze () =
  (* freeze deep-copies value summaries, so phase-2 compression of the
     builder (which prunes string PSTs in place) cannot mutate an
     already-published snapshot *)
  let syn = B.create ~doc_height:2 in
  let vs =
    Vs.of_values (List.init 40 (fun i -> Value.Str (Printf.sprintf "value-%04d" i)))
  in
  let u =
    B.add_node syn ~label:(Label.of_string "x") ~vtype:Value.Tstring ~count:40
      ~vsumm:vs
  in
  B.set_root syn (B.sid u);
  let sealed = Synopsis.freeze syn in
  let bytes_before = S.value_bytes sealed in
  (* compress the builder's summary until it shrinks at least once *)
  (match Vs.apply_compression (B.vsumm u) with
  | Some vs' ->
    B.set_vsumm syn u vs';
    check Alcotest.bool "builder shrank" true (B.value_bytes syn < bytes_before);
    check Alcotest.int "sealed bytes unchanged" bytes_before (S.value_bytes sealed)
  | None -> Alcotest.fail "expected a compressible summary")

(* ---- query keys -------------------------------------------------------- *)

let test_query_key_injective () =
  let keys =
    List.map
      (fun s -> Plan.query_key (Xc_twig.Twig_parse.parse s))
      [ "//a/b"; "//a//b"; "/a/b"; "//a/b[c > 1]"; "//a/b[c > 2]";
        "//a/b[c contains(x)]"; "//a[b]/c"; "//a/b/c"; "//*/b" ]
  in
  check Alcotest.int "all distinct" (List.length keys)
    (List.length (List.sort_uniq String.compare keys))

let test_cache_hits_counted () =
  let syn, _, _, _ = tiny_builder () in
  let sealed = Synopsis.freeze syn in
  let q = Xc_twig.Twig_parse.parse "//a/b" in
  let cache = Plan.Cache.create sealed in
  let m = Metrics.global in
  let h0 = Metrics.counter_value m "plan.cache_hit" in
  let m0 = Metrics.counter_value m "plan.cache_miss" in
  ignore (Plan.Cache.estimate cache q);
  ignore (Plan.Cache.estimate cache q);
  check Alcotest.int "one miss" (m0 + 1) (Metrics.counter_value m "plan.cache_miss");
  check Alcotest.int "one hit" (h0 + 1) (Metrics.counter_value m "plan.cache_hit");
  check Alcotest.int "one plan" 1 (Plan.Cache.n_plans cache);
  Plan.Cache.clear cache;
  check Alcotest.int "cleared" 0 (Plan.Cache.n_plans cache)

(* ---- metrics registry -------------------------------------------------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr ~by:2 m "c";
  check Alcotest.int "counter" 3 (Metrics.counter_value m "c");
  Metrics.observe m "h" 3.0;
  Metrics.observe m "h" 5.0;
  let r = Metrics.time m "t" (fun () -> 42) in
  check Alcotest.int "time passes through" 42 r;
  let s = Metrics.snapshot m in
  check Alcotest.int "counters" 1 (List.length s.Metrics.counters);
  (match s.Metrics.histograms with
  | [ ("h", h) ] ->
    check Alcotest.int "obs" 2 h.Metrics.h_count;
    checkf "min" 3.0 h.Metrics.h_min;
    checkf "max" 5.0 h.Metrics.h_max
  | _ -> Alcotest.fail "expected one histogram");
  (match s.Metrics.timers with
  | [ ("t", t) ] -> check Alcotest.int "calls" 1 t.Metrics.t_count
  | _ -> Alcotest.fail "expected one timer");
  let json = Metrics.to_json s in
  check Alcotest.bool "json mentions counter" true (contains json "\"c\":3");
  Metrics.reset m;
  check Alcotest.int "reset" 0 (Metrics.counter_value m "c")

let test_metrics_json () =
  let m = Metrics.create () in
  Metrics.incr m "plan.compile";
  let json = Metrics.to_json (Metrics.snapshot m) in
  check Alcotest.bool "counter in json" true (contains json "\"plan.compile\":1");
  check Alcotest.bool "object shape" true (contains json "\"counters\":{")

let () =
  Alcotest.run "plan"
    [ ( "equivalence",
        [ Alcotest.test_case "imdb" `Slow test_equivalence_imdb;
          Alcotest.test_case "xmark" `Slow test_equivalence_xmark;
          Alcotest.test_case "dblp" `Slow test_equivalence_dblp;
          Alcotest.test_case "facade" `Quick test_facade_estimate ] );
      ( "freeze",
        [ Alcotest.test_case "snapshot semantics" `Quick test_freeze_snapshots;
          Alcotest.test_case "plan reuse" `Quick test_plan_reuse;
          Alcotest.test_case "vsumm deep copy" `Quick test_vsumm_deep_copied_on_freeze ] );
      ( "cache",
        [ Alcotest.test_case "query keys injective" `Quick test_query_key_injective;
          Alcotest.test_case "hit/miss counters" `Quick test_cache_hits_counted ] );
      ( "metrics",
        [ Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "json" `Quick test_metrics_json ] ) ]
