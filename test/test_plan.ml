(* Tests for the compiled estimation pipeline: Plan/Plan.Cache
   equivalence with the direct estimator on all three datasets'
   workloads, generation-counter invalidation of the reach memo, and
   the Metrics registry. *)

open Xc_xml
module Synopsis = Xc_core.Synopsis
module Estimate = Xc_core.Estimate
module Plan = Xc_core.Plan
module Build = Xc_core.Build
module Runner = Xc_exp.Runner
module Metrics = Xc_util.Metrics
module Vs = Xc_vsumm.Value_summary

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---- plan-cached vs uncached equivalence ------------------------------ *)

(* The property the whole pipeline rests on: for every workload query,
   the plan-cached estimate equals the direct estimate to within 1e-9
   (in fact bit-identically — the memo stores the very tables a fresh
   run would fold over). Each estimate runs twice so the second pass
   exercises the warm plan cache and reach memo. *)
let equivalence_on ds =
  let syn = Build.run (Build.budget ~bstr_kb:10 ~bval_kb:60 ()) ds.Runner.reference in
  let cache = Plan.Cache.create syn in
  List.iter
    (fun e ->
      let q = e.Xc_twig.Workload.query in
      let uncached = Estimate.selectivity syn q in
      let cold = Plan.Cache.estimate cache q in
      let warm = Plan.Cache.estimate cache q in
      checkf "cold = uncached" uncached cold;
      checkf "warm = uncached" uncached warm)
    ds.Runner.workload;
  check Alcotest.bool "plans cached" true (Plan.Cache.n_plans cache > 0);
  check Alcotest.bool "reach memoized" true (Plan.Cache.reach_entries cache > 0)

let test_equivalence_imdb () = equivalence_on (Runner.imdb ~scale:0.02 ~n_queries:45 ())
let test_equivalence_xmark () = equivalence_on (Runner.xmark ~scale:0.02 ~n_queries:45 ())
let test_equivalence_dblp () = equivalence_on (Runner.dblp ~scale:0.02 ~n_queries:45 ())

(* the facade path is the same pipeline *)
let test_facade_estimate () =
  let ds = Runner.imdb ~scale:0.01 ~n_queries:20 () in
  let syn = Xcluster.build ~budget:(Xcluster.budget ~bstr_kb:8 ~bval_kb:40 ()) ds.Runner.doc in
  List.iter
    (fun e ->
      let q = e.Xc_twig.Workload.query in
      checkf "facade = uncached" (Xcluster.estimate_uncached syn q) (Xcluster.estimate syn q))
    ds.Runner.workload

(* ---- generation counter and memo invalidation ------------------------- *)

let tiny_synopsis () =
  let syn = Synopsis.create ~doc_height:3 in
  let r = Synopsis.add_node syn ~label:(Label.of_string "r") ~vtype:Value.Tnull ~count:1 ~vsumm:Vs.vnone in
  let a = Synopsis.add_node syn ~label:(Label.of_string "a") ~vtype:Value.Tnull ~count:4 ~vsumm:Vs.vnone in
  let b = Synopsis.add_node syn ~label:(Label.of_string "b") ~vtype:Value.Tnull ~count:8 ~vsumm:Vs.vnone in
  syn.Synopsis.root <- r.Synopsis.sid;
  Synopsis.set_edge syn ~parent:r.Synopsis.sid ~child:a.Synopsis.sid 4.0;
  Synopsis.set_edge syn ~parent:a.Synopsis.sid ~child:b.Synopsis.sid 2.0;
  (syn, r, a, b)

let test_generation_bumps () =
  let syn, r, a, _b = tiny_synopsis () in
  let g0 = Synopsis.generation syn in
  Synopsis.set_edge syn ~parent:r.Synopsis.sid ~child:a.Synopsis.sid 5.0;
  check Alcotest.bool "set_edge bumps" true (Synopsis.generation syn > g0);
  let g1 = Synopsis.generation syn in
  Synopsis.set_vsumm syn a Vs.vnone;
  check Alcotest.bool "set_vsumm bumps" true (Synopsis.generation syn > g1);
  let g2 = Synopsis.generation syn in
  Synopsis.set_count syn a 5;
  check Alcotest.bool "set_count bumps" true (Synopsis.generation syn > g2);
  let g3 = Synopsis.generation syn in
  Synopsis.touch syn;
  check Alcotest.bool "touch bumps" true (Synopsis.generation syn > g3);
  let copy = Synopsis.copy syn in
  check Alcotest.bool "fresh uid on copy" true (Synopsis.uid copy <> Synopsis.uid syn)

let test_memo_invalidation () =
  let syn, r, a, b = tiny_synopsis () in
  let q = Xc_twig.Twig_parse.parse "//a/b" in
  let cache = Plan.Cache.create syn in
  let before = Plan.Cache.estimate cache q in
  checkf "tiny twig" 8.0 before;
  check Alcotest.bool "memo populated" true (Plan.Cache.reach_entries cache > 0);
  check Alcotest.int "memo at current generation" (Synopsis.generation syn)
    (Plan.Cache.generation cache);
  (* double the a->b fanout: //a/b must now see 16 expected elements *)
  Synopsis.set_edge syn ~parent:a.Synopsis.sid ~child:b.Synopsis.sid 4.0;
  ignore r;
  let after = Plan.Cache.estimate cache q in
  checkf "stale memo dropped" (Estimate.selectivity syn q) after;
  checkf "doubled fanout" 16.0 after;
  check Alcotest.int "memo revalidated" (Synopsis.generation syn)
    (Plan.Cache.generation cache)

let test_plan_survives_mutation () =
  (* plans compile against the query only; after mutation the same plan
     value must answer with fresh expansions *)
  let syn, _r, a, b = tiny_synopsis () in
  let plan = Plan.compile syn (Xc_twig.Twig_parse.parse "//b") in
  checkf "initial" 8.0 (Plan.estimate plan);
  Synopsis.set_edge syn ~parent:a.Synopsis.sid ~child:b.Synopsis.sid 1.0;
  checkf "after mutation" (Estimate.selectivity syn (Xc_twig.Twig_parse.parse "//b"))
    (Plan.estimate plan)

(* ---- query keys -------------------------------------------------------- *)

let test_query_key_injective () =
  let keys =
    List.map
      (fun s -> Plan.query_key (Xc_twig.Twig_parse.parse s))
      [ "//a/b"; "//a//b"; "/a/b"; "//a/b[c > 1]"; "//a/b[c > 2]";
        "//a/b[c contains(x)]"; "//a[b]/c"; "//a/b/c"; "//*/b" ]
  in
  check Alcotest.int "all distinct" (List.length keys)
    (List.length (List.sort_uniq String.compare keys))

let test_cache_hits_counted () =
  let syn, _, _, _ = tiny_synopsis () in
  let q = Xc_twig.Twig_parse.parse "//a/b" in
  let cache = Plan.Cache.create syn in
  let m = Metrics.global in
  let h0 = Metrics.counter_value m "plan.cache_hit" in
  let m0 = Metrics.counter_value m "plan.cache_miss" in
  ignore (Plan.Cache.estimate cache q);
  ignore (Plan.Cache.estimate cache q);
  check Alcotest.int "one miss" (m0 + 1) (Metrics.counter_value m "plan.cache_miss");
  check Alcotest.int "one hit" (h0 + 1) (Metrics.counter_value m "plan.cache_hit");
  check Alcotest.int "one plan" 1 (Plan.Cache.n_plans cache);
  Plan.Cache.clear cache;
  check Alcotest.int "cleared" 0 (Plan.Cache.n_plans cache)

(* ---- metrics registry -------------------------------------------------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr ~by:2 m "c";
  check Alcotest.int "counter" 3 (Metrics.counter_value m "c");
  Metrics.observe m "h" 3.0;
  Metrics.observe m "h" 5.0;
  let r = Metrics.time m "t" (fun () -> 42) in
  check Alcotest.int "time passes through" 42 r;
  let s = Metrics.snapshot m in
  check Alcotest.int "counters" 1 (List.length s.Metrics.counters);
  (match s.Metrics.histograms with
  | [ ("h", h) ] ->
    check Alcotest.int "obs" 2 h.Metrics.h_count;
    checkf "min" 3.0 h.Metrics.h_min;
    checkf "max" 5.0 h.Metrics.h_max
  | _ -> Alcotest.fail "expected one histogram");
  (match s.Metrics.timers with
  | [ ("t", t) ] -> check Alcotest.int "calls" 1 t.Metrics.t_count
  | _ -> Alcotest.fail "expected one timer");
  let json = Metrics.to_json s in
  check Alcotest.bool "json mentions counter" true (contains json "\"c\":3");
  Metrics.reset m;
  check Alcotest.int "reset" 0 (Metrics.counter_value m "c")

let test_metrics_json () =
  let m = Metrics.create () in
  Metrics.incr m "plan.compile";
  let json = Metrics.to_json (Metrics.snapshot m) in
  check Alcotest.bool "counter in json" true (contains json "\"plan.compile\":1");
  check Alcotest.bool "object shape" true (contains json "\"counters\":{")

let () =
  Alcotest.run "plan"
    [ ( "equivalence",
        [ Alcotest.test_case "imdb" `Slow test_equivalence_imdb;
          Alcotest.test_case "xmark" `Slow test_equivalence_xmark;
          Alcotest.test_case "dblp" `Slow test_equivalence_dblp;
          Alcotest.test_case "facade" `Quick test_facade_estimate ] );
      ( "invalidation",
        [ Alcotest.test_case "generation bumps" `Quick test_generation_bumps;
          Alcotest.test_case "memo invalidation" `Quick test_memo_invalidation;
          Alcotest.test_case "plan survives mutation" `Quick test_plan_survives_mutation ] );
      ( "cache",
        [ Alcotest.test_case "query keys injective" `Quick test_query_key_injective;
          Alcotest.test_case "hit/miss counters" `Quick test_cache_hits_counted ] );
      ( "metrics",
        [ Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "json" `Quick test_metrics_json ] ) ]
