(* Incremental synopsis maintenance (Xc_core.Update): the
   update → localized repair → re-freeze lifecycle.

   The headline property (ISSUE: satellite c): applying a mutation
   batch to a live builder and re-freezing must estimate the mutated
   document about as well as a from-scratch XCLUSTERBUILD on that
   document — across imdb/xmark/dblp and across the pool's domain
   counts (1/2/4), where the repaired synopsis must additionally be
   bitwise deterministic. *)

open Xc_xml
module Synopsis = Xc_core.Synopsis
module B = Synopsis.Builder
module S = Synopsis.Sealed
module Reference = Xc_core.Reference
module Build = Xc_core.Build
module Update = Xc_core.Update
module Pool = Xc_core.Pool
module Estimate = Xc_core.Estimate

let check = Alcotest.check
let l = Label.of_string
let exact doc q = Xc_twig.Twig_eval.selectivity doc (Xc_twig.Twig_parse.parse q)
let est syn q = Estimate.selectivity syn (Xc_twig.Twig_parse.parse q)

let rec copy_subtree (n : Node.t) =
  { n with Node.children = Array.map copy_subtree n.Node.children; id = -1 }

(* ---- unit behaviour ----------------------------------------------------- *)

(* On an unmerged reference with room to spare, an update must be exact:
   the repaired synopsis answers like the mutated document itself. *)
let test_insert_exact () =
  let paper year =
    Node.make "paper"
      ~children:[ Node.leaf "year" (Value.Numeric year); Node.make "cites" ]
  in
  let doc =
    Document.create (Node.make "db" ~children:[ paper 2000; paper 2001 ])
  in
  let live = Reference.build ~min_extent:1 doc in
  let budget = Build.budget ~bstr_kb:64 ~bval_kb:64 () in
  let muts =
    [ Update.Insert { parent = [ l "db" ]; subtree = paper 2002 };
      Update.Insert { parent = [ l "db" ]; subtree = paper 2003 } ]
  in
  match Update.apply_and_seal ~budget live muts with
  | Error e -> Alcotest.failf "rejected: %s" e
  | Ok (stats, syn) ->
    check Alcotest.int "applied" 2 stats.Update.applied;
    check Alcotest.int "skipped" 0 stats.Update.skipped;
    let mutated =
      Document.create
        (Node.make "db" ~children:[ paper 2000; paper 2001; paper 2002; paper 2003 ])
    in
    List.iter
      (fun q ->
        check (Alcotest.float 1e-6) q (exact mutated q) (est syn q))
      [ "//paper"; "//paper/cites"; "/db/paper/year"; "//paper[year > 2001]" ]

let test_delete_to_zero_removes () =
  let doc =
    Document.create
      (Node.make "db"
         ~children:[ Node.make "paper"; Node.make "rare" ~children:[ Node.make "gem" ] ])
  in
  let live = Reference.build ~min_extent:1 doc in
  let budget = Build.budget ~bstr_kb:64 ~bval_kb:64 () in
  let muts =
    [ Update.Delete
        { parent = [ l "db" ]; subtree = Node.make "rare" ~children:[ Node.make "gem" ] } ]
  in
  match Update.apply_and_seal ~budget live muts with
  | Error e -> Alcotest.failf "rejected: %s" e
  | Ok (stats, syn) ->
    check Alcotest.bool "clusters removed" true (stats.Update.removed >= 2);
    check (Alcotest.float 1e-9) "//rare gone" 0.0 (est syn "//rare");
    check (Alcotest.float 1e-9) "//gem gone" 0.0 (est syn "//gem");
    check (Alcotest.float 1e-6) "//paper intact" 1.0 (est syn "//paper")

(* A batch whose parent path resolves nowhere is rejected before
   anything is written. *)
let test_unresolvable_rejected () =
  let doc = Document.create (Node.make "db" ~children:[ Node.make "paper" ]) in
  let live = Reference.build ~min_extent:1 doc in
  let nodes0 = B.n_nodes live and edges0 = B.n_edges live in
  let budget = Build.budget () in
  let muts =
    [ Update.Insert { parent = [ l "db" ]; subtree = Node.make "paper" };
      Update.Insert { parent = [ l "db"; l "nowhere" ]; subtree = Node.make "x" } ]
  in
  (match Update.apply ~budget live muts with
  | Ok _ -> Alcotest.fail "bogus parent path accepted"
  | Error _ -> ());
  check Alcotest.int "nodes untouched" nodes0 (B.n_nodes live);
  check Alcotest.int "edges untouched" edges0 (B.n_edges live)

(* Deleting a subtree branch that is absent from the document is
   clamped and counted, not applied blindly. *)
let test_delete_clamps () =
  let doc =
    Document.create
      (Node.make "db" ~children:[ Node.make "paper" ~children:[ Node.make "cites" ] ])
  in
  let live = Reference.build ~min_extent:1 doc in
  let budget = Build.budget ~bstr_kb:64 ~bval_kb:64 () in
  let muts =
    [ Update.Delete
        { parent = [ l "db" ];
          subtree =
            Node.make "paper"
              ~children:[ Node.make "cites"; Node.make "phantom" ] } ]
  in
  match Update.apply_and_seal ~budget live muts with
  | Error e -> Alcotest.failf "rejected: %s" e
  | Ok (stats, syn) ->
    check Alcotest.bool "phantom branch skipped" true (stats.Update.skipped >= 1);
    check (Alcotest.float 1e-9) "//paper gone" 0.0 (est syn "//paper")

(* ---- the headline property ---------------------------------------------- *)

(* Mutation stream for documents without a bespoke generator: delete
   every [k]-th root child, re-insert copies of some survivors. *)
let generic_case ~k doc =
  let root = doc.Document.root in
  let rl = root.Node.label in
  let kept = ref [] and deleted = ref [] and inserted = ref [] in
  Array.iteri
    (fun i c ->
      if i mod k = 0 then deleted := c :: !deleted else kept := c :: !kept;
      if i mod (3 * k) = 1 then inserted := c :: !inserted)
    root.Node.children;
  let muts =
    List.map (fun c -> Update.Delete { parent = [ rl ]; subtree = c }) !deleted
    @ List.map
        (fun c -> Update.Insert { parent = [ rl ]; subtree = copy_subtree c })
        !inserted
  in
  let children' =
    Array.of_list (List.rev_map copy_subtree !kept @ List.rev_map copy_subtree !inserted)
  in
  let mutated = Document.create { root with Node.children = children'; id = -1 } in
  (muts, mutated)

(* XMark auction open/close stream, converted caller-side to mutations
   (Open → insert under site/open_auctions; Close → delete there plus
   insert under site/closed_auctions). *)
let xmark_case doc =
  let updates = Xc_data.Xmark.update_stream ~seed:11 ~n_open:12 ~n_close:8 doc in
  let muts =
    List.concat_map
      (function
        | Xc_data.Xmark.Open subtree ->
          [ Update.Insert { parent = [ l "site"; l "open_auctions" ]; subtree } ]
        | Xc_data.Xmark.Close { opened; closed } ->
          [ Update.Delete { parent = [ l "site"; l "open_auctions" ]; subtree = opened };
            Update.Insert { parent = [ l "site"; l "closed_auctions" ]; subtree = closed } ])
      updates
  in
  (muts, Xc_data.Xmark.apply_stream doc updates)

(* Tolerated estimation-error gap between the incrementally maintained
   synopsis and a fresh build of the mutated document. *)
let added_error_bound = 0.03

let run_property ~name doc (muts, mutated) =
  let budget =
    Build.budget ~pool:{ Pool.default_config with Pool.domains = 1 } ~bstr_kb:12
      ~bval_kb:60 ()
  in
  let reference = Reference.build ~min_extent:4 doc in
  let live = Build.run_builder budget reference in
  let snapshot = B.copy live in
  let pre_val = B.value_bytes live in
  match Update.apply_and_seal ~budget live muts with
  | Error e -> Alcotest.failf "%s: rejected: %s" name e
  | Ok (stats, incr_syn) ->
    check Alcotest.int (name ^ ": applied") (List.length muts) stats.Update.applied;
    check Alcotest.bool (name ^ ": frontier non-empty") true (stats.Update.dirty > 0);
    let fresh = Build.run budget (Reference.build ~min_extent:4 mutated) in
    (* repair re-established the construction budgets — or, where a
       budget sits below the compression floor (greedy compression runs
       dry over budget, exactly as in a fresh build; deletions keep
       their value summaries, so the incremental floor is the
       pre-update floor), at least did not regress past it *)
    check Alcotest.bool (name ^ ": structural budget") true
      (S.structural_bytes incr_syn
      <= max budget.Build.bstr (S.structural_bytes fresh + (S.structural_bytes fresh / 10)));
    check Alcotest.bool (name ^ ": value budget") true
      (S.value_bytes incr_syn <= max budget.Build.bval (pre_val + (pre_val / 10)));
    (* estimation error vs the from-scratch build *)
    let spec = { Xc_twig.Workload.default_spec with Xc_twig.Workload.n_queries = 40 } in
    let wl = Xc_twig.Workload.generate ~spec mutated in
    let sanity = Xc_twig.Workload.sanity_bound wl in
    let err syn =
      Xc_exp.Error_metric.overall_relative ~sanity
        (Xc_exp.Error_metric.score (Estimate.selectivity syn) wl)
    in
    let e_incr = err incr_syn and e_fresh = err fresh in
    check Alcotest.bool
      (Printf.sprintf "%s: added error (incr %.4f, fresh %.4f)" name e_incr e_fresh)
      true
      (e_incr -. e_fresh < added_error_bound);
    (* the repaired synopsis is deterministic across pool domain counts *)
    let reseal domains =
      let b = B.copy snapshot in
      let budget =
        { budget with Build.pool = { budget.Build.pool with Pool.domains } }
      in
      match Update.apply_and_seal ~budget b muts with
      | Error e -> Alcotest.failf "%s (domains=%d): rejected: %s" name domains e
      | Ok (_, syn) -> syn
    in
    let probe = [ "//item"; "//paper"; "//author"; "//open_auction"; "//year" ] in
    List.iter
      (fun domains ->
        let syn = reseal domains in
        check Alcotest.int
          (Printf.sprintf "%s: n_nodes domains=%d" name domains)
          (S.n_nodes incr_syn) (S.n_nodes syn);
        check Alcotest.int
          (Printf.sprintf "%s: n_edges domains=%d" name domains)
          (S.n_edges incr_syn) (S.n_edges syn);
        List.iter
          (fun q ->
            check Alcotest.bool
              (Printf.sprintf "%s: %s bitwise domains=%d" name q domains)
              true
              (Int64.equal
                 (Int64.bits_of_float (est incr_syn q))
                 (Int64.bits_of_float (est syn q))))
          probe)
      [ 2; 4 ]

let test_property_imdb () =
  let doc = Xc_data.Imdb.generate ~seed:31 ~n_movies:260 () in
  run_property ~name:"imdb" doc (generic_case ~k:6 doc)

let test_property_dblp () =
  let doc = Xc_data.Dblp.generate ~seed:32 ~n_authors:220 () in
  run_property ~name:"dblp" doc (generic_case ~k:5 doc)

let test_property_xmark () =
  let doc = Xc_data.Xmark.generate ~seed:33 ~scale:0.03 () in
  run_property ~name:"xmark" doc (xmark_case doc)

(* Repeated batches against one live builder: the lifecycle the serving
   layer runs (apply → freeze → swap, builder stays live). *)
let test_repeated_batches () =
  let doc = Xc_data.Xmark.generate ~seed:34 ~scale:0.02 () in
  let budget = Build.budget ~bstr_kb:10 ~bval_kb:50 () in
  let live = Build.run_builder budget (Reference.build ~min_extent:4 doc) in
  let uids = ref [] in
  let current = ref doc in
  for round = 1 to 3 do
    let muts, mutated = xmark_case !current in
    (match Update.apply_and_seal ~budget live muts with
    | Error e -> Alcotest.failf "round %d rejected: %s" round e
    | Ok (_, syn) ->
      check Alcotest.bool
        (Printf.sprintf "round %d structural budget" round)
        true
        (S.structural_bytes syn <= budget.Build.bstr);
      uids := S.uid syn :: !uids);
    current := mutated
  done;
  check Alcotest.int "three distinct generations" 3
    (List.length (List.sort_uniq Int.compare !uids))

let () =
  Alcotest.run "xc_update"
    [ ( "unit",
        [ Alcotest.test_case "insert is exact on reference" `Quick test_insert_exact;
          Alcotest.test_case "delete to zero removes clusters" `Quick
            test_delete_to_zero_removes;
          Alcotest.test_case "unresolvable batch rejected untouched" `Quick
            test_unresolvable_rejected;
          Alcotest.test_case "delete clamps missing branches" `Quick test_delete_clamps ] );
      ( "property",
        [ Alcotest.test_case "imdb: update ~ fresh build" `Slow test_property_imdb;
          Alcotest.test_case "dblp: update ~ fresh build" `Slow test_property_dblp;
          Alcotest.test_case "xmark: update ~ fresh build" `Slow test_property_xmark;
          Alcotest.test_case "repeated batches stay sealed" `Slow test_repeated_batches ] ) ]
