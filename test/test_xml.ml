(* Tests for Xc_xml: labels, values, tokenizer, nodes, documents,
   parser, writer, stats. *)

open Xc_xml

let check = Alcotest.check

(* ---- Label ----------------------------------------------------------- *)

let test_label_interning () =
  let a = Label.of_string "movie" and b = Label.of_string "movie" in
  check Alcotest.bool "equal" true (Label.equal a b);
  check Alcotest.string "round trip" "movie" (Label.to_string a);
  let c = Label.of_string "actor" in
  check Alcotest.bool "distinct" false (Label.equal a c)

let test_label_many () =
  let labels = List.init 500 (fun i -> Label.of_string (Printf.sprintf "tag%d" i)) in
  List.iteri
    (fun i l -> check Alcotest.string "name" (Printf.sprintf "tag%d" i) (Label.to_string l))
    labels

(* ---- Value ----------------------------------------------------------- *)

let test_value_types () =
  check Alcotest.bool "null" true (Value.vtype Value.Null = Value.Tnull);
  check Alcotest.bool "num" true (Value.vtype (Value.Numeric 3) = Value.Tnumeric);
  check Alcotest.bool "str" true (Value.vtype (Value.Str "x") = Value.Tstring);
  check Alcotest.bool "text" true
    (Value.vtype (Value.text_of_terms []) = Value.Ttext)

let test_text_of_terms_sorts_dedupes () =
  let t1 = Dictionary.of_string "alpha" and t2 = Dictionary.of_string "beta" in
  match Value.text_of_terms [ t2; t1; t2; t1 ] with
  | Value.Text arr ->
    check Alcotest.int "deduped" 2 (Array.length arr);
    check Alcotest.bool "sorted" true (Dictionary.compare arr.(0) arr.(1) < 0)
  | _ -> Alcotest.fail "expected Text"

let test_text_contains () =
  let a = Dictionary.of_string "xml" and b = Dictionary.of_string "synopsis" in
  let missing = Dictionary.of_string "absent-term" in
  let v = Value.text_of_terms [ a; b ] in
  check Alcotest.bool "has xml" true (Value.text_contains v a);
  check Alcotest.bool "has synopsis" true (Value.text_contains v b);
  check Alcotest.bool "no absent" false (Value.text_contains v missing);
  check Alcotest.bool "non-text" false (Value.text_contains (Value.Numeric 4) a)

let test_value_equal () =
  check Alcotest.bool "num eq" true (Value.equal (Value.Numeric 5) (Value.Numeric 5));
  check Alcotest.bool "num neq" false (Value.equal (Value.Numeric 5) (Value.Numeric 6));
  check Alcotest.bool "str eq" true (Value.equal (Value.Str "a") (Value.Str "a"));
  check Alcotest.bool "cross" false (Value.equal (Value.Str "5") (Value.Numeric 5));
  let t = Dictionary.of_string "term" in
  check Alcotest.bool "text eq" true
    (Value.equal (Value.text_of_terms [ t ]) (Value.text_of_terms [ t ]))

(* ---- Tokenizer ------------------------------------------------------- *)

let test_tokenizer_basic () =
  let terms = Tokenizer.tokenize "Hello, XML world! XML rules." in
  let words = List.map Dictionary.to_string terms |> List.sort String.compare in
  check (Alcotest.list Alcotest.string) "lowercased, deduped"
    [ "hello"; "rules"; "world"; "xml" ] words

let test_tokenizer_stopwords () =
  let terms = Tokenizer.tokenize "the cat and the hat" in
  let words = List.map Dictionary.to_string terms |> List.sort String.compare in
  check (Alcotest.list Alcotest.string) "stopwords removed" [ "cat"; "hat" ] words

let test_tokenizer_short_tokens () =
  let terms = Tokenizer.tokenize "a b c xy" in
  let words = List.map Dictionary.to_string terms in
  check (Alcotest.list Alcotest.string) "1-char dropped" [ "xy" ] words

let test_tokenizer_empty () =
  check Alcotest.int "empty" 0 (List.length (Tokenizer.tokenize ""));
  check Alcotest.int "punct only" 0 (List.length (Tokenizer.tokenize "!!! ... ???"))

(* ---- Node / Document -------------------------------------------------- *)

let sample_tree () =
  Node.make "root"
    ~children:
      [ Node.make "a"
          ~children:[ Node.leaf "x" (Value.Numeric 1); Node.leaf "y" (Value.Str "s") ];
        Node.make "b" ~children:[ Node.make "a" ] ]

let test_node_size_height () =
  let root = sample_tree () in
  check Alcotest.int "size" 6 (Node.size root);
  check Alcotest.int "height" 3 (Node.height root)

let test_node_iter_preorder () =
  let root = sample_tree () in
  let labels = ref [] in
  Node.iter (fun n -> labels := Label.to_string n.Node.label :: !labels) root;
  check (Alcotest.list Alcotest.string) "preorder"
    [ "root"; "a"; "x"; "y"; "b"; "a" ] (List.rev !labels)

let test_node_add_child () =
  let root = Node.make "root" in
  Node.add_child root (Node.make "kid");
  Node.add_child root (Node.make "kid2");
  check Alcotest.int "two kids" 2 (Array.length root.Node.children)

let test_document_ids_preorder () =
  let doc = Document.create (sample_tree ()) in
  check Alcotest.int "n" 6 (Document.n_elements doc);
  Array.iteri (fun i n -> check Alcotest.int "dense ids" i n.Node.id) doc.Document.nodes;
  (* preorder: parents before children *)
  let parents = Document.parent_table doc in
  Array.iteri
    (fun i p -> if i > 0 && p >= i then Alcotest.failf "parent %d not before %d" p i)
    parents;
  check Alcotest.int "root parent" (-1) parents.(0)

let test_document_label_path () =
  let doc = Document.create (sample_tree ()) in
  let x_node = doc.Document.nodes.(2) in
  check (Alcotest.list Alcotest.string) "path to x" [ "root"; "a"; "x" ]
    (List.map Label.to_string (Document.label_path doc x_node))

let test_document_value_counts () =
  let doc = Document.create (sample_tree ()) in
  let counts = Document.value_counts doc in
  let get vt = Option.value ~default:0 (List.assoc_opt vt counts) in
  check Alcotest.int "numeric" 1 (get Value.Tnumeric);
  check Alcotest.int "string" 1 (get Value.Tstring);
  check Alcotest.int "null" 4 (get Value.Tnull)

let test_deep_tree_no_overflow () =
  (* 200k-deep chain: traversals must not blow the stack *)
  let deep = ref (Node.make "leaf") in
  for _ = 1 to 200_000 do
    deep := Node.make "n" ~children:[ !deep ]
  done;
  check Alcotest.int "size" 200_001 (Node.size !deep);
  check Alcotest.int "height" 200_001 (Node.height !deep)

(* ---- Parser ------------------------------------------------------------ *)

let test_parse_simple () =
  let doc = Parser.parse_string "<r><a>5</a><b>hello</b></r>" in
  check Alcotest.int "elements" 3 (Document.n_elements doc);
  let a = doc.Document.nodes.(1) and b = doc.Document.nodes.(2) in
  check Alcotest.bool "a numeric" true (Value.equal a.Node.value (Value.Numeric 5));
  check Alcotest.bool "b string" true (Value.equal b.Node.value (Value.Str "hello"))

let test_parse_attributes_discarded () =
  let doc = Parser.parse_string {|<r id="1" kind='x'><a href="y"/></r>|} in
  check Alcotest.int "elements" 2 (Document.n_elements doc)

let test_parse_entities () =
  let doc = Parser.parse_string "<r><s>a &amp; b &lt;c&gt; &#65;</s></r>" in
  match doc.Document.nodes.(1).Node.value with
  | Value.Str s -> check Alcotest.string "decoded" "a & b <c> A" s
  | _ -> Alcotest.fail "expected string"

let test_parse_cdata_comments () =
  let doc =
    Parser.parse_string
      "<?xml version=\"1.0\"?><!-- c --><r><s><![CDATA[x<y]]></s><!-- inner --></r>"
  in
  match doc.Document.nodes.(1).Node.value with
  | Value.Str s -> check Alcotest.string "cdata" "x<y" s
  | _ -> Alcotest.fail "expected string"

let test_parse_mixed_content_ignored () =
  let doc = Parser.parse_string "<r>junk<a>1</a>more</r>" in
  check Alcotest.int "elements" 2 (Document.n_elements doc);
  check Alcotest.bool "r has no value" true
    (Value.equal doc.Document.nodes.(0).Node.value Value.Null)

let test_parse_default_typing () =
  let doc =
    Parser.parse_string
      "<r><n>42</n><s>short text</s><t>one two three four five six seven eight \
       nine ten</t><e>  </e></r>"
  in
  let vt i = Value.vtype doc.Document.nodes.(i).Node.value in
  check Alcotest.bool "numeric" true (vt 1 = Value.Tnumeric);
  check Alcotest.bool "string" true (vt 2 = Value.Tstring);
  check Alcotest.bool "text" true (vt 3 = Value.Ttext);
  check Alcotest.bool "whitespace -> null" true (vt 4 = Value.Tnull)

let test_parse_assoc_typing () =
  let typing =
    Parser.typing_of_assoc
      [ ("year", Value.Tnumeric); ("title", Value.Tstring); ("abs", Value.Ttext) ]
  in
  let doc =
    Parser.parse_string ~typing
      "<r><year>1999</year><title>99 Ways</title><abs>xml synopsis</abs><other>dropped</other></r>"
  in
  let v i = doc.Document.nodes.(i).Node.value in
  check Alcotest.bool "year" true (Value.equal (v 1) (Value.Numeric 1999));
  check Alcotest.bool "title stays string" true (Value.equal (v 2) (Value.Str "99 Ways"));
  check Alcotest.bool "abs text" true (Value.vtype (v 3) = Value.Ttext);
  check Alcotest.bool "other dropped" true (Value.equal (v 4) Value.Null)

let test_parse_errors () =
  let malformed s =
    match Parser.parse_string s with
    | exception Parser.Malformed _ -> ()
    | _ -> Alcotest.failf "expected Malformed for %s" s
  in
  malformed "<r>";
  malformed "<r></s>";
  malformed "<r><a></r></a>";
  malformed "no xml";
  malformed "<r/><r2/>";
  malformed "<r>&unknown;</r>"

let test_parse_doctype () =
  let doc = Parser.parse_string "<!DOCTYPE r [<!ELEMENT r ANY>]><r/>" in
  check Alcotest.int "elements" 1 (Document.n_elements doc)

(* ---- Writer ------------------------------------------------------------ *)

let test_writer_roundtrip () =
  let root =
    Node.make "db"
      ~children:
        [ Node.leaf "n" (Value.Numeric 7);
          Node.leaf "s" (Value.Str "a & b <tag>");
          Node.make "empty" ]
  in
  let doc = Document.create root in
  let text = Writer.to_string doc in
  let typing =
    Parser.typing_of_assoc [ ("n", Value.Tnumeric); ("s", Value.Tstring) ]
  in
  let doc2 = Parser.parse_string ~typing text in
  check Alcotest.int "same elements" (Document.n_elements doc) (Document.n_elements doc2);
  check Alcotest.bool "n" true
    (Value.equal doc2.Document.nodes.(1).Node.value (Value.Numeric 7));
  check Alcotest.bool "s" true
    (Value.equal doc2.Document.nodes.(2).Node.value (Value.Str "a & b <tag>"))

let test_writer_size () =
  let doc = Document.create (Node.make "r") in
  check Alcotest.int "size = string length" (String.length (Writer.to_string doc))
    (Writer.serialized_size doc)

let test_escape () =
  check Alcotest.string "escape" "a&amp;b&lt;c&gt;d&quot;" (Writer.escape "a&b<c>d\"");
  check Alcotest.string "no-op" "plain" (Writer.escape "plain")

(* ---- Stats ------------------------------------------------------------ *)

let test_stats () =
  let doc = Document.create (sample_tree ()) in
  let stats = Stats.compute doc in
  check Alcotest.int "elements" 6 stats.Stats.n_elements;
  check Alcotest.int "labels" 5 stats.Stats.n_labels;
  check Alcotest.int "height" 3 stats.Stats.height;
  (* paths: root, root/a, root/a/x, root/a/y, root/b, root/b/a *)
  check Alcotest.int "paths" 6 (List.length stats.Stats.paths);
  let vpaths = Stats.value_paths stats in
  check Alcotest.int "value paths" 2 (List.length vpaths)

let test_stats_path_counts () =
  let root =
    Node.make "r"
      ~children:[ Node.make "a"; Node.make "a"; Node.make "a" ~children:[ Node.make "b" ] ]
  in
  let stats = Stats.compute (Document.create root) in
  let a_path =
    List.find
      (fun p -> List.map Label.to_string p.Stats.path = [ "r"; "a" ])
      stats.Stats.paths
  in
  check Alcotest.int "a count" 3 a_path.Stats.elements

let parse_roundtrip_property =
  (* generate a random small tree, write, re-parse, compare shape *)
  QCheck.Test.make ~name:"writer/parser roundtrip preserves structure" ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Xc_util.Rng.create seed in
      let rec gen depth =
        let n_children =
          if depth >= 3 then 0 else Xc_util.Rng.int rng (4 - depth)
        in
        let tag = Printf.sprintf "t%d" (Xc_util.Rng.int rng 5) in
        if n_children = 0 && Xc_util.Rng.bool rng then
          Node.leaf tag (Value.Numeric (Xc_util.Rng.int rng 100))
        else Node.make tag ~children:(List.init n_children (fun _ -> gen (depth + 1)))
      in
      let doc = Document.create (gen 0) in
      let doc2 = Parser.parse_string (Writer.to_string doc) in
      Document.n_elements doc = Document.n_elements doc2
      && Array.for_all2
           (fun a b -> Label.equal a.Node.label b.Node.label)
           doc.Document.nodes doc2.Document.nodes)

let () =
  Alcotest.run ~and_exit:false "xc_xml"
    [ ( "label",
        [ Alcotest.test_case "interning" `Quick test_label_interning;
          Alcotest.test_case "many labels" `Quick test_label_many ] );
      ( "value",
        [ Alcotest.test_case "types" `Quick test_value_types;
          Alcotest.test_case "text sorts+dedupes" `Quick test_text_of_terms_sorts_dedupes;
          Alcotest.test_case "text contains" `Quick test_text_contains;
          Alcotest.test_case "equality" `Quick test_value_equal ] );
      ( "tokenizer",
        [ Alcotest.test_case "basic" `Quick test_tokenizer_basic;
          Alcotest.test_case "stopwords" `Quick test_tokenizer_stopwords;
          Alcotest.test_case "short tokens" `Quick test_tokenizer_short_tokens;
          Alcotest.test_case "empty" `Quick test_tokenizer_empty ] );
      ( "node+document",
        [ Alcotest.test_case "size/height" `Quick test_node_size_height;
          Alcotest.test_case "preorder iter" `Quick test_node_iter_preorder;
          Alcotest.test_case "add_child" `Quick test_node_add_child;
          Alcotest.test_case "preorder ids" `Quick test_document_ids_preorder;
          Alcotest.test_case "label path" `Quick test_document_label_path;
          Alcotest.test_case "value counts" `Quick test_document_value_counts;
          Alcotest.test_case "deep tree" `Slow test_deep_tree_no_overflow ] );
      ( "parser",
        [ Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "attributes" `Quick test_parse_attributes_discarded;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "cdata+comments" `Quick test_parse_cdata_comments;
          Alcotest.test_case "mixed content" `Quick test_parse_mixed_content_ignored;
          Alcotest.test_case "default typing" `Quick test_parse_default_typing;
          Alcotest.test_case "assoc typing" `Quick test_parse_assoc_typing;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "doctype" `Quick test_parse_doctype ] );
      ( "writer",
        [ Alcotest.test_case "roundtrip" `Quick test_writer_roundtrip;
          Alcotest.test_case "size" `Quick test_writer_size;
          Alcotest.test_case "escape" `Quick test_escape;
          QCheck_alcotest.to_alcotest parse_roundtrip_property ] );
      ( "stats",
        [ Alcotest.test_case "basic" `Quick test_stats;
          Alcotest.test_case "path counts" `Quick test_stats_path_counts ] ) ]


(* ---- attribute handling (appended suite) --------------------------------- *)

let test_attributes_discarded_by_default () =
  let doc = Parser.parse_string {|<r id="1"><a href="x">7</a></r>|} in
  check Alcotest.int "elements" 2 (Document.n_elements doc);
  check Alcotest.bool "a keeps its numeric value" true
    (Value.equal doc.Document.nodes.(1).Node.value (Value.Numeric 7))

let test_attributes_as_elements () =
  let doc =
    Parser.parse_string ~attributes:`Elements
      {|<r id="42" name="root &amp; co"><a kind='x'/></r>|}
  in
  (* r, @id, @name, a, @kind *)
  check Alcotest.int "elements" 5 (Document.n_elements doc);
  let labels =
    Array.to_list (Array.map (fun n -> Label.to_string n.Node.label) doc.Document.nodes)
  in
  check (Alcotest.list Alcotest.string) "labels" [ "r"; "@id"; "@name"; "a"; "@kind" ]
    labels;
  (* default typing applies to attribute values too: @id is numeric *)
  check Alcotest.bool "@id numeric" true
    (Value.equal doc.Document.nodes.(1).Node.value (Value.Numeric 42));
  (* entity decoding inside attribute values *)
  check Alcotest.bool "@name decoded" true
    (Value.equal doc.Document.nodes.(2).Node.value (Value.Str "root & co"))

let test_attributes_with_text_value () =
  (* an element with attributes and character data keeps both *)
  let doc = Parser.parse_string ~attributes:`Elements {|<r><a id="1">9</a></r>|} in
  check Alcotest.int "elements" 3 (Document.n_elements doc);
  check Alcotest.bool "a keeps text" true
    (Value.equal doc.Document.nodes.(1).Node.value (Value.Numeric 9))

let test_attributes_queryable () =
  (* attribute elements participate in twig queries like any element *)
  let doc =
    Parser.parse_string ~attributes:`Elements
      {|<db><item id="1"/><item id="2"/><item id="30"/></db>|}
  in
  let count q = Xc_twig.Twig_eval.selectivity doc (Xc_twig.Twig_parse.parse q) in
  check (Alcotest.float 1e-9) "attribute range" 2.0 (count "//item[@id < 10]");
  (* and summarization covers them (within histogram interpolation
     error over the 2..30 value gap) *)
  let reference = Xc_core.Synopsis.freeze (Xc_core.Reference.build ~min_extent:1 doc) in
  check (Alcotest.float 0.5) "estimate" 2.0
    (Xc_core.Estimate.selectivity reference (Xc_twig.Twig_parse.parse "//item[@id < 10]"))

let () =
  Alcotest.run "xc_xml_attributes"
    [ ( "attributes",
        [ Alcotest.test_case "discarded by default" `Quick test_attributes_discarded_by_default;
          Alcotest.test_case "as elements" `Quick test_attributes_as_elements;
          Alcotest.test_case "with text value" `Quick test_attributes_with_text_value;
          Alcotest.test_case "queryable" `Quick test_attributes_queryable ] ) ]
